// Serving-runtime throughput: one fixed catalog wrapper over a 1k-page
// synthetic corpus (125 distinct pages, each re-requested 8× — the
// re-crawl repetition a wrapper deployment sees). Series:
//
//   BM_ServeCorpusColdDirect     — the pre-runtime path: WrapHtmlToXml per
//                                  page, one thread, no caches (baseline).
//   BM_ServeCorpusRuntime/T/M    — WrapperRuntime with warm caches at T
//                                  threads; M=1 result memo on, M=0 off.
//
// Counters report pages/sec; the acceptance bar is warm-batch ≥ 3× cold
// single-thread at 4 threads with byte-identical output (asserted here).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/elog/ast.h"
#include "src/html/parser.h"
#include "src/html/synthetic.h"
#include "src/runtime/runtime.h"
#include "src/tree/serialize.h"
#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/wrapper/wrapper.h"

namespace {

using namespace mdatalog;

constexpr int kDistinctPages = 125;
constexpr int kCorpusSize = 1000;

wrapper::Wrapper CatalogWrapper() {
  auto program = elog::ParseElog(R"(
    anynode(X) <- root(X).
    anynode(X) <- anynode(P), subelem(P, "_", X).
    item(X)  <- anynode(P), subelem(P, "tr@item", X).
    price(Y) <- item(X), subelem(X, "td@price", Y).
  )");
  MD_CHECK(program.ok());
  wrapper::Wrapper w;
  w.program = *program;
  w.extraction_patterns = {"item", "price"};
  return w;
}

/// One borrowed-page Request per corpus entry (the corpus outlives the
/// SubmitBatch join).
std::vector<runtime::Request> ViewBatch(
    const runtime::WrapperHandle& handle,
    const std::vector<std::string>& pages) {
  std::vector<runtime::Request> requests;
  requests.reserve(pages.size());
  for (const std::string& page : pages) {
    requests.push_back({runtime::PageRef::View(page), handle, {}});
  }
  return requests;
}

/// 1000 requests over 125 distinct pages, round-robin (each distinct page is
/// served 8 times, interleaved — no two consecutive requests share a page).
const std::vector<std::string>& Corpus() {
  static const std::vector<std::string>* corpus = [] {
    auto* pages = new std::vector<std::string>;
    std::vector<std::string> distinct;
    for (int i = 0; i < kDistinctPages; ++i) {
      util::Rng rng(1000 + i);
      html::CatalogOptions opts;
      opts.num_items = 8 + i % 17;
      opts.with_ads = (i % 3 != 0);
      opts.alt_layout = (i % 5 == 0);
      distinct.push_back(html::ProductCatalogPage(rng, opts));
    }
    for (int i = 0; i < kCorpusSize; ++i) {
      pages->push_back(distinct[i % kDistinctPages]);
    }
    return pages;
  }();
  return *corpus;
}

/// Cold baseline: parse + project + validate + evaluate per page, one
/// thread — exactly what every WrapHtmlToXml call did before the runtime.
void BM_ServeCorpusColdDirect(benchmark::State& state) {
  wrapper::Wrapper w = CatalogWrapper();
  const auto& corpus = Corpus();
  int64_t pages = 0;
  for (auto _ : state) {
    for (const std::string& page : corpus) {
      auto doc = html::ParseHtml(page);
      MD_CHECK(doc.ok());
      tree::Tree t = html::ProjectAttributeIntoLabels(*doc, "class");
      auto out = wrapper::WrapTree(w, t);
      MD_CHECK(out.ok());
      std::string xml = tree::ToXml(*out);
      benchmark::DoNotOptimize(xml);
      ++pages;
    }
  }
  state.SetItemsProcessed(pages);
  state.counters["pages_per_sec"] = benchmark::Counter(
      static_cast<double>(pages), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeCorpusColdDirect)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Runtime serving with warm caches: range(0) = threads, range(1) = memo.
void BM_ServeCorpusRuntime(benchmark::State& state) {
  runtime::RuntimeOptions opts;
  opts.num_threads = static_cast<int32_t>(state.range(0));
  opts.result_memo.byte_budget = state.range(1) != 0 ? (64 << 20) : 0;
  opts.document_cache.byte_budget = 256 << 20;
  runtime::WrapperRuntime rt(opts);
  auto handle = rt.Register(CatalogWrapper(), "class");
  MD_CHECK(handle.ok());
  const auto& corpus = Corpus();

  // Warm-up pass (outside timing): fills the document cache / memo, and
  // asserts the runtime output is byte-identical to the direct sequential
  // path — the bench must not get fast by getting wrong.
  {
    auto warm = rt.SubmitBatch(ViewBatch(*handle, corpus));
    for (size_t i = 0; i < corpus.size(); ++i) {
      MD_CHECK(warm[i].ok());
      if (i < kDistinctPages) {
        auto doc = html::ParseHtml(corpus[i]);
        MD_CHECK(doc.ok());
        tree::Tree t = html::ProjectAttributeIntoLabels(*doc, "class");
        auto out = wrapper::WrapTree(CatalogWrapper(), t);
        MD_CHECK(*warm[i] == tree::ToXml(*out));
      }
    }
  }

  int64_t pages = 0;
  for (auto _ : state) {
    auto results = rt.SubmitBatch(ViewBatch(*handle, corpus));
    MD_CHECK(results.size() == corpus.size());
    for (const auto& r : results) MD_CHECK(r.ok());
    benchmark::DoNotOptimize(results);
    pages += static_cast<int64_t>(results.size());
  }
  state.SetItemsProcessed(pages);
  state.counters["pages_per_sec"] = benchmark::Counter(
      static_cast<double>(pages), benchmark::Counter::kIsRate);
  state.counters["doc_cache_hits"] =
      static_cast<double>(rt.stats().document_cache.hits);
  state.counters["memo_hits"] = static_cast<double>(rt.stats().memo_hits);
}
// UseRealTime: the workers run off the main thread, so CPU-time rates would
// overstate throughput wildly; wall-clock is the serving number.
BENCHMARK(BM_ServeCorpusRuntime)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->ArgNames({"threads", "memo"})
    ->Args({1, 0})
    ->Args({4, 0})
    ->Args({1, 1})
    ->Args({4, 1});

}  // namespace

BENCHMARK_MAIN();
