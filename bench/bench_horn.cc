// E2 — Proposition 3.5: ground (propositional Horn) programs solve in
// O(|P| + |σ|) with the LTUR solver. Chain, grid and wide-body instances.

#include <benchmark/benchmark.h>

#include "src/core/horn.h"
#include "src/util/rng.h"

namespace {

using namespace mdatalog;

core::HornInstance Chain(int32_t n) {
  core::HornInstance inst;
  inst.num_atoms = n;
  inst.clauses.push_back({0, {}});
  for (int32_t i = 1; i < n; ++i) inst.clauses.push_back({i, {i - 1}});
  return inst;
}

core::HornInstance Grid(int32_t side) {
  // atom (i,j) needs (i-1,j) and (i,j-1).
  core::HornInstance inst;
  inst.num_atoms = side * side;
  auto id = [side](int32_t i, int32_t j) { return i * side + j; };
  inst.clauses.push_back({0, {}});
  for (int32_t i = 0; i < side; ++i) {
    for (int32_t j = 0; j < side; ++j) {
      if (i == 0 && j == 0) continue;
      core::HornClause c;
      c.head = id(i, j);
      if (i > 0) c.body.push_back(id(i - 1, j));
      if (j > 0) c.body.push_back(id(i, j - 1));
      inst.clauses.push_back(std::move(c));
    }
  }
  return inst;
}

core::HornInstance WideBodies(int32_t n, int32_t width, uint64_t seed) {
  util::Rng rng(seed);
  core::HornInstance inst;
  inst.num_atoms = n;
  for (int32_t i = 0; i < width; ++i) inst.clauses.push_back({i, {}});
  for (int32_t i = width; i < n; ++i) {
    core::HornClause c;
    c.head = i;
    for (int32_t k = 0; k < width; ++k) {
      c.body.push_back(static_cast<int32_t>(rng.Below(i)));
    }
    inst.clauses.push_back(std::move(c));
  }
  return inst;
}

void BM_Horn_Chain(benchmark::State& state) {
  core::HornInstance inst = Chain(static_cast<int32_t>(state.range(0)));
  for (auto _ : state) {
    auto model = core::SolveHorn(inst);
    benchmark::DoNotOptimize(model);
  }
  state.SetComplexityN(inst.NumLiterals());
}
BENCHMARK(BM_Horn_Chain)->Range(1 << 10, 1 << 20)->Complexity();

void BM_Horn_Grid(benchmark::State& state) {
  core::HornInstance inst = Grid(static_cast<int32_t>(state.range(0)));
  for (auto _ : state) {
    auto model = core::SolveHorn(inst);
    benchmark::DoNotOptimize(model);
  }
  state.SetComplexityN(inst.NumLiterals());
}
BENCHMARK(BM_Horn_Grid)->Range(32, 512)->Complexity();

void BM_Horn_WideBodies(benchmark::State& state) {
  core::HornInstance inst =
      WideBodies(static_cast<int32_t>(state.range(0)), 8, 7);
  for (auto _ : state) {
    auto model = core::SolveHorn(inst);
    benchmark::DoNotOptimize(model);
  }
  state.SetComplexityN(inst.NumLiterals());
}
BENCHMARK(BM_Horn_WideBodies)->Range(1 << 10, 1 << 18)->Complexity();

}  // namespace

BENCHMARK_MAIN();
