// E13 — Theorem 6.6: the Elog⁻Δ aⁿbⁿ wrapper. Recognition cost over growing
// children words; correctness (accepts exactly n == m) is covered by the
// tests — this series measures the Δ-builtin evaluation cost.

#include <benchmark/benchmark.h>

#include "src/elog/ast.h"
#include "src/elog/eval.h"
#include "src/tree/generator.h"

namespace {

using namespace mdatalog;

const char* kAnBn = R"(
  a0(X)   <- root(R), subelem(R, "a", X), notafter(R, "a", X).
  b0(X)   <- root(R), subelem(R, "b", X), notafter(R, "b", X),
             notbefore(R, "a", X).
  anbn(X) <- root(X), contains(X, "a", Y), a0(Y),
             before(X, "b", Y, Z, 50, 50), b0(Z).
)";

tree::Tree Word(int32_t n, int32_t m) {
  std::vector<std::string> labels;
  for (int32_t i = 0; i < n; ++i) labels.push_back("a");
  for (int32_t i = 0; i < m; ++i) labels.push_back("b");
  return tree::ChildrenWord("r", labels);
}

void BM_AnBn_Accept(benchmark::State& state) {
  auto program = elog::ParseElog(kAnBn);
  int32_t n = static_cast<int32_t>(state.range(0));
  tree::Tree t = Word(n, n);
  bool accepted = false;
  for (auto _ : state) {
    auto r = elog::EvaluateElog(*program, t);
    accepted = r.ok() && !r->Of("anbn").empty();
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(t.size());
  state.counters["accepted"] = accepted ? 1 : 0;
}
BENCHMARK(BM_AnBn_Accept)->Range(8, 1 << 11)->Complexity();

void BM_AnBn_Reject(benchmark::State& state) {
  auto program = elog::ParseElog(kAnBn);
  int32_t n = static_cast<int32_t>(state.range(0));
  tree::Tree t = Word(n, n + 1);
  bool accepted = true;
  for (auto _ : state) {
    auto r = elog::EvaluateElog(*program, t);
    accepted = r.ok() && !r->Of("anbn").empty();
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(t.size());
  state.counters["accepted"] = accepted ? 1 : 0;
}
BENCHMARK(BM_AnBn_Reject)->Range(8, 1 << 11)->Complexity();

}  // namespace

BENCHMARK_MAIN();
