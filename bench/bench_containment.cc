// E10 — Corollary 5.12: containment of unary caterpillar queries. The
// word-level decision procedure is the classical subset-construction product
// (the PSPACE algorithm); cost grows with expression size. The randomized
// tree-level falsifier provides the counterexample search.

#include <benchmark/benchmark.h>

#include "src/caterpillar/containment.h"
#include "src/caterpillar/expr.h"
#include "src/util/rng.h"

namespace {

using namespace mdatalog;
using caterpillar::Concat;
using caterpillar::ExprPtr;
using caterpillar::Plus;
using caterpillar::Rel;
using caterpillar::Star;
using caterpillar::Union;

/// (child.child | child)^k — expression pairs of growing size.
ExprPtr Tower(int32_t k) {
  ExprPtr step = Union({Concat({Rel("child"), Rel("child")}), Rel("child")});
  std::vector<ExprPtr> parts;
  for (int32_t i = 0; i < k; ++i) parts.push_back(step);
  return Concat(std::move(parts));
}

void BM_WordContainment_Positive(benchmark::State& state) {
  ExprPtr e1 = Tower(static_cast<int32_t>(state.range(0)));
  ExprPtr e2 = Star(Rel("child"));
  for (auto _ : state) {
    auto r = caterpillar::WordLanguageContained(e1, e2);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(caterpillar::ExprSize(e1));
}
BENCHMARK(BM_WordContainment_Positive)->DenseRange(1, 9, 2)->Complexity();

void BM_WordContainment_Negative(benchmark::State& state) {
  // child^k vs child^{k}.child: a length mismatch found by the search.
  int32_t k = static_cast<int32_t>(state.range(0));
  std::vector<ExprPtr> chain(k, Rel("child"));
  ExprPtr e1 = Concat(chain);
  chain.push_back(Rel("child"));
  ExprPtr e2 = Concat(chain);
  for (auto _ : state) {
    auto r = caterpillar::WordLanguageContained(e1, e2);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_WordContainment_Negative)->DenseRange(2, 10, 2)->Complexity();

void BM_TreeFalsifier(benchmark::State& state) {
  ExprPtr e1 = Star(Rel("child"));
  ExprPtr e2 = Plus(Rel("child"));
  for (auto _ : state) {
    util::Rng rng(9);
    auto r = caterpillar::FindContainmentCounterexample(e1, e2, rng, 50, 20);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TreeFalsifier);

}  // namespace

BENCHMARK_MAIN();
