#!/usr/bin/env python3
"""Diffs a fresh google-benchmark JSON against a committed baseline.

Exits non-zero when any benchmark present in both files regressed by more
than the threshold (default 25%) in throughput. Throughput is taken from
items_per_second when the benchmark reports it, else from 1/real_time.
Benchmarks present in only one file are reported but never fail the check
(renames and new series must not break CI).

A missing baseline FILE is not an error: a newly added suite has no committed
baseline on its first CI run, so the check warns and passes (exit 0). A
baseline that exists but cannot be parsed still fails — silent corruption
must not disable the gate.

Usage:
  bench/check_bench_regression.py BASELINE.json FRESH.json [--threshold 0.25]

Exit codes: 0 ok (including missing baseline file), 1 regression past
threshold, 2 unusable input.
"""

import argparse
import json
import os
import sys


def load_benchmarks(path):
    """name -> throughput (higher is better), aggregates skipped."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        if not name:
            continue
        if "items_per_second" in bench:
            out[name] = float(bench["items_per_second"])
        elif bench.get("real_time"):
            out[name] = 1.0 / float(bench["real_time"])
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fail when fresh throughput < (1 - threshold) * baseline",
    )
    args = parser.parse_args()

    if not os.path.exists(args.baseline):
        print(
            f"warning: no baseline at {args.baseline} — first run of a new "
            "suite, nothing to compare against",
            file=sys.stderr,
        )
        sys.exit(0)

    baseline = load_benchmarks(args.baseline)
    fresh = load_benchmarks(args.fresh)
    if not baseline or not fresh:
        print("error: no comparable benchmarks found", file=sys.stderr)
        sys.exit(2)

    regressions = []
    width = max(len(n) for n in sorted(set(baseline) | set(fresh)))
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'fresh':>12}  delta")
    for name in sorted(set(baseline) | set(fresh)):
        if name not in baseline:
            print(f"{name:<{width}}  {'—':>12}  {fresh[name]:>12.1f}  (new)")
            continue
        if name not in fresh:
            print(f"{name:<{width}}  {baseline[name]:>12.1f}  {'—':>12}  (gone)")
            continue
        old, new = baseline[name], fresh[name]
        delta = (new - old) / old if old > 0 else 0.0
        marker = ""
        if delta < -args.threshold:
            marker = "  <-- REGRESSION"
            regressions.append((name, delta))
        print(f"{name:<{width}}  {old:>12.1f}  {new:>12.1f}  {delta:+7.1%}{marker}")

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
            f"{args.threshold:.0%}:",
            file=sys.stderr,
        )
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        sys.exit(1)
    print(f"\nOK: no regression past {args.threshold:.0%}")


if __name__ == "__main__":
    main()
