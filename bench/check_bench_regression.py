#!/usr/bin/env python3
"""Diffs a fresh google-benchmark JSON against a committed baseline.

Exits non-zero when any benchmark present in both files regressed by more
than the threshold (default 25%) in throughput. Throughput is taken from
items_per_second when the benchmark reports it, else from 1/real_time.
Benchmarks present in only one file are reported but never fail the check
(renames and new series must not break CI).

A missing baseline FILE is not an error: a newly added suite has no committed
baseline on its first CI run, so the check warns and passes (exit 0). A
baseline that exists but cannot be parsed still fails — silent corruption
must not disable the gate.

Overhead pairs (--overhead-pair "BASE,TEST"): an intra-file A/B gate that
needs no baseline — TEST's throughput in the FRESH file must be within
--overhead-threshold (default 3%) of BASE's. This is how the telemetry
overhead bar is enforced: BM_WrapTelemetry/telemetry:1 must stay within 3%
of BM_WrapTelemetry/telemetry:0 in BENCH_telemetry.json. Runs even when the
baseline file is missing.

Latency fields: per-benchmark counters matching p<digits>_* (p50_ns,
p99_ns, …) are compared against the baseline and surfaced as NON-BLOCKING
warnings when they moved past the threshold — request-latency quantiles on
shared runners are too jittery to gate merges, but a drift should be
visible in the CI log.

Usage:
  bench/check_bench_regression.py BASELINE.json FRESH.json [--threshold 0.25]
      [--overhead-pair BASE,TEST]... [--overhead-threshold 0.03]

Exit codes: 0 ok (including missing baseline file), 1 regression past
threshold or overhead pair past its threshold, 2 unusable input.
"""

import argparse
import json
import os
import re
import sys

LATENCY_FIELD_RE = re.compile(r"^p\d+(_|$)")


def load_doc(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def load_benchmarks(doc):
    """name -> throughput (higher is better), aggregates skipped."""
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        if not name:
            continue
        if "items_per_second" in bench:
            out[name] = float(bench["items_per_second"])
        elif bench.get("real_time"):
            out[name] = 1.0 / float(bench["real_time"])
    return out


def load_latency_fields(doc):
    """name -> {field: value} for p50/p99-style counters (lower is better)."""
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        if not name:
            continue
        fields = {
            k: float(v)
            for k, v in bench.items()
            if LATENCY_FIELD_RE.match(k) and isinstance(v, (int, float))
        }
        if fields:
            out[name] = fields
    return out


def check_overhead_pairs(fresh, pairs, threshold):
    """Intra-file A/B: TEST must be within `threshold` of BASE. Returns the
    list of failures; missing names are a hard error (a renamed benchmark
    must not silently disable the gate)."""
    failures = []
    for pair in pairs:
        base_name, _, test_name = pair.partition(",")
        base_name, test_name = base_name.strip(), test_name.strip()
        if not base_name or not test_name:
            print(f"error: malformed --overhead-pair {pair!r}", file=sys.stderr)
            sys.exit(2)
        if base_name not in fresh or test_name not in fresh:
            missing = [n for n in (base_name, test_name) if n not in fresh]
            print(
                f"error: overhead pair names {missing} not in fresh results",
                file=sys.stderr,
            )
            sys.exit(2)
        base, test = fresh[base_name], fresh[test_name]
        overhead = (base - test) / base if base > 0 else 0.0
        marker = ""
        if overhead > threshold:
            marker = "  <-- OVER BUDGET"
            failures.append((test_name, overhead))
        print(
            f"overhead {test_name} vs {base_name}: "
            f"{base:.1f} -> {test:.1f} ({overhead:+.1%} of budget "
            f"{threshold:.0%}){marker}"
        )
    return failures


def warn_latency_drift(baseline_doc, fresh_doc, threshold):
    """Prints non-blocking warnings for p50/p99 movements past threshold."""
    base_lat = load_latency_fields(baseline_doc)
    fresh_lat = load_latency_fields(fresh_doc)
    for name in sorted(set(base_lat) & set(fresh_lat)):
        for field in sorted(set(base_lat[name]) & set(fresh_lat[name])):
            old, new = base_lat[name][field], fresh_lat[name][field]
            if old <= 0:
                continue
            delta = (new - old) / old
            if abs(delta) > threshold:
                direction = "regressed" if delta > 0 else "improved"
                print(
                    f"warning: {name} {field} {direction} "
                    f"{old:.0f} -> {new:.0f} ({delta:+.1%}) — non-blocking"
                )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fail when fresh throughput < (1 - threshold) * baseline",
    )
    parser.add_argument(
        "--overhead-pair",
        action="append",
        default=[],
        metavar="BASE,TEST",
        help="intra-file gate: TEST must be within --overhead-threshold of "
        "BASE in the FRESH file (repeatable)",
    )
    parser.add_argument(
        "--overhead-threshold",
        type=float,
        default=0.03,
        help="budget for --overhead-pair checks (default 3%%)",
    )
    args = parser.parse_args()

    fresh_doc = load_doc(args.fresh)
    fresh = load_benchmarks(fresh_doc)
    if not fresh:
        print("error: no comparable benchmarks found", file=sys.stderr)
        sys.exit(2)

    # The overhead pairs gate on the fresh file alone — they run (and can
    # fail) even on the first run of a new suite.
    overhead_failures = check_overhead_pairs(
        fresh, args.overhead_pair, args.overhead_threshold
    )

    if not os.path.exists(args.baseline):
        print(
            f"warning: no baseline at {args.baseline} — first run of a new "
            "suite, nothing to compare against",
            file=sys.stderr,
        )
        sys.exit(1 if overhead_failures else 0)

    baseline_doc = load_doc(args.baseline)
    baseline = load_benchmarks(baseline_doc)
    if not baseline:
        print("error: no comparable benchmarks found", file=sys.stderr)
        sys.exit(2)

    regressions = []
    width = max(len(n) for n in sorted(set(baseline) | set(fresh)))
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'fresh':>12}  delta")
    for name in sorted(set(baseline) | set(fresh)):
        if name not in baseline:
            print(f"{name:<{width}}  {'—':>12}  {fresh[name]:>12.1f}  (new)")
            continue
        if name not in fresh:
            print(f"{name:<{width}}  {baseline[name]:>12.1f}  {'—':>12}  (gone)")
            continue
        old, new = baseline[name], fresh[name]
        delta = (new - old) / old if old > 0 else 0.0
        marker = ""
        if delta < -args.threshold:
            marker = "  <-- REGRESSION"
            regressions.append((name, delta))
        print(f"{name:<{width}}  {old:>12.1f}  {new:>12.1f}  {delta:+7.1%}{marker}")

    warn_latency_drift(baseline_doc, fresh_doc, args.threshold)

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
            f"{args.threshold:.0%}:",
            file=sys.stderr,
        )
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        sys.exit(1)
    if overhead_failures:
        print(
            f"\nFAIL: {len(overhead_failures)} overhead pair(s) past "
            f"{args.overhead_threshold:.0%}:",
            file=sys.stderr,
        )
        for name, overhead in overhead_failures:
            print(f"  {name}: {overhead:+.1%}", file=sys.stderr)
        sys.exit(1)
    print(f"\nOK: no regression past {args.threshold:.0%}")


if __name__ == "__main__":
    main()
