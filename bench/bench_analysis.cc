// Static-analysis subsystem throughput (src/analysis) over the checked-in
// wrapper corpus (examples/wrappers). Series:
//
//   BM_LintWrapper            — full lint (minimize + fate mapping) of the
//                               8-finding dirty wrapper; rules/sec.
//   BM_CanonicalWrapperKey    — canonicalization (minimize + normalize +
//                               sort) of the redundant catalog revision.
//   BM_EquivalentCatalogPair/D — SAT-backed equivalence proof of the clean
//                               vs reordered catalog revisions on every
//                               extraction pattern, depth bound D.
//   BM_ServeRevisions/C       — the serving payoff: three reformulated
//                               catalog revisions over one page corpus,
//                               C=1 canonical program keys on, C=0 off.
//                               With keys on, revisions share one compiled
//                               plan and one memo row per page; the
//                               memo_hit_rate counter shows the uplift.

#include <benchmark/benchmark.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/canonical.h"
#include "src/analysis/containment.h"
#include "src/elog/lint.h"
#include "src/elog/to_datalog.h"
#include "src/html/synthetic.h"
#include "src/runtime/runtime.h"
#include "src/tmnf/pipeline.h"
#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/wrapper/wrapper.h"

namespace {

using namespace mdatalog;

wrapper::Wrapper LoadCorpusWrapper(const std::string& name) {
  std::ifstream in(std::string(MDATALOG_WRAPPER_CORPUS_DIR) + "/" + name,
                   std::ios::binary);
  MD_CHECK(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  auto w = wrapper::ParseWrapperText(ss.str());
  MD_CHECK(w.ok());
  return std::move(*w);
}

void BM_LintWrapper(benchmark::State& state) {
  wrapper::Wrapper w = LoadCorpusWrapper("lint_dirty.elog");
  int64_t rules = 0;
  for (auto _ : state) {
    auto report = elog::LintWrapper(w.program, w.extraction_patterns);
    MD_CHECK(report.ok() && report->findings.size() == 8);
    rules += report->rules_analyzed;
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(rules);
}
BENCHMARK(BM_LintWrapper);

void BM_CanonicalWrapperKey(benchmark::State& state) {
  wrapper::Wrapper w = LoadCorpusWrapper("catalog_redundant.elog");
  for (auto _ : state) {
    auto key = analysis::CanonicalWrapperKey(w.program, w.extraction_patterns);
    MD_CHECK(key.ok() && key->canonicalized);
    benchmark::DoNotOptimize(key);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CanonicalWrapperKey);

void BM_EquivalentCatalogPair(benchmark::State& state) {
  wrapper::Wrapper a = LoadCorpusWrapper("catalog_clean.elog");
  wrapper::Wrapper b = LoadCorpusWrapper("catalog_reordered.elog");
  analysis::ContainmentOptions opts;
  opts.max_depth = static_cast<int32_t>(state.range(0));
  std::vector<core::Program> pa, pb;
  for (const std::string& pattern : a.extraction_patterns) {
    auto da = elog::ElogToDatalog(a.program, pattern);
    auto db = elog::ElogToDatalog(b.program, pattern);
    MD_CHECK(da.ok() && db.ok());
    auto ta = tmnf::ToTmnf(*da);
    auto tb = tmnf::ToTmnf(*db);
    MD_CHECK(ta.ok() && tb.ok());
    pa.push_back(std::move(*ta));
    pb.push_back(std::move(*tb));
  }
  for (auto _ : state) {
    for (size_t i = 0; i < pa.size(); ++i) {
      auto eq = analysis::Equivalent(pa[i], pb[i], opts);
      MD_CHECK(eq.ok() && eq->verdict == analysis::Verdict::kContained);
      benchmark::DoNotOptimize(eq);
    }
  }
  // One item = one proved-equivalent extraction pattern.
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(pa.size()));
}
BENCHMARK(BM_EquivalentCatalogPair)->Arg(2)->Arg(3);

/// Three equivalent catalog revisions × a repeated page corpus: the workload
/// a wrapper redeployment produces. Canonical keys collapse it to one
/// compiled plan + one memo row per distinct page.
void BM_ServeRevisions(benchmark::State& state) {
  const bool canonical = state.range(0) != 0;
  std::vector<wrapper::Wrapper> revisions = {
      LoadCorpusWrapper("catalog_clean.elog"),
      LoadCorpusWrapper("catalog_redundant.elog"),
      LoadCorpusWrapper("catalog_reordered.elog"),
  };
  std::vector<std::string> pages;
  for (int i = 0; i < 24; ++i) {
    util::Rng rng(7000 + i);
    html::CatalogOptions opts;
    opts.num_items = 8 + i % 9;
    opts.with_ads = true;
    pages.push_back(html::ProductCatalogPage(rng, opts));
  }

  int64_t served = 0;
  int64_t memo_hits = 0, memo_misses = 0, canonical_hits = 0;
  for (auto _ : state) {
    runtime::RuntimeOptions opts;
    opts.canonical_program_keys = canonical;
    runtime::WrapperRuntime rt(opts);
    for (const wrapper::Wrapper& rev : revisions) {
      auto handle = rt.Register(rev, "class");
      MD_CHECK(handle.ok());
      for (const std::string& page : pages) {
        auto out = rt.Wrap(*handle, page);
        MD_CHECK(out.ok());
        benchmark::DoNotOptimize(out);
        ++served;
      }
    }
    auto stats = rt.stats();
    memo_hits += stats.memo_hits;
    memo_misses += stats.memo_misses;
    canonical_hits += stats.program_cache.canonical_key_hits;
  }
  state.SetItemsProcessed(served);
  state.counters["memo_hit_rate"] =
      memo_hits + memo_misses > 0
          ? static_cast<double>(memo_hits) /
                static_cast<double>(memo_hits + memo_misses)
          : 0.0;
  state.counters["canonical_key_hits"] =
      static_cast<double>(canonical_hits) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_ServeRevisions)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
