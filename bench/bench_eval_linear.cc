// E1 / E3 — Theorem 4.2: monadic datalog over trees evaluates in
// O(|P| · |dom|).
//
// Series 1 (data linearity): the Example 3.2 program over random trees of
// growing size, on the grounded (Theorem 4.2) and semi-naive engines.
// google-benchmark's complexity fit should report ~O(N) for the grounded
// engine.
//
// Series 2 (program linearity): chain programs of growing rule count over a
// fixed tree.
//
// Series 3 (fragments, Props 3.6/3.7): a guarded / LIT-style program.
//
// Series 4 (old vs new): the same workloads on the pre-rewrite reference
// engines (reference_eval.h: per-enumeration planning, map stores,
// string-keyed EDB access) — the deltas document the compiled-engine win.

#include <benchmark/benchmark.h>

#include "src/core/examples.h"
#include "src/core/grounder.h"
#include "src/core/reference_eval.h"
#include "src/tree/generator.h"
#include "src/util/rng.h"

namespace {

using namespace mdatalog;

tree::Tree MakeTree(int64_t n) {
  util::Rng rng(42);
  return tree::RandomTree(rng, static_cast<int32_t>(n), {"a", "b", "c"});
}

void BM_EvenA_Grounded(benchmark::State& state) {
  tree::Tree t = MakeTree(state.range(0));
  core::Program p = core::EvenAProgram({"b", "c"});
  for (auto _ : state) {
    auto r = core::EvaluateGrounded(p, t);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
  state.counters["nodes"] = static_cast<double>(t.size());
}
BENCHMARK(BM_EvenA_Grounded)->Range(1 << 10, 1 << 17)->Complexity();

void BM_EvenA_SemiNaive(benchmark::State& state) {
  tree::Tree t = MakeTree(state.range(0));
  core::Program p = core::EvenAProgram({"b", "c"});
  core::TreeDatabase db(t);
  for (auto _ : state) {
    auto r = core::EvaluateSemiNaive(p, db);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EvenA_SemiNaive)->Range(1 << 10, 1 << 15)->Complexity();

void BM_ProgramSize_Grounded(benchmark::State& state) {
  tree::Tree t = MakeTree(4096);
  core::Program p = core::ChainProgram(static_cast<int32_t>(state.range(0)));
  for (auto _ : state) {
    auto r = core::EvaluateGrounded(p, t);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
  state.counters["rules"] = static_cast<double>(p.rules().size());
}
BENCHMARK(BM_ProgramSize_Grounded)->Range(8, 1 << 9)->Complexity();

void BM_EvenA_SemiNaive_Reference(benchmark::State& state) {
  tree::Tree t = MakeTree(state.range(0));
  core::Program p = core::EvenAProgram({"b", "c"});
  core::TreeDatabase db(t);
  for (auto _ : state) {
    auto r = core::EvaluateSemiNaiveReference(p, db);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EvenA_SemiNaive_Reference)->Range(1 << 10, 1 << 15)->Complexity();

void BM_GuardedFragment_SemiNaive(benchmark::State& state) {
  tree::Tree t = MakeTree(state.range(0));
  core::Program p = core::HasAncestorProgram("a");
  core::TreeDatabase db(t);
  for (auto _ : state) {
    auto r = core::EvaluateSemiNaive(p, db);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GuardedFragment_SemiNaive)->Range(1 << 10, 1 << 15)->Complexity();

void BM_GuardedFragment_SemiNaive_Reference(benchmark::State& state) {
  tree::Tree t = MakeTree(state.range(0));
  core::Program p = core::HasAncestorProgram("a");
  core::TreeDatabase db(t);
  for (auto _ : state) {
    auto r = core::EvaluateSemiNaiveReference(p, db);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GuardedFragment_SemiNaive_Reference)
    ->Range(1 << 10, 1 << 15)
    ->Complexity();

void BM_GuardedFragment_Grounded(benchmark::State& state) {
  // HasAncestor is guarded (every binary rule has a guard atom) — the
  // Prop 3.6/3.7 fragment.
  tree::Tree t = MakeTree(state.range(0));
  core::Program p = core::HasAncestorProgram("a");
  for (auto _ : state) {
    auto r = core::EvaluateGrounded(p, t);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GuardedFragment_Grounded)->Range(1 << 10, 1 << 17)->Complexity();

}  // namespace

BENCHMARK_MAIN();
