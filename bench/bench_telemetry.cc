// Telemetry overhead: the serving loop with tracing fully on (every request
// traced, every pipeline span recorded, FinishTrace folding into the stage
// histograms) vs telemetry disabled (spans compile to one branch; counters
// still record). Series:
//
//   BM_WrapTelemetry/telemetry:0 — disabled (baseline)
//   BM_WrapTelemetry/telemetry:1 — enabled, every request traced
//
// The memo is off and the runtime single-threaded so every request runs the
// full instrumented pipeline synchronously — the most tracing-dense
// configuration there is, i.e. the worst case for overhead. The acceptance
// bar (gated by bench/check_bench_regression.py --overhead-pair in CI) is
// enabled within 3% of disabled.
//
// The enabled series also reports request-latency p50/p99 from the
// `request.wrap.ns` histogram; the regression checker surfaces movements in
// those as non-blocking warnings.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/elog/ast.h"
#include "src/html/synthetic.h"
#include "src/runtime/runtime.h"
#include "src/telemetry/metrics.h"
#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/wrapper/wrapper.h"

namespace {

using namespace mdatalog;

constexpr int kDistinctPages = 125;
constexpr int kCorpusSize = 1000;

wrapper::Wrapper CatalogWrapper() {
  auto program = elog::ParseElog(R"(
    anynode(X) <- root(X).
    anynode(X) <- anynode(P), subelem(P, "_", X).
    item(X)  <- anynode(P), subelem(P, "tr@item", X).
    price(Y) <- item(X), subelem(X, "td@price", Y).
  )");
  MD_CHECK(program.ok());
  wrapper::Wrapper w;
  w.program = *program;
  w.extraction_patterns = {"item", "price"};
  return w;
}

/// Same shape as bench_runtime's corpus: 1000 requests over 125 distinct
/// pages, round-robin, so the document cache is warm and the timed loop
/// measures the evaluation pipeline — the part telemetry instruments.
const std::vector<std::string>& Corpus() {
  static const std::vector<std::string>* corpus = [] {
    auto* pages = new std::vector<std::string>;
    std::vector<std::string> distinct;
    for (int i = 0; i < kDistinctPages; ++i) {
      util::Rng rng(1000 + i);
      html::CatalogOptions opts;
      opts.num_items = 8 + i % 17;
      opts.with_ads = (i % 3 != 0);
      opts.alt_layout = (i % 5 == 0);
      distinct.push_back(html::ProductCatalogPage(rng, opts));
    }
    for (int i = 0; i < kCorpusSize; ++i) {
      pages->push_back(distinct[i % kDistinctPages]);
    }
    return pages;
  }();
  return *corpus;
}

void BM_WrapTelemetry(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  runtime::RuntimeOptions opts;
  opts.num_threads = 1;
  opts.result_memo.byte_budget = 0;  // every request runs the full pipeline
  opts.document_cache.byte_budget = 256 << 20;
  opts.telemetry.enabled = enabled;
  opts.telemetry.trace_sample_every = 1;  // trace every request
  runtime::WrapperRuntime rt(opts);
  auto handle = rt.Register(CatalogWrapper(), "class");
  MD_CHECK(handle.ok());
  const auto& corpus = Corpus();

  // Warm-up (outside timing): fills the document cache so the timed loop
  // compares evaluation + instrumentation, not HTML parsing.
  for (int i = 0; i < kDistinctPages; ++i) {
    MD_CHECK(rt.Wrap(*handle, corpus[i]).ok());
  }

  int64_t pages = 0;
  for (auto _ : state) {
    for (const std::string& page : corpus) {
      auto xml = rt.Wrap(*handle, page);
      MD_CHECK(xml.ok());
      benchmark::DoNotOptimize(xml);
      ++pages;
    }
  }
  state.SetItemsProcessed(pages);
  state.counters["pages_per_sec"] = benchmark::Counter(
      static_cast<double>(pages), benchmark::Counter::kIsRate);
  if (enabled) {
    const telemetry::HistogramSnapshot lat =
        rt.telemetry().registry().GetHistogram("request.wrap.ns")->Snapshot();
    state.counters["p50_ns"] = static_cast<double>(lat.Percentile(0.50));
    state.counters["p99_ns"] = static_cast<double>(lat.Percentile(0.99));
  }
}
BENCHMARK(BM_WrapTelemetry)
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"telemetry"})
    ->Arg(0)
    ->Arg(1);

}  // namespace

BENCHMARK_MAIN();
