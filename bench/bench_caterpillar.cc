// E9 — Lemma 5.9 / Example 2.5: caterpillar expressions evaluate in
// O(|NFA|·|dom|) via the product BFS; the compiled datalog form matches.
// Workload: the document-order expression ≺ and the child/descendant
// expressions it is built from.

#include <benchmark/benchmark.h>

#include "src/caterpillar/eval.h"
#include "src/caterpillar/expr.h"
#include "src/caterpillar/nfa.h"
#include "src/caterpillar/to_datalog.h"
#include "src/core/grounder.h"
#include "src/tree/generator.h"
#include "src/util/rng.h"

namespace {

using namespace mdatalog;

void BM_DocumentOrder_NfaImage(benchmark::State& state) {
  util::Rng rng(5);
  tree::Tree t = tree::RandomTree(rng, static_cast<int32_t>(state.range(0)),
                                  {"a", "b"});
  caterpillar::CatNfa nfa =
      caterpillar::CompileToNfa(caterpillar::DocumentOrderExpr());
  for (auto _ : state) {
    auto image = caterpillar::EvalImage(t, nfa, {t.root()});
    benchmark::DoNotOptimize(image);
  }
  state.SetComplexityN(t.size());
  state.counters["nfa_states"] = nfa.NumStates();
}
BENCHMARK(BM_DocumentOrder_NfaImage)->Range(1 << 10, 1 << 17)->Complexity();

void BM_Descendant_NfaImage(benchmark::State& state) {
  util::Rng rng(5);
  tree::Tree t = tree::RandomTree(rng, static_cast<int32_t>(state.range(0)),
                                  {"a", "b"});
  caterpillar::CatNfa nfa =
      caterpillar::CompileToNfa(caterpillar::Plus(caterpillar::Rel("child")));
  for (auto _ : state) {
    auto image = caterpillar::EvalImage(t, nfa, {t.root()});
    benchmark::DoNotOptimize(image);
  }
  state.SetComplexityN(t.size());
}
BENCHMARK(BM_Descendant_NfaImage)->Range(1 << 10, 1 << 17)->Complexity();

void BM_DocumentOrder_Datalog(benchmark::State& state) {
  // Lemma 5.9 compilation, evaluated with the Theorem 4.2 engine.
  core::Program program;
  core::PredId p = program.preds().MustIntern("p", 1);
  core::PredId root = program.preds().MustIntern("root", 1);
  program.AddRule(core::MakeRule(core::MakeAtom(p, {core::Term::Var(0)}),
                                 {core::MakeAtom(root, {core::Term::Var(0)})},
                                 {"x"}));
  auto res = caterpillar::AppendCaterpillarRules(
      &program, p, caterpillar::DocumentOrderExpr(), "ord");
  program.set_query_pred(*res);
  util::Rng rng(5);
  tree::Tree t = tree::RandomTree(rng, static_cast<int32_t>(state.range(0)),
                                  {"a", "b"});
  for (auto _ : state) {
    auto sel = core::EvaluateOnTree(program, t, core::Engine::kGrounded);
    benchmark::DoNotOptimize(sel);
  }
  state.SetComplexityN(t.size());
  state.counters["rules"] = static_cast<double>(program.rules().size());
}
BENCHMARK(BM_DocumentOrder_Datalog)->Range(1 << 10, 1 << 16)->Complexity();

}  // namespace

BENCHMARK_MAIN();
