// Streaming extraction latency: how long until the FIRST result is in the
// caller's hands, versus how long batch Wrap needs to deliver anything at
// all (its first result arrives only with the full parse + evaluation).
// Series, all over one 1000-item catalog page (~145KB):
//
//   BM_BatchWrapFullPage      — cache-free batch Wrap: the time-to-any-result
//                               floor of the non-streaming path (baseline).
//   BM_StreamFirstResult      — StreamSession fed 4KB chunks until the first
//                               on_result fires; the page is then abandoned.
//                               Counters report how few of the page's bytes
//                               were needed.
//   BM_StreamFullPage         — the whole page through Feed+Finish: what the
//                               incremental machinery costs end-to-end when
//                               the caller wants the full XML anyway.
//
// The acceptance bar: BM_StreamFirstResult real time is a small fraction of
// BM_BatchWrapFullPage (first-result latency decoupled from page size).
// peak_rss_mb is recorded on every series for the memory trajectory.

#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <algorithm>

#include <string>

#include "src/elog/ast.h"
#include "src/html/synthetic.h"
#include "src/runtime/runtime.h"
#include "src/stream/stream_session.h"
#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/wrapper/wrapper.h"

namespace {

using namespace mdatalog;

wrapper::Wrapper CatalogWrapper() {
  auto program = elog::ParseElog(R"(
    anynode(X) <- root(X).
    anynode(X) <- anynode(P), subelem(P, "_", X).
    item(X)  <- anynode(P), subelem(P, "tr@item", X).
    price(Y) <- item(X), subelem(X, "td@price", Y).
  )");
  MD_CHECK(program.ok());
  wrapper::Wrapper w;
  w.program = *program;
  w.extraction_patterns = {"item", "price"};
  return w;
}

const std::string& ThousandItemPage() {
  static const std::string* page = [] {
    util::Rng rng(42);
    html::CatalogOptions opts;
    opts.num_items = 1000;
    opts.with_ads = true;
    return new std::string(html::ProductCatalogPage(rng, opts));
  }();
  return *page;
}

double PeakRssMb() {
  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // KB on Linux
}

/// Caches off: every iteration must pay the real parse + evaluation, like a
/// first-contact page — which is exactly the case streaming exists for.
runtime::WrapperRuntime& CacheFreeRuntime() {
  static runtime::WrapperRuntime* rt = [] {
    runtime::RuntimeOptions options;
    options.document_cache.byte_budget = 0;
    options.result_memo.byte_budget = 0;
    return new runtime::WrapperRuntime(options);
  }();
  return *rt;
}

void BM_BatchWrapFullPage(benchmark::State& state) {
  runtime::WrapperRuntime& rt = CacheFreeRuntime();
  auto handle = rt.Register(CatalogWrapper(), "class");
  MD_CHECK(handle.ok());
  const std::string& page = ThousandItemPage();
  for (auto _ : state) {
    auto xml = rt.Wrap(*handle, page);
    MD_CHECK(xml.ok());
    benchmark::DoNotOptimize(xml);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(page.size()));
  state.counters["page_bytes"] = static_cast<double>(page.size());
  state.counters["peak_rss_mb"] = PeakRssMb();
}
BENCHMARK(BM_BatchWrapFullPage)->Unit(benchmark::kMillisecond);

void BM_StreamFirstResult(benchmark::State& state) {
  runtime::WrapperRuntime& rt = CacheFreeRuntime();
  auto handle = rt.Register(CatalogWrapper(), "class");
  MD_CHECK(handle.ok());
  const std::string& page = ThousandItemPage();
  constexpr size_t kChunk = 4096;

  int64_t bytes_at_first = 0;
  for (auto _ : state) {
    bool got_first = false;
    stream::StreamOptions options;
    options.on_result = [&got_first](const stream::StreamResult&) {
      got_first = true;
    };
    auto session = rt.SubmitStream({.wrapper = *handle}, std::move(options));
    MD_CHECK(session.ok());
    size_t fed = 0;
    while (!got_first && fed < page.size()) {
      const size_t n = std::min(kChunk, page.size() - fed);
      MD_CHECK((*session)->Feed(std::string_view(page).substr(fed, n)).ok());
      fed += n;
    }
    MD_CHECK(got_first);
    bytes_at_first += static_cast<int64_t>(fed);
    // The session is abandoned here: time-to-first-result is the number.
  }
  state.counters["bytes_until_first_result"] = benchmark::Counter(
      static_cast<double>(bytes_at_first) /
      static_cast<double>(state.iterations()));
  state.counters["page_bytes"] =
      static_cast<double>(ThousandItemPage().size());
  state.counters["peak_rss_mb"] = PeakRssMb();
}
BENCHMARK(BM_StreamFirstResult)->Unit(benchmark::kMillisecond);

void BM_StreamFullPage(benchmark::State& state) {
  runtime::WrapperRuntime& rt = CacheFreeRuntime();
  auto handle = rt.Register(CatalogWrapper(), "class");
  MD_CHECK(handle.ok());
  const std::string& page = ThousandItemPage();
  constexpr size_t kChunk = 4096;

  int64_t results = 0;
  for (auto _ : state) {
    int64_t emitted = 0;
    stream::StreamOptions options;
    options.on_result = [&emitted](const stream::StreamResult&) {
      ++emitted;
    };
    auto session = rt.SubmitStream({.wrapper = *handle}, std::move(options));
    MD_CHECK(session.ok());
    for (size_t fed = 0; fed < page.size(); fed += kChunk) {
      MD_CHECK((*session)
                   ->Feed(std::string_view(page).substr(
                       fed, std::min(kChunk, page.size() - fed)))
                   .ok());
    }
    auto xml = (*session)->Finish();
    MD_CHECK(xml.ok());
    benchmark::DoNotOptimize(xml);
    results += emitted;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(page.size()));
  state.counters["results_per_page"] = static_cast<double>(
      results / std::max<int64_t>(1, state.iterations()));
  state.counters["peak_rss_mb"] = PeakRssMb();
}
BENCHMARK(BM_StreamFullPage)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
