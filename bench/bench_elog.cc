// E11 — Corollary 6.4: Elog⁻ wrappers evaluate in O(|P|·|dom|). The product
// catalog wrapper over synthetic pages of growing size, through (a) the
// native pattern-fixpoint evaluator and (b) the datalog translation; HTML
// parsing is measured separately.

#include <benchmark/benchmark.h>

#include "src/core/grounder.h"
#include "src/elog/ast.h"
#include "src/elog/eval.h"
#include "src/elog/to_datalog.h"
#include "src/html/parser.h"
#include "src/html/synthetic.h"
#include "src/util/rng.h"

namespace {

using namespace mdatalog;

const char* kWrapper = R"(
  anynode(X) <- root(X).
  anynode(X) <- anynode(P), subelem(P, "_", X).
  item(X)   <- anynode(P), subelem(P, "tr@item", X).
  name(Y)   <- item(X), subelem(X, "td@name", Y).
  price(Y)  <- item(X), subelem(X, "td@price", Y).
  seller(Y) <- item(X), subelem(X, "td@seller", Y).
)";

tree::Tree CatalogTree(int32_t items) {
  util::Rng rng(3);
  html::CatalogOptions opts;
  opts.num_items = items;
  opts.with_ads = true;
  auto doc = html::ParseHtml(html::ProductCatalogPage(rng, opts));
  return html::ProjectAttributeIntoLabels(*doc, "class");
}

void BM_HtmlParse(benchmark::State& state) {
  util::Rng rng(3);
  html::CatalogOptions opts;
  opts.num_items = static_cast<int32_t>(state.range(0));
  std::string page = html::ProductCatalogPage(rng, opts);
  for (auto _ : state) {
    auto doc = html::ParseHtml(page);
    benchmark::DoNotOptimize(doc);
  }
  state.SetComplexityN(static_cast<int64_t>(page.size()));
  state.counters["bytes"] = static_cast<double>(page.size());
}
BENCHMARK(BM_HtmlParse)->Range(16, 1 << 13)->Complexity();

void BM_ElogNative(benchmark::State& state) {
  auto program = elog::ParseElog(kWrapper);
  tree::Tree t = CatalogTree(static_cast<int32_t>(state.range(0)));
  for (auto _ : state) {
    auto r = elog::EvaluateElog(*program, t);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(t.size());
  state.counters["nodes"] = static_cast<double>(t.size());
}
BENCHMARK(BM_ElogNative)->Range(16, 1 << 13)->Complexity();

void BM_ElogViaDatalog(benchmark::State& state) {
  auto program = elog::ParseElog(kWrapper);
  auto datalog = elog::ElogToDatalog(*program, "price");
  tree::Tree t = CatalogTree(static_cast<int32_t>(state.range(0)));
  for (auto _ : state) {
    auto r = core::EvaluateOnTree(*datalog, t);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(t.size());
}
BENCHMARK(BM_ElogViaDatalog)->Range(16, 1 << 11)->Complexity();

}  // namespace

BENCHMARK_MAIN();
