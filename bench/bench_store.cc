// The corpus store and the SIMD NodeSet kernels — the two halves of the
// "parse once, serve forever" PR. Series:
//
//   BM_PreparePage_ColdParse     — document preparation by parsing (the old
//                                  cold path): parse + project + EDB object.
//   BM_PreparePage_MmapWarm      — the same preparation out of an open
//                                  corpus store: Find + rehydrate, no parse.
//                                  Acceptance: ≥ 5× ColdParse per page.
//   BM_ServeFirstTouch_Parse     — fresh runtime serves N distinct pages
//   BM_ServeFirstTouch_Store       once each (first-touch latency, end to
//                                  end through Wrap), parse vs snapshot.
//   BM_NodeSetSetPlan_Scalar/D   — an EvalSetPlan-shaped kernel workload
//   BM_NodeSetSetPlan_Simd/D       (copy + 3 intersections + 1 delta
//                                  subtraction) over a D-node domain, scalar
//                                  vs runtime-dispatched kernels.
//                                  Acceptance: Simd ≥ 2× Scalar at D=131072.
//
// Counters report pages/sec (preparation/serving) and ops/sec (kernels).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "src/core/nodeset.h"
#include "src/core/simd_kernels.h"
#include "src/elog/ast.h"
#include "src/html/synthetic.h"
#include "src/runtime/document_cache.h"
#include "src/runtime/runtime.h"
#include "src/store/corpus_store.h"
#include "src/util/check.h"
#include "src/util/hash.h"
#include "src/util/rng.h"
#include "src/wrapper/wrapper.h"

namespace {

using namespace mdatalog;

constexpr int kDistinctPages = 16;
constexpr const char* kAttr = "class";

wrapper::Wrapper CatalogWrapper() {
  auto program = elog::ParseElog(R"(
    anynode(X) <- root(X).
    anynode(X) <- anynode(P), subelem(P, "_", X).
    item(X)  <- anynode(P), subelem(P, "tr@item", X).
    price(Y) <- item(X), subelem(X, "td@price", Y).
  )");
  MD_CHECK(program.ok());
  wrapper::Wrapper w;
  w.program = *program;
  w.extraction_patterns = {"item", "price"};
  return w;
}

const std::vector<std::string>& Pages() {
  static const std::vector<std::string>* pages = [] {
    auto* p = new std::vector<std::string>;
    for (int i = 0; i < kDistinctPages; ++i) {
      util::Rng rng(3000 + i);
      html::CatalogOptions opts;
      opts.num_items = 20 + i % 13;
      opts.with_ads = (i % 3 != 0);
      p->push_back(html::ProductCatalogPage(rng, opts));
    }
    return p;
  }();
  return *pages;
}

/// One store holding Pages() under kAttr projection, built once on disk.
std::shared_ptr<const store::CorpusStore> Store() {
  static const std::shared_ptr<const store::CorpusStore> store = [] {
    const std::string path =
        (std::filesystem::temp_directory_path() / "bench_store.mdcs").string();
    store::CorpusStore::Builder b;
    for (const std::string& page : Pages()) {
      MD_CHECK(b.AddHtml(page, kAttr).ok());
    }
    MD_CHECK(b.Save(path).ok());
    auto opened = store::CorpusStore::Open(path);
    MD_CHECK(opened.ok());
    return *opened;
  }();
  return store;
}

// ---------------------------------------------------------------------------
// Document preparation: cold parse vs mmap-warm rehydration
// ---------------------------------------------------------------------------

void BM_PreparePage_ColdParse(benchmark::State& state) {
  const auto& pages = Pages();
  size_t i = 0;
  for (auto _ : state) {
    auto doc = runtime::CachedDocument::Parse(pages[i % pages.size()], kAttr);
    MD_CHECK(doc.ok());
    benchmark::DoNotOptimize((*doc)->tree().size());
    ++i;
  }
  state.counters["pages_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PreparePage_ColdParse);

void BM_PreparePage_MmapWarm(benchmark::State& state) {
  const auto& pages = Pages();
  auto store = Store();
  // Hash once per page up front: the serving runtime hashes the request
  // bytes anyway for its memo key, so lookup cost shouldn't re-charge it.
  std::vector<util::Hash128> hashes;
  for (const std::string& page : pages) {
    hashes.push_back(util::HashBytes128(page));
  }
  size_t i = 0;
  for (auto _ : state) {
    auto frozen = store->Find(hashes[i % hashes.size()], kAttr);
    MD_CHECK(frozen.ok());
    auto doc = runtime::CachedDocument::FromFrozen(*frozen, store);
    benchmark::DoNotOptimize(doc->tree().size());
    ++i;
  }
  state.counters["pages_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PreparePage_MmapWarm);

// ---------------------------------------------------------------------------
// First-touch serving, end to end through the runtime
// ---------------------------------------------------------------------------

void ServeFirstTouch(benchmark::State& state, bool with_store) {
  const auto& pages = Pages();
  const wrapper::Wrapper w = CatalogWrapper();
  for (auto _ : state) {
    // A fresh runtime per round: every page is a first touch (in-memory
    // miss); with_store decides whether the miss parses or rehydrates.
    runtime::RuntimeOptions opts;
    opts.result_memo.byte_budget = 0;
    if (with_store) opts.corpus_store = Store();
    runtime::WrapperRuntime rt(opts);
    auto handle = rt.Register(w, kAttr);
    MD_CHECK(handle.ok());
    for (const std::string& page : pages) {
      auto out = rt.Wrap(*handle, page);
      MD_CHECK(out.ok());
      benchmark::DoNotOptimize(out->size());
    }
    if (with_store) {
      MD_CHECK(rt.stats().document_cache.store_hits ==
               static_cast<int64_t>(pages.size()));
    }
  }
  state.counters["pages_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * pages.size(),
      benchmark::Counter::kIsRate);
}

void BM_ServeFirstTouch_Parse(benchmark::State& state) {
  ServeFirstTouch(state, /*with_store=*/false);
}
BENCHMARK(BM_ServeFirstTouch_Parse);

void BM_ServeFirstTouch_Store(benchmark::State& state) {
  ServeFirstTouch(state, /*with_store=*/true);
}
BENCHMARK(BM_ServeFirstTouch_Store);

// ---------------------------------------------------------------------------
// SIMD kernels: an EvalSetPlan-shaped workload, scalar vs dispatched
// ---------------------------------------------------------------------------

core::NodeSet RandomSet(uint64_t seed, int32_t domain) {
  util::Rng rng(seed);
  core::NodeSet s(domain);
  for (int32_t i = 0; i < domain; ++i) {
    if (rng.Chance(1, 3)) s.Insert(i);
  }
  return s;
}

/// scratch = src; scratch ∩= a; scratch ∩= b; scratch ∩= c; scratch −= seen
/// — the shape of one compiled set-plan step (eval.cc EvalSetPlan).
void SetPlanWorkload(benchmark::State& state, bool force_scalar) {
  const int32_t domain = static_cast<int32_t>(state.range(0));
  const core::NodeSet src = RandomSet(1, domain);
  const core::NodeSet a = RandomSet(2, domain);
  const core::NodeSet b = RandomSet(3, domain);
  const core::NodeSet c = RandomSet(4, domain);
  const core::NodeSet seen = RandomSet(5, domain);

  core::simd::ForceScalar(force_scalar);
  core::NodeSet scratch(domain);
  for (auto _ : state) {
    scratch = src;
    scratch.IntersectWith(a);
    scratch.IntersectWith(b);
    scratch.IntersectWith(c);
    scratch.DifferenceWith(seen);
    benchmark::DoNotOptimize(scratch.count());
  }
  core::simd::ForceScalar(false);
  state.counters["setplans_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  state.SetLabel(force_scalar ? "scalar" : core::simd::ActiveKernelName());
}

void BM_NodeSetSetPlan_Scalar(benchmark::State& state) {
  SetPlanWorkload(state, /*force_scalar=*/true);
}
BENCHMARK(BM_NodeSetSetPlan_Scalar)->Arg(4096)->Arg(131072)->Arg(1 << 20);

void BM_NodeSetSetPlan_Simd(benchmark::State& state) {
  SetPlanWorkload(state, /*force_scalar=*/false);
}
BENCHMARK(BM_NodeSetSetPlan_Simd)->Arg(4096)->Arg(131072)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
