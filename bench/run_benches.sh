#!/usr/bin/env bash
# Runs the benchmark suites and writes BENCH_eval.json, BENCH_runtime.json,
# BENCH_admission.json, BENCH_store.json, BENCH_stream.json,
# BENCH_analysis.json, BENCH_telemetry.json and BENCH_qos.json at the repo
# root (google-benchmark's --benchmark_format=json), so the perf trajectory
# is tracked across PRs.
#
# Usage: bench/run_benches.sh [build_dir] [benchmark_filter]
#   build_dir         defaults to ./build (configured+built already, or this
#                     script configures and builds it)
#   benchmark_filter  defaults to all benchmarks in each suite

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"
FILTER="${2:-.}"

# Configure if needed, and always build: a stale binary would silently
# record pre-change numbers into the JSON outputs.
if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "${BUILD_DIR}" --target bench_eval_linear bench_runtime \
  bench_admission bench_store bench_stream bench_analysis bench_telemetry \
  bench_qos -j"$(nproc)"

"${BUILD_DIR}/bench_eval_linear" \
  --benchmark_filter="${FILTER}" \
  --benchmark_format=json \
  --benchmark_out="${REPO_ROOT}/BENCH_eval.json" \
  --benchmark_out_format=json

echo "wrote ${REPO_ROOT}/BENCH_eval.json"

# Serving-runtime throughput (cold vs warm cache, 1 vs N threads). A fixed
# min_time keeps the 1k-page corpus series comparable across PRs.
"${BUILD_DIR}/bench_runtime" \
  --benchmark_filter="${FILTER}" \
  --benchmark_min_time=0.2 \
  --benchmark_format=json \
  --benchmark_out="${REPO_ROOT}/BENCH_runtime.json" \
  --benchmark_out_format=json

echo "wrote ${REPO_ROOT}/BENCH_runtime.json"

# Hot/cold-mix serving front: single-mutex plain-LRU baseline vs the sharded
# TinyLFU front at 8 worker threads.
"${BUILD_DIR}/bench_admission" \
  --benchmark_filter="${FILTER}" \
  --benchmark_min_time=0.2 \
  --benchmark_format=json \
  --benchmark_out="${REPO_ROOT}/BENCH_admission.json" \
  --benchmark_out_format=json

echo "wrote ${REPO_ROOT}/BENCH_admission.json"

# Corpus-store snapshots + SIMD NodeSet kernels: cold parse vs mmap-warm
# rehydration, first-touch serving with/without a store, and the
# scalar-vs-dispatched set-plan kernel series.
"${BUILD_DIR}/bench_store" \
  --benchmark_filter="${FILTER}" \
  --benchmark_min_time=0.2 \
  --benchmark_format=json \
  --benchmark_out="${REPO_ROOT}/BENCH_store.json" \
  --benchmark_out_format=json

echo "wrote ${REPO_ROOT}/BENCH_store.json"

# Streaming front: first-result latency vs batch full-wrap on a 1000-item
# page, plus the end-to-end cost of the incremental machinery.
"${BUILD_DIR}/bench_stream" \
  --benchmark_filter="${FILTER}" \
  --benchmark_min_time=0.2 \
  --benchmark_format=json \
  --benchmark_out="${REPO_ROOT}/BENCH_stream.json" \
  --benchmark_out_format=json

echo "wrote ${REPO_ROOT}/BENCH_stream.json"

# Static-analysis subsystem: lint/canonicalization/equivalence throughput
# over the wrapper corpus, plus the canonical-key serving uplift A/B.
"${BUILD_DIR}/bench_analysis" \
  --benchmark_filter="${FILTER}" \
  --benchmark_min_time=0.2 \
  --benchmark_format=json \
  --benchmark_out="${REPO_ROOT}/BENCH_analysis.json" \
  --benchmark_out_format=json

echo "wrote ${REPO_ROOT}/BENCH_analysis.json"

# Telemetry overhead A/B: the fully-traced serving loop vs telemetry
# disabled. CI gates the pair — enabled must stay within 3% of disabled
# (check_bench_regression.py --overhead-pair).
"${BUILD_DIR}/bench_telemetry" \
  --benchmark_filter="${FILTER}" \
  --benchmark_min_time=0.2 \
  --benchmark_format=json \
  --benchmark_out="${REPO_ROOT}/BENCH_telemetry.json" \
  --benchmark_out_format=json

echo "wrote ${REPO_ROOT}/BENCH_telemetry.json"

# Multi-tenant QoS: hot-set serving under a cold-flood adversary, with and
# without fair-share protection. CI gates the intra-run pair — protected
# hot-serve must stay within 10% of the undisturbed baseline
# (check_bench_regression.py --overhead-pair).
"${BUILD_DIR}/bench_qos" \
  --benchmark_filter="${FILTER}" \
  --benchmark_min_time=0.2 \
  --benchmark_format=json \
  --benchmark_out="${REPO_ROOT}/BENCH_qos.json" \
  --benchmark_out_format=json

echo "wrote ${REPO_ROOT}/BENCH_qos.json"
