// E7 — Theorem 4.14 / Example 4.15: SQAu direct runs vs. the uv*w-marking
// datalog translation, on random unranked trees and on wide flat trees (the
// Figure 2 workload, scaled).

#include <benchmark/benchmark.h>

#include "src/core/grounder.h"
#include "src/qa/unranked.h"
#include "src/qa/unranked_to_datalog.h"
#include "src/tree/generator.h"
#include "src/util/rng.h"

namespace {

using namespace mdatalog;

tree::Tree WideTree(int32_t m) {
  return tree::ChildrenWord("a", std::vector<std::string>(m, "a"));
}

void BM_SQAu_EvenA_DirectRun(benchmark::State& state) {
  qa::UnrankedQA a = qa::EvenASQAu({"a", "b"});
  util::Rng rng(1);
  tree::Tree t = tree::RandomTree(rng, static_cast<int32_t>(state.range(0)),
                                  {"a", "b"});
  for (auto _ : state) {
    auto run = qa::RunUnrankedQA(a, t);
    benchmark::DoNotOptimize(run);
  }
  state.SetComplexityN(t.size());
}
BENCHMARK(BM_SQAu_EvenA_DirectRun)->Range(1 << 8, 1 << 14)->Complexity();

void BM_SQAu_EvenA_DatalogTranslation(benchmark::State& state) {
  qa::UnrankedQA a = qa::EvenASQAu({"a", "b"});
  auto program = qa::UnrankedQAToDatalog(a);
  util::Rng rng(1);
  tree::Tree t = tree::RandomTree(rng, static_cast<int32_t>(state.range(0)),
                                  {"a", "b"});
  for (auto _ : state) {
    auto r = core::EvaluateOnTree(*program, t);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(t.size());
}
BENCHMARK(BM_SQAu_EvenA_DatalogTranslation)
    ->Range(1 << 8, 1 << 12)
    ->Complexity();

void BM_SQAu_OddPositions_Figure2(benchmark::State& state) {
  // The Example 4.15 down-language on a root with m children.
  qa::UnrankedQA a = qa::OddPositionSQAu({"a"});
  auto program = qa::UnrankedQAToDatalog(a);
  tree::Tree t = WideTree(static_cast<int32_t>(state.range(0)));
  for (auto _ : state) {
    auto r = core::EvaluateOnTree(*program, t);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(t.size());
}
BENCHMARK(BM_SQAu_OddPositions_Figure2)->Range(1 << 6, 1 << 12)->Complexity();

void BM_SQAu_Stay2Dfa(benchmark::State& state) {
  qa::UnrankedQA a = qa::StayOddPositionSQAu({"a"});
  tree::Tree t = WideTree(static_cast<int32_t>(state.range(0)));
  for (auto _ : state) {
    auto run = qa::RunUnrankedQA(a, t);
    benchmark::DoNotOptimize(run);
  }
  state.SetComplexityN(t.size());
}
BENCHMARK(BM_SQAu_Stay2Dfa)->Range(1 << 6, 1 << 13)->Complexity();

}  // namespace

BENCHMARK_MAIN();
