// Multi-tenant QoS benchmark: what happens to tenant A's hot-set serving
// when tenant B floods the document cache with cold one-hit pages.
//
//   BM_QosHotServe/flood:F/fair:S — each iteration, tenant B (when F=1)
//     first floods 64 distinct cold pages through the cache from the worker
//     pool (untimed), then tenant A re-serves its 6-page hot set (timed,
//     manual time). S toggles fair-share eviction protection.
//
//   flood:0/fair:1 — no flood: the undisturbed hot-serve baseline.
//   flood:1/fair:0 — unprotected: B's flood evicts A's hot set every
//     iteration, so every timed request pays a re-parse.
//   flood:1/fair:1 — protected: A's resident bytes sit within its
//     guaranteed share (weight 2 of 4 → half the cache), so the flood
//     bounces off A's entries and A keeps serving from cache.
//
// The acceptance bar (gated in CI via check_bench_regression.py
// --overhead-pair at 10%): protected hot-serve throughput must stay within
// 10% of the no-flood baseline, in the same run. TinyLFU admission is OFF
// throughout so the sketch cannot mask the property under test — fair share
// alone must carry it; the result memo is off so the document cache is
// exercised on every request.

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "src/elog/ast.h"
#include "src/html/synthetic.h"
#include "src/runtime/runtime.h"
#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/wrapper/wrapper.h"

namespace {

using namespace mdatalog;

constexpr int kHotPages = 6;
constexpr int kFloodPages = 64;
constexpr runtime::TenantId kHotTenant = 1;    // registered first, weight 2
constexpr runtime::TenantId kFloodTenant = 2;  // registered second, weight 1

wrapper::Wrapper CatalogWrapper() {
  auto program = elog::ParseElog(R"(
    anynode(X) <- root(X).
    anynode(X) <- anynode(P), subelem(P, "_", X).
    item(X)  <- anynode(P), subelem(P, "tr@item", X).
    price(Y) <- item(X), subelem(X, "td@price", Y).
  )");
  MD_CHECK(program.ok());
  wrapper::Wrapper w;
  w.program = *program;
  w.extraction_patterns = {"item", "price"};
  return w;
}

std::string Page(uint64_t seed) {
  util::Rng rng(seed);
  html::CatalogOptions opts;
  opts.num_items = 10;
  opts.with_ads = (seed % 3 != 0);
  return html::ProductCatalogPage(rng, opts);
}

const std::vector<std::string>& HotPages() {
  static const std::vector<std::string>* pages = [] {
    auto* p = new std::vector<std::string>;
    for (int i = 0; i < kHotPages; ++i) p->push_back(Page(1 + i));
    return p;
  }();
  return *pages;
}

const std::vector<std::string>& FloodPages() {
  static const std::vector<std::string>* pages = [] {
    auto* p = new std::vector<std::string>;
    for (int i = 0; i < kFloodPages; ++i) p->push_back(Page(5000 + i));
    return p;
  }();
  return *pages;
}

std::vector<runtime::Request> TenantBatch(const runtime::WrapperHandle& handle,
                                          const std::vector<std::string>& pages,
                                          runtime::TenantId tenant) {
  std::vector<runtime::Request> requests;
  requests.reserve(pages.size());
  for (const std::string& page : pages) {
    requests.push_back(
        {runtime::PageRef::View(page), handle, {.tenant = tenant}});
  }
  return requests;
}

/// The hot set's post-evaluation resident bytes (the cache recharges entries
/// with their materialized-EDB footprint after evaluation, so a parse-time
/// probe would undersize the budget). Measured once through a throwaway
/// runtime with an effectively unbounded cache.
int64_t HotSetServedBytes() {
  static const int64_t bytes = [] {
    runtime::RuntimeOptions opts;
    opts.num_threads = 2;
    opts.document_cache = {.byte_budget = 1 << 30, .num_shards = 1};
    opts.result_memo.byte_budget = 0;
    runtime::WrapperRuntime rt(opts);
    auto handle = rt.Register(CatalogWrapper(), "class");
    MD_CHECK(handle.ok());
    auto results = rt.SubmitBatch(TenantBatch(*handle, HotPages(), 0));
    for (const auto& r : results) MD_CHECK(r.ok());
    return rt.stats().document_cache.bytes_in_use;
  }();
  return bytes;
}

/// range(0) = flood on/off, range(1) = fair share on/off.
void BM_QosHotServe(benchmark::State& state) {
  const bool flood_on = state.range(0) != 0;
  const bool fair = state.range(1) != 0;

  runtime::RuntimeOptions opts;
  opts.num_threads = 8;
  // Budget 3× the served hot set, one shard: the hot tenant's guaranteed
  // half (weight 2 of total 4) covers its hot set with slack, and the flood
  // tenant has real room to churn in. TinyLFU off — see the file comment.
  opts.document_cache = {.byte_budget = 3 * HotSetServedBytes(),
                         .num_shards = 1,
                         .tinylfu_admission = false,
                         .fair_share = fair};
  opts.result_memo.byte_budget = 0;
  opts.tenants = {{.name = "hot", .cache_weight = 2.0},
                  {.name = "flood", .cache_weight = 1.0}};
  runtime::WrapperRuntime rt(opts);
  auto handle = rt.Register(CatalogWrapper(), "class");
  MD_CHECK(handle.ok());

  // Warm-up: the hot tenant populates its working set.
  {
    auto warm = rt.SubmitBatch(TenantBatch(*handle, HotPages(), kHotTenant));
    for (const auto& r : warm) MD_CHECK(r.ok());
  }

  int64_t pages = 0;
  for (auto _ : state) {
    if (flood_on) {
      // Untimed: the adversary's cold scan, fanned across the pool.
      auto flooded =
          rt.SubmitBatch(TenantBatch(*handle, FloodPages(), kFloodTenant));
      for (const auto& r : flooded) MD_CHECK(r.ok());
    }
    auto batch = TenantBatch(*handle, HotPages(), kHotTenant);
    const auto t0 = std::chrono::steady_clock::now();
    auto results = rt.SubmitBatch(std::move(batch));
    const auto t1 = std::chrono::steady_clock::now();
    for (const auto& r : results) MD_CHECK(r.ok());
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
    pages += kHotPages;
  }
  state.SetItemsProcessed(pages);
  state.counters["hot_pages_per_sec"] = benchmark::Counter(
      static_cast<double>(pages), benchmark::Counter::kIsRate);
  const auto hot = rt.tenant_stats(kHotTenant);
  state.counters["hot_doc_hits"] =
      static_cast<double>(hot.document_cache.hits);
  state.counters["hot_doc_misses"] =
      static_cast<double>(hot.document_cache.misses);
  state.counters["fair_share_rejects"] =
      static_cast<double>(rt.stats().document_cache.fair_share_rejects);
}
// Manual time: only the hot tenant's serve is measured; the flood phase is
// setup. The three configs run in one process so the 10% acceptance ratio
// is immune to machine-to-machine jitter.
BENCHMARK(BM_QosHotServe)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->ArgNames({"flood", "fair"})
    ->Args({0, 1})   // undisturbed baseline
    ->Args({1, 0})   // unprotected: the flood evicts the hot set
    ->Args({1, 1});  // fair share: the hot set is guaranteed

}  // namespace

BENCHMARK_MAIN();
