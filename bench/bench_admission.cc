// Serving-front hardening benchmark: hot/cold mixed traffic at 8 worker
// threads through the document cache, comparing the single-mutex plain-LRU
// baseline (PR 2's front) against the sharded TinyLFU front.
//
//   BM_HotColdMix/shards:S/admission:A — 8 threads, 50% of requests to a
//     16-page hot set, 50% one-hit cold pages, document-cache budget sized
//     to roughly the hot set. S=1/A=0 is the old front; S=8/A=1 the new.
//
// What moves the number: plain LRU lets every cold one-hit page evict a hot
// resident (each re-request of a hot page then re-parses), and one mutex
// serializes all 8 workers on every cache touch. TinyLFU keeps the hot set
// resident; sharding splits the lock. The result memo is off so the document
// cache is actually exercised on every request.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/elog/ast.h"
#include "src/html/synthetic.h"
#include "src/runtime/runtime.h"
#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/wrapper/wrapper.h"

namespace {

using namespace mdatalog;

constexpr int kHotPages = 16;
constexpr int kRequests = 512;

wrapper::Wrapper CatalogWrapper() {
  auto program = elog::ParseElog(R"(
    anynode(X) <- root(X).
    anynode(X) <- anynode(P), subelem(P, "_", X).
    item(X)  <- anynode(P), subelem(P, "tr@item", X).
    price(Y) <- item(X), subelem(X, "td@price", Y).
  )");
  MD_CHECK(program.ok());
  wrapper::Wrapper w;
  w.program = *program;
  w.extraction_patterns = {"item", "price"};
  return w;
}

/// One borrowed-page Request per mix entry (the mix outlives the join).
std::vector<runtime::Request> ViewBatch(
    const runtime::WrapperHandle& handle,
    const std::vector<std::string>& pages) {
  std::vector<runtime::Request> requests;
  requests.reserve(pages.size());
  for (const std::string& page : pages) {
    requests.push_back({runtime::PageRef::View(page), handle, {}});
  }
  return requests;
}

std::string Page(uint64_t seed, int32_t items) {
  util::Rng rng(seed);
  html::CatalogOptions opts;
  opts.num_items = items;
  opts.with_ads = (seed % 3 != 0);
  return html::ProductCatalogPage(rng, opts);
}

/// The request stream: even slots round-robin the hot set (each hot page
/// requested kRequests/2/kHotPages = 16 times), odd slots are distinct
/// one-hit cold pages — the crawl traffic that thrashes a plain LRU.
const std::vector<std::string>& Mix() {
  static const std::vector<std::string>* mix = [] {
    auto* pages = new std::vector<std::string>;
    std::vector<std::string> hot;
    for (int i = 0; i < kHotPages; ++i) hot.push_back(Page(1 + i, 10));
    for (int i = 0; i < kRequests; ++i) {
      if (i % 2 == 0) {
        pages->push_back(hot[(i / 2) % kHotPages]);
      } else {
        pages->push_back(Page(10000 + i, 10));
      }
    }
    return pages;
  }();
  return *mix;
}

/// Budget that holds the hot set plus a little slack — small enough that
/// cold insertions must evict hot residents under plain LRU.
int64_t HotSetBudget() {
  static const int64_t budget = [] {
    auto probe = runtime::CachedDocument::Parse(Page(1, 10), "class");
    MD_CHECK(probe.ok());
    return (*probe)->ApproxBytes() * (kHotPages + kHotPages / 4);
  }();
  return budget;
}

void BM_HotColdMix(benchmark::State& state) {
  runtime::RuntimeOptions opts;
  opts.num_threads = 8;
  opts.document_cache.byte_budget = HotSetBudget();
  opts.document_cache.num_shards = static_cast<int32_t>(state.range(0));
  opts.document_cache.tinylfu_admission = state.range(1) != 0;
  opts.result_memo.byte_budget = 0;  // exercise the document cache, not the memo
  runtime::WrapperRuntime rt(opts);
  auto handle = rt.Register(CatalogWrapper(), "class");
  MD_CHECK(handle.ok());
  const auto& mix = Mix();

  // Warm-up: populates the cache and (with admission on) teaches the sketch
  // which pages are hot.
  {
    auto warm = rt.SubmitBatch(ViewBatch(*handle, mix));
    for (const auto& r : warm) MD_CHECK(r.ok());
  }

  int64_t pages = 0;
  for (auto _ : state) {
    auto results = rt.SubmitBatch(ViewBatch(*handle, mix));
    MD_CHECK(results.size() == mix.size());
    for (const auto& r : results) MD_CHECK(r.ok());
    benchmark::DoNotOptimize(results);
    pages += static_cast<int64_t>(results.size());
  }
  state.SetItemsProcessed(pages);
  state.counters["pages_per_sec"] = benchmark::Counter(
      static_cast<double>(pages), benchmark::Counter::kIsRate);
  auto stats = rt.stats();
  state.counters["doc_cache_hits"] =
      static_cast<double>(stats.document_cache.hits);
  state.counters["doc_cache_misses"] =
      static_cast<double>(stats.document_cache.misses);
  state.counters["admission_rejects"] =
      static_cast<double>(stats.document_cache.admission_rejects);
}
// UseRealTime: the workers run off the main thread; wall-clock is the
// serving number.
BENCHMARK(BM_HotColdMix)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->ArgNames({"shards", "admission"})
    ->Args({1, 0})   // PR 2 baseline: one mutex, plain LRU
    ->Args({1, 1})   // admission only
    ->Args({8, 0})   // sharding only
    ->Args({8, 1});  // the hardened front

}  // namespace

BENCHMARK_MAIN();
