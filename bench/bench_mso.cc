// E5 — Theorem 4.4 / Corollary 4.17: unary MSO queries compile to automata
// and to monadic datalog; both evaluate in time linear in the tree. Compile
// times grow with quantifier structure (the nonelementary dimension); query
// evaluation stays linear in |dom|.

#include <benchmark/benchmark.h>

#include "src/core/grounder.h"
#include "src/mso/compile.h"
#include "src/mso/formula.h"
#include "src/mso/to_datalog.h"
#include "src/tree/generator.h"
#include "src/util/rng.h"

namespace {

using namespace mdatalog;

const char* kFormulas[] = {
    // 0: one quantifier
    "exists y. (nextsibling(x, y) & label_b(y))",
    // 1: two quantifiers with negation
    "~(exists y. firstchild(x, y)) & exists z. nextsibling(z, x)",
    // 2: set-quantifier reachability (descendant-of-b)
    "exists y. (label_b(y) & forall Z. ((in(y, Z) & "
    "(forall u. forall v. (in(u, Z) & firstchild(u, v) -> in(v, Z))) & "
    "(forall u2. forall v2. (in(u2, Z) & nextsibling(u2, v2) -> in(v2, Z)))"
    ") -> in(x, Z)))",
};

void BM_MsoCompile(benchmark::State& state) {
  auto f = mso::ParseFormula(kFormulas[state.range(0)]);
  mso::MsoCompileOptions opts;
  opts.alphabet = {"a", "b"};
  int32_t states = 0;
  for (auto _ : state) {
    auto bta = mso::CompileUnaryQuery(*f, "x", opts);
    states = bta.ok() ? bta->num_states : -1;
    benchmark::DoNotOptimize(bta);
  }
  state.counters["aut_states"] = states;
  state.counters["qrank"] = mso::QuantifierRank(*f);
}
BENCHMARK(BM_MsoCompile)->DenseRange(0, 2, 1);

void BM_MsoQuery_Automaton(benchmark::State& state) {
  auto f = mso::ParseFormula(kFormulas[2]);
  mso::MsoCompileOptions opts;
  opts.alphabet = {"a", "b"};
  auto bta = mso::CompileUnaryQuery(*f, "x", opts);
  util::Rng rng(11);
  tree::Tree t = tree::RandomTree(rng, static_cast<int32_t>(state.range(0)),
                                  {"a", "b"});
  auto cls = mso::ClassOfNodes(t, opts.alphabet);
  for (auto _ : state) {
    auto sel = mso::BtaUnaryQuery(*bta, t, *cls);
    benchmark::DoNotOptimize(sel);
  }
  state.SetComplexityN(t.size());
}
BENCHMARK(BM_MsoQuery_Automaton)->Range(1 << 10, 1 << 17)->Complexity();

void BM_MsoQuery_Datalog(benchmark::State& state) {
  auto f = mso::ParseFormula(kFormulas[2]);
  mso::MsoCompileOptions opts;
  opts.alphabet = {"a", "b"};
  auto bta = mso::CompileUnaryQuery(*f, "x", opts);
  auto program = mso::BtaToDatalog(*bta, opts.alphabet);
  util::Rng rng(11);
  tree::Tree t = tree::RandomTree(rng, static_cast<int32_t>(state.range(0)),
                                  {"a", "b"});
  for (auto _ : state) {
    auto sel = core::EvaluateOnTree(*program, t, core::Engine::kGrounded);
    benchmark::DoNotOptimize(sel);
  }
  state.SetComplexityN(t.size());
  state.counters["rules"] = static_cast<double>(program->rules().size());
}
BENCHMARK(BM_MsoQuery_Datalog)->Range(1 << 10, 1 << 15)->Complexity();

}  // namespace

BENCHMARK_MAIN();
