// E6 — Example 4.21 + Theorem 4.11: terminating query-automaton runs take
// Θ(((n+1)/2)^(α+1)) steps on complete binary trees; the datalog translation
// evaluates the same query in O(β⁴·n). The two series expose the shape (and
// the crossover) the paper argues; the "steps" counter reports the measured
// automaton work.

#include <benchmark/benchmark.h>

#include "src/core/grounder.h"
#include "src/qa/ranked.h"
#include "src/qa/ranked_to_datalog.h"
#include "src/tree/generator.h"

namespace {

using namespace mdatalog;

void BM_BlowupQA_DirectRun(benchmark::State& state) {
  qa::RankedQA a = qa::BlowupQAr(/*alpha=*/1);
  tree::Tree t =
      tree::CompleteBinaryTree(static_cast<int32_t>(state.range(0)), "a");
  int64_t steps = 0;
  for (auto _ : state) {
    auto run = qa::RunRankedQA(a, t);
    steps = run.ok() ? run->steps : -1;
    benchmark::DoNotOptimize(run);
  }
  state.SetComplexityN(t.size());
  state.counters["steps"] = static_cast<double>(steps);
  state.counters["nodes"] = static_cast<double>(t.size());
}
// Depths 2..8: 7..511 nodes; steps grow ~4x per depth (superquadratic in n).
BENCHMARK(BM_BlowupQA_DirectRun)->DenseRange(2, 8, 1)->Complexity();

void BM_BlowupQA_DatalogTranslation(benchmark::State& state) {
  qa::RankedQA a = qa::BlowupQAr(/*alpha=*/1);
  auto program = qa::RankedQAToDatalog(a);
  tree::Tree t =
      tree::CompleteBinaryTree(static_cast<int32_t>(state.range(0)), "a");
  for (auto _ : state) {
    auto r = core::EvaluateOnTree(*program, t, core::Engine::kGrounded);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(t.size());
  state.counters["nodes"] = static_cast<double>(t.size());
}
// The datalog route scales to far deeper trees (depth 14 = 32767 nodes).
BENCHMARK(BM_BlowupQA_DatalogTranslation)->DenseRange(2, 14, 2)->Complexity();

void BM_EvenAQA_DirectRun(benchmark::State& state) {
  // Example 4.9's automaton is one-pass: linear, like its translation.
  qa::RankedQA a = qa::EvenAQAr({"a"});
  tree::Tree t =
      tree::CompleteBinaryTree(static_cast<int32_t>(state.range(0)), "a");
  for (auto _ : state) {
    auto run = qa::RunRankedQA(a, t);
    benchmark::DoNotOptimize(run);
  }
  state.SetComplexityN(t.size());
}
BENCHMARK(BM_EvenAQA_DirectRun)->DenseRange(4, 14, 2)->Complexity();

void BM_EvenAQA_DatalogTranslation(benchmark::State& state) {
  qa::RankedQA a = qa::EvenAQAr({"a"});
  auto program = qa::RankedQAToDatalog(a);
  tree::Tree t =
      tree::CompleteBinaryTree(static_cast<int32_t>(state.range(0)), "a");
  for (auto _ : state) {
    auto r = core::EvaluateOnTree(*program, t, core::Engine::kGrounded);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(t.size());
}
BENCHMARK(BM_EvenAQA_DatalogTranslation)->DenseRange(4, 14, 2)->Complexity();

}  // namespace

BENCHMARK_MAIN();
