// Section 7 — Core XPath maps to monadic datalog and inherits its
// O(|P|·|dom|) evaluation: compiled-query evaluation over growing documents,
// against the direct set-based evaluator.

#include <benchmark/benchmark.h>

#include "src/core/grounder.h"
#include "src/tree/generator.h"
#include "src/util/rng.h"
#include "src/xpath/xpath.h"

namespace {

using namespace mdatalog;

const char* kQuery = "//a[b and following-sibling::a]/b";

tree::Tree MakeTree(int64_t n) {
  util::Rng rng(21);
  return tree::RandomTree(rng, static_cast<int32_t>(n), {"a", "b", "c"});
}

void BM_XPath_ViaDatalog(benchmark::State& state) {
  auto path = xpath::ParseXPath(kQuery);
  auto program = xpath::XPathToDatalog(*path);
  tree::Tree t = MakeTree(state.range(0));
  for (auto _ : state) {
    auto r = core::EvaluateOnTree(*program, t, core::Engine::kGrounded);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(t.size());
  state.counters["rules"] = static_cast<double>(program->rules().size());
}
BENCHMARK(BM_XPath_ViaDatalog)->Range(1 << 10, 1 << 16)->Complexity();

void BM_XPath_Reference(benchmark::State& state) {
  auto path = xpath::ParseXPath(kQuery);
  tree::Tree t = MakeTree(state.range(0));
  for (auto _ : state) {
    auto r = xpath::EvalXPathReference(t, *path);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(t.size());
}
BENCHMARK(BM_XPath_Reference)->Range(1 << 10, 1 << 16)->Complexity();

}  // namespace

BENCHMARK_MAIN();
