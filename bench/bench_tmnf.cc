// E8 — Theorem 5.2: the TMNF translation runs in time O(|P|) with output
// linear in the input. Random programs of growing size through the full
// pipeline; counters report the output/input rule ratio.

#include <benchmark/benchmark.h>

#include "src/core/program_generator.h"
#include "src/tmnf/pipeline.h"
#include "src/util/rng.h"

namespace {

using namespace mdatalog;

void BM_ToTmnf(benchmark::State& state) {
  util::Rng rng(99);
  core::ProgramGenOptions opts;
  opts.num_rules = static_cast<int32_t>(state.range(0));
  opts.num_idb_preds = std::max<int32_t>(4, opts.num_rules / 4);
  opts.allow_extended = true;  // child/lastchild force the full chase
  core::Program p = core::RandomMonadicProgram(rng, opts);
  tmnf::TmnfStats stats;
  for (auto _ : state) {
    auto out = tmnf::ToTmnf(p, &stats);
    benchmark::DoNotOptimize(out);
  }
  state.SetComplexityN(p.SizeInAtoms());
  state.counters["in_rules"] = stats.input_rules;
  state.counters["out_rules"] = stats.output_rules;
  state.counters["expansion"] =
      stats.input_rules > 0
          ? static_cast<double>(stats.output_rules) / stats.input_rules
          : 0;
}
BENCHMARK(BM_ToTmnf)->Range(8, 1 << 9)->Complexity();

void BM_ToTmnf_NoExtended(benchmark::State& state) {
  // τ_ur-only programs skip the child elimination; the pipeline is cheaper.
  util::Rng rng(7);
  core::ProgramGenOptions opts;
  opts.num_rules = static_cast<int32_t>(state.range(0));
  opts.num_idb_preds = std::max<int32_t>(4, opts.num_rules / 4);
  opts.allow_extended = false;
  core::Program p = core::RandomMonadicProgram(rng, opts);
  for (auto _ : state) {
    auto out = tmnf::ToTmnf(p);
    benchmark::DoNotOptimize(out);
  }
  state.SetComplexityN(p.SizeInAtoms());
}
BENCHMARK(BM_ToTmnf_NoExtended)->Range(8, 1 << 9)->Complexity();

}  // namespace

BENCHMARK_MAIN();
