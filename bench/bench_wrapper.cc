// E15 — the end-to-end Lixto scenario: HTML bytes → parse → attribute
// projection → Elog⁻ evaluation → output tree → XML, over catalog pages of
// growing size. The whole pipeline is linear in the page.

#include <benchmark/benchmark.h>

#include "src/elog/ast.h"
#include "src/html/parser.h"
#include "src/html/synthetic.h"
#include "src/tree/serialize.h"
#include "src/util/rng.h"
#include "src/wrapper/wrapper.h"

namespace {

using namespace mdatalog;

void BM_WrapCatalogEndToEnd(benchmark::State& state) {
  util::Rng rng(3);
  html::CatalogOptions opts;
  opts.num_items = static_cast<int32_t>(state.range(0));
  opts.with_ads = true;
  std::string page = html::ProductCatalogPage(rng, opts);

  auto program = elog::ParseElog(R"(
    anynode(X) <- root(X).
    anynode(X) <- anynode(P), subelem(P, "_", X).
    item(X)  <- anynode(P), subelem(P, "tr@item", X).
    price(Y) <- item(X), subelem(X, "td@price", Y).
  )");
  wrapper::Wrapper w;
  w.program = *program;
  w.extraction_patterns = {"item", "price"};

  int64_t extracted = 0;
  for (auto _ : state) {
    auto doc = html::ParseHtml(page);
    tree::Tree t = html::ProjectAttributeIntoLabels(*doc, "class");
    auto out = wrapper::WrapTree(w, t);
    std::string xml = tree::ToXml(*out);
    extracted = out->NumChildren(out->root());
    benchmark::DoNotOptimize(xml);
  }
  state.SetComplexityN(static_cast<int64_t>(page.size()));
  state.counters["items"] = static_cast<double>(extracted);
  state.counters["page_bytes"] = static_cast<double>(page.size());
}
BENCHMARK(BM_WrapCatalogEndToEnd)->Range(16, 1 << 12)->Complexity();

}  // namespace

BENCHMARK_MAIN();
