# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-asan
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/admission_test[1]_include.cmake")
include("/root/repo/build-asan/caterpillar_test[1]_include.cmake")
include("/root/repo/build-asan/core_ast_test[1]_include.cmake")
include("/root/repo/build-asan/core_eval_test[1]_include.cmake")
include("/root/repo/build-asan/deadline_test[1]_include.cmake")
include("/root/repo/build-asan/elog_test[1]_include.cmake")
include("/root/repo/build-asan/engine_equivalence_test[1]_include.cmake")
include("/root/repo/build-asan/html_test[1]_include.cmake")
include("/root/repo/build-asan/mso_test[1]_include.cmake")
include("/root/repo/build-asan/paper_results_test[1]_include.cmake")
include("/root/repo/build-asan/qa_test[1]_include.cmake")
include("/root/repo/build-asan/robustness_test[1]_include.cmake")
include("/root/repo/build-asan/runtime_test[1]_include.cmake")
include("/root/repo/build-asan/tmnf_test[1]_include.cmake")
include("/root/repo/build-asan/tree_test[1]_include.cmake")
include("/root/repo/build-asan/util_test[1]_include.cmake")
include("/root/repo/build-asan/xpath_test[1]_include.cmake")
