# Empty dependencies file for paper_results_test.
# This may be replaced when dependencies are built.
