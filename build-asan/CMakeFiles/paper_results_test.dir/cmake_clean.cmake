file(REMOVE_RECURSE
  "CMakeFiles/paper_results_test.dir/tests/paper_results_test.cc.o"
  "CMakeFiles/paper_results_test.dir/tests/paper_results_test.cc.o.d"
  "paper_results_test"
  "paper_results_test.pdb"
  "paper_results_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_results_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
