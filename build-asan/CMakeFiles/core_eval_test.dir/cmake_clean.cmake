file(REMOVE_RECURSE
  "CMakeFiles/core_eval_test.dir/tests/core_eval_test.cc.o"
  "CMakeFiles/core_eval_test.dir/tests/core_eval_test.cc.o.d"
  "core_eval_test"
  "core_eval_test.pdb"
  "core_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
