file(REMOVE_RECURSE
  "CMakeFiles/core_ast_test.dir/tests/core_ast_test.cc.o"
  "CMakeFiles/core_ast_test.dir/tests/core_ast_test.cc.o.d"
  "core_ast_test"
  "core_ast_test.pdb"
  "core_ast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
