# Empty dependencies file for core_ast_test.
# This may be replaced when dependencies are built.
