file(REMOVE_RECURSE
  "CMakeFiles/engine_equivalence_test.dir/tests/engine_equivalence_test.cc.o"
  "CMakeFiles/engine_equivalence_test.dir/tests/engine_equivalence_test.cc.o.d"
  "engine_equivalence_test"
  "engine_equivalence_test.pdb"
  "engine_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
