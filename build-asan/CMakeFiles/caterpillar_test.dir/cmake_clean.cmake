file(REMOVE_RECURSE
  "CMakeFiles/caterpillar_test.dir/tests/caterpillar_test.cc.o"
  "CMakeFiles/caterpillar_test.dir/tests/caterpillar_test.cc.o.d"
  "caterpillar_test"
  "caterpillar_test.pdb"
  "caterpillar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caterpillar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
