# Empty dependencies file for caterpillar_test.
# This may be replaced when dependencies are built.
