# Empty dependencies file for tmnf_test.
# This may be replaced when dependencies are built.
