file(REMOVE_RECURSE
  "CMakeFiles/tmnf_test.dir/tests/tmnf_test.cc.o"
  "CMakeFiles/tmnf_test.dir/tests/tmnf_test.cc.o.d"
  "tmnf_test"
  "tmnf_test.pdb"
  "tmnf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmnf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
