# Empty dependencies file for mso_test.
# This may be replaced when dependencies are built.
