file(REMOVE_RECURSE
  "CMakeFiles/mso_test.dir/tests/mso_test.cc.o"
  "CMakeFiles/mso_test.dir/tests/mso_test.cc.o.d"
  "mso_test"
  "mso_test.pdb"
  "mso_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mso_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
