# Empty dependencies file for mdatalog.
# This may be replaced when dependencies are built.
