file(REMOVE_RECURSE
  "libmdatalog.a"
)
