
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/caterpillar/containment.cc" "CMakeFiles/mdatalog.dir/src/caterpillar/containment.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/caterpillar/containment.cc.o.d"
  "/root/repo/src/caterpillar/eval.cc" "CMakeFiles/mdatalog.dir/src/caterpillar/eval.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/caterpillar/eval.cc.o.d"
  "/root/repo/src/caterpillar/expr.cc" "CMakeFiles/mdatalog.dir/src/caterpillar/expr.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/caterpillar/expr.cc.o.d"
  "/root/repo/src/caterpillar/nfa.cc" "CMakeFiles/mdatalog.dir/src/caterpillar/nfa.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/caterpillar/nfa.cc.o.d"
  "/root/repo/src/caterpillar/to_datalog.cc" "CMakeFiles/mdatalog.dir/src/caterpillar/to_datalog.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/caterpillar/to_datalog.cc.o.d"
  "/root/repo/src/core/ast.cc" "CMakeFiles/mdatalog.dir/src/core/ast.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/core/ast.cc.o.d"
  "/root/repo/src/core/compiled.cc" "CMakeFiles/mdatalog.dir/src/core/compiled.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/core/compiled.cc.o.d"
  "/root/repo/src/core/database.cc" "CMakeFiles/mdatalog.dir/src/core/database.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/core/database.cc.o.d"
  "/root/repo/src/core/eval.cc" "CMakeFiles/mdatalog.dir/src/core/eval.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/core/eval.cc.o.d"
  "/root/repo/src/core/examples.cc" "CMakeFiles/mdatalog.dir/src/core/examples.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/core/examples.cc.o.d"
  "/root/repo/src/core/grounder.cc" "CMakeFiles/mdatalog.dir/src/core/grounder.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/core/grounder.cc.o.d"
  "/root/repo/src/core/horn.cc" "CMakeFiles/mdatalog.dir/src/core/horn.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/core/horn.cc.o.d"
  "/root/repo/src/core/parser.cc" "CMakeFiles/mdatalog.dir/src/core/parser.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/core/parser.cc.o.d"
  "/root/repo/src/core/program_generator.cc" "CMakeFiles/mdatalog.dir/src/core/program_generator.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/core/program_generator.cc.o.d"
  "/root/repo/src/core/reference_eval.cc" "CMakeFiles/mdatalog.dir/src/core/reference_eval.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/core/reference_eval.cc.o.d"
  "/root/repo/src/core/validate.cc" "CMakeFiles/mdatalog.dir/src/core/validate.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/core/validate.cc.o.d"
  "/root/repo/src/elog/ast.cc" "CMakeFiles/mdatalog.dir/src/elog/ast.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/elog/ast.cc.o.d"
  "/root/repo/src/elog/eval.cc" "CMakeFiles/mdatalog.dir/src/elog/eval.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/elog/eval.cc.o.d"
  "/root/repo/src/elog/from_datalog.cc" "CMakeFiles/mdatalog.dir/src/elog/from_datalog.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/elog/from_datalog.cc.o.d"
  "/root/repo/src/elog/to_datalog.cc" "CMakeFiles/mdatalog.dir/src/elog/to_datalog.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/elog/to_datalog.cc.o.d"
  "/root/repo/src/elog/visual.cc" "CMakeFiles/mdatalog.dir/src/elog/visual.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/elog/visual.cc.o.d"
  "/root/repo/src/html/parser.cc" "CMakeFiles/mdatalog.dir/src/html/parser.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/html/parser.cc.o.d"
  "/root/repo/src/html/synthetic.cc" "CMakeFiles/mdatalog.dir/src/html/synthetic.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/html/synthetic.cc.o.d"
  "/root/repo/src/html/tokenizer.cc" "CMakeFiles/mdatalog.dir/src/html/tokenizer.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/html/tokenizer.cc.o.d"
  "/root/repo/src/mso/automaton.cc" "CMakeFiles/mdatalog.dir/src/mso/automaton.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/mso/automaton.cc.o.d"
  "/root/repo/src/mso/compile.cc" "CMakeFiles/mdatalog.dir/src/mso/compile.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/mso/compile.cc.o.d"
  "/root/repo/src/mso/formula.cc" "CMakeFiles/mdatalog.dir/src/mso/formula.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/mso/formula.cc.o.d"
  "/root/repo/src/mso/to_datalog.cc" "CMakeFiles/mdatalog.dir/src/mso/to_datalog.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/mso/to_datalog.cc.o.d"
  "/root/repo/src/qa/ranked.cc" "CMakeFiles/mdatalog.dir/src/qa/ranked.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/qa/ranked.cc.o.d"
  "/root/repo/src/qa/ranked_to_datalog.cc" "CMakeFiles/mdatalog.dir/src/qa/ranked_to_datalog.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/qa/ranked_to_datalog.cc.o.d"
  "/root/repo/src/qa/unranked.cc" "CMakeFiles/mdatalog.dir/src/qa/unranked.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/qa/unranked.cc.o.d"
  "/root/repo/src/qa/unranked_to_datalog.cc" "CMakeFiles/mdatalog.dir/src/qa/unranked_to_datalog.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/qa/unranked_to_datalog.cc.o.d"
  "/root/repo/src/runtime/admission.cc" "CMakeFiles/mdatalog.dir/src/runtime/admission.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/runtime/admission.cc.o.d"
  "/root/repo/src/runtime/document_cache.cc" "CMakeFiles/mdatalog.dir/src/runtime/document_cache.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/runtime/document_cache.cc.o.d"
  "/root/repo/src/runtime/program_cache.cc" "CMakeFiles/mdatalog.dir/src/runtime/program_cache.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/runtime/program_cache.cc.o.d"
  "/root/repo/src/runtime/runtime.cc" "CMakeFiles/mdatalog.dir/src/runtime/runtime.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/runtime/runtime.cc.o.d"
  "/root/repo/src/runtime/thread_pool.cc" "CMakeFiles/mdatalog.dir/src/runtime/thread_pool.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/runtime/thread_pool.cc.o.d"
  "/root/repo/src/tmnf/acyclic.cc" "CMakeFiles/mdatalog.dir/src/tmnf/acyclic.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/tmnf/acyclic.cc.o.d"
  "/root/repo/src/tmnf/normal_form.cc" "CMakeFiles/mdatalog.dir/src/tmnf/normal_form.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/tmnf/normal_form.cc.o.d"
  "/root/repo/src/tmnf/pipeline.cc" "CMakeFiles/mdatalog.dir/src/tmnf/pipeline.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/tmnf/pipeline.cc.o.d"
  "/root/repo/src/tree/binary.cc" "CMakeFiles/mdatalog.dir/src/tree/binary.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/tree/binary.cc.o.d"
  "/root/repo/src/tree/generator.cc" "CMakeFiles/mdatalog.dir/src/tree/generator.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/tree/generator.cc.o.d"
  "/root/repo/src/tree/ranked.cc" "CMakeFiles/mdatalog.dir/src/tree/ranked.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/tree/ranked.cc.o.d"
  "/root/repo/src/tree/serialize.cc" "CMakeFiles/mdatalog.dir/src/tree/serialize.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/tree/serialize.cc.o.d"
  "/root/repo/src/tree/tree.cc" "CMakeFiles/mdatalog.dir/src/tree/tree.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/tree/tree.cc.o.d"
  "/root/repo/src/util/result.cc" "CMakeFiles/mdatalog.dir/src/util/result.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/util/result.cc.o.d"
  "/root/repo/src/util/status.cc" "CMakeFiles/mdatalog.dir/src/util/status.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/util/status.cc.o.d"
  "/root/repo/src/wrapper/wrapper.cc" "CMakeFiles/mdatalog.dir/src/wrapper/wrapper.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/wrapper/wrapper.cc.o.d"
  "/root/repo/src/xpath/xpath.cc" "CMakeFiles/mdatalog.dir/src/xpath/xpath.cc.o" "gcc" "CMakeFiles/mdatalog.dir/src/xpath/xpath.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
