file(REMOVE_RECURSE
  "CMakeFiles/html_test.dir/tests/html_test.cc.o"
  "CMakeFiles/html_test.dir/tests/html_test.cc.o.d"
  "html_test"
  "html_test.pdb"
  "html_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/html_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
