# Empty dependencies file for html_test.
# This may be replaced when dependencies are built.
