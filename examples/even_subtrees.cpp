// Example 3.2, reproduced end to end: the monadic datalog program selecting
// nodes whose subtree contains an even number of a-labeled nodes, evaluated
// on the paper's 4-node tree with the full T_P fixpoint trace printed —
// compare with the stages T⁰…T⁷ shown in the paper.

#include <cstdio>

#include "src/core/database.h"
#include "src/core/eval.h"
#include "src/core/examples.h"
#include "src/core/grounder.h"
#include "src/tree/generator.h"

int main() {
  using namespace mdatalog;

  core::Program program = core::EvenAProgram();
  std::printf("Program (Example 3.2):\n%s\n", core::ToString(program).c_str());

  tree::Tree t = tree::PaperExample32Tree();
  std::printf("Tree: %s   (n1=0, n2=1, n3=2, n4=3)\n\n",
              tree::ToDebugString(t).c_str());

  core::TreeDatabase db(t);
  core::EvalOptions opts;
  opts.trace = true;
  auto result = core::EvaluateNaive(program, db, opts);
  if (!result.ok()) {
    std::printf("evaluation failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  for (size_t i = 0; i < result->stages().size(); ++i) {
    std::printf("T%zu adds: ", i + 1);
    const core::EvalStage& stage = result->stages()[i];
    for (size_t j = 0; j < stage.new_atoms.size(); ++j) {
      const core::GroundAtom& g = stage.new_atoms[j];
      std::printf("%s%s(n%d)", j ? ", " : "",
                  program.preds().Name(g.pred).c_str(), g.args[0] + 1);
    }
    std::printf("\n");
  }

  std::printf("\nQuery c0 = { ");
  for (int32_t n : result->Query()) std::printf("n%d ", n + 1);
  std::printf("}  (paper: {n1})\n");

  // The same query through the Theorem 4.2 linear-time engine, on a larger
  // tree, with grounding statistics.
  tree::Tree big = tree::CompleteBinaryTree(10, "a");  // 2047 nodes
  core::GroundStats stats;
  auto grounded = core::EvaluateGrounded(program, big, &stats);
  if (!grounded.ok()) return 1;
  std::printf(
      "\nTheorem 4.2 engine on a %d-node tree: %lld ground clauses, "
      "%lld Horn atoms, %zu selected nodes\n",
      big.size(), static_cast<long long>(stats.num_clauses),
      static_cast<long long>(stats.num_atoms), grounded->Query().size());
  return 0;
}
