// corpus_pack: build, inspect and verify corpus-store snapshots (src/store).
//
//   corpus_pack pack <out.mdcs> [--attr=A] <page.html> [page2.html ...]
//       Parse each HTML file (projecting attribute A into the labels when
//       given, e.g. --attr=class) and snapshot the prepared documents.
//   corpus_pack demo <out.mdcs> [num_pages]
//       Pack a synthetic product-catalog corpus (class-projected) — a
//       self-contained way to try the store without input files.
//   corpus_pack info <store.mdcs>
//       Open (mmap) a store and print its header, per-document stats.
//   corpus_pack verify <store.mdcs> <page.html> [--attr=A]
//       End-to-end check: the snapshot of the page must rehydrate to a tree
//       identical to freshly parsing it.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/html/parser.h"
#include "src/html/synthetic.h"
#include "src/store/corpus_store.h"
#include "src/tree/tree.h"
#include "src/util/hash.h"
#include "src/util/rng.h"

namespace {

using namespace mdatalog;

int Usage() {
  std::fprintf(stderr,
               "usage: corpus_pack pack <out.mdcs> [--attr=A] <page.html>...\n"
               "       corpus_pack demo <out.mdcs> [num_pages]\n"
               "       corpus_pack info <store.mdcs>\n"
               "       corpus_pack verify <store.mdcs> <page.html> "
               "[--attr=A]\n");
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in), {});
  return true;
}

int Pack(const std::string& out_path, const std::string& attr,
         const std::vector<std::string>& files) {
  store::CorpusStore::Builder builder;
  for (const std::string& file : files) {
    std::string html;
    if (!ReadFile(file, &html)) {
      std::fprintf(stderr, "cannot read %s\n", file.c_str());
      return 1;
    }
    util::Status st = builder.AddHtml(html, attr);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", file.c_str(), st.ToString().c_str());
      return 1;
    }
    std::printf("packed %-40s (%zu bytes of HTML)\n", file.c_str(),
                html.size());
  }
  util::Status st = builder.Save(out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %lld documents, %lld packed bytes\n",
              out_path.c_str(),
              static_cast<long long>(builder.num_documents()),
              static_cast<long long>(builder.packed_bytes()));
  return 0;
}

int Demo(const std::string& out_path, int32_t num_pages) {
  store::CorpusStore::Builder builder;
  for (int32_t i = 0; i < num_pages; ++i) {
    util::Rng rng(1000 + i);
    html::CatalogOptions opts;
    opts.num_items = 10 + i % 20;
    opts.with_ads = (i % 3 == 0);
    util::Status st =
        builder.AddHtml(html::ProductCatalogPage(rng, opts), "class");
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  util::Status st = builder.Save(out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %lld synthetic catalog pages (attr=class), "
              "%lld packed bytes\n",
              out_path.c_str(),
              static_cast<long long>(builder.num_documents()),
              static_cast<long long>(builder.packed_bytes()));
  return 0;
}

int Info(const std::string& path) {
  auto store = store::CorpusStore::Open(path);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: %lld documents, %lld bytes mapped\n", path.c_str(),
              static_cast<long long>((*store)->size()),
              static_cast<long long>((*store)->mapped_bytes()));
  for (int64_t i = 0; i < (*store)->size(); ++i) {
    auto doc = (*store)->Get(i);
    if (!doc.ok()) {
      std::printf("  [%3lld] %s\n", static_cast<long long>(i),
                  doc.status().ToString().c_str());
      continue;
    }
    std::printf("  [%3lld] hash=%016llx%016llx nodes=%d labels=%d attr=%.*s\n",
                static_cast<long long>(i),
                static_cast<unsigned long long>(doc->content_hash.hi),
                static_cast<unsigned long long>(doc->content_hash.lo),
                doc->view.num_nodes, doc->num_labels,
                static_cast<int>(doc->project_attr.size()),
                doc->project_attr.data());
  }
  return 0;
}

int Verify(const std::string& store_path, const std::string& page_path,
           const std::string& attr) {
  std::string html;
  if (!ReadFile(page_path, &html)) {
    std::fprintf(stderr, "cannot read %s\n", page_path.c_str());
    return 1;
  }
  auto store = store::CorpusStore::Open(store_path);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  auto frozen = (*store)->Find(util::HashBytes128(html), attr);
  if (!frozen.ok()) {
    std::fprintf(stderr, "%s\n", frozen.status().ToString().c_str());
    return 1;
  }
  auto doc = html::ParseHtml(html);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  const tree::Tree expected =
      attr.empty() ? doc->tree()
                   : html::ProjectAttributeIntoLabels(*doc, attr);
  if (!tree::TreesEqual(expected, frozen->MakeTree())) {
    std::fprintf(stderr, "MISMATCH: snapshot differs from a fresh parse\n");
    return 1;
  }
  std::printf("ok: snapshot is identical to a fresh parse (%d nodes)\n",
              expected.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string cmd = argv[1];

  std::string attr;
  std::vector<std::string> rest;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--attr=", 7) == 0) {
      attr = argv[i] + 7;
    } else {
      rest.emplace_back(argv[i]);
    }
  }

  if (cmd == "pack" && rest.size() >= 2) {
    return Pack(rest[0], attr, {rest.begin() + 1, rest.end()});
  }
  if (cmd == "demo" && !rest.empty()) {
    const int32_t n = rest.size() > 1 ? std::atoi(rest[1].c_str()) : 25;
    return Demo(rest[0], n);
  }
  if (cmd == "info" && rest.size() == 1) return Info(rest[0]);
  if (cmd == "verify" && rest.size() == 2) return Verify(rest[0], rest[1], attr);
  return Usage();
}
