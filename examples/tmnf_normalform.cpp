// TMNF (Section 5): the Figure 3-style acyclicity chase and the full
// Theorem 5.2 pipeline, with a semantic equivalence check.

#include <cstdio>

#include "src/core/grounder.h"
#include "src/core/parser.h"
#include "src/tmnf/acyclic.h"
#include "src/tmnf/normal_form.h"
#include "src/tmnf/pipeline.h"
#include "src/tree/generator.h"
#include "src/util/rng.h"

int main() {
  using namespace mdatalog;

  // A Figure 3-flavored rule: two parents of a sibling chain that the chase
  // must merge, child atoms to replace by firstchild + nextsibling*.
  const char* text =
      "q(X1) :- firstchild(X1, X5), child(X3, X6), nextsibling(X5, X6), "
      "child(X1, X7), nextsibling(X6, X7), label_a(X7).";
  auto program = core::ParseProgramWithQuery(text, "q");
  if (!program.ok()) return 1;
  std::printf("input rule:\n  %s\n\n",
              core::ToString(*program, program->rules()[0]).c_str());

  auto chased = tmnf::MakeRuleAcyclicUnranked(&*program, program->rules()[0]);
  if (!chased.ok()) return 1;
  std::printf("after the Lemma 5.5 chase (%d variable merges):\n  %s\n\n",
              chased->merged_vars,
              core::ToString(*program, chased->rule).c_str());

  tmnf::TmnfStats stats;
  auto tmnf_program = tmnf::ToTmnf(*program, &stats);
  if (!tmnf_program.ok()) {
    std::printf("pipeline failed: %s\n",
                tmnf_program.status().ToString().c_str());
    return 1;
  }
  std::printf("Theorem 5.2 pipeline: %d input rule(s) -> %d TMNF rules "
              "(checker: %s)\n\nTMNF program:\n%s\n",
              stats.input_rules, stats.output_rules,
              tmnf::IsTmnf(*tmnf_program) ? "pass" : "FAIL",
              core::ToString(*tmnf_program).c_str());

  // Equivalence spot check.
  util::Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    tree::Tree t = tree::RandomTree(rng, 30, {"a", "b"});
    auto lhs = core::EvaluateOnTree(*program, t, core::Engine::kSemiNaive);
    auto rhs = core::EvaluateOnTree(*tmnf_program, t,
                                    core::Engine::kGrounded);
    if (!lhs.ok() || !rhs.ok() || lhs->Query() != rhs->Query()) {
      std::printf("MISMATCH on trial %d\n", trial);
      return 1;
    }
  }
  std::printf("semantic equivalence on 5 random trees: pass\n");
  return 0;
}
