// The Lixto scenario (Section 6.2): wrap an eBay-style product catalog.
// The wrapper is specified "visually" — by clicking nodes of an example
// page — then hardened against layout noise (ad rows, skeleton changes) and
// run on pages it has never seen.

#include <cstdio>

#include "src/elog/ast.h"
#include "src/elog/eval.h"
#include "src/elog/visual.h"
#include "src/html/parser.h"
#include "src/html/synthetic.h"
#include "src/tree/serialize.h"
#include "src/util/rng.h"
#include "src/wrapper/wrapper.h"

namespace {

mdatalog::tree::Tree LoadCatalog(uint64_t seed,
                                 const mdatalog::html::CatalogOptions& opts) {
  mdatalog::util::Rng rng(seed);
  auto doc = mdatalog::html::ParseHtml(
      mdatalog::html::ProductCatalogPage(rng, opts));
  // Remark 2.2: fold the class attribute into the labels so the wrapper can
  // address "tr@item" / "td@price" nodes.
  return mdatalog::html::ProjectAttributeIntoLabels(*doc, "class");
}

}  // namespace

int main() {
  using namespace mdatalog;

  // --- the example document the user works on -----------------------------
  html::CatalogOptions opts;
  opts.num_items = 4;
  tree::Tree example = LoadCatalog(1, opts);

  // --- visual specification ------------------------------------------------
  elog::VisualSession session(example);
  // Click an item row.
  tree::NodeId item_row = tree::kNoNode;
  for (tree::NodeId n = 0; n < example.size(); ++n) {
    if (example.label_name(n) == "tr@item") {
      item_row = n;
      break;
    }
  }
  auto item_rule =
      session.SelectNode("item", "root", example.root(), item_row);
  if (!item_rule.ok()) return 1;
  std::printf("rule from the first click:\n  %s\n",
              elog::ToString(session.program().rules()[*item_rule]).c_str());

  // Click the price cell inside the first item.
  auto items = session.MatchesOf("item");
  tree::NodeId price_cell = tree::kNoNode;
  for (tree::NodeId c = example.first_child((*items)[0]); c != tree::kNoNode;
       c = example.next_sibling(c)) {
    if (example.label_name(c) == "td@price") price_cell = c;
  }
  (void)session.SelectNode("price", "item", (*items)[0], price_cell);
  (void)session.SelectNode("name", "item", (*items)[0],
                           example.first_child((*items)[0]));
  std::printf("patterns after three clicks: ");
  for (const auto& p : session.Patterns()) std::printf("%s ", p.c_str());
  std::printf("\n\n");

  // --- hardening: the recursive any-depth idiom ----------------------------
  // The clicked path pins the page skeleton. The robust form descends to
  // item rows at any depth and is immune to added wrapper divs and ad rows
  // (ad rows are tr@ad, never tr@item).
  auto robust = elog::ParseElog(R"(
    anynode(X) <- root(X).
    anynode(X) <- anynode(P), subelem(P, "_", X).
    item(X)  <- anynode(P), subelem(P, "tr@item", X).
    name(Y)  <- item(X), subelem(X, "td@name", Y).
    price(Y) <- item(X), subelem(X, "td@price", Y).
    seller(Y) <- item(X), subelem(X, "td@seller", Y).
  )");
  if (!robust.ok()) return 1;

  wrapper::Wrapper w;
  w.program = *robust;
  w.extraction_patterns = {"item", "name", "price", "seller"};

  // --- run on three pages the wrapper has never seen ----------------------
  struct Scenario {
    const char* what;
    html::CatalogOptions opts;
    uint64_t seed;
  } scenarios[] = {
      {"plain page, 6 items", {.num_items = 6}, 11},
      {"with ad rows", {.num_items = 6, .with_ads = true}, 12},
      {"alternative layout", {.num_items = 6, .with_ads = true,
                              .alt_layout = true}, 13},
  };
  for (const Scenario& s : scenarios) {
    tree::Tree page = LoadCatalog(s.seed, s.opts);
    auto out = wrapper::WrapTree(w, page);
    if (!out.ok()) return 1;
    std::printf("%-24s -> %d items extracted\n", s.what,
                out->NumChildren(out->root()));
  }

  // Show one full result.
  tree::Tree page = LoadCatalog(11, {.num_items = 2});
  auto out = wrapper::WrapTree(w, page);
  if (!out.ok()) return 1;
  std::printf("\nsample output:\n%s", tree::ToXml(*out).c_str());
  return 0;
}
