// The MSO yardstick (Theorem 4.4 / Corollary 4.17): one unary MSO query,
// evaluated three ways — by the reference semantics, by the compiled tree
// automaton, and by the monadic datalog program generated from it — all
// agreeing, with the datalog route running on the linear Theorem 4.2 engine.

#include <cstdio>

#include "src/core/grounder.h"
#include "src/mso/compile.h"
#include "src/mso/formula.h"
#include "src/mso/to_datalog.h"
#include "src/tree/generator.h"
#include "src/util/rng.h"

int main() {
  using namespace mdatalog;

  // φ(x): x has a b-labeled next sibling but is not itself a leaf.
  const char* text = "exists y. (nextsibling(x, y) & label_b(y)) & ~(leaf(x))";
  auto formula = mso::ParseFormula(text);
  if (!formula.ok()) return 1;
  std::printf("phi(x) = %s\n", mso::ToString(*formula).c_str());
  std::printf("quantifier rank: %d\n\n", mso::QuantifierRank(*formula));

  mso::MsoCompileOptions opts;
  opts.alphabet = {"a", "b"};
  auto bta = mso::CompileUnaryQuery(*formula, "x", opts);
  if (!bta.ok()) {
    std::printf("compile failed: %s\n", bta.status().ToString().c_str());
    return 1;
  }
  std::printf("compiled automaton: %d states, %zu transitions\n",
              bta->num_states, bta->delta.size());

  auto program = mso::BtaToDatalog(*bta, opts.alphabet);
  if (!program.ok()) return 1;
  std::printf("generated datalog: %zu rules (over tau_ur, groundable: %s)\n\n",
              program->rules().size(),
              core::GroundableOverTree(*program) ? "yes" : "no");

  util::Rng rng(7);
  tree::Tree t = tree::RandomTree(rng, 12, {"a", "b"});
  std::printf("tree: %s\n", tree::ToDebugString(t).c_str());

  auto cls = mso::ClassOfNodes(t, opts.alphabet);
  auto by_reference = mso::EvalUnaryQueryReference(t, *formula, "x");
  auto by_automaton = mso::BtaUnaryQuery(*bta, t, *cls);
  auto by_datalog = core::EvaluateOnTree(*program, t, core::Engine::kGrounded);
  if (!by_reference.ok() || !by_automaton.ok() || !by_datalog.ok()) return 1;

  auto show = [](const char* label, const std::vector<int32_t>& nodes) {
    std::printf("%-22s{ ", label);
    for (int32_t n : nodes) std::printf("%d ", n);
    std::printf("}\n");
  };
  show("reference semantics:", *by_reference);
  show("tree automaton:", *by_automaton);
  show("monadic datalog:", by_datalog->Query());
  std::printf("\nall three agree: %s\n",
              (*by_reference == *by_automaton &&
               *by_automaton == by_datalog->Query())
                  ? "yes"
                  : "NO (bug!)");
  return 0;
}
