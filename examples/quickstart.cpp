// Quickstart: parse an HTML page, inspect the paper's tree model, write a
// small Elog⁻ wrapper, and print the extraction result as XML.
//
// Covers: the τ_ur data model, the Figure 1 binary encoding, Elog⁻ parsing
// and evaluation, and the wrapper output construction of Section 6.

#include <cstdio>

#include "src/elog/ast.h"
#include "src/html/parser.h"
#include "src/tree/binary.h"
#include "src/tree/generator.h"
#include "src/tree/serialize.h"
#include "src/wrapper/wrapper.h"

int main() {
  using namespace mdatalog;

  // 1. A Web page, as bytes.
  const char* page = R"(
    <html><body>
      <h1>Spring auctions</h1>
      <ul class=items>
        <li>Vintage camera <b>$120</b>
        <li>Mechanical keyboard <b>$45</b>
        <li>Antique clock <b>$310</b>
      </ul>
      <div class=footer>3 results</div>
    </body></html>)";

  // 2. Pre-parse into a document tree (the prerequisite of tree-based
  //    wrapping, Section 1).
  auto doc = html::ParseHtml(page);
  if (!doc.ok()) {
    std::printf("parse failed: %s\n", doc.status().ToString().c_str());
    return 1;
  }
  std::printf("document tree: %s\n\n",
              tree::ToDebugString(doc->tree()).c_str());

  // 3. The Figure 1 view: every unranked tree *is* a binary tree through
  //    firstchild/nextsibling.
  tree::Tree fig1 = tree::PaperFigure1Tree();
  std::printf("Figure 1 tree %s encodes as:\n%s\n",
              tree::ToDebugString(fig1).c_str(),
              tree::ToDebugString(tree::EncodeFirstChildNextSibling(fig1))
                  .c_str());

  // 4. A two-pattern Elog⁻ wrapper: auction entries and their prices.
  auto program = elog::ParseElog(R"(
    entry(X) <- root(R), subelem(R, "body.ul.li", X).
    price(Y) <- entry(X), subelem(X, "b", Y).
  )");
  if (!program.ok()) {
    std::printf("wrapper error: %s\n", program.status().ToString().c_str());
    return 1;
  }

  // 5. Wrap: relabel the selected nodes, keep document order, drop the rest.
  wrapper::Wrapper w;
  w.program = *program;
  w.extraction_patterns = {"entry", "price"};
  auto xml = wrapper::WrapHtmlToXml(w, page);
  if (!xml.ok()) {
    std::printf("wrap failed: %s\n", xml.status().ToString().c_str());
    return 1;
  }
  std::printf("extracted:\n%s", xml->c_str());
  return 0;
}
