// mdl-lint: offline QA for Elog wrappers, built on the static-analysis
// subsystem (src/analysis). Three subcommands:
//
//   mdl_lint lint <wrapper.elog>...     lint each wrapper (dead rules, unsat
//                                       bodies, duplicates, subsumption,
//                                       redundant conditions, unused
//                                       patterns)
//   mdl_lint equiv <a.elog> <b.elog>    prove two wrapper revisions
//                                       extraction-equivalent (bounded SAT
//                                       containment per extraction pattern),
//                                       or print a counterexample page
//   mdl_lint key <wrapper.elog>...      print each wrapper's canonical cache
//                                       key fingerprint
//
// Exit codes are stable — CI gates on them:
//   0  clean / equivalent
//   1  findings / not equivalent
//   2  usage, I/O or parse error
//   3  verdict unknown (conflict budget or Δ builtins block the proof)
//
// Options (before the files): --depth=N --branch=N --budget=N tune the
// bounded containment check (defaults 3 / 3 / 1M conflicts).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/canonical.h"
#include "src/analysis/containment.h"
#include "src/elog/lint.h"
#include "src/elog/to_datalog.h"
#include "src/tmnf/pipeline.h"
#include "src/tree/serialize.h"
#include "src/wrapper/wrapper.h"

namespace {

using namespace mdatalog;

constexpr int kExitClean = 0;
constexpr int kExitFindings = 1;
constexpr int kExitError = 2;
constexpr int kExitUnknown = 3;

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

util::Result<wrapper::Wrapper> LoadWrapper(const std::string& path) {
  std::string text;
  if (!ReadFile(path, &text)) {
    return util::Status::InvalidArgument("cannot read " + path);
  }
  return wrapper::ParseWrapperText(text);
}

int RunLint(const std::vector<std::string>& files) {
  bool any_findings = false;
  for (const std::string& path : files) {
    auto w = LoadWrapper(path);
    if (!w.ok()) {
      std::fprintf(stderr, "%s: error: %s\n", path.c_str(),
                   w.status().message().c_str());
      return kExitError;
    }
    auto report = elog::LintWrapper(w->program, w->extraction_patterns);
    if (!report.ok()) {
      std::fprintf(stderr, "%s: error: %s\n", path.c_str(),
                   report.status().message().c_str());
      return kExitError;
    }
    if (report->clean()) {
      std::printf("%s: clean (%d rules%s)\n", path.c_str(),
                  report->rules_analyzed,
                  report->delta_builtins ? ", Δ builtins: syntactic checks only"
                                         : "");
      continue;
    }
    any_findings = true;
    std::printf("%s: %zu finding(s)\n", path.c_str(),
                report->findings.size());
    std::string text = report->ToText();
    // Indent each line under the file header.
    size_t pos = 0;
    while (pos < text.size()) {
      size_t eol = text.find('\n', pos);
      std::printf("  %s\n", text.substr(pos, eol - pos).c_str());
      pos = eol + 1;
    }
  }
  return any_findings ? kExitFindings : kExitClean;
}

int RunEquiv(const std::string& path_a, const std::string& path_b,
             const analysis::ContainmentOptions& options) {
  auto wa = LoadWrapper(path_a);
  auto wb = LoadWrapper(path_b);
  for (const auto* w : {&wa, &wb}) {
    if (!w->ok()) {
      std::fprintf(stderr, "error: %s\n", w->status().message().c_str());
      return kExitError;
    }
  }
  if (wa->extraction_patterns != wb->extraction_patterns) {
    std::printf("NOT EQUIVALENT: extraction pattern lists differ\n");
    return kExitFindings;
  }
  if (wa->program.UsesDeltaBuiltins() || wb->program.UsesDeltaBuiltins()) {
    if (elog::ToString(wa->program) == elog::ToString(wb->program)) {
      std::printf("EQUIVALENT (textually identical Δ wrappers)\n");
      return kExitClean;
    }
    std::printf(
        "UNKNOWN: Δ builtins are beyond monadic datalog (Theorem 6.6); no "
        "equivalence procedure\n");
    return kExitUnknown;
  }

  bool unknown = false;
  for (const std::string& pattern : wa->extraction_patterns) {
    if (pattern == "root") continue;  // the root extent is always {root}
    auto da = elog::ElogToDatalog(wa->program, pattern);
    auto db = elog::ElogToDatalog(wb->program, pattern);
    for (const auto* d : {&da, &db}) {
      if (!d->ok()) {
        std::fprintf(stderr, "error: %s\n", d->status().message().c_str());
        return kExitError;
      }
    }
    auto ta = tmnf::ToTmnf(*da);
    auto tb = tmnf::ToTmnf(*db);
    for (const auto* t : {&ta, &tb}) {
      if (!t->ok()) {
        std::fprintf(stderr, "error: %s\n", t->status().message().c_str());
        return kExitError;
      }
    }
    auto eq = analysis::Equivalent(*ta, *tb, options);
    if (!eq.ok()) {
      std::fprintf(stderr, "error: %s\n", eq.status().message().c_str());
      return kExitError;
    }
    if (eq->verdict == analysis::Verdict::kNotContained) {
      const analysis::ContainmentResult& dir =
          eq->forward.verdict == analysis::Verdict::kNotContained
              ? eq->forward
              : eq->backward;
      std::printf("NOT EQUIVALENT: pattern '%s' differs (%s extracts a node "
                  "the other does not)\n",
                  pattern.c_str(),
                  eq->forward.verdict == analysis::Verdict::kNotContained
                      ? path_a.c_str()
                      : path_b.c_str());
      if (dir.witness_tree.has_value()) {
        std::printf("counterexample page (witness node %d, depth %d):\n%s",
                    dir.witness_node, dir.witness_depth,
                    tree::ToXml(*dir.witness_tree).c_str());
      }
      return kExitFindings;
    }
    if (eq->verdict != analysis::Verdict::kContained) unknown = true;
  }
  if (unknown) {
    std::printf("UNKNOWN: conflict budget exhausted before a verdict\n");
    return kExitUnknown;
  }
  std::printf(
      "EQUIVALENT on every extraction pattern (trees up to depth %d, "
      "branching %d)\n",
      options.max_depth, options.max_branch);
  return kExitClean;
}

int RunKey(const std::vector<std::string>& files) {
  for (const std::string& path : files) {
    auto w = LoadWrapper(path);
    if (!w.ok()) {
      std::fprintf(stderr, "%s: error: %s\n", path.c_str(),
                   w.status().message().c_str());
      return kExitError;
    }
    auto key = analysis::CanonicalWrapperKey(w->program,
                                             w->extraction_patterns);
    if (!key.ok()) {
      std::fprintf(stderr, "%s: error: %s\n", path.c_str(),
                   key.status().message().c_str());
      return kExitError;
    }
    std::printf("%s: %016llx%s\n", path.c_str(),
                static_cast<unsigned long long>(key->fingerprint),
                key->canonicalized ? "" : " (Δ: syntactic key)");
  }
  return kExitClean;
}

int Usage() {
  std::fprintf(stderr,
               "usage: mdl_lint [--depth=N] [--branch=N] [--budget=N] "
               "<command> ...\n"
               "  lint <wrapper.elog>...\n"
               "  equiv <a.elog> <b.elog>\n"
               "  key <wrapper.elog>...\n");
  return kExitError;
}

}  // namespace

int main(int argc, char** argv) {
  analysis::ContainmentOptions options;
  int arg = 1;
  for (; arg < argc && std::strncmp(argv[arg], "--", 2) == 0; ++arg) {
    if (std::sscanf(argv[arg], "--depth=%d", &options.max_depth) == 1) continue;
    if (std::sscanf(argv[arg], "--branch=%d", &options.max_branch) == 1) {
      continue;
    }
    long long budget;
    if (std::sscanf(argv[arg], "--budget=%lld", &budget) == 1) {
      options.max_conflicts = budget;
      continue;
    }
    return Usage();
  }
  if (arg >= argc) return Usage();
  const std::string command = argv[arg++];
  std::vector<std::string> files(argv + arg, argv + argc);

  if (command == "lint" && !files.empty()) return RunLint(files);
  if (command == "equiv" && files.size() == 2) {
    return RunEquiv(files[0], files[1], options);
  }
  if (command == "key" && !files.empty()) return RunKey(files);
  return Usage();
}
