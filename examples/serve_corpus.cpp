// End-to-end serving demo: build a synthetic corpus of catalog pages, serve
// it through the wrapper runtime, and print throughput + cache behavior —
// the "one wrapper, heavy page traffic" deployment the runtime exists for.
//
// Usage: example_serve_corpus [requests] [distinct_pages] [threads] [items]
//   requests       total wrap requests         (default 1000)
//   distinct_pages distinct documents served   (default 125)
//   threads        executor workers            (default 4)
//   items          catalog rows per page       (default 12)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/elog/ast.h"
#include "src/html/parser.h"
#include "src/html/synthetic.h"
#include "src/runtime/runtime.h"
#include "src/tree/serialize.h"
#include "src/util/rng.h"
#include "src/wrapper/wrapper.h"

using namespace mdatalog;

namespace {

double Seconds(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

// One borrowed-page Request per corpus entry (the corpus outlives the join).
std::vector<runtime::Request> ViewBatch(
    const runtime::WrapperHandle& handle,
    const std::vector<std::string>& pages) {
  std::vector<runtime::Request> requests;
  requests.reserve(pages.size());
  for (const std::string& page : pages) {
    requests.push_back({runtime::PageRef::View(page), handle, {}});
  }
  return requests;
}

}  // namespace

int main(int argc, char** argv) {
  const int requests = argc > 1 ? std::atoi(argv[1]) : 1000;
  const int distinct = argc > 2 ? std::atoi(argv[2]) : 125;
  const int threads = argc > 3 ? std::atoi(argv[3]) : 4;
  const int items = argc > 4 ? std::atoi(argv[4]) : 12;

  auto program = elog::ParseElog(R"(
    anynode(X) <- root(X).
    anynode(X) <- anynode(P), subelem(P, "_", X).
    item(X)  <- anynode(P), subelem(P, "tr@item", X).
    price(Y) <- item(X), subelem(X, "td@price", Y).
  )");
  if (!program.ok()) {
    std::fprintf(stderr, "wrapper parse failed: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }
  wrapper::Wrapper w;
  w.program = *program;
  w.extraction_patterns = {"item", "price"};

  std::vector<std::string> corpus;
  corpus.reserve(requests);
  {
    std::vector<std::string> pages;
    for (int i = 0; i < distinct; ++i) {
      util::Rng rng(7000 + i);
      html::CatalogOptions opts;
      opts.num_items = items;
      opts.with_ads = (i % 3 != 0);
      opts.alt_layout = (i % 5 == 0);
      pages.push_back(html::ProductCatalogPage(rng, opts));
    }
    for (int i = 0; i < requests; ++i) corpus.push_back(pages[i % distinct]);
  }

  // Baseline: the pre-runtime path, every request pays parse + validate +
  // evaluate from scratch on one thread.
  auto t0 = std::chrono::steady_clock::now();
  for (const std::string& page : corpus) {
    auto doc = html::ParseHtml(page);
    if (!doc.ok()) {
      std::fprintf(stderr, "parse failed: %s\n",
                   doc.status().ToString().c_str());
      return 1;
    }
    tree::Tree t = html::ProjectAttributeIntoLabels(*doc, "class");
    auto out = wrapper::WrapTree(w, t);
    if (!out.ok()) {
      std::fprintf(stderr, "wrap failed: %s\n",
                   out.status().ToString().c_str());
      return 1;
    }
    volatile size_t sink = tree::ToXml(*out).size();
    (void)sink;
  }
  auto t1 = std::chrono::steady_clock::now();
  const double cold_s = Seconds(t0, t1);

  runtime::RuntimeOptions opts;
  opts.num_threads = threads;
  runtime::WrapperRuntime rt(opts);
  auto handle = rt.Register(w, "class");
  if (!handle.ok()) {
    std::fprintf(stderr, "register failed: %s\n",
                 handle.status().ToString().c_str());
    return 1;
  }

  // First batch: cold caches (every distinct page parses once).
  auto t2 = std::chrono::steady_clock::now();
  auto first = rt.SubmitBatch(ViewBatch(*handle, corpus));
  auto t3 = std::chrono::steady_clock::now();
  // Second batch: warm caches.
  auto second = rt.SubmitBatch(ViewBatch(*handle, corpus));
  auto t4 = std::chrono::steady_clock::now();

  for (size_t i = 0; i < corpus.size(); ++i) {
    if (!first[i].ok() || !second[i].ok() || *first[i] != *second[i]) {
      std::fprintf(stderr, "request %zu: cold/warm results diverge\n", i);
      return 1;
    }
  }

  const double firstbatch_s = Seconds(t2, t3);
  const double warm_s = Seconds(t3, t4);
  auto stats = rt.stats();

  std::printf("corpus: %d requests over %d distinct pages, %d items each\n",
              requests, distinct, items);
  std::printf("direct sequential (no runtime): %8.1f pages/s\n",
              requests / cold_s);
  std::printf("runtime first batch (%d thr):   %8.1f pages/s\n", threads,
              requests / firstbatch_s);
  std::printf("runtime warm batch  (%d thr):   %8.1f pages/s  (%.1fx)\n",
              threads, requests / warm_s, cold_s / warm_s);
  std::printf("document cache: %lld hits / %lld misses, %lld bytes, "
              "%lld evictions\n",
              static_cast<long long>(stats.document_cache.hits),
              static_cast<long long>(stats.document_cache.misses),
              static_cast<long long>(stats.document_cache.bytes_in_use),
              static_cast<long long>(stats.document_cache.evictions));
  std::printf("program cache:  %lld hits / %lld misses "
              "(%lld grounded plans)\n",
              static_cast<long long>(stats.program_cache.hits),
              static_cast<long long>(stats.program_cache.misses),
              static_cast<long long>(stats.program_cache.ground_plans));
  std::printf("result memo:    %lld hits / %lld misses, %lld bytes\n",
              static_cast<long long>(stats.memo_hits),
              static_cast<long long>(stats.memo_misses),
              static_cast<long long>(stats.memo_bytes));
  std::printf("evaluations:    %lld grounded, %lld native\n",
              static_cast<long long>(stats.grounded_evals),
              static_cast<long long>(stats.native_evals));
  return 0;
}
