// Example 2.5: the document order relation ≺ as a caterpillar expression,
// checked against the preorder ranks, plus the Lemma 5.9 compilation of a
// caterpillar into monadic datalog (Example 5.10).

#include <cstdio>

#include "src/caterpillar/eval.h"
#include "src/caterpillar/expr.h"
#include "src/caterpillar/to_datalog.h"
#include "src/core/grounder.h"
#include "src/tree/generator.h"

int main() {
  using namespace mdatalog;

  caterpillar::ExprPtr order = caterpillar::DocumentOrderExpr();
  std::printf("document order (Example 2.5):\n  %s\n\n",
              caterpillar::ToString(order).c_str());

  tree::Tree t = tree::PaperFigure1Tree();
  std::printf("on the Figure 1 tree %s:\n", tree::ToDebugString(t).c_str());
  auto rel = caterpillar::EvalRelationReference(t, order);
  if (!rel.ok()) return 1;
  std::printf("  |[[<]]| = %zu pairs; chain: ", rel->size());
  // Nodes sorted by how many nodes precede them.
  std::vector<int32_t> before(t.size(), 0);
  for (const auto& [x, y] : *rel) before[y]++;
  for (int32_t k = 0; k < t.size(); ++k) {
    for (tree::NodeId n = 0; n < t.size(); ++n) {
      if (before[n] == k) std::printf("n%d%s", n + 1, k + 1 < t.size() ? " < " : "\n");
    }
  }

  // Example 5.10: p.child in monadic datalog, via the NFA of Lemma 5.9.
  core::Program program;
  core::PredId p = program.preds().MustIntern("p", 1);
  core::PredId label_a = program.preds().MustIntern("label_a", 1);
  program.AddRule(core::MakeRule(
      core::MakeAtom(p, {core::Term::Var(0)}),
      {core::MakeAtom(label_a, {core::Term::Var(0)})}, {"x"}));
  auto result_pred = caterpillar::AppendCaterpillarRules(
      &program, p, caterpillar::Rel("child"), "pchild");
  if (!result_pred.ok()) return 1;
  program.set_query_pred(*result_pred);
  std::printf("\nLemma 5.9 program for p.child (p = a-labeled nodes):\n%s\n",
              core::ToString(program).c_str());
  auto eval = core::EvaluateOnTree(program, t, core::Engine::kGrounded);
  if (!eval.ok()) return 1;
  std::printf("p.child on the Figure 1 tree = { ");
  for (int32_t n : eval->Query()) std::printf("n%d ", n + 1);
  std::printf("} (all non-root nodes: every node is labeled a)\n");
  return 0;
}
