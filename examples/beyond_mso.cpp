// Theorem 6.6: Elog⁻Δ is strictly more expressive than MSO. The program
// below classifies the root as "anbn" exactly when its children read aⁿbⁿ —
// a non-regular language no MSO query (hence no monadic datalog program,
// hence no Elog⁻ wrapper) can define.

#include <cstdio>
#include <string>

#include "src/elog/ast.h"
#include "src/elog/eval.h"
#include "src/elog/to_datalog.h"
#include "src/tree/generator.h"

int main() {
  using namespace mdatalog;

  auto program = elog::ParseElog(R"(
    a0(X)   <- root(R), subelem(R, "a", X), notafter(R, "a", X).
    b0(X)   <- root(R), subelem(R, "b", X), notafter(R, "b", X),
               notbefore(R, "a", X).
    anbn(X) <- root(X), contains(X, "a", Y), a0(Y),
               before(X, "b", Y, Z, 50, 50), b0(Z).
  )");
  if (!program.ok()) {
    std::printf("%s\n", program.status().ToString().c_str());
    return 1;
  }
  std::printf("the Theorem 6.6 program:\n%s\n",
              elog::ToString(*program).c_str());

  auto accepts = [&](const std::string& word) {
    std::vector<std::string> labels;
    for (char c : word) labels.emplace_back(1, c);
    tree::Tree t = tree::ChildrenWord("r", labels);
    auto result = elog::EvaluateElog(*program, t);
    return result.ok() && !result->Of("anbn").empty();
  };

  const char* words[] = {"ab",    "aabb",  "aaabbb", "aab",  "abb",
                         "ba",    "abab",  "bbaa",   "aaaabbbb", "aaaabbb"};
  for (const char* w : words) {
    std::printf("  children %-10s -> %s\n", w,
                accepts(w) ? "anbn" : "rejected");
  }

  auto as_datalog = elog::ElogToDatalog(*program);
  std::printf("\ntranslating to monadic datalog: %s\n",
              as_datalog.ok() ? "unexpectedly succeeded?!"
                              : as_datalog.status().ToString().c_str());
  return 0;
}
