// Section 7: Core XPath compiled to monadic datalog. Queries over a
// synthetic news page, answered by the Theorem 4.2 linear-time engine, with
// the generated program shown for one of them.

#include <cstdio>

#include "src/core/grounder.h"
#include "src/html/parser.h"
#include "src/html/synthetic.h"
#include "src/util/rng.h"
#include "src/xpath/xpath.h"

int main() {
  using namespace mdatalog;

  util::Rng rng(4);
  auto doc = html::ParseHtml(html::NewsIndexPage(rng, 5));
  if (!doc.ok()) return 1;
  tree::Tree t = html::ProjectAttributeIntoLabels(*doc, "class");

  const char* queries[] = {
      "//div@article",
      "//div@article/h2/a",
      "//div@article[span@date]",
      "//div@article[following-sibling::div@article]",
      "//h2/ancestor::div@article",
      "//div@article[not(h2)]",  // negation: served by the evaluator
  };
  for (const char* q : queries) {
    auto result = xpath::EvalXPath(t, q);
    if (!result.ok()) {
      std::printf("%-55s ERROR: %s\n", q, result.status().ToString().c_str());
      continue;
    }
    std::printf("%-55s -> %zu nodes\n", q, result->size());
  }

  auto path = xpath::ParseXPath("//div@article[span@date]");
  auto program = xpath::XPathToDatalog(*path);
  if (!program.ok()) return 1;
  std::printf(
      "\nthe second-to-last positive query compiles to %zu monadic datalog "
      "rules\nover tau_ur (groundable: %s); first rules:\n",
      program->rules().size(),
      core::GroundableOverTree(*program) ? "yes" : "no");
  for (size_t i = 0; i < program->rules().size() && i < 6; ++i) {
    std::printf("  %s\n",
                core::ToString(*program, program->rules()[i]).c_str());
  }
  std::printf("  ...\n");
  return 0;
}
