// Telemetry demo + acceptance check: serve a synthetic 1k-page corpus (125
// distinct catalog pages, each requested 8x) through the runtime with
// tracing on, then export what the observability layer saw.
//
// Usage: example_mdl_stats [mode] [requests] [distinct_pages]
//   mode            summary | prom | json | breakdown   (default summary)
//   requests        total wrap requests                  (default 1000)
//   distinct_pages  distinct documents served            (default 125)
//
// Modes:
//   summary    human-readable serving stats, request-latency quantiles,
//              per-stage histograms, and the span-coverage check: the
//              top-level span durations of every traced request must sum to
//              within 10% of that request's wall time (exit 1 otherwise) —
//              i.e. the trace accounts for where the time actually went.
//   prom       Prometheus text exposition (ExportPrometheus).
//   json       structured JSON: metrics + span trees + the per-page
//              nodes-vs-wall-time scatter (ExportJson).
//   breakdown  the formatted span tree of the slowest retained request.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/elog/ast.h"
#include "src/html/synthetic.h"
#include "src/runtime/runtime.h"
#include "src/telemetry/export.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"
#include "src/util/rng.h"
#include "src/wrapper/wrapper.h"

using namespace mdatalog;

int main(int argc, char** argv) {
  const char* mode = argc > 1 ? argv[1] : "summary";
  const int requests = argc > 2 ? std::atoi(argv[2]) : 1000;
  const int distinct = argc > 3 ? std::atoi(argv[3]) : 125;

  auto program = elog::ParseElog(R"(
    anynode(X) <- root(X).
    anynode(X) <- anynode(P), subelem(P, "_", X).
    item(X)  <- anynode(P), subelem(P, "tr@item", X).
    price(Y) <- item(X), subelem(X, "td@price", Y).
  )");
  if (!program.ok()) {
    std::fprintf(stderr, "wrapper parse failed: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }
  wrapper::Wrapper w;
  w.program = *program;
  w.extraction_patterns = {"item", "price"};

  std::vector<std::string> corpus;
  corpus.reserve(requests);
  {
    std::vector<std::string> pages;
    for (int i = 0; i < distinct; ++i) {
      util::Rng rng(7000 + i);
      html::CatalogOptions opts;
      opts.num_items = 8 + i % 17;
      opts.with_ads = (i % 3 != 0);
      opts.alt_layout = (i % 5 == 0);
      pages.push_back(html::ProductCatalogPage(rng, opts));
    }
    for (int i = 0; i < requests; ++i) corpus.push_back(pages[i % distinct]);
  }

  runtime::RuntimeOptions opts;
  opts.num_threads = 1;
  opts.result_memo.byte_budget = 0;  // every request runs (and traces) the pipeline
  opts.telemetry.trace_sample_every = 1;
  opts.telemetry.trace_ring_capacity = requests;  // retain every trace
  runtime::WrapperRuntime rt(opts);
  auto handle = rt.Register(w, "class");
  if (!handle.ok()) {
    std::fprintf(stderr, "register failed: %s\n",
                 handle.status().ToString().c_str());
    return 1;
  }

  for (const std::string& page : corpus) {
    auto xml = rt.Wrap(*handle, page);
    if (!xml.ok()) {
      std::fprintf(stderr, "wrap failed: %s\n",
                   xml.status().ToString().c_str());
      return 1;
    }
  }

  if (std::strcmp(mode, "prom") == 0) {
    std::fputs(rt.ExportPrometheus().c_str(), stdout);
    return 0;
  }
  if (std::strcmp(mode, "json") == 0) {
    std::fputs(rt.ExportJson().c_str(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }

  const auto traces = rt.telemetry().RecentTraces();
  if (traces.empty()) {
    std::fprintf(stderr, "no traces retained\n");
    return 1;
  }

  if (std::strcmp(mode, "breakdown") == 0) {
    const auto slowest = std::max_element(
        traces.begin(), traces.end(), [](const auto& a, const auto& b) {
          return a.duration_ns < b.duration_ns;
        });
    std::fputs(telemetry::FormatBreakdown(*slowest).c_str(), stdout);
    return 0;
  }
  if (std::strcmp(mode, "summary") != 0) {
    std::fprintf(stderr, "unknown mode %s (summary | prom | json | breakdown)\n",
                 mode);
    return 2;
  }

  // Span coverage: per request, the top-level spans must account for the
  // request's wall time — a trace that loses 10%+ of the request to
  // untraced gaps is not answering "where did the time go".
  int covered = 0;
  double worst = 1.0;
  int64_t total_span_ns = 0, total_wall_ns = 0;
  for (const auto& t : traces) {
    int64_t top_ns = 0;
    for (const auto& s : t.spans) {
      if (s.parent < 0) top_ns += s.duration_ns();
    }
    const double cov =
        t.duration_ns > 0
            ? static_cast<double>(top_ns) / static_cast<double>(t.duration_ns)
            : 1.0;
    worst = std::min(worst, cov);
    if (cov >= 0.9) ++covered;
    total_span_ns += top_ns;
    total_wall_ns += t.duration_ns;
  }
  const double aggregate =
      total_wall_ns > 0
          ? static_cast<double>(total_span_ns) / static_cast<double>(total_wall_ns)
          : 1.0;

  const auto stats = rt.stats();
  const telemetry::MetricsSnapshot snap = rt.telemetry().registry().Snapshot();

  std::printf("corpus: %d requests over %d distinct pages\n", requests,
              distinct);
  std::printf("pages wrapped: %lld (%lld grounded, %lld native)\n",
              static_cast<long long>(stats.pages_wrapped),
              static_cast<long long>(stats.grounded_evals),
              static_cast<long long>(stats.native_evals));
  std::printf("document cache: %lld hits / %lld misses\n",
              static_cast<long long>(stats.document_cache.hits),
              static_cast<long long>(stats.document_cache.misses));

  const auto req = snap.histograms.find("request.wrap.ns");
  if (req != snap.histograms.end()) {
    std::printf("request latency: p50 %.1fus  p90 %.1fus  p99 %.1fus  "
                "max %.1fus  (n=%llu)\n",
                req->second.Percentile(0.50) / 1e3,
                req->second.Percentile(0.90) / 1e3,
                req->second.Percentile(0.99) / 1e3, req->second.max / 1e3,
                static_cast<unsigned long long>(req->second.count));
  }
  std::printf("per-stage p50/p99 (us):\n");
  for (const auto& [name, h] : snap.histograms) {
    if (name.rfind("stage.", 0) != 0) continue;
    std::printf("  %-24s %9.1f %9.1f  (n=%llu)\n", name.c_str(),
                h.Percentile(0.50) / 1e3, h.Percentile(0.99) / 1e3,
                static_cast<unsigned long long>(h.count));
  }

  std::printf("span coverage: aggregate %.1f%%, worst request %.1f%%, "
              "%d/%zu requests >= 90%%\n",
              100.0 * aggregate, 100.0 * worst, covered, traces.size());
  if (aggregate < 0.9) {
    std::fprintf(stderr,
                 "FAIL: top-level spans cover %.1f%% of wall time "
                 "(acceptance bar: 90%%)\n",
                 100.0 * aggregate);
    return 1;
  }
  std::printf("OK: traced stages account for the request wall time\n");
  return 0;
}
