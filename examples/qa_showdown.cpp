// Query automata vs. monadic datalog (Section 4.3).
//
// Part 1 — Example 4.9: the even-a query automaton's run on the 3-node tree,
// with the configuration trace c0 → … → c4 from the paper.
//
// Part 2 — Example 4.21: the blow-up automaton A_β takes
// Θ(((n+1)/2)^(α+1)) steps on complete binary trees, while its Theorem 4.11
// datalog translation evaluates the same query in O(β⁴·n).

#include <chrono>
#include <cstdio>

#include "src/core/grounder.h"
#include "src/qa/ranked.h"
#include "src/qa/ranked_to_datalog.h"
#include "src/tree/generator.h"

int main() {
  using namespace mdatalog;
  using Clock = std::chrono::steady_clock;

  // --- Part 1: Example 4.9 ---
  qa::RankedQA even = qa::EvenAQAr({"a"});
  tree::Tree small = tree::PaperExample49Tree();
  qa::QaRunOptions trace_opts;
  trace_opts.trace = true;
  auto run = qa::RunRankedQA(even, small, trace_opts);
  if (!run.ok()) return 1;
  std::printf("Example 4.9 run on a(a,a):\n");
  for (size_t i = 0; i < run->trace.size(); ++i) {
    std::printf("  c%zu -> c%zu: %s transition at n%d\n", i, i + 1,
                run->trace[i].kind.c_str(), run->trace[i].node);
  }
  std::printf("  accepted: %s, selected: %zu nodes (paper: empty)\n\n",
              run->accepted ? "yes" : "no", run->selected.size());

  // --- Part 2: Example 4.21 ---
  const int32_t alpha = 1;
  qa::RankedQA blowup = qa::BlowupQAr(alpha);
  auto program = qa::RankedQAToDatalog(blowup);
  if (!program.ok()) return 1;
  std::printf("A_beta with alpha=%d: |A| = %lld, datalog |P| = %lld atoms\n",
              alpha, static_cast<long long>(blowup.Size()),
              static_cast<long long>(program->SizeInAtoms()));
  std::printf("%8s %12s %14s %14s\n", "nodes", "QA steps", "QA time(us)",
              "datalog(us)");
  for (int32_t depth = 2; depth <= 7; ++depth) {
    tree::Tree t = tree::CompleteBinaryTree(depth, "a");
    auto t0 = Clock::now();
    auto direct = qa::RunRankedQA(blowup, t);
    auto t1 = Clock::now();
    auto translated =
        core::EvaluateOnTree(*program, t, core::Engine::kGrounded);
    auto t2 = Clock::now();
    if (!direct.ok() || !translated.ok()) return 1;
    auto us = [](auto d) {
      return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
    };
    std::printf("%8d %12lld %14lld %14lld\n", t.size(),
                static_cast<long long>(direct->steps),
                static_cast<long long>(us(t1 - t0)),
                static_cast<long long>(us(t2 - t1)));
  }
  std::printf(
      "\nThe QA step count quadruples per level (superpolynomial in n); the\n"
      "datalog simulation stays linear in the tree (Theorem 4.11).\n");
  return 0;
}
