#include "src/xpath/xpath.h"

#include <cctype>
#include <functional>
#include <set>

#include "src/caterpillar/expr.h"
#include "src/caterpillar/to_datalog.h"
#include "src/core/database.h"
#include "src/core/grounder.h"
#include "src/util/check.h"

namespace mdatalog::xpath {

namespace {

const char* AxisName(Axis axis) {
  switch (axis) {
    case Axis::kSelf: return "self";
    case Axis::kChild: return "child";
    case Axis::kDescendant: return "descendant";
    case Axis::kDescendantOrSelf: return "descendant-or-self";
    case Axis::kParent: return "parent";
    case Axis::kAncestor: return "ancestor";
    case Axis::kAncestorOrSelf: return "ancestor-or-self";
    case Axis::kFollowingSibling: return "following-sibling";
    case Axis::kPrecedingSibling: return "preceding-sibling";
  }
  return "?";
}

ExprP MakeExpr(Expr::Kind kind, Path path, std::vector<ExprP> children) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  e->path = std::move(path);
  e->children = std::move(children);
  return e;
}

// --- parser -----------------------------------------------------------------

class XPathParser {
 public:
  explicit XPathParser(std::string_view text) : text_(text) {}

  util::Result<Path> Parse() {
    MD_ASSIGN_OR_RETURN(Path path, ParsePath());
    Skip();
    if (pos_ != text_.size()) {
      return util::Status::InvalidArgument("trailing input at position " +
                                           std::to_string(pos_));
    }
    return path;
  }

 private:
  util::Result<Path> ParsePath() {
    Path path;
    Skip();
    bool leading_descendant = false;
    if (Peek("//")) {
      pos_ += 2;
      path.absolute = true;
      leading_descendant = true;
    } else if (Peek("/")) {
      ++pos_;
      path.absolute = true;
    }
    while (true) {
      MD_ASSIGN_OR_RETURN(Step step, ParseStep());
      if (leading_descendant) {
        step.axis = Axis::kDescendant;
        leading_descendant = false;
      }
      path.steps.push_back(std::move(step));
      Skip();
      if (Peek("//")) {
        pos_ += 2;
        leading_descendant = true;
        continue;
      }
      if (Peek("/")) {
        ++pos_;
        continue;
      }
      break;
    }
    return path;
  }

  util::Result<Step> ParseStep() {
    Step step;
    Skip();
    size_t save = pos_;
    std::string word;
    if (ParseName(&word)) {
      Skip();
      if (Peek("::")) {
        pos_ += 2;
        MD_ASSIGN_OR_RETURN(step.axis, AxisFromName(word));
        Skip();
        if (Peek("*")) {
          ++pos_;
        } else if (!ParseName(&step.label)) {
          return util::Status::InvalidArgument("expected node test after '" +
                                               word + "::'");
        }
      } else {
        step.axis = Axis::kChild;  // shorthand
        step.label = word;
      }
    } else if (Peek("*")) {
      ++pos_;
      step.axis = Axis::kChild;
    } else {
      pos_ = save;
      return util::Status::InvalidArgument("expected step at position " +
                                           std::to_string(pos_));
    }
    // Predicates.
    Skip();
    while (Peek("[")) {
      ++pos_;
      MD_ASSIGN_OR_RETURN(ExprP e, ParseExpr());
      Skip();
      if (!Peek("]")) return util::Status::InvalidArgument("expected ']'");
      ++pos_;
      step.predicates.push_back(std::move(e));
      Skip();
    }
    return step;
  }

  util::Result<ExprP> ParseExpr() { return ParseOr(); }

  util::Result<ExprP> ParseOr() {
    MD_ASSIGN_OR_RETURN(ExprP lhs, ParseAnd());
    std::vector<ExprP> parts = {lhs};
    while (ConsumeWord("or")) {
      MD_ASSIGN_OR_RETURN(ExprP next, ParseAnd());
      parts.push_back(next);
    }
    if (parts.size() == 1) return parts[0];
    return MakeExpr(Expr::Kind::kOr, {}, std::move(parts));
  }

  util::Result<ExprP> ParseAnd() {
    MD_ASSIGN_OR_RETURN(ExprP lhs, ParsePrimary());
    std::vector<ExprP> parts = {lhs};
    while (ConsumeWord("and")) {
      MD_ASSIGN_OR_RETURN(ExprP next, ParsePrimary());
      parts.push_back(next);
    }
    if (parts.size() == 1) return parts[0];
    return MakeExpr(Expr::Kind::kAnd, {}, std::move(parts));
  }

  util::Result<ExprP> ParsePrimary() {
    Skip();
    if (ConsumeWord("not")) {
      Skip();
      if (!Peek("(")) return util::Status::InvalidArgument("expected '('");
      ++pos_;
      MD_ASSIGN_OR_RETURN(ExprP inner, ParseExpr());
      Skip();
      if (!Peek(")")) return util::Status::InvalidArgument("expected ')'");
      ++pos_;
      return MakeExpr(Expr::Kind::kNot, {}, {inner});
    }
    if (Peek("(")) {
      ++pos_;
      MD_ASSIGN_OR_RETURN(ExprP inner, ParseExpr());
      Skip();
      if (!Peek(")")) return util::Status::InvalidArgument("expected ')'");
      ++pos_;
      return inner;
    }
    MD_ASSIGN_OR_RETURN(Path path, ParsePath());
    return MakeExpr(Expr::Kind::kPath, std::move(path), {});
  }

  util::Result<Axis> AxisFromName(const std::string& name) {
    if (name == "self") return Axis::kSelf;
    if (name == "child") return Axis::kChild;
    if (name == "descendant") return Axis::kDescendant;
    if (name == "descendant-or-self") return Axis::kDescendantOrSelf;
    if (name == "parent") return Axis::kParent;
    if (name == "ancestor") return Axis::kAncestor;
    if (name == "ancestor-or-self") return Axis::kAncestorOrSelf;
    if (name == "following-sibling") return Axis::kFollowingSibling;
    if (name == "preceding-sibling") return Axis::kPrecedingSibling;
    return util::Status::InvalidArgument("unknown axis '" + name + "'");
  }

  /// Names may contain letters, digits, _, -, #, @ (our HTML labels include
  /// #text and class-projected tag@class). A '-' is part of the name only
  /// when followed by a letter (so "a-b" is a name but "a - b" is not; axis
  /// names like following-sibling work).
  bool ParseName(std::string* out) {
    Skip();
    size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '#' || c == '@') {
        ++pos_;
      } else if (c == '-' && pos_ + 1 < text_.size() &&
                 std::isalpha(static_cast<unsigned char>(text_[pos_ + 1]))) {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return false;
    *out = std::string(text_.substr(start, pos_ - start));
    return true;
  }

  bool Peek(std::string_view lit) {
    Skip();
    return text_.substr(pos_, lit.size()) == lit;
  }

  bool ConsumeWord(std::string_view word) {
    Skip();
    if (text_.substr(pos_, word.size()) != word) return false;
    size_t after = pos_ + word.size();
    if (after < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[after])) ||
         text_[after] == '_')) {
      return false;  // prefix of a longer name
    }
    pos_ = after;
    return true;
  }

  void Skip() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

std::string ExprToString(const ExprP& e);

std::string StepToString(const Step& s) {
  std::string out = std::string(AxisName(s.axis)) + "::" +
                    (s.label.empty() ? "*" : s.label);
  for (const ExprP& p : s.predicates) out += "[" + ExprToString(p) + "]";
  return out;
}

std::string ExprToString(const ExprP& e) {
  switch (e->kind) {
    case Expr::Kind::kPath: return ToString(e->path);
    case Expr::Kind::kNot: return "not(" + ExprToString(e->children[0]) + ")";
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      std::string op = e->kind == Expr::Kind::kAnd ? " and " : " or ";
      std::string out;
      for (size_t i = 0; i < e->children.size(); ++i) {
        if (i > 0) out += op;
        out += ExprToString(e->children[i]);
      }
      return out;
    }
  }
  return "?";
}

// --- reference evaluation ---------------------------------------------------

using NodeSet = std::set<tree::NodeId>;

NodeSet AxisImage(const tree::Tree& t, Axis axis, const NodeSet& from) {
  NodeSet out;
  auto add_descendants = [&](tree::NodeId n, auto&& self) -> void {
    for (tree::NodeId c = t.first_child(n); c != tree::kNoNode;
         c = t.next_sibling(c)) {
      out.insert(c);
      self(c, self);
    }
  };
  for (tree::NodeId n : from) {
    switch (axis) {
      case Axis::kSelf:
        out.insert(n);
        break;
      case Axis::kChild:
        for (tree::NodeId c = t.first_child(n); c != tree::kNoNode;
             c = t.next_sibling(c)) {
          out.insert(c);
        }
        break;
      case Axis::kDescendant:
        add_descendants(n, add_descendants);
        break;
      case Axis::kDescendantOrSelf:
        out.insert(n);
        add_descendants(n, add_descendants);
        break;
      case Axis::kParent:
        if (t.parent(n) != tree::kNoNode) out.insert(t.parent(n));
        break;
      case Axis::kAncestor:
        for (tree::NodeId p = t.parent(n); p != tree::kNoNode;
             p = t.parent(p)) {
          out.insert(p);
        }
        break;
      case Axis::kAncestorOrSelf:
        for (tree::NodeId p = n; p != tree::kNoNode; p = t.parent(p)) {
          out.insert(p);
        }
        break;
      case Axis::kFollowingSibling:
        for (tree::NodeId s = t.next_sibling(n); s != tree::kNoNode;
             s = t.next_sibling(s)) {
          out.insert(s);
        }
        break;
      case Axis::kPrecedingSibling:
        for (tree::NodeId s = t.prev_sibling(n); s != tree::kNoNode;
             s = t.prev_sibling(s)) {
          out.insert(s);
        }
        break;
    }
  }
  return out;
}

bool EvalPredicate(const tree::Tree& t, const ExprP& e, tree::NodeId n);

NodeSet EvalSteps(const tree::Tree& t, NodeSet current,
                  const std::vector<Step>& steps);

/// Absolute paths start at the *virtual document node* above the root
/// element (standard XPath): its only child is the root; its descendants are
/// all nodes; every other axis from it is empty.
NodeSet AbsoluteSeed(const tree::Tree& t, Axis axis) {
  NodeSet out;
  switch (axis) {
    case Axis::kChild:
      out.insert(t.root());
      break;
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
      for (tree::NodeId n = 0; n < t.size(); ++n) out.insert(n);
      break;
    default:
      break;  // self/parent/ancestor/siblings of the document node: empty
  }
  return out;
}

NodeSet FilterStep(const tree::Tree& t, NodeSet moved, const Step& step) {
  NodeSet filtered;
  for (tree::NodeId n : moved) {
    if (!step.label.empty() && t.label_name(n) != step.label) continue;
    bool ok = true;
    for (const ExprP& pred : step.predicates) {
      if (!EvalPredicate(t, pred, n)) {
        ok = false;
        break;
      }
    }
    if (ok) filtered.insert(n);
  }
  return filtered;
}

NodeSet EvalPathFromContext(const tree::Tree& t, const Path& path,
                            NodeSet relative_context) {
  if (!path.absolute) {
    return EvalSteps(t, std::move(relative_context), path.steps);
  }
  MD_CHECK(!path.steps.empty());
  NodeSet seed = FilterStep(t, AbsoluteSeed(t, path.steps[0].axis),
                            path.steps[0]);
  std::vector<Step> rest(path.steps.begin() + 1, path.steps.end());
  return EvalSteps(t, std::move(seed), rest);
}

NodeSet EvalSteps(const tree::Tree& t, NodeSet current,
                  const std::vector<Step>& steps) {
  for (const Step& step : steps) {
    current = FilterStep(t, AxisImage(t, step.axis, current), step);
  }
  return current;
}

bool EvalPredicate(const tree::Tree& t, const ExprP& e, tree::NodeId n) {
  switch (e->kind) {
    case Expr::Kind::kPath:
      return !EvalPathFromContext(t, e->path, {n}).empty();
    case Expr::Kind::kNot:
      return !EvalPredicate(t, e->children[0], n);
    case Expr::Kind::kAnd:
      for (const ExprP& c : e->children) {
        if (!EvalPredicate(t, c, n)) return false;
      }
      return true;
    case Expr::Kind::kOr:
      for (const ExprP& c : e->children) {
        if (EvalPredicate(t, c, n)) return true;
      }
      return false;
  }
  return false;
}

// --- datalog compilation ----------------------------------------------------

caterpillar::ExprPtr AxisExpr(Axis axis) {
  using caterpillar::Epsilon;
  using caterpillar::Inverse;
  using caterpillar::Plus;
  using caterpillar::Rel;
  using caterpillar::Star;
  switch (axis) {
    case Axis::kSelf: return Epsilon();
    case Axis::kChild: return Rel("child");
    case Axis::kDescendant: return Plus(Rel("child"));
    case Axis::kDescendantOrSelf: return Star(Rel("child"));
    case Axis::kParent: return Inverse(Rel("child"));
    case Axis::kAncestor: return Inverse(Plus(Rel("child")));
    case Axis::kAncestorOrSelf: return Inverse(Star(Rel("child")));
    case Axis::kFollowingSibling: return Plus(Rel("nextsibling"));
    case Axis::kPrecedingSibling: return Inverse(Plus(Rel("nextsibling")));
  }
  MD_CHECK(false);
  return nullptr;
}

/// Compiles paths/predicates into a shared program. Monadic datalog is
/// positive (Section 3), so not(·) has no image here — queries using it are
/// reported Unimplemented and served by the reference evaluator instead.
class XPathCompiler {
 public:
  util::Result<core::Program> Compile(const Path& path) {
    dom_ = EnsureDom();
    core::PredId result;
    if (path.absolute) {
      MD_CHECK(!path.steps.empty());
      MD_ASSIGN_OR_RETURN(core::PredId seed,
                          AbsoluteSeedSet(path.steps[0].axis));
      MD_ASSIGN_OR_RETURN(seed, ApplyFilters(seed, path.steps[0]));
      std::vector<Step> rest(path.steps.begin() + 1, path.steps.end());
      MD_ASSIGN_OR_RETURN(result, CompileSteps(seed, rest));
    } else {
      MD_ASSIGN_OR_RETURN(result, CompileSteps(dom_, path.steps));
    }
    program_.set_query_pred(result);
    return std::move(program_);
  }

 private:
  core::PredId Fresh() {
    return program_.preds().MustIntern("s" + std::to_string(counter_++), 1);
  }

  core::PredId EnsureDom() {
    core::PredId dom = program_.preds().MustIntern("dom", 1);
    core::PredId root = program_.preds().MustIntern("root", 1);
    core::PredId fc = program_.preds().MustIntern("firstchild", 2);
    core::PredId ns = program_.preds().MustIntern("nextsibling", 2);
    core::Term x = core::Term::Var(0), y = core::Term::Var(1);
    program_.AddRule(core::MakeRule(core::MakeAtom(dom, {x}),
                                    {core::MakeAtom(root, {x})}, {"x"}));
    program_.AddRule(core::MakeRule(
        core::MakeAtom(dom, {y}),
        {core::MakeAtom(dom, {x}), core::MakeAtom(fc, {x, y})}, {"x", "y"}));
    program_.AddRule(core::MakeRule(
        core::MakeAtom(dom, {y}),
        {core::MakeAtom(dom, {x}), core::MakeAtom(ns, {x, y})}, {"x", "y"}));
    return dom;
  }

  util::Result<core::PredId> RootSet() {
    core::PredId p = Fresh();
    core::PredId root = program_.preds().MustIntern("root", 1);
    core::Term x = core::Term::Var(0);
    program_.AddRule(core::MakeRule(core::MakeAtom(p, {x}),
                                    {core::MakeAtom(root, {x})}, {"x"}));
    return p;
  }

  /// The first step of an absolute path, taken from the virtual document
  /// node: child = {root}, descendant(-or-self) = all nodes, anything else
  /// is empty (expressed as a never-firing rule to keep the predicate
  /// intensional).
  util::Result<core::PredId> AbsoluteSeedSet(Axis axis) {
    switch (axis) {
      case Axis::kChild:
        return RootSet();
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf:
        return dom_;
      default: {
        core::PredId p = Fresh();
        core::PredId ns = program_.preds().MustIntern("nextsibling", 2);
        core::Term x = core::Term::Var(0);
        program_.AddRule(core::MakeRule(core::MakeAtom(p, {x}),
                                        {core::MakeAtom(ns, {x, x})}, {"x"}));
        return p;
      }
    }
  }

  /// current-set × step → new set predicate.
  util::Result<core::PredId> CompileSteps(core::PredId current,
                                          const std::vector<Step>& steps) {
    for (const Step& step : steps) {
      MD_ASSIGN_OR_RETURN(
          core::PredId moved,
          caterpillar::AppendCaterpillarRules(
              &program_, current, AxisExpr(step.axis),
              "ax" + std::to_string(counter_++)));
      MD_ASSIGN_OR_RETURN(current, ApplyFilters(moved, step));
    }
    return current;
  }

  util::Result<core::PredId> ApplyFilters(core::PredId moved,
                                          const Step& step) {
    core::Term x = core::Term::Var(0);
    core::PredId current = moved;
    if (!step.label.empty()) {
      core::PredId lbl =
          program_.preds().MustIntern(core::LabelPredName(step.label), 1);
      core::PredId next = Fresh();
      program_.AddRule(core::MakeRule(
          core::MakeAtom(next, {x}),
          {core::MakeAtom(current, {x}), core::MakeAtom(lbl, {x})}, {"x"}));
      current = next;
    }
    for (const ExprP& pred : step.predicates) {
      MD_ASSIGN_OR_RETURN(core::PredId filter, CompilePredicate(pred));
      core::PredId next = Fresh();
      program_.AddRule(core::MakeRule(
          core::MakeAtom(next, {x}),
          {core::MakeAtom(current, {x}), core::MakeAtom(filter, {x})},
          {"x"}));
      current = next;
    }
    return current;
  }

  /// The set of nodes satisfying a predicate expression.
  util::Result<core::PredId> CompilePredicate(const ExprP& e) {
    core::Term x = core::Term::Var(0);
    switch (e->kind) {
      case Expr::Kind::kNot:
        return util::Status::Unimplemented(
            "not(·) has no positive-datalog image; use the reference "
            "evaluator (monadic datalog is positive, Section 3)");
      case Expr::Kind::kAnd: {
        MD_ASSIGN_OR_RETURN(core::PredId acc,
                            CompilePredicate(e->children[0]));
        for (size_t i = 1; i < e->children.size(); ++i) {
          MD_ASSIGN_OR_RETURN(core::PredId next,
                              CompilePredicate(e->children[i]));
          core::PredId merged = Fresh();
          program_.AddRule(core::MakeRule(
              core::MakeAtom(merged, {x}),
              {core::MakeAtom(acc, {x}), core::MakeAtom(next, {x})}, {"x"}));
          acc = merged;
        }
        return acc;
      }
      case Expr::Kind::kOr: {
        core::PredId merged = Fresh();
        for (const ExprP& c : e->children) {
          MD_ASSIGN_OR_RETURN(core::PredId part, CompilePredicate(c));
          program_.AddRule(core::MakeRule(core::MakeAtom(merged, {x}),
                                          {core::MakeAtom(part, {x})},
                                          {"x"}));
        }
        return merged;
      }
      case Expr::Kind::kPath: {
        // Existence filter: walk the relative path backwards. B_last = nodes
        // matching the last step; B_k = step-k matches with an axis_{k+1}
        // successor in B_{k+1}; filter = inverse-axis_1 image of B_1.
        const std::vector<Step>& steps = e->path.steps;
        MD_CHECK(!steps.empty());
        core::PredId below = -1;
        // The axis linking `below` to the position one step earlier. Local:
        // StepSelfSet recurses into nested predicates, which compile their
        // own paths.
        Axis link_axis = Axis::kChild;
        for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
          MD_ASSIGN_OR_RETURN(core::PredId matches, StepSelfSet(*it));
          if (below >= 0) {
            // matches ∧ (∃ successor via link_axis in below).
            MD_ASSIGN_OR_RETURN(
                core::PredId has_succ,
                caterpillar::AppendCaterpillarRules(
                    &program_, below,
                    caterpillar::Inverse(AxisExpr(link_axis)),
                    "bk" + std::to_string(counter_++)));
            core::PredId merged = Fresh();
            program_.AddRule(core::MakeRule(
                core::MakeAtom(merged, {x}),
                {core::MakeAtom(matches, {x}),
                 core::MakeAtom(has_succ, {x})},
                {"x"}));
            below = merged;
          } else {
            below = matches;
          }
          link_axis = it->axis;
        }
        if (e->path.absolute) {
          // The filter holds of every node iff the absolute path is
          // non-empty from the virtual document node: child axis → the root
          // itself is in B_1; descendant axes → any node is in B_1.
          core::PredId witness = Fresh();
          if (link_axis == Axis::kChild) {
            core::PredId root = program_.preds().MustIntern("root", 1);
            program_.AddRule(core::MakeRule(
                core::MakeAtom(witness, {x}),
                {core::MakeAtom(below, {x}), core::MakeAtom(root, {x})},
                {"x"}));
          } else if (link_axis == Axis::kDescendant ||
                     link_axis == Axis::kDescendantOrSelf) {
            program_.AddRule(core::MakeRule(core::MakeAtom(witness, {x}),
                                            {core::MakeAtom(below, {x})},
                                            {"x"}));
          }  // other axes from the document node: no witness rule (empty)
          // Spread to all nodes: filter(x) ← dom(x), witness(y) is
          // disconnected — allowed (the engines split it), but keep it
          // simple with the document-order-free form:
          core::PredId filter = Fresh();
          core::Term y = core::Term::Var(1);
          program_.AddRule(core::MakeRule(
              core::MakeAtom(filter, {x}),
              {core::MakeAtom(dom_, {x}), core::MakeAtom(witness, {y})},
              {"x", "y"}));
          return filter;
        }
        return caterpillar::AppendCaterpillarRules(
            &program_, below, caterpillar::Inverse(AxisExpr(link_axis)),
            "bk" + std::to_string(counter_++));
      }
    }
    return util::Status::Internal("unreachable predicate kind");
  }

  /// Nodes matching a step's node test and its own predicates (no axis).
  util::Result<core::PredId> StepSelfSet(const Step& step) {
    core::Term x = core::Term::Var(0);
    core::PredId current;
    if (step.label.empty()) {
      current = dom_;
    } else {
      core::PredId lbl =
          program_.preds().MustIntern(core::LabelPredName(step.label), 1);
      current = Fresh();
      program_.AddRule(core::MakeRule(core::MakeAtom(current, {x}),
                                      {core::MakeAtom(lbl, {x})}, {"x"}));
    }
    for (const ExprP& pred : step.predicates) {
      MD_ASSIGN_OR_RETURN(core::PredId filter, CompilePredicate(pred));
      core::PredId next = Fresh();
      program_.AddRule(core::MakeRule(
          core::MakeAtom(next, {x}),
          {core::MakeAtom(current, {x}), core::MakeAtom(filter, {x})},
          {"x"}));
      current = next;
    }
    return current;
  }

  core::Program program_;
  core::PredId dom_ = -1;
  int32_t counter_ = 0;
};

bool UsesNegation(const ExprP& e);

bool PathUsesNegation(const Path& p) {
  for (const Step& s : p.steps) {
    for (const ExprP& pred : s.predicates) {
      if (UsesNegation(pred)) return true;
    }
  }
  return false;
}

bool UsesNegation(const ExprP& e) {
  if (e->kind == Expr::Kind::kNot) return true;
  if (e->kind == Expr::Kind::kPath) return PathUsesNegation(e->path);
  for (const ExprP& c : e->children) {
    if (UsesNegation(c)) return true;
  }
  return false;
}

}  // namespace

util::Result<Path> ParseXPath(std::string_view text) {
  return XPathParser(text).Parse();
}

std::string ToString(const Path& path) {
  std::string out = path.absolute ? "/" : "";
  for (size_t i = 0; i < path.steps.size(); ++i) {
    if (i > 0) out += "/";
    out += StepToString(path.steps[i]);
  }
  return out;
}

util::Result<std::vector<tree::NodeId>> EvalXPathReference(
    const tree::Tree& t, const Path& path) {
  NodeSet everywhere;
  for (tree::NodeId n = 0; n < t.size(); ++n) everywhere.insert(n);
  NodeSet result = EvalPathFromContext(t, path, std::move(everywhere));
  return std::vector<tree::NodeId>(result.begin(), result.end());
}

util::Result<core::Program> XPathToDatalog(const Path& path) {
  if (PathUsesNegation(path)) {
    return util::Status::Unimplemented(
        "not(·) has no positive-datalog image; monadic datalog is positive "
        "(Section 3)");
  }
  return XPathCompiler().Compile(path);
}

util::Result<std::vector<tree::NodeId>> EvalXPath(const tree::Tree& t,
                                                  std::string_view query) {
  MD_ASSIGN_OR_RETURN(Path path, ParseXPath(query));
  if (PathUsesNegation(path)) {
    // Stratified fallback: negation is evaluated by the reference engine.
    return EvalXPathReference(t, path);
  }
  MD_ASSIGN_OR_RETURN(core::Program program, XPathToDatalog(path));
  MD_ASSIGN_OR_RETURN(core::EvalResult result,
                      core::EvaluateOnTree(program, t));
  return result.Query();
}

}  // namespace mdatalog::xpath
