#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/core/ast.h"
#include "src/tree/tree.h"
#include "src/util/result.h"

/// \file xpath.h
/// Core XPath over document trees — the Section 7 application: "Core XPath,
/// the logical core fragment of the popular XPath language, can be mapped
/// efficiently to monadic datalog and thus inherits its very favorable
/// worst-case evaluation complexity bounds" [Gottlob, Koch 2002b; Gottlob,
/// Koch, Pichler 2002].
///
/// Supported grammar (a faithful Core XPath subset):
///
///   path      := '/' relpath | relpath            (absolute | relative)
///   relpath   := step ('/' step)*
///   step      := axis '::' nodetest predicate*
///              | nodetest predicate*              (child axis shorthand)
///              | '/' step                         ('//' = descendant)
///   axis      := self | child | descendant | descendant-or-self | parent
///              | ancestor | ancestor-or-self | following-sibling
///              | preceding-sibling
///   nodetest  := label | '*'
///   predicate := '[' expr ']'
///   expr      := relpath | 'not' '(' expr ')' | expr 'and' expr
///              | expr 'or' expr | '(' expr ')'
///
/// Examples: "/html/body//tr[td]/td[not(b)]",
/// "//li[following-sibling::li]".
///
/// Queries compile to monadic datalog over τ_ur (axes become caterpillar
/// expressions, Lemma 5.9) and evaluate with the Theorem 4.2 grounded engine
/// in O(|P|·|dom|); a direct set-based evaluator provides the reference
/// semantics for cross-validation.

namespace mdatalog::xpath {

struct Expr;  // predicate expression
using ExprP = std::shared_ptr<const Expr>;

enum class Axis {
  kSelf,
  kChild,
  kDescendant,
  kDescendantOrSelf,
  kParent,
  kAncestor,
  kAncestorOrSelf,
  kFollowingSibling,
  kPrecedingSibling,
};

struct Step {
  Axis axis = Axis::kChild;
  std::string label;  ///< node test; "" means '*'
  std::vector<ExprP> predicates;
};

struct Path {
  bool absolute = false;  ///< starts at the root ('/...') or at any node
  std::vector<Step> steps;
};

struct Expr {
  enum class Kind { kPath, kNot, kAnd, kOr };
  Kind kind;
  Path path;                    ///< kPath
  std::vector<ExprP> children;  ///< kNot (1), kAnd/kOr (2+)
};

/// Parses a Core XPath query.
util::Result<Path> ParseXPath(std::string_view text);

std::string ToString(const Path& path);

/// Reference semantics: the node set selected by `path` (context = root for
/// absolute paths; every node for relative ones). Direct set-based
/// evaluation, used to cross-check the datalog compilation.
util::Result<std::vector<tree::NodeId>> EvalXPathReference(
    const tree::Tree& t, const Path& path);

/// Compiles `path` to a monadic datalog program over τ_ur whose query
/// predicate selects exactly the path's result. Size O(|path|); evaluates
/// with the Theorem 4.2 engine in O(|P|·|dom|).
util::Result<core::Program> XPathToDatalog(const Path& path);

/// Convenience: parse + compile + evaluate (grounded engine).
util::Result<std::vector<tree::NodeId>> EvalXPath(const tree::Tree& t,
                                                  std::string_view query);

}  // namespace mdatalog::xpath
