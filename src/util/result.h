#pragma once

#include <cstdlib>
#include <optional>
#include <utility>

#include "src/util/status.h"

/// \file result.h
/// Result<T>: a value-or-Status, the library's return type for fallible
/// operations that produce a value.

namespace mdatalog::util {

namespace internal {
[[noreturn]] void DieBadResultAccess(const Status& status);
}  // namespace internal

/// Holds either a T or a non-OK Status. Accessing the value of an errored
/// Result aborts the process (library code must always check ok() first;
/// tests use ASSERT_OK-style helpers).
template <typename T>
class Result {
 public:
  /// Implicit from value (the common, successful path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& {
    if (!ok()) internal::DieBadResultAccess(status_);
    return *value_;
  }
  T& ValueOrDie() & {
    if (!ok()) internal::DieBadResultAccess(status_);
    return *value_;
  }
  T&& ValueOrDie() && {
    if (!ok()) internal::DieBadResultAccess(status_);
    return std::move(*value_);
  }

  /// Shorthand used pervasively: `auto tree = ParseHtml(src).ValueOrDie();`
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present
};

}  // namespace mdatalog::util

/// Propagates the error of a Result expression, else binds its value.
#define MD_ASSIGN_OR_RETURN(lhs, expr)            \
  auto MD_CONCAT_(_res_, __LINE__) = (expr);      \
  if (!MD_CONCAT_(_res_, __LINE__).ok())          \
    return MD_CONCAT_(_res_, __LINE__).status();  \
  lhs = std::move(MD_CONCAT_(_res_, __LINE__)).ValueOrDie()

#define MD_CONCAT_IMPL_(a, b) a##b
#define MD_CONCAT_(a, b) MD_CONCAT_IMPL_(a, b)
