#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <random>
#include <string_view>

/// \file hash.h
/// Content hashing shared by the serving caches (src/runtime/) and the
/// corpus store (src/store/). Moved out of the runtime so the store — which
/// the runtime sits on top of — can key packed documents by the same content
/// hash the document cache uses, without a dependency cycle.
///
/// Two families live here with different stability contracts:
///  * HashBytes / HashBytes128 — unkeyed, stable across processes and runs.
///    The corpus store persists HashBytes128 values into packed snapshots,
///    so these must never change silently.
///  * SipHash-2-4 (SipHasher / SipHash) — keyed, randomized per process.
///    The in-memory caches use it for shard routing, sketch keys and bucket
///    placement: once tenants are mutually untrusted, a 64-bit unkeyed hash
///    is an attack surface (precomputed collisions skew one shard, alias the
///    frequency sketch, or degenerate a hash bucket into a list). A secret
///    key removes the offline-search option without a measurable cost on the
///    serving path (~1 byte/cycle on short keys).

namespace mdatalog::util {

/// FNV-1a 64-bit. Stable across runs; used for keys over *trusted* inputs
/// (program text fingerprints).
inline uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

/// 128-bit content hash: an FNV-1a stream plus a structurally different
/// multiply-xorshift stream, one scan. Document/memo/store keys use this
/// because the HTML is untrusted — a key collision would silently serve one
/// page's extraction results for another, and 64 bits of a non-cryptographic
/// hash is constructible. Not cryptographic either (see the note at the
/// definition); swap in a keyed hash if adversarial collision search is in
/// the threat model.
struct Hash128 {
  uint64_t lo = 0;
  uint64_t hi = 0;
  bool operator==(const Hash128&) const = default;
};

inline Hash128 HashBytes128(std::string_view bytes) {
  // Two structurally different accumulators over one scan: `lo` is standard
  // FNV-1a; `hi` is a multiply-xorshift (splitmix-style) stream, so a
  // differential that collides the FNV polynomial does not transfer to the
  // second state. Not cryptographic — a determined attacker with offline
  // search could still target the pair — but the serving caches fail
  // *wrong-answer-silently* on collision, so the bar sits deliberately far
  // above a single 64-bit FNV. Swap in a keyed hash (SipHash) here if the
  // deployment threat model includes adversarial collision search.
  Hash128 h;
  h.lo = 1469598103934665603ULL;
  h.hi = 0x9e3779b97f4a7c15ULL;
  for (unsigned char c : bytes) {
    h.lo = (h.lo ^ c) * 1099511628211ULL;
    uint64_t x = h.hi + 0x9e3779b97f4a7c15ULL + c;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h.hi = x ^ (x >> 27);
  }
  h.hi ^= static_cast<uint64_t>(bytes.size());  // length guard
  return h;
}

/// 128-bit key for SipHash. Equal keys produce equal hashes; the process key
/// below is random, so hash values are NOT stable across runs — never
/// persist them.
struct SipHashKey {
  uint64_t k0 = 0;
  uint64_t k1 = 0;
};

/// The process-wide random SipHash key the in-memory caches hash with. One
/// key per process: cache keys never cross process boundaries (the corpus
/// store keys on the unkeyed Hash128 precisely so its snapshots stay
/// portable), and a shared key lets every cache reuse one secret.
inline const SipHashKey& ProcessSipHashKey() {
  static const SipHashKey key = [] {
    std::random_device rd;
    auto r64 = [&rd] {
      return (static_cast<uint64_t>(rd()) << 32) ^ static_cast<uint64_t>(rd());
    };
    return SipHashKey{r64(), r64()};
  }();
  return key;
}

/// Incremental SipHash-2-4 (Aumasson & Bernstein). Feed any mix of raw byte
/// ranges and 64-bit words, then Finish() once. The word form hashes the
/// value's 8 little-endian bytes — callers composing structured keys
/// (content hash halves, program fingerprints) avoid staging them through a
/// temporary buffer.
class SipHasher {
 public:
  explicit SipHasher(const SipHashKey& key = ProcessSipHashKey())
      : v0_(key.k0 ^ 0x736f6d6570736575ULL),
        v1_(key.k1 ^ 0x646f72616e646f6dULL),
        v2_(key.k0 ^ 0x6c7967656e657261ULL),
        v3_(key.k1 ^ 0x7465646279746573ULL) {}

  void Update(const void* data, size_t len) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    total_ += len;
    if (buffered_ > 0) {
      while (buffered_ < 8 && len > 0) {
        buf_[buffered_++] = *p++;
        --len;
      }
      if (buffered_ == 8) {
        Compress(Load64(buf_));
        buffered_ = 0;
      }
    }
    while (len >= 8) {
      Compress(Load64(p));
      p += 8;
      len -= 8;
    }
    while (len > 0) {
      buf_[buffered_++] = *p++;
      --len;
    }
  }

  void Update(std::string_view bytes) { Update(bytes.data(), bytes.size()); }

  void Update64(uint64_t v) {
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    Update(b, 8);
  }

  /// Finalizes and returns the 64-bit digest. The hasher must not be
  /// updated again afterwards.
  uint64_t Finish() {
    uint64_t last = static_cast<uint64_t>(total_ & 0xff) << 56;
    for (size_t i = 0; i < buffered_; ++i) {
      last |= static_cast<uint64_t>(buf_[i]) << (8 * i);
    }
    Compress(last);
    v2_ ^= 0xff;
    Round();
    Round();
    Round();
    Round();
    return v0_ ^ v1_ ^ v2_ ^ v3_;
  }

 private:
  static uint64_t Rotl(uint64_t x, int b) { return (x << b) | (x >> (64 - b)); }
  static uint64_t Load64(const unsigned char* p) {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
  }

  void Round() {
    v0_ += v1_;
    v1_ = Rotl(v1_, 13);
    v1_ ^= v0_;
    v0_ = Rotl(v0_, 32);
    v2_ += v3_;
    v3_ = Rotl(v3_, 16);
    v3_ ^= v2_;
    v0_ += v3_;
    v3_ = Rotl(v3_, 21);
    v3_ ^= v0_;
    v2_ += v1_;
    v1_ = Rotl(v1_, 17);
    v1_ ^= v2_;
    v2_ = Rotl(v2_, 32);
  }

  void Compress(uint64_t m) {  // the c = 2 compression rounds of SipHash-2-4
    v3_ ^= m;
    Round();
    Round();
    v0_ ^= m;
  }

  uint64_t v0_, v1_, v2_, v3_;
  unsigned char buf_[8] = {};
  size_t buffered_ = 0;
  uint64_t total_ = 0;
};

/// One-shot SipHash-2-4 of a byte range under `key` (the process key by
/// default).
inline uint64_t SipHash(std::string_view bytes,
                        const SipHashKey& key = ProcessSipHashKey()) {
  SipHasher h(key);
  h.Update(bytes);
  return h.Finish();
}

}  // namespace mdatalog::util
