#pragma once

#include <cstdint>
#include <string_view>

/// \file hash.h
/// Content hashing shared by the serving caches (src/runtime/) and the
/// corpus store (src/store/). Moved out of the runtime so the store — which
/// the runtime sits on top of — can key packed documents by the same content
/// hash the document cache uses, without a dependency cycle.

namespace mdatalog::util {

/// FNV-1a 64-bit. Stable across runs; used for keys over *trusted* inputs
/// (program text fingerprints).
inline uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

/// 128-bit content hash: an FNV-1a stream plus a structurally different
/// multiply-xorshift stream, one scan. Document/memo/store keys use this
/// because the HTML is untrusted — a key collision would silently serve one
/// page's extraction results for another, and 64 bits of a non-cryptographic
/// hash is constructible. Not cryptographic either (see the note at the
/// definition); swap in a keyed hash if adversarial collision search is in
/// the threat model.
struct Hash128 {
  uint64_t lo = 0;
  uint64_t hi = 0;
  bool operator==(const Hash128&) const = default;
};

inline Hash128 HashBytes128(std::string_view bytes) {
  // Two structurally different accumulators over one scan: `lo` is standard
  // FNV-1a; `hi` is a multiply-xorshift (splitmix-style) stream, so a
  // differential that collides the FNV polynomial does not transfer to the
  // second state. Not cryptographic — a determined attacker with offline
  // search could still target the pair — but the serving caches fail
  // *wrong-answer-silently* on collision, so the bar sits deliberately far
  // above a single 64-bit FNV. Swap in a keyed hash (SipHash) here if the
  // deployment threat model includes adversarial collision search.
  Hash128 h;
  h.lo = 1469598103934665603ULL;
  h.hi = 0x9e3779b97f4a7c15ULL;
  for (unsigned char c : bytes) {
    h.lo = (h.lo ^ c) * 1099511628211ULL;
    uint64_t x = h.hi + 0x9e3779b97f4a7c15ULL + c;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h.hi = x ^ (x >> 27);
  }
  h.hi ^= static_cast<uint64_t>(bytes.size());  // length guard
  return h;
}

}  // namespace mdatalog::util
