#include "src/util/status.h"

namespace mdatalog::util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kCancelled: return "Cancelled";
    case StatusCode::kDataLoss: return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace mdatalog::util
