#include "src/util/result.h"

#include <cstdio>

namespace mdatalog::util::internal {

void DieBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Fatal: accessed value of errored Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace mdatalog::util::internal
