#pragma once

#include <string>
#include <utility>

/// \file status.h
/// Error handling for mdatalog. The library does not throw exceptions; every
/// fallible public API returns util::Status or util::Result<T> (see result.h),
/// following the Arrow/RocksDB idiom.

namespace mdatalog::util {

/// Coarse error categories. Kept deliberately small; the human-readable message
/// carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed (bad syntax, bad ids)
  kNotFound,          ///< lookup failed (unknown predicate, label, node)
  kFailedPrecondition,///< object not in the state required by the operation
  kUnimplemented,     ///< feature intentionally out of scope
  kInternal,          ///< invariant violation inside the library (a bug)
  kResourceExhausted, ///< configured limit exceeded (step budget, state budget)
  kDeadlineExceeded,  ///< per-request deadline expired mid-evaluation
  kCancelled,         ///< caller cooperatively cancelled the request
  kDataLoss,          ///< stored bytes corrupt/truncated (checksum mismatch)
};

/// Returns the canonical name of a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy in the OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

}  // namespace mdatalog::util

/// Propagates a non-OK Status out of the enclosing function.
#define MD_RETURN_NOT_OK(expr)                       \
  do {                                               \
    ::mdatalog::util::Status _st = (expr);           \
    if (!_st.ok()) return _st;                       \
  } while (0)
