#pragma once

#include <bit>
#include <cstdint>

/// \file bits.h
/// Small bit-math helpers shared by the runtime caches and the NodeSet word
/// loops.

namespace mdatalog::util {

/// Number of set bits in one 64-bit word (single popcnt instruction where
/// available).
inline int32_t Popcount64(uint64_t w) {
  return static_cast<int32_t>(__builtin_popcountll(w));
}

/// Index of the lowest set bit of `w`. w must be nonzero.
inline int32_t Ctz64(uint64_t w) { return std::countr_zero(w); }

/// Number of leading zero bits of `w`. w must be nonzero (the telemetry
/// histogram bucketing guards the zero case before calling).
inline int32_t CountLeadingZeros64(uint64_t w) { return std::countl_zero(w); }

/// Smallest power of two >= v, for shard counts and sketch sizes. Inputs are
/// clamped to [1, 2^30] — beyond that the doubling loop would overflow
/// (signed UB), and no cache legitimately wants a billion shards.
inline int32_t RoundUpPow2(int32_t v) {
  if (v < 1) v = 1;
  if (v > (1 << 30)) v = 1 << 30;
  int32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Splitmix64 finalizer: one-round full-avalanche mix. The caches use it so
/// shard selection (high bits) and sketch rows are well distributed even for
/// structured key material.
inline uint64_t Mix64(uint64_t h) {
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace mdatalog::util
