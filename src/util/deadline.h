#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "src/util/status.h"

/// \file deadline.h
/// Per-request deadlines and cooperative cancellation for the serving path.
///
/// A production wrapper deployment cannot let one pathological page occupy a
/// pool worker forever: every fixpoint loop in the library (the semi-naive
/// T_P rounds, the grounded engine's node sweep, the Horn propagation queue,
/// the native Elog pattern fixpoint) periodically polls an EvalControl and
/// unwinds with a typed kDeadlineExceeded / kCancelled status. The polling
/// is strided (EvalTicker) so the hot loops pay one decrement per item and
/// touch the clock only every few thousand items.

namespace mdatalog::util {

/// Shared cancellation flag. One token may be watched by many concurrent
/// requests (e.g. every page of one RunBatch); Cancel() is sticky.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// An absolute point in time after which a request must not keep computing.
/// Value type, cheap to copy. Default-constructed = no deadline.
class Deadline {
 public:
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }
  static Deadline At(std::chrono::steady_clock::time_point t) {
    Deadline d;
    d.has_deadline_ = true;
    d.at_ = t;
    return d;
  }
  template <typename Rep, typename Period>
  static Deadline After(std::chrono::duration<Rep, Period> d) {
    return At(std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  d));
  }

  bool has_deadline() const { return has_deadline_; }
  bool expired() const {
    return has_deadline_ && std::chrono::steady_clock::now() >= at_;
  }
  std::chrono::steady_clock::time_point at() const { return at_; }

 private:
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point at_{};
};

/// The earlier of two deadlines; an absent deadline is later than any. The
/// QoS layer uses this to tighten (never loosen) a request's own deadline
/// when its tenant is over quota.
inline Deadline EarlierOf(const Deadline& a, const Deadline& b) {
  if (!a.has_deadline()) return b;
  if (!b.has_deadline()) return a;
  return a.at() <= b.at() ? a : b;
}

/// The control block threaded through evaluation: a deadline plus an
/// optional shared cancel token. Copyable view; the token (if any) must
/// outlive the evaluation, which the runtime guarantees by holding the
/// shared_ptr in the request closure.
///
/// All engine entry points accept `const EvalControl*` with nullptr meaning
/// "unbounded" — the pre-existing call sites pay nothing.
class EvalControl {
 public:
  EvalControl() = default;
  EvalControl(Deadline deadline, const CancelToken* cancel)
      : deadline_(deadline), cancel_(cancel) {}

  /// Full check: consults the cancel flag and the clock. Not for per-tuple
  /// loops — wrap in an EvalTicker there.
  Status Check() const {
    if (cancel_ != nullptr && cancel_->cancelled()) {
      return Status::Cancelled("request cancelled");
    }
    if (deadline_.expired()) {
      return Status::DeadlineExceeded("request deadline exceeded");
    }
    return Status::OK();
  }

  /// True when every check would trivially pass — lets engines skip even the
  /// strided polling when no bound was requested.
  bool unbounded() const { return cancel_ == nullptr && !deadline_.has_deadline(); }

  const Deadline& deadline() const { return deadline_; }

 private:
  Deadline deadline_{};
  const CancelToken* cancel_ = nullptr;
};

/// Strided poller for tight loops: Tick() is one decrement-and-branch; only
/// every `stride` calls does it run the real EvalControl::Check. A null
/// control compiles down to the same decrement with no clock access ever.
class EvalTicker {
 public:
  /// Default stride: at ~10ns/item the clock is touched every ~40µs, fine
  /// next to millisecond-scale deadlines.
  static constexpr uint32_t kDefaultStride = 4096;

  explicit EvalTicker(const EvalControl* control,
                      uint32_t stride = kDefaultStride)
      : control_(control != nullptr && !control->unbounded() ? control
                                                             : nullptr),
        stride_(stride),
        left_(stride) {}

  /// OK or the typed failure. Amortized cost: one predictable branch.
  Status Tick() {
    if (--left_ != 0 || control_ == nullptr) return Status::OK();
    left_ = stride_;
    return control_->Check();
  }

  /// True iff polling can ever fail (lets callers hoist the whole guard).
  bool active() const { return control_ != nullptr; }

 private:
  const EvalControl* control_;
  uint32_t stride_;
  uint32_t left_;
};

}  // namespace mdatalog::util
