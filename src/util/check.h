#pragma once

#include <cstdio>
#include <cstdlib>

/// \file check.h
/// Internal invariant checks. MD_CHECK is always on (cheap, guards data
/// structure invariants whose violation would corrupt results); MD_DCHECK
/// compiles out in release builds.

#define MD_CHECK(cond)                                                    \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "MD_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define MD_DCHECK(cond) \
  do {                  \
  } while (0)
#else
#define MD_DCHECK(cond) MD_CHECK(cond)
#endif
