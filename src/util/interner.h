#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/util/check.h"

/// \file interner.h
/// String interning. Labels (tree alphabet Σ) and predicate names are interned
/// once and handled as dense int32 ids everywhere else, which keeps the hot
/// evaluation loops free of string comparisons.

namespace mdatalog::util {

/// Dense id assigned by an Interner. Ids start at 0 and are stable for the
/// lifetime of the Interner.
using SymbolId = int32_t;

inline constexpr SymbolId kInvalidSymbol = -1;

/// Bidirectional string <-> dense id map.
///
/// Thread safety: Intern() mutates and must not race with anything. Find(),
/// Name() and size() are pure reads and are safe to call concurrently —
/// *provided* no thread interns at the same time. Every Interner in this
/// library is owned by an object that is immutable once built (a Tree after
/// TreeBuilder::Build, a Program's PredicateTable after parsing/translation),
/// so the serving runtime may share trees and compiled programs across
/// worker threads freely; construction is confined to a single thread. Do
/// not intern into a shared instance after publication — isolate a fresh
/// Interner per worker instead if mutation is needed.
class Interner {
 public:
  /// Returns the id for `s`, interning it on first sight.
  SymbolId Intern(std::string_view s) {
    auto it = ids_.find(std::string(s));
    if (it != ids_.end()) return it->second;
    SymbolId id = static_cast<SymbolId>(strings_.size());
    strings_.emplace_back(s);
    ids_.emplace(strings_.back(), id);
    return id;
  }

  /// Returns the id for `s`, or kInvalidSymbol if never interned.
  SymbolId Find(std::string_view s) const {
    auto it = ids_.find(std::string(s));
    return it == ids_.end() ? kInvalidSymbol : it->second;
  }

  /// Returns the string for an id. Id must be valid.
  const std::string& Name(SymbolId id) const {
    MD_CHECK(id >= 0 && static_cast<size_t>(id) < strings_.size());
    return strings_[id];
  }

  int32_t size() const { return static_cast<int32_t>(strings_.size()); }

  /// Approximate heap footprint in bytes (strings stored twice: dense table
  /// plus hash-map keys).
  int64_t ApproxBytes() const {
    int64_t bytes = 0;
    for (const std::string& s : strings_) {
      bytes += 2 * static_cast<int64_t>(s.capacity()) +
               static_cast<int64_t>(sizeof(std::string)) +
               static_cast<int64_t>(sizeof(SymbolId)) + 32;  // map node est.
    }
    return bytes;
  }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, SymbolId> ids_;
};

}  // namespace mdatalog::util
