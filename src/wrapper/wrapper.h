#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/elog/ast.h"
#include "src/elog/eval.h"
#include "src/tree/tree.h"
#include "src/util/deadline.h"
#include "src/util/result.h"

/// \file wrapper.h
/// The wrapper layer (Section 6 intro): a wrapper is a set of information
/// extraction functions — unary queries naming tree nodes — and the output
/// of wrapping is a new tree built from the selected nodes: re-labeled by
/// their pattern, connected through the (transitive closure of the) input
/// edge relation, document order preserved, unselected nodes omitted.

namespace mdatalog::wrapper {

/// A wrapper: an Elog program plus the subset of patterns that constitute
/// the extraction functions (in output order). Patterns not listed are
/// auxiliary.
struct Wrapper {
  elog::ElogProgram program;
  std::vector<std::string> extraction_patterns;
};

/// Parses a wrapper file: an Elog program plus an optional extraction
/// directive hidden in a comment line
///
///     %! extract: item, price
///
/// naming the extraction patterns in output order (repeatable; lists
/// concatenate). Without a directive every defined pattern is an extraction
/// pattern, in first-definition order. The directive line is a plain Elog
/// comment, so the file also parses with bare ParseElog.
util::Result<Wrapper> ParseWrapperText(std::string_view text);

/// A wrapper whose program was validated once (elog::PreparedElogProgram) so
/// repeated evaluation over a document stream pays no per-page validation.
/// Immutable after Prepare — safe to share across serving threads.
struct PreparedWrapper {
  elog::PreparedElogProgram program;
  std::vector<std::string> extraction_patterns;

  static util::Result<PreparedWrapper> Prepare(const Wrapper& wrapper);
};

/// Builds the output tree from already-computed pattern extents: a synthetic
/// root "result" whose descendants are the selected nodes, parented at their
/// nearest selected proper ancestor (or the root), labeled by their pattern
/// name. A node matched by several extraction patterns appears once per
/// pattern (in pattern order). Nodes selected by no pattern vanish. The text
/// payload of an output leaf is the full subtree text of its input node
/// (what a user would want of, e.g., a price cell).
///
/// Exposed separately from WrapTree so callers that obtained the extents
/// through another evaluation path (the serving runtime's grounded-datalog
/// engine, Corollary 6.4) reuse the identical output construction.
tree::Tree BuildOutputTree(const std::vector<std::string>& extraction_patterns,
                           const elog::ElogResult& matches,
                           const tree::Tree& t);

/// Runs the wrapper (native Elog evaluation) and builds the output tree.
/// `control` (nullable) carries the per-request deadline / cancel token into
/// the evaluation; the wrap unwinds with kDeadlineExceeded / kCancelled.
util::Result<tree::Tree> WrapTree(const Wrapper& wrapper, const tree::Tree& t,
                                  const util::EvalControl* control = nullptr);

/// Same, for a prepared wrapper over a pre-parsed tree: no re-validation, no
/// re-parse — the entry point the serving runtime's caches feed.
util::Result<tree::Tree> WrapTree(const PreparedWrapper& wrapper,
                                  const tree::Tree& t,
                                  const util::EvalControl* control = nullptr);

/// Convenience: parse HTML, wrap, serialize the result as XML.
util::Result<std::string> WrapHtmlToXml(const Wrapper& wrapper,
                                        std::string_view html);

}  // namespace mdatalog::wrapper
