#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/elog/ast.h"
#include "src/elog/eval.h"
#include "src/tree/tree.h"
#include "src/util/result.h"

/// \file wrapper.h
/// The wrapper layer (Section 6 intro): a wrapper is a set of information
/// extraction functions — unary queries naming tree nodes — and the output
/// of wrapping is a new tree built from the selected nodes: re-labeled by
/// their pattern, connected through the (transitive closure of the) input
/// edge relation, document order preserved, unselected nodes omitted.

namespace mdatalog::wrapper {

/// A wrapper: an Elog program plus the subset of patterns that constitute
/// the extraction functions (in output order). Patterns not listed are
/// auxiliary.
struct Wrapper {
  elog::ElogProgram program;
  std::vector<std::string> extraction_patterns;
};

/// Runs the wrapper and builds the output tree: a synthetic root "result"
/// whose descendants are the selected nodes, parented at their nearest
/// selected proper ancestor (or the root), labeled by their pattern name.
/// A node matched by several extraction patterns appears once per pattern
/// (in pattern order). Nodes selected by no pattern vanish. The text payload
/// of an output leaf is the full subtree text of its input node (what a user
/// would want of, e.g., a price cell).
util::Result<tree::Tree> WrapTree(const Wrapper& wrapper, const tree::Tree& t);

/// Convenience: parse HTML, wrap, serialize the result as XML.
util::Result<std::string> WrapHtmlToXml(const Wrapper& wrapper,
                                        std::string_view html);

}  // namespace mdatalog::wrapper
