#include "src/wrapper/wrapper.h"

#include <functional>
#include <utility>

#include "src/html/parser.h"
#include "src/tree/serialize.h"
#include "src/util/check.h"

namespace mdatalog::wrapper {

using tree::kNoNode;
using tree::NodeId;
using tree::Tree;

util::Result<PreparedWrapper> PreparedWrapper::Prepare(const Wrapper& w) {
  MD_ASSIGN_OR_RETURN(elog::PreparedElogProgram prepared,
                      elog::PreparedElogProgram::Prepare(w.program));
  return PreparedWrapper{std::move(prepared), w.extraction_patterns};
}

Tree BuildOutputTree(const std::vector<std::string>& extraction_patterns,
                     const elog::ElogResult& matches, const Tree& t) {
  // Patterns per node, in extraction-pattern order.
  std::vector<std::vector<int32_t>> patterns_of(t.size());
  for (size_t pi = 0; pi < extraction_patterns.size(); ++pi) {
    for (NodeId n : matches.Of(extraction_patterns[pi])) {
      patterns_of[n].push_back(static_cast<int32_t>(pi));
    }
  }

  // marked_below[n]: some proper descendant of n is selected. An output node
  // is a leaf iff it is the innermost pattern on its input node and nothing
  // below is selected; leaves carry the input subtree's text.
  std::vector<bool> marked_below(t.size(), false);
  std::function<bool(NodeId)> scan = [&](NodeId n) {
    bool below = false;
    for (NodeId c = t.first_child(n); c != kNoNode; c = t.next_sibling(c)) {
      below |= scan(c);
    }
    marked_below[n] = below;
    return below || !patterns_of[n].empty();
  };
  scan(t.root());

  tree::TreeBuilder builder;
  NodeId out_root = builder.Root("result");
  std::vector<NodeId> parent_stack = {out_root};
  std::function<void(NodeId)> walk = [&](NodeId n) {
    size_t pushed = 0;
    for (size_t i = 0; i < patterns_of[n].size(); ++i) {
      int32_t pi = patterns_of[n][i];
      NodeId built =
          builder.Child(parent_stack.back(), extraction_patterns[pi]);
      bool innermost = (i + 1 == patterns_of[n].size());
      if (innermost && !marked_below[n]) {
        builder.SetText(built, t.SubtreeText(n));
      }
      parent_stack.push_back(built);
      ++pushed;
    }
    for (NodeId c = t.first_child(n); c != kNoNode; c = t.next_sibling(c)) {
      walk(c);
    }
    for (size_t i = 0; i < pushed; ++i) parent_stack.pop_back();
  };
  walk(t.root());
  return builder.Build();
}

util::Result<Tree> WrapTree(const Wrapper& wrapper, const Tree& t,
                            const util::EvalControl* control) {
  MD_ASSIGN_OR_RETURN(
      elog::ElogResult result,
      elog::EvaluateElog(wrapper.program, t, elog::kDefaultMaxDerivations,
                         control));
  return BuildOutputTree(wrapper.extraction_patterns, result, t);
}

util::Result<Tree> WrapTree(const PreparedWrapper& wrapper, const Tree& t,
                            const util::EvalControl* control) {
  MD_ASSIGN_OR_RETURN(
      elog::ElogResult result,
      elog::EvaluateElog(wrapper.program, t, elog::kDefaultMaxDerivations,
                         control));
  return BuildOutputTree(wrapper.extraction_patterns, result, t);
}

util::Result<std::string> WrapHtmlToXml(const Wrapper& wrapper,
                                        std::string_view html) {
  MD_ASSIGN_OR_RETURN(html::Document doc, html::ParseHtml(html));
  MD_ASSIGN_OR_RETURN(Tree out, WrapTree(wrapper, doc.tree()));
  return tree::ToXml(out);
}

}  // namespace mdatalog::wrapper
