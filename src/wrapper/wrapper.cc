#include "src/wrapper/wrapper.h"

#include <functional>
#include <utility>

#include "src/html/parser.h"
#include "src/tree/serialize.h"
#include "src/util/check.h"

namespace mdatalog::wrapper {

using tree::kNoNode;
using tree::NodeId;
using tree::Tree;

util::Result<Wrapper> ParseWrapperText(std::string_view text) {
  Wrapper w;
  // Pull out "%! extract: a, b" directive lines before handing the whole
  // text (directives included — they are comments) to the Elog parser.
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    size_t at = line.find_first_not_of(" \t");
    if (at == std::string_view::npos) continue;
    line.remove_prefix(at);
    constexpr std::string_view kDirective = "%! extract:";
    if (line.substr(0, kDirective.size()) != kDirective) continue;
    line.remove_prefix(kDirective.size());
    // Comma-separated pattern names.
    while (!line.empty()) {
      size_t comma = line.find(',');
      std::string_view name = line.substr(0, comma);
      line.remove_prefix(comma == std::string_view::npos ? line.size()
                                                         : comma + 1);
      size_t b = name.find_first_not_of(" \t\r");
      if (b == std::string_view::npos) continue;
      size_t e = name.find_last_not_of(" \t\r");
      w.extraction_patterns.emplace_back(name.substr(b, e - b + 1));
    }
  }
  MD_ASSIGN_OR_RETURN(w.program, elog::ParseElog(text));
  MD_RETURN_NOT_OK(elog::ValidateElog(w.program));
  if (w.extraction_patterns.empty()) {
    w.extraction_patterns = w.program.Patterns();
  }
  return w;
}

util::Result<PreparedWrapper> PreparedWrapper::Prepare(const Wrapper& w) {
  MD_ASSIGN_OR_RETURN(elog::PreparedElogProgram prepared,
                      elog::PreparedElogProgram::Prepare(w.program));
  return PreparedWrapper{std::move(prepared), w.extraction_patterns};
}

Tree BuildOutputTree(const std::vector<std::string>& extraction_patterns,
                     const elog::ElogResult& matches, const Tree& t) {
  // Patterns per node, in extraction-pattern order.
  std::vector<std::vector<int32_t>> patterns_of(t.size());
  for (size_t pi = 0; pi < extraction_patterns.size(); ++pi) {
    for (NodeId n : matches.Of(extraction_patterns[pi])) {
      patterns_of[n].push_back(static_cast<int32_t>(pi));
    }
  }

  // marked_below[n]: some proper descendant of n is selected. An output node
  // is a leaf iff it is the innermost pattern on its input node and nothing
  // below is selected; leaves carry the input subtree's text.
  std::vector<bool> marked_below(t.size(), false);
  std::function<bool(NodeId)> scan = [&](NodeId n) {
    bool below = false;
    for (NodeId c = t.first_child(n); c != kNoNode; c = t.next_sibling(c)) {
      below |= scan(c);
    }
    marked_below[n] = below;
    return below || !patterns_of[n].empty();
  };
  scan(t.root());

  tree::TreeBuilder builder;
  NodeId out_root = builder.Root("result");
  std::vector<NodeId> parent_stack = {out_root};
  std::function<void(NodeId)> walk = [&](NodeId n) {
    size_t pushed = 0;
    for (size_t i = 0; i < patterns_of[n].size(); ++i) {
      int32_t pi = patterns_of[n][i];
      NodeId built =
          builder.Child(parent_stack.back(), extraction_patterns[pi]);
      bool innermost = (i + 1 == patterns_of[n].size());
      if (innermost && !marked_below[n]) {
        builder.SetText(built, t.SubtreeText(n));
      }
      parent_stack.push_back(built);
      ++pushed;
    }
    for (NodeId c = t.first_child(n); c != kNoNode; c = t.next_sibling(c)) {
      walk(c);
    }
    for (size_t i = 0; i < pushed; ++i) parent_stack.pop_back();
  };
  walk(t.root());
  return builder.Build();
}

util::Result<Tree> WrapTree(const Wrapper& wrapper, const Tree& t,
                            const util::EvalControl* control) {
  MD_ASSIGN_OR_RETURN(
      elog::ElogResult result,
      elog::EvaluateElog(wrapper.program, t, elog::kDefaultMaxDerivations,
                         control));
  return BuildOutputTree(wrapper.extraction_patterns, result, t);
}

util::Result<Tree> WrapTree(const PreparedWrapper& wrapper, const Tree& t,
                            const util::EvalControl* control) {
  MD_ASSIGN_OR_RETURN(
      elog::ElogResult result,
      elog::EvaluateElog(wrapper.program, t, elog::kDefaultMaxDerivations,
                         control));
  return BuildOutputTree(wrapper.extraction_patterns, result, t);
}

util::Result<std::string> WrapHtmlToXml(const Wrapper& wrapper,
                                        std::string_view html) {
  MD_ASSIGN_OR_RETURN(html::Document doc, html::ParseHtml(html));
  MD_ASSIGN_OR_RETURN(Tree out, WrapTree(wrapper, doc.tree()));
  return tree::ToXml(out);
}

}  // namespace mdatalog::wrapper
