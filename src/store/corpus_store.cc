#include "src/store/corpus_store.h"

#include <cstring>
#include <fstream>
#include <utility>

#include "src/html/parser.h"
#include "src/util/bits.h"
#include "src/util/check.h"

#if defined(__unix__) || defined(__APPLE__)
#define MDATALOG_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace mdatalog::store {

namespace {

/// Reads a POD header out of an arbitrary (verified-in-bounds) offset. The
/// mapping is only page-aligned, so struct reads go through memcpy.
template <typename T>
T ReadPod(const unsigned char* p) {
  T out;
  std::memcpy(&out, p, sizeof(T));
  return out;
}

}  // namespace

uint64_t DocKey64(const util::Hash128& content_hash, uint64_t attr_hash) {
  return util::Mix64(content_hash.lo * 1099511628211ULL ^ content_hash.hi ^
                     attr_hash);
}

// ---------------------------------------------------------------------------
// Packing.
// ---------------------------------------------------------------------------

std::string PackDocument(const tree::Tree& t, const util::Hash128& hash,
                         std::string_view project_attr) {
  const int32_t n = t.size();
  MD_CHECK(n > 0);
  const int32_t num_labels = t.labels().size();
  const uint32_t wps = (static_cast<uint32_t>(n) + 63) / 64;

  uint64_t label_bytes = 0;
  for (int32_t id = 0; id < num_labels; ++id) {
    label_bytes += t.labels().Name(id).size();
  }
  uint64_t text_bytes = 0;
  bool has_text = false;
  for (tree::NodeId node = 0; node < n; ++node) {
    const std::string_view text = t.text(node);
    text_bytes += text.size();
    has_text = has_text || !text.empty();
  }

  DocHeader h;
  h.num_nodes = static_cast<uint32_t>(n);
  h.num_labels = static_cast<uint32_t>(num_labels);
  h.words_per_set = wps;
  h.hash_lo = hash.lo;
  h.hash_hi = hash.hi;
  h.off_nodes = static_cast<uint32_t>(AlignUp8(sizeof(DocHeader)));
  const uint64_t nodes_bytes = uint64_t{6} * n * sizeof(int32_t);
  h.off_labels = static_cast<uint32_t>(AlignUp8(h.off_nodes + nodes_bytes));
  const uint64_t labels_sec =
      static_cast<uint64_t>(num_labels + 1) * sizeof(uint32_t) + label_bytes;
  uint64_t cursor = h.off_labels + labels_sec;
  uint64_t texts_sec = 0;
  if (has_text) {
    h.off_texts = static_cast<uint32_t>(AlignUp8(cursor));
    texts_sec = uint64_t{static_cast<uint32_t>(n) + 1} * sizeof(uint32_t) +
                text_bytes;
    cursor = h.off_texts + texts_sec;
  }
  h.off_edb = static_cast<uint32_t>(AlignUp8(cursor));
  const uint64_t edb_sec =
      uint64_t{4 + static_cast<uint32_t>(num_labels)} * wps * sizeof(uint64_t);
  h.off_attr = static_cast<uint32_t>(AlignUp8(h.off_edb + edb_sec));
  h.attr_len = static_cast<uint32_t>(project_attr.size());
  h.blob_size = static_cast<uint32_t>(h.off_attr + project_attr.size());

  std::string blob(h.blob_size, '\0');
  unsigned char* base = reinterpret_cast<unsigned char*>(blob.data());

  // nodes: six consecutive column arrays in Tree::Columns order.
  const tree::Tree::Columns cols = t.columns();
  {
    unsigned char* p = base + h.off_nodes;
    const size_t col = static_cast<size_t>(n) * sizeof(int32_t);
    for (const int32_t* src : {cols.parent, cols.first_child, cols.last_child,
                               cols.prev_sibling, cols.next_sibling,
                               cols.label}) {
      std::memcpy(p, src, col);
      p += col;
    }
  }

  // labels: prefix offsets + bytes.
  {
    uint32_t* offs = reinterpret_cast<uint32_t*>(base + h.off_labels);
    char* bytes = reinterpret_cast<char*>(offs + num_labels + 1);
    uint32_t off = 0;
    for (int32_t id = 0; id < num_labels; ++id) {
      offs[id] = off;
      const std::string& name = t.labels().Name(id);
      std::memcpy(bytes + off, name.data(), name.size());
      off += static_cast<uint32_t>(name.size());
    }
    offs[num_labels] = off;
  }

  // texts: prefix offsets + bytes (omitted when no node carries text).
  if (has_text) {
    uint32_t* offs = reinterpret_cast<uint32_t*>(base + h.off_texts);
    char* bytes = reinterpret_cast<char*>(offs + n + 1);
    uint32_t off = 0;
    for (tree::NodeId node = 0; node < n; ++node) {
      offs[node] = off;
      const std::string_view text = t.text(node);
      std::memcpy(bytes + off, text.data(), text.size());
      off += static_cast<uint32_t>(text.size());
    }
    offs[n] = off;
  }

  // edb: root / leaf / lastsibling / firstsibling / per-label bit-arrays.
  {
    uint64_t* sets = reinterpret_cast<uint64_t*>(base + h.off_edb);
    const auto set_bit = [&](int32_t set_index, int32_t node) {
      sets[static_cast<size_t>(set_index) * wps + (node >> 6)] |=
          uint64_t{1} << (node & 63);
    };
    for (tree::NodeId node = 0; node < n; ++node) {
      if (t.IsRoot(node)) set_bit(0, node);
      if (t.IsLeaf(node)) set_bit(1, node);
      if (t.IsLastSibling(node)) set_bit(2, node);
      if (t.IsFirstSibling(node)) set_bit(3, node);
      set_bit(4 + t.label(node), node);
    }
  }

  std::memcpy(base + h.off_attr, project_attr.data(), project_attr.size());

  h.payload_checksum =
      Checksum64(base + sizeof(DocHeader), h.blob_size - sizeof(DocHeader));
  std::memcpy(base, &h, sizeof(DocHeader));
  return blob;
}

// ---------------------------------------------------------------------------
// Builder.
// ---------------------------------------------------------------------------

util::Status CorpusStore::Builder::AddHtml(std::string_view html,
                                           const std::string& project_attr) {
  const util::Hash128 hash = util::HashBytes128(html);
  MD_ASSIGN_OR_RETURN(html::Document doc, html::ParseHtml(html));
  if (!project_attr.empty()) {
    return AddTree(html::ProjectAttributeIntoLabels(doc, project_attr), hash,
                   project_attr);
  }
  return AddTree(doc.tree(), hash, project_attr);
}

util::Status CorpusStore::Builder::AddTree(const tree::Tree& t,
                                           const util::Hash128& content_hash,
                                           const std::string& project_attr) {
  if (t.size() <= 0) {
    return util::Status::InvalidArgument("cannot pack an empty tree");
  }
  const uint64_t attr_hash =
      project_attr.empty() ? 0 : util::HashBytes(project_attr);
  PackedDoc packed{content_hash, attr_hash, project_attr,
                   PackDocument(t, content_hash, project_attr)};
  const uint64_t key = DocKey64(content_hash, attr_hash);
  for (size_t i : by_key_[key]) {
    PackedDoc& existing = docs_[i];
    if (existing.hash == content_hash && existing.attr == project_attr) {
      packed_bytes_ += static_cast<int64_t>(packed.blob.size()) -
                       static_cast<int64_t>(existing.blob.size());
      existing = std::move(packed);  // same key: latest add wins
      return util::Status::OK();
    }
  }
  by_key_[key].push_back(docs_.size());
  packed_bytes_ += static_cast<int64_t>(packed.blob.size());
  docs_.push_back(std::move(packed));
  return util::Status::OK();
}

util::Status CorpusStore::Builder::Save(const std::string& path) const {
  FileHeader fh;
  fh.layout_checksum = kLayoutChecksum;
  fh.doc_count = docs_.size();

  std::vector<IndexEntry> index(docs_.size());
  uint64_t cursor = AlignUp8(sizeof(FileHeader));
  for (size_t i = 0; i < docs_.size(); ++i) {
    index[i].hash_lo = docs_[i].hash.lo;
    index[i].hash_hi = docs_[i].hash.hi;
    index[i].attr_hash = docs_[i].attr_hash;
    index[i].offset = cursor;
    index[i].size = docs_[i].blob.size();
    cursor = AlignUp8(cursor + docs_[i].blob.size());
  }
  fh.index_offset = cursor;
  const uint64_t index_bytes = index.size() * sizeof(IndexEntry);
  fh.index_checksum =
      index.empty() ? 0 : Checksum64(index.data(), index_bytes);
  fh.file_size = fh.index_offset + index_bytes;

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return util::Status::InvalidArgument("cannot open for writing: " + path);
  }
  out.write(reinterpret_cast<const char*>(&fh), sizeof(fh));
  uint64_t written = sizeof(fh);
  static constexpr char kPad[8] = {0};
  for (size_t i = 0; i < docs_.size(); ++i) {
    if (written < index[i].offset) {  // alignment padding between blobs
      out.write(kPad, static_cast<std::streamsize>(index[i].offset - written));
      written = index[i].offset;
    }
    out.write(docs_[i].blob.data(),
              static_cast<std::streamsize>(docs_[i].blob.size()));
    written += docs_[i].blob.size();
  }
  if (written < fh.index_offset) {
    out.write(kPad, static_cast<std::streamsize>(fh.index_offset - written));
  }
  if (!index.empty()) {
    out.write(reinterpret_cast<const char*>(index.data()),
              static_cast<std::streamsize>(index_bytes));
  }
  out.flush();
  if (!out) {
    return util::Status::Internal("short write saving corpus store: " + path);
  }
  return util::Status::OK();
}

// ---------------------------------------------------------------------------
// Open / lookup.
// ---------------------------------------------------------------------------

CorpusStore::~CorpusStore() {
#if MDATALOG_HAVE_MMAP
  if (mmapped_ && data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
  }
#endif
}

util::Result<std::shared_ptr<const CorpusStore>> CorpusStore::Open(
    const std::string& path) {
  // Private ctor: can't make_shared.
  std::shared_ptr<CorpusStore> store(new CorpusStore());
  store->path_ = path;

#if MDATALOG_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return util::Status::InvalidArgument("cannot open corpus store: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return util::Status::InvalidArgument("cannot stat corpus store: " + path);
  }
  store->size_ = static_cast<size_t>(st.st_size);
  if (store->size_ > 0) {
    void* map = ::mmap(nullptr, store->size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      store->data_ = static_cast<const unsigned char*>(map);
      store->mmapped_ = true;
    }
  }
  ::close(fd);
#endif
  if (!store->mmapped_) {
    // mmap unavailable (or empty file): fall back to a heap copy so the rest
    // of the reader is identical.
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
      return util::Status::InvalidArgument("cannot open corpus store: " +
                                           path);
    }
    const std::streamsize sz = in.tellg();
    store->fallback_.resize(static_cast<size_t>(sz));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(store->fallback_.data()), sz);
    if (!in) {
      return util::Status::DataLoss("cannot read corpus store: " + path);
    }
    store->data_ = store->fallback_.data();
    store->size_ = static_cast<size_t>(sz);
  }

  if (store->size_ < sizeof(FileHeader)) {
    return util::Status::DataLoss("corpus store truncated (no header): " +
                                  path);
  }
  const FileHeader fh = ReadPod<FileHeader>(store->data_);
  if (fh.magic != kFileMagic) {
    return util::Status::InvalidArgument("not a corpus store file: " + path);
  }
  if (fh.version != kFormatVersion) {
    return util::Status::FailedPrecondition(
        "unsupported corpus store version " + std::to_string(fh.version) +
        " (this build reads version " + std::to_string(kFormatVersion) +
        "): " + path);
  }
  if (fh.endian_tag != kEndianTag) {
    return util::Status::FailedPrecondition(
        "corpus store written with different endianness: " + path);
  }
  if (fh.layout_checksum != kLayoutChecksum) {
    return util::Status::FailedPrecondition(
        "corpus store layout mismatch (incompatible writer build): " + path);
  }
  if (fh.file_size != store->size_) {
    return util::Status::DataLoss(
        "corpus store truncated: header says " +
        std::to_string(fh.file_size) + " bytes, file has " +
        std::to_string(store->size_) + ": " + path);
  }
  const uint64_t index_bytes = fh.doc_count * sizeof(IndexEntry);
  if (fh.index_offset < sizeof(FileHeader) ||
      fh.index_offset > store->size_ ||
      index_bytes > store->size_ - fh.index_offset) {
    return util::Status::DataLoss("corpus store index out of bounds: " + path);
  }
  if (fh.doc_count > 0) {
    if (Checksum64(store->data_ + fh.index_offset, index_bytes) !=
        fh.index_checksum) {
      return util::Status::DataLoss("corpus store index checksum mismatch: " +
                                    path);
    }
    store->index_.resize(fh.doc_count);
    std::memcpy(store->index_.data(), store->data_ + fh.index_offset,
                index_bytes);
    for (size_t i = 0; i < store->index_.size(); ++i) {
      const IndexEntry& e = store->index_[i];
      if (e.offset < sizeof(FileHeader) || e.offset > fh.index_offset ||
          e.size < sizeof(DocHeader) || e.size > fh.index_offset - e.offset) {
        return util::Status::DataLoss("corpus store entry " +
                                      std::to_string(i) +
                                      " out of bounds: " + path);
      }
      store->by_key_[DocKey64({e.hash_lo, e.hash_hi}, e.attr_hash)].push_back(
          i);
    }
  }
  return std::shared_ptr<const CorpusStore>(std::move(store));
}

util::Result<FrozenDocument> CorpusStore::Find(
    const util::Hash128& content_hash, std::string_view project_attr) const {
  const uint64_t attr_hash =
      project_attr.empty() ? 0 : util::HashBytes(project_attr);
  const auto it = by_key_.find(DocKey64(content_hash, attr_hash));
  if (it != by_key_.end()) {
    for (size_t i : it->second) {
      const IndexEntry& e = index_[i];
      if (e.hash_lo != content_hash.lo || e.hash_hi != content_hash.hi ||
          e.attr_hash != attr_hash) {
        continue;  // 64-bit map-key collision
      }
      MD_ASSIGN_OR_RETURN(FrozenDocument doc, Materialize(e));
      // The index only carries a 64-bit attr hash; the blob has the bytes.
      if (doc.project_attr == project_attr) return doc;
    }
  }
  return util::Status::NotFound("document not in corpus store");
}

util::Result<FrozenDocument> CorpusStore::Get(int64_t i) const {
  if (i < 0 || i >= size()) {
    return util::Status::InvalidArgument("corpus store index out of range: " +
                                         std::to_string(i));
  }
  return Materialize(index_[static_cast<size_t>(i)]);
}

util::Result<FrozenDocument> CorpusStore::Materialize(
    const IndexEntry& e) const {
  // Open() bounds-checked e.offset/e.size against the file; everything below
  // re-derives section bounds from the (untrusted) doc header.
  const unsigned char* base = data_ + e.offset;
  const DocHeader h = ReadPod<DocHeader>(base);
  const auto corrupt = [&](const char* what) {
    return util::Status::DataLoss(std::string("corpus store blob corrupt (") +
                                  what + "): " + path_);
  };
  if (h.magic != kDocMagic) return corrupt("doc magic");
  if (h.blob_size != e.size) return corrupt("size mismatch");
  if (h.num_nodes == 0 || h.num_nodes > (uint32_t{1} << 30)) {
    return corrupt("node count");
  }
  const uint64_t n = h.num_nodes;
  const uint64_t labels = h.num_labels;
  if (h.words_per_set != (n + 63) / 64) return corrupt("words per set");

  // Section bounds. Offsets must be 8-aligned — the views below are
  // reinterpret_casts into the mapping.
  const auto section_ok = [&](uint64_t off, uint64_t len) {
    return (off & 7) == 0 && off >= sizeof(DocHeader) && off <= h.blob_size &&
           len <= h.blob_size - off;
  };
  if (!section_ok(h.off_nodes, 6 * n * sizeof(int32_t))) {
    return corrupt("nodes section");
  }
  if (!section_ok(h.off_labels, (labels + 1) * sizeof(uint32_t))) {
    return corrupt("labels section");
  }
  const uint32_t* label_offsets =
      reinterpret_cast<const uint32_t*>(base + h.off_labels);
  if (!section_ok(h.off_labels, (labels + 1) * sizeof(uint32_t) +
                                    uint64_t{label_offsets[labels]})) {
    return corrupt("label bytes");
  }
  const uint32_t* text_offsets = nullptr;
  const char* text_base = nullptr;
  if (h.off_texts != 0) {
    if (!section_ok(h.off_texts, (n + 1) * sizeof(uint32_t))) {
      return corrupt("texts section");
    }
    text_offsets = reinterpret_cast<const uint32_t*>(base + h.off_texts);
    if (!section_ok(h.off_texts, (n + 1) * sizeof(uint32_t) +
                                     uint64_t{text_offsets[n]})) {
      return corrupt("text bytes");
    }
    text_base =
        reinterpret_cast<const char*>(text_offsets + h.num_nodes + 1);
  }
  if (!section_ok(h.off_edb, (4 + labels) * h.words_per_set *
                                 sizeof(uint64_t))) {
    return corrupt("edb section");
  }
  if (h.off_attr > h.blob_size || h.attr_len > h.blob_size - h.off_attr) {
    return corrupt("attr section");
  }
  if (Checksum64(base + sizeof(DocHeader), h.blob_size - sizeof(DocHeader)) !=
      h.payload_checksum) {
    return corrupt("payload checksum");
  }
  if (h.hash_lo != e.hash_lo || h.hash_hi != e.hash_hi) {
    return corrupt("content hash");
  }

  FrozenDocument doc;
  doc.content_hash = {h.hash_lo, h.hash_hi};
  doc.project_attr = std::string_view(
      reinterpret_cast<const char*>(base + h.off_attr), h.attr_len);
  const int32_t* cols = reinterpret_cast<const int32_t*>(base + h.off_nodes);
  doc.view.num_nodes = static_cast<int32_t>(h.num_nodes);
  doc.view.parent = cols;
  doc.view.first_child = cols + n;
  doc.view.last_child = cols + 2 * n;
  doc.view.prev_sibling = cols + 3 * n;
  doc.view.next_sibling = cols + 4 * n;
  doc.view.label = cols + 5 * n;
  doc.view.text_offsets = text_offsets;
  doc.view.text_base = text_base;
  doc.edb.sets = reinterpret_cast<const uint64_t*>(base + h.off_edb);
  doc.edb.num_labels = static_cast<int32_t>(h.num_labels);
  doc.edb.words_per_set = static_cast<int32_t>(h.words_per_set);
  doc.label_offsets = label_offsets;
  doc.label_base =
      reinterpret_cast<const char*>(label_offsets + h.num_labels + 1);
  doc.num_labels = static_cast<int32_t>(h.num_labels);
  return doc;
}

tree::Tree FrozenDocument::MakeTree() const {
  util::Interner labels;
  for (int32_t id = 0; id < num_labels; ++id) {
    const util::SymbolId got = labels.Intern(label(id));
    MD_CHECK(got == id);  // packed alphabets are duplicate-free by id order
  }
  return tree::Tree::FromFrozenView(view, std::move(labels));
}

}  // namespace mdatalog::store
