#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

/// \file format.h
/// On-disk layout of a corpus store (see README.md in this directory).
///
/// A store file is:
///
///   FileHeader
///   doc blob 0                (8-byte aligned)
///   doc blob 1
///   ...
///   IndexEntry[doc_count]     (8-byte aligned, at FileHeader::index_offset)
///
/// and each doc blob is a DocHeader followed by five sections, every one
/// 8-byte aligned relative to the blob start (offsets are relative to the
/// DocHeader so blobs are relocatable):
///
///   nodes:  6 × num_nodes int32 — the SoA tree columns, in Tree::Columns
///           order (parent, first_child, last_child, prev_sibling,
///           next_sibling, label)
///   labels: (num_labels+1) uint32 prefix offsets + concatenated bytes —
///           the interned alphabet, id order
///   texts:  (num_nodes+1) uint32 prefix offsets + concatenated bytes —
///           per-node text payloads; the whole section is absent
///           (off_texts == 0) when no node carries text
///   edb:    (4 + num_labels) × words_per_set uint64 — the unary EDB
///           bit-arrays in core::FrozenUnaryEdb order (root, leaf,
///           lastsibling, firstsibling, label_0 .. label_{L-1})
///   attr:   attr_len raw bytes — the attribute projection this document was
///           prepared under ("" = raw parse tree)
///
/// Everything is little-endian host format; the endian tag and the layout
/// checksum in the file header reject a file written by an incompatible
/// build instead of misreading it. All multi-byte header reads go through
/// memcpy (the mapping is only guaranteed page-aligned, structs are read out
/// of arbitrary verified offsets).

namespace mdatalog::store {

inline constexpr uint32_t kFileMagic = 0x4D444353;  // "MDCS"
inline constexpr uint32_t kDocMagic = 0x4D444F43;   // "MDOC"
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr uint32_t kEndianTag = 0x01020304;

struct FileHeader {
  uint32_t magic = kFileMagic;
  uint32_t version = kFormatVersion;
  uint32_t endian_tag = kEndianTag;
  uint32_t layout_checksum = 0;  // must equal kLayoutChecksum
  uint64_t doc_count = 0;
  uint64_t index_offset = 0;     // absolute file offset of IndexEntry[0]
  uint64_t index_checksum = 0;   // Checksum64 over the index bytes
  uint64_t file_size = 0;        // total bytes; rejects silent truncation
};
static_assert(sizeof(FileHeader) == 48);

/// One packed document. Lookup key is (content hash, attr hash); the attr
/// bytes inside the blob break ties on the (64-bit) attr-hash collision.
struct IndexEntry {
  uint64_t hash_lo = 0;
  uint64_t hash_hi = 0;
  uint64_t attr_hash = 0;  // util::HashBytes(project_attr); 0 when empty
  uint64_t offset = 0;     // absolute file offset of the DocHeader
  uint64_t size = 0;       // blob bytes including the header
};
static_assert(sizeof(IndexEntry) == 40);

struct DocHeader {
  uint32_t magic = kDocMagic;
  uint32_t num_nodes = 0;
  uint32_t num_labels = 0;
  uint32_t words_per_set = 0;     // (num_nodes + 63) / 64
  uint64_t hash_lo = 0;           // content hash (== index entry)
  uint64_t hash_hi = 0;
  uint64_t payload_checksum = 0;  // Checksum64 over blob bytes after header
  uint32_t off_nodes = 0;         // section offsets, relative to DocHeader
  uint32_t off_labels = 0;
  uint32_t off_texts = 0;         // 0 = no text section
  uint32_t off_edb = 0;
  uint32_t off_attr = 0;
  uint32_t attr_len = 0;
  uint32_t blob_size = 0;         // total blob bytes including the header
  uint32_t reserved = 0;
};
static_assert(sizeof(DocHeader) == 72);

/// Guards the reader against a file written by a build whose struct layout
/// (or format revision) differs: mixed into the file header at save time,
/// checked at open. FNV-style fold of the struct sizes plus a salt bumped on
/// any incompatible format change that keeps kFormatVersion.
inline constexpr uint32_t kLayoutSalt = 2;  // v1 layout, rev 2
inline constexpr uint32_t kLayoutChecksum =
    (((kLayoutSalt * 16777619u ^ static_cast<uint32_t>(sizeof(FileHeader))) *
          16777619u ^
      static_cast<uint32_t>(sizeof(IndexEntry))) *
         16777619u ^
     static_cast<uint32_t>(sizeof(DocHeader))) *
    16777619u;

/// FNV-1a over arbitrary bytes — the payload/index checksums. (Integrity
/// against storage rot and truncation, not an authenticity mechanism.)
inline uint64_t Checksum64(const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// Rounds a size/offset up to the section alignment (8 bytes — the widest
/// array element in any section is uint64).
inline constexpr uint64_t AlignUp8(uint64_t v) { return (v + 7) & ~uint64_t{7}; }

}  // namespace mdatalog::store
