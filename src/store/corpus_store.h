#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/core/database.h"
#include "src/store/format.h"
#include "src/tree/tree.h"
#include "src/util/hash.h"
#include "src/util/result.h"

/// \file corpus_store.h
/// Zero-copy corpus snapshots: parse once, serve forever.
///
/// A wrapper fleet evaluates fixed programs over a mostly-stable corpus of
/// pages. Parsing HTML dominates document preparation cost, yet the parse
/// result is a pure function of (page bytes, projection attribute) — so this
/// subsystem snapshots the *prepared* form to disk once and maps it back
/// read-only: the SoA tree columns (tree.h) land in the file byte-for-byte,
/// and the unary EDB relations of the τ_ur schema are precomputed as dense
/// bit-arrays. Re-opening a corpus costs one mmap; serving a document out of
/// it costs a header validation plus a checksum pass — no parsing, no node
/// scans, no per-node allocations. See format.h for the layout and README.md
/// for the design rationale.
///
/// Typical flow:
///
///   CorpusStore::Builder b;                      // offline / corpus_pack
///   b.AddHtml(page_bytes, "class");
///   b.Save("corpus.mdcs");
///   ...
///   auto store = CorpusStore::Open("corpus.mdcs");   // serving process
///   auto doc = (*store)->Find(HashBytes128(page_bytes), "class");
///   tree::Tree t = doc->MakeTree();              // zero-copy columns
///   core::TreeDatabase edb(t, &doc->edb);        // bit-array EDB loads
///
/// The runtime wires this under its DocumentCache as the second-level cache
/// (miss → store lookup → only then parse), so warm processes serve entirely
/// out of shared, kernel-evictable file pages.

namespace mdatalog::store {

/// One packed document, viewed in place. Plain pointers into the store's
/// mapping: valid only while the CorpusStore that returned it is alive (the
/// runtime's CachedDocument keeps a shared_ptr to the store for exactly this
/// reason).
struct FrozenDocument {
  util::Hash128 content_hash;
  /// Attribute projection the document was prepared under ("" = raw tree).
  std::string_view project_attr;
  /// Zero-copy node columns + texts.
  tree::Tree::FrozenView view;
  /// Packed unary EDB bit-arrays (root/leaf/lastsibling/firstsibling +
  /// per-label sets) for core::TreeDatabase's bulk-load path.
  core::FrozenUnaryEdb edb;
  /// Interned alphabet: (num_labels+1) prefix offsets + concatenated bytes.
  const uint32_t* label_offsets = nullptr;
  const char* label_base = nullptr;
  int32_t num_labels = 0;

  std::string_view label(int32_t id) const {
    return std::string_view(label_base + label_offsets[id],
                            label_offsets[id + 1] - label_offsets[id]);
  }

  /// A Tree over the mapped columns. Only the (small) label alphabet is
  /// rebuilt on the heap; nodes and texts are read in place.
  tree::Tree MakeTree() const;
};

/// An immutable, content-addressed collection of prepared documents, backed
/// by one mmap'd file.
///
/// Thread safety: Open() returns a fully-validated immutable object; Find()
/// and Get() are const and touch only the read-only mapping, so any number
/// of threads may serve from one store concurrently.
class CorpusStore {
 public:
  /// Accumulates documents in memory, then writes one store file.
  class Builder {
   public:
    /// Parses `html` exactly as the serving runtime would (including the
    /// optional attribute projection, Remark 2.2) and packs the result,
    /// keyed by HashBytes128(html). Re-adding the same (content, attr)
    /// replaces the earlier copy.
    util::Status AddHtml(std::string_view html,
                         const std::string& project_attr);
    /// Packs an already-built tree under an explicit content hash — for
    /// corpora whose documents do not come from the bundled HTML parser.
    util::Status AddTree(const tree::Tree& t, const util::Hash128& content_hash,
                         const std::string& project_attr);

    int64_t num_documents() const {
      return static_cast<int64_t>(docs_.size());
    }
    /// Total packed payload bytes so far (excluding file header/index).
    int64_t packed_bytes() const { return packed_bytes_; }

    /// Writes the store file. The builder remains usable (add more, save
    /// elsewhere).
    util::Status Save(const std::string& path) const;

   private:
    struct PackedDoc {
      util::Hash128 hash;
      uint64_t attr_hash = 0;
      std::string attr;  // exact bytes, for dedup beyond the 64-bit hash
      std::string blob;
    };
    std::vector<PackedDoc> docs_;
    std::unordered_map<uint64_t, std::vector<size_t>> by_key_;  // dedup
    int64_t packed_bytes_ = 0;
  };

  /// Maps `path` read-only and validates the header, index and bounds.
  /// Typed failures: InvalidArgument (not a store file / unreadable),
  /// FailedPrecondition (version, endianness or struct-layout mismatch —
  /// a rebuild is required, the bytes are fine), DataLoss (truncated or
  /// checksum-corrupt — the bytes are not fine).
  static util::Result<std::shared_ptr<const CorpusStore>> Open(
      const std::string& path);

  ~CorpusStore();
  CorpusStore(const CorpusStore&) = delete;
  CorpusStore& operator=(const CorpusStore&) = delete;

  /// Number of packed documents.
  int64_t size() const { return static_cast<int64_t>(index_.size()); }
  /// Bytes mapped (the whole file).
  int64_t mapped_bytes() const { return static_cast<int64_t>(size_); }
  const std::string& path() const { return path_; }

  /// Document by (content hash, projection attribute). NotFound when the
  /// corpus has no such document; DataLoss when it does but the blob fails
  /// validation (bit rot — the caller should fall back to parsing).
  util::Result<FrozenDocument> Find(const util::Hash128& content_hash,
                                    std::string_view project_attr) const;
  /// i-th document, in file order (0 <= i < size()).
  util::Result<FrozenDocument> Get(int64_t i) const;

 private:
  CorpusStore() = default;
  /// Validates the blob behind `e` and builds the in-place view.
  util::Result<FrozenDocument> Materialize(const IndexEntry& e) const;

  std::string path_;
  const unsigned char* data_ = nullptr;
  size_t size_ = 0;
  bool mmapped_ = false;
  std::vector<unsigned char> fallback_;  // used when mmap is unavailable
  std::vector<IndexEntry> index_;
  std::unordered_map<uint64_t, std::vector<size_t>> by_key_;
};

/// Packs one document into a standalone blob (DocHeader + sections). Exposed
/// for tests; Builder and the store file format wrap this.
std::string PackDocument(const tree::Tree& t, const util::Hash128& hash,
                         std::string_view project_attr);

/// The dedup/lookup key both Builder and CorpusStore hash by.
uint64_t DocKey64(const util::Hash128& content_hash, uint64_t attr_hash);

}  // namespace mdatalog::store
