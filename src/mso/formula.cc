#include "src/mso/formula.h"

#include <cctype>
#include <functional>

#include "src/util/check.h"

namespace mdatalog::mso {

namespace {

FormulaPtr MakeNode(Formula::Kind kind, std::string name, std::string var1,
                    std::string var2, std::vector<FormulaPtr> children) {
  auto f = std::make_shared<Formula>();
  f->kind = kind;
  f->name = std::move(name);
  f->var1 = std::move(var1);
  f->var2 = std::move(var2);
  f->children = std::move(children);
  return f;
}

bool IsSoName(const std::string& v) {
  return !v.empty() && std::isupper(static_cast<unsigned char>(v[0]));
}

}  // namespace

FormulaPtr Label(const std::string& label, const std::string& x) {
  return MakeNode(Formula::Kind::kLabel, label, x, "", {});
}
FormulaPtr Root(const std::string& x) {
  return MakeNode(Formula::Kind::kRoot, "", x, "", {});
}
FormulaPtr Leaf(const std::string& x) {
  return MakeNode(Formula::Kind::kLeaf, "", x, "", {});
}
FormulaPtr LastSibling(const std::string& x) {
  return MakeNode(Formula::Kind::kLastSibling, "", x, "", {});
}
FormulaPtr FirstChild(const std::string& x, const std::string& y) {
  return MakeNode(Formula::Kind::kFirstChild, "", x, y, {});
}
FormulaPtr NextSibling(const std::string& x, const std::string& y) {
  return MakeNode(Formula::Kind::kNextSibling, "", x, y, {});
}
FormulaPtr Eq(const std::string& x, const std::string& y) {
  return MakeNode(Formula::Kind::kEq, "", x, y, {});
}
FormulaPtr In(const std::string& x, const std::string& big_x) {
  return MakeNode(Formula::Kind::kIn, "", x, big_x, {});
}
FormulaPtr Not(FormulaPtr f) {
  return MakeNode(Formula::Kind::kNot, "", "", "", {std::move(f)});
}
FormulaPtr And(std::vector<FormulaPtr> fs) {
  MD_CHECK(!fs.empty());
  if (fs.size() == 1) return fs[0];
  return MakeNode(Formula::Kind::kAnd, "", "", "", std::move(fs));
}
FormulaPtr Or(std::vector<FormulaPtr> fs) {
  MD_CHECK(!fs.empty());
  if (fs.size() == 1) return fs[0];
  return MakeNode(Formula::Kind::kOr, "", "", "", std::move(fs));
}
FormulaPtr Implies(FormulaPtr a, FormulaPtr b) {
  return MakeNode(Formula::Kind::kImplies, "", "", "",
                  {std::move(a), std::move(b)});
}
FormulaPtr ExistsFo(const std::string& x, FormulaPtr body) {
  MD_CHECK(!IsSoName(x));
  return MakeNode(Formula::Kind::kExistsFo, x, "", "", {std::move(body)});
}
FormulaPtr ForallFo(const std::string& x, FormulaPtr body) {
  MD_CHECK(!IsSoName(x));
  return MakeNode(Formula::Kind::kForallFo, x, "", "", {std::move(body)});
}
FormulaPtr ExistsSo(const std::string& big_x, FormulaPtr body) {
  MD_CHECK(IsSoName(big_x));
  return MakeNode(Formula::Kind::kExistsSo, big_x, "", "", {std::move(body)});
}
FormulaPtr ForallSo(const std::string& big_x, FormulaPtr body) {
  MD_CHECK(IsSoName(big_x));
  return MakeNode(Formula::Kind::kForallSo, big_x, "", "", {std::move(body)});
}

// --- parser -----------------------------------------------------------------

namespace {

class FormulaParser {
 public:
  explicit FormulaParser(std::string_view text) : text_(text) {}

  util::Result<FormulaPtr> Parse() {
    auto f = ParseImplies();
    if (!f.ok()) return f;
    Skip();
    if (pos_ != text_.size()) {
      return util::Status::InvalidArgument(
          "trailing input in MSO formula at position " + std::to_string(pos_));
    }
    return f;
  }

 private:
  util::Result<FormulaPtr> ParseImplies() {
    auto lhs = ParseOr();
    if (!lhs.ok()) return lhs;
    Skip();
    if (Consume("->")) {
      auto rhs = ParseImplies();  // right associative
      if (!rhs.ok()) return rhs;
      return Implies(*lhs, *rhs);
    }
    return lhs;
  }

  util::Result<FormulaPtr> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    std::vector<FormulaPtr> parts = {*lhs};
    Skip();
    while (ConsumeNotArrow("|")) {
      auto next = ParseAnd();
      if (!next.ok()) return next;
      parts.push_back(*next);
      Skip();
    }
    return Or(std::move(parts));
  }

  util::Result<FormulaPtr> ParseAnd() {
    auto lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    std::vector<FormulaPtr> parts = {*lhs};
    Skip();
    while (Consume("&")) {
      auto next = ParseUnary();
      if (!next.ok()) return next;
      parts.push_back(*next);
      Skip();
    }
    return And(std::move(parts));
  }

  util::Result<FormulaPtr> ParseUnary() {
    Skip();
    if (Consume("~")) {
      auto body = ParseUnary();
      if (!body.ok()) return body;
      return Not(*body);
    }
    if (Consume("(")) {
      auto inner = ParseImplies();
      if (!inner.ok()) return inner;
      Skip();
      if (!Consume(")")) return util::Status::InvalidArgument("expected ')'");
      return inner;
    }
    // Quantifiers and atoms both start with an identifier.
    std::string word;
    MD_RETURN_NOT_OK(ParseIdent(&word));
    if (word == "exists" || word == "forall") {
      std::string var;
      MD_RETURN_NOT_OK(ParseIdent(&var));
      Skip();
      if (!Consume(".")) {
        return util::Status::InvalidArgument("expected '.' after quantifier");
      }
      auto body = ParseImplies();
      if (!body.ok()) return body;
      bool so = IsSoName(var);
      if (word == "exists") {
        return so ? ExistsSo(var, *body) : ExistsFo(var, *body);
      }
      return so ? ForallSo(var, *body) : ForallFo(var, *body);
    }
    // Atom: pred(args) or variable equality "x = y".
    Skip();
    if (Consume("(")) {
      std::vector<std::string> args;
      while (true) {
        std::string arg;
        MD_RETURN_NOT_OK(ParseIdent(&arg));
        args.push_back(arg);
        Skip();
        if (Consume(",")) continue;
        if (Consume(")")) break;
        return util::Status::InvalidArgument("expected ',' or ')'");
      }
      return MakeAtom(word, args);
    }
    if (Consume("=")) {
      std::string rhs;
      MD_RETURN_NOT_OK(ParseIdent(&rhs));
      return Eq(word, rhs);
    }
    return util::Status::InvalidArgument("expected atom at '" + word + "'");
  }

  util::Result<FormulaPtr> MakeAtom(const std::string& pred,
                                    const std::vector<std::string>& args) {
    auto need = [&](size_t n) {
      return args.size() == n
                 ? util::Status::OK()
                 : util::Status::InvalidArgument("atom '" + pred +
                                                 "' has wrong arity");
    };
    if (pred == "root") {
      MD_RETURN_NOT_OK(need(1));
      return Root(args[0]);
    }
    if (pred == "leaf") {
      MD_RETURN_NOT_OK(need(1));
      return Leaf(args[0]);
    }
    if (pred == "lastsibling") {
      MD_RETURN_NOT_OK(need(1));
      return LastSibling(args[0]);
    }
    if (pred == "firstchild") {
      MD_RETURN_NOT_OK(need(2));
      return FirstChild(args[0], args[1]);
    }
    if (pred == "nextsibling") {
      MD_RETURN_NOT_OK(need(2));
      return NextSibling(args[0], args[1]);
    }
    if (pred == "in") {
      MD_RETURN_NOT_OK(need(2));
      if (!IsSoName(args[1])) {
        return util::Status::InvalidArgument(
            "second argument of in(·,·) must be a set variable");
      }
      return In(args[0], args[1]);
    }
    if (pred.rfind("label_", 0) == 0) {
      MD_RETURN_NOT_OK(need(1));
      return Label(pred.substr(6), args[0]);
    }
    return util::Status::InvalidArgument("unknown predicate '" + pred + "'");
  }

  util::Status ParseIdent(std::string* out) {
    Skip();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return util::Status::InvalidArgument("expected identifier at position " +
                                           std::to_string(start));
    }
    *out = std::string(text_.substr(start, pos_ - start));
    return util::Status::OK();
  }

  bool Consume(std::string_view lit) {
    Skip();
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  /// Consume `lit` only if it is not the prefix of "->" (for "|" vs "->").
  bool ConsumeNotArrow(std::string_view lit) { return Consume(lit); }

  void Skip() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

util::Result<FormulaPtr> ParseFormula(std::string_view text) {
  return FormulaParser(text).Parse();
}

std::string ToString(const FormulaPtr& f) {
  switch (f->kind) {
    case Formula::Kind::kLabel:
      return "label_" + f->name + "(" + f->var1 + ")";
    case Formula::Kind::kRoot:
      return "root(" + f->var1 + ")";
    case Formula::Kind::kLeaf:
      return "leaf(" + f->var1 + ")";
    case Formula::Kind::kLastSibling:
      return "lastsibling(" + f->var1 + ")";
    case Formula::Kind::kFirstChild:
      return "firstchild(" + f->var1 + ", " + f->var2 + ")";
    case Formula::Kind::kNextSibling:
      return "nextsibling(" + f->var1 + ", " + f->var2 + ")";
    case Formula::Kind::kEq:
      return f->var1 + " = " + f->var2;
    case Formula::Kind::kIn:
      return "in(" + f->var1 + ", " + f->var2 + ")";
    case Formula::Kind::kNot:
      return "~(" + ToString(f->children[0]) + ")";
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr: {
      std::string op = f->kind == Formula::Kind::kAnd ? " & " : " | ";
      std::string out = "(";
      for (size_t i = 0; i < f->children.size(); ++i) {
        if (i > 0) out += op;
        out += ToString(f->children[i]);
      }
      return out + ")";
    }
    case Formula::Kind::kImplies:
      return "(" + ToString(f->children[0]) + " -> " +
             ToString(f->children[1]) + ")";
    case Formula::Kind::kExistsFo:
    case Formula::Kind::kExistsSo:
      return "exists " + f->name + ". " + ToString(f->children[0]);
    case Formula::Kind::kForallFo:
    case Formula::Kind::kForallSo:
      return "forall " + f->name + ". " + ToString(f->children[0]);
  }
  return "?";
}

void FreeVariables(const FormulaPtr& f, std::set<std::string>* fo,
                   std::set<std::string>* so) {
  switch (f->kind) {
    case Formula::Kind::kEq:
      fo->insert(f->var1);
      fo->insert(f->var2);
      return;
    case Formula::Kind::kIn:
      fo->insert(f->var1);
      so->insert(f->var2);
      return;
    case Formula::Kind::kFirstChild:
    case Formula::Kind::kNextSibling:
      fo->insert(f->var1);
      fo->insert(f->var2);
      return;
    case Formula::Kind::kLabel:
    case Formula::Kind::kRoot:
    case Formula::Kind::kLeaf:
    case Formula::Kind::kLastSibling:
      fo->insert(f->var1);
      return;
    case Formula::Kind::kExistsFo:
    case Formula::Kind::kForallFo: {
      std::set<std::string> inner_fo, inner_so;
      FreeVariables(f->children[0], &inner_fo, &inner_so);
      inner_fo.erase(f->name);
      fo->insert(inner_fo.begin(), inner_fo.end());
      so->insert(inner_so.begin(), inner_so.end());
      return;
    }
    case Formula::Kind::kExistsSo:
    case Formula::Kind::kForallSo: {
      std::set<std::string> inner_fo, inner_so;
      FreeVariables(f->children[0], &inner_fo, &inner_so);
      inner_so.erase(f->name);
      fo->insert(inner_fo.begin(), inner_fo.end());
      so->insert(inner_so.begin(), inner_so.end());
      return;
    }
    default:
      for (const FormulaPtr& c : f->children) FreeVariables(c, fo, so);
  }
}

int32_t QuantifierRank(const FormulaPtr& f) {
  int32_t best = 0;
  for (const FormulaPtr& c : f->children) {
    best = std::max(best, QuantifierRank(c));
  }
  switch (f->kind) {
    case Formula::Kind::kExistsFo:
    case Formula::Kind::kForallFo:
    case Formula::Kind::kExistsSo:
    case Formula::Kind::kForallSo:
      return best + 1;
    default:
      return best;
  }
}

util::Result<bool> EvalFormulaReference(
    const tree::Tree& t, const FormulaPtr& f,
    const std::map<std::string, tree::NodeId>& fo,
    const std::map<std::string, std::set<tree::NodeId>>& so) {
  auto node_of = [&](const std::string& v) -> util::Result<tree::NodeId> {
    auto it = fo.find(v);
    if (it == fo.end()) {
      return util::Status::InvalidArgument("unbound node variable " + v);
    }
    return it->second;
  };
  switch (f->kind) {
    case Formula::Kind::kLabel: {
      MD_ASSIGN_OR_RETURN(tree::NodeId n, node_of(f->var1));
      return t.label_name(n) == f->name;
    }
    case Formula::Kind::kRoot: {
      MD_ASSIGN_OR_RETURN(tree::NodeId n, node_of(f->var1));
      return t.IsRoot(n);
    }
    case Formula::Kind::kLeaf: {
      MD_ASSIGN_OR_RETURN(tree::NodeId n, node_of(f->var1));
      return t.IsLeaf(n);
    }
    case Formula::Kind::kLastSibling: {
      MD_ASSIGN_OR_RETURN(tree::NodeId n, node_of(f->var1));
      return t.IsLastSibling(n);
    }
    case Formula::Kind::kFirstChild: {
      MD_ASSIGN_OR_RETURN(tree::NodeId a, node_of(f->var1));
      MD_ASSIGN_OR_RETURN(tree::NodeId b, node_of(f->var2));
      return t.first_child(a) == b;
    }
    case Formula::Kind::kNextSibling: {
      MD_ASSIGN_OR_RETURN(tree::NodeId a, node_of(f->var1));
      MD_ASSIGN_OR_RETURN(tree::NodeId b, node_of(f->var2));
      return t.next_sibling(a) == b;
    }
    case Formula::Kind::kEq: {
      MD_ASSIGN_OR_RETURN(tree::NodeId a, node_of(f->var1));
      MD_ASSIGN_OR_RETURN(tree::NodeId b, node_of(f->var2));
      return a == b;
    }
    case Formula::Kind::kIn: {
      MD_ASSIGN_OR_RETURN(tree::NodeId n, node_of(f->var1));
      auto it = so.find(f->var2);
      if (it == so.end()) {
        return util::Status::InvalidArgument("unbound set variable " +
                                             f->var2);
      }
      return it->second.count(n) > 0;
    }
    case Formula::Kind::kNot: {
      MD_ASSIGN_OR_RETURN(bool v, EvalFormulaReference(t, f->children[0], fo,
                                                       so));
      return !v;
    }
    case Formula::Kind::kAnd: {
      for (const FormulaPtr& c : f->children) {
        MD_ASSIGN_OR_RETURN(bool v, EvalFormulaReference(t, c, fo, so));
        if (!v) return false;
      }
      return true;
    }
    case Formula::Kind::kOr: {
      for (const FormulaPtr& c : f->children) {
        MD_ASSIGN_OR_RETURN(bool v, EvalFormulaReference(t, c, fo, so));
        if (v) return true;
      }
      return false;
    }
    case Formula::Kind::kImplies: {
      MD_ASSIGN_OR_RETURN(bool a, EvalFormulaReference(t, f->children[0], fo,
                                                       so));
      if (!a) return true;
      return EvalFormulaReference(t, f->children[1], fo, so);
    }
    case Formula::Kind::kExistsFo:
    case Formula::Kind::kForallFo: {
      bool exists = f->kind == Formula::Kind::kExistsFo;
      std::map<std::string, tree::NodeId> fo2 = fo;
      for (tree::NodeId n = 0; n < t.size(); ++n) {
        fo2[f->name] = n;
        MD_ASSIGN_OR_RETURN(bool v,
                            EvalFormulaReference(t, f->children[0], fo2, so));
        if (exists && v) return true;
        if (!exists && !v) return false;
      }
      return !exists;
    }
    case Formula::Kind::kExistsSo:
    case Formula::Kind::kForallSo: {
      bool exists = f->kind == Formula::Kind::kExistsSo;
      if (t.size() > 20) {
        return util::Status::ResourceExhausted(
            "reference SO quantification over > 20 nodes");
      }
      std::map<std::string, std::set<tree::NodeId>> so2 = so;
      uint64_t limit = 1ULL << t.size();
      for (uint64_t mask = 0; mask < limit; ++mask) {
        std::set<tree::NodeId> subset;
        for (tree::NodeId n = 0; n < t.size(); ++n) {
          if (mask & (1ULL << n)) subset.insert(n);
        }
        so2[f->name] = std::move(subset);
        MD_ASSIGN_OR_RETURN(
            bool v, EvalFormulaReference(t, f->children[0], fo, so2));
        if (exists && v) return true;
        if (!exists && !v) return false;
      }
      return !exists;
    }
  }
  return util::Status::Internal("unreachable formula kind");
}

util::Result<std::vector<tree::NodeId>> EvalUnaryQueryReference(
    const tree::Tree& t, const FormulaPtr& f, const std::string& x) {
  std::vector<tree::NodeId> out;
  for (tree::NodeId n = 0; n < t.size(); ++n) {
    MD_ASSIGN_OR_RETURN(bool v,
                        EvalFormulaReference(t, f, {{x, n}}, {}));
    if (v) out.push_back(n);
  }
  return out;
}

}  // namespace mdatalog::mso
