#include "src/mso/to_datalog.h"

#include "src/core/database.h"
#include "src/core/validate.h"

namespace mdatalog::mso {

util::Result<core::Program> BtaToDatalog(
    const Bta& a, const std::vector<std::string>& alphabet) {
  using core::Atom;
  using core::MakeAtom;
  using core::MakeRule;
  using core::PredId;
  using core::Term;

  if (a.num_bits != 1) {
    return util::Status::InvalidArgument(
        "BtaToDatalog requires a 1-bit (unary query) automaton");
  }
  if (static_cast<int32_t>(alphabet.size()) != a.num_classes) {
    return util::Status::InvalidArgument(
        "alphabet size does not match the automaton's label classes");
  }

  core::Program program;
  auto& preds = program.preds();
  PredId root = preds.MustIntern("root", 1);
  PredId leaf = preds.MustIntern("leaf", 1);
  PredId lastsibling = preds.MustIntern("lastsibling", 1);
  PredId firstchild = preds.MustIntern("firstchild", 2);
  PredId nextsibling = preds.MustIntern("nextsibling", 2);
  PredId nons = preds.MustIntern("nons", 1);
  PredId query = preds.MustIntern("query", 1);
  auto up = [&](BtaState q) {
    return preds.MustIntern("up_" + std::to_string(q), 1);
  };
  auto ctx = [&](BtaState q) {
    return preds.MustIntern("ctx_" + std::to_string(q), 1);
  };
  auto label = [&](int32_t cls) {
    return preds.MustIntern(core::LabelPredName(alphabet[cls]), 1);
  };

  Term x = Term::Var(0), y1 = Term::Var(1), y2 = Term::Var(2);

  // nons(x): x has no next sibling (lastsibling or root).
  program.AddRule(
      MakeRule(MakeAtom(nons, {x}), {MakeAtom(lastsibling, {x})}, {"x"}));
  program.AddRule(MakeRule(MakeAtom(nons, {x}), {MakeAtom(root, {x})}, {"x"}));

  // ctx seeds: final states accept at the root.
  for (BtaState q = 0; q < a.num_states; ++q) {
    if (a.finals[q]) {
      program.AddRule(
          MakeRule(MakeAtom(ctx(q), {x}), {MakeAtom(root, {x})}, {"x"}));
    }
  }

  for (const auto& [key, q] : a.delta) {
    const auto& [sym, l, r] = key;
    int32_t cls = a.ClassOfSym(sym);
    bool marked = a.MaskOfSym(sym) != 0;

    // Body fragments for "left subtree is in state l" / "right is in r".
    auto left_atoms = [&](std::vector<Atom>* body) {
      if (l == kAbsent) {
        body->push_back(MakeAtom(leaf, {x}));
      } else {
        body->push_back(MakeAtom(firstchild, {x, y1}));
        body->push_back(MakeAtom(up(l), {y1}));
      }
    };
    auto right_atoms = [&](std::vector<Atom>* body) {
      if (r == kAbsent) {
        body->push_back(MakeAtom(nons, {x}));
      } else {
        body->push_back(MakeAtom(nextsibling, {x, y2}));
        body->push_back(MakeAtom(up(r), {y2}));
      }
    };

    if (!marked) {
      // up_q(x) ← label(x), <left>, <right>.
      std::vector<Atom> body = {MakeAtom(label(cls), {x})};
      left_atoms(&body);
      right_atoms(&body);
      program.AddRule(MakeRule(MakeAtom(up(q), {x}), std::move(body),
                               {"x", "y1", "y2"}));
      // ctx propagation into the child slots.
      if (l != kAbsent) {
        std::vector<Atom> cbody = {MakeAtom(ctx(q), {x}),
                                   MakeAtom(label(cls), {x}),
                                   MakeAtom(firstchild, {x, y1})};
        right_atoms(&cbody);
        program.AddRule(MakeRule(MakeAtom(ctx(l), {y1}), std::move(cbody),
                                 {"x", "y1", "y2"}));
      }
      if (r != kAbsent) {
        std::vector<Atom> cbody = {MakeAtom(ctx(q), {x}),
                                   MakeAtom(label(cls), {x}),
                                   MakeAtom(nextsibling, {x, y2})};
        left_atoms(&cbody);
        program.AddRule(MakeRule(MakeAtom(ctx(r), {y2}), std::move(cbody),
                                 {"x", "y1", "y2"}));
      }
    } else {
      // query(x) ← ctx_q(x), label(x), <left>, <right>.
      std::vector<Atom> body = {MakeAtom(ctx(q), {x}),
                                MakeAtom(label(cls), {x})};
      left_atoms(&body);
      right_atoms(&body);
      program.AddRule(MakeRule(MakeAtom(query, {x}), std::move(body),
                               {"x", "y1", "y2"}));
    }
  }

  program.set_query_pred(query);
  core::PruneUnderivableRules(&program);
  return program;
}

}  // namespace mdatalog::mso
