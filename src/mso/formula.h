#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/tree/tree.h"
#include "src/util/result.h"

/// \file formula.h
/// Monadic second-order logic over unranked trees (Section 2): node
/// variables (lowercase), set variables (capitalized), the τ_ur relation
/// symbols, equality, membership, boolean connectives and both kinds of
/// quantifiers.
///
/// The reference evaluator implements the satisfaction relation literally by
/// enumerating assignments (exponential — for cross-checking the automaton
/// compilation on small trees only).

namespace mdatalog::mso {

struct Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

struct Formula {
  enum class Kind {
    // Atoms. `var1`/`var2` hold variable names; `name` holds the label.
    kLabel,        ///< label_<name>(var1)
    kRoot,         ///< root(var1)
    kLeaf,         ///< leaf(var1)
    kLastSibling,  ///< lastsibling(var1)
    kFirstChild,   ///< firstchild(var1, var2)
    kNextSibling,  ///< nextsibling(var1, var2)
    kEq,           ///< var1 = var2          (both first-order)
    kIn,           ///< var1 ∈ var2          (var2 second-order)
    // Connectives (children).
    kNot,
    kAnd,
    kOr,
    kImplies,
    // Quantifiers: bind `name`, child = body. First-order names must start
    // with a lowercase letter, second-order with an uppercase letter.
    kExistsFo,
    kForallFo,
    kExistsSo,
    kForallSo,
  };

  Kind kind;
  std::string name;
  std::string var1, var2;
  std::vector<FormulaPtr> children;
};

// Factories.
FormulaPtr Label(const std::string& label, const std::string& x);
FormulaPtr Root(const std::string& x);
FormulaPtr Leaf(const std::string& x);
FormulaPtr LastSibling(const std::string& x);
FormulaPtr FirstChild(const std::string& x, const std::string& y);
FormulaPtr NextSibling(const std::string& x, const std::string& y);
FormulaPtr Eq(const std::string& x, const std::string& y);
FormulaPtr In(const std::string& x, const std::string& big_x);
FormulaPtr Not(FormulaPtr f);
FormulaPtr And(std::vector<FormulaPtr> fs);
FormulaPtr Or(std::vector<FormulaPtr> fs);
FormulaPtr Implies(FormulaPtr a, FormulaPtr b);
FormulaPtr ExistsFo(const std::string& x, FormulaPtr body);
FormulaPtr ForallFo(const std::string& x, FormulaPtr body);
FormulaPtr ExistsSo(const std::string& big_x, FormulaPtr body);
FormulaPtr ForallSo(const std::string& big_x, FormulaPtr body);

/// Parses MSO syntax:
///
///   exists x. forall Y. (in(x, Y) -> label_a(x))
///   root(x) & ~leaf(x) | firstchild(x, y)
///   x = y
///
/// Precedence: ~ binds tightest, then &, then |, then ->; quantifier bodies
/// extend as far right as possible. First-order variables are lowercase,
/// set variables start with an uppercase letter.
util::Result<FormulaPtr> ParseFormula(std::string_view text);

std::string ToString(const FormulaPtr& f);

/// Free first-order / second-order variables.
void FreeVariables(const FormulaPtr& f, std::set<std::string>* fo,
                   std::set<std::string>* so);

/// The quantifier rank (maximum quantifier nesting depth, Section 2).
int32_t QuantifierRank(const FormulaPtr& f);

/// Reference model checking by assignment enumeration. `fo` maps node
/// variables to nodes, `so` maps set variables to node sets. Fails on
/// unbound variables. Exponential in the quantifier count — tests only.
util::Result<bool> EvalFormulaReference(
    const tree::Tree& t, const FormulaPtr& f,
    const std::map<std::string, tree::NodeId>& fo,
    const std::map<std::string, std::set<tree::NodeId>>& so);

/// All nodes v such that t ⊨ f(x := v) — the unary query semantics, by the
/// reference evaluator.
util::Result<std::vector<tree::NodeId>> EvalUnaryQueryReference(
    const tree::Tree& t, const FormulaPtr& f, const std::string& x);

}  // namespace mdatalog::mso
