#pragma once

#include <map>
#include <tuple>
#include <vector>

#include "src/tree/tree.h"
#include "src/util/result.h"

/// \file automaton.h
/// Deterministic bottom-up tree automata over the firstchild/nextsibling
/// binary encoding (Figure 1) — the computational backbone behind the
/// Thatcher–Wright/Doner equivalence the paper builds on (Proposition 2.1)
/// and our realization of Theorem 4.4.
///
/// A symbol is a pair (label class, mark bitmask): label classes index a
/// fixed finite alphabet, mark bits encode assignments to free MSO variables
/// (one bit per variable). Every node of the binary encoding has an optional
/// left child (its first child in the unranked tree) and an optional right
/// child (its next sibling); transitions are stored for all four shapes with
/// the convention that an absent child is state -1.
///
/// All construction algorithms keep automata *complete over their reachable
/// states*: every (symbol, state/absent, state/absent) combination of
/// discovered states has a transition, so complementation is finals-flipping
/// and every tree has exactly one run.

namespace mdatalog::mso {

using BtaState = int32_t;
inline constexpr BtaState kAbsent = -1;

struct Bta {
  int32_t num_states = 0;
  std::vector<bool> finals;
  int32_t num_classes = 1;
  int32_t num_bits = 0;

  /// (symbol, left state or kAbsent, right state or kAbsent) → state.
  std::map<std::tuple<int32_t, BtaState, BtaState>, BtaState> delta;

  int32_t NumSymbols() const { return num_classes << num_bits; }
  int32_t Sym(int32_t label_class, uint32_t mask) const {
    return static_cast<int32_t>(mask) * num_classes + label_class;
  }
  int32_t ClassOfSym(int32_t sym) const { return sym % num_classes; }
  uint32_t MaskOfSym(int32_t sym) const {
    return static_cast<uint32_t>(sym / num_classes);
  }

  BtaState Step(int32_t sym, BtaState l, BtaState r) const;
};

/// a ∧ b (product). Same classes/bits required.
util::Result<Bta> Intersect(const Bta& a, const Bta& b, int64_t max_states);
/// a ∨ b (product).
util::Result<Bta> UnionOp(const Bta& a, const Bta& b, int64_t max_states);
/// ¬a (finals flip; a must be complete over reachable states — invariant).
Bta Complement(const Bta& a);
/// ∃-projection of the *last* mark bit: erase the bit, determinize the
/// resulting nondeterministic automaton by subset construction.
util::Result<Bta> ProjectLastBit(const Bta& a, int64_t max_states);
/// The automaton over `num_classes`/`num_bits` accepting exactly the marked
/// trees where bit `bit` marks exactly one node (any labels, other bits
/// free) — the singleton enforcement for first-order variables.
Bta SingletonBit(int32_t num_classes, int32_t num_bits, int32_t bit);
/// Reachable-state pruning followed by Moore partition refinement.
Bta Minimize(const Bta& a);

/// Maps each node to its label class under `alphabet` (error on labels
/// outside the alphabet — Remark 2.2 finite-alphabet discipline).
util::Result<std::vector<int32_t>> ClassOfNodes(
    const tree::Tree& t, const std::vector<std::string>& alphabet);

/// Runs a 0-bit automaton on the tree (sentence acceptance).
util::Result<bool> BtaAcceptsTree(const Bta& a, const tree::Tree& t,
                                  const std::vector<int32_t>& class_of);

/// Unary-query evaluation for a 1-bit automaton: all nodes v such that the
/// tree with exactly v marked is accepted. Linear two-pass algorithm
/// (bottom-up unmarked states, top-down accepting-context sets) — the
/// automaton-side counterpart of the Θ↑/Θ↓ program of Theorem 4.4's proof.
util::Result<std::vector<tree::NodeId>> BtaUnaryQuery(
    const Bta& a, const tree::Tree& t, const std::vector<int32_t>& class_of);

}  // namespace mdatalog::mso
