#include "src/mso/compile.h"

#include <algorithm>
#include <cctype>
#include <functional>

#include "src/util/check.h"

namespace mdatalog::mso {

namespace {

/// Builds a small complete automaton from a per-shape transition function
/// over explicit states 0..num_states-1.
Bta BuildSmall(int32_t num_classes, int32_t num_bits, int32_t num_states,
               std::vector<bool> finals,
               const std::function<BtaState(int32_t cls, uint32_t mask,
                                            BtaState l, BtaState r)>& step) {
  Bta out;
  out.num_classes = num_classes;
  out.num_bits = num_bits;
  out.num_states = num_states;
  out.finals = std::move(finals);
  for (int32_t cls = 0; cls < num_classes; ++cls) {
    for (uint32_t mask = 0; mask < (1u << num_bits); ++mask) {
      int32_t sym = out.Sym(cls, mask);
      for (BtaState l = kAbsent; l < num_states; ++l) {
        for (BtaState r = kAbsent; r < num_states; ++r) {
          out.delta[{sym, l, r}] = step(cls, mask, l, r);
        }
      }
    }
  }
  return out;
}

/// Unary atoms over variable bit `bit`: kinds label/root/leaf/lastsibling.
/// The automata enforce that the bit marks exactly one node (strictness).
Bta UnaryAtom(Formula::Kind kind, int32_t target_class, int32_t num_classes,
              int32_t num_bits, int32_t bit) {
  switch (kind) {
    case Formula::Kind::kLabel:
    case Formula::Kind::kLeaf: {
      // 0 = no x; 1 = x found, condition ok; 2 = sink.
      auto step = [=](int32_t cls, uint32_t mask, BtaState l,
                      BtaState r) -> BtaState {
        if (l == 2 || r == 2) return 2;
        int below = (l == 1 ? 1 : 0) + (r == 1 ? 1 : 0);
        bool here = (mask >> bit) & 1;
        if (here) {
          if (below > 0) return 2;
          if (kind == Formula::Kind::kLabel) {
            return cls == target_class ? 1 : 2;
          }
          // leaf(x): no first child = no left child in the encoding.
          return l == kAbsent ? 1 : 2;
        }
        if (below == 2) return 2;
        return below == 1 ? 1 : 0;
      };
      return BuildSmall(num_classes, num_bits, 3, {false, true, false}, step);
    }
    case Formula::Kind::kRoot: {
      // 0 = no x; 1 = x at the current subtree root; 2 = x strictly below;
      // 3 = sink.
      auto step = [=](int32_t, uint32_t mask, BtaState l,
                      BtaState r) -> BtaState {
        if (l == 3 || r == 3) return 3;
        int below = ((l == 1 || l == 2) ? 1 : 0) + ((r == 1 || r == 2) ? 1 : 0);
        bool here = (mask >> bit) & 1;
        if (here) return below > 0 ? 3 : 1;
        if (below == 2) return 3;
        return below == 1 ? 2 : 0;
      };
      return BuildSmall(num_classes, num_bits, 4, {false, true, false, false},
                        step);
    }
    case Formula::Kind::kLastSibling: {
      // 0 = no x; 1 = x here with no next sibling (pending: must not be the
      // global root); 2 = confirmed (x was consumed as somebody's child);
      // 3 = sink. The root is never a last sibling (Section 2).
      auto step = [=](int32_t, uint32_t mask, BtaState l,
                      BtaState r) -> BtaState {
        if (l == 3 || r == 3) return 3;
        int below = ((l == 1 || l == 2) ? 1 : 0) + ((r == 1 || r == 2) ? 1 : 0);
        bool here = (mask >> bit) & 1;
        if (here) {
          if (below > 0) return 3;
          return r == kAbsent ? 1 : 3;  // needs no next sibling
        }
        if (below == 2) return 3;
        if (below == 1) return 2;  // x is below some node → x has a parent
        return 0;
      };
      return BuildSmall(num_classes, num_bits, 4, {false, false, true, false},
                        step);
    }
    default:
      MD_CHECK(false);
  }
  MD_CHECK(false);
  return {};
}

/// firstchild(x,y) / nextsibling(x,y): y must be the left / right child of x
/// in the binary encoding.
Bta EdgeAtom(bool left_child, int32_t num_classes, int32_t num_bits,
             int32_t bit_x, int32_t bit_y) {
  // 0 = none; 1 = y at the current subtree root; 2 = pair found; 3 = sink.
  auto step = [=](int32_t, uint32_t mask, BtaState l, BtaState r) -> BtaState {
    if (l == 3 || r == 3) return 3;
    bool here_x = (mask >> bit_x) & 1;
    bool here_y = (mask >> bit_y) & 1;
    if (here_x && here_y) return 3;  // x cannot be its own child/sibling
    if (here_y) {
      // No marks may exist below y.
      bool clean = (l == kAbsent || l == 0) && (r == kAbsent || r == 0);
      return clean ? 1 : 3;
    }
    if (here_x) {
      BtaState child = left_child ? l : r;
      BtaState other = left_child ? r : l;
      bool ok = child == 1 && (other == kAbsent || other == 0);
      return ok ? 2 : 3;
    }
    // Unmarked: a pending y whose binary parent is unmarked can never
    // satisfy the relation (binary parents are unique).
    if (l == 1 || r == 1) return 3;
    int done = (l == 2 ? 1 : 0) + (r == 2 ? 1 : 0);
    if (done == 2) return 3;
    return done == 1 ? 2 : 0;
  };
  return BuildSmall(num_classes, num_bits, 4, {false, false, true, false},
                    step);
}

/// x = y: both bits on the same single node.
Bta EqAtom(int32_t num_classes, int32_t num_bits, int32_t bit_x,
           int32_t bit_y) {
  auto step = [=](int32_t, uint32_t mask, BtaState l, BtaState r) -> BtaState {
    if (l == 2 || r == 2) return 2;
    bool here_x = (mask >> bit_x) & 1;
    bool here_y = (mask >> bit_y) & 1;
    int below = (l == 1 ? 1 : 0) + (r == 1 ? 1 : 0);
    if (here_x != here_y) return 2;
    if (here_x && here_y) return below > 0 ? 2 : 1;
    if (below == 2) return 2;
    return below == 1 ? 1 : 0;
  };
  return BuildSmall(num_classes, num_bits, 3, {false, true, false}, step);
}

/// in(x, X): the x-marked node also carries the X bit.
Bta InAtom(int32_t num_classes, int32_t num_bits, int32_t bit_x,
           int32_t bit_set) {
  auto step = [=](int32_t, uint32_t mask, BtaState l, BtaState r) -> BtaState {
    if (l == 2 || r == 2) return 2;
    bool here_x = (mask >> bit_x) & 1;
    bool here_set = (mask >> bit_set) & 1;
    int below = (l == 1 ? 1 : 0) + (r == 1 ? 1 : 0);
    if (here_x) {
      if (below > 0) return 2;
      return here_set ? 1 : 2;
    }
    if (below == 2) return 2;
    return below == 1 ? 1 : 0;
  };
  return BuildSmall(num_classes, num_bits, 3, {false, true, false}, step);
}

class Compiler {
 public:
  explicit Compiler(const MsoCompileOptions& options) : options_(options) {}

  util::Result<Bta> Compile(const FormulaPtr& f,
                            std::vector<std::string>& varlist) {
    int32_t classes = static_cast<int32_t>(options_.alphabet.size());
    int32_t bits = static_cast<int32_t>(varlist.size());
    auto bit_of = [&](const std::string& v) -> util::Result<int32_t> {
      auto it = std::find(varlist.begin(), varlist.end(), v);
      if (it == varlist.end()) {
        return util::Status::InvalidArgument("unbound variable '" + v + "'");
      }
      return static_cast<int32_t>(it - varlist.begin());
    };

    switch (f->kind) {
      case Formula::Kind::kLabel: {
        auto it = std::find(options_.alphabet.begin(),
                            options_.alphabet.end(), f->name);
        if (it == options_.alphabet.end()) {
          return util::Status::InvalidArgument(
              "label '" + f->name + "' missing from the compile alphabet");
        }
        MD_ASSIGN_OR_RETURN(int32_t bit, bit_of(f->var1));
        return UnaryAtom(f->kind,
                         static_cast<int32_t>(it - options_.alphabet.begin()),
                         classes, bits, bit);
      }
      case Formula::Kind::kRoot:
      case Formula::Kind::kLeaf:
      case Formula::Kind::kLastSibling: {
        MD_ASSIGN_OR_RETURN(int32_t bit, bit_of(f->var1));
        return UnaryAtom(f->kind, 0, classes, bits, bit);
      }
      case Formula::Kind::kFirstChild:
      case Formula::Kind::kNextSibling: {
        MD_ASSIGN_OR_RETURN(int32_t bx, bit_of(f->var1));
        MD_ASSIGN_OR_RETURN(int32_t by, bit_of(f->var2));
        if (bx == by) {
          return util::Status::InvalidArgument(
              "firstchild/nextsibling with identical variables");
        }
        return EdgeAtom(f->kind == Formula::Kind::kFirstChild, classes, bits,
                        bx, by);
      }
      case Formula::Kind::kEq: {
        MD_ASSIGN_OR_RETURN(int32_t bx, bit_of(f->var1));
        MD_ASSIGN_OR_RETURN(int32_t by, bit_of(f->var2));
        if (bx == by) {
          // x = x: equivalent to "x exists" — the singleton automaton.
          return SingletonBit(classes, bits, bx);
        }
        return EqAtom(classes, bits, bx, by);
      }
      case Formula::Kind::kIn: {
        MD_ASSIGN_OR_RETURN(int32_t bx, bit_of(f->var1));
        MD_ASSIGN_OR_RETURN(int32_t bs, bit_of(f->var2));
        return InAtom(classes, bits, bx, bs);
      }
      case Formula::Kind::kNot: {
        MD_ASSIGN_OR_RETURN(Bta inner, Compile(f->children[0], varlist));
        return Minimize(Complement(inner));
      }
      case Formula::Kind::kAnd:
      case Formula::Kind::kOr: {
        MD_ASSIGN_OR_RETURN(Bta acc, Compile(f->children[0], varlist));
        for (size_t i = 1; i < f->children.size(); ++i) {
          MD_ASSIGN_OR_RETURN(Bta next, Compile(f->children[i], varlist));
          auto combined = f->kind == Formula::Kind::kAnd
                              ? Intersect(acc, next, options_.max_states)
                              : UnionOp(acc, next, options_.max_states);
          if (!combined.ok()) return combined.status();
          acc = std::move(*combined);
        }
        return acc;
      }
      case Formula::Kind::kImplies: {
        MD_ASSIGN_OR_RETURN(Bta a, Compile(f->children[0], varlist));
        MD_ASSIGN_OR_RETURN(Bta b, Compile(f->children[1], varlist));
        return UnionOp(Minimize(Complement(a)), b, options_.max_states);
      }
      case Formula::Kind::kExistsFo:
      case Formula::Kind::kExistsSo:
      case Formula::Kind::kForallFo:
      case Formula::Kind::kForallSo: {
        bool forall = f->kind == Formula::Kind::kForallFo ||
                      f->kind == Formula::Kind::kForallSo;
        bool fo = f->kind == Formula::Kind::kExistsFo ||
                  f->kind == Formula::Kind::kForallFo;
        if (std::find(varlist.begin(), varlist.end(), f->name) !=
            varlist.end()) {
          return util::Status::Unimplemented(
              "variable shadowing ('" + f->name +
              "' is bound twice); rename the inner variable");
        }
        varlist.push_back(f->name);
        auto body = Compile(f->children[0], varlist);
        if (!body.ok()) {
          varlist.pop_back();
          return body.status();
        }
        Bta inner = std::move(*body);
        if (forall) inner = Complement(inner);  // ∀z φ = ¬∃z ¬φ
        if (fo) {
          auto with_singleton = Intersect(
              inner,
              SingletonBit(classes, static_cast<int32_t>(varlist.size()),
                           static_cast<int32_t>(varlist.size()) - 1),
              options_.max_states);
          varlist.pop_back();
          if (!with_singleton.ok()) return with_singleton.status();
          inner = std::move(*with_singleton);
        } else {
          varlist.pop_back();
        }
        auto projected = ProjectLastBit(inner, options_.max_states);
        if (!projected.ok()) return projected.status();
        if (forall) return Minimize(Complement(*projected));
        return projected;
      }
    }
    return util::Status::Internal("unreachable formula kind");
  }

 private:
  const MsoCompileOptions& options_;
};

util::Status CheckFreeVars(const FormulaPtr& f,
                           const std::set<std::string>& allowed_fo) {
  std::set<std::string> fo, so;
  FreeVariables(f, &fo, &so);
  if (!so.empty()) {
    return util::Status::InvalidArgument("free set variable '" + *so.begin() +
                                         "'");
  }
  for (const std::string& v : fo) {
    if (allowed_fo.count(v) == 0) {
      return util::Status::InvalidArgument("unexpected free variable '" + v +
                                           "'");
    }
  }
  return util::Status::OK();
}

}  // namespace

util::Result<Bta> CompileSentence(const FormulaPtr& f,
                                  const MsoCompileOptions& options) {
  MD_RETURN_NOT_OK(CheckFreeVars(f, {}));
  if (options.alphabet.empty()) {
    return util::Status::InvalidArgument("empty alphabet");
  }
  std::vector<std::string> varlist;
  return Compiler(options).Compile(f, varlist);
}

util::Result<Bta> CompileUnaryQuery(const FormulaPtr& f, const std::string& x,
                                    const MsoCompileOptions& options) {
  MD_RETURN_NOT_OK(CheckFreeVars(f, {x}));
  if (options.alphabet.empty()) {
    return util::Status::InvalidArgument("empty alphabet");
  }
  std::vector<std::string> varlist = {x};
  return Compiler(options).Compile(f, varlist);
}

}  // namespace mdatalog::mso
