#pragma once

#include <string>
#include <vector>

#include "src/core/ast.h"
#include "src/mso/automaton.h"
#include "src/util/result.h"

/// \file to_datalog.h
/// Corollary 4.17, constructively: every unary MSO query — once compiled to
/// a 1-bit deterministic tree automaton — becomes an equivalent monadic
/// datalog program over τ_ur.
///
/// The program mirrors the three-part structure of Theorem 4.4's proof:
///
///   up_q    — bottom-up subtree states (the Θ↑ types): one rule per
///             unmarked transition, in the four child shapes of the binary
///             encoding, using leaf / lastsibling∨root to detect absent
///             children;
///   ctx_q   — top-down accepting contexts (the Θ↓ types): seeded at the
///             root from the final states, propagated through each unmarked
///             transition to the first-child and next-sibling slots;
///   query   — the combine step: x is selected iff the transition on x's
///             *marked* symbol lands in an accepting context.
///
/// Output size is O(|δ|); the program is over τ_ur and evaluates with the
/// Theorem 4.2 grounded engine in O(|P|·|dom|).

namespace mdatalog::mso {

/// `a` must be a 1-bit automaton (CompileUnaryQuery output); `alphabet` maps
/// its label classes back to labels. Query predicate: "query".
util::Result<core::Program> BtaToDatalog(const Bta& a,
                                         const std::vector<std::string>& alphabet);

}  // namespace mdatalog::mso
