#pragma once

#include <string>
#include <vector>

#include "src/mso/automaton.h"
#include "src/mso/formula.h"
#include "src/util/result.h"

/// \file compile.h
/// MSO → tree automata, by structural induction (the classical
/// Thatcher–Wright construction over the binary encoding):
///
///   atoms       → small fixed automata that also enforce the singleton
///                 discipline of their own first-order variables,
///   ¬           → complement (automata are complete over reachable states),
///   ∧ / ∨       → products,
///   ∃x (FO)     → conjoin the singleton automaton for x's mark bit, erase
///                 the bit, determinize by subset construction,
///   ∃X (SO)     → erase the bit, determinize,
///   ∀           → ¬∃¬.
///
/// The subset construction is where the nonelementary worst case of MSO
/// lives (Section 1, [Frick and Grohe 2002]); `max_states` turns the blowup
/// into a clean ResourceExhausted. Minimization after each operation keeps
/// realistic formulas small.
///
/// This module, combined with BtaUnaryQuery and BtaToDatalog, is this
/// library's constructive realization of Theorem 4.4 / Corollary 4.17 — the
/// paper's ≡ᵏ-type argument enumerates witnesses for the same automaton
/// states (see DESIGN.md, substitutions).

namespace mdatalog::mso {

struct MsoCompileOptions {
  /// The finite alphabet Σ; every label occurring in the formula or in any
  /// tree the automaton runs on must be listed (Remark 2.2).
  std::vector<std::string> alphabet;
  int64_t max_states = 1 << 20;
};

/// Compiles a sentence (no free variables) to a 0-bit automaton.
util::Result<Bta> CompileSentence(const FormulaPtr& f,
                                  const MsoCompileOptions& options);

/// Compiles a unary query φ(x) (free variables: exactly the first-order x)
/// to a 1-bit automaton suitable for BtaUnaryQuery / BtaToDatalog.
util::Result<Bta> CompileUnaryQuery(const FormulaPtr& f, const std::string& x,
                                    const MsoCompileOptions& options);

}  // namespace mdatalog::mso
