#include "src/mso/automaton.h"

#include <algorithm>
#include <functional>
#include <set>

#include "src/util/check.h"

namespace mdatalog::mso {

BtaState Bta::Step(int32_t sym, BtaState l, BtaState r) const {
  auto it = delta.find({sym, l, r});
  MD_CHECK(it != delta.end());
  return it->second;
}

namespace {

/// Generic reachable-product construction: abstract states of type Key are
/// discovered from the leaf shapes upward; the result is complete over the
/// discovered states. `step` must be total.
template <typename Key>
util::Result<Bta> BuildReachable(
    int32_t num_classes, int32_t num_bits,
    const std::function<Key(int32_t, const Key*, const Key*)>& step,
    const std::function<bool(const Key&)>& is_final, int64_t max_states) {
  Bta out;
  out.num_classes = num_classes;
  out.num_bits = num_bits;
  std::map<Key, BtaState> ids;
  std::vector<Key> keys;
  auto intern = [&](const Key& k) {
    auto it = ids.find(k);
    if (it != ids.end()) return it->second;
    BtaState id = static_cast<BtaState>(keys.size());
    ids.emplace(k, id);
    keys.push_back(k);
    return id;
  };

  int32_t num_syms = num_classes << num_bits;
  // Leaf shapes first.
  for (int32_t sym = 0; sym < num_syms; ++sym) {
    Key k = step(sym, nullptr, nullptr);
    out.delta[{sym, kAbsent, kAbsent}] = intern(k);
  }
  // Saturate: whenever new states appear, extend all combinations.
  size_t processed = 0;  // states whose pair-combinations are complete
  while (processed < keys.size()) {
    if (static_cast<int64_t>(keys.size()) > max_states) {
      return util::Status::ResourceExhausted(
          "tree automaton construction exceeded max_states (" +
          std::to_string(max_states) + ")");
    }
    size_t fresh = processed;
    processed = keys.size();
    // Combinations involving at least one state with id >= fresh.
    for (size_t qi = 0; qi < processed; ++qi) {
      // Copy the key: intern() may reallocate `keys`.
      Key q = keys[qi];
      for (int32_t sym = 0; sym < num_syms; ++sym) {
        if (qi >= fresh) {
          out.delta[{sym, static_cast<BtaState>(qi), kAbsent}] =
              intern(step(sym, &q, nullptr));
          out.delta[{sym, kAbsent, static_cast<BtaState>(qi)}] =
              intern(step(sym, nullptr, &q));
        }
        size_t lo = qi >= fresh ? 0 : fresh;
        for (size_t ri = lo; ri < processed; ++ri) {
          Key r = keys[ri];
          out.delta[{sym, static_cast<BtaState>(qi),
                     static_cast<BtaState>(ri)}] = intern(step(sym, &q, &r));
          if (qi != ri) {
            out.delta[{sym, static_cast<BtaState>(ri),
                       static_cast<BtaState>(qi)}] =
                intern(step(sym, &r, &q));
          }
        }
      }
    }
  }
  out.num_states = static_cast<int32_t>(keys.size());
  out.finals.resize(out.num_states);
  for (int32_t q = 0; q < out.num_states; ++q) {
    out.finals[q] = is_final(keys[q]);
  }
  return out;
}

util::Result<Bta> Product(const Bta& a, const Bta& b, bool conjunction,
                          int64_t max_states) {
  if (a.num_classes != b.num_classes || a.num_bits != b.num_bits) {
    return util::Status::InvalidArgument(
        "product of automata over different alphabets");
  }
  using Key = std::pair<BtaState, BtaState>;
  auto step = [&](int32_t sym, const Key* l, const Key* r) -> Key {
    BtaState la = l ? l->first : kAbsent;
    BtaState lb = l ? l->second : kAbsent;
    BtaState ra = r ? r->first : kAbsent;
    BtaState rb = r ? r->second : kAbsent;
    return {a.Step(sym, la, ra), b.Step(sym, lb, rb)};
  };
  auto is_final = [&](const Key& k) {
    return conjunction ? (a.finals[k.first] && b.finals[k.second])
                       : (a.finals[k.first] || b.finals[k.second]);
  };
  auto result = BuildReachable<Key>(a.num_classes, a.num_bits, step, is_final,
                                    max_states);
  if (!result.ok()) return result;
  return Minimize(*result);
}

}  // namespace

util::Result<Bta> Intersect(const Bta& a, const Bta& b, int64_t max_states) {
  return Product(a, b, /*conjunction=*/true, max_states);
}

util::Result<Bta> UnionOp(const Bta& a, const Bta& b, int64_t max_states) {
  return Product(a, b, /*conjunction=*/false, max_states);
}

Bta Complement(const Bta& a) {
  Bta out = a;
  for (int32_t q = 0; q < out.num_states; ++q) {
    out.finals[q] = !out.finals[q];
  }
  return out;
}

util::Result<Bta> ProjectLastBit(const Bta& a, int64_t max_states) {
  MD_CHECK(a.num_bits >= 1);
  int32_t new_bits = a.num_bits - 1;
  int32_t high_bit = 1 << new_bits;  // the bit being erased (last in order)
  using Key = std::vector<BtaState>;  // sorted subset
  auto step = [&](int32_t sym, const Key* l, const Key* r) -> Key {
    int32_t cls = sym % a.num_classes;
    uint32_t mask = static_cast<uint32_t>(sym / a.num_classes);
    std::set<BtaState> next;
    for (uint32_t bit : {0u, static_cast<uint32_t>(high_bit)}) {
      int32_t full_sym = a.Sym(cls, mask | bit);
      Key empty;
      const Key& ls = l ? *l : empty;
      const Key& rs = r ? *r : empty;
      if (!l && !r) {
        next.insert(a.Step(full_sym, kAbsent, kAbsent));
      } else if (l && !r) {
        for (BtaState ql : ls) next.insert(a.Step(full_sym, ql, kAbsent));
      } else if (!l && r) {
        for (BtaState qr : rs) next.insert(a.Step(full_sym, kAbsent, qr));
      } else {
        for (BtaState ql : ls) {
          for (BtaState qr : rs) next.insert(a.Step(full_sym, ql, qr));
        }
      }
    }
    return Key(next.begin(), next.end());
  };
  auto is_final = [&](const Key& k) {
    for (BtaState q : k) {
      if (a.finals[q]) return true;
    }
    return false;
  };
  auto result = BuildReachable<Key>(a.num_classes, new_bits, step, is_final,
                                    max_states);
  if (!result.ok()) return result;
  return Minimize(*result);
}

Bta SingletonBit(int32_t num_classes, int32_t num_bits, int32_t bit) {
  // States: 0 = bit unseen, 1 = seen once, 2 = seen more than once (sink).
  Bta out;
  out.num_classes = num_classes;
  out.num_bits = num_bits;
  out.num_states = 3;
  out.finals = {false, true, false};
  int32_t num_syms = num_classes << num_bits;
  auto combine = [&](int32_t here, BtaState l, BtaState r) -> BtaState {
    int32_t count = here + (l == kAbsent ? 0 : l) + (r == kAbsent ? 0 : r);
    return std::min(count, 2);
  };
  for (int32_t sym = 0; sym < num_syms; ++sym) {
    uint32_t mask = static_cast<uint32_t>(sym / num_classes);
    int32_t here = (mask >> bit) & 1;
    for (BtaState l = kAbsent; l < 3; ++l) {
      for (BtaState r = kAbsent; r < 3; ++r) {
        out.delta[{sym, l, r}] = combine(here, l, r);
      }
    }
  }
  return out;
}

Bta Minimize(const Bta& a) {
  // 1. Reachability prune via the identity construction.
  auto pruned = BuildReachable<BtaState>(
      a.num_classes, a.num_bits,
      [&](int32_t sym, const BtaState* l, const BtaState* r) {
        return a.Step(sym, l ? *l : kAbsent, r ? *r : kAbsent);
      },
      [&](const BtaState& q) { return a.finals[q]; },
      /*max_states=*/a.num_states + 1);
  MD_CHECK(pruned.ok());
  Bta b = std::move(*pruned);

  // 2. Moore refinement.
  std::vector<int32_t> cls(b.num_states);
  for (int32_t q = 0; q < b.num_states; ++q) cls[q] = b.finals[q] ? 1 : 0;
  int32_t num_syms = b.NumSymbols();
  bool changed = true;
  while (changed) {
    changed = false;
    std::map<std::vector<int32_t>, int32_t> sig_ids;
    std::vector<int32_t> next_cls(b.num_states);
    for (int32_t q = 0; q < b.num_states; ++q) {
      std::vector<int32_t> sig;
      sig.push_back(cls[q]);
      for (int32_t sym = 0; sym < num_syms; ++sym) {
        sig.push_back(cls[b.Step(sym, q, kAbsent)]);
        sig.push_back(cls[b.Step(sym, kAbsent, q)]);
        for (int32_t r = 0; r < b.num_states; ++r) {
          sig.push_back(cls[b.Step(sym, q, r)]);
          sig.push_back(cls[b.Step(sym, r, q)]);
        }
      }
      auto [it, inserted] =
          sig_ids.emplace(std::move(sig), static_cast<int32_t>(sig_ids.size()));
      next_cls[q] = it->second;
    }
    if (next_cls != cls) {
      changed = true;
      cls = std::move(next_cls);
    } else {
      // Renumber stabilized classes densely (sig_ids order).
      cls = std::move(next_cls);
    }
  }

  int32_t num_classes_out = 0;
  for (int32_t c : cls) num_classes_out = std::max(num_classes_out, c + 1);
  Bta out;
  out.num_classes = b.num_classes;
  out.num_bits = b.num_bits;
  out.num_states = num_classes_out;
  out.finals.resize(num_classes_out, false);
  for (int32_t q = 0; q < b.num_states; ++q) {
    if (b.finals[q]) out.finals[cls[q]] = true;
  }
  for (const auto& [key, to] : b.delta) {
    const auto& [sym, l, r] = key;
    out.delta[{sym, l == kAbsent ? kAbsent : cls[l],
               r == kAbsent ? kAbsent : cls[r]}] = cls[to];
  }
  return out;
}

util::Result<std::vector<int32_t>> ClassOfNodes(
    const tree::Tree& t, const std::vector<std::string>& alphabet) {
  std::vector<int32_t> out(t.size());
  for (tree::NodeId n = 0; n < t.size(); ++n) {
    auto it = std::find(alphabet.begin(), alphabet.end(), t.label_name(n));
    if (it == alphabet.end()) {
      return util::Status::InvalidArgument(
          "tree label '" + t.label_name(n) +
          "' is outside the formula's finite alphabet");
    }
    out[n] = static_cast<int32_t>(it - alphabet.begin());
  }
  return out;
}

namespace {

/// Bottom-up states with all mark bits 0. Children in the *binary encoding*:
/// left = first child, right = next sibling, so states are computed in
/// reverse document order.
std::vector<BtaState> BottomUpStates(const Bta& a, const tree::Tree& t,
                                     const std::vector<int32_t>& class_of) {
  std::vector<BtaState> state(t.size(), kAbsent);
  std::vector<tree::NodeId> order = t.Preorder();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    tree::NodeId n = *it;
    BtaState l = t.first_child(n) == tree::kNoNode ? kAbsent
                                                   : state[t.first_child(n)];
    BtaState r = t.next_sibling(n) == tree::kNoNode
                     ? kAbsent
                     : state[t.next_sibling(n)];
    state[n] = a.Step(a.Sym(class_of[n], 0), l, r);
  }
  return state;
}

}  // namespace

util::Result<bool> BtaAcceptsTree(const Bta& a, const tree::Tree& t,
                                  const std::vector<int32_t>& class_of) {
  if (a.num_bits != 0) {
    return util::Status::InvalidArgument(
        "sentence acceptance requires a 0-bit automaton");
  }
  std::vector<BtaState> state = BottomUpStates(a, t, class_of);
  return static_cast<bool>(a.finals[state[t.root()]]);
}

util::Result<std::vector<tree::NodeId>> BtaUnaryQuery(
    const Bta& a, const tree::Tree& t, const std::vector<int32_t>& class_of) {
  if (a.num_bits != 1) {
    return util::Status::InvalidArgument(
        "unary query evaluation requires a 1-bit automaton");
  }
  std::vector<BtaState> s0 = BottomUpStates(a, t, class_of);

  // ctx[v][q]: if v's binary subtree evaluated to q (all other nodes
  // unmarked), would the whole tree be accepted?
  std::vector<std::vector<bool>> ctx(
      t.size(), std::vector<bool>(a.num_states, false));
  ctx[t.root()] = std::vector<bool>(a.finals.begin(), a.finals.end());

  std::vector<tree::NodeId> order = t.Preorder();
  for (tree::NodeId v : order) {
    tree::NodeId l = t.first_child(v);
    tree::NodeId r = t.next_sibling(v);
    int32_t sym0 = a.Sym(class_of[v], 0);
    BtaState ls = l == tree::kNoNode ? kAbsent : s0[l];
    BtaState rs = r == tree::kNoNode ? kAbsent : s0[r];
    for (BtaState q = 0; q < a.num_states; ++q) {
      if (l != tree::kNoNode && ctx[v][a.Step(sym0, q, rs)]) {
        ctx[l][q] = true;
      }
      if (r != tree::kNoNode && ctx[v][a.Step(sym0, ls, q)]) {
        ctx[r][q] = true;
      }
    }
    // Note: ctx[l]/ctx[r] accumulate from a single parent only (binary
    // encoding is a tree), and v precedes l and r in preorder... l is v's
    // first child (preorder-after v) and r is v's next sibling
    // (preorder-after v's whole subtree): both visited later. ✓
  }

  std::vector<tree::NodeId> selected;
  for (tree::NodeId v = 0; v < t.size(); ++v) {
    tree::NodeId l = t.first_child(v);
    tree::NodeId r = t.next_sibling(v);
    BtaState ls = l == tree::kNoNode ? kAbsent : s0[l];
    BtaState rs = r == tree::kNoNode ? kAbsent : s0[r];
    BtaState marked = a.Step(a.Sym(class_of[v], 1), ls, rs);
    if (ctx[v][marked]) selected.push_back(v);
  }
  return selected;
}

}  // namespace mdatalog::mso
