#pragma once

#include <cstdint>
#include <optional>

#include "src/core/ast.h"
#include "src/tree/tree.h"
#include "src/util/result.h"

/// \file containment.h
/// Bounded containment and equivalence of TMNF programs over unranked trees,
/// decided by an embedded incremental SAT core (sat_solver.h).
///
/// Containment of monadic datalog on trees is decidable (Frochaux–Grohe–
/// Schweikardt, 2014) but 2EXPTIME-hard; what a serving fleet needs is a
/// fast, *trustworthy* refutation/bounded-proof procedure. Contains(P, Q)
/// searches for a counterexample tree — a tree T and node v with
/// v ∈ P(T) but v ∉ Q(T) — over all trees of depth ≤ max_depth and
/// branching ≤ max_branch:
///
///  * The tree template is the complete max_branch-ary tree of max_depth
///    levels. Per node: an existence variable (children form a left prefix,
///    so every bounded tree embeds canonically) and an exactly-one label
///    choice over the labels mentioned by P or Q plus one fresh "other"
///    label (unmentioned labels are indistinguishable — Remark 2.2).
///  * Q's side is encoded as *closure*: every rule instance over the
///    template is an implication clause. A model may satisfy any supermodel
///    of Q's least model, and since the least model is the intersection of
///    all closed models, "some closed model misses q(v)" is exactly
///    "the least model misses q(v)".
///  * P's side is encoded as *acyclic support*: p(v) must pick a supporting
///    rule instance whose IDB body atoms hold with strictly smaller level
///    numbers (binary-encoded, compared with one-sided less-than chains).
///    Any satisfying assignment's true atoms therefore have well-founded
///    derivations, i.e. are contained in P's least model — exact, with no
///    per-round unrolling.
///  * Depth layering is incremental: one encoding at full depth, solved
///    under assumptions "every node deeper than d is absent" for
///    d = 0, 1, …, max_depth. Learned clauses persist across depths
///    (assumption-based incremental solving), and the first SAT layer yields
///    the shallowest counterexample.
///
/// A SAT model is *decoded into a real tree and re-checked with the
/// production evaluator* before kNotContained is returned — a verdict never
/// rests on the encoding alone.
///
/// Contract (see src/analysis/README.md): kNotContained is a proof (witness
/// included); kContained proves absence of counterexamples only within the
/// depth/branch bounds — callers that need unconditional soundness must pair
/// it with syntactic arguments, as Minimize does.

namespace mdatalog::analysis {

struct ContainmentOptions {
  /// Maximum counterexample-tree depth in edges (0 = root-only trees).
  int32_t max_depth = 3;
  /// Maximum children per node in the counterexample search.
  int32_t max_branch = 3;
  /// Total SAT conflict budget across all depth layers; exhausting it yields
  /// kUnknown. < 0 = unbounded.
  int64_t max_conflicts = 1 << 20;
  /// Re-evaluate the decoded witness with the real engine before returning
  /// kNotContained (Internal error on mismatch — an encoder bug, not a user
  /// error). Costs one small-tree evaluation; keep on.
  bool verify_witness = true;
};

enum class Verdict {
  /// No counterexample exists within the depth/branch bounds.
  kContained,
  /// A verified counterexample tree was found.
  kNotContained,
  /// Conflict budget exhausted (or encoding limits hit) before a verdict.
  kUnknown,
};

struct ContainmentResult {
  Verdict verdict = Verdict::kUnknown;

  /// kNotContained only: the counterexample — `witness_node` is selected by
  /// P but not by Q on `witness_tree`.
  std::optional<tree::Tree> witness_tree;
  tree::NodeId witness_node = -1;
  /// Depth layer at which the counterexample appeared (edges).
  int32_t witness_depth = -1;

  // Solver effort, for stats surfaces and the bench.
  int64_t conflicts = 0;
  int64_t decisions = 0;
  int64_t propagations = 0;
  int64_t num_vars = 0;
  int64_t num_clauses = 0;
};

/// Decides bounded containment P ⊆ Q of the query extents. Both programs
/// must be TMNF over τ_ur (tmnf::ToTmnf output) with a query predicate set.
/// InvalidArgument for programs outside that fragment.
util::Result<ContainmentResult> Contains(const core::Program& p,
                                         const core::Program& q,
                                         const ContainmentOptions& options = {});

struct EquivalenceResult {
  /// kContained here means "equivalent within bounds".
  Verdict verdict = Verdict::kUnknown;
  ContainmentResult forward;   ///< P ⊆ Q
  ContainmentResult backward;  ///< Q ⊆ P (skipped if forward refuted)
};

/// Bounded equivalence: Contains both ways, sharing the options' budget.
util::Result<EquivalenceResult> Equivalent(
    const core::Program& p, const core::Program& q,
    const ContainmentOptions& options = {});

}  // namespace mdatalog::analysis
