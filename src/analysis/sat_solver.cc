#include "src/analysis/sat_solver.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/util/check.h"

namespace mdatalog::analysis {

namespace {

/// Luby restart sequence (unit = conflicts): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …
int64_t Luby(int64_t i) {
  int64_t k = 1;
  while ((int64_t{1} << k) - 1 < i + 1) ++k;
  while ((int64_t{1} << k) - 1 != i + 1) {
    i -= (int64_t{1} << (k - 1)) - 1;
    k = 1;
    while ((int64_t{1} << k) - 1 < i + 1) ++k;
  }
  return int64_t{1} << (k - 1);
}

constexpr double kActivityDecay = 1.0 / 0.95;
constexpr double kActivityRescale = 1e100;
constexpr int64_t kRestartUnit = 128;

}  // namespace

SatSolver::SatSolver() {
  // Var 0 is unused (literals are 1-based); keep the per-var arrays aligned.
  assigns_.push_back(kUndef);
  phase_.push_back(0);
  level_.push_back(0);
  reason_.push_back(-1);
  activity_.push_back(0.0);
  heap_pos_.push_back(-1);
  seen_.push_back(0);
}

Lit SatSolver::NewVar() {
  ++num_vars_;
  assigns_.push_back(kUndef);
  phase_.push_back(0);  // default polarity false: prefers small trees
  level_.push_back(0);
  reason_.push_back(-1);
  activity_.push_back(0.0);
  heap_pos_.push_back(-1);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  HeapInsert(num_vars_);
  return num_vars_;
}

void SatSolver::WatchClause(int32_t ci) {
  const std::vector<Lit>& c = clauses_[ci];
  MD_DCHECK(c.size() >= 2);
  watches_[Index(c[0])].push_back({ci, c[1]});
  watches_[Index(c[1])].push_back({ci, c[0]});
}

void SatSolver::AddClause(std::vector<Lit> lits) {
  if (!ok_) return;
  MD_CHECK(trail_lim_.empty());  // clauses are added at decision level 0
  // Simplify: sort, merge duplicates, drop tautologies and false-at-0
  // literals, succeed on true-at-0 literals.
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return std::abs(a) != std::abs(b)
                                          ? std::abs(a) < std::abs(b)
                                          : a < b; });
  std::vector<Lit> c;
  c.reserve(lits.size());
  for (size_t i = 0; i < lits.size(); ++i) {
    Lit l = lits[i];
    MD_DCHECK(l != 0 && std::abs(l) <= num_vars_);
    if (!c.empty() && c.back() == l) continue;       // duplicate
    if (!c.empty() && c.back() == -l) return;        // tautology
    int8_t v = ValueOf(l);
    if (v == kTrue) return;                          // already satisfied
    if (v == kFalse) continue;                       // cannot help
    c.push_back(l);
  }
  if (c.empty()) {
    ok_ = false;
    return;
  }
  if (c.size() == 1) {
    Enqueue(c[0], -1);
    if (Propagate() != -1) ok_ = false;
    return;
  }
  clauses_.push_back(std::move(c));
  WatchClause(static_cast<int32_t>(clauses_.size()) - 1);
}

void SatSolver::Enqueue(Lit l, int32_t reason) {
  int32_t v = std::abs(l);
  MD_DCHECK(assigns_[v] == kUndef);
  assigns_[v] = l > 0 ? kTrue : kFalse;
  phase_[v] = assigns_[v];
  level_[v] = static_cast<int32_t>(trail_lim_.size());
  reason_[v] = reason;
  trail_.push_back(l);
}

int32_t SatSolver::Propagate() {
  while (qhead_ < trail_.size()) {
    Lit p = trail_[qhead_++];
    ++stats_propagations_;
    // Clauses watching ¬p must find a new watch or propagate/conflict.
    std::vector<Watcher>& ws = watches_[Index(-p)];
    size_t keep = 0;
    for (size_t i = 0; i < ws.size(); ++i) {
      Watcher w = ws[i];
      if (ValueOf(w.blocker) == kTrue) {
        ws[keep++] = w;
        continue;
      }
      std::vector<Lit>& c = clauses_[w.clause];
      // Normalize so c[0] is the other watch.
      if (c[0] == -p) std::swap(c[0], c[1]);
      MD_DCHECK(c[1] == -p);
      if (ValueOf(c[0]) == kTrue) {
        ws[keep++] = {w.clause, c[0]};
        continue;
      }
      bool moved = false;
      for (size_t k = 2; k < c.size(); ++k) {
        if (ValueOf(c[k]) != kFalse) {
          std::swap(c[1], c[k]);
          watches_[Index(c[1])].push_back({w.clause, c[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;  // watcher migrated, drop from this list
      // Unit or conflicting.
      ws[keep++] = {w.clause, c[0]};
      if (ValueOf(c[0]) == kFalse) {
        // Conflict: restore untraversed watchers and report.
        for (size_t k = i + 1; k < ws.size(); ++k) ws[keep++] = ws[k];
        ws.resize(keep);
        qhead_ = trail_.size();
        return w.clause;
      }
      Enqueue(c[0], w.clause);
    }
    ws.resize(keep);
  }
  return -1;
}

void SatSolver::BumpVar(int32_t var) {
  activity_[var] += var_inc_;
  if (activity_[var] > kActivityRescale) {
    for (int32_t v = 1; v <= num_vars_; ++v) activity_[v] /= kActivityRescale;
    var_inc_ /= kActivityRescale;
  }
  if (heap_pos_[var] >= 0) HeapSiftUp(heap_pos_[var]);
}

void SatSolver::DecayActivities() { var_inc_ *= kActivityDecay; }

void SatSolver::Analyze(int32_t confl, std::vector<Lit>* learned,
                        int32_t* bt_level) {
  // First-UIP scheme: walk the trail backwards resolving antecedents until
  // exactly one literal of the current decision level remains.
  learned->clear();
  learned->push_back(0);  // slot for the asserting literal
  int32_t counter = 0;
  Lit p = 0;
  size_t trail_idx = trail_.size();
  int32_t cur_level = static_cast<int32_t>(trail_lim_.size());

  int32_t reason = confl;
  do {
    MD_DCHECK(reason != -1);
    const std::vector<Lit>& c = clauses_[reason];
    for (size_t i = (p == 0 ? 0 : 1); i < c.size(); ++i) {
      Lit q = c[i];
      if (p != 0 && q == p) continue;
      int32_t v = std::abs(q);
      if (seen_[v] || level_[v] == 0) continue;
      seen_[v] = 1;
      BumpVar(v);
      if (level_[v] >= cur_level) {
        ++counter;
      } else {
        learned->push_back(q);
      }
    }
    // Next literal of the current level on the trail.
    while (!seen_[std::abs(trail_[--trail_idx])]) {
    }
    p = trail_[trail_idx];
    seen_[std::abs(p)] = 0;
    reason = reason_[std::abs(p)];
    --counter;
    if (counter > 0) {
      // `p`'s antecedent clauses store p first; skip index 0 next round.
      std::vector<Lit>& rc = clauses_[reason];
      if (rc[0] != p) {
        auto it = std::find(rc.begin(), rc.end(), p);
        MD_DCHECK(it != rc.end());
        std::swap(rc[0], *it);
      }
    }
  } while (counter > 0);
  (*learned)[0] = -p;

  // Backtrack level: the highest level among the non-asserting literals.
  *bt_level = 0;
  size_t max_i = 1;
  for (size_t i = 1; i < learned->size(); ++i) {
    int32_t lv = level_[std::abs((*learned)[i])];
    if (lv > *bt_level) {
      *bt_level = lv;
      max_i = i;
    }
  }
  if (learned->size() > 1) std::swap((*learned)[1], (*learned)[max_i]);
  for (Lit l : *learned) seen_[std::abs(l)] = 0;
}

void SatSolver::CancelUntil(int32_t target_level) {
  if (static_cast<int32_t>(trail_lim_.size()) <= target_level) return;
  size_t bound = trail_lim_[target_level];
  for (size_t i = trail_.size(); i > bound; --i) {
    int32_t v = std::abs(trail_[i - 1]);
    assigns_[v] = kUndef;
    reason_[v] = -1;
    if (heap_pos_[v] < 0) HeapInsert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(target_level);
  qhead_ = bound;
}

// --- activity heap ----------------------------------------------------------

void SatSolver::HeapInsert(int32_t var) {
  heap_pos_[var] = static_cast<int32_t>(heap_.size());
  heap_.push_back(var);
  HeapSiftUp(heap_.size() - 1);
}

void SatSolver::HeapSiftUp(size_t i) {
  int32_t var = heap_[i];
  while (i > 0) {
    size_t parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[var]) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = static_cast<int32_t>(i);
    i = parent;
  }
  heap_[i] = var;
  heap_pos_[var] = static_cast<int32_t>(i);
}

void SatSolver::HeapSiftDown(size_t i) {
  int32_t var = heap_[i];
  size_t n = heap_.size();
  for (;;) {
    size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        activity_[heap_[child + 1]] > activity_[heap_[child]]) {
      ++child;
    }
    if (activity_[var] >= activity_[heap_[child]]) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = static_cast<int32_t>(i);
    i = child;
  }
  heap_[i] = var;
  heap_pos_[var] = static_cast<int32_t>(i);
}

int32_t SatSolver::HeapPop() {
  int32_t top = heap_[0];
  heap_pos_[top] = -1;
  if (heap_.size() > 1) {
    heap_[0] = heap_.back();
    heap_pos_[heap_[0]] = 0;
    heap_.pop_back();
    HeapSiftDown(0);
  } else {
    heap_.pop_back();
  }
  return top;
}

Lit SatSolver::PickBranchLit() {
  while (!heap_.empty()) {
    int32_t v = heap_[0];
    if (assigns_[v] == kUndef) {
      HeapPop();
      return phase_[v] == kTrue ? v : -v;
    }
    HeapPop();
  }
  return 0;
}

SatSolver::Outcome SatSolver::Solve(const std::vector<Lit>& assumptions,
                                    int64_t max_conflicts) {
  if (!ok_) return Outcome::kUnsat;
  MD_CHECK(trail_lim_.empty());
  if (Propagate() != -1) {
    ok_ = false;
    return Outcome::kUnsat;
  }

  const int64_t conflict_budget =
      max_conflicts < 0 ? -1 : stats_conflicts_ + max_conflicts;
  int64_t restart_round = 0;
  int64_t restart_budget = Luby(restart_round) * kRestartUnit;
  int64_t restart_conflicts = 0;
  std::vector<Lit> learned;
  Outcome outcome = Outcome::kUnknown;

  for (;;) {
    int32_t confl = Propagate();
    if (confl != -1) {
      ++stats_conflicts_;
      ++restart_conflicts;
      if (trail_lim_.empty()) {
        // Conflict at level 0: only forced literals are on the trail, so the
        // clause set itself is unsatisfiable independent of any assumptions.
        // The solver must go terminally UNSAT here even under assumptions —
        // Propagate() already advanced qhead_ past the unprocessed level-0
        // enqueues, so carrying on would silently drop their consequences in
        // every later Solve() call.
        ok_ = false;
        outcome = Outcome::kUnsat;
        break;
      }
      if (static_cast<int32_t>(trail_lim_.size()) <=
          static_cast<int32_t>(assumptions.size())) {
        // Conflict within the assumption prefix: UNSAT under these
        // assumptions only.
        outcome = Outcome::kUnsat;
        break;
      }
      int32_t bt_level;
      Analyze(confl, &learned, &bt_level);
      // Backtracking below the assumption prefix is fine: the decision loop
      // re-pushes assumptions whenever fewer are on the trail. Unit learned
      // clauses (bt_level 0) must take the Enqueue path — WatchClause needs
      // two literals.
      CancelUntil(bt_level);
      if (learned.size() == 1 && bt_level == 0) {
        Enqueue(learned[0], -1);
      } else {
        clauses_.push_back(learned);
        int32_t ci = static_cast<int32_t>(clauses_.size()) - 1;
        WatchClause(ci);
        if (ValueOf(learned[0]) == kUndef) Enqueue(learned[0], ci);
      }
      DecayActivities();
      if (conflict_budget >= 0 && stats_conflicts_ >= conflict_budget) {
        outcome = Outcome::kUnknown;
        break;
      }
      if (restart_conflicts >= restart_budget) {
        CancelUntil(static_cast<int32_t>(assumptions.size()));
        ++restart_round;
        restart_budget = Luby(restart_round) * kRestartUnit;
        restart_conflicts = 0;
      }
      continue;
    }

    // Assumption decisions first, then activity-guided search.
    if (trail_lim_.size() < assumptions.size()) {
      Lit a = assumptions[trail_lim_.size()];
      int8_t v = ValueOf(a);
      if (v == kFalse) {
        outcome = Outcome::kUnsat;
        break;
      }
      trail_lim_.push_back(static_cast<int32_t>(trail_.size()));
      if (v == kUndef) Enqueue(a, -1);
      continue;
    }
    Lit next = PickBranchLit();
    if (next == 0) {
      model_ = assigns_;
      if (std::getenv("MD_SAT_CHECK_MODEL") != nullptr) {
        // Paranoia hook for tests: every clause (original and learned) must
        // be satisfied by the model.
        for (size_t ci = 0; ci < clauses_.size(); ++ci) {
          bool sat_c = false;
          for (Lit l : clauses_[ci]) sat_c |= ModelValue(l);
          if (!sat_c) {
            std::fprintf(stderr, "SatSolver: invalid model, clause %zu:", ci);
            for (Lit l : clauses_[ci]) std::fprintf(stderr, " %d", l);
            std::fprintf(stderr, "\n");
            MD_CHECK(false);
          }
        }
      }
      outcome = Outcome::kSat;
      break;
    }
    ++stats_decisions_;
    trail_lim_.push_back(static_cast<int32_t>(trail_.size()));
    Enqueue(next, -1);
  }

  CancelUntil(0);
  return outcome;
}

bool SatSolver::ModelValue(Lit lit) const {
  int32_t v = std::abs(lit);
  MD_CHECK(v >= 1 && static_cast<size_t>(v) < model_.size());
  int8_t a = model_[v];
  // Unassigned never escapes Solve(kSat); treat defensively as false.
  bool val = a == kTrue;
  return lit > 0 ? val : !val;
}

}  // namespace mdatalog::analysis
