#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/ast.h"
#include "src/elog/ast.h"
#include "src/util/result.h"

/// \file canonical.h
/// Canonical keys for programs and wrappers: two syntactically different but
/// obviously-equivalent formulations (reordered rules or body literals,
/// renamed variables, redundant/subsumed rules) map to one key, so compiled
/// plans and result memo entries are shared across wrapper revisions that
/// differ only in formulation.
///
/// The pipeline for an Elog⁻ wrapper is
///
///     ElogToDatalog → Minimize (sound reductions, roots = extraction
///     patterns) → per-rule canonical string → sort + dedup rules
///
/// Per rule, the canonical string is the lexicographically smallest
/// rendering over all body-literal permutations (up to a small body-size
/// cap, above which a deterministic heuristic sort is used) with variables
/// renamed by first occurrence — predicate *names*, not ids, so the key is
/// stable across independently parsed programs.
///
/// Programs using Δ builtins (Elog⁻Δ, Theorem 6.6: no datalog counterpart)
/// fall back to the identity key: the wrapper's own text. Conservative —
/// never merges two wrappers that could differ.

namespace mdatalog::analysis {

/// Canonical rendering of one rule (predicate names, normalized variables,
/// best body permutation). Deterministic; independent of intern order.
std::string CanonicalRuleString(const core::Program& program,
                                const core::Rule& rule);

/// Canonical text of a datalog program: canonical rule strings, sorted and
/// deduplicated, newline-joined. Does NOT minimize — compose with
/// Minimize() when reduction is wanted.
std::string CanonicalProgramText(const core::Program& program);

struct CanonicalKeyOptions {
  /// Run Minimize (sound reductions only) before canonical rendering.
  bool minimize = true;
};

struct WrapperKey {
  /// The canonical text: program section + '\x1f' + extraction patterns
  /// (verbatim, in order — pattern order shapes the output tree).
  std::string text;
  /// FNV-1a of `text` — the cache/memo key.
  uint64_t fingerprint = 0;
  /// False when the Δ-builtin identity fallback was taken.
  bool canonicalized = false;
};

/// Canonical key for a wrapper: `program` + `extraction_patterns` (output
/// order preserved). Never fails on Δ programs (identity fallback); errors
/// only on programs the Elog⁻ translation itself rejects as malformed.
util::Result<WrapperKey> CanonicalWrapperKey(
    const elog::ElogProgram& program,
    const std::vector<std::string>& extraction_patterns,
    const CanonicalKeyOptions& options = {});

}  // namespace mdatalog::analysis
