#pragma once

#include <cstdint>
#include <vector>

#include "src/analysis/containment.h"
#include "src/core/ast.h"
#include "src/util/result.h"

/// \file minimize.h
/// Extraction-preserving minimization of monadic datalog programs over τ_ur.
///
/// Minimize(P) applies only *unconditionally sound* reductions — every
/// transformation below preserves the least model restricted to the root
/// predicates on every input tree, with a syntactic or tree-axiomatic proof
/// that does not depend on any depth bound:
///
///   kUnsatBody        the body is unsatisfiable on any tree: two distinct
///                     label tests on one variable, root combined with
///                     having a parent / previous sibling / being a
///                     (first/last) sibling, leaf with a child, lastsibling
///                     with a next sibling (Section 2 semantics).
///   kUnderivableBody  a body atom's predicate is IDB with no derivable
///                     rule (fixpoint over core::DerivablePreds).
///   kUnreachable      the head predicate cannot reach any root predicate
///                     (core::ReachablePreds over head → body edges).
///   kDuplicate        an identical earlier rule exists (modulo variable
///                     renaming by first occurrence).
///   kSubsumed         an earlier kept rule θ-subsumes this one: a
///                     substitution maps its head onto this head and its
///                     body into this body, so every derivation step through
///                     this rule is covered.
///
/// Kept rules may additionally lose *redundant literals* (condensation): a
/// body literal is dropped when the original rule θ-subsumes the reduced
/// rule, which makes the two rules derive exactly the same facts.
///
/// Passes iterate to a fixpoint — removing a predicate's last rule can make
/// further bodies underivable.
///
/// Optionally (options.verify), the result is re-checked against the input
/// with the bounded SAT equivalence of containment.h on every root — a
/// belt-and-braces guard whose failure is reported as an Internal error
/// (encoder or minimizer bug), never silently.

namespace mdatalog::analysis {

/// Why a rule was removed (or kept). Indexed by *original* rule position, so
/// lint surfaces can map fates 1:1 back to source rules.
enum class RuleFate : uint8_t {
  kKept,
  kUnsatBody,
  kUnderivableBody,
  kUnreachable,
  kDuplicate,
  kSubsumed,
};

/// Human-readable fate name ("kept", "unsat-body", ...).
const char* RuleFateName(RuleFate fate);

struct MinimizeOptions {
  /// Output predicates whose extents must be preserved. Empty = the
  /// program's query predicate; if that is unset too, reachability pruning
  /// is skipped (every head counts as a root).
  std::vector<core::PredId> roots;

  bool remove_unreachable = true;
  bool remove_subsumed = true;
  bool condense_literals = true;

  /// Re-prove input ≡ output with bounded SAT containment on every root.
  /// A refutation means a minimizer bug and yields an Internal error.
  bool verify = false;
  ContainmentOptions verify_options;
};

struct MinimizeResult {
  core::Program program;

  /// Per original rule index: kept, or why it was removed.
  std::vector<RuleFate> fates;
  /// Per original rule index: number of redundant body literals dropped
  /// (nonzero only for kKept rules).
  std::vector<int32_t> literals_removed;

  /// options.verify only: the combined bounded-equivalence verdict
  /// (kContained = proven equivalent within bounds, kUnknown = budget ran
  /// out; kNotContained never escapes — it becomes an Internal error).
  Verdict verified = Verdict::kUnknown;

  int32_t rules_removed() const {
    int32_t n = 0;
    for (RuleFate f : fates) n += f != RuleFate::kKept ? 1 : 0;
    return n;
  }
  int32_t total_literals_removed() const {
    int32_t n = 0;
    for (int32_t k : literals_removed) n += k;
    return n;
  }
};

/// Minimizes `program`. The result's predicate table is a copy of the
/// input's (same PredIds); only the rule list shrinks.
util::Result<MinimizeResult> Minimize(const core::Program& program,
                                      const MinimizeOptions& options = {});

/// True iff the earlier rule θ-subsumes the later: some substitution θ over
/// `subsumer`'s variables has θ(head) == later head and θ(body) ⊆ later
/// body (as a set). Exposed for tests.
bool Subsumes(const core::Rule& subsumer, const core::Rule& subsumee);

}  // namespace mdatalog::analysis
