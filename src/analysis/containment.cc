#include "src/analysis/containment.h"

#include <algorithm>
#include <string>
#include <vector>

#include "src/analysis/sat_solver.h"
#include "src/analysis/tmnf_view.h"
#include "src/core/database.h"
#include "src/core/eval.h"
#include "src/telemetry/trace.h"
#include "src/util/check.h"

namespace mdatalog::analysis {

namespace {

/// Hard cap on template size: depth/branch bounds past this are an encoding
/// the caller should not be asking for (the SAT instance would be the
/// bottleneck long before the cap bites on sensible bounds).
constexpr int32_t kMaxTemplateNodes = 4096;

/// One slot of the complete max_branch-ary tree template. Fields are slot
/// indices (-1 = no such slot).
struct TemplateNode {
  int32_t parent = -1;
  int32_t depth = 0;
  int32_t child_index = 0;
  int32_t first_child = -1;
  int32_t prev_sibling = -1;
  int32_t next_sibling = -1;
};

util::Result<std::vector<TemplateNode>> BuildTemplate(int32_t depth,
                                                      int32_t branch) {
  std::vector<TemplateNode> nodes(1);
  for (size_t n = 0; n < nodes.size(); ++n) {
    if (nodes[n].depth >= depth) continue;
    if (static_cast<int64_t>(nodes.size()) + branch > kMaxTemplateNodes) {
      return util::Status::InvalidArgument(
          "containment bounds exceed the " +
          std::to_string(kMaxTemplateNodes) + "-node template cap");
    }
    const int32_t first = static_cast<int32_t>(nodes.size());
    nodes[n].first_child = first;
    for (int32_t k = 0; k < branch; ++k) {
      TemplateNode c;
      c.parent = static_cast<int32_t>(n);
      c.depth = nodes[n].depth + 1;
      c.child_index = k;
      c.prev_sibling = k > 0 ? first + k - 1 : -1;
      c.next_sibling = k + 1 < branch ? first + k + 1 : -1;
      nodes.push_back(c);
    }
  }
  return nodes;
}

/// A body-literal truth value: a compile-time constant or a solver literal.
struct MaybeLit {
  bool is_const = false;
  bool const_val = false;
  Lit lit = 0;

  static MaybeLit Const(bool v) { return {true, v, 0}; }
  static MaybeLit Of(Lit l) { return {false, false, l}; }
};

/// Asserts cond → (x < y) over equal-width unsigned bit vectors (MSB first),
/// with a one-sided chain: ~3 clauses and one auxiliary variable per bit.
void AddLessThan(SatSolver& sat, const std::vector<Lit>& x,
                 const std::vector<Lit>& y, Lit cond) {
  MD_CHECK(x.size() == y.size() && !x.empty());
  Lit d = cond;  // "prefix equal so far, comparison still undecided"
  for (size_t i = 0; i < x.size(); ++i) {
    sat.AddTernary(-d, -x[i], y[i]);  // no x_i > y_i while undecided
    Lit dn = sat.NewVar();
    sat.AddClause({-d, -x[i], -y[i], dn});  // both 1: still equal
    sat.AddClause({-d, x[i], y[i], dn});    // both 0: still equal
    d = dn;
  }
  sat.AddUnit(-d);  // all bits equal ⇒ not strictly less
}

/// The full encoding for one Contains(P, Q) call. Variables:
///   e[n]        node n of the template exists
///   lab[n][a]   node n carries alphabet symbol a (exactly one per node)
///   t[i][n]     P's IDB i holds at n, with an acyclic support (≤ least model)
///   lv[i][n][b] support level of t[i][n], binary MSB-first
///   u[j][n]     Q's IDB j holds at n in a Q-closed model (⊇ least model)
///   w[n]        n is the counterexample witness
class Encoder {
 public:
  Encoder(const std::vector<TemplateNode>& tmpl, const TmnfView& p,
          const TmnfView& q, int32_t num_symbols)
      : tmpl_(tmpl), p_(p), q_(q), num_symbols_(num_symbols) {}

  void Encode() {
    AllocVars();
    EncodeStructure();
    EncodeClosure();
    EncodeSupport();
    EncodeWitness();
  }

  SatSolver& sat() { return sat_; }
  const SatSolver& sat() const { return sat_; }
  Lit e(int32_t n) const { return e_[n]; }
  Lit lab(int32_t n, int32_t a) const {
    return lab_[static_cast<size_t>(n) * num_symbols_ + a];
  }
  Lit w(int32_t n) const { return w_[n]; }

 private:
  void AllocVars() {
    const int32_t n_nodes = static_cast<int32_t>(tmpl_.size());
    for (int32_t n = 0; n < n_nodes; ++n) e_.push_back(sat_.NewVar());
    for (int32_t n = 0; n < n_nodes; ++n) {
      for (int32_t a = 0; a < num_symbols_; ++a) lab_.push_back(sat_.NewVar());
    }
    t_.resize(p_.num_idb());
    for (auto& row : t_) {
      for (int32_t n = 0; n < n_nodes; ++n) row.push_back(sat_.NewVar());
    }
    // Level width: ranks of a least-model derivation are bounded by the
    // number of derivable (pred, node) pairs.
    int64_t max_rank = static_cast<int64_t>(p_.num_idb()) * n_nodes + 1;
    int32_t bits = 1;
    while ((int64_t{1} << bits) <= max_rank) ++bits;
    lv_.resize(p_.num_idb());
    for (auto& row : lv_) {
      row.resize(n_nodes);
      for (auto& node_bits : row) {
        for (int32_t b = 0; b < bits; ++b) node_bits.push_back(sat_.NewVar());
      }
    }
    u_.resize(q_.num_idb());
    for (auto& row : u_) {
      for (int32_t n = 0; n < n_nodes; ++n) row.push_back(sat_.NewVar());
    }
    for (int32_t n = 0; n < n_nodes; ++n) w_.push_back(sat_.NewVar());
  }

  void EncodeStructure() {
    sat_.AddUnit(e_[0]);  // trees are nonempty; the root always exists
    for (size_t n = 1; n < tmpl_.size(); ++n) {
      const TemplateNode& node = tmpl_[n];
      sat_.AddBinary(-e_[n], e_[node.parent]);
      if (node.prev_sibling >= 0) {
        // Children fill left slots first — the canonical embedding.
        sat_.AddBinary(-e_[n], e_[node.prev_sibling]);
      }
    }
    // Exactly one symbol per existing node; no symbols on absent nodes.
    std::vector<Lit> at_least_one;
    for (size_t n = 0; n < tmpl_.size(); ++n) {
      at_least_one.clear();
      at_least_one.push_back(-e_[n]);
      for (int32_t a = 0; a < num_symbols_; ++a) {
        const Lit la = lab(static_cast<int32_t>(n), a);
        at_least_one.push_back(la);
        sat_.AddBinary(-la, e_[n]);
        for (int32_t b = a + 1; b < num_symbols_; ++b) {
          sat_.AddBinary(-la, -lab(static_cast<int32_t>(n), b));
        }
      }
      sat_.AddClause(at_least_one);
    }
  }

  /// Truth of a τ_ur unary EDB test at template node n. Exact for existing
  /// nodes; values at absent nodes never influence existing ones (every
  /// structural step carries an existence literal).
  MaybeLit EdbTruth(const EdbRef& ref, int32_t n) const {
    const TemplateNode& node = tmpl_[n];
    switch (ref.kind) {
      case EdbRef::Kind::kRoot:
        return MaybeLit::Const(n == 0);
      case EdbRef::Kind::kLeaf:
        return node.first_child < 0 ? MaybeLit::Const(true)
                                    : MaybeLit::Of(-e_[node.first_child]);
      case EdbRef::Kind::kLastSibling:
        // The root is not a last sibling (Section 2).
        if (n == 0) return MaybeLit::Const(false);
        return node.next_sibling < 0 ? MaybeLit::Const(true)
                                     : MaybeLit::Of(-e_[node.next_sibling]);
      case EdbRef::Kind::kFirstSibling:
        // Not the root; otherwise a template constant — children pack left,
        // so slot 0 never has a previous sibling and later slots always do.
        return MaybeLit::Const(n != 0 && node.child_index == 0);
      case EdbRef::Kind::kLabel:
        return MaybeLit::Of(lab(n, ref.label));
    }
    return MaybeLit::Const(false);
  }

  MaybeLit OperandTruthQ(const OperandRef& op, int32_t n) const {
    return op.is_edb ? EdbTruth(op.edb, n) : MaybeLit::Of(u_[op.idb][n]);
  }

  /// The support node of a kStep rule at head node n, and the existence
  /// literal that makes the structural edge real. Returns false when the
  /// template has no such edge at n.
  bool StepSupport(StepDir dir, int32_t n, int32_t* m, Lit* rel) const {
    const TemplateNode& node = tmpl_[n];
    switch (dir) {
      case StepDir::kFromParent:  // firstchild(u, v): v is a first child
        if (node.parent < 0 || node.child_index != 0) return false;
        *m = node.parent;
        *rel = e_[n];
        return true;
      case StepDir::kFromPrevSibling:  // nextsibling(u, v)
        if (node.prev_sibling < 0) return false;
        *m = node.prev_sibling;
        *rel = e_[n];
        return true;
      case StepDir::kFromFirstChild:  // firstchild(v, u)
        if (node.first_child < 0) return false;
        *m = node.first_child;
        *rel = e_[node.first_child];
        return true;
      case StepDir::kFromNextSibling:  // nextsibling(v, u)
        if (node.next_sibling < 0) return false;
        *m = node.next_sibling;
        *rel = e_[node.next_sibling];
        return true;
    }
    return false;
  }

  /// Q as closure: every rule instance over the template is an implication
  /// clause body → head, so models are exactly the Q-closed supersets of the
  /// least model on the realized tree.
  void EncodeClosure() {
    std::vector<Lit> clause;
    for (const TmnfRuleView& r : q_.rules) {
      for (size_t n = 0; n < tmpl_.size(); ++n) {
        const int32_t ni = static_cast<int32_t>(n);
        clause.clear();
        bool dead = false;
        auto push_body = [&](const MaybeLit& ml) {
          if (ml.is_const) {
            if (!ml.const_val) dead = true;
          } else {
            clause.push_back(-ml.lit);
          }
        };
        if (r.kind == TmnfRuleView::Kind::kStep) {
          int32_t m;
          Lit rel;
          if (!StepSupport(r.dir, ni, &m, &rel)) continue;
          clause.push_back(-rel);
          push_body(OperandTruthQ(r.op0, m));
        } else {
          push_body(OperandTruthQ(r.op0, ni));
          if (r.kind == TmnfRuleView::Kind::kAnd) {
            push_body(OperandTruthQ(r.op1, ni));
          }
        }
        if (dead) continue;
        clause.push_back(u_[r.head][ni]);
        sat_.AddClause(clause);
      }
    }
  }

  /// P as acyclic support: t[i][n] must select some rule instance whose IDB
  /// body atoms hold at strictly smaller levels — true atoms are therefore
  /// exactly derivable atoms (⊆ least model), with no round unrolling.
  void EncodeSupport() {
    // options[i][n] collects the selector literals for head i at node n.
    std::vector<std::vector<std::vector<Lit>>> options(
        p_.num_idb(), std::vector<std::vector<Lit>>(tmpl_.size()));
    for (const TmnfRuleView& r : p_.rules) {
      for (size_t n = 0; n < tmpl_.size(); ++n) {
        const int32_t ni = static_cast<int32_t>(n);
        int32_t body_node = ni;
        Lit rel = 0;
        if (r.kind == TmnfRuleView::Kind::kStep) {
          if (!StepSupport(r.dir, ni, &body_node, &rel)) continue;
        }
        // Gather the option's conditions; drop the option on const-false.
        bool dead = false;
        std::vector<Lit> conds;
        std::vector<int32_t> idb_bodies;  // IDB operands needing levels
        std::vector<int32_t> idb_nodes;
        auto add_operand = [&](const OperandRef& op, int32_t at) {
          if (op.is_edb) {
            MaybeLit ml = EdbTruth(op.edb, at);
            if (ml.is_const) {
              if (!ml.const_val) dead = true;
            } else {
              conds.push_back(ml.lit);
            }
          } else {
            idb_bodies.push_back(op.idb);
            idb_nodes.push_back(at);
          }
        };
        if (rel != 0) conds.push_back(rel);
        add_operand(r.op0, body_node);
        if (r.kind == TmnfRuleView::Kind::kAnd) add_operand(r.op1, ni);
        if (dead) continue;

        const Lit sel = sat_.NewVar();
        for (Lit c : conds) sat_.AddBinary(-sel, c);
        for (size_t k = 0; k < idb_bodies.size(); ++k) {
          sat_.AddBinary(-sel, t_[idb_bodies[k]][idb_nodes[k]]);
          AddLessThan(sat_, lv_[idb_bodies[k]][idb_nodes[k]],
                      lv_[r.head][ni], sel);
        }
        options[r.head][n].push_back(sel);
      }
    }
    std::vector<Lit> clause;
    for (int32_t i = 0; i < p_.num_idb(); ++i) {
      for (size_t n = 0; n < tmpl_.size(); ++n) {
        clause.clear();
        clause.push_back(-t_[i][n]);
        for (Lit sel : options[i][n]) clause.push_back(sel);
        sat_.AddClause(clause);
      }
    }
  }

  void EncodeWitness() {
    std::vector<Lit> some_witness;
    for (size_t n = 0; n < tmpl_.size(); ++n) {
      const int32_t ni = static_cast<int32_t>(n);
      some_witness.push_back(w_[n]);
      sat_.AddBinary(-w_[n], e_[n]);
      sat_.AddBinary(-w_[n], t_[p_.query][ni]);
      sat_.AddBinary(-w_[n], -u_[q_.query][ni]);
    }
    sat_.AddClause(some_witness);
  }

  const std::vector<TemplateNode>& tmpl_;
  const TmnfView& p_;
  const TmnfView& q_;
  const int32_t num_symbols_;

  SatSolver sat_;
  std::vector<Lit> e_;
  std::vector<Lit> lab_;
  std::vector<std::vector<Lit>> t_;
  std::vector<std::vector<std::vector<Lit>>> lv_;
  std::vector<std::vector<Lit>> u_;
  std::vector<Lit> w_;
};

/// Decodes the model into a real tree; `node_map[n]` gets the NodeId of
/// template node n (-1 if absent).
tree::Tree DecodeTree(const Encoder& enc, const std::vector<TemplateNode>& tmpl,
                      const std::vector<std::string>& symbols,
                      std::vector<tree::NodeId>* node_map) {
  const SatSolver& sat = enc.sat();
  node_map->assign(tmpl.size(), tree::kNoNode);
  auto symbol_of = [&](int32_t n) -> const std::string& {
    for (size_t a = 0; a < symbols.size(); ++a) {
      if (sat.ModelValue(enc.lab(n, static_cast<int32_t>(a)))) {
        return symbols[a];
      }
    }
    return symbols.back();  // unreachable under exactly-one; defensive
  };
  tree::TreeBuilder builder;
  (*node_map)[0] = builder.Root(symbol_of(0));
  // Template ids are BFS order, so parents precede children.
  for (size_t n = 1; n < tmpl.size(); ++n) {
    if (!sat.ModelValue(enc.e(static_cast<int32_t>(n)))) continue;
    tree::NodeId parent = (*node_map)[tmpl[n].parent];
    MD_CHECK(parent != tree::kNoNode);
    (*node_map)[n] = builder.Child(parent, symbol_of(static_cast<int32_t>(n)));
  }
  return builder.Build();
}

util::Status VerifyWitness(const core::Program& p, const core::Program& q,
                           const tree::Tree& t, tree::NodeId v) {
  core::TreeDatabase db(t);
  MD_ASSIGN_OR_RETURN(core::EvalResult pr, core::EvaluateSemiNaive(p, db));
  MD_ASSIGN_OR_RETURN(core::EvalResult qr, core::EvaluateSemiNaive(q, db));
  if (!pr.ContainsUnary(p.query_pred(), v)) {
    return util::Status::Internal(
        "containment encoder bug: witness not derived by P on the decoded "
        "tree");
  }
  if (qr.ContainsUnary(q.query_pred(), v)) {
    return util::Status::Internal(
        "containment encoder bug: witness derived by Q on the decoded tree");
  }
  return util::Status::OK();
}

void FillStats(const SatSolver& sat, ContainmentResult* out) {
  out->conflicts = sat.conflicts();
  out->decisions = sat.decisions();
  out->propagations = sat.propagations();
  out->num_clauses = sat.num_clauses();
  out->num_vars = sat.num_vars();
}

}  // namespace

util::Result<ContainmentResult> Contains(const core::Program& p,
                                         const core::Program& q,
                                         const ContainmentOptions& options) {
  MD_ASSIGN_OR_RETURN(TmnfView pv, TmnfView::Parse(p));
  MD_ASSIGN_OR_RETURN(TmnfView qv, TmnfView::Parse(q));
  // One shared symbol space: both programs' labels, plus one fresh symbol
  // standing for every label neither mentions (Remark 2.2: unmentioned
  // labels are indistinguishable).
  std::vector<std::string> symbols;
  pv.RelabelInto(&symbols);
  qv.RelabelInto(&symbols);
  std::string other = "_other";
  while (std::find(symbols.begin(), symbols.end(), other) != symbols.end()) {
    other += '_';
  }
  symbols.push_back(other);

  const int32_t depth = std::max(options.max_depth, 0);
  const int32_t branch = std::max(options.max_branch, 1);
  MD_ASSIGN_OR_RETURN(std::vector<TemplateNode> tmpl,
                      BuildTemplate(depth, branch));

  Encoder enc(tmpl, pv, qv, static_cast<int32_t>(symbols.size()));
  enc.Encode();
  SatSolver& sat = enc.sat();

  ContainmentResult result;
  int64_t budget = options.max_conflicts;
  // Depth layering: solve under "no node deeper than d", shallowest first.
  // The encoding is built once; learned clauses persist across layers.
  for (int32_t d = 0; d <= depth; ++d) {
    std::vector<Lit> assumptions;
    for (size_t n = 0; n < tmpl.size(); ++n) {
      if (tmpl[n].depth > d) assumptions.push_back(-enc.e(static_cast<int32_t>(n)));
    }
    const int64_t before = sat.conflicts();
    const int64_t decisions_before = sat.decisions();
    SatSolver::Outcome outcome;
    {
      telemetry::TraceSpan span(telemetry::CurrentTrace(), "sat.solve");
      outcome = sat.Solve(assumptions, budget);
      if (span) {
        span.Value("depth", d);
        span.Value("conflicts", sat.conflicts() - before);
        span.Value("decisions", sat.decisions() - decisions_before);
      }
    }
    if (budget >= 0) budget = std::max<int64_t>(0, budget - (sat.conflicts() - before));
    if (outcome == SatSolver::Outcome::kUnknown ||
        (outcome != SatSolver::Outcome::kSat && budget == 0 && d < depth)) {
      result.verdict = Verdict::kUnknown;
      FillStats(sat, &result);
      return result;
    }
    if (outcome == SatSolver::Outcome::kUnsat) continue;

    // SAT: decode the tree, find the witness node, re-check for real.
    std::vector<tree::NodeId> node_map;
    tree::Tree witness = DecodeTree(enc, tmpl, symbols, &node_map);
    tree::NodeId v = tree::kNoNode;
    for (size_t n = 0; n < tmpl.size(); ++n) {
      if (sat.ModelValue(enc.w(static_cast<int32_t>(n)))) {
        v = node_map[n];
        break;
      }
    }
    MD_CHECK(v != tree::kNoNode);
    if (options.verify_witness) {
      MD_RETURN_NOT_OK(VerifyWitness(p, q, witness, v));
    }
    result.verdict = Verdict::kNotContained;
    result.witness_tree = std::move(witness);
    result.witness_node = v;
    result.witness_depth = d;
    FillStats(sat, &result);
    return result;
  }
  result.verdict = Verdict::kContained;
  FillStats(sat, &result);
  return result;
}

util::Result<EquivalenceResult> Equivalent(const core::Program& p,
                                           const core::Program& q,
                                           const ContainmentOptions& options) {
  EquivalenceResult eq;
  MD_ASSIGN_OR_RETURN(eq.forward, Contains(p, q, options));
  if (eq.forward.verdict == Verdict::kNotContained) {
    eq.verdict = Verdict::kNotContained;
    return eq;
  }
  ContainmentOptions back = options;
  if (back.max_conflicts >= 0) {
    back.max_conflicts = std::max<int64_t>(
        0, back.max_conflicts - eq.forward.conflicts);
  }
  MD_ASSIGN_OR_RETURN(eq.backward, Contains(q, p, back));
  if (eq.backward.verdict == Verdict::kNotContained) {
    eq.verdict = Verdict::kNotContained;
  } else if (eq.forward.verdict == Verdict::kContained &&
             eq.backward.verdict == Verdict::kContained) {
    eq.verdict = Verdict::kContained;
  } else {
    eq.verdict = Verdict::kUnknown;
  }
  return eq;
}

}  // namespace mdatalog::analysis
