#include "src/analysis/minimize.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/core/database.h"
#include "src/tmnf/pipeline.h"
#include "src/util/check.h"

namespace mdatalog::analysis {

namespace {

using core::Atom;
using core::PredId;
using core::Program;
using core::Rule;
using core::Term;

/// Binary tree predicates whose second argument necessarily has a parent
/// (it is some node's child): child, firstchild, lastchild, child<k>.
bool IsParentChildPred(const std::string& name) {
  if (name == "child" || name == "firstchild" || name == "lastchild") {
    return true;
  }
  if (name.rfind("child", 0) != 0 || name.size() <= 5) return false;
  for (size_t i = 5; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
  }
  return true;
}

/// Tree-axiom unsatisfiability of a rule body (Section 2 semantics: the
/// root is neither a first nor a last sibling and has no parent; a leaf has
/// no children; a last sibling has no next sibling; every node carries
/// exactly one label). Only extensional tree predicates participate — a
/// user-defined predicate that happens to share a name is intensional and
/// is skipped.
bool BodyUnsatOnTrees(const Program& program, const Rule& rule,
                      const std::vector<bool>& intensional) {
  struct VarFacts {
    std::unordered_set<std::string> labels;
    bool is_root = false, is_leaf = false;
    bool is_lastsibling = false, is_firstsibling = false;
    bool has_parent = false, has_prev = false;
    bool has_child = false, has_next = false;
  };
  std::unordered_map<int32_t, VarFacts> facts;
  const auto& preds = program.preds();
  for (const Atom& a : rule.body) {
    if (intensional[a.pred]) continue;
    const std::string& name = preds.Name(a.pred);
    if (!core::TreeDatabase::IsTreePredicate(
            name, static_cast<int32_t>(a.args.size()))) {
      continue;
    }
    if (a.args.size() == 1 && a.args[0].is_var()) {
      VarFacts& f = facts[a.args[0].value];
      if (name == "root") {
        f.is_root = true;
      } else if (name == "leaf") {
        f.is_leaf = true;
      } else if (name == "lastsibling") {
        f.is_lastsibling = true;
      } else if (name == "firstsibling") {
        f.is_firstsibling = true;
      } else {
        std::string label = core::LabelFromPredName(name);
        if (!label.empty()) f.labels.insert(std::move(label));
      }
    } else if (a.args.size() == 2 && a.args[0].is_var() &&
               a.args[1].is_var()) {
      // nextsibling_tc is reflexive and constrains nothing on its own.
      if (IsParentChildPred(name)) {
        facts[a.args[0].value].has_child = true;
        facts[a.args[1].value].has_parent = true;
      } else if (name == "nextsibling") {
        facts[a.args[0].value].has_next = true;
        facts[a.args[1].value].has_prev = true;
      }
    }
  }
  for (const auto& [var, f] : facts) {
    (void)var;
    if (f.labels.size() >= 2) return true;
    if (f.is_root && (f.is_lastsibling || f.is_firstsibling ||
                      f.has_parent || f.has_prev)) {
      return true;
    }
    if (f.is_leaf && f.has_child) return true;
    if (f.is_lastsibling && f.has_next) return true;
    if (f.is_firstsibling && f.has_prev) return true;
  }
  return false;
}

/// Order-sensitive rule key with variables renamed by first occurrence —
/// catches textual duplicates cheaply; θ-subsumption catches the rest.
std::string RuleKey(const Rule& rule) {
  std::unordered_map<int32_t, int32_t> rename;
  std::string key;
  auto add_atom = [&](const Atom& a) {
    key += 'p';
    key += std::to_string(a.pred);
    key += '(';
    for (const Term& t : a.args) {
      if (t.is_var()) {
        auto [it, inserted] =
            rename.emplace(t.value, static_cast<int32_t>(rename.size()));
        (void)inserted;
        key += 'v';
        key += std::to_string(it->second);
      } else {
        key += 'c';
        key += std::to_string(t.value);
      }
      key += ',';
    }
    key += ')';
  };
  add_atom(rule.head);
  key += ":-";
  for (const Atom& a : rule.body) add_atom(a);
  return key;
}

/// Backtracking matcher for θ-subsumption: maps each subsumer body atom
/// onto some subsumee body atom under a growing substitution. Bodies are
/// small (a handful of literals), so the exponential worst case is moot.
class SubsumptionMatcher {
 public:
  SubsumptionMatcher(const Rule& subsumer, const Rule& subsumee)
      : subsumer_(subsumer), subsumee_(subsumee) {}

  bool Match() {
    theta_.clear();
    if (!UnifyAtom(subsumer_.head, subsumee_.head)) return false;
    return MatchBody(0);
  }

 private:
  bool UnifyTerm(const Term& from, const Term& to,
                 std::vector<std::pair<int32_t, Term>>* trail) {
    if (!from.is_var()) {
      return !to.is_var() && from.value == to.value;
    }
    auto it = theta_.find(from.value);
    if (it != theta_.end()) {
      return it->second.is_var() == to.is_var() &&
             it->second.value == to.value;
    }
    theta_.emplace(from.value, to);
    trail->push_back({from.value, to});
    return true;
  }

  bool UnifyAtom(const Atom& from, const Atom& to) {
    if (from.pred != to.pred || from.args.size() != to.args.size()) {
      return false;
    }
    std::vector<std::pair<int32_t, Term>> trail;
    for (size_t i = 0; i < from.args.size(); ++i) {
      if (!UnifyTerm(from.args[i], to.args[i], &trail)) {
        for (const auto& [v, t] : trail) {
          (void)t;
          theta_.erase(v);
        }
        return false;
      }
    }
    return true;
  }

  bool MatchBody(size_t i) {
    if (i == subsumer_.body.size()) return true;
    for (const Atom& target : subsumee_.body) {
      // Snapshot-and-restore via trail inside UnifyAtom is per-atom; a
      // failed deeper match needs the whole atom's bindings undone, so
      // record the map size and erase newcomers on backtrack.
      std::unordered_map<int32_t, Term> saved = theta_;
      if (UnifyAtom(subsumer_.body[i], target)) {
        if (MatchBody(i + 1)) return true;
      }
      theta_ = std::move(saved);
    }
    return false;
  }

  const Rule& subsumer_;
  const Rule& subsumee_;
  std::unordered_map<int32_t, Term> theta_;
};

/// Builds a program from the predicate table of `base` and the alive subset
/// of `rules`.
Program BuildProgram(const Program& base, const std::vector<Rule>& rules,
                     const std::vector<bool>& alive) {
  Program out;
  out.preds() = base.preds();
  for (size_t i = 0; i < rules.size(); ++i) {
    if (alive[i]) out.AddRule(rules[i]);
  }
  out.set_query_pred(base.query_pred());
  return out;
}

/// Drops redundant body literals: literal k is removable when the full rule
/// θ-subsumes the reduced rule (identical heads), which pins the two rules
/// to the same extent. Greedy to a fixpoint.
int32_t CondenseRule(Rule* rule) {
  int32_t removed = 0;
  bool changed = true;
  while (changed && rule->body.size() > 1) {
    changed = false;
    for (size_t k = 0; k < rule->body.size(); ++k) {
      Rule reduced = *rule;
      reduced.body.erase(reduced.body.begin() + static_cast<int64_t>(k));
      if (Subsumes(*rule, reduced)) {
        *rule = std::move(reduced);
        ++removed;
        changed = true;
        break;
      }
    }
  }
  return removed;
}

util::Status VerifyEquivalentOnRoots(const Program& original,
                                     const Program& minimized,
                                     const std::vector<PredId>& roots,
                                     const ContainmentOptions& copts,
                                     Verdict* combined) {
  *combined = Verdict::kContained;
  for (PredId root : roots) {
    Program a = original;
    Program b = minimized;
    a.set_query_pred(root);
    b.set_query_pred(root);
    MD_ASSIGN_OR_RETURN(Program ta, tmnf::ToTmnf(a));
    MD_ASSIGN_OR_RETURN(Program tb, tmnf::ToTmnf(b));
    MD_ASSIGN_OR_RETURN(EquivalenceResult eq, Equivalent(ta, tb, copts));
    if (eq.verdict == Verdict::kNotContained) {
      return util::Status::Internal(
          "minimizer bug: bounded containment refuted equivalence on root "
          "predicate '" +
          original.preds().Name(root) + "'");
    }
    if (eq.verdict == Verdict::kUnknown) *combined = Verdict::kUnknown;
  }
  return util::Status::OK();
}

}  // namespace

const char* RuleFateName(RuleFate fate) {
  switch (fate) {
    case RuleFate::kKept:
      return "kept";
    case RuleFate::kUnsatBody:
      return "unsat-body";
    case RuleFate::kUnderivableBody:
      return "underivable-body";
    case RuleFate::kUnreachable:
      return "unreachable";
    case RuleFate::kDuplicate:
      return "duplicate";
    case RuleFate::kSubsumed:
      return "subsumed";
  }
  return "unknown";
}

bool Subsumes(const Rule& subsumer, const Rule& subsumee) {
  if (subsumer.head.pred != subsumee.head.pred) return false;
  return SubsumptionMatcher(subsumer, subsumee).Match();
}

util::Result<MinimizeResult> Minimize(const Program& program,
                                      const MinimizeOptions& options) {
  const size_t n = program.rules().size();
  std::vector<Rule> rules = program.rules();
  std::vector<RuleFate> fates(n, RuleFate::kKept);
  std::vector<int32_t> literals_removed(n, 0);
  std::vector<bool> alive(n, true);
  // The intensional mask of the *input*: a predicate that loses its rules
  // during minimization stays logically intensional (empty extent), never
  // a tree-EDB predicate.
  const std::vector<bool> intensional = program.IntensionalMask();

  std::vector<PredId> roots = options.roots;
  if (roots.empty() && program.query_pred() >= 0) {
    roots.push_back(program.query_pred());
  }

  auto kill = [&](size_t i, RuleFate why) {
    alive[i] = false;
    fates[i] = why;
  };

  bool changed = true;
  while (changed) {
    changed = false;

    // 1. Tree-axiom unsatisfiable bodies.
    for (size_t i = 0; i < n; ++i) {
      if (alive[i] && BodyUnsatOnTrees(program, rules[i], intensional)) {
        kill(i, RuleFate::kUnsatBody);
        changed = true;
      }
    }

    // 2. Underivable bodies — over the current rule set, so removing a
    // predicate's last rule cascades.
    Program current = BuildProgram(program, rules, alive);
    std::vector<bool> derivable = core::DerivablePreds(current);
    // Predicates intensional in the input but extensional in `current`
    // (all rules gone) are empty, not EDB.
    for (size_t p = 0; p < derivable.size(); ++p) {
      if (intensional[p]) {
        bool has_rule = false;
        for (size_t i = 0; i < n && !has_rule; ++i) {
          has_rule = alive[i] && rules[i].head.pred == static_cast<PredId>(p);
        }
        if (!has_rule) derivable[p] = false;
      }
    }
    for (size_t i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      for (const Atom& a : rules[i].body) {
        if (!derivable[a.pred]) {
          kill(i, RuleFate::kUnderivableBody);
          changed = true;
          break;
        }
      }
    }

    // 3. Heads that no root predicate depends on.
    if (options.remove_unreachable && !roots.empty()) {
      current = BuildProgram(program, rules, alive);
      std::vector<bool> reachable = core::ReachablePreds(current, roots);
      for (size_t i = 0; i < n; ++i) {
        if (alive[i] && !reachable[rules[i].head.pred]) {
          kill(i, RuleFate::kUnreachable);
          changed = true;
        }
      }
    }

    // 4. Redundant literals within each surviving rule.
    if (options.condense_literals) {
      for (size_t i = 0; i < n; ++i) {
        if (!alive[i]) continue;
        int32_t removed = CondenseRule(&rules[i]);
        if (removed > 0) {
          literals_removed[i] += removed;
          changed = true;
        }
      }
    }

    // 5. Exact duplicates (first occurrence wins).
    {
      std::unordered_set<std::string> seen;
      for (size_t i = 0; i < n; ++i) {
        if (!alive[i]) continue;
        if (!seen.insert(RuleKey(rules[i])).second) {
          kill(i, RuleFate::kDuplicate);
          changed = true;
        }
      }
    }

    // 6. θ-subsumed rules. Earlier rules win ties, so two rules that
    // subsume each other (renamings) keep exactly one.
    if (options.remove_subsumed) {
      for (size_t i = 0; i < n; ++i) {
        if (!alive[i]) continue;
        for (size_t j = 0; j < n; ++j) {
          if (i == j || !alive[j]) continue;
          if (rules[i].head.pred != rules[j].head.pred) continue;
          if (Subsumes(rules[i], rules[j])) {
            kill(j, RuleFate::kSubsumed);
            changed = true;
          }
        }
      }
    }
  }

  MinimizeResult result;
  result.program = BuildProgram(program, rules, alive);
  result.fates = std::move(fates);
  result.literals_removed = std::move(literals_removed);

  if (options.verify) {
    if (roots.empty()) {
      return util::Status::InvalidArgument(
          "Minimize verification needs a query predicate or explicit roots");
    }
    MD_RETURN_NOT_OK(VerifyEquivalentOnRoots(program, result.program, roots,
                                             options.verify_options,
                                             &result.verified));
  }
  return result;
}

}  // namespace mdatalog::analysis
