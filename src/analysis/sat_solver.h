#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <vector>

/// \file sat_solver.h
/// A self-contained incremental CDCL-lite SAT core for the wrapper
/// static-analysis subsystem (containment/equivalence, containment.h).
///
/// Scope: exactly what the bounded-containment encodings need —
///   * incremental clause addition between Solve() calls,
///   * assumption-based solving (the per-depth-layer selectors of the
///     tree-template unfolding are passed as assumptions, so one encoding
///     serves every depth without re-encoding),
///   * a conflict budget so an analysis request can never wedge a worker.
///
/// The implementation is a classical two-watched-literal CDCL loop with
/// first-UIP clause learning, EVSIDS-style variable activities, phase
/// saving and Luby restarts. No clause-database reduction and no
/// preprocessing: the analysis encodings are propagation-heavy and modest
/// (10^4–10^6 clauses), and the conflict budget bounds the worst case.
/// No external dependencies.

namespace mdatalog::analysis {

/// A literal in DIMACS convention: +v means variable v is true, -v means
/// variable v is false. Variables are 1-based. 0 is not a literal.
using Lit = int32_t;

class SatSolver {
 public:
  enum class Outcome {
    kSat,      ///< satisfying assignment found (read via ModelValue)
    kUnsat,    ///< unsatisfiable under the given assumptions
    kUnknown,  ///< conflict budget exhausted before a verdict
  };

  SatSolver();

  /// Allocates a fresh variable, returns its 1-based index.
  Lit NewVar();
  int32_t num_vars() const { return num_vars_; }

  /// Adds a clause (disjunction of literals). Tautologies are dropped,
  /// duplicate literals merged. Adding the empty clause (or deriving one)
  /// makes the solver terminally unsatisfiable. Must not be called while a
  /// Solve() is in progress (the solver is single-threaded by design).
  void AddClause(std::vector<Lit> lits);
  /// Convenience overloads for the encoder's common clause shapes.
  void AddUnit(Lit a) { AddClause({a}); }
  void AddBinary(Lit a, Lit b) { AddClause({a, b}); }
  void AddTernary(Lit a, Lit b, Lit c) { AddClause({a, b, c}); }

  /// Solves the current formula under `assumptions` (literals forced true
  /// for this call only). `max_conflicts` < 0 means unbounded. Learned
  /// clauses persist across calls — the incremental-solving contract.
  Outcome Solve(const std::vector<Lit>& assumptions = {},
                int64_t max_conflicts = -1);

  /// Value of `lit` in the model of the last kSat Solve().
  bool ModelValue(Lit lit) const;

  /// True once the clause set itself (no assumptions) is known unsatisfiable.
  bool terminally_unsat() const { return !ok_; }

  int64_t conflicts() const { return stats_conflicts_; }
  int64_t decisions() const { return stats_decisions_; }
  int64_t propagations() const { return stats_propagations_; }
  int64_t num_clauses() const { return static_cast<int64_t>(clauses_.size()); }

 private:
  // Internal literal index: variable v (1-based) with sign s (true =
  // negated) maps to 2*(v-1)+s. Watch lists are indexed by this.
  static int32_t Index(Lit l) {
    return 2 * (std::abs(l) - 1) + (l < 0 ? 1 : 0);
  }
  static Lit Negate(Lit l) { return -l; }

  enum : int8_t { kFalse = 0, kTrue = 1, kUndef = -1 };
  int8_t ValueOf(Lit l) const {
    int8_t a = assigns_[std::abs(l)];
    if (a == kUndef) return kUndef;
    return (l > 0) == (a == kTrue) ? kTrue : kFalse;
  }

  struct Watcher {
    int32_t clause;  // index into clauses_
    Lit blocker;     // cached literal; clause already satisfied if true
  };

  void Enqueue(Lit l, int32_t reason);
  int32_t Propagate();  // returns conflicting clause index or -1
  void Analyze(int32_t confl, std::vector<Lit>* learned, int32_t* bt_level);
  void CancelUntil(int32_t level);
  Lit PickBranchLit();
  void BumpVar(int32_t var);
  void DecayActivities();
  void WatchClause(int32_t ci);

  // Activity-ordered max-heap of variables (indices 1..num_vars_).
  void HeapInsert(int32_t var);
  void HeapSiftUp(size_t i);
  void HeapSiftDown(size_t i);
  int32_t HeapPop();

  int32_t num_vars_ = 0;
  bool ok_ = true;

  std::vector<std::vector<Lit>> clauses_;      // problem + learned clauses
  std::vector<std::vector<Watcher>> watches_;  // indexed by literal Index()
  std::vector<int8_t> assigns_;                // indexed by var, kUndef/…
  std::vector<int8_t> phase_;                  // saved polarity per var
  std::vector<int32_t> level_;                 // decision level per var
  std::vector<int32_t> reason_;                // clause index or -1, per var
  std::vector<Lit> trail_;
  std::vector<int32_t> trail_lim_;  // trail index at each decision level
  size_t qhead_ = 0;

  std::vector<double> activity_;  // per var
  double var_inc_ = 1.0;
  std::vector<int32_t> heap_;          // binary max-heap of vars
  std::vector<int32_t> heap_pos_;      // var -> heap index, -1 if absent
  std::vector<int8_t> seen_;           // scratch for Analyze

  std::vector<int8_t> model_;  // assigns snapshot of the last SAT solve

  int64_t stats_conflicts_ = 0;
  int64_t stats_decisions_ = 0;
  int64_t stats_propagations_ = 0;
};

}  // namespace mdatalog::analysis
