#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/ast.h"
#include "src/util/result.h"

/// \file tmnf_view.h
/// A normalized, index-friendly view of a TMNF program over the unranked
/// tree schema τ_ur (Definition 5.1) — the input representation of the
/// SAT-backed containment encoder (containment.h).
///
/// TMNF rules have exactly three shapes; the view classifies each rule and
/// resolves every predicate occurrence into either a τ_ur EDB symbol or a
/// dense local IDB index, so the encoder never touches strings or the
/// PredicateTable on its hot path:
///
///   kCopy:  p(x) ← p0(x).                (p0 unary EDB or IDB)
///   kStep:  p(x) ← p0(x0), B(x0, x).     (B ∈ {firstchild, nextsibling},
///                                         either orientation)
///   kAnd:   p(x) ← p0(x), p1(x).

namespace mdatalog::analysis {

/// The τ_ur unary EDB symbols a TMNF body may test. Labels carry the label
/// index into TmnfView::labels.
struct EdbRef {
  enum class Kind : uint8_t { kRoot, kLeaf, kLastSibling, kFirstSibling,
                              kLabel };
  Kind kind = Kind::kRoot;
  int32_t label = -1;  ///< index into TmnfView::labels when kind == kLabel
};

/// One unary body operand: an EDB test or an IDB predicate (local index).
struct OperandRef {
  bool is_edb = false;
  EdbRef edb;       ///< valid when is_edb
  int32_t idb = -1; ///< local IDB index when !is_edb
};

/// Which structural edge a kStep rule walks, seen from the *head* node v:
/// the support node u is the body node x0.
enum class StepDir : uint8_t {
  kFromParent,       ///< firstchild(x0, x): u = parent(v), v is a first child
  kFromFirstChild,   ///< firstchild(x, x0): u = firstchild(v)
  kFromPrevSibling,  ///< nextsibling(x0, x): u = prevsibling(v)
  kFromNextSibling,  ///< nextsibling(x, x0): u = nextsibling(v)
};

struct TmnfRuleView {
  enum class Kind : uint8_t { kCopy, kStep, kAnd };
  Kind kind = Kind::kCopy;
  int32_t head = -1;  ///< local IDB index
  OperandRef op0;     ///< kCopy/kStep: the body predicate; kAnd: first
  OperandRef op1;     ///< kAnd only: second conjunct
  StepDir dir = StepDir::kFromParent;  ///< kStep only
  int32_t rule_index = -1;  ///< index into the source program's rules()
};

/// The normalized program: IDB predicates densely renumbered 0..num_idb-1,
/// label alphabet collected, rules classified. Built once per Contains call.
struct TmnfView {
  std::vector<TmnfRuleView> rules;
  std::vector<core::PredId> idb_preds;   ///< local IDB index -> PredId
  std::vector<std::string> labels;       ///< label index -> label string
  int32_t query = -1;                    ///< local IDB index of the query pred

  int32_t num_idb() const { return static_cast<int32_t>(idb_preds.size()); }

  /// Parses `program` (TMNF over τ_ur, unary query predicate that is
  /// intensional — or has no rules, in which case the query extent is empty
  /// and `query` is still materialized as an IDB index with no rules).
  /// InvalidArgument when a rule falls outside the three TMNF shapes or uses
  /// a predicate outside τ_ur ∪ IDB.
  static util::Result<TmnfView> Parse(const core::Program& program);

  /// Rebases this view onto the shared `alphabet`: labels of this view not
  /// yet in `alphabet` are appended, every kLabel EdbRef is remapped to its
  /// index in `alphabet`, and `labels` becomes `alphabet`. Calling this on
  /// both views (same alphabet vector) gives them one label index space —
  /// required before encoding them against each other.
  void RelabelInto(std::vector<std::string>* alphabet);
};

}  // namespace mdatalog::analysis
