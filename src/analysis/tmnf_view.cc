#include "src/analysis/tmnf_view.h"

#include <unordered_map>

#include "src/core/database.h"

namespace mdatalog::analysis {

namespace {

using core::Atom;
using core::PredId;
using core::Program;
using core::Rule;
using core::Term;

}  // namespace

void TmnfView::RelabelInto(std::vector<std::string>* alphabet) {
  std::vector<int32_t> remap(labels.size(), -1);
  for (size_t i = 0; i < labels.size(); ++i) {
    for (size_t k = 0; k < alphabet->size(); ++k) {
      if ((*alphabet)[k] == labels[i]) {
        remap[i] = static_cast<int32_t>(k);
        break;
      }
    }
    if (remap[i] < 0) {
      remap[i] = static_cast<int32_t>(alphabet->size());
      alphabet->push_back(labels[i]);
    }
  }
  auto fix = [&](OperandRef& op) {
    if (op.is_edb && op.edb.kind == EdbRef::Kind::kLabel) {
      op.edb.label = remap[op.edb.label];
    }
  };
  for (TmnfRuleView& r : rules) {
    fix(r.op0);
    fix(r.op1);
  }
  labels = *alphabet;
}

util::Result<TmnfView> TmnfView::Parse(const Program& program) {
  if (program.query_pred() < 0) {
    return util::Status::InvalidArgument(
        "containment analysis needs a query predicate");
  }
  const auto& preds = program.preds();
  std::vector<bool> intensional = program.IntensionalMask();

  TmnfView view;
  std::unordered_map<PredId, int32_t> idb_index;
  std::unordered_map<std::string, int32_t> label_index;
  auto idb_of = [&](PredId p) {
    auto it = idb_index.find(p);
    if (it != idb_index.end()) return it->second;
    int32_t id = static_cast<int32_t>(view.idb_preds.size());
    idb_index.emplace(p, id);
    view.idb_preds.push_back(p);
    return id;
  };

  // Resolves a unary body predicate into an EDB symbol or IDB index.
  auto resolve_unary = [&](PredId p) -> util::Result<OperandRef> {
    OperandRef op;
    if (intensional[p]) {
      op.is_edb = false;
      op.idb = idb_of(p);
      return op;
    }
    const std::string& name = preds.Name(p);
    op.is_edb = true;
    if (name == "root") {
      op.edb.kind = EdbRef::Kind::kRoot;
    } else if (name == "leaf") {
      op.edb.kind = EdbRef::Kind::kLeaf;
    } else if (name == "lastsibling") {
      op.edb.kind = EdbRef::Kind::kLastSibling;
    } else if (name == "firstsibling") {
      op.edb.kind = EdbRef::Kind::kFirstSibling;
    } else {
      std::string label = core::LabelFromPredName(name);
      if (label.empty()) {
        if (core::TreeDatabase::IsTreePredicate(name, 1)) {
          return util::Status::InvalidArgument(
              "predicate '" + name + "' is outside the τ_ur unary schema "
              "(root/leaf/lastsibling/firstsibling/label_*) supported by the "
              "encoder");
        }
        // A non-schema predicate with no rules: provably empty — model it
        // as an IDB predicate with no supporting rules.
        op.is_edb = false;
        op.idb = idb_of(p);
        return op;
      }
      op.edb.kind = EdbRef::Kind::kLabel;
      auto it = label_index.find(label);
      if (it == label_index.end()) {
        it = label_index
                 .emplace(label, static_cast<int32_t>(view.labels.size()))
                 .first;
        view.labels.push_back(label);
      }
      op.edb.label = it->second;
    }
    return op;
  };

  const auto& rules = program.rules();
  for (size_t ri = 0; ri < rules.size(); ++ri) {
    const Rule& r = rules[ri];
    auto fail = [&](const std::string& why) {
      return util::Status::InvalidArgument(
          "rule " + std::to_string(ri) + " is not TMNF over τ_ur (" + why +
          "): " + core::ToString(program, r));
    };
    if (r.head.args.size() != 1 || !r.head.args[0].is_var()) {
      return fail("head is not a unary variable atom");
    }
    const int32_t head_var = r.head.args[0].value;
    TmnfRuleView rv;
    rv.head = idb_of(r.head.pred);
    rv.rule_index = static_cast<int32_t>(ri);

    // Split body into unary atoms and binary (structural) atoms.
    std::vector<const Atom*> unary, binary;
    for (const Atom& a : r.body) {
      for (const Term& t : a.args) {
        if (!t.is_var()) return fail("constants are not supported");
      }
      if (a.args.size() == 1) {
        unary.push_back(&a);
      } else if (a.args.size() == 2) {
        binary.push_back(&a);
      } else {
        return fail("body atom of arity " + std::to_string(a.args.size()));
      }
    }

    if (binary.empty()) {
      // Form (1) or (3): all unary atoms sit on the head variable.
      for (const Atom* a : unary) {
        if (a->args[0].value != head_var) {
          return fail("unary body atom off the head variable");
        }
      }
      if (unary.size() == 1) {
        rv.kind = TmnfRuleView::Kind::kCopy;
        MD_ASSIGN_OR_RETURN(rv.op0, resolve_unary(unary[0]->pred));
      } else if (unary.size() == 2) {
        rv.kind = TmnfRuleView::Kind::kAnd;
        MD_ASSIGN_OR_RETURN(rv.op0, resolve_unary(unary[0]->pred));
        MD_ASSIGN_OR_RETURN(rv.op1, resolve_unary(unary[1]->pred));
      } else {
        return fail("expected 1 or 2 unary body atoms");
      }
    } else if (binary.size() == 1 && unary.size() == 1) {
      // Form (2): p(x) ← p0(x0), B(x0, x) with B = R or R⁻¹.
      const Atom* b = binary[0];
      const std::string& bname = preds.Name(b->pred);
      if (intensional[b->pred] ||
          (bname != "firstchild" && bname != "nextsibling")) {
        return fail("binary atom is not firstchild/nextsibling");
      }
      const int32_t a0 = b->args[0].value, a1 = b->args[1].value;
      const int32_t body_var = unary[0]->args[0].value;
      int32_t support_var;
      if (a1 == head_var && a0 != head_var) {
        support_var = a0;  // B(x0, x)
        rv.dir = bname == "firstchild" ? StepDir::kFromParent
                                       : StepDir::kFromPrevSibling;
      } else if (a0 == head_var && a1 != head_var) {
        support_var = a1;  // B(x, x0): the inverse orientation
        rv.dir = bname == "firstchild" ? StepDir::kFromFirstChild
                                       : StepDir::kFromNextSibling;
      } else {
        return fail("binary atom does not link head to a fresh variable");
      }
      if (body_var != support_var) {
        return fail("unary body atom off the step's source variable");
      }
      rv.kind = TmnfRuleView::Kind::kStep;
      MD_ASSIGN_OR_RETURN(rv.op0, resolve_unary(unary[0]->pred));
    } else {
      return fail("unsupported body shape");
    }
    view.rules.push_back(rv);
  }

  // The query predicate: a query with no rules still gets an IDB slot — with
  // no supporting rules its extent is empty, which is exactly the semantics
  // of an underivable pattern. A τ_ur schema predicate as the query would
  // have a real (non-IDB) extent; reject that rather than silently treating
  // it as empty.
  const PredId q = program.query_pred();
  if (!intensional[q] &&
      core::TreeDatabase::IsTreePredicate(preds.Name(q), preds.Arity(q))) {
    return util::Status::InvalidArgument(
        "query predicate '" + preds.Name(q) + "' is a τ_ur schema predicate");
  }
  view.query = idb_of(q);
  return view;
}

}  // namespace mdatalog::analysis
