#include "src/analysis/canonical.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "src/analysis/minimize.h"
#include "src/elog/to_datalog.h"
#include "src/util/hash.h"

namespace mdatalog::analysis {

namespace {

using core::Atom;
using core::PredId;
using core::Program;
using core::Rule;
using core::Term;

/// Past this many body literals, permutation search (k!) gives way to a
/// deterministic heuristic sort. 7! = 5040 renderings, still cheap.
constexpr size_t kMaxPermutationBody = 7;

/// Renders head + body (in `order`) with variables renamed by first
/// occurrence. Predicate names keep the key stable across intern orders.
std::string Render(const Program& program, const Rule& rule,
                   const std::vector<int32_t>& order) {
  std::unordered_map<int32_t, int32_t> rename;
  std::string out;
  auto add_atom = [&](const Atom& a) {
    out += program.preds().Name(a.pred);
    out += '(';
    bool first = true;
    for (const Term& t : a.args) {
      if (!first) out += ',';
      first = false;
      if (t.is_var()) {
        auto [it, inserted] =
            rename.emplace(t.value, static_cast<int32_t>(rename.size()));
        (void)inserted;
        out += '_';
        out += std::to_string(it->second);
      } else {
        out += std::to_string(t.value);
      }
    }
    out += ')';
  };
  add_atom(rule.head);
  out += ":-";
  for (size_t k = 0; k < order.size(); ++k) {
    if (k > 0) out += ',';
    add_atom(rule.body[order[k]]);
  }
  out += '.';
  return out;
}

/// Variable-blind sort key for one body atom — the heuristic pre-order for
/// large bodies, and a symmetry-breaking starting point otherwise.
std::string AtomShape(const Program& program, const Atom& a) {
  std::string s = program.preds().Name(a.pred);
  s += '/';
  for (const Term& t : a.args) s += t.is_var() ? 'v' : 'c';
  return s;
}

}  // namespace

std::string CanonicalRuleString(const Program& program, const Rule& rule) {
  std::vector<int32_t> order(rule.body.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return AtomShape(program, rule.body[a]) < AtomShape(program, rule.body[b]);
  });
  if (rule.body.size() > kMaxPermutationBody) {
    return Render(program, rule, order);
  }
  // Lexicographically smallest rendering over all body permutations. Sorted
  // start + next_permutation enumerates every order exactly once.
  std::sort(order.begin(), order.end());
  std::string best;
  do {
    std::string r = Render(program, rule, order);
    if (best.empty() || r < best) best = std::move(r);
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

std::string CanonicalProgramText(const Program& program) {
  std::vector<std::string> lines;
  lines.reserve(program.rules().size());
  for (const Rule& r : program.rules()) {
    lines.push_back(CanonicalRuleString(program, r));
  }
  std::sort(lines.begin(), lines.end());
  lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

util::Result<WrapperKey> CanonicalWrapperKey(
    const elog::ElogProgram& program,
    const std::vector<std::string>& extraction_patterns,
    const CanonicalKeyOptions& options) {
  WrapperKey key;
  auto finish = [&](std::string text) {
    key.text = std::move(text);
    key.text += '\x1f';
    for (const std::string& p : extraction_patterns) {
      key.text += p;
      key.text += '\x1e';
    }
    key.fingerprint = util::HashBytes(key.text);
    return key;
  };

  if (program.UsesDeltaBuiltins()) {
    // Δ builtins are outside monadic datalog (Theorem 6.6) — no sound
    // normalization available; the wrapper's own text is the key.
    key.canonicalized = false;
    return finish(elog::ToString(program));
  }

  MD_ASSIGN_OR_RETURN(Program datalog, elog::ElogToDatalog(program));
  key.canonicalized = true;
  if (!options.minimize) {
    return finish(CanonicalProgramText(datalog));
  }

  MinimizeOptions mopts;
  for (const std::string& p : extraction_patterns) {
    PredId id = datalog.preds().Find(p == "root" ? p : "pat_" + p);
    if (id >= 0) mopts.roots.push_back(id);
  }
  if (mopts.roots.empty()) {
    // No extraction pattern maps to a predicate: nothing is observable, so
    // reachability would delete everything. Keep every head a root instead.
    mopts.remove_unreachable = false;
  }
  MD_ASSIGN_OR_RETURN(MinimizeResult minimized, Minimize(datalog, mopts));
  return finish(CanonicalProgramText(minimized.program));
}

}  // namespace mdatalog::analysis
