#include "src/caterpillar/containment.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/caterpillar/eval.h"
#include "src/caterpillar/nfa.h"
#include "src/tree/generator.h"

namespace mdatalog::caterpillar {

namespace {

/// An atomic caterpillar move, used as a letter.
struct Letter {
  bool is_test;
  std::string name;
  bool inverted;
  auto operator<=>(const Letter&) const = default;
};

using StateSet = std::vector<int32_t>;  // sorted

StateSet EpsClosure(const CatNfa& nfa, StateSet seed) {
  std::vector<bool> in(nfa.NumStates(), false);
  std::vector<int32_t> stack = seed;
  for (int32_t s : seed) in[s] = true;
  while (!stack.empty()) {
    int32_t s = stack.back();
    stack.pop_back();
    for (const NfaEdge& e : nfa.states[s]) {
      if (e.type == NfaEdge::Type::kEps && !in[e.target]) {
        in[e.target] = true;
        stack.push_back(e.target);
      }
    }
  }
  StateSet out;
  for (int32_t s = 0; s < nfa.NumStates(); ++s) {
    if (in[s]) out.push_back(s);
  }
  return out;
}

Letter LetterOf(const NfaEdge& e) {
  return Letter{e.type == NfaEdge::Type::kTest, e.name,
                e.type == NfaEdge::Type::kRel && e.inverted};
}

StateSet Step(const CatNfa& nfa, const StateSet& from, const Letter& l) {
  std::set<int32_t> next;
  for (int32_t s : from) {
    for (const NfaEdge& e : nfa.states[s]) {
      if (e.type == NfaEdge::Type::kEps) continue;
      if (LetterOf(e) == l) next.insert(e.target);
    }
  }
  return EpsClosure(nfa, StateSet(next.begin(), next.end()));
}

bool ContainsAccept(const StateSet& s, int32_t accept) {
  return std::binary_search(s.begin(), s.end(), accept);
}

}  // namespace

util::Result<bool> WordLanguageContained(const ExprPtr& e1, const ExprPtr& e2,
                                         int64_t max_states) {
  CatNfa n1 = CompileToNfa(e1);
  CatNfa n2 = CompileToNfa(e2);

  // Letters of n1 suffice: words of L(E1) only use them.
  std::set<Letter> alphabet;
  for (const auto& st : n1.states) {
    for (const NfaEdge& e : st) {
      if (e.type != NfaEdge::Type::kEps) alphabet.insert(LetterOf(e));
    }
  }

  // Product search: (ε-closed state set of n1, ε-closed state set of n2).
  // n1 is kept as a set too (cheaper than determinizing it separately).
  using Config = std::pair<StateSet, StateSet>;
  std::set<Config> visited;
  std::vector<Config> stack;
  Config start = {EpsClosure(n1, {n1.start}), EpsClosure(n2, {n2.start})};
  visited.insert(start);
  stack.push_back(start);

  while (!stack.empty()) {
    if (static_cast<int64_t>(visited.size()) > max_states) {
      return util::Status::ResourceExhausted(
          "containment product exceeded max_states");
    }
    auto [s1, s2] = std::move(stack.back());
    stack.pop_back();
    if (ContainsAccept(s1, n1.accept) && !ContainsAccept(s2, n2.accept)) {
      return false;  // a word of L(E1) \ L(E2)
    }
    for (const Letter& l : alphabet) {
      StateSet t1 = Step(n1, s1, l);
      if (t1.empty()) continue;
      StateSet t2 = Step(n2, s2, l);
      Config next = {std::move(t1), std::move(t2)};
      if (visited.insert(next).second) stack.push_back(next);
    }
  }
  return true;
}

util::Result<ContainmentWitness> FindContainmentCounterexample(
    const ExprPtr& e1, const ExprPtr& e2, util::Rng& rng, int32_t trials,
    int32_t max_nodes) {
  CatNfa n1 = CompileToNfa(e1);
  CatNfa n2 = CompileToNfa(e2);
  for (int32_t trial = 0; trial < trials; ++trial) {
    tree::Tree t = tree::RandomTree(
        rng, 1 + static_cast<int32_t>(rng.Below(max_nodes)), {"a", "b", "c"});
    MD_ASSIGN_OR_RETURN(std::vector<tree::NodeId> sel1,
                        EvalImage(t, n1, {t.root()}));
    if (sel1.empty()) continue;
    MD_ASSIGN_OR_RETURN(std::vector<tree::NodeId> sel2,
                        EvalImage(t, n2, {t.root()}));
    for (tree::NodeId n : sel1) {
      if (!std::binary_search(sel2.begin(), sel2.end(), n)) {
        return ContainmentWitness{std::move(t), n};
      }
    }
  }
  return util::Status::NotFound("no counterexample found");
}

}  // namespace mdatalog::caterpillar
