#include "src/caterpillar/nfa.h"

#include "src/util/check.h"

namespace mdatalog::caterpillar {

namespace {

class ThompsonBuilder {
 public:
  CatNfa Build(const ExprPtr& e) {
    auto [s, a] = Fragment(e);
    nfa_.start = s;
    nfa_.accept = a;
    return std::move(nfa_);
  }

 private:
  int32_t NewState() {
    nfa_.states.emplace_back();
    return static_cast<int32_t>(nfa_.states.size()) - 1;
  }

  void AddEdge(int32_t from, NfaEdge edge) {
    nfa_.states[from].push_back(std::move(edge));
  }

  std::pair<int32_t, int32_t> Fragment(const ExprPtr& e) {
    switch (e->kind) {
      case Expr::Kind::kEpsilon: {
        int32_t s = NewState(), a = NewState();
        AddEdge(s, {NfaEdge::Type::kEps, a, "", false});
        return {s, a};
      }
      case Expr::Kind::kRel: {
        int32_t s = NewState(), a = NewState();
        AddEdge(s, {NfaEdge::Type::kRel, a, e->name, e->inverted});
        return {s, a};
      }
      case Expr::Kind::kTest: {
        int32_t s = NewState(), a = NewState();
        AddEdge(s, {NfaEdge::Type::kTest, a, e->name, false});
        return {s, a};
      }
      case Expr::Kind::kConcat: {
        std::pair<int32_t, int32_t> first = Fragment(e->children[0]);
        int32_t start = first.first;
        int32_t cur = first.second;
        for (size_t i = 1; i < e->children.size(); ++i) {
          auto [s, a] = Fragment(e->children[i]);
          AddEdge(cur, {NfaEdge::Type::kEps, s, "", false});
          cur = a;
        }
        return {start, cur};
      }
      case Expr::Kind::kUnion: {
        int32_t s = NewState(), a = NewState();
        for (const ExprPtr& c : e->children) {
          auto [cs, ca] = Fragment(c);
          AddEdge(s, {NfaEdge::Type::kEps, cs, "", false});
          AddEdge(ca, {NfaEdge::Type::kEps, a, "", false});
        }
        return {s, a};
      }
      case Expr::Kind::kStar: {
        int32_t s = NewState(), a = NewState();
        auto [cs, ca] = Fragment(e->children[0]);
        AddEdge(s, {NfaEdge::Type::kEps, cs, "", false});
        AddEdge(s, {NfaEdge::Type::kEps, a, "", false});
        AddEdge(ca, {NfaEdge::Type::kEps, cs, "", false});
        AddEdge(ca, {NfaEdge::Type::kEps, a, "", false});
        return {s, a};
      }
      case Expr::Kind::kInverse:
        MD_CHECK(false);  // removed by PushDownInverses
    }
    MD_CHECK(false);
    return {0, 0};
  }

  CatNfa nfa_;
};

}  // namespace

CatNfa CompileToNfa(const ExprPtr& e, bool expand_derived) {
  ExprPtr prepared = expand_derived ? ExpandDerivedRels(e) : e;
  prepared = PushDownInverses(prepared);
  return ThompsonBuilder().Build(prepared);
}

}  // namespace mdatalog::caterpillar
