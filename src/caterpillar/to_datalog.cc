#include "src/caterpillar/to_datalog.h"

#include "src/caterpillar/nfa.h"
#include "src/core/database.h"

namespace mdatalog::caterpillar {

util::Result<core::PredId> AppendCaterpillarRules(
    core::Program* program, core::PredId source_pred, const ExprPtr& e,
    const std::string& prefix, const CaterpillarDatalogOptions& options) {
  using core::Atom;
  using core::MakeAtom;
  using core::MakeRule;
  using core::PredId;
  using core::Term;

  if (program->preds().Arity(source_pred) != 1) {
    return util::Status::InvalidArgument(
        "caterpillar source predicate must be unary");
  }
  CatNfa nfa = CompileToNfa(e, /*expand_derived=*/!options.ranked);

  std::vector<PredId> state_pred(nfa.NumStates());
  for (int32_t s = 0; s < nfa.NumStates(); ++s) {
    MD_ASSIGN_OR_RETURN(
        state_pred[s],
        program->preds().Intern(prefix + "_q" + std::to_string(s), 1));
  }
  MD_ASSIGN_OR_RETURN(PredId result,
                      program->preds().Intern(prefix + "_res", 1));

  Term x = Term::Var(0), x0 = Term::Var(1);

  // q_start(x) ← p(x).
  program->AddRule(MakeRule(MakeAtom(state_pred[nfa.start], {x}),
                            {MakeAtom(source_pred, {x})}, {"x"}));

  for (int32_t s = 0; s < nfa.NumStates(); ++s) {
    for (const NfaEdge& edge : nfa.states[s]) {
      switch (edge.type) {
        case NfaEdge::Type::kEps:
          program->AddRule(MakeRule(MakeAtom(state_pred[edge.target], {x}),
                                    {MakeAtom(state_pred[s], {x})}, {"x"}));
          break;
        case NfaEdge::Type::kTest: {
          MD_ASSIGN_OR_RETURN(PredId test,
                              program->preds().Intern(edge.name, 1));
          program->AddRule(MakeRule(
              MakeAtom(state_pred[edge.target], {x}),
              {MakeAtom(state_pred[s], {x}), MakeAtom(test, {x})}, {"x"}));
          break;
        }
        case NfaEdge::Type::kRel: {
          bool admissible =
              options.ranked
                  ? core::ChildKIndex(edge.name) >= 1
                  : (edge.name == "firstchild" || edge.name == "nextsibling");
          if (!admissible) {
            return util::Status::InvalidArgument(
                "caterpillar-to-datalog supports only τ_ur relations after "
                "expansion; got '" +
                edge.name + "'");
          }
          MD_ASSIGN_OR_RETURN(PredId rel,
                              program->preds().Intern(edge.name, 2));
          Atom rel_atom = edge.inverted ? MakeAtom(rel, {x, x0})
                                        : MakeAtom(rel, {x0, x});
          program->AddRule(MakeRule(
              MakeAtom(state_pred[edge.target], {x}),
              {MakeAtom(state_pred[s], {x0}), std::move(rel_atom)},
              {"x", "x0"}));
          break;
        }
      }
    }
  }

  // result(x) ← q_accept(x).
  program->AddRule(MakeRule(MakeAtom(result, {x}),
                            {MakeAtom(state_pred[nfa.accept], {x})}, {"x"}));
  return result;
}

}  // namespace mdatalog::caterpillar
