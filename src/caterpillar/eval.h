#pragma once

#include <vector>

#include "src/caterpillar/nfa.h"
#include "src/tree/tree.h"
#include "src/util/result.h"

/// \file eval.h
/// Evaluation of caterpillar expressions over trees.
///
/// The production evaluator runs a BFS over the product of the expression's
/// NFA with the tree: O(|NFA| · |dom|) states, each expanded through
/// constant-degree moves (child edges contribute amortized O(|dom|) per NFA
/// state). The reference evaluator implements the denotational semantics
/// [[E]] of Section 2 literally and is used to cross-check the NFA evaluator
/// in property tests.

namespace mdatalog::caterpillar {

/// Supported binary relation names: firstchild, nextsibling, child,
/// lastchild, child<k>. Supported unary predicates: root, leaf, lastsibling,
/// firstsibling, label_<l>.

/// Image of `sources` under [[E]]: { y | ∃x ∈ sources, ⟨x,y⟩ ∈ [[E]] }.
/// Returned sorted ascending.
util::Result<std::vector<tree::NodeId>> EvalImage(
    const tree::Tree& t, const CatNfa& nfa,
    const std::vector<tree::NodeId>& sources);

/// Convenience: compile + EvalImage.
util::Result<std::vector<tree::NodeId>> EvalImage(
    const tree::Tree& t, const ExprPtr& e,
    const std::vector<tree::NodeId>& sources);

/// Membership test ⟨x,y⟩ ∈ [[E]].
util::Result<bool> EvalPair(const tree::Tree& t, const ExprPtr& e,
                            tree::NodeId x, tree::NodeId y);

/// The full relation [[E]] by the direct denotational semantics. O(|E|·n³)
/// worst case — test-only. Pairs returned sorted.
util::Result<std::vector<std::pair<tree::NodeId, tree::NodeId>>>
EvalRelationReference(const tree::Tree& t, const ExprPtr& e);

}  // namespace mdatalog::caterpillar
