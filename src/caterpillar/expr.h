#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/util/result.h"

/// \file expr.h
/// Caterpillar expressions (Section 2): regular expressions over an alphabet
/// Γ of binary tree relations and unary node predicates, with concatenation,
/// union, Kleene star and inversion. Each expression denotes a binary
/// relation [[E]] over tree nodes; unary predicates denote identity pairs
/// {⟨x,x⟩ | P(x)}.
///
/// Unlike [Brüggemann-Klein and Wood 2000], inversion is allowed on compound
/// expressions (as in the paper) and pushed down to atoms via the identities
/// of Proposition 2.3 (see PushDownInverses).

namespace mdatalog::caterpillar {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable expression node. Build via the factory functions below.
struct Expr {
  enum class Kind {
    kEpsilon,  ///< identity relation (ǫ)
    kRel,      ///< atomic binary relation, possibly inverted
    kTest,     ///< unary predicate as identity pairs
    kConcat,   ///< E1.E2 … (n-ary)
    kUnion,    ///< E1 | E2 … (n-ary)
    kStar,     ///< E* (reflexive-transitive closure)
    kInverse,  ///< E^-1
  };

  Kind kind;
  std::string name;   ///< kRel / kTest: relation or predicate name
  bool inverted = false;  ///< kRel only: R^-1 after push-down
  std::vector<ExprPtr> children;
};

ExprPtr Epsilon();
ExprPtr Rel(const std::string& name, bool inverted = false);
ExprPtr Test(const std::string& name);
ExprPtr Concat(std::vector<ExprPtr> parts);
ExprPtr Union(std::vector<ExprPtr> parts);
ExprPtr Star(ExprPtr e);
ExprPtr Inverse(ExprPtr e);
/// E+ = E.E* (the paper's shortcut).
ExprPtr Plus(ExprPtr e);

/// Parses the textual syntax. Binary relations are bare identifiers
/// (firstchild, nextsibling, child, lastchild); unary predicates are written
/// in brackets ([leaf], [label_a]); `eps` is ǫ. Operators: postfix `*`, `+`
/// and `^-1` (tightest), infix `.` (concat), infix `|` (union, loosest);
/// parentheses group. Example (document order, Example 2.5):
///
///   child+ | (child^-1)*.nextsibling+.child*
util::Result<ExprPtr> ParseExpr(std::string_view text);

/// Renders an expression in the parser's syntax.
std::string ToString(const ExprPtr& e);

/// Structural size |E| (number of nodes).
int32_t ExprSize(const ExprPtr& e);

/// Pushes inversions down to atomic relations using Proposition 2.3, in time
/// O(|E|) (Proposition 2.4). The result contains no kInverse nodes; kRel
/// atoms may carry inverted = true. Tests and ǫ are symmetric and absorb
/// inversion.
ExprPtr PushDownInverses(const ExprPtr& e);

/// Replaces the derived relations child and lastchild by their τ_ur
/// definitions (child = firstchild.nextsibling*, Example 2.5/5.10;
/// lastchild = firstchild.nextsibling*.[lastsibling]), so downstream
/// consumers only see firstchild/nextsibling edges.
ExprPtr ExpandDerivedRels(const ExprPtr& e);

/// The document order relation ≺ of Example 2.5:
///   child+ | (child^-1)*.nextsibling+.child*
ExprPtr DocumentOrderExpr();

/// The total connector (≺ | ǫ | ≺^-1) used to connect disconnected rules in
/// the proof of Theorem 5.2; relates every pair of nodes.
ExprPtr AnyNodeExpr();

}  // namespace mdatalog::caterpillar
