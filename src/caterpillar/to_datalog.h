#pragma once

#include <string>

#include "src/caterpillar/expr.h"
#include "src/core/ast.h"
#include "src/util/result.h"

/// \file to_datalog.h
/// Lemma 5.9: compiling a caterpillar expression E and a unary predicate p
/// into a monadic datalog program defining
///
///   p.E := { x | ∃x0. p(x0) ∧ ⟨x0,x⟩ ∈ [[E]] }.
///
/// The construction follows the proof: translate E into an ε-NFA A_E (after
/// expanding child/lastchild over τ_ur and pushing inversions to the atoms),
/// then emit one TMNF rule per NFA transition:
///
///   q_start(x)  ← p(x).
///   q2(x)       ← q1(x).                      (ε transition)
///   q2(x)       ← q1(x0), r(x0, x).           (relation edge)
///   q2(x)       ← q1(x0), r(x, x0).           (inverted relation edge)
///   q2(x)       ← q1(x), u(x).                (unary test edge)
///   result(x)   ← q_accept(x).
///
/// All emitted rules are in TMNF (Definition 5.1); total size is O(|E|).

namespace mdatalog::caterpillar {

struct CaterpillarDatalogOptions {
  /// τ_rk mode: admit child<k> relation edges and skip the child/lastchild
  /// expansion (those names must not occur in ranked expressions).
  bool ranked = false;
};

/// Appends the Lemma 5.9 rules to `program`. `source_pred` is p (unary; may
/// be intensional or extensional within `program`); `prefix` namespaces the
/// generated state predicates (prefix + "_q<i>", prefix + "_res"). Returns
/// the predicate id of p.E.
util::Result<core::PredId> AppendCaterpillarRules(
    core::Program* program, core::PredId source_pred, const ExprPtr& e,
    const std::string& prefix, const CaterpillarDatalogOptions& options = {});

}  // namespace mdatalog::caterpillar
