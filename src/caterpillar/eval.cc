#include "src/caterpillar/eval.h"

#include <algorithm>
#include <set>

#include "src/core/database.h"

namespace mdatalog::caterpillar {

using tree::kNoNode;
using tree::NodeId;
using tree::Tree;

namespace {

util::Status UnknownRel(const std::string& name) {
  return util::Status::InvalidArgument("unknown binary relation '" + name +
                                       "' in caterpillar expression");
}

util::Status UnknownTest(const std::string& name) {
  return util::Status::InvalidArgument("unknown unary predicate '" + name +
                                       "' in caterpillar expression");
}

bool IsKnownRel(const std::string& name) {
  return name == "firstchild" || name == "nextsibling" || name == "child" ||
         name == "lastchild" || core::ChildKIndex(name) >= 1;
}

util::Result<bool> CheckTest(const Tree& t, const std::string& name,
                             NodeId n) {
  if (name == "root") return t.IsRoot(n);
  if (name == "leaf") return t.IsLeaf(n);
  if (name == "lastsibling") return t.IsLastSibling(n);
  if (name == "firstsibling") return t.IsFirstSibling(n);
  std::string label = core::LabelFromPredName(name);
  if (!label.empty()) return t.label_name(n) == label;
  return UnknownTest(name);
}

/// Applies one kRel move from node n, invoking `emit` per successor node.
template <typename Emit>
util::Status ApplyRel(const Tree& t, const std::string& name, bool inverted,
                      NodeId n, Emit emit) {
  if (name == "firstchild") {
    if (!inverted) {
      if (t.first_child(n) != kNoNode) emit(t.first_child(n));
    } else if (t.IsFirstSibling(n)) {
      emit(t.parent(n));
    }
    return util::Status::OK();
  }
  if (name == "nextsibling") {
    NodeId m = inverted ? t.prev_sibling(n) : t.next_sibling(n);
    if (m != kNoNode) emit(m);
    return util::Status::OK();
  }
  if (name == "child") {
    if (!inverted) {
      for (NodeId c = t.first_child(n); c != kNoNode; c = t.next_sibling(c)) {
        emit(c);
      }
    } else if (t.parent(n) != kNoNode) {
      emit(t.parent(n));
    }
    return util::Status::OK();
  }
  if (name == "lastchild") {
    if (!inverted) {
      if (t.last_child(n) != kNoNode) emit(t.last_child(n));
    } else if (t.IsLastSibling(n)) {
      emit(t.parent(n));
    }
    return util::Status::OK();
  }
  int32_t k = core::ChildKIndex(name);
  if (k >= 1) {
    if (!inverted) {
      NodeId c = t.ChildK(n, k);
      if (c != kNoNode) emit(c);
    } else {
      // n must be exactly the k-th child.
      NodeId c = n;
      int32_t steps = 1;
      while (steps < k && c != kNoNode) {
        c = t.prev_sibling(c);
        ++steps;
      }
      if (c != kNoNode && t.prev_sibling(c) == kNoNode &&
          t.parent(n) != kNoNode && steps == k) {
        emit(t.parent(n));
      }
    }
    return util::Status::OK();
  }
  return UnknownRel(name);
}

}  // namespace

util::Result<std::vector<NodeId>> EvalImage(
    const Tree& t, const CatNfa& nfa, const std::vector<NodeId>& sources) {
  const int64_t n = t.size();
  const int64_t num_states = nfa.NumStates();
  std::vector<bool> visited(static_cast<size_t>(n * num_states), false);
  std::vector<std::pair<int32_t, NodeId>> worklist;
  auto push = [&](int32_t state, NodeId node) {
    size_t key = static_cast<size_t>(state) * n + node;
    if (!visited[key]) {
      visited[key] = true;
      worklist.emplace_back(state, node);
    }
  };
  for (NodeId src : sources) push(nfa.start, src);

  while (!worklist.empty()) {
    auto [state, node] = worklist.back();
    worklist.pop_back();
    for (const NfaEdge& edge : nfa.states[state]) {
      switch (edge.type) {
        case NfaEdge::Type::kEps:
          push(edge.target, node);
          break;
        case NfaEdge::Type::kTest: {
          auto ok = CheckTest(t, edge.name, node);
          if (!ok.ok()) return ok.status();
          if (*ok) push(edge.target, node);
          break;
        }
        case NfaEdge::Type::kRel: {
          util::Status st = ApplyRel(t, edge.name, edge.inverted, node,
                                     [&](NodeId m) { push(edge.target, m); });
          if (!st.ok()) return st;
          break;
        }
      }
    }
  }

  std::vector<NodeId> out;
  for (NodeId m = 0; m < t.size(); ++m) {
    if (visited[static_cast<size_t>(nfa.accept) * n + m]) out.push_back(m);
  }
  return out;
}

util::Result<std::vector<NodeId>> EvalImage(
    const Tree& t, const ExprPtr& e, const std::vector<NodeId>& sources) {
  return EvalImage(t, CompileToNfa(e), sources);
}

util::Result<bool> EvalPair(const Tree& t, const ExprPtr& e, NodeId x,
                            NodeId y) {
  MD_ASSIGN_OR_RETURN(std::vector<NodeId> image, EvalImage(t, e, {x}));
  return std::binary_search(image.begin(), image.end(), y);
}

namespace {

using PairSet = std::set<std::pair<NodeId, NodeId>>;

util::Result<PairSet> Denote(const Tree& t, const ExprPtr& e) {
  switch (e->kind) {
    case Expr::Kind::kEpsilon: {
      PairSet out;
      for (NodeId n = 0; n < t.size(); ++n) out.emplace(n, n);
      return out;
    }
    case Expr::Kind::kTest: {
      PairSet out;
      for (NodeId n = 0; n < t.size(); ++n) {
        MD_ASSIGN_OR_RETURN(bool ok, CheckTest(t, e->name, n));
        if (ok) out.emplace(n, n);
      }
      return out;
    }
    case Expr::Kind::kRel: {
      if (!IsKnownRel(e->name)) return UnknownRel(e->name);
      PairSet out;
      for (NodeId n = 0; n < t.size(); ++n) {
        util::Status st =
            ApplyRel(t, e->name, e->inverted, n,
                     [&](NodeId m) { out.emplace(n, m); });
        if (!st.ok()) return st;
      }
      return out;
    }
    case Expr::Kind::kConcat: {
      MD_ASSIGN_OR_RETURN(PairSet acc, Denote(t, e->children[0]));
      for (size_t i = 1; i < e->children.size(); ++i) {
        MD_ASSIGN_OR_RETURN(PairSet next, Denote(t, e->children[i]));
        PairSet joined;
        for (const auto& [x, y] : acc) {
          auto it = next.lower_bound({y, 0});
          for (; it != next.end() && it->first == y; ++it) {
            joined.emplace(x, it->second);
          }
        }
        acc = std::move(joined);
      }
      return acc;
    }
    case Expr::Kind::kUnion: {
      PairSet out;
      for (const ExprPtr& c : e->children) {
        MD_ASSIGN_OR_RETURN(PairSet part, Denote(t, c));
        out.insert(part.begin(), part.end());
      }
      return out;
    }
    case Expr::Kind::kStar: {
      MD_ASSIGN_OR_RETURN(PairSet base, Denote(t, e->children[0]));
      // Reflexive closure + per-node BFS for transitivity.
      std::vector<std::vector<NodeId>> succ(t.size());
      for (const auto& [x, y] : base) succ[x].push_back(y);
      PairSet out;
      for (NodeId src = 0; src < t.size(); ++src) {
        std::vector<bool> seen(t.size(), false);
        std::vector<NodeId> stack = {src};
        seen[src] = true;
        while (!stack.empty()) {
          NodeId u = stack.back();
          stack.pop_back();
          out.emplace(src, u);
          for (NodeId v : succ[u]) {
            if (!seen[v]) {
              seen[v] = true;
              stack.push_back(v);
            }
          }
        }
      }
      return out;
    }
    case Expr::Kind::kInverse: {
      MD_ASSIGN_OR_RETURN(PairSet base, Denote(t, e->children[0]));
      PairSet out;
      for (const auto& [x, y] : base) out.emplace(y, x);
      return out;
    }
  }
  return util::Status::Internal("unreachable expression kind");
}

}  // namespace

util::Result<std::vector<std::pair<NodeId, NodeId>>> EvalRelationReference(
    const Tree& t, const ExprPtr& e) {
  MD_ASSIGN_OR_RETURN(PairSet pairs, Denote(t, e));
  return std::vector<std::pair<NodeId, NodeId>>(pairs.begin(), pairs.end());
}

}  // namespace mdatalog::caterpillar
