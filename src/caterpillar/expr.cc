#include "src/caterpillar/expr.h"

#include <cctype>

#include "src/util/check.h"

namespace mdatalog::caterpillar {

namespace {

ExprPtr MakeNode(Expr::Kind kind, std::string name, bool inverted,
                 std::vector<ExprPtr> children) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  e->name = std::move(name);
  e->inverted = inverted;
  e->children = std::move(children);
  return e;
}

}  // namespace

ExprPtr Epsilon() { return MakeNode(Expr::Kind::kEpsilon, "", false, {}); }
ExprPtr Rel(const std::string& name, bool inverted) {
  return MakeNode(Expr::Kind::kRel, name, inverted, {});
}
ExprPtr Test(const std::string& name) {
  return MakeNode(Expr::Kind::kTest, name, false, {});
}
ExprPtr Concat(std::vector<ExprPtr> parts) {
  MD_CHECK(!parts.empty());
  if (parts.size() == 1) return parts[0];
  return MakeNode(Expr::Kind::kConcat, "", false, std::move(parts));
}
ExprPtr Union(std::vector<ExprPtr> parts) {
  MD_CHECK(!parts.empty());
  if (parts.size() == 1) return parts[0];
  return MakeNode(Expr::Kind::kUnion, "", false, std::move(parts));
}
ExprPtr Star(ExprPtr e) {
  return MakeNode(Expr::Kind::kStar, "", false, {std::move(e)});
}
ExprPtr Inverse(ExprPtr e) {
  return MakeNode(Expr::Kind::kInverse, "", false, {std::move(e)});
}
ExprPtr Plus(ExprPtr e) { return Concat({e, Star(e)}); }

// --- parser -----------------------------------------------------------------

namespace {

class ExprParser {
 public:
  explicit ExprParser(std::string_view text) : text_(text) {}

  util::Result<ExprPtr> Parse() {
    auto e = ParseUnion();
    if (!e.ok()) return e;
    Skip();
    if (pos_ != text_.size()) {
      return util::Status::InvalidArgument(
          "trailing input in caterpillar expression at position " +
          std::to_string(pos_));
    }
    return e;
  }

 private:
  util::Result<ExprPtr> ParseUnion() {
    std::vector<ExprPtr> parts;
    auto first = ParseConcat();
    if (!first.ok()) return first;
    parts.push_back(*first);
    Skip();
    while (Consume("|")) {
      auto next = ParseConcat();
      if (!next.ok()) return next;
      parts.push_back(*next);
      Skip();
    }
    return Union(std::move(parts));
  }

  util::Result<ExprPtr> ParseConcat() {
    std::vector<ExprPtr> parts;
    auto first = ParsePostfix();
    if (!first.ok()) return first;
    parts.push_back(*first);
    Skip();
    while (Consume(".")) {
      auto next = ParsePostfix();
      if (!next.ok()) return next;
      parts.push_back(*next);
      Skip();
    }
    return Concat(std::move(parts));
  }

  util::Result<ExprPtr> ParsePostfix() {
    auto base = ParsePrimary();
    if (!base.ok()) return base;
    ExprPtr e = *base;
    while (true) {
      Skip();
      if (Consume("*")) {
        e = Star(e);
      } else if (Consume("+")) {
        e = Plus(e);
      } else if (Consume("^-1")) {
        e = Inverse(e);
      } else {
        break;
      }
    }
    return e;
  }

  util::Result<ExprPtr> ParsePrimary() {
    Skip();
    if (Consume("(")) {
      auto e = ParseUnion();
      if (!e.ok()) return e;
      Skip();
      if (!Consume(")")) {
        return util::Status::InvalidArgument("expected ')'");
      }
      return e;
    }
    if (Consume("[")) {
      std::string name;
      MD_RETURN_NOT_OK(ParseIdent(&name));
      Skip();
      if (!Consume("]")) {
        return util::Status::InvalidArgument("expected ']'");
      }
      return Test(name);
    }
    std::string name;
    MD_RETURN_NOT_OK(ParseIdent(&name));
    if (name == "eps") return Epsilon();
    return Rel(name);
  }

  util::Status ParseIdent(std::string* out) {
    Skip();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return util::Status::InvalidArgument(
          "expected identifier at position " + std::to_string(start));
    }
    *out = std::string(text_.substr(start, pos_ - start));
    return util::Status::OK();
  }

  bool Consume(std::string_view lit) {
    Skip();
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  void Skip() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

util::Result<ExprPtr> ParseExpr(std::string_view text) {
  return ExprParser(text).Parse();
}

std::string ToString(const ExprPtr& e) {
  switch (e->kind) {
    case Expr::Kind::kEpsilon:
      return "eps";
    case Expr::Kind::kRel:
      return e->inverted ? e->name + "^-1" : e->name;
    case Expr::Kind::kTest:
      return "[" + e->name + "]";
    case Expr::Kind::kConcat: {
      std::string out;
      for (size_t i = 0; i < e->children.size(); ++i) {
        if (i > 0) out += ".";
        const ExprPtr& c = e->children[i];
        bool paren = c->kind == Expr::Kind::kUnion;
        out += paren ? "(" + ToString(c) + ")" : ToString(c);
      }
      return out;
    }
    case Expr::Kind::kUnion: {
      std::string out;
      for (size_t i = 0; i < e->children.size(); ++i) {
        if (i > 0) out += " | ";
        out += ToString(e->children[i]);
      }
      return out;
    }
    case Expr::Kind::kStar: {
      const ExprPtr& c = e->children[0];
      bool paren = c->kind == Expr::Kind::kConcat ||
                   c->kind == Expr::Kind::kUnion;
      return (paren ? "(" + ToString(c) + ")" : ToString(c)) + "*";
    }
    case Expr::Kind::kInverse: {
      const ExprPtr& c = e->children[0];
      bool paren = c->kind != Expr::Kind::kRel &&
                   c->kind != Expr::Kind::kTest &&
                   c->kind != Expr::Kind::kEpsilon;
      return (paren ? "(" + ToString(c) + ")" : ToString(c)) + "^-1";
    }
  }
  return "?";
}

int32_t ExprSize(const ExprPtr& e) {
  int32_t n = 1;
  for (const ExprPtr& c : e->children) n += ExprSize(c);
  return n;
}

namespace {

ExprPtr PushDown(const ExprPtr& e, bool invert) {
  switch (e->kind) {
    case Expr::Kind::kEpsilon:
      return Epsilon();  // ǫ^-1 = ǫ
    case Expr::Kind::kTest:
      return Test(e->name);  // identity pairs are symmetric
    case Expr::Kind::kRel:
      return Rel(e->name, invert != e->inverted);  // (R^-1)^-1 = R
    case Expr::Kind::kConcat: {
      std::vector<ExprPtr> parts;
      if (invert) {
        // (E.F)^-1 = F^-1.E^-1 (Proposition 2.3)
        for (auto it = e->children.rbegin(); it != e->children.rend(); ++it) {
          parts.push_back(PushDown(*it, true));
        }
      } else {
        for (const ExprPtr& c : e->children) parts.push_back(PushDown(c, false));
      }
      return Concat(std::move(parts));
    }
    case Expr::Kind::kUnion: {
      // (E ∪ F)^-1 = E^-1 ∪ F^-1
      std::vector<ExprPtr> parts;
      for (const ExprPtr& c : e->children) parts.push_back(PushDown(c, invert));
      return Union(std::move(parts));
    }
    case Expr::Kind::kStar:
      // (E*)^-1 = (E^-1)*
      return Star(PushDown(e->children[0], invert));
    case Expr::Kind::kInverse:
      return PushDown(e->children[0], !invert);
  }
  MD_CHECK(false);
  return nullptr;
}

}  // namespace

ExprPtr PushDownInverses(const ExprPtr& e) { return PushDown(e, false); }

ExprPtr ExpandDerivedRels(const ExprPtr& e) {
  switch (e->kind) {
    case Expr::Kind::kEpsilon:
    case Expr::Kind::kTest:
      return e;
    case Expr::Kind::kRel: {
      if (e->name == "child") {
        // child = firstchild.nextsibling* (Example 2.5)
        ExprPtr expansion = Concat({Rel("firstchild"), Star(Rel("nextsibling"))});
        return e->inverted ? Inverse(expansion) : expansion;
      }
      if (e->name == "lastchild") {
        ExprPtr expansion = Concat({Rel("firstchild"), Star(Rel("nextsibling")),
                                    Test("lastsibling")});
        return e->inverted ? Inverse(expansion) : expansion;
      }
      return e;
    }
    default: {
      std::vector<ExprPtr> children;
      for (const ExprPtr& c : e->children) children.push_back(ExpandDerivedRels(c));
      return MakeNode(e->kind, e->name, e->inverted, std::move(children));
    }
  }
}

ExprPtr DocumentOrderExpr() {
  ExprPtr child = Rel("child");
  return Union({Plus(child),
                Concat({Star(Inverse(child)), Plus(Rel("nextsibling")),
                        Star(child)})});
}

ExprPtr AnyNodeExpr() {
  ExprPtr order = DocumentOrderExpr();
  return Union({order, Epsilon(), Inverse(order)});
}

}  // namespace mdatalog::caterpillar
