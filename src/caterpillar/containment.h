#pragma once

#include "src/caterpillar/expr.h"
#include "src/tree/tree.h"
#include "src/util/result.h"
#include "src/util/rng.h"

/// \file containment.h
/// Containment of unary caterpillar queries (Corollary 5.12).
///
/// The paper shows the problem PSPACE-complete via containment of monadic
/// linear datalog and of regular expressions. Implemented here:
///
///  * WordLanguageContained — complete decision of containment at the *word*
///    level: L(E1) ⊆ L(E2) over the alphabet of atomic caterpillar moves.
///    Word containment is *sound* for tree containment (every witness path of
///    E1 in any tree spells a word of L(E1) ⊆ L(E2), which the same path
///    witnesses for E2), but not complete — distinct words may denote the
///    same node pair. The decision procedure is the classical
///    subset-construction product (the PSPACE upper-bound algorithm).
///
///  * FindContainmentCounterexample — randomized bounded falsification of
///    tree-level containment of root.E1 ⊆ root.E2, producing a witness tree
///    and node when the containment fails.

namespace mdatalog::caterpillar {

/// Decides L(E1) ⊆ L(E2) over atomic-move words. `max_states` bounds the
/// explored product (NFA1 state × determinized-NFA2 subset) space; exceeding
/// it yields ResourceExhausted (the problem is PSPACE-complete).
util::Result<bool> WordLanguageContained(const ExprPtr& e1, const ExprPtr& e2,
                                         int64_t max_states = 1 << 20);

struct ContainmentWitness {
  tree::Tree tree;
  tree::NodeId node;  ///< selected by root.E1 but not by root.E2
};

/// Searches random trees (≤ max_nodes, `trials` attempts) for a witness that
/// root.E1 ⊄ root.E2. Returns the witness, or NotFound if none was found
/// (which is evidence of — not proof of — containment).
util::Result<ContainmentWitness> FindContainmentCounterexample(
    const ExprPtr& e1, const ExprPtr& e2, util::Rng& rng, int32_t trials = 200,
    int32_t max_nodes = 40);

}  // namespace mdatalog::caterpillar
