#pragma once

#include <string>
#include <vector>

#include "src/caterpillar/expr.h"

/// \file nfa.h
/// Thompson construction of finite automata from caterpillar expressions.
/// Edge labels are the atomic moves of a caterpillar: follow a binary tree
/// relation (possibly inverted) or test a unary predicate in place. This is
/// exactly the automaton A_E of the proof of Lemma 5.9.

namespace mdatalog::caterpillar {

struct NfaEdge {
  enum class Type { kEps, kRel, kTest };
  Type type;
  int32_t target;
  std::string name;       ///< kRel: relation; kTest: predicate
  bool inverted = false;  ///< kRel only
};

/// ε-NFA with a single start and a single accept state (Thompson invariant).
struct CatNfa {
  std::vector<std::vector<NfaEdge>> states;  ///< adjacency by state
  int32_t start = 0;
  int32_t accept = 0;

  int32_t NumStates() const { return static_cast<int32_t>(states.size()); }
  int64_t NumEdges() const {
    int64_t n = 0;
    for (const auto& s : states) n += static_cast<int64_t>(s.size());
    return n;
  }
};

/// Compiles `e` to an ε-NFA in time O(|E|). Inversions are pushed down first
/// (Proposition 2.4); if `expand_derived` is set, child/lastchild are first
/// rewritten over firstchild/nextsibling (required when the NFA feeds the
/// Lemma 5.9 datalog translation, whose target signature is τ_ur).
CatNfa CompileToNfa(const ExprPtr& e, bool expand_derived = false);

}  // namespace mdatalog::caterpillar
