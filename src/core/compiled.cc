#include "src/core/compiled.h"

#include <cstdint>

#include "src/util/check.h"

namespace mdatalog::core {

std::vector<int32_t> PlanJoinOrder(const Rule& rule, int32_t delta_pos) {
  int32_t n = static_cast<int32_t>(rule.body.size());
  std::vector<int32_t> order;
  order.reserve(n);
  std::vector<bool> used(n, false);
  std::vector<bool> bound(std::max(rule.num_vars(), 1), false);
  auto bind_atom_vars = [&](const Atom& a) {
    for (const Term& t : a.args) {
      if (t.is_var()) bound[t.value] = true;
    }
  };
  if (delta_pos >= 0) {
    order.push_back(delta_pos);
    used[delta_pos] = true;
    bind_atom_vars(rule.body[delta_pos]);
  }
  while (static_cast<int32_t>(order.size()) < n) {
    int32_t best = -1;
    int64_t best_score = INT64_MIN;
    for (int32_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      const Atom& a = rule.body[i];
      int32_t bound_vars = 0, total_vars = 0;
      for (const Term& t : a.args) {
        if (t.is_var()) {
          ++total_vars;
          if (bound[t.value]) ++bound_vars;
        }
      }
      // Prefer fully bound atoms, then atoms with more bound vars, then
      // smaller arity.
      int32_t score = bound_vars * 100 - total_vars * 10 -
                      static_cast<int32_t>(a.args.size());
      if (bound_vars == total_vars) score += 10000;
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    order.push_back(best);
    used[best] = true;
    bind_atom_vars(rule.body[best]);
  }
  return order;
}

CompiledProgram::CompiledProgram(const Program& program, const EdbSource& edb)
    : intensional_(program.IntensionalMask()),
      num_preds_(program.preds().size()),
      domain_size_(edb.DomainSize()) {
  rules_.reserve(program.rules().size());
  for (const Rule& rule : program.rules()) {
    CompiledRule cr;
    cr.num_vars = rule.num_vars();
    cr.head.pred = rule.head.pred;
    cr.head.arity = static_cast<int8_t>(rule.head.args.size());
    if (cr.head.arity >= 1) {
      cr.head.a0 = {rule.head.args[0].is_var(), rule.head.args[0].value};
    }
    if (cr.head.arity >= 2) {
      cr.head.a1 = {rule.head.args[1].is_var(), rule.head.args[1].value};
    }
    cr.base = CompilePlan(program, edb, rule, /*delta_pos=*/-1);
    for (size_t pos = 0; pos < rule.body.size(); ++pos) {
      if (!intensional_[rule.body[pos].pred]) continue;
      DeltaPlan dp;
      dp.pos = static_cast<int32_t>(pos);
      dp.pred = rule.body[pos].pred;
      dp.plan = CompilePlan(program, edb, rule, dp.pos);
      cr.delta_plans.push_back(std::move(dp));
    }
    rules_.push_back(std::move(cr));
  }
}

RulePlan CompiledProgram::CompilePlan(const Program& program,
                                      const EdbSource& edb, const Rule& rule,
                                      int32_t delta_pos) const {
  RulePlan plan;
  std::vector<int32_t> order = PlanJoinOrder(rule, delta_pos);
  std::vector<bool> bound(std::max(rule.num_vars(), 1), false);
  plan.steps.reserve(order.size());

  for (int32_t pos : order) {
    const Atom& atom = rule.body[pos];
    PlanStep step;
    step.pred = atom.pred;
    step.idb = intensional_[atom.pred];
    step.delta = (pos == delta_pos);
    if (!step.idb) {
      step.edb = edb.Get(program.preds().Name(atom.pred),
                         static_cast<int32_t>(atom.args.size()));
      if (step.edb == nullptr || step.edb->size() == 0) {
        // Empty extensional relation: the plan can never produce a binding.
        plan.dead = true;
        plan.steps.clear();
        return plan;
      }
    }
    auto arg_of = [&](const Term& t) -> StepArg {
      return {t.is_var(), t.value};
    };
    auto is_bound = [&](const Term& t) {
      return !t.is_var() || bound[t.value];
    };
    switch (atom.args.size()) {
      case 0:
        step.kind = PlanStep::Kind::kNullaryCheck;
        break;
      case 1: {
        step.a0 = arg_of(atom.args[0]);
        step.kind = is_bound(atom.args[0]) ? PlanStep::Kind::kUnaryCheck
                                           : PlanStep::Kind::kUnaryScan;
        break;
      }
      default: {
        step.a0 = arg_of(atom.args[0]);
        step.a1 = arg_of(atom.args[1]);
        bool b0 = is_bound(atom.args[0]);
        bool b1 = is_bound(atom.args[1]);
        // R(x, x) with x free binds both positions at once, so b0 == b1
        // whenever the args are one variable.
        if (b0 && b1) {
          step.kind = PlanStep::Kind::kBinaryCheck;
        } else if (b0) {
          step.kind = (!step.idb && step.edb->forward_functional())
                          ? PlanStep::Kind::kBinaryFnForward
                          : PlanStep::Kind::kBinaryScanForward;
        } else if (b1) {
          step.kind = (!step.idb && step.edb->backward_functional())
                          ? PlanStep::Kind::kBinaryFnBackward
                          : PlanStep::Kind::kBinaryScanBackward;
        } else {
          step.kind = PlanStep::Kind::kBinaryScanAll;
          step.same_var = atom.args[0].is_var() && atom.args[1].is_var() &&
                          atom.args[0].value == atom.args[1].value;
        }
        break;
      }
    }
    for (const Term& t : atom.args) {
      if (t.is_var()) bound[t.value] = true;
    }
    plan.steps.push_back(step);
  }

  // Set-plan eligibility: unary head over a variable, and every body atom a
  // unary atom over that same variable.
  if (rule.head.args.size() == 1 && rule.head.args[0].is_var() &&
      !plan.steps.empty()) {
    const VarId hv = rule.head.args[0].value;
    plan.set_unary = true;
    for (const PlanStep& s : plan.steps) {
      if ((s.kind != PlanStep::Kind::kUnaryScan &&
           s.kind != PlanStep::Kind::kUnaryCheck) ||
          !s.a0.is_var || s.a0.v != hv) {
        plan.set_unary = false;
        break;
      }
    }
  }
  return plan;
}

}  // namespace mdatalog::core
