#include "src/core/examples.h"

#include "src/core/database.h"
#include "src/util/check.h"

namespace mdatalog::core {

Program EvenAProgram(const std::vector<std::string>& other_labels) {
  Program p;
  PredicateTable& preds = p.preds();
  PredId b[2] = {preds.MustIntern("b0", 1), preds.MustIntern("b1", 1)};
  PredId c[2] = {preds.MustIntern("c0", 1), preds.MustIntern("c1", 1)};
  PredId r[2] = {preds.MustIntern("r0", 1), preds.MustIntern("r1", 1)};
  PredId leaf = preds.MustIntern("leaf", 1);
  PredId firstchild = preds.MustIntern("firstchild", 2);
  PredId nextsibling = preds.MustIntern("nextsibling", 2);
  PredId lastsibling = preds.MustIntern("lastsibling", 1);
  PredId label_a = preds.MustIntern(LabelPredName("a"), 1);

  Term x = Term::Var(0), x0 = Term::Var(0), x1 = Term::Var(1);

  // (1)  b0(x) ← leaf(x).
  p.AddRule(MakeRule(MakeAtom(b[0], {x}), {MakeAtom(leaf, {x})}, {"x"}));
  for (int i = 0; i < 2; ++i) {
    // (2)  b_i(x0) ← firstchild(x0, x), r_i(x).
    p.AddRule(MakeRule(MakeAtom(b[i], {x0}),
                       {MakeAtom(firstchild, {x0, x1}), MakeAtom(r[i], {x1})},
                       {"x0", "x"}));
    // (3)  c_{(i+1) mod 2}(x) ← b_i(x), label_a(x).
    p.AddRule(MakeRule(MakeAtom(c[(i + 1) % 2], {x}),
                       {MakeAtom(b[i], {x}), MakeAtom(label_a, {x})}, {"x"}));
    // (4)  c_i(x) ← b_i(x), label_l(x).   for l ∈ Σ − {a}
    for (const std::string& l : other_labels) {
      MD_CHECK(l != "a");
      PredId label_l = preds.MustIntern(LabelPredName(l), 1);
      p.AddRule(MakeRule(MakeAtom(c[i], {x}),
                         {MakeAtom(b[i], {x}), MakeAtom(label_l, {x})},
                         {"x"}));
    }
    // (5)  r_i(x) ← lastsibling(x), c_i(x).
    p.AddRule(MakeRule(MakeAtom(r[i], {x}),
                       {MakeAtom(lastsibling, {x}), MakeAtom(c[i], {x})},
                       {"x"}));
    // (6)  r_{(i+j) mod 2}(x0) ← c_j(x0), nextsibling(x0, x), r_i(x).
    for (int j = 0; j < 2; ++j) {
      p.AddRule(MakeRule(
          MakeAtom(r[(i + j) % 2], {x0}),
          {MakeAtom(c[j], {x0}), MakeAtom(nextsibling, {x0, x1}),
           MakeAtom(r[i], {x1})},
          {"x0", "x"}));
    }
  }
  p.set_query_pred(c[0]);
  return p;
}

Program HasAncestorProgram(const std::string& label) {
  Program p;
  PredicateTable& preds = p.preds();
  PredId q = preds.MustIntern("hasanc", 1);
  PredId label_l = preds.MustIntern(LabelPredName(label), 1);
  PredId firstchild = preds.MustIntern("firstchild", 2);
  PredId nextsibling = preds.MustIntern("nextsibling", 2);
  Term x = Term::Var(0), y = Term::Var(1);
  // hasanc(y) ← label_l(x), firstchild(x, y).
  p.AddRule(MakeRule(MakeAtom(q, {y}),
                     {MakeAtom(label_l, {x}), MakeAtom(firstchild, {x, y})},
                     {"x", "y"}));
  // hasanc(y) ← hasanc(x), firstchild(x, y).
  p.AddRule(MakeRule(MakeAtom(q, {y}),
                     {MakeAtom(q, {x}), MakeAtom(firstchild, {x, y})},
                     {"x", "y"}));
  // hasanc(y) ← hasanc(x), nextsibling(x, y).
  p.AddRule(MakeRule(MakeAtom(q, {y}),
                     {MakeAtom(q, {x}), MakeAtom(nextsibling, {x, y})},
                     {"x", "y"}));
  p.set_query_pred(q);
  return p;
}

Program EvenDepthLeafProgram() {
  Program p;
  PredicateTable& preds = p.preds();
  PredId even = preds.MustIntern("even", 1);
  PredId odd = preds.MustIntern("odd", 1);
  PredId evenleaf = preds.MustIntern("evenleaf", 1);
  PredId root = preds.MustIntern("root", 1);
  PredId leaf = preds.MustIntern("leaf", 1);
  PredId firstchild = preds.MustIntern("firstchild", 2);
  PredId nextsibling = preds.MustIntern("nextsibling", 2);
  Term x = Term::Var(0), y = Term::Var(1);
  p.AddRule(MakeRule(MakeAtom(even, {x}), {MakeAtom(root, {x})}, {"x"}));
  // Depth changes through firstchild, is preserved through nextsibling.
  p.AddRule(MakeRule(MakeAtom(odd, {y}),
                     {MakeAtom(even, {x}), MakeAtom(firstchild, {x, y})},
                     {"x", "y"}));
  p.AddRule(MakeRule(MakeAtom(even, {y}),
                     {MakeAtom(odd, {x}), MakeAtom(firstchild, {x, y})},
                     {"x", "y"}));
  p.AddRule(MakeRule(MakeAtom(even, {y}),
                     {MakeAtom(even, {x}), MakeAtom(nextsibling, {x, y})},
                     {"x", "y"}));
  p.AddRule(MakeRule(MakeAtom(odd, {y}),
                     {MakeAtom(odd, {x}), MakeAtom(nextsibling, {x, y})},
                     {"x", "y"}));
  p.AddRule(MakeRule(MakeAtom(evenleaf, {x}),
                     {MakeAtom(even, {x}), MakeAtom(leaf, {x})}, {"x"}));
  p.set_query_pred(evenleaf);
  return p;
}

Program ChainProgram(int32_t m) {
  MD_CHECK(m >= 1);
  Program p;
  PredicateTable& preds = p.preds();
  PredId root = preds.MustIntern("root", 1);
  Term x = Term::Var(0);
  PredId prev = preds.MustIntern("p0", 1);
  p.AddRule(MakeRule(MakeAtom(prev, {x}), {MakeAtom(root, {x})}, {"x"}));
  for (int32_t i = 1; i <= m; ++i) {
    PredId next = preds.MustIntern("p" + std::to_string(i), 1);
    p.AddRule(MakeRule(MakeAtom(next, {x}), {MakeAtom(prev, {x})}, {"x"}));
    prev = next;
  }
  p.set_query_pred(prev);
  return p;
}

Program DomProgram() {
  Program p;
  PredicateTable& preds = p.preds();
  PredId dom = preds.MustIntern("dom", 1);
  PredId root = preds.MustIntern("root", 1);
  PredId firstchild = preds.MustIntern("firstchild", 2);
  PredId nextsibling = preds.MustIntern("nextsibling", 2);
  Term x = Term::Var(0), y = Term::Var(1);
  p.AddRule(MakeRule(MakeAtom(dom, {x}), {MakeAtom(root, {x})}, {"x"}));
  p.AddRule(MakeRule(MakeAtom(dom, {y}),
                     {MakeAtom(dom, {x}), MakeAtom(firstchild, {x, y})},
                     {"x", "y"}));
  p.AddRule(MakeRule(MakeAtom(dom, {y}),
                     {MakeAtom(dom, {x}), MakeAtom(nextsibling, {x, y})},
                     {"x", "y"}));
  p.set_query_pred(dom);
  return p;
}

}  // namespace mdatalog::core
