#pragma once

#include <string_view>

#include "src/core/ast.h"
#include "src/util/result.h"

/// \file parser.h
/// Textual syntax for datalog programs.
///
///   % even-a query of Example 3.2 (fragment)
///   b0(X)  :- leaf(X).
///   c1(X)  :- b0(X), label_a(X).
///   r0(X0) :- c1(X0), nextsibling(X0, X), r1(X).
///
/// Lexical rules: identifiers are [A-Za-z_][A-Za-z0-9_]*; atom arguments that
/// are identifiers denote variables (scoped per rule), integer arguments
/// denote constants (tree-node ids). `:-` and `<-` both separate head and
/// body; rules end with `.`; `%` and `//` start comments. A rule without a
/// body ("p(3).") is a fact and must be ground.

namespace mdatalog::core {

/// Parses a program. The query predicate can be set afterwards via
/// Program::set_query_pred (or use ParseProgramWithQuery).
util::Result<Program> ParseProgram(std::string_view text);

/// Parses a program and designates `query_pred` (must occur in the program).
util::Result<Program> ParseProgramWithQuery(std::string_view text,
                                            std::string_view query_pred);

}  // namespace mdatalog::core
