#pragma once

#include <cstddef>
#include <cstdint>

/// \file simd_kernels.h
/// Runtime-dispatched kernels for the hot NodeSet word loops.
///
/// Monadic-datalog evaluation reduces to bitset algebra over the node domain
/// (set-plans are intersections, semi-naive rounds subtract deltas from
/// totals — Theorem 4.2's linear-time loop body), so these five operations
/// are the inner core of every engine. Each has a portable scalar form and
/// an AVX2 form (4 words per vector op; popcounts via the Muła vpshufb
/// nibble-LUT reduction). The implementation is selected once per process:
///
///   * AVX2 when the CPU reports it, unless forced off;
///   * scalar otherwise, or when MDATALOG_FORCE_SCALAR is set in the
///     environment (CI runs the whole test suite once this way so the
///     fallback path stays green on non-AVX2 hosts);
///   * tests/benches can flip the dispatch at runtime with ForceScalar().
///
/// The scalar forms are the oracle: simd_test.cc property-checks AVX2
/// against them over randomized sets, and the two must agree bit for bit.
///
/// All `n` parameters count 64-bit words. Pointers need no particular
/// alignment (the vector paths use unaligned loads; std::vector's 16-byte
/// allocation alignment already avoids split lines in practice).

namespace mdatalog::core::simd {

/// dst[i] |= src[i]; returns the total popcount of dst afterwards.
int64_t OrAssignCount(uint64_t* dst, const uint64_t* src, size_t n);
/// dst[i] &= src[i]; returns the total popcount of dst afterwards.
int64_t AndAssignCount(uint64_t* dst, const uint64_t* src, size_t n);
/// dst[i] &= ~src[i] (delta subtraction); returns the total popcount of dst.
int64_t AndNotAssignCount(uint64_t* dst, const uint64_t* src, size_t n);
/// Total popcount of w[0..n).
int64_t Count(const uint64_t* w, size_t n);
/// Index of the first set bit in w[0..n), or -1 when every word is zero.
int64_t FindFirst(const uint64_t* w, size_t n);

/// Name of the active implementation: "avx2" or "scalar".
const char* ActiveKernelName();

/// True iff the AVX2 kernels are the active implementation.
bool Avx2Active();

/// Overrides the dispatch at runtime: ForceScalar(true) pins the scalar
/// kernels, ForceScalar(false) restores CPU-based selection (which still
/// honors MDATALOG_FORCE_SCALAR). For the scalar-vs-SIMD benches and the
/// equivalence tests; not intended to be flipped while other threads are
/// mid-evaluation.
void ForceScalar(bool on);

}  // namespace mdatalog::core::simd
