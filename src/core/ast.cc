#include "src/core/ast.h"

namespace mdatalog::core {

util::Result<PredId> PredicateTable::Intern(std::string_view name,
                                            int32_t arity) {
  PredId existing = names_.Find(name);
  if (existing >= 0) {
    if (arities_[existing] != arity) {
      return util::Status::InvalidArgument(
          "predicate '" + std::string(name) + "' used with arity " +
          std::to_string(arity) + " but declared with arity " +
          std::to_string(arities_[existing]));
    }
    return existing;
  }
  PredId id = names_.Intern(name);
  MD_CHECK(static_cast<size_t>(id) == arities_.size());
  arities_.push_back(arity);
  return id;
}

PredId PredicateTable::MustIntern(std::string_view name, int32_t arity) {
  auto res = Intern(name, arity);
  MD_CHECK(res.ok());
  return *res;
}

std::vector<bool> Program::IntensionalMask() const {
  std::vector<bool> mask(preds_.size(), false);
  for (const Rule& r : rules_) mask[r.head.pred] = true;
  return mask;
}

int64_t Program::SizeInAtoms() const {
  int64_t n = 0;
  for (const Rule& r : rules_) n += 1 + static_cast<int64_t>(r.body.size());
  return n;
}

Atom MakeAtom(PredId pred, std::vector<Term> args) {
  Atom a;
  a.pred = pred;
  a.args = std::move(args);
  return a;
}

namespace {

int32_t MaxVarIndex(const Rule& r) {
  int32_t max_var = -1;
  auto scan = [&max_var](const Atom& a) {
    for (const Term& t : a.args) {
      if (t.is_var()) max_var = std::max(max_var, t.value);
    }
  };
  scan(r.head);
  for (const Atom& a : r.body) scan(a);
  return max_var;
}

}  // namespace

Rule MakeRule(Atom head, std::vector<Atom> body) {
  Rule r;
  r.head = std::move(head);
  r.body = std::move(body);
  int32_t max_var = MaxVarIndex(r);
  for (int32_t i = 0; i <= max_var; ++i) {
    r.var_names.push_back("v" + std::to_string(i));
  }
  return r;
}

Rule MakeRule(Atom head, std::vector<Atom> body,
              std::vector<std::string> var_names) {
  Rule r;
  r.head = std::move(head);
  r.body = std::move(body);
  r.var_names = std::move(var_names);
  MD_CHECK(MaxVarIndex(r) < r.num_vars());
  return r;
}

std::vector<std::vector<int32_t>> RulesByHeadPred(const Program& program) {
  std::vector<std::vector<int32_t>> by_head(program.preds().size());
  const auto& rules = program.rules();
  for (size_t i = 0; i < rules.size(); ++i) {
    by_head[rules[i].head.pred].push_back(static_cast<int32_t>(i));
  }
  return by_head;
}

std::vector<bool> ReachablePreds(const Program& program,
                                 const std::vector<PredId>& roots) {
  std::vector<bool> reachable(program.preds().size(), false);
  std::vector<PredId> stack;
  for (PredId p : roots) {
    if (p >= 0 && static_cast<size_t>(p) < reachable.size() && !reachable[p]) {
      reachable[p] = true;
      stack.push_back(p);
    }
  }
  auto by_head = RulesByHeadPred(program);
  while (!stack.empty()) {
    PredId p = stack.back();
    stack.pop_back();
    for (int32_t ri : by_head[p]) {
      for (const Atom& a : program.rules()[ri].body) {
        if (!reachable[a.pred]) {
          reachable[a.pred] = true;
          stack.push_back(a.pred);
        }
      }
    }
  }
  return reachable;
}

std::vector<bool> DerivablePreds(const Program& program) {
  std::vector<bool> intensional = program.IntensionalMask();
  std::vector<bool> derivable(program.preds().size(), false);
  for (size_t p = 0; p < derivable.size(); ++p) {
    derivable[p] = !intensional[p];  // EDB: may hold facts
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& r : program.rules()) {
      if (derivable[r.head.pred]) continue;
      bool body_ok = true;
      for (const Atom& a : r.body) {
        if (!derivable[a.pred]) {
          body_ok = false;
          break;
        }
      }
      if (body_ok) {
        derivable[r.head.pred] = true;
        changed = true;
      }
    }
  }
  return derivable;
}

std::string ToString(const Program& program, const Rule& rule,
                     const Atom& atom) {
  std::string out = program.preds().Name(atom.pred);
  if (atom.args.empty()) return out;
  out += '(';
  bool first = true;
  for (const Term& t : atom.args) {
    if (!first) out += ", ";
    first = false;
    if (t.is_var()) {
      out += t.value < rule.num_vars() ? rule.var_names[t.value]
                                       : "v" + std::to_string(t.value);
    } else {
      out += std::to_string(t.value);
    }
  }
  out += ')';
  return out;
}

std::string ToString(const Program& program, const Rule& rule) {
  std::string out = ToString(program, rule, rule.head);
  if (!rule.body.empty()) {
    out += " :- ";
    bool first = true;
    for (const Atom& a : rule.body) {
      if (!first) out += ", ";
      first = false;
      out += ToString(program, rule, a);
    }
  }
  out += '.';
  return out;
}

std::string ToString(const Program& program) {
  std::string out;
  for (const Rule& r : program.rules()) {
    out += ToString(program, r);
    out += '\n';
  }
  return out;
}

}  // namespace mdatalog::core
