#include "src/core/parser.h"

#include <cctype>
#include <map>

namespace mdatalog::core {

namespace {

/// Hand-written recursive-descent parser; no exceptions, explicit Status.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  util::Result<Program> Parse() {
    Program program;
    SkipWhitespaceAndComments();
    while (pos_ < text_.size()) {
      MD_RETURN_NOT_OK(ParseRule(&program));
      SkipWhitespaceAndComments();
    }
    return program;
  }

 private:
  util::Status ParseRule(Program* program) {
    std::map<std::string, VarId> vars;
    std::vector<std::string> var_names;
    Atom head;
    MD_RETURN_NOT_OK(ParseAtom(program, &vars, &var_names, &head));
    std::vector<Atom> body;
    SkipWhitespaceAndComments();
    if (ConsumeLiteral(":-") || ConsumeLiteral("<-")) {
      while (true) {
        SkipWhitespaceAndComments();
        Atom atom;
        MD_RETURN_NOT_OK(ParseAtom(program, &vars, &var_names, &atom));
        body.push_back(std::move(atom));
        SkipWhitespaceAndComments();
        if (ConsumeLiteral(",")) continue;
        break;
      }
    }
    if (!ConsumeLiteral(".")) {
      return ErrorHere("expected '.' at end of rule");
    }
    Rule rule;
    rule.head = std::move(head);
    rule.body = std::move(body);
    rule.var_names = std::move(var_names);
    program->AddRule(std::move(rule));
    return util::Status::OK();
  }

  util::Status ParseAtom(Program* program, std::map<std::string, VarId>* vars,
                         std::vector<std::string>* var_names, Atom* out) {
    SkipWhitespaceAndComments();
    std::string name;
    MD_RETURN_NOT_OK(ParseIdentifier(&name));
    std::vector<Term> args;
    SkipWhitespaceAndComments();
    if (ConsumeLiteral("(")) {
      while (true) {
        SkipWhitespaceAndComments();
        if (pos_ < text_.size() &&
            (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
             text_[pos_] == '-')) {
          int32_t value = 0;
          MD_RETURN_NOT_OK(ParseInteger(&value));
          args.push_back(Term::Const(value));
        } else {
          std::string var;
          MD_RETURN_NOT_OK(ParseIdentifier(&var));
          auto it = vars->find(var);
          VarId id;
          if (it == vars->end()) {
            id = static_cast<VarId>(var_names->size());
            vars->emplace(var, id);
            var_names->push_back(var);
          } else {
            id = it->second;
          }
          args.push_back(Term::Var(id));
        }
        SkipWhitespaceAndComments();
        if (ConsumeLiteral(",")) continue;
        if (ConsumeLiteral(")")) break;
        return ErrorHere("expected ',' or ')' in argument list");
      }
    }
    auto pred = program->preds().Intern(name, static_cast<int32_t>(args.size()));
    if (!pred.ok()) return pred.status();
    out->pred = *pred;
    out->args = std::move(args);
    return util::Status::OK();
  }

  util::Status ParseIdentifier(std::string* out) {
    if (pos_ >= text_.size() ||
        !(std::isalpha(static_cast<unsigned char>(text_[pos_])) ||
          text_[pos_] == '_')) {
      return ErrorHere("expected identifier");
    }
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    *out = std::string(text_.substr(start, pos_ - start));
    return util::Status::OK();
  }

  util::Status ParseInteger(int32_t* out) {
    bool negative = false;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return ErrorHere("expected integer");
    }
    int64_t value = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      value = value * 10 + (text_[pos_] - '0');
      if (value > INT32_MAX) return ErrorHere("integer constant too large");
      ++pos_;
    }
    *out = static_cast<int32_t>(negative ? -value : value);
    return util::Status::OK();
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '%' ||
                 (c == '/' && pos_ + 1 < text_.size() &&
                  text_[pos_ + 1] == '/')) {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  util::Status ErrorHere(const std::string& msg) {
    int32_t line = 1, col = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return util::Status::InvalidArgument(msg + " at line " +
                                         std::to_string(line) + ", column " +
                                         std::to_string(col));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

util::Result<Program> ParseProgram(std::string_view text) {
  return Parser(text).Parse();
}

util::Result<Program> ParseProgramWithQuery(std::string_view text,
                                            std::string_view query_pred) {
  MD_ASSIGN_OR_RETURN(Program program, ParseProgram(text));
  PredId q = program.preds().Find(query_pred);
  if (q < 0) {
    return util::Status::NotFound("query predicate '" +
                                  std::string(query_pred) +
                                  "' does not occur in the program");
  }
  program.set_query_pred(q);
  return program;
}

}  // namespace mdatalog::core
