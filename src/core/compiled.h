#pragma once

#include <cstdint>
#include <vector>

#include "src/core/ast.h"
#include "src/core/database.h"

/// \file compiled.h
/// Rule compilation for the fixpoint engines.
///
/// The seed engine re-planned every rule on every enumeration and resolved
/// every body atom through the string-keyed EdbSource::Get — per join step.
/// CompiledProgram does all of that exactly once per evaluation:
///
///  * every EDB body atom is resolved to a concrete `const Relation*`
///    (TreeDatabase materializes it on first touch and we keep the pointer);
///  * every IDB body atom is resolved to its PredId, which indexes the
///    engine's dense relation stores;
///  * for every (rule, delta_pos) pair — delta_pos = -1 for naive / round-0
///    enumeration, one entry per intensional body atom for the semi-naive
///    delta rounds — the greedy join order is computed once and flattened
///    into a vector of typed PlanSteps. Because the order is static, the
///    bound/free status of every argument is known at compile time, so the
///    runtime executes a branch-light switch per step with no re-planning,
///    no "is this variable bound yet" probing, and no binding resets.
///
/// Plans whose EDB atom has an empty extension are marked dead: they can
/// never produce a binding (IDB atoms start empty but grow; EDB relations
/// are immutable during evaluation).

namespace mdatalog::core {

/// One argument of a plan step: either a constant or a binding-array slot.
struct StepArg {
  bool is_var = false;
  int32_t v = 0;  // VarId if is_var, else the constant value
};

/// One flattened join step. `pred` indexes the engine's IDB stores when
/// `idb` is set; otherwise `edb` points at the resolved extensional
/// relation. `delta` redirects the read to the engine's delta store (set on
/// at most one step per plan).
struct PlanStep {
  enum class Kind : uint8_t {
    kNullaryCheck,       ///< relation must be nullary-true
    kUnaryCheck,         ///< arg bound: membership test
    kUnaryScan,          ///< arg free: iterate members, bind a0
    kBinaryCheck,        ///< both args bound: pair membership test
    kBinaryFnForward,    ///< a0 bound, EDB forward-functional: O(1) probe
    kBinaryFnBackward,   ///< a1 bound, EDB backward-functional: O(1) probe
    kBinaryScanForward,  ///< a0 bound: iterate successors, bind a1
    kBinaryScanBackward, ///< a1 bound: iterate predecessors, bind a0
    kBinaryScanAll,      ///< both free: iterate all pairs, bind a0 and a1
  };
  Kind kind;
  bool idb = false;
  bool delta = false;
  /// Both args are one variable, both free (R(x,x) first occurrence): scan
  /// pairs, keep the diagonal, bind a0 only. Only set on kBinaryScanAll.
  bool same_var = false;
  PredId pred = -1;
  const Relation* edb = nullptr;
  StepArg a0, a1;
};

/// The head, pre-resolved: instantiating it is a couple of array reads.
struct CompiledHead {
  PredId pred = -1;
  int8_t arity = 0;
  StepArg a0, a1;
};

/// A flattened join plan for one (rule, delta_pos) pair.
struct RulePlan {
  bool dead = false;  ///< an EDB body atom has an empty extension
  /// Word-parallel fast path: every body atom is unary over the head's one
  /// variable (p(x) ← q1(x), …, qk(x)), so the rule's new facts are the
  /// bitset intersection of the sources minus the head's relation — no
  /// per-binding enumeration at all.
  bool set_unary = false;
  std::vector<PlanStep> steps;
};

/// A delta plan: the semi-naive re-enumeration of a rule with the atom at
/// body position `pos` (predicate `pred`) ranging over the delta store.
struct DeltaPlan {
  int32_t pos = -1;
  PredId pred = -1;
  RulePlan plan;
};

struct CompiledRule {
  CompiledHead head;
  int32_t num_vars = 0;
  RulePlan base;  ///< delta_pos = -1 (naive iterations, semi-naive round 0)
  /// One plan per intensional body atom, in body-position order (the
  /// semi-naive delta-rule order of the seed engine).
  std::vector<DeltaPlan> delta_plans;
};

class CompiledProgram {
 public:
  /// Resolves and plans `program` against `edb`. References both; neither
  /// may be mutated or destroyed while the compiled program is in use.
  CompiledProgram(const Program& program, const EdbSource& edb);

  const std::vector<CompiledRule>& rules() const { return rules_; }
  const std::vector<bool>& intensional() const { return intensional_; }
  int32_t num_preds() const { return num_preds_; }
  int32_t domain_size() const { return domain_size_; }

 private:
  RulePlan CompilePlan(const Program& program, const EdbSource& edb,
                       const Rule& rule, int32_t delta_pos) const;

  std::vector<CompiledRule> rules_;
  std::vector<bool> intensional_;
  int32_t num_preds_ = 0;
  int32_t domain_size_ = 0;
};

/// The greedy join-order heuristic shared by all plans: start from the delta
/// atom (if any), then repeatedly pick the atom with the most bound
/// variables, preferring fully bound atoms, then smaller arity. Exposed for
/// tests.
std::vector<int32_t> PlanJoinOrder(const Rule& rule, int32_t delta_pos);

}  // namespace mdatalog::core
