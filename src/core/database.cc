#include "src/core/database.h"

#include <algorithm>

#include "src/telemetry/trace.h"
#include "src/util/check.h"

namespace mdatalog::core {

const std::vector<int32_t> Relation::kEmpty;

void Relation::AddUnary(int32_t a) {
  MD_DCHECK(arity_ == 1);
  MD_DCHECK(a >= 0 && a < domain_size_);
  if (unary_set_.domain_size() != domain_size_) unary_set_.Reset(domain_size_);
  if (!unary_set_.Insert(a)) return;
  unary_.push_back(a);
}

void Relation::AddBinary(int32_t a, int32_t b) {
  MD_DCHECK(arity_ == 2);
  MD_DCHECK(a >= 0 && a < domain_size_ && b >= 0 && b < domain_size_);
  if (fwd_.empty()) {
    fwd_.resize(domain_size_);
    bwd_.resize(domain_size_);
    fwd_fn_.assign(domain_size_, -1);
    bwd_fn_.assign(domain_size_, -1);
  }
  pairs_.emplace_back(a, b);
  fwd_[a].push_back(b);
  bwd_[b].push_back(a);
  if (fwd_fn_[a] != -1 && fwd_fn_[a] != b) fwd_functional_ = false;
  fwd_fn_[a] = b;
  if (bwd_fn_[b] != -1 && bwd_fn_[b] != a) bwd_functional_ = false;
  bwd_fn_[b] = a;
}

void Relation::LoadUnaryBits(const uint64_t* words, int32_t domain_size) {
  MD_DCHECK(arity_ == 1);
  MD_DCHECK(domain_size == domain_size_);
  unary_set_.AssignWords(words, domain_size);
  unary_.clear();
  unary_.reserve(static_cast<size_t>(unary_set_.count()));
  unary_set_.ForEach([this](int32_t a) { unary_.push_back(a); });
}

bool Relation::ContainsUnary(int32_t a) const {
  MD_DCHECK(arity_ == 1);
  return unary_set_.Contains(a);
}

bool Relation::ContainsBinary(int32_t a, int32_t b) const {
  MD_DCHECK(arity_ == 2);
  if (fwd_.empty() || a < 0 || a >= domain_size_) return false;
  if (fwd_functional_) return b >= 0 && fwd_fn_[a] == b;
  const std::vector<int32_t>& succ = fwd_[a];
  return std::find(succ.begin(), succ.end(), b) != succ.end();
}

const std::vector<int32_t>& Relation::Forward(int32_t a) const {
  MD_DCHECK(arity_ == 2);
  if (fwd_.empty() || a < 0 || a >= domain_size_) return kEmpty;
  return fwd_[a];
}

const std::vector<int32_t>& Relation::Backward(int32_t b) const {
  MD_DCHECK(arity_ == 2);
  if (bwd_.empty() || b < 0 || b >= domain_size_) return kEmpty;
  return bwd_[b];
}

int64_t Relation::ApproxBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(Relation));
  bytes += static_cast<int64_t>(unary_.capacity()) * sizeof(int32_t);
  bytes += static_cast<int64_t>(unary_set_.domain_size() + 63) / 64 * 8;
  bytes += static_cast<int64_t>(pairs_.capacity()) * sizeof(pairs_[0]);
  // Adjacency lists: vector headers plus elements.
  for (const auto* adj : {&fwd_, &bwd_}) {
    bytes += static_cast<int64_t>(adj->capacity()) * sizeof((*adj)[0]);
    for (const auto& v : *adj) {
      bytes += static_cast<int64_t>(v.capacity()) * sizeof(int32_t);
    }
  }
  bytes += static_cast<int64_t>(fwd_fn_.capacity() + bwd_fn_.capacity()) *
           sizeof(int32_t);
  return bytes;
}

void ExplicitDatabase::AddFact(const std::string& pred) {
  GetOrCreate(pred, 0)->SetNullaryTrue();
}
void ExplicitDatabase::AddFact(const std::string& pred, int32_t a) {
  GetOrCreate(pred, 1)->AddUnary(a);
}
void ExplicitDatabase::AddFact(const std::string& pred, int32_t a, int32_t b) {
  GetOrCreate(pred, 2)->AddBinary(a, b);
}

Relation* ExplicitDatabase::GetOrCreate(const std::string& name,
                                        int32_t arity) {
  auto key = std::make_pair(name, arity);
  auto it = rels_.find(key);
  if (it == rels_.end()) {
    it = rels_.emplace(key, Relation(arity, domain_size_)).first;
  }
  return &it->second;
}

const Relation* ExplicitDatabase::Get(const std::string& name,
                                      int32_t arity) const {
  auto it = rels_.find(std::make_pair(name, arity));
  return it == rels_.end() ? nullptr : &it->second;
}

std::string LabelPredName(const std::string& label) { return "label_" + label; }

std::string LabelFromPredName(const std::string& name) {
  if (name.rfind("label_", 0) == 0) return name.substr(6);
  return "";
}

int32_t ChildKIndex(const std::string& name) {
  if (name.rfind("child", 0) != 0 || name.size() <= 5) return -1;
  int32_t k = 0;
  for (size_t i = 5; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    k = k * 10 + (name[i] - '0');
  }
  return k >= 1 ? k : -1;
}

bool TreeDatabase::IsTreePredicate(const std::string& name, int32_t arity) {
  if (arity == 1) {
    return name == "root" || name == "leaf" || name == "lastsibling" ||
           name == "firstsibling" || !LabelFromPredName(name).empty();
  }
  if (arity == 2) {
    return name == "firstchild" || name == "nextsibling" || name == "child" ||
           name == "lastchild" || name == "nextsibling_tc" ||
           ChildKIndex(name) >= 1;
  }
  return false;
}

const Relation* TreeDatabase::Get(const std::string& name,
                                  int32_t arity) const {
  if (!IsTreePredicate(name, arity)) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto key = std::make_pair(name, arity);
  auto it = cache_.find(key);
  if (it != cache_.end()) return &it->second;
  return Materialize(name, arity);
}

int64_t TreeDatabase::ApproxBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cached_bytes_;
}

const Relation* TreeDatabase::Materialize(const std::string& name,
                                          int32_t arity) const {
  using tree::kNoNode;
  using tree::NodeId;
  const tree::Tree& t = tree_;
  // Span tags must be static strings; collapse the per-label / per-k
  // predicate families onto one tag each.
  telemetry::TraceSpan span(telemetry::CurrentTrace(), "edb.materialize");
  if (span) {
    span.Tag(name == "root"            ? "root"
             : name == "leaf"          ? "leaf"
             : name == "lastsibling"   ? "lastsibling"
             : name == "firstsibling"  ? "firstsibling"
             : name == "firstchild"    ? "firstchild"
             : name == "nextsibling"   ? "nextsibling"
             : name == "child"         ? "child"
             : name == "lastchild"     ? "lastchild"
             : name == "nextsibling_tc" ? "nextsibling_tc"
             : ChildKIndex(name) >= 1  ? "child_k"
                                       : "label");
    span.Value("nodes", t.size());
  }
  Relation rel(arity, t.size());

  if (arity == 1) {
    // Index into a FrozenUnaryEdb's set array (root/leaf/lastsibling/
    // firstsibling, then the label sets); -1 for labels outside the tree's
    // alphabet (those relations are empty either way).
    int32_t frozen_index = -1;
    const std::string label = LabelFromPredName(name);
    if (name == "root") {
      frozen_index = 0;
    } else if (name == "leaf") {
      frozen_index = 1;
    } else if (name == "lastsibling") {
      frozen_index = 2;
    } else if (name == "firstsibling") {
      frozen_index = 3;
    } else if (tree::LabelId id = t.FindLabel(label);
               id != util::kInvalidSymbol) {
      frozen_index = 4 + id;
    }
    if (frozen_ != nullptr && frozen_index >= 0 &&
        frozen_index < 4 + frozen_->num_labels) {
      // Frozen document: the membership bit-array was packed into the blob
      // at corpus-build time — load it wholesale, no node scan.
      rel.LoadUnaryBits(frozen_->set(frozen_index), t.size());
    } else if (name == "root" || name == "leaf" || name == "lastsibling" ||
               name == "firstsibling") {
      for (NodeId n = 0; n < t.size(); ++n) {
        const bool in = name == "root"          ? t.IsRoot(n)
                        : name == "leaf"        ? t.IsLeaf(n)
                        : name == "lastsibling" ? t.IsLastSibling(n)
                                                : t.IsFirstSibling(n);
        if (in) rel.AddUnary(n);
      }
    } else if (tree::LabelId id = t.FindLabel(label);
               id != util::kInvalidSymbol) {
      // Compare interned ids, not strings: one int compare per node.
      for (NodeId n = 0; n < t.size(); ++n) {
        if (t.label(n) == id) rel.AddUnary(n);
      }
    }
    // else: label not in the alphabet — empty relation (Remark 2.2).
  } else {
    int32_t k = ChildKIndex(name);
    for (NodeId n = 0; n < t.size(); ++n) {
      if (name == "firstchild") {
        if (t.first_child(n) != kNoNode) rel.AddBinary(n, t.first_child(n));
      } else if (name == "nextsibling") {
        if (t.next_sibling(n) != kNoNode) rel.AddBinary(n, t.next_sibling(n));
      } else if (name == "child") {
        for (NodeId c = t.first_child(n); c != kNoNode; c = t.next_sibling(c)) {
          rel.AddBinary(n, c);
        }
      } else if (name == "lastchild") {
        if (t.last_child(n) != kNoNode) rel.AddBinary(n, t.last_child(n));
      } else if (name == "nextsibling_tc") {
        // Reflexive-transitive closure of nextsibling ([[E*]] is reflexive on
        // the whole domain, Section 2).
        rel.AddBinary(n, n);
        for (NodeId s = t.next_sibling(n); s != kNoNode; s = t.next_sibling(s)) {
          rel.AddBinary(n, s);
        }
      } else if (k >= 1) {
        NodeId c = t.ChildK(n, k);
        if (c != kNoNode) rel.AddBinary(n, c);
      }
    }
  }

  auto [it, inserted] =
      cache_.emplace(std::make_pair(name, arity), std::move(rel));
  MD_CHECK(inserted);
  cached_bytes_ +=
      static_cast<int64_t>(it->first.first.capacity()) +
      it->second.ApproxBytes();
  return &it->second;
}

}  // namespace mdatalog::core
