#include "src/core/eval.h"

#include <algorithm>
#include <optional>

#include "src/core/compiled.h"
#include "src/core/validate.h"
#include "src/util/check.h"

namespace mdatalog::core {

bool EvalResult::NullaryTrue(PredId p) const {
  const PredFacts* f = FactsOf(p);
  return f != nullptr && f->nullary_true;
}

bool EvalResult::ContainsUnary(PredId p, int32_t a) const {
  const PredFacts* f = FactsOf(p);
  return f != nullptr && f->arity == 1 && f->unary.Contains(a);
}

bool EvalResult::ContainsBinary(PredId p, int32_t a, int32_t b) const {
  const PredFacts* f = FactsOf(p);
  return f != nullptr && f->arity == 2 &&
         std::binary_search(f->pairs.begin(), f->pairs.end(),
                            std::make_pair(a, b));
}

std::vector<int32_t> EvalResult::Unary(PredId p) const {
  const PredFacts* f = FactsOf(p);
  if (f == nullptr || f->arity != 1) return {};
  return f->unary.ToVector();
}

std::vector<std::pair<int32_t, int32_t>> EvalResult::Binary(PredId p) const {
  const PredFacts* f = FactsOf(p);
  if (f == nullptr || f->arity != 2) return {};
  return f->pairs;
}

std::vector<int32_t> EvalResult::Query() const {
  MD_CHECK(query_pred_ >= 0);
  return Unary(query_pred_);
}

/// Shared machinery for the naive and semi-naive engines, running over a
/// CompiledProgram with dense, PredId-indexed stores:
///   arity 0: one flag per predicate;
///   arity 1: a NodeSet bitset per predicate (total and delta);
///   arity 2: a Relation per intensional predicate (rare — the non-monadic
///            baselines of Section 3.2).
class FixpointEngine {
 public:
  FixpointEngine(const Program& program, const EdbSource& edb,
                 const EvalOptions& options)
      : program_(program),
        edb_(edb),
        options_(options),
        ticker_(options.control),
        domain_size_(edb.DomainSize()) {}

  util::Result<EvalResult> RunNaive() {
    MD_RETURN_NOT_OK(Setup());
    std::vector<int32_t> binding;
    while (true) {
      MD_RETURN_NOT_OK(ControlCheck());
      // One T_P application against the current set; collect additions and
      // apply them after the full pass (Definition 3.1 semantics).
      std::vector<FlatAtom> additions;
      std::vector<int32_t> by_rule;
      const auto& rules = compiled_->rules();
      for (size_t ri = 0; ri < rules.size(); ++ri) {
        const CompiledRule& cr = rules[ri];
        if (cr.base.dead) continue;
        if (cr.base.set_unary) {
          EvalSetPlan(cr.base, cr.head.pred);
          scratch_.ForEach([&](int32_t a) {
            additions.push_back({cr.head.pred, a, -1, 1});
            by_rule.push_back(static_cast<int32_t>(ri));
          });
          continue;
        }
        binding.assign(std::max(cr.num_vars, 1), -1);
        auto emit = [&](const std::vector<int32_t>& b) {
          FlatAtom head = InstantiateHead(cr.head, b);
          if (InDomain(head) && !Holds(head)) {
            additions.push_back(head);
            by_rule.push_back(static_cast<int32_t>(ri));
          }
        };
        Exec(cr.base, 0, binding, emit);
      }
      if (aborted_) return abort_status_;
      // Deduplicate within the stage (several rules may derive one atom; the
      // first deriving rule is reported, matching the paper's annotations).
      EvalStage stage;
      int64_t added = 0;
      for (size_t i = 0; i < additions.size(); ++i) {
        if (!Holds(additions[i])) {
          Insert(additions[i]);
          ++added;
          if (options_.trace) {
            stage.new_atoms.push_back(ToGroundAtom(additions[i]));
            stage.derived_by_rule.push_back(by_rule[i]);
          }
        }
      }
      ++result_.num_iterations_;
      if (added == 0) break;
      result_.num_derived_ += added;
      if (options_.trace) result_.stages_.push_back(std::move(stage));
      if (options_.max_derived >= 0 &&
          result_.num_derived_ > options_.max_derived) {
        return util::Status::ResourceExhausted("max_derived exceeded");
      }
    }
    return Finish();
  }

  util::Result<EvalResult> RunSemiNaive() {
    MD_RETURN_NOT_OK(Setup());
    MD_RETURN_NOT_OK(ControlCheck());  // fast-fail before round 0
    // Round 0: full evaluation seeds the deltas. Candidates are buffered and
    // inserted only after each rule's enumeration completes — inserting
    // during enumeration would mutate relations the join is iterating.
    std::vector<FlatAtom> delta;
    std::vector<FlatAtom> buffer;
    std::vector<int32_t> binding;
    auto flush_buffer = [&](std::vector<FlatAtom>* sink) {
      for (const FlatAtom& g : buffer) {
        if (!Holds(g)) {
          Insert(g);
          sink->push_back(g);
        }
      }
      buffer.clear();
    };
    auto emit = [&](const CompiledRule& cr) {
      return [&, head = &cr.head](const std::vector<int32_t>& b) {
        FlatAtom g = InstantiateHead(*head, b);
        if (InDomain(g) && !Holds(g)) buffer.push_back(g);
      };
    };
    for (const CompiledRule& cr : compiled_->rules()) {
      if (!cr.base.dead) {
        if (cr.base.set_unary) {
          EvalSetPlan(cr.base, cr.head.pred);
          scratch_.ForEach(
              [&](int32_t a) { buffer.push_back({cr.head.pred, a, -1, 1}); });
        } else {
          binding.assign(std::max(cr.num_vars, 1), -1);
          Exec(cr.base, 0, binding, emit(cr));
        }
      }
      if (aborted_) return abort_status_;
      flush_buffer(&delta);
    }
    result_.num_derived_ += static_cast<int64_t>(delta.size());
    ++result_.num_iterations_;
    std::vector<FlatAtom> next_delta;
    while (!delta.empty()) {
      MD_RETURN_NOT_OK(ControlCheck());
      LoadDelta(delta);
      next_delta.clear();
      for (const CompiledRule& cr : compiled_->rules()) {
        for (const DeltaPlan& dp : cr.delta_plans) {
          if (dp.plan.dead) continue;
          if (!delta_present_[dp.pred]) continue;
          if (dp.plan.set_unary) {
            EvalSetPlan(dp.plan, cr.head.pred);
            scratch_.ForEach(
                [&](int32_t a) { buffer.push_back({cr.head.pred, a, -1, 1}); });
          } else {
            binding.assign(std::max(cr.num_vars, 1), -1);
            Exec(dp.plan, 0, binding, emit(cr));
          }
          if (aborted_) return abort_status_;
          flush_buffer(&next_delta);
        }
      }
      result_.num_derived_ += static_cast<int64_t>(next_delta.size());
      ++result_.num_iterations_;
      if (options_.max_derived >= 0 &&
          result_.num_derived_ > options_.max_derived) {
        return util::Status::ResourceExhausted("max_derived exceeded");
      }
      delta.swap(next_delta);
    }
    return Finish();
  }

 private:
  /// A derived atom in flat form — no per-atom heap allocation.
  struct FlatAtom {
    PredId pred;
    int32_t a;
    int32_t b;
    int8_t arity;
  };

  /// Deadline/cancellation poll between rounds (full check, cheap at round
  /// granularity). No-op without an EvalControl.
  util::Status ControlCheck() {
    if (aborted_) return abort_status_;
    return options_.control != nullptr ? options_.control->Check()
                                       : util::Status::OK();
  }

  /// Strided poll inside the join enumeration: one call per Exec step visit,
  /// so overshoot stays within one ticker stride even when the enumeration
  /// never emits (every candidate failing the last check is exactly the
  /// pathological shape a deadline must bound). Returns false once aborted;
  /// the recursion then unwinds and the engine returns abort_status_.
  bool TickStep() {
    if (aborted_) return false;
    if (!ticker_.active()) return true;
    util::Status s = ticker_.Tick();
    if (!s.ok()) {
      aborted_ = true;
      abort_status_ = std::move(s);
      return false;
    }
    return true;
  }

  util::Status Setup() {
    MD_RETURN_NOT_OK(CheckSafety(program_));
    const PredicateTable& preds = program_.preds();
    std::vector<bool> intensional = program_.IntensionalMask();
    for (PredId p = 0; p < preds.size(); ++p) {
      if (intensional[p] && preds.Arity(p) > 2) {
        return util::Status::Unimplemented(
            "intensional predicates of arity > 2 are not supported");
      }
    }
    result_.query_pred_ = program_.query_pred();
    compiled_.emplace(program_, edb_);

    const int32_t np = preds.size();
    nullary_.assign(np, 0);
    delta_nullary_.assign(np, 0);
    delta_present_.assign(np, 0);
    unary_.resize(np);
    delta_unary_.resize(np);
    binary_.resize(np);
    delta_binary_.resize(np);
    for (PredId p = 0; p < np; ++p) {
      if (!intensional[p]) continue;
      switch (preds.Arity(p)) {
        case 1:
          unary_[p].Reset(domain_size_);
          delta_unary_[p].Reset(domain_size_);
          break;
        case 2:
          binary_[p].emplace(2, std::max(domain_size_, 1));
          delta_binary_[p].emplace(2, std::max(domain_size_, 1));
          break;
        default:
          break;
      }
    }
    return util::Status::OK();
  }

  util::Result<EvalResult> Finish() {
    const PredicateTable& preds = program_.preds();
    result_.facts_.resize(preds.size());
    for (PredId p = 0; p < preds.size(); ++p) {
      if (!compiled_->intensional()[p]) continue;
      EvalResult::PredFacts& f = result_.facts_[p];
      switch (preds.Arity(p)) {
        case 0:
          if (nullary_[p]) {
            f.arity = 0;
            f.nullary_true = true;
          }
          break;
        case 1:
          if (!unary_[p].empty()) {
            f.arity = 1;
            f.unary = std::move(unary_[p]);
          }
          break;
        default:
          if (binary_[p]->size() > 0) {
            f.arity = 2;
            f.pairs = binary_[p]->binary_tuples();
            std::sort(f.pairs.begin(), f.pairs.end());
          }
          break;
      }
    }
    return std::move(result_);
  }

  bool InDomain(const FlatAtom& g) const {
    if (g.arity >= 1 && (g.a < 0 || g.a >= domain_size_)) return false;
    if (g.arity == 2 && (g.b < 0 || g.b >= domain_size_)) return false;
    return true;
  }

  bool Holds(const FlatAtom& g) const {
    switch (g.arity) {
      case 0: return nullary_[g.pred] != 0;
      case 1: return unary_[g.pred].Contains(g.a);
      default: return binary_[g.pred]->ContainsBinary(g.a, g.b);
    }
  }

  void Insert(const FlatAtom& g) {
    switch (g.arity) {
      case 0: nullary_[g.pred] = 1; break;
      case 1: unary_[g.pred].Insert(g.a); break;
      default: binary_[g.pred]->AddBinary(g.a, g.b);
    }
  }

  /// Rebuilds the delta stores from the atoms of the previous round,
  /// clearing only the predicates the previous load touched.
  void LoadDelta(const std::vector<FlatAtom>& delta) {
    for (PredId p : delta_touched_) {
      delta_present_[p] = 0;
      switch (program_.preds().Arity(p)) {
        case 0: delta_nullary_[p] = 0; break;
        case 1: delta_unary_[p].Clear(); break;
        default: delta_binary_[p].emplace(2, std::max(domain_size_, 1));
      }
    }
    delta_touched_.clear();
    for (const FlatAtom& g : delta) {
      if (!delta_present_[g.pred]) {
        delta_present_[g.pred] = 1;
        delta_touched_.push_back(g.pred);
      }
      switch (g.arity) {
        case 0: delta_nullary_[g.pred] = 1; break;
        case 1: delta_unary_[g.pred].Insert(g.a); break;
        default: delta_binary_[g.pred]->AddBinary(g.a, g.b);
      }
    }
  }

  static FlatAtom InstantiateHead(const CompiledHead& h,
                                  const std::vector<int32_t>& binding) {
    FlatAtom g{h.pred, -1, -1, h.arity};
    if (h.arity >= 1) g.a = h.a0.is_var ? binding[h.a0.v] : h.a0.v;
    if (h.arity == 2) g.b = h.a1.is_var ? binding[h.a1.v] : h.a1.v;
    return g;
  }

  static GroundAtom ToGroundAtom(const FlatAtom& g) {
    GroundAtom out;
    out.pred = g.pred;
    if (g.arity >= 1) out.args.push_back(g.a);
    if (g.arity == 2) out.args.push_back(g.b);
    return out;
  }

  const Relation* BinaryRel(const PlanStep& s) const {
    if (!s.idb) return s.edb;
    const auto& store = s.delta ? delta_binary_ : binary_;
    return store[s.pred].has_value() ? &*store[s.pred] : nullptr;
  }

  static int32_t Val(const StepArg& a, const std::vector<int32_t>& binding) {
    return a.is_var ? binding[a.v] : a.v;
  }

  /// Word-parallel evaluation of a set-plan (p(x) ← q1(x), …, qk(x)):
  /// leaves scratch_ = (∩ sources) − head's total relation — exactly the
  /// candidates the enumerating path would emit, in ascending order.
  void EvalSetPlan(const RulePlan& plan, PredId head_pred) {
    bool first = true;
    for (const PlanStep& s : plan.steps) {
      const NodeSet& src = s.idb ? (s.delta ? delta_unary_ : unary_)[s.pred]
                                 : s.edb->unary_set();
      if (first) {
        scratch_ = src;
        first = false;
      } else {
        scratch_.IntersectWith(src);
      }
      if (scratch_.empty()) return;
    }
    scratch_.DifferenceWith(unary_[head_pred]);
  }

  /// Executes the plan from `depth` on. Bound/free argument status is baked
  /// into the step kinds, so there is no runtime planning, no binding resets
  /// and no string lookups.
  template <typename Emit>
  void Exec(const RulePlan& plan, size_t depth, std::vector<int32_t>& binding,
            const Emit& emit) {
    if (!TickStep()) return;  // deadline/cancel fired: unwind the enumeration
    if (depth == plan.steps.size()) {
      emit(binding);
      return;
    }
    const PlanStep& s = plan.steps[depth];
    switch (s.kind) {
      case PlanStep::Kind::kNullaryCheck: {
        const bool holds =
            s.idb ? (s.delta ? delta_nullary_ : nullary_)[s.pred] != 0
                  : s.edb->nullary_true();
        if (holds) Exec(plan, depth + 1, binding, emit);
        return;
      }
      case PlanStep::Kind::kUnaryCheck: {
        const int32_t v = Val(s.a0, binding);
        const bool holds =
            s.idb ? (s.delta ? delta_unary_ : unary_)[s.pred].Contains(v)
                  : s.edb->ContainsUnary(v);
        if (holds) Exec(plan, depth + 1, binding, emit);
        return;
      }
      case PlanStep::Kind::kUnaryScan: {
        const int32_t var = s.a0.v;
        if (s.idb) {
          (s.delta ? delta_unary_ : unary_)[s.pred].ForEach([&](int32_t m) {
            binding[var] = m;
            Exec(plan, depth + 1, binding, emit);
          });
        } else {
          for (int32_t m : s.edb->unary_tuples()) {
            binding[var] = m;
            Exec(plan, depth + 1, binding, emit);
          }
        }
        return;
      }
      case PlanStep::Kind::kBinaryCheck: {
        const Relation* rel = BinaryRel(s);
        if (rel != nullptr &&
            rel->ContainsBinary(Val(s.a0, binding), Val(s.a1, binding))) {
          Exec(plan, depth + 1, binding, emit);
        }
        return;
      }
      case PlanStep::Kind::kBinaryFnForward: {
        const int32_t m = s.edb->ForwardOne(Val(s.a0, binding));
        if (m >= 0) {
          binding[s.a1.v] = m;
          Exec(plan, depth + 1, binding, emit);
        }
        return;
      }
      case PlanStep::Kind::kBinaryFnBackward: {
        const int32_t m = s.edb->BackwardOne(Val(s.a1, binding));
        if (m >= 0) {
          binding[s.a0.v] = m;
          Exec(plan, depth + 1, binding, emit);
        }
        return;
      }
      case PlanStep::Kind::kBinaryScanForward: {
        const Relation* rel = BinaryRel(s);
        if (rel == nullptr) return;
        const int32_t var = s.a1.v;
        for (int32_t m : rel->Forward(Val(s.a0, binding))) {
          binding[var] = m;
          Exec(plan, depth + 1, binding, emit);
        }
        return;
      }
      case PlanStep::Kind::kBinaryScanBackward: {
        const Relation* rel = BinaryRel(s);
        if (rel == nullptr) return;
        const int32_t var = s.a0.v;
        for (int32_t m : rel->Backward(Val(s.a1, binding))) {
          binding[var] = m;
          Exec(plan, depth + 1, binding, emit);
        }
        return;
      }
      case PlanStep::Kind::kBinaryScanAll: {
        const Relation* rel = BinaryRel(s);
        if (rel == nullptr) return;
        if (s.same_var) {
          // Identical variables in one atom: R(x, x).
          for (const auto& [x, y] : rel->binary_tuples()) {
            if (x != y) continue;
            binding[s.a0.v] = x;
            Exec(plan, depth + 1, binding, emit);
          }
        } else {
          for (const auto& [x, y] : rel->binary_tuples()) {
            binding[s.a0.v] = x;
            binding[s.a1.v] = y;
            Exec(plan, depth + 1, binding, emit);
          }
        }
        return;
      }
    }
  }

  const Program& program_;
  const EdbSource& edb_;
  const EvalOptions& options_;
  util::EvalTicker ticker_;
  bool aborted_ = false;
  util::Status abort_status_ = util::Status::OK();
  int32_t domain_size_;
  std::optional<CompiledProgram> compiled_;

  // Dense PredId-indexed stores (total and delta).
  std::vector<uint8_t> nullary_, delta_nullary_;
  std::vector<NodeSet> unary_, delta_unary_;
  std::vector<std::optional<Relation>> binary_, delta_binary_;
  std::vector<uint8_t> delta_present_;
  std::vector<PredId> delta_touched_;
  NodeSet scratch_;  // set-plan workspace

  EvalResult result_;
};

util::Result<EvalResult> EvaluateNaive(const Program& program,
                                       const EdbSource& edb,
                                       const EvalOptions& options) {
  FixpointEngine engine(program, edb, options);
  return engine.RunNaive();
}

util::Result<EvalResult> EvaluateSemiNaive(const Program& program,
                                           const EdbSource& edb,
                                           const EvalOptions& options) {
  FixpointEngine engine(program, edb, options);
  return engine.RunSemiNaive();
}

}  // namespace mdatalog::core
