#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/nodeset.h"
#include "src/tree/tree.h"
#include "src/util/result.h"

/// \file database.h
/// Extensional databases: relation storage plus the two ways an EDB arises in
/// this library — explicitly (arbitrary finite structures, Section 3.2) or as
/// the relational view of a tree (the schemata τ_rk / τ_ur of Section 2, plus
/// the Section 5/6 extensions child, lastchild, firstsibling, nextsibling*).

namespace mdatalog::core {

/// A finite relation of arity 0..2 over domain {0..domain_size-1}, with the
/// access paths the evaluators need. Arity 0 relations are "true/false"
/// (tuples empty or one empty tuple).
class Relation {
 public:
  explicit Relation(int32_t arity, int32_t domain_size)
      : arity_(arity), domain_size_(domain_size) {}

  int32_t arity() const { return arity_; }
  int32_t domain_size() const { return domain_size_; }

  void AddUnary(int32_t a);
  void AddBinary(int32_t a, int32_t b);
  void SetNullaryTrue() { nullary_true_ = true; }

  bool nullary_true() const { return nullary_true_; }
  bool ContainsUnary(int32_t a) const;
  bool ContainsBinary(int32_t a, int32_t b) const;

  /// Bulk-loads a unary relation from a packed bit-array ((domain_size+63)/64
  /// words, trailing bits zero) — the corpus-store path. Replaces any
  /// existing members; the tuple vector is rebuilt in ascending order.
  void LoadUnaryBits(const uint64_t* words, int32_t domain_size);

  /// All members of a unary relation.
  const std::vector<int32_t>& unary_tuples() const { return unary_; }
  /// Membership bitset of a unary relation (word-level access for the
  /// engine's set-plan fast path). Domain-sized once any member was added.
  const NodeSet& unary_set() const { return unary_set_; }
  /// All pairs of a binary relation.
  const std::vector<std::pair<int32_t, int32_t>>& binary_tuples() const {
    return pairs_;
  }
  /// Successors of `a` (pairs (a, b)).
  const std::vector<int32_t>& Forward(int32_t a) const;
  /// Predecessors of `b` (pairs (a, b)).
  const std::vector<int32_t>& Backward(int32_t b) const;

  /// True iff every element has at most one successor (predecessor). The
  /// binary tree predicates firstchild / nextsibling / child_k are functional
  /// in both directions (Proposition 4.1); the compiled engine exploits this
  /// with O(1) array probes instead of adjacency-list walks.
  bool forward_functional() const { return fwd_functional_; }
  bool backward_functional() const { return bwd_functional_; }
  /// The unique successor of `a`, or -1. Requires forward_functional().
  int32_t ForwardOne(int32_t a) const {
    MD_DCHECK(fwd_functional_);
    return (a < 0 || a >= domain_size_ || fwd_fn_.empty()) ? -1 : fwd_fn_[a];
  }
  /// The unique predecessor of `b`, or -1. Requires backward_functional().
  int32_t BackwardOne(int32_t b) const {
    MD_DCHECK(bwd_functional_);
    return (b < 0 || b >= domain_size_ || bwd_fn_.empty()) ? -1 : bwd_fn_[b];
  }

  int64_t size() const {
    if (arity_ == 0) return nullary_true_ ? 1 : 0;
    if (arity_ == 1) return static_cast<int64_t>(unary_.size());
    return static_cast<int64_t>(pairs_.size());
  }

  /// Approximate heap footprint in bytes (for cache byte-budget accounting).
  int64_t ApproxBytes() const;

 private:
  int32_t arity_;
  int32_t domain_size_;
  bool nullary_true_ = false;
  // unary
  std::vector<int32_t> unary_;
  NodeSet unary_set_;
  // binary
  std::vector<std::pair<int32_t, int32_t>> pairs_;
  std::vector<std::vector<int32_t>> fwd_;
  std::vector<std::vector<int32_t>> bwd_;
  // functional fast path: y = fwd_fn_[x] / x = bwd_fn_[y], -1 = no image;
  // valid only while the corresponding *_functional_ flag holds.
  std::vector<int32_t> fwd_fn_;
  std::vector<int32_t> bwd_fn_;
  bool fwd_functional_ = true;
  bool bwd_functional_ = true;
  static const std::vector<int32_t> kEmpty;
};

/// Hash for the (name, arity) relation keys of the databases below.
struct RelKeyHash {
  size_t operator()(const std::pair<std::string, int32_t>& k) const {
    return std::hash<std::string>{}(k.first) * 31 +
           static_cast<size_t>(k.second);
  }
};

/// Where extensional facts come from. Implementations return nullptr for
/// predicates with no extension (legal: such predicates are empty).
class EdbSource {
 public:
  virtual ~EdbSource() = default;
  /// Relation for predicate `name` of the given arity, or nullptr if empty.
  virtual const Relation* Get(const std::string& name, int32_t arity) const = 0;
  /// Domain size (constants and variables range over 0..DomainSize()-1).
  virtual int32_t DomainSize() const = 0;
};

/// An arbitrary finite structure, stated fact by fact.
class ExplicitDatabase : public EdbSource {
 public:
  explicit ExplicitDatabase(int32_t domain_size) : domain_size_(domain_size) {}

  void AddFact(const std::string& pred);                          // arity 0
  void AddFact(const std::string& pred, int32_t a);               // arity 1
  void AddFact(const std::string& pred, int32_t a, int32_t b);    // arity 2

  const Relation* Get(const std::string& name, int32_t arity) const override;
  int32_t DomainSize() const override { return domain_size_; }

 private:
  Relation* GetOrCreate(const std::string& name, int32_t arity);
  int32_t domain_size_;
  std::unordered_map<std::pair<std::string, int32_t>, Relation, RelKeyHash>
      rels_;
};

/// The relational view of a tree. Serves, lazily materialized:
///
///   τ_ur:   root/1, leaf/1, lastsibling/1, label_<l>/1,
///           firstchild/2, nextsibling/2
///   τ_rk:   child1/2 … child<K>/2 (child_k of Section 2)
///   ext:    firstsibling/1, child/2, lastchild/2,
///           nextsibling_tc/2 (the reflexive-transitive closure nextsibling*
///           used by the TMNF chase, Lemma 5.5)
///
/// label_<l> for a label l not occurring in the tree is the empty relation,
/// consistent with the infinite-alphabet reading of Remark 2.2.
///
/// Thread safety: the lazy materialization cache is mutex-guarded, so a
/// single TreeDatabase may serve concurrent Get() calls from many evaluation
/// threads (the serving runtime shares one instance per cached document).
/// Returned Relation pointers stay valid for the database's lifetime — the
/// node-based map never invalidates values — and Relations are immutable
/// once published. The lock is only taken on the Get path, which engines hit
/// once per (program, atom) at plan-compile time, never per tuple.
/// Borrowed view of the per-predicate unary bit-arrays a corpus-store blob
/// carries, so the τ_ur unary relations of a frozen document load as one
/// memcpy each instead of an O(n) node scan. Layout: `sets` is
/// (4 + num_labels) consecutive bit-arrays of `words_per_set` uint64 words —
/// root, leaf, lastsibling, firstsibling, then label_<l> for label ids
/// 0..num_labels-1 in the tree's interner order. The referenced memory must
/// outlive the TreeDatabase (the store's mapping does).
struct FrozenUnaryEdb {
  const uint64_t* sets = nullptr;
  int32_t num_labels = 0;
  int32_t words_per_set = 0;

  const uint64_t* set(int32_t index) const {
    return sets + static_cast<size_t>(index) * words_per_set;
  }
};

class TreeDatabase : public EdbSource {
 public:
  explicit TreeDatabase(const tree::Tree& t) : tree_(t) {}
  /// A database over a frozen tree whose unary EDB bit-arrays were packed
  /// into the blob alongside it. `frozen` may be null (plain lazy scans) and
  /// is borrowed: the caller keeps the underlying mapping alive.
  TreeDatabase(const tree::Tree& t, const FrozenUnaryEdb* frozen)
      : tree_(t), frozen_(frozen) {}
  // The database only references the tree; binding a temporary would dangle.
  explicit TreeDatabase(tree::Tree&&) = delete;

  const Relation* Get(const std::string& name, int32_t arity) const override;
  int32_t DomainSize() const override { return tree_.size(); }

  const tree::Tree& tree() const { return tree_; }

  /// True iff `name`/`arity` is one of the tree-schema predicate names above.
  static bool IsTreePredicate(const std::string& name, int32_t arity);

  /// Approximate heap footprint of the materialized relations, in bytes.
  /// Grows as queries touch new predicates; the document cache re-reads it
  /// on every hit to keep its byte accounting honest. O(1) — the counter is
  /// maintained incrementally at materialization time, so re-reading it on
  /// the serving hot path costs one mutex acquisition, not a heap walk.
  int64_t ApproxBytes() const;

 private:
  /// Requires mu_ held.
  const Relation* Materialize(const std::string& name, int32_t arity) const;

  const tree::Tree& tree_;
  const FrozenUnaryEdb* frozen_ = nullptr;  // borrowed, may be null
  mutable std::mutex mu_;
  mutable std::unordered_map<std::pair<std::string, int32_t>, Relation,
                             RelKeyHash>
      cache_;
  mutable int64_t cached_bytes_ = 0;  // Σ ApproxBytes of cache_ entries
};

/// Name of the label predicate for label `l` ("label_" + l).
std::string LabelPredName(const std::string& label);
/// If `name` is a label predicate, returns the label; otherwise "".
std::string LabelFromPredName(const std::string& name);
/// If `name` is child<k> (k >= 1), returns k; otherwise -1.
int32_t ChildKIndex(const std::string& name);

}  // namespace mdatalog::core
