#pragma once

#include <string>
#include <vector>

#include "src/core/ast.h"

/// \file examples.h
/// Monadic datalog programs from the paper, plus small reusable queries used
/// across tests, examples and benchmarks.

namespace mdatalog::core {

/// The Example 3.2 program: selects nodes that root subtrees containing an
/// even number of nodes labeled "a". Rules (1)–(6) with i, j ∈ {0,1} and one
/// instance of rule (4) per label in `other_labels` (= Σ − {a}). The query
/// predicate is c0.
Program EvenAProgram(const std::vector<std::string>& other_labels = {});

/// Selects nodes that have a proper ancestor labeled `label` (descendant
/// propagation through the firstchild/nextsibling encoding).
Program HasAncestorProgram(const std::string& label);

/// Selects all leaves at even depth (root depth = 0). Uses the parity of the
/// child relation through firstchild/nextsibling; query predicate "evenleaf".
Program EvenDepthLeafProgram();

/// A program-size scaling family for Theorem 4.2 benchmarks: a chain
/// p0(x) ← root(x); p_{i+1}(x) ← p_i(x) for i < m. Query predicate p_m.
Program ChainProgram(int32_t m);

/// Selects every node (the "dom" pattern of Theorem 6.5's proof):
///   dom(x) ← root(x).   dom(y) ← dom(x), firstchild(x,y).
///   dom(y) ← dom(x), nextsibling(x,y).
Program DomProgram();

}  // namespace mdatalog::core
