#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "src/core/simd_kernels.h"
#include "src/util/bits.h"
#include "src/util/check.h"

/// \file nodeset.h
/// Dense bitset over the evaluation domain {0..domain_size-1}.
///
/// Monadic datalog's intensional predicates are node *sets* (arity ≤ 1), so
/// the engine stores every unary IDB relation and semi-naive delta as a
/// NodeSet: one bit per domain element, packed into 64-bit words. Membership
/// and insertion are O(1); union/intersection/difference run through the
/// runtime-dispatched kernels of simd_kernels.h (AVX2 with a scalar
/// fallback); iteration visits members in ascending order via
/// count-trailing-zeros.

namespace mdatalog::core {

class NodeSet {
 public:
  NodeSet() = default;
  explicit NodeSet(int32_t domain_size) { Reset(domain_size); }

  /// Resizes to `domain_size` and clears all members.
  void Reset(int32_t domain_size) {
    MD_DCHECK(domain_size >= 0);
    domain_size_ = domain_size;
    count_ = 0;
    words_.assign((static_cast<size_t>(domain_size) + 63) / 64, 0);
  }

  /// Resizes to `domain_size` and loads the membership words from `words`
  /// ((domain_size+63)/64 of them) — the bulk path for bit-arrays frozen
  /// into a corpus-store blob. Trailing bits past domain_size must be zero.
  void AssignWords(const uint64_t* words, int32_t domain_size) {
    MD_DCHECK(domain_size >= 0);
    domain_size_ = domain_size;
    words_.resize((static_cast<size_t>(domain_size) + 63) / 64);
    if (!words_.empty()) {
      std::memcpy(words_.data(), words, words_.size() * sizeof(uint64_t));
    }
    count_ = simd::Count(words_.data(), words_.size());
  }

  int32_t domain_size() const { return domain_size_; }
  bool empty() const { return count_ == 0; }
  int64_t count() const { return count_; }

  /// Word-level read access (for freezing a set into a blob).
  const uint64_t* words() const { return words_.data(); }
  size_t num_words() const { return words_.size(); }

  /// Membership; out-of-domain values are simply not members.
  bool Contains(int32_t a) const {
    if (a < 0 || a >= domain_size_) return false;
    return (words_[static_cast<size_t>(a) >> 6] >> (a & 63)) & 1;
  }

  /// Inserts `a` (must be in-domain). Returns true iff newly inserted.
  bool Insert(int32_t a) {
    MD_DCHECK(a >= 0 && a < domain_size_);
    uint64_t& w = words_[static_cast<size_t>(a) >> 6];
    const uint64_t m = uint64_t{1} << (a & 63);
    if (w & m) return false;
    w |= m;
    ++count_;
    return true;
  }

  /// Removes all members; keeps the domain size.
  void Clear() {
    if (count_ == 0) return;
    std::fill(words_.begin(), words_.end(), 0);
    count_ = 0;
  }

  /// this ∪= other. Domains must match.
  void UnionWith(const NodeSet& other) {
    MD_DCHECK(domain_size_ == other.domain_size_);
    count_ = simd::OrAssignCount(words_.data(), other.words_.data(),
                                 words_.size());
  }

  /// this ∩= other. Domains must match.
  void IntersectWith(const NodeSet& other) {
    MD_DCHECK(domain_size_ == other.domain_size_);
    count_ = simd::AndAssignCount(words_.data(), other.words_.data(),
                                  words_.size());
  }

  /// this −= other. Domains must match.
  void DifferenceWith(const NodeSet& other) {
    MD_DCHECK(domain_size_ == other.domain_size_);
    count_ = simd::AndNotAssignCount(words_.data(), other.words_.data(),
                                     words_.size());
  }

  /// Smallest member, or -1 when empty.
  int32_t FindFirst() const {
    if (count_ == 0) return -1;
    return static_cast<int32_t>(simd::FindFirst(words_.data(), words_.size()));
  }

  /// Calls fn(member) for every member, in ascending order.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        const int32_t b = util::Ctz64(w);
        fn(static_cast<int32_t>(wi * 64) + b);
        w &= w - 1;
      }
    }
  }

  /// Members as a sorted-ascending vector.
  std::vector<int32_t> ToVector() const {
    std::vector<int32_t> out;
    out.reserve(static_cast<size_t>(count_));
    ForEach([&](int32_t a) { out.push_back(a); });
    return out;
  }

  bool operator==(const NodeSet& other) const {
    return domain_size_ == other.domain_size_ && words_ == other.words_;
  }

 private:
  int32_t domain_size_ = 0;
  int64_t count_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace mdatalog::core
