#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "src/util/check.h"

/// \file nodeset.h
/// Dense bitset over the evaluation domain {0..domain_size-1}.
///
/// Monadic datalog's intensional predicates are node *sets* (arity ≤ 1), so
/// the engine stores every unary IDB relation and semi-naive delta as a
/// NodeSet: one bit per domain element, packed into 64-bit words. Membership
/// and insertion are O(1); union/intersection/difference are word-parallel;
/// iteration visits members in ascending order via count-trailing-zeros.

namespace mdatalog::core {

class NodeSet {
 public:
  NodeSet() = default;
  explicit NodeSet(int32_t domain_size) { Reset(domain_size); }

  /// Resizes to `domain_size` and clears all members.
  void Reset(int32_t domain_size) {
    MD_DCHECK(domain_size >= 0);
    domain_size_ = domain_size;
    count_ = 0;
    words_.assign((static_cast<size_t>(domain_size) + 63) / 64, 0);
  }

  int32_t domain_size() const { return domain_size_; }
  bool empty() const { return count_ == 0; }
  int64_t count() const { return count_; }

  /// Membership; out-of-domain values are simply not members.
  bool Contains(int32_t a) const {
    if (a < 0 || a >= domain_size_) return false;
    return (words_[static_cast<size_t>(a) >> 6] >> (a & 63)) & 1;
  }

  /// Inserts `a` (must be in-domain). Returns true iff newly inserted.
  bool Insert(int32_t a) {
    MD_DCHECK(a >= 0 && a < domain_size_);
    uint64_t& w = words_[static_cast<size_t>(a) >> 6];
    const uint64_t m = uint64_t{1} << (a & 63);
    if (w & m) return false;
    w |= m;
    ++count_;
    return true;
  }

  /// Removes all members; keeps the domain size.
  void Clear() {
    if (count_ == 0) return;
    std::fill(words_.begin(), words_.end(), 0);
    count_ = 0;
  }

  /// this ∪= other. Domains must match.
  void UnionWith(const NodeSet& other) {
    MD_DCHECK(domain_size_ == other.domain_size_);
    count_ = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
      words_[i] |= other.words_[i];
      count_ += std::popcount(words_[i]);
    }
  }

  /// this ∩= other. Domains must match.
  void IntersectWith(const NodeSet& other) {
    MD_DCHECK(domain_size_ == other.domain_size_);
    count_ = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= other.words_[i];
      count_ += std::popcount(words_[i]);
    }
  }

  /// this −= other. Domains must match.
  void DifferenceWith(const NodeSet& other) {
    MD_DCHECK(domain_size_ == other.domain_size_);
    count_ = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= ~other.words_[i];
      count_ += std::popcount(words_[i]);
    }
  }

  /// Calls fn(member) for every member, in ascending order.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        const int32_t b = std::countr_zero(w);
        fn(static_cast<int32_t>(wi * 64) + b);
        w &= w - 1;
      }
    }
  }

  /// Members as a sorted-ascending vector.
  std::vector<int32_t> ToVector() const {
    std::vector<int32_t> out;
    out.reserve(static_cast<size_t>(count_));
    ForEach([&](int32_t a) { out.push_back(a); });
    return out;
  }

  bool operator==(const NodeSet& other) const {
    return domain_size_ == other.domain_size_ && words_ == other.words_;
  }

 private:
  int32_t domain_size_ = 0;
  int64_t count_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace mdatalog::core
