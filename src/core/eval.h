#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/ast.h"
#include "src/core/database.h"
#include "src/core/nodeset.h"
#include "src/util/deadline.h"
#include "src/util/result.h"

/// \file eval.h
/// Fixpoint evaluation of datalog programs via the immediate consequence
/// operator T_P (Definition 3.1): the naive engine computes the sequence
/// T⁰_P, T¹_P, … exactly as defined (and can record it, used to reproduce the
/// Example 3.2 trace); the semi-naive engine computes the same fixpoint with
/// delta relations. Both work over arbitrary finite structures (EdbSource)
/// and support intensional predicates of arity 0, 1 and 2 (arity 2 covers the
/// non-monadic baselines of Section 3.2).
///
/// Both engines run over a CompiledProgram (compiled.h): join orders are
/// planned once per (rule, delta position), extensional atoms are resolved to
/// concrete relations once, and unary intensional relations are dense
/// bitsets (NodeSet) — the Theorem 4.2 O(|P|·|dom|) hot path without
/// per-tuple string lookups or re-planning.
///
/// Derived atoms live in the domain: a head whose constant falls outside
/// {0..DomainSize()-1} is not derivable (the seed engine's behavior for such
/// programs was out-of-bounds UB; all engines, including the reference
/// oracle, now agree on this rule).

namespace mdatalog::core {

/// A derived ground atom (for traces and goldens).
struct GroundAtom {
  PredId pred;
  std::vector<int32_t> args;
  bool operator==(const GroundAtom&) const = default;
  bool operator<(const GroundAtom& o) const {
    return pred != o.pred ? pred < o.pred : args < o.args;
  }
};

/// Newly derived atoms of one T_P iteration, each with the index of a rule
/// that derives it (as in the Example 3.2 trace annotations).
struct EvalStage {
  std::vector<GroundAtom> new_atoms;
  std::vector<int32_t> derived_by_rule;  // parallel to new_atoms
};

/// The fixpoint T^ω_P restricted to intensional predicates.
///
/// Ordering guarantee: Unary() and Query() return members sorted ascending
/// (they iterate the backing bitset, which is naturally ordered); Binary()
/// returns pairs sorted lexicographically (sorted once when the result is
/// built, not on every call).
class EvalResult {
 public:
  bool NullaryTrue(PredId p) const;
  bool ContainsUnary(PredId p, int32_t a) const;
  bool ContainsBinary(PredId p, int32_t a, int32_t b) const;

  /// Members of a unary IDB predicate, sorted ascending.
  std::vector<int32_t> Unary(PredId p) const;
  /// Pairs of a binary IDB predicate, sorted lexicographically.
  std::vector<std::pair<int32_t, int32_t>> Binary(PredId p) const;

  /// The distinguished query result {x | query_pred(x) ∈ T^ω_P}, sorted.
  /// Program must have a query predicate.
  std::vector<int32_t> Query() const;

  /// T_P stages (only recorded when EvalOptions::trace is set). stages[i]
  /// holds the atoms in T^{i+1} \ T^i.
  const std::vector<EvalStage>& stages() const { return stages_; }
  int64_t num_iterations() const { return num_iterations_; }
  int64_t num_derived() const { return num_derived_; }

 private:
  friend class FixpointEngine;
  friend class GroundedEvaluator;

  /// Facts of one intensional predicate. arity == -1 means "no facts
  /// recorded" (the predicate never appeared in a derivation).
  struct PredFacts {
    int8_t arity = -1;
    bool nullary_true = false;
    NodeSet unary;
    std::vector<std::pair<int32_t, int32_t>> pairs;  // sorted
  };
  const PredFacts* FactsOf(PredId p) const {
    return (p >= 0 && static_cast<size_t>(p) < facts_.size() &&
            facts_[p].arity >= 0)
               ? &facts_[p]
               : nullptr;
  }

  std::vector<PredFacts> facts_;  // indexed by PredId (dense)
  PredId query_pred_ = -1;
  std::vector<EvalStage> stages_;
  int64_t num_iterations_ = 0;
  int64_t num_derived_ = 0;
};

struct EvalOptions {
  /// Record T_P stages (naive engine only; forces naive iteration order).
  bool trace = false;
  /// Abort with ResourceExhausted after this many derived atoms (guard for
  /// property tests over random programs). -1 = unlimited.
  int64_t max_derived = -1;
  /// Per-request deadline / cancellation, polled between rules and (strided)
  /// inside the join enumeration; evaluation unwinds with kDeadlineExceeded
  /// or kCancelled. nullptr = unbounded, zero overhead on the hot path.
  const util::EvalControl* control = nullptr;
};

/// Naive evaluation: literally iterates T_P until fixpoint.
util::Result<EvalResult> EvaluateNaive(const Program& program,
                                       const EdbSource& edb,
                                       const EvalOptions& options = {});

/// Semi-naive evaluation with delta relations; same fixpoint, fewer
/// rederivations. Does not record stages.
util::Result<EvalResult> EvaluateSemiNaive(const Program& program,
                                           const EdbSource& edb,
                                           const EvalOptions& options = {});

}  // namespace mdatalog::core
