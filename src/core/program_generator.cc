#include "src/core/program_generator.h"

#include "src/core/database.h"

namespace mdatalog::core {

Program RandomMonadicProgram(util::Rng& rng,
                             const ProgramGenOptions& options) {
  Program p;
  PredicateTable& preds = p.preds();

  std::vector<PredId> idb;
  for (int32_t i = 0; i < options.num_idb_preds; ++i) {
    idb.push_back(preds.MustIntern("q" + std::to_string(i), 1));
  }
  std::vector<PredId> unary_edb = {
      preds.MustIntern("root", 1), preds.MustIntern("leaf", 1),
      preds.MustIntern("lastsibling", 1), preds.MustIntern("firstsibling", 1)};
  for (const std::string& l : options.labels) {
    unary_edb.push_back(preds.MustIntern(LabelPredName(l), 1));
  }
  std::vector<PredId> binary_edb = {preds.MustIntern("firstchild", 2),
                                    preds.MustIntern("nextsibling", 2)};
  if (options.allow_extended) {
    binary_edb.push_back(preds.MustIntern("child", 2));
    binary_edb.push_back(preds.MustIntern("lastchild", 2));
  }

  for (int32_t r = 0; r < options.num_rules; ++r) {
    // Head variable is v0; grow a variable pool connected through binary
    // atoms; guarantee v0 occurs in the body.
    std::vector<Atom> body;
    int32_t num_vars = 1;
    // Seed: an atom over v0.
    if (rng.Chance(1, 2)) {
      body.push_back(
          MakeAtom(unary_edb[rng.Below(unary_edb.size())], {Term::Var(0)}));
    } else {
      body.push_back(
          MakeAtom(idb[rng.Below(idb.size())], {Term::Var(0)}));
    }
    int32_t extra = static_cast<int32_t>(rng.Below(options.max_body_atoms));
    for (int32_t i = 0; i < extra; ++i) {
      uint64_t kind = rng.Below(10);
      if (kind < 3) {  // unary EDB on an existing variable
        body.push_back(MakeAtom(
            unary_edb[rng.Below(unary_edb.size())],
            {Term::Var(static_cast<VarId>(rng.Below(num_vars)))}));
      } else if (kind < 6) {  // IDB atom on an existing variable
        body.push_back(
            MakeAtom(idb[rng.Below(idb.size())],
                     {Term::Var(static_cast<VarId>(rng.Below(num_vars)))}));
      } else {  // binary EDB: existing var -> fresh or existing var
        VarId from = static_cast<VarId>(rng.Below(num_vars));
        VarId to;
        if (rng.Chance(3, 4)) {
          to = num_vars++;
        } else {
          to = static_cast<VarId>(rng.Below(num_vars));
        }
        PredId rel = binary_edb[rng.Below(binary_edb.size())];
        if (rng.Chance(1, 2)) {
          body.push_back(MakeAtom(rel, {Term::Var(from), Term::Var(to)}));
        } else {
          body.push_back(MakeAtom(rel, {Term::Var(to), Term::Var(from)}));
        }
      }
    }
    Atom head = MakeAtom(idb[rng.Below(idb.size())], {Term::Var(0)});
    p.AddRule(MakeRule(std::move(head), std::move(body)));
  }
  // Every q_i must be intensional, or engines would treat it as an (empty)
  // extensional predicate and the grounded engine would reject the program.
  std::vector<bool> headed(preds.size(), false);
  for (const Rule& r : p.rules()) headed[r.head.pred] = true;
  PredId root = preds.MustIntern("root", 1);
  for (PredId q : idb) {
    if (!headed[q]) {
      p.AddRule(MakeRule(MakeAtom(q, {Term::Var(0)}),
                         {MakeAtom(root, {Term::Var(0)})}, {"x"}));
    }
  }
  p.set_query_pred(idb[0]);
  return p;
}

}  // namespace mdatalog::core
