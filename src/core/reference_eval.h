#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/core/ast.h"
#include "src/core/database.h"
#include "src/util/result.h"

/// \file reference_eval.h
/// The pre-compilation fixpoint engines, preserved verbatim from before the
/// vectorized rewrite (NodeSet relations + CompiledProgram plans, eval.h).
///
/// They re-plan every rule on every enumeration, resolve every body atom
/// through the string-keyed EdbSource::Get per join step, and store IDB
/// relations in std::map — exactly the costs the production engines
/// eliminated. Kept for two jobs:
///
///  1. independent oracle for the cross-engine equivalence property tests
///     (a bug would have to be reintroduced twice, in two very different
///     implementations, to go unnoticed);
///  2. the old-vs-new benchmark series in bench/bench_eval_linear.cc that
///     documents the rewrite's speedup.
///
/// Not for production use — O(|P|·|dom|) with a much larger constant.

namespace mdatalog::core {

/// Fixpoint of the reference engines, restricted to intensional predicates.
class ReferenceResult {
 public:
  bool NullaryTrue(PredId p) const;
  bool ContainsUnary(PredId p, int32_t a) const;

  /// Members of a unary IDB predicate, sorted ascending.
  std::vector<int32_t> Unary(PredId p) const;
  /// Pairs of a binary IDB predicate, sorted.
  std::vector<std::pair<int32_t, int32_t>> Binary(PredId p) const;
  /// Query result, sorted. Program must have a query predicate.
  std::vector<int32_t> Query() const;

  int64_t num_iterations() const { return num_iterations_; }
  int64_t num_derived() const { return num_derived_; }

 private:
  friend class ReferenceEngine;
  std::map<PredId, Relation> idb_;
  PredId query_pred_ = -1;
  int64_t num_iterations_ = 0;
  int64_t num_derived_ = 0;
};

/// Naive evaluation: literally iterates T_P until fixpoint.
util::Result<ReferenceResult> EvaluateNaiveReference(const Program& program,
                                                     const EdbSource& edb);

/// Semi-naive evaluation with delta relations; same fixpoint.
util::Result<ReferenceResult> EvaluateSemiNaiveReference(
    const Program& program, const EdbSource& edb);

}  // namespace mdatalog::core
