#include "src/core/simd_kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "src/util/bits.h"

#if defined(__x86_64__) || defined(_M_X64)
#define MDATALOG_X86_64 1
#include <immintrin.h>
#endif

namespace mdatalog::core::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar kernels — the reference implementation and non-x86 fallback.
// ---------------------------------------------------------------------------

int64_t OrScalar(uint64_t* dst, const uint64_t* src, size_t n) {
  int64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    dst[i] |= src[i];
    count += util::Popcount64(dst[i]);
  }
  return count;
}

int64_t AndScalar(uint64_t* dst, const uint64_t* src, size_t n) {
  int64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    dst[i] &= src[i];
    count += util::Popcount64(dst[i]);
  }
  return count;
}

int64_t AndNotScalar(uint64_t* dst, const uint64_t* src, size_t n) {
  int64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    dst[i] &= ~src[i];
    count += util::Popcount64(dst[i]);
  }
  return count;
}

int64_t CountScalar(const uint64_t* w, size_t n) {
  int64_t count = 0;
  for (size_t i = 0; i < n; ++i) count += util::Popcount64(w[i]);
  return count;
}

int64_t FindFirstScalar(const uint64_t* w, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (w[i] != 0) {
      return static_cast<int64_t>(i) * 64 + util::Ctz64(w[i]);
    }
  }
  return -1;
}

#if MDATALOG_X86_64

// ---------------------------------------------------------------------------
// AVX2 kernels. Compiled with the `target` attribute so the rest of the
// binary stays baseline-x86-64; they are only ever called after the cpuid
// check below. Popcount of a 256-bit lane uses the Muła vpshufb nibble
// lookup, reduced with vpsadbw into four 64-bit lane sums.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i Popcount256(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i per_byte = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                           _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(per_byte, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) inline int64_t HorizontalSum(__m256i acc) {
  return _mm256_extract_epi64(acc, 0) + _mm256_extract_epi64(acc, 1) +
         _mm256_extract_epi64(acc, 2) + _mm256_extract_epi64(acc, 3);
}

// The three op-assign-and-count kernels are spelled out (no shared lambda
// skeleton): GCC does not propagate the enclosing function's `target`
// attribute into lambda bodies, so intrinsics inside one fail to inline.

__attribute__((target("avx2"))) int64_t OrAvx2(uint64_t* dst,
                                               const uint64_t* src, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i r = _mm256_or_si256(d, s);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), r);
    acc = _mm256_add_epi64(acc, Popcount256(r));
  }
  int64_t count = HorizontalSum(acc);
  for (; i < n; ++i) {
    dst[i] |= src[i];
    count += util::Popcount64(dst[i]);
  }
  return count;
}

__attribute__((target("avx2"))) int64_t AndAvx2(uint64_t* dst,
                                                const uint64_t* src,
                                                size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i r = _mm256_and_si256(d, s);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), r);
    acc = _mm256_add_epi64(acc, Popcount256(r));
  }
  int64_t count = HorizontalSum(acc);
  for (; i < n; ++i) {
    dst[i] &= src[i];
    count += util::Popcount64(dst[i]);
  }
  return count;
}

__attribute__((target("avx2"))) int64_t AndNotAvx2(uint64_t* dst,
                                                   const uint64_t* src,
                                                   size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    // andnot computes ~first & second, hence the operand order.
    const __m256i r = _mm256_andnot_si256(s, d);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), r);
    acc = _mm256_add_epi64(acc, Popcount256(r));
  }
  int64_t count = HorizontalSum(acc);
  for (; i < n; ++i) {
    dst[i] &= ~src[i];
    count += util::Popcount64(dst[i]);
  }
  return count;
}

__attribute__((target("avx2"))) int64_t CountAvx2(const uint64_t* w,
                                                  size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, Popcount256(_mm256_loadu_si256(
                 reinterpret_cast<const __m256i*>(w + i))));
  }
  int64_t count = HorizontalSum(acc);
  for (; i < n; ++i) count += util::Popcount64(w[i]);
  return count;
}

__attribute__((target("avx2"))) int64_t FindFirstAvx2(const uint64_t* w,
                                                      size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    if (_mm256_testz_si256(v, v) == 0) break;  // some word in this block != 0
  }
  for (; i < n; ++i) {
    if (w[i] != 0) {
      return static_cast<int64_t>(i) * 64 + util::Ctz64(w[i]);
    }
  }
  return -1;
}

#endif  // MDATALOG_X86_64

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

struct Kernels {
  int64_t (*or_assign)(uint64_t*, const uint64_t*, size_t);
  int64_t (*and_assign)(uint64_t*, const uint64_t*, size_t);
  int64_t (*andnot_assign)(uint64_t*, const uint64_t*, size_t);
  int64_t (*count)(const uint64_t*, size_t);
  int64_t (*find_first)(const uint64_t*, size_t);
  const char* name;
};

constexpr Kernels kScalarKernels = {OrScalar,        AndScalar,
                                    AndNotScalar,    CountScalar,
                                    FindFirstScalar, "scalar"};

#if MDATALOG_X86_64
constexpr Kernels kAvx2Kernels = {OrAvx2,        AndAvx2,   AndNotAvx2,
                                  CountAvx2, FindFirstAvx2, "avx2"};
#endif

bool EnvForcesScalar() {
  const char* env = std::getenv("MDATALOG_FORCE_SCALAR");
  return env != nullptr && std::strcmp(env, "0") != 0 &&
         std::strcmp(env, "") != 0;
}

const Kernels* Detect() {
#if MDATALOG_X86_64
  if (!EnvForcesScalar() && __builtin_cpu_supports("avx2")) {
    return &kAvx2Kernels;
  }
#endif
  return &kScalarKernels;
}

/// The active kernel table. Resolved on first use; ForceScalar() may swap it
/// afterwards (relaxed loads: both tables are immutable and any thread
/// observing a stale pointer still runs a correct implementation).
std::atomic<const Kernels*> g_kernels{nullptr};

const Kernels& Active() {
  const Kernels* k = g_kernels.load(std::memory_order_acquire);
  if (k == nullptr) {
    k = Detect();
    g_kernels.store(k, std::memory_order_release);
  }
  return *k;
}

}  // namespace

int64_t OrAssignCount(uint64_t* dst, const uint64_t* src, size_t n) {
  return Active().or_assign(dst, src, n);
}

int64_t AndAssignCount(uint64_t* dst, const uint64_t* src, size_t n) {
  return Active().and_assign(dst, src, n);
}

int64_t AndNotAssignCount(uint64_t* dst, const uint64_t* src, size_t n) {
  return Active().andnot_assign(dst, src, n);
}

int64_t Count(const uint64_t* w, size_t n) { return Active().count(w, n); }

int64_t FindFirst(const uint64_t* w, size_t n) {
  return Active().find_first(w, n);
}

const char* ActiveKernelName() { return Active().name; }

bool Avx2Active() { return std::strcmp(Active().name, "avx2") == 0; }

void ForceScalar(bool on) {
  g_kernels.store(on ? &kScalarKernels : Detect(),
                  std::memory_order_release);
}

}  // namespace mdatalog::core::simd
