#pragma once

#include <string>
#include <vector>

#include "src/core/ast.h"
#include "src/util/status.h"

/// \file validate.h
/// Structural checks on datalog programs and rules (Section 3.1 definitions:
/// safety, monadicity, guards, connectedness).

namespace mdatalog::core {

/// Safety: every variable in the head occurs in the body (facts are ground).
util::Status CheckSafety(const Program& program);

/// Monadic datalog: all intensional predicates have arity <= 1.
/// Arity-0 (propositional) intensional predicates are permitted — the paper's
/// own constructions introduce them (proof of Theorem 4.2).
util::Status CheckMonadic(const Program& program);

/// Checks that all extensional predicates used by the program are predicates
/// of the tree schemata served by TreeDatabase (τ_rk/τ_ur and extensions).
/// `allow_extended` additionally admits child/lastchild/nextsibling_tc.
util::Status CheckTreeSignature(const Program& program,
                                bool allow_extended = true);

/// Names of extensional predicates used by the program (for diagnostics).
std::vector<std::string> ExtensionalPredNames(const Program& program);

/// A body atom containing all variables of the rule (Section 3.1). Returns
/// the guard's index in the body, or -1.
int32_t FindGuard(const Rule& rule);

/// Rule connectedness in the sense of the proof of Theorem 4.2: the graph on
/// Vars(r) with an edge {x,y} per *binary* body atom R(x,y) is connected.
bool IsConnectedRule(const Program& program, const Rule& rule);

/// Variable connected components of a rule under the Theorem 4.2 graph.
/// Returns comp[v] in 0..k-1 for each VarId v.
std::vector<int32_t> RuleVarComponents(const Program& program,
                                       const Rule& rule);

/// Datalog LIT membership (Section 3.2): every rule body either consists of
/// monadic atoms only, or contains a guard.
bool IsDatalogLit(const Program& program);

/// Removes rules that can never fire because their body references a
/// predicate that is neither a tree-schema predicate nor the head of any
/// rule (such predicates have empty extensions under the fixpoint
/// semantics). Iterates to a fixpoint — removing rules may empty further
/// predicates. Machine-generated programs (automata translations, TMNF)
/// use this to stay within the tree signature.
void PruneUnderivableRules(Program* program);

}  // namespace mdatalog::core
