#pragma once

#include <cstdint>
#include <vector>

/// \file horn.h
/// Linear-time propositional Horn inference (Proposition 3.5). The solver is
/// the classic unit-propagation scheme of Dowling–Gallier / Minoux's LTUR:
/// per-clause counters of unsatisfied body atoms plus occurrence lists give
/// O(#clauses + #literals) total work.

namespace mdatalog::core {

/// A definite Horn clause head ← body (body may be empty: a fact).
struct HornClause {
  int32_t head;
  std::vector<int32_t> body;
};

/// A propositional Horn program over atoms 0..num_atoms-1.
struct HornInstance {
  int32_t num_atoms = 0;
  std::vector<HornClause> clauses;

  int64_t NumLiterals() const {
    int64_t n = 0;
    for (const HornClause& c : clauses) {
      n += 1 + static_cast<int64_t>(c.body.size());
    }
    return n;
  }
};

/// Computes the least model: value[a] == true iff atom a is derivable.
/// Runs in time linear in NumLiterals().
std::vector<bool> SolveHorn(const HornInstance& instance);

}  // namespace mdatalog::core
