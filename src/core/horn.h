#pragma once

#include <cstdint>
#include <vector>

#include "src/util/deadline.h"
#include "src/util/status.h"

/// \file horn.h
/// Linear-time propositional Horn inference (Proposition 3.5). The solver is
/// the classic unit-propagation scheme of Dowling–Gallier / Minoux's LTUR:
/// per-clause counters of unsatisfied body atoms plus occurrence lists give
/// O(#clauses + #literals) total work.

namespace mdatalog::core {

/// A definite Horn clause head ← body (body may be empty: a fact).
struct HornClause {
  int32_t head;
  std::vector<int32_t> body;
};

/// A propositional Horn program over atoms 0..num_atoms-1.
struct HornInstance {
  int32_t num_atoms = 0;
  std::vector<HornClause> clauses;

  int64_t NumLiterals() const {
    int64_t n = 0;
    for (const HornClause& c : clauses) {
      n += 1 + static_cast<int64_t>(c.body.size());
    }
    return n;
  }
};

/// A Horn program in CSR layout: clause bodies live in one shared arena
/// instead of one heap vector per clause. The grounded evaluator emits
/// O(|P|·|dom|) clauses; the flat layout makes emission allocation-free and
/// unit propagation cache-friendly.
///
/// Emission protocol: push body literals onto `body_lits`, then Commit(head)
/// to seal the clause. Emitters must decide satisfiability before pushing
/// (the grounded evaluator runs all its checks first, then emits).
struct FlatHornInstance {
  int32_t num_atoms = 0;
  std::vector<int32_t> heads;               // per clause
  std::vector<int32_t> body_start = {0};    // clause i's body: [start[i], start[i+1])
  std::vector<int32_t> body_lits;

  void Commit(int32_t head) {
    heads.push_back(head);
    body_start.push_back(static_cast<int32_t>(body_lits.size()));
  }

  /// Empties the instance but keeps the arena capacity — wrapper-serving
  /// workloads ground one program per page, and reusing the buffers makes
  /// emission allocation-free after the first page.
  void Clear() {
    num_atoms = 0;
    heads.clear();
    body_start.assign(1, 0);
    body_lits.clear();
  }

  int64_t num_clauses() const { return static_cast<int64_t>(heads.size()); }
  int64_t NumLiterals() const {
    return static_cast<int64_t>(heads.size()) +
           static_cast<int64_t>(body_lits.size());
  }
};

/// Reusable buffers for SolveHorn. A worker that solves many instances of
/// similar size (one per document) keeps one scratch and pays no solver
/// allocations after the first call.
struct HornSolveScratch {
  std::vector<int32_t> counter;
  std::vector<int32_t> occ_start;
  std::vector<int32_t> occ;
  std::vector<int32_t> fill;
  std::vector<int32_t> queue;
  std::vector<bool> value;
};

/// Computes the least model: value[a] == true iff atom a is derivable.
/// Runs in time linear in NumLiterals().
std::vector<bool> SolveHorn(const HornInstance& instance);

/// Least model of a flat instance; same algorithm, zero per-clause
/// allocations.
std::vector<bool> SolveHorn(const FlatHornInstance& instance);

/// Like SolveHorn(flat) but with caller-owned buffers: the model is left in
/// scratch->value (and a reference to it is returned). No allocations once
/// the scratch has warmed up to the instance size.
const std::vector<bool>& SolveHorn(const FlatHornInstance& instance,
                                   HornSolveScratch* scratch);

/// SolveHorn with cooperative deadline/cancellation: the unit-propagation
/// queue polls `control` (strided) and unwinds with kDeadlineExceeded /
/// kCancelled, leaving scratch->value partially propagated (do not read it
/// on error). `control` may be nullptr — then this is exactly
/// SolveHorn(instance, scratch).
util::Status SolveHornBounded(const FlatHornInstance& instance,
                              HornSolveScratch* scratch,
                              const util::EvalControl* control);

}  // namespace mdatalog::core
