#include "src/core/horn.h"

#include "src/util/check.h"

namespace mdatalog::core {

std::vector<bool> SolveHorn(const HornInstance& instance) {
  const int32_t n = instance.num_atoms;
  std::vector<bool> value(n, false);
  // counter[c] = number of body occurrences not yet satisfied. Duplicate
  // atoms in a body are counted per occurrence, so one decrement per
  // occurrence keeps the counter exact.
  std::vector<int32_t> counter(instance.clauses.size());
  // occurrence lists: atom -> clause indices (one entry per occurrence)
  std::vector<std::vector<int32_t>> occurs(n);
  std::vector<int32_t> queue;

  for (size_t ci = 0; ci < instance.clauses.size(); ++ci) {
    const HornClause& c = instance.clauses[ci];
    MD_DCHECK(c.head >= 0 && c.head < n);
    counter[ci] = static_cast<int32_t>(c.body.size());
    for (int32_t a : c.body) {
      MD_DCHECK(a >= 0 && a < n);
      occurs[a].push_back(static_cast<int32_t>(ci));
    }
    if (c.body.empty() && !value[c.head]) {
      value[c.head] = true;
      queue.push_back(c.head);
    }
  }

  while (!queue.empty()) {
    int32_t a = queue.back();
    queue.pop_back();
    for (int32_t ci : occurs[a]) {
      if (--counter[ci] == 0) {
        int32_t h = instance.clauses[ci].head;
        if (!value[h]) {
          value[h] = true;
          queue.push_back(h);
        }
      }
    }
  }
  return value;
}

}  // namespace mdatalog::core
