#include "src/core/horn.h"

#include "src/util/check.h"

namespace mdatalog::core {

std::vector<bool> SolveHorn(const HornInstance& instance) {
  // Legacy entry point: convert to the flat layout and delegate, so there is
  // exactly one propagation implementation.
  FlatHornInstance flat;
  flat.num_atoms = instance.num_atoms;
  flat.heads.reserve(instance.clauses.size());
  for (const HornClause& c : instance.clauses) {
    flat.body_lits.insert(flat.body_lits.end(), c.body.begin(), c.body.end());
    flat.Commit(c.head);
  }
  return SolveHorn(flat);
}

std::vector<bool> SolveHorn(const FlatHornInstance& instance) {
  HornSolveScratch scratch;
  SolveHorn(instance, &scratch);
  return std::move(scratch.value);
}

const std::vector<bool>& SolveHorn(const FlatHornInstance& instance,
                                   HornSolveScratch* scratch) {
  util::Status status = SolveHornBounded(instance, scratch, nullptr);
  MD_CHECK(status.ok());  // unbounded solve cannot fail
  return scratch->value;
}

util::Status SolveHornBounded(const FlatHornInstance& instance,
                              HornSolveScratch* scratch,
                              const util::EvalControl* control) {
  const int32_t n = instance.num_atoms;
  const int32_t num_clauses = static_cast<int32_t>(instance.heads.size());
  std::vector<bool>& value = scratch->value;
  value.assign(n, false);
  std::vector<int32_t>& counter = scratch->counter;
  counter.assign(num_clauses, 0);
  std::vector<int32_t>& occ_start = scratch->occ_start;
  occ_start.assign(static_cast<size_t>(n) + 1, 0);
  std::vector<int32_t>& queue = scratch->queue;
  queue.clear();

  for (int32_t ci = 0; ci < num_clauses; ++ci) {
    MD_DCHECK(instance.heads[ci] >= 0 && instance.heads[ci] < n);
    const int32_t body_size =
        instance.body_start[ci + 1] - instance.body_start[ci];
    counter[ci] = body_size;
    if (body_size == 0 && !value[instance.heads[ci]]) {
      value[instance.heads[ci]] = true;
      queue.push_back(instance.heads[ci]);
    }
  }
  for (int32_t a : instance.body_lits) {
    MD_DCHECK(a >= 0 && a < n);
    ++occ_start[a + 1];
  }
  for (int32_t a = 0; a < n; ++a) occ_start[a + 1] += occ_start[a];
  std::vector<int32_t>& occ = scratch->occ;
  occ.resize(instance.body_lits.size());
  {
    std::vector<int32_t>& fill = scratch->fill;
    fill.assign(occ_start.begin(), occ_start.end() - 1);
    for (int32_t ci = 0; ci < num_clauses; ++ci) {
      for (int32_t i = instance.body_start[ci];
           i < instance.body_start[ci + 1]; ++i) {
        occ[fill[instance.body_lits[i]]++] = ci;
      }
    }
  }

  util::EvalTicker ticker(control);
  while (!queue.empty()) {
    // One tick per popped atom: propagation touches each atom at most once,
    // so the strided poll adds one decrement to O(#literals) total work.
    MD_RETURN_NOT_OK(ticker.Tick());
    int32_t a = queue.back();
    queue.pop_back();
    for (int32_t i = occ_start[a]; i < occ_start[a + 1]; ++i) {
      const int32_t ci = occ[i];
      if (--counter[ci] == 0) {
        int32_t h = instance.heads[ci];
        if (!value[h]) {
          value[h] = true;
          queue.push_back(h);
        }
      }
    }
  }
  return util::Status::OK();
}

}  // namespace mdatalog::core
