#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/check.h"
#include "src/util/interner.h"
#include "src/util/result.h"

/// \file ast.h
/// Abstract syntax of datalog programs (Section 3.1).
///
/// A datalog program is a set of rules  h ← b_1, …, b_n.  Atoms are
/// p(x_1, …, x_m) over variables and constants (constants are tree-node ids).
/// Monadic datalog restricts *intensional* predicates to arity ≤ 1 (arity 0 —
/// propositional predicates — arises in the paper's own constructions, e.g.
/// the connectedness split in the proof of Theorem 4.2, and is treated as
/// monadic here).

namespace mdatalog::core {

/// Dense predicate id, scoped to one Program's PredicateTable.
using PredId = int32_t;
/// Variable index, scoped to one rule (0-based).
using VarId = int32_t;

/// A term: either a rule-scoped variable or a constant (domain element id).
struct Term {
  enum class Kind : uint8_t { kVar, kConst };
  Kind kind = Kind::kVar;
  int32_t value = 0;  // VarId or constant

  static Term Var(VarId v) { return {Kind::kVar, v}; }
  static Term Const(int32_t c) { return {Kind::kConst, c}; }
  bool is_var() const { return kind == Kind::kVar; }
  bool operator==(const Term&) const = default;
};

/// An atom p(t_1, …, t_m).
struct Atom {
  PredId pred = -1;
  std::vector<Term> args;
  bool operator==(const Atom&) const = default;
};

/// A rule h ← b_1, …, b_n. `var_names` gives printable names for the rule's
/// variables (index = VarId); generated rules use v0, v1, ….
struct Rule {
  Atom head;
  std::vector<Atom> body;
  std::vector<std::string> var_names;

  int32_t num_vars() const { return static_cast<int32_t>(var_names.size()); }
};

/// Predicate metadata: name and arity, interned per Program.
class PredicateTable {
 public:
  /// Interns `name` with the given arity. Returns an error if `name` was
  /// already interned with a different arity.
  util::Result<PredId> Intern(std::string_view name, int32_t arity);

  /// Like Intern but aborts on arity conflict (for programmatic construction
  /// where the caller controls all names).
  PredId MustIntern(std::string_view name, int32_t arity);

  /// Id of `name` or -1.
  PredId Find(std::string_view name) const { return names_.Find(name); }

  const std::string& Name(PredId p) const { return names_.Name(p); }
  int32_t Arity(PredId p) const {
    MD_CHECK(p >= 0 && static_cast<size_t>(p) < arities_.size());
    return arities_[p];
  }
  int32_t size() const { return names_.size(); }

 private:
  util::Interner names_;
  std::vector<int32_t> arities_;
};

/// A datalog program: a predicate table plus a list of rules.
///
/// Intensional (IDB) predicates are those appearing in some rule head; all
/// others are extensional (EDB) — Section 3.1. A program may designate one
/// IDB predicate as the query predicate (unary queries, Section 3.1).
class Program {
 public:
  PredicateTable& preds() { return preds_; }
  const PredicateTable& preds() const { return preds_; }

  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }
  const std::vector<Rule>& rules() const { return rules_; }
  std::vector<Rule>& mutable_rules() { return rules_; }

  /// Marks `p` as the distinguished query predicate.
  void set_query_pred(PredId p) { query_pred_ = p; }
  PredId query_pred() const { return query_pred_; }

  /// intensional[p] == true iff p occurs in some head.
  std::vector<bool> IntensionalMask() const;

  /// Total number of atoms over all rules (the |P| of the complexity bounds).
  int64_t SizeInAtoms() const;

 private:
  PredicateTable preds_;
  std::vector<Rule> rules_;
  PredId query_pred_ = -1;
};

// --- construction helpers (used heavily by the translators) ----------------

/// Builds an atom.
Atom MakeAtom(PredId pred, std::vector<Term> args);

/// Builds a rule, inventing variable names v0..v{k-1} for the highest
/// variable index used.
Rule MakeRule(Atom head, std::vector<Atom> body);

/// Builds a rule with explicit variable names.
Rule MakeRule(Atom head, std::vector<Atom> body,
              std::vector<std::string> var_names);

// --- program introspection --------------------------------------------------
//
// Structural views the static-analysis subsystem (src/analysis/) and the
// canonical cache keying build on. All are O(|P|) and allocate fresh vectors;
// they take the program by const reference and never mutate it.

/// Rule indices grouped by head predicate: result[p] lists the indices (into
/// program.rules()) of the rules whose head predicate is p. Predicates with
/// no rules get an empty list.
std::vector<std::vector<int32_t>> RulesByHeadPred(const Program& program);

/// Predicates reachable from `roots` through the head → body dependency
/// edges (rule with head p mentions q in its body ⇒ p depends on q).
/// result[p] == true iff p is a root or some reachable rule body mentions p.
/// Out-of-range roots are ignored.
std::vector<bool> ReachablePreds(const Program& program,
                                 const std::vector<PredId>& roots);

/// Overapproximation of "may derive at least one fact": every extensional
/// predicate (no rules) is derivable; an intensional predicate is derivable
/// iff some rule for it has a body whose predicates are all derivable.
/// Predicates false here are provably empty on every database — the
/// unconditionally-sound basis for dead-rule elimination.
std::vector<bool> DerivablePreds(const Program& program);

// --- pretty printing --------------------------------------------------------

std::string ToString(const Program& program);
std::string ToString(const Program& program, const Rule& rule);
std::string ToString(const Program& program, const Rule& rule,
                     const Atom& atom);

}  // namespace mdatalog::core
