#pragma once

#include <memory>
#include <vector>

#include "src/core/ast.h"
#include "src/core/eval.h"
#include "src/core/horn.h"
#include "src/tree/tree.h"
#include "src/util/deadline.h"
#include "src/util/result.h"

/// \file grounder.h
/// The Theorem 4.2 evaluator: monadic datalog over τ_rk / τ_ur in time
/// O(|P| · |dom|).
///
/// Following the paper's proof, evaluation proceeds in three steps:
///  1. every rule is made *connected* by splitting off variable components
///     that do not contain the head variable into fresh propositional bridge
///     predicates (p(x) ← p1(x), p2(y).  ⇒  p(x) ← p1(x), b.  and
///     b ← p2(y).);
///  2. each connected rule is grounded: by Proposition 4.1 every binary
///     predicate of the tree schemata (firstchild, nextsibling, child_k) is
///     functional in both directions, so fixing any one variable of a
///     connected rule determines all others — each rule has only O(|dom|)
///     ground instantiations, found by propagating along the rule's query
///     graph from an anchor node;
///  3. the resulting ground program is propositional Horn and is solved with
///     the linear-time LTUR solver (Proposition 3.5).
///
/// Only the two-way-functional binary predicates are admitted; programs using
/// child / lastchild / nextsibling_tc must first be normalized (TMNF pipeline,
/// Theorem 5.2) or be evaluated with the semi-naive engine.

namespace mdatalog::core {

struct GroundStats {
  int64_t num_clauses = 0;
  int64_t num_atoms = 0;
  int64_t num_literals = 0;
};

/// True iff every rule of `program` can be grounded by this evaluator
/// (monadic + safe + EDB predicates limited to the functional tree schema).
bool GroundableOverTree(const Program& program);

/// Evaluates `program` over `t` per Theorem 4.2. Fails with
/// FailedPrecondition if !GroundableOverTree(program).
util::Result<EvalResult> EvaluateGrounded(const Program& program,
                                          const tree::Tree& t,
                                          GroundStats* stats = nullptr);

// --- two-phase evaluation (wrapper-serving workloads) -----------------------
//
// A wrapper workload evaluates one fixed program over a stream of documents.
// Everything the Theorem 4.2 evaluator derives from the *program* — the
// connectedness split, the per-component propagation schedules, the
// extensional-predicate classification, the atom-id layout — is identical for
// every tree. GroundPlan captures that work once; EvaluateGrounded(plan, t)
// replays it per tree in O(|P|·|dom|), with only a per-tree label-id
// resolution (labels are interned per tree) on top.

/// Reusable per-worker evaluation state: the CSR clause arena, the Horn
/// solver buffers, and the grounding scratch vectors. Cleared — capacity
/// kept — between evaluations, so a worker serving many similar documents
/// performs no arena allocations after warm-up. Not thread-safe: use one
/// arena per worker thread.
struct GroundArena {
  FlatHornInstance flat;
  HornSolveScratch horn;
  std::vector<tree::NodeId> binding;
  std::vector<int32_t> shared_body;
  std::vector<int32_t> residual_body;
  std::vector<tree::LabelId> unary_labels;  // per-PredId, resolved per tree
};

/// The program-level compilation of the grounded evaluator. Immutable after
/// Compile and safe to share between concurrent evaluations (each with its
/// own GroundArena).
class GroundPlan {
 public:
  /// Compiles `program`. Fails with FailedPrecondition if
  /// !GroundableOverTree(program). The plan is self-contained (copies what it
  /// needs); `program` may be destroyed afterwards.
  static util::Result<GroundPlan> Compile(const Program& program);

  GroundPlan(GroundPlan&&) noexcept;
  GroundPlan& operator=(GroundPlan&&) noexcept;
  ~GroundPlan();

  struct Impl;

 private:
  explicit GroundPlan(std::unique_ptr<const Impl> impl);
  std::unique_ptr<const Impl> impl_;

  friend util::Result<EvalResult> EvaluateGrounded(const GroundPlan&,
                                                   const tree::Tree&,
                                                   GroundArena*, GroundStats*,
                                                   const util::EvalControl*);
};

/// Replays a compiled plan over one tree. `arena` may be nullptr (a local
/// arena is used); passing a per-worker arena amortizes all clause-arena and
/// solver allocations across documents. `control` (nullable) is polled
/// cooperatively during the node sweep and the Horn solve — a deadline or
/// cancellation unwinds with the typed status instead of finishing the page.
util::Result<EvalResult> EvaluateGrounded(
    const GroundPlan& plan, const tree::Tree& t, GroundArena* arena = nullptr,
    GroundStats* stats = nullptr, const util::EvalControl* control = nullptr);

/// Evaluation engine selection for the facade below.
enum class Engine {
  kAuto,       ///< grounded if eligible, else semi-naive
  kGrounded,   ///< Theorem 4.2 (fails if not groundable)
  kSemiNaive,  ///< delta-based fixpoint over TreeDatabase
  kNaive,      ///< literal T_P iteration (supports tracing)
};

/// Facade: evaluates a monadic datalog program on a tree with the chosen
/// engine.
util::Result<EvalResult> EvaluateOnTree(const Program& program,
                                        const tree::Tree& t,
                                        Engine engine = Engine::kAuto,
                                        const EvalOptions& options = {});

}  // namespace mdatalog::core
