#include "src/core/reference_eval.h"

#include <algorithm>

#include "src/core/validate.h"
#include "src/util/check.h"

namespace mdatalog::core {

bool ReferenceResult::NullaryTrue(PredId p) const {
  auto it = idb_.find(p);
  return it != idb_.end() && it->second.nullary_true();
}

bool ReferenceResult::ContainsUnary(PredId p, int32_t a) const {
  auto it = idb_.find(p);
  return it != idb_.end() && it->second.ContainsUnary(a);
}

std::vector<int32_t> ReferenceResult::Unary(PredId p) const {
  auto it = idb_.find(p);
  if (it == idb_.end()) return {};
  std::vector<int32_t> out = it->second.unary_tuples();
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<int32_t, int32_t>> ReferenceResult::Binary(
    PredId p) const {
  auto it = idb_.find(p);
  if (it == idb_.end()) return {};
  std::vector<std::pair<int32_t, int32_t>> out = it->second.binary_tuples();
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int32_t> ReferenceResult::Query() const {
  MD_CHECK(query_pred_ >= 0);
  return Unary(query_pred_);
}

/// The seed FixpointEngine, unchanged: per-enumeration planning, map-backed
/// stores, string-keyed EDB resolution per join step.
class ReferenceEngine {
 public:
  ReferenceEngine(const Program& program, const EdbSource& edb)
      : program_(program),
        edb_(edb),
        domain_size_(edb.DomainSize()),
        intensional_(program.IntensionalMask()) {}

  util::Result<ReferenceResult> RunNaive() {
    MD_RETURN_NOT_OK(Setup());
    while (true) {
      std::vector<GroundAtomRef> additions;
      for (size_t ri = 0; ri < program_.rules().size(); ++ri) {
        const Rule& rule = program_.rules()[ri];
        EnumerateRule(rule, /*delta_pos=*/-1,
                      [&](const Rule& r, const std::vector<int32_t>& binding) {
                        GroundAtomRef head = Instantiate(r.head, binding);
                        if (InDomain(head) && !Holds(head)) {
                          additions.push_back(std::move(head));
                        }
                      });
      }
      int64_t added = 0;
      for (const GroundAtomRef& g : additions) {
        if (!Holds(g)) {
          Insert(g);
          ++added;
        }
      }
      ++result_.num_iterations_;
      if (added == 0) break;
      result_.num_derived_ += added;
    }
    return Finish();
  }

  util::Result<ReferenceResult> RunSemiNaive() {
    MD_RETURN_NOT_OK(Setup());
    std::vector<GroundAtomRef> delta;
    std::vector<GroundAtomRef> buffer;
    auto flush_buffer = [&](std::vector<GroundAtomRef>* sink) {
      for (GroundAtomRef& g : buffer) {
        if (!Holds(g)) {
          Insert(g);
          sink->push_back(std::move(g));
        }
      }
      buffer.clear();
    };
    for (const Rule& rule : program_.rules()) {
      EnumerateRule(rule, -1,
                    [&](const Rule& r, const std::vector<int32_t>& binding) {
                      GroundAtomRef head = Instantiate(r.head, binding);
                      if (InDomain(head) && !Holds(head)) {
                        buffer.push_back(std::move(head));
                      }
                    });
      flush_buffer(&delta);
    }
    result_.num_derived_ += static_cast<int64_t>(delta.size());
    ++result_.num_iterations_;
    while (!delta.empty()) {
      delta_.clear();
      for (const GroundAtomRef& g : delta) {
        auto [it, _] = delta_.try_emplace(
            g.pred, Relation(static_cast<int32_t>(g.args.size()),
                             std::max(domain_size_, 1)));
        AddTuple(&it->second, g.args);
      }
      std::vector<GroundAtomRef> next_delta;
      for (const Rule& rule : program_.rules()) {
        for (size_t pos = 0; pos < rule.body.size(); ++pos) {
          if (!intensional_[rule.body[pos].pred]) continue;
          if (delta_.find(rule.body[pos].pred) == delta_.end()) continue;
          EnumerateRule(
              rule, static_cast<int32_t>(pos),
              [&](const Rule& r, const std::vector<int32_t>& binding) {
                GroundAtomRef head = Instantiate(r.head, binding);
                if (InDomain(head) && !Holds(head)) {
                  buffer.push_back(std::move(head));
                }
              });
          flush_buffer(&next_delta);
        }
      }
      result_.num_derived_ += static_cast<int64_t>(next_delta.size());
      ++result_.num_iterations_;
      delta = std::move(next_delta);
    }
    return Finish();
  }

 private:
  struct GroundAtomRef {
    PredId pred;
    std::vector<int32_t> args;
  };

  util::Status Setup() {
    MD_RETURN_NOT_OK(CheckSafety(program_));
    for (PredId p = 0; p < program_.preds().size(); ++p) {
      if (intensional_[p] && program_.preds().Arity(p) > 2) {
        return util::Status::Unimplemented(
            "intensional predicates of arity > 2 are not supported");
      }
    }
    result_.query_pred_ = program_.query_pred();
    return util::Status::OK();
  }

  util::Result<ReferenceResult> Finish() {
    result_.idb_ = std::move(idb_);
    return std::move(result_);
  }

  static void AddTuple(Relation* rel, const std::vector<int32_t>& args) {
    switch (rel->arity()) {
      case 0: rel->SetNullaryTrue(); break;
      case 1: rel->AddUnary(args[0]); break;
      default: rel->AddBinary(args[0], args[1]);
    }
  }

  GroundAtomRef Instantiate(const Atom& atom,
                            const std::vector<int32_t>& binding) const {
    GroundAtomRef g;
    g.pred = atom.pred;
    g.args.reserve(atom.args.size());
    for (const Term& t : atom.args) {
      g.args.push_back(t.is_var() ? binding[t.value] : t.value);
    }
    return g;
  }

  /// Heads with out-of-domain constants are not derivable — the same rule
  /// the production engine applies (eval.cc), so the oracle stays aligned
  /// and no store is ever indexed out of bounds.
  bool InDomain(const GroundAtomRef& g) const {
    for (int32_t a : g.args) {
      if (a < 0 || a >= domain_size_) return false;
    }
    return true;
  }

  bool Holds(const GroundAtomRef& g) const {
    auto it = idb_.find(g.pred);
    if (it == idb_.end()) return false;
    const Relation& rel = it->second;
    switch (rel.arity()) {
      case 0: return rel.nullary_true();
      case 1: return rel.ContainsUnary(g.args[0]);
      default: return rel.ContainsBinary(g.args[0], g.args[1]);
    }
  }

  void Insert(const GroundAtomRef& g) {
    auto [it, _] = idb_.try_emplace(
        g.pred, Relation(static_cast<int32_t>(g.args.size()),
                         std::max(domain_size_, 1)));
    AddTuple(&it->second, g.args);
  }

  const Relation* AtomRelation(const Atom& atom, bool use_delta) const {
    if (intensional_[atom.pred]) {
      const auto& store = use_delta ? delta_ : idb_;
      auto it = store.find(atom.pred);
      return it == store.end() ? nullptr : &it->second;
    }
    return edb_.Get(program_.preds().Name(atom.pred),
                    static_cast<int32_t>(atom.args.size()));
  }

  template <typename Emit>
  void EnumerateRule(const Rule& rule, int32_t delta_pos, Emit emit) {
    std::vector<int32_t> order = PlanOrder(rule, delta_pos);
    std::vector<int32_t> binding(std::max(rule.num_vars(), 1), -1);
    Join(rule, order, 0, delta_pos, binding, emit);
  }

  std::vector<int32_t> PlanOrder(const Rule& rule, int32_t delta_pos) const {
    int32_t n = static_cast<int32_t>(rule.body.size());
    std::vector<int32_t> order;
    std::vector<bool> used(n, false);
    std::vector<bool> bound(std::max(rule.num_vars(), 1), false);
    auto bind_atom_vars = [&](const Atom& a) {
      for (const Term& t : a.args) {
        if (t.is_var()) bound[t.value] = true;
      }
    };
    if (delta_pos >= 0) {
      order.push_back(delta_pos);
      used[delta_pos] = true;
      bind_atom_vars(rule.body[delta_pos]);
    }
    while (static_cast<int32_t>(order.size()) < n) {
      int32_t best = -1;
      int64_t best_score = INT64_MIN;
      for (int32_t i = 0; i < n; ++i) {
        if (used[i]) continue;
        const Atom& a = rule.body[i];
        int32_t bound_vars = 0, total_vars = 0;
        for (const Term& t : a.args) {
          if (t.is_var()) {
            ++total_vars;
            if (bound[t.value]) ++bound_vars;
          }
        }
        int32_t score = bound_vars * 100 - total_vars * 10 -
                        static_cast<int32_t>(a.args.size());
        if (bound_vars == total_vars) score += 10000;
        if (score > best_score) {
          best_score = score;
          best = i;
        }
      }
      order.push_back(best);
      used[best] = true;
      bind_atom_vars(rule.body[best]);
    }
    return order;
  }

  template <typename Emit>
  void Join(const Rule& rule, const std::vector<int32_t>& order, size_t depth,
            int32_t delta_pos, std::vector<int32_t>& binding, Emit emit) {
    if (depth == order.size()) {
      emit(rule, binding);
      return;
    }
    int32_t pos = order[depth];
    const Atom& atom = rule.body[pos];
    const Relation* rel = AtomRelation(atom, pos == delta_pos);
    if (rel == nullptr) return;  // empty extension

    auto value_of = [&](const Term& t) -> int32_t {
      return t.is_var() ? binding[t.value] : t.value;
    };

    switch (atom.args.size()) {
      case 0: {
        if (rel->nullary_true()) {
          Join(rule, order, depth + 1, delta_pos, binding, emit);
        }
        return;
      }
      case 1: {
        int32_t v = value_of(atom.args[0]);
        if (v >= 0) {
          if (rel->ContainsUnary(v)) {
            Join(rule, order, depth + 1, delta_pos, binding, emit);
          }
          return;
        }
        VarId var = atom.args[0].value;
        for (int32_t m : rel->unary_tuples()) {
          binding[var] = m;
          Join(rule, order, depth + 1, delta_pos, binding, emit);
        }
        binding[var] = -1;
        return;
      }
      default: {
        int32_t a = value_of(atom.args[0]);
        int32_t b = value_of(atom.args[1]);
        bool same_var = atom.args[0].is_var() && atom.args[1].is_var() &&
                        atom.args[0].value == atom.args[1].value;
        if (a >= 0 && b >= 0) {
          if (rel->ContainsBinary(a, b)) {
            Join(rule, order, depth + 1, delta_pos, binding, emit);
          }
        } else if (a >= 0) {
          VarId var = atom.args[1].value;
          for (int32_t m : rel->Forward(a)) {
            if (same_var && m != a) continue;
            binding[var] = m;
            Join(rule, order, depth + 1, delta_pos, binding, emit);
          }
          binding[var] = -1;
        } else if (b >= 0) {
          VarId var = atom.args[0].value;
          for (int32_t m : rel->Backward(b)) {
            if (same_var && m != b) continue;
            binding[var] = m;
            Join(rule, order, depth + 1, delta_pos, binding, emit);
          }
          binding[var] = -1;
        } else {
          VarId va = atom.args[0].value;
          VarId vb = atom.args[1].value;
          for (const auto& [x, y] : rel->binary_tuples()) {
            if (same_var) {
              if (x != y) continue;
              binding[va] = x;
              Join(rule, order, depth + 1, delta_pos, binding, emit);
              binding[va] = -1;
            } else {
              binding[va] = x;
              binding[vb] = y;
              Join(rule, order, depth + 1, delta_pos, binding, emit);
              binding[va] = -1;
              binding[vb] = -1;
            }
          }
        }
        return;
      }
    }
  }

  const Program& program_;
  const EdbSource& edb_;
  int32_t domain_size_;
  std::vector<bool> intensional_;
  std::map<PredId, Relation> idb_;
  std::map<PredId, Relation> delta_;
  ReferenceResult result_;
};

util::Result<ReferenceResult> EvaluateNaiveReference(const Program& program,
                                                     const EdbSource& edb) {
  ReferenceEngine engine(program, edb);
  return engine.RunNaive();
}

util::Result<ReferenceResult> EvaluateSemiNaiveReference(
    const Program& program, const EdbSource& edb) {
  ReferenceEngine engine(program, edb);
  return engine.RunSemiNaive();
}

}  // namespace mdatalog::core
