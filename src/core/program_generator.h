#pragma once

#include "src/core/ast.h"
#include "src/util/rng.h"

/// \file program_generator.h
/// Random monadic datalog programs over the tree schemata — fuel for the
/// cross-engine equivalence property tests (naive == semi-naive == grounded)
/// and the TMNF round-trip tests.

namespace mdatalog::core {

struct ProgramGenOptions {
  int32_t num_rules = 8;
  int32_t num_idb_preds = 4;
  int32_t max_body_atoms = 4;
  /// Labels the label_<l> atoms may mention.
  std::vector<std::string> labels = {"a", "b"};
  /// Admit child / lastchild (extended signature; such programs are not
  /// groundable and exercise the semi-naive path and the TMNF chase).
  bool allow_extended = false;
};

/// Generates a safe monadic program; every rule's head variable occurs in the
/// body by construction. Query predicate is q0.
Program RandomMonadicProgram(util::Rng& rng, const ProgramGenOptions& options);

}  // namespace mdatalog::core
