#include "src/core/validate.h"

#include <algorithm>
#include <functional>
#include <set>

#include "src/core/database.h"

namespace mdatalog::core {

util::Status CheckSafety(const Program& program) {
  for (const Rule& r : program.rules()) {
    std::vector<bool> in_body(r.num_vars(), false);
    for (const Atom& a : r.body) {
      for (const Term& t : a.args) {
        if (t.is_var()) in_body[t.value] = true;
      }
    }
    for (const Term& t : r.head.args) {
      if (t.is_var() && !in_body[t.value]) {
        return util::Status::InvalidArgument(
            "unsafe rule (head variable '" + r.var_names[t.value] +
            "' not in body): " + ToString(program, r));
      }
    }
  }
  return util::Status::OK();
}

util::Status CheckMonadic(const Program& program) {
  std::vector<bool> intensional = program.IntensionalMask();
  for (PredId p = 0; p < program.preds().size(); ++p) {
    if (intensional[p] && program.preds().Arity(p) > 1) {
      return util::Status::InvalidArgument(
          "intensional predicate '" + program.preds().Name(p) +
          "' has arity " + std::to_string(program.preds().Arity(p)) +
          " (monadic datalog requires arity <= 1)");
    }
  }
  return util::Status::OK();
}

util::Status CheckTreeSignature(const Program& program, bool allow_extended) {
  std::vector<bool> intensional = program.IntensionalMask();
  for (const Rule& r : program.rules()) {
    for (const Atom& a : r.body) {
      if (intensional[a.pred]) continue;
      const std::string& name = program.preds().Name(a.pred);
      int32_t arity = program.preds().Arity(a.pred);
      if (!TreeDatabase::IsTreePredicate(name, arity)) {
        return util::Status::InvalidArgument(
            "extensional predicate '" + name + "'/" + std::to_string(arity) +
            " is not a tree-schema predicate");
      }
      if (!allow_extended &&
          (name == "child" || name == "lastchild" ||
           name == "nextsibling_tc")) {
        return util::Status::InvalidArgument(
            "extensional predicate '" + name +
            "' requires the extended signature");
      }
    }
  }
  return util::Status::OK();
}

std::vector<std::string> ExtensionalPredNames(const Program& program) {
  std::vector<bool> intensional = program.IntensionalMask();
  std::set<std::string> names;
  for (const Rule& r : program.rules()) {
    for (const Atom& a : r.body) {
      if (!intensional[a.pred]) names.insert(program.preds().Name(a.pred));
    }
  }
  return std::vector<std::string>(names.begin(), names.end());
}

int32_t FindGuard(const Rule& rule) {
  std::set<VarId> all_vars;
  for (const Atom& a : rule.body) {
    for (const Term& t : a.args) {
      if (t.is_var()) all_vars.insert(t.value);
    }
  }
  for (size_t i = 0; i < rule.body.size(); ++i) {
    std::set<VarId> atom_vars;
    for (const Term& t : rule.body[i].args) {
      if (t.is_var()) atom_vars.insert(t.value);
    }
    if (atom_vars == all_vars) return static_cast<int32_t>(i);
  }
  return -1;
}

std::vector<int32_t> RuleVarComponents(const Program& program,
                                       const Rule& rule) {
  (void)program;
  int32_t n = rule.num_vars();
  std::vector<int32_t> parent(n);
  for (int32_t i = 0; i < n; ++i) parent[i] = i;
  std::function<int32_t(int32_t)> find = [&](int32_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (const Atom& a : rule.body) {
    if (a.args.size() != 2) continue;
    if (a.args[0].is_var() && a.args[1].is_var()) {
      int32_t ra = find(a.args[0].value), rb = find(a.args[1].value);
      if (ra != rb) parent[ra] = rb;
    }
  }
  // Renumber roots densely.
  std::vector<int32_t> comp(n, -1);
  int32_t next = 0;
  for (int32_t i = 0; i < n; ++i) {
    int32_t root = find(i);
    if (comp[root] < 0) comp[root] = next++;
    comp[i] = comp[root];
  }
  return comp;
}

bool IsConnectedRule(const Program& program, const Rule& rule) {
  if (rule.num_vars() <= 1) return true;
  std::vector<int32_t> comp = RuleVarComponents(program, rule);
  return *std::max_element(comp.begin(), comp.end()) == 0;
}

void PruneUnderivableRules(Program* program) {
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<bool> has_rule(program->preds().size(), false);
    for (const Rule& r : program->rules()) has_rule[r.head.pred] = true;
    std::vector<Rule> kept;
    for (Rule& r : program->mutable_rules()) {
      bool fireable = true;
      for (const Atom& a : r.body) {
        if (has_rule[a.pred]) continue;
        if (TreeDatabase::IsTreePredicate(
                program->preds().Name(a.pred),
                static_cast<int32_t>(a.args.size()))) {
          continue;
        }
        fireable = false;
        break;
      }
      if (fireable) {
        kept.push_back(std::move(r));
      } else {
        changed = true;
      }
    }
    program->mutable_rules() = std::move(kept);
  }
}

bool IsDatalogLit(const Program& program) {
  for (const Rule& r : program.rules()) {
    bool all_monadic = true;
    for (const Atom& a : r.body) {
      if (a.args.size() > 1) all_monadic = false;
    }
    if (all_monadic) continue;
    if (FindGuard(r) < 0) return false;
  }
  return true;
}

}  // namespace mdatalog::core
