#include "src/core/grounder.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "src/core/database.h"
#include "src/core/validate.h"

namespace mdatalog::core {

namespace {

/// Binary tree relations admissible for grounding: functional in both
/// directions (Proposition 4.1).
enum class TreeRel { kFirstChild, kNextSibling, kChildK };

struct RelKind {
  TreeRel rel;
  int32_t k = 0;  // for kChildK
};

bool ClassifyBinary(const std::string& name, RelKind* out) {
  if (name == "firstchild") {
    *out = {TreeRel::kFirstChild, 0};
    return true;
  }
  if (name == "nextsibling") {
    *out = {TreeRel::kNextSibling, 0};
    return true;
  }
  int32_t k = ChildKIndex(name);
  if (k >= 1) {
    *out = {TreeRel::kChildK, k};
    return true;
  }
  return false;
}

/// y = f_R(x), or kNoNode.
tree::NodeId ApplyForward(const tree::Tree& t, const RelKind& r,
                          tree::NodeId x) {
  switch (r.rel) {
    case TreeRel::kFirstChild: return t.first_child(x);
    case TreeRel::kNextSibling: return t.next_sibling(x);
    case TreeRel::kChildK: return t.ChildK(x, r.k);
  }
  return tree::kNoNode;
}

/// x = f_R^{-1}(y), or kNoNode.
tree::NodeId ApplyBackward(const tree::Tree& t, const RelKind& r,
                           tree::NodeId y) {
  switch (r.rel) {
    case TreeRel::kFirstChild:
      return (t.prev_sibling(y) == tree::kNoNode) ? t.parent(y) : tree::kNoNode;
    case TreeRel::kNextSibling:
      return t.prev_sibling(y);
    case TreeRel::kChildK: {
      // y must be exactly the k-th child of its parent.
      tree::NodeId c = y;
      for (int32_t steps = 1; steps < r.k; ++steps) {
        c = t.prev_sibling(c);
        if (c == tree::kNoNode) return tree::kNoNode;
      }
      if (t.prev_sibling(c) != tree::kNoNode) return tree::kNoNode;
      return t.parent(y);
    }
  }
  return tree::kNoNode;
}

/// Unary tree predicates, pre-classified at plan-compile time. Label ids are
/// interned per tree, so the plan keeps the label *name* and each evaluation
/// resolves it once against its tree's alphabet (GroundArena::unary_labels).
enum class UnaryKind : uint8_t {
  kRoot,
  kLeaf,
  kLastSibling,
  kFirstSibling,
  kLabel,
};

bool CheckUnaryTreePred(const tree::Tree& t, UnaryKind kind,
                        tree::LabelId label, tree::NodeId n) {
  switch (kind) {
    case UnaryKind::kRoot: return t.IsRoot(n);
    case UnaryKind::kLeaf: return t.IsLeaf(n);
    case UnaryKind::kLastSibling: return t.IsLastSibling(n);
    case UnaryKind::kFirstSibling: return t.IsFirstSibling(n);
    case UnaryKind::kLabel: return t.label(n) == label;
  }
  return false;
}

}  // namespace

bool GroundableOverTree(const Program& program) {
  if (!CheckSafety(program).ok()) return false;
  if (!CheckMonadic(program).ok()) return false;
  std::vector<bool> intensional = program.IntensionalMask();
  for (const Rule& r : program.rules()) {
    for (const Atom& a : r.body) {
      if (intensional[a.pred]) continue;
      const std::string& name = program.preds().Name(a.pred);
      int32_t arity = program.preds().Arity(a.pred);
      if (arity == 0) return false;  // no nullary EDB in the tree schema
      if (arity == 1) {
        if (name != "root" && name != "leaf" && name != "lastsibling" &&
            name != "firstsibling" && LabelFromPredName(name).empty()) {
          return false;
        }
      } else if (arity == 2) {
        RelKind kind;
        if (!ClassifyBinary(name, &kind)) return false;
      } else {
        return false;
      }
    }
  }
  return true;
}

/// The compiled, tree-independent form of a groundable program. Everything
/// here is derived from the program alone; evaluation replays it per tree.
struct GroundPlan::Impl {
  // Predicate metadata (copied — the plan outlives the source Program).
  int32_t num_preds = 0;
  PredId query_pred = -1;
  std::vector<bool> intensional;
  std::vector<int8_t> pred_arity;

  // Atom-id layout, statically assigned: unary IDB atoms occupy
  // [0, num_unary·n); nullary IDB atoms [num_unary·n, +num_nullary); bridge
  // atoms (connectedness split, proof step 1) [.., +num_bridges). Only the
  // unary block scales with the tree.
  std::vector<int32_t> unary_index;   // per pred, -1 or dense unary slot
  std::vector<int32_t> nullary_slot;  // per pred, -1 or dense nullary slot
  int32_t num_unary = 0;
  int32_t num_nullary = 0;
  int32_t num_bridges = 0;

  // Extensional classification (per EDB PredId of the given arity).
  struct UnaryPlanSpec {
    UnaryKind kind = UnaryKind::kRoot;
    std::string label;  // for kLabel
  };
  std::vector<UnaryPlanSpec> unary_specs;
  std::vector<RelKind> binary_specs;

  /// One propagation step of a component schedule (spanning-tree assignment
  /// or consistency check, BFS order from the anchor).
  struct Step {
    bool assign;  // true: binding[to] = f(from); false: f(from) == binding[to]
    VarId from, to;
    RelKind rel;
    bool forward;
  };

  /// The compiled schedule of one variable component of one rule.
  struct ComponentPlan {
    VarId anchor = -1;
    int32_t num_vars = 0;  // size of the component (for the BFS invariant)
    std::vector<Step> steps;
    std::vector<std::pair<PredId, VarId>> unary_checks;  // EDB arity-1
    std::vector<std::pair<PredId, VarId>> idb_lits;      // IDB arity-1
    std::vector<Atom> residual;  // constant-carrying binary EDB/IDB atoms
    int32_t bridge_slot = -1;    // >= 0 iff this is a bridge component
  };

  struct RulePlan {
    PredId head_pred = -1;
    bool head_has_arg = false;  // arity-1 head
    bool head_is_var = false;
    int32_t head_const = -1;  // when arity-1 head with a constant
    VarId head_var = -1;      // when arity-1 head with a variable
    int32_t num_vars = 0;
    std::vector<Atom> ground_atoms;  // variable-free body atoms
    std::vector<ComponentPlan> bridges;
    std::optional<ComponentPlan> head_comp;  // nullopt: const/nullary head
  };
  std::vector<RulePlan> rules;
};

GroundPlan::GroundPlan(std::unique_ptr<const Impl> impl)
    : impl_(std::move(impl)) {}
GroundPlan::GroundPlan(GroundPlan&&) noexcept = default;
GroundPlan& GroundPlan::operator=(GroundPlan&&) noexcept = default;
GroundPlan::~GroundPlan() = default;

namespace {

/// Compiles one variable component: atom partition + BFS schedule.
GroundPlan::Impl::ComponentPlan CompileComponent(
    const GroundPlan::Impl& plan, const Rule& rule,
    const std::vector<int32_t>& comp, int32_t c,
    const std::vector<const Atom*>& atoms) {
  GroundPlan::Impl::ComponentPlan out;

  std::vector<VarId> vars;
  for (VarId v = 0; v < rule.num_vars(); ++v) {
    if (comp[v] == c) vars.push_back(v);
  }
  MD_CHECK(!vars.empty());
  out.num_vars = static_cast<int32_t>(vars.size());
  out.anchor = vars[0];

  struct DirEdge {
    VarId from, to;
    RelKind rel;
    bool forward;
    int32_t atom;
  };
  std::vector<std::vector<DirEdge>> adj(rule.num_vars());
  for (size_t ai = 0; ai < atoms.size(); ++ai) {
    const Atom* a = atoms[ai];
    if (plan.intensional[a->pred]) {
      // Monadic + in this component ⇒ one argument, and it is a variable.
      MD_DCHECK(a->args.size() == 1 && a->args[0].is_var());
      out.idb_lits.emplace_back(a->pred, a->args[0].value);
    } else if (a->args.size() == 1) {
      MD_DCHECK(a->args[0].is_var());
      out.unary_checks.emplace_back(a->pred, a->args[0].value);
    } else if (a->args[0].is_var() && a->args[1].is_var()) {
      const RelKind& kind = plan.binary_specs[a->pred];
      VarId x = a->args[0].value, y = a->args[1].value;
      adj[x].push_back({x, y, kind, true, static_cast<int32_t>(ai)});
      adj[y].push_back({y, x, kind, false, static_cast<int32_t>(ai)});
    } else {
      out.residual.push_back(*a);
    }
  }

  // BFS from the anchor: spanning-tree assignments + consistency checks.
  // Each binary atom is validated exactly once (the tree relations are
  // injective partial functions, so the reverse direction needs no re-check).
  std::vector<bool> atom_done(atoms.size(), false);
  std::vector<bool> assigned(rule.num_vars(), false);
  assigned[out.anchor] = true;
  std::vector<VarId> queue{out.anchor};
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    for (const DirEdge& e : adj[queue[qi]]) {
      if (!assigned[e.to]) {
        out.steps.push_back({true, e.from, e.to, e.rel, e.forward});
        assigned[e.to] = true;
        atom_done[e.atom] = true;
        queue.push_back(e.to);
      } else if (!atom_done[e.atom]) {
        out.steps.push_back({false, e.from, e.to, e.rel, e.forward});
        atom_done[e.atom] = true;
      }
    }
  }
  MD_DCHECK(queue.size() == vars.size());  // component is connected
  return out;
}

}  // namespace

util::Result<GroundPlan> GroundPlan::Compile(const Program& program) {
  if (!GroundableOverTree(program)) {
    return util::Status::FailedPrecondition(
        "program not groundable over the functional tree schema; normalize "
        "with the TMNF pipeline or use the semi-naive engine");
  }
  auto impl = std::make_unique<Impl>();
  const PredicateTable& preds = program.preds();
  impl->num_preds = preds.size();
  impl->query_pred = program.query_pred();
  impl->intensional = program.IntensionalMask();
  impl->pred_arity.resize(preds.size());
  impl->unary_specs.resize(preds.size());
  impl->binary_specs.resize(preds.size());
  impl->unary_index.assign(preds.size(), -1);
  impl->nullary_slot.assign(preds.size(), -1);

  for (PredId p = 0; p < preds.size(); ++p) {
    impl->pred_arity[p] = static_cast<int8_t>(preds.Arity(p));
    if (impl->intensional[p]) {
      if (preds.Arity(p) == 1) {
        impl->unary_index[p] = impl->num_unary++;
      } else {
        impl->nullary_slot[p] = impl->num_nullary++;
      }
      continue;
    }
    // Extensional classification. Unclassifiable predicates never occur in a
    // body of a groundable program, so their specs are never read.
    const std::string& name = preds.Name(p);
    if (preds.Arity(p) == 1) {
      Impl::UnaryPlanSpec& spec = impl->unary_specs[p];
      if (name == "root") {
        spec.kind = UnaryKind::kRoot;
      } else if (name == "leaf") {
        spec.kind = UnaryKind::kLeaf;
      } else if (name == "lastsibling") {
        spec.kind = UnaryKind::kLastSibling;
      } else if (name == "firstsibling") {
        spec.kind = UnaryKind::kFirstSibling;
      } else {
        std::string label = LabelFromPredName(name);
        if (!label.empty()) {
          spec.kind = UnaryKind::kLabel;
          spec.label = std::move(label);
        }
      }
    } else if (preds.Arity(p) == 2) {
      ClassifyBinary(name, &impl->binary_specs[p]);
    }
  }

  // Per-rule compilation (proof steps 1–2 of Theorem 4.2, program side).
  for (const Rule& rule : program.rules()) {
    Impl::RulePlan rp;
    rp.head_pred = rule.head.pred;
    rp.num_vars = rule.num_vars();
    if (!rule.head.args.empty()) {
      rp.head_has_arg = true;
      rp.head_is_var = rule.head.args[0].is_var();
      if (rp.head_is_var) {
        rp.head_var = rule.head.args[0].value;
      } else {
        rp.head_const = rule.head.args[0].value;
      }
    }

    std::vector<int32_t> comp = RuleVarComponents(program, rule);
    int32_t num_comps =
        rule.num_vars() == 0
            ? 0
            : 1 + *std::max_element(comp.begin(), comp.end());
    int32_t head_comp = -1;
    if (rp.head_has_arg && rp.head_is_var) head_comp = comp[rp.head_var];

    std::vector<std::vector<const Atom*>> comp_atoms(num_comps);
    for (const Atom& a : rule.body) {
      int32_t c = -1;
      for (const Term& t : a.args) {
        if (t.is_var()) {
          c = comp[t.value];
          break;
        }
      }
      if (c < 0) {
        rp.ground_atoms.push_back(a);
      } else {
        comp_atoms[c].push_back(&a);
      }
    }

    for (int32_t c = 0; c < num_comps; ++c) {
      Impl::ComponentPlan cp =
          CompileComponent(*impl, rule, comp, c, comp_atoms[c]);
      if (c == head_comp) {
        rp.head_comp = std::move(cp);
      } else {
        cp.bridge_slot = impl->num_bridges++;
        rp.bridges.push_back(std::move(cp));
      }
    }
    impl->rules.push_back(std::move(rp));
  }
  return GroundPlan(std::move(impl));
}

/// Per-tree replay of a GroundPlan: grounds every rule by schedule replay,
/// emits clauses into the arena, solves, and assembles the EvalResult.
/// (Named GroundedEvaluator to keep the EvalResult friendship.)
class GroundedEvaluator {
 public:
  GroundedEvaluator(const GroundPlan::Impl& plan, const tree::Tree& t,
                    GroundArena& arena, const util::EvalControl* control)
      : plan_(plan), tree_(t), arena_(arena), control_(control),
        ticker_(control), n_(t.size()) {}

  util::Result<EvalResult> Run(GroundStats* stats) {
    // Fast-fail: a request already past its bounds (queue delay, slow parse)
    // must not ground anything. Also makes expiry deterministic for trees
    // smaller than the ticker stride.
    if (control_ != nullptr) MD_RETURN_NOT_OK(control_->Check());
    arena_.flat.Clear();
    nullary_base_ = plan_.num_unary * n_;
    bridge_base_ = nullary_base_ + plan_.num_nullary;
    arena_.flat.num_atoms = bridge_base_ + plan_.num_bridges;

    // Per-tree label resolution: the only tree-dependent compile work. A
    // label absent from this tree's alphabet resolves to kInvalidSymbol,
    // which no node carries — the empty relation of Remark 2.2.
    arena_.unary_labels.assign(plan_.num_preds, util::kInvalidSymbol);
    for (PredId p = 0; p < plan_.num_preds; ++p) {
      if (!plan_.intensional[p] && plan_.pred_arity[p] == 1 &&
          plan_.unary_specs[p].kind == UnaryKind::kLabel) {
        arena_.unary_labels[p] = tree_.FindLabel(plan_.unary_specs[p].label);
      }
    }

    // Grounding sweep: each rule replays its schedule over all anchor nodes,
    // ticking the deadline poll per node; the sweep unwinds mid-rule when it
    // fires. The Horn solve below polls its own propagation queue.
    for (const GroundPlan::Impl::RulePlan& rp : plan_.rules) {
      GroundRule(rp);
      if (aborted_) return abort_status_;
    }

    MD_RETURN_NOT_OK(SolveHornBounded(arena_.flat, &arena_.horn, control_));
    const std::vector<bool>& model = arena_.horn.value;

    EvalResult result;
    result.query_pred_ = plan_.query_pred;
    result.facts_.resize(plan_.num_preds);
    for (PredId p = 0; p < plan_.num_preds; ++p) {
      if (!plan_.intensional[p]) continue;
      EvalResult::PredFacts& f = result.facts_[p];
      if (plan_.pred_arity[p] == 1) {
        NodeSet members(std::max(n_, 1));
        const int32_t base = plan_.unary_index[p] * n_;
        for (tree::NodeId node = 0; node < n_; ++node) {
          if (model[base + node]) {
            members.Insert(node);
            ++result.num_derived_;
          }
        }
        if (!members.empty()) {
          f.arity = 1;
          f.unary = std::move(members);
        }
      } else {
        if (model[nullary_base_ + plan_.nullary_slot[p]]) {
          f.arity = 0;
          f.nullary_true = true;
          ++result.num_derived_;
        }
      }
    }
    result.num_iterations_ = 1;
    if (stats != nullptr) {
      stats->num_clauses = arena_.flat.num_clauses();
      stats->num_atoms = arena_.flat.num_atoms;
      stats->num_literals = arena_.flat.NumLiterals();
    }
    return result;
  }

 private:
  int32_t UnaryAtomId(PredId p, tree::NodeId node) const {
    MD_DCHECK(plan_.unary_index[p] >= 0);
    return plan_.unary_index[p] * n_ + node;
  }
  int32_t NullaryAtomId(PredId p) const {
    MD_DCHECK(plan_.nullary_slot[p] >= 0);
    return nullary_base_ + plan_.nullary_slot[p];
  }

  void GroundRule(const GroundPlan::Impl::RulePlan& rp) {
    // Grounding of the fully ground part: EDB atoms checked now; IDB atoms
    // become Horn literals shared by every instantiation.
    arena_.shared_body.clear();
    for (const Atom& a : rp.ground_atoms) {
      if (!EmitGroundAtom(a, nullptr, &arena_.shared_body)) return;
    }

    // Bridge components, then (head atoms are statically assigned) the
    // bridge literals join the shared body of the main part.
    for (const GroundPlan::Impl::ComponentPlan& cp : rp.bridges) {
      GroundComponent(rp, cp, /*head_pred=*/-1,
                      bridge_base_ + cp.bridge_slot, /*extra_body=*/{});
      if (aborted_) return;
      arena_.shared_body.push_back(bridge_base_ + cp.bridge_slot);
    }

    if (rp.head_comp.has_value()) {
      GroundComponent(rp, *rp.head_comp, rp.head_pred, /*fixed_head_atom=*/-1,
                      arena_.shared_body);
    } else {
      // Ground or propositional head: a single clause.
      int32_t head_atom;
      if (!rp.head_has_arg) {
        head_atom = NullaryAtomId(rp.head_pred);
      } else {
        if (rp.head_const < 0 || rp.head_const >= n_) return;
        head_atom = UnaryAtomId(rp.head_pred, rp.head_const);
      }
      arena_.flat.body_lits.insert(arena_.flat.body_lits.end(),
                                   arena_.shared_body.begin(),
                                   arena_.shared_body.end());
      arena_.flat.Commit(head_atom);
    }
  }

  /// Replays one component schedule over all anchor nodes. If head_pred >= 0,
  /// emits clauses with head head_pred(binding of the rule's head variable);
  /// otherwise with the fixed (bridge) head atom. `extra_body` is copied into
  /// every emitted clause. Note: `extra_body` must not alias arena_ buffers
  /// that this function mutates (it only appends to flat.body_lits, which is
  /// disjoint from shared_body).
  void GroundComponent(const GroundPlan::Impl::RulePlan& rp,
                       const GroundPlan::Impl::ComponentPlan& cp,
                       PredId head_pred, int32_t fixed_head_atom,
                       const std::vector<int32_t>& extra_body) {
    FlatHornInstance& flat = arena_.flat;
    std::vector<tree::NodeId>& binding = arena_.binding;
    binding.assign(std::max(rp.num_vars, 1), tree::kNoNode);

    for (tree::NodeId node = 0; node < n_; ++node) {
      if (ticker_.active()) {
        util::Status s = ticker_.Tick();
        if (!s.ok()) {
          aborted_ = true;
          abort_status_ = std::move(s);
          return;
        }
      }
      binding[cp.anchor] = node;
      bool failed = false;
      for (const GroundPlan::Impl::Step& s : cp.steps) {
        const tree::NodeId target =
            s.forward ? ApplyForward(tree_, s.rel, binding[s.from])
                      : ApplyBackward(tree_, s.rel, binding[s.from]);
        if (s.assign) {
          if (target == tree::kNoNode) {
            failed = true;
            break;
          }
          binding[s.to] = target;
        } else if (target != binding[s.to]) {
          failed = true;
          break;
        }
      }
      if (failed) continue;
      for (const auto& [p, v] : cp.unary_checks) {
        if (!CheckUnaryTreePred(tree_, plan_.unary_specs[p].kind,
                                arena_.unary_labels[p], binding[v])) {
          failed = true;
          break;
        }
      }
      if (failed) continue;
      for (const Atom& a : cp.residual) {
        arena_.residual_body.clear();
        if (!EmitGroundAtom(a, &binding, &arena_.residual_body)) {
          failed = true;
          break;
        }
        // Residual atoms are EDB-only (CompileComponent routes intensional
        // atoms to idb_lits), so EmitGroundAtom must emit no literals here —
        // anything it pushed would be silently dropped from the clause.
        MD_DCHECK(arena_.residual_body.empty());
      }
      if (failed) continue;

      // Emit the clause straight into the flat arena.
      flat.body_lits.insert(flat.body_lits.end(), extra_body.begin(),
                            extra_body.end());
      for (const auto& [p, v] : cp.idb_lits) {
        flat.body_lits.push_back(UnaryAtomId(p, binding[v]));
      }
      flat.Commit(head_pred >= 0 ? UnaryAtomId(head_pred, binding[rp.head_var])
                                 : fixed_head_atom);
    }
  }

  /// For a (now fully bound) body atom: checks EDB atoms against the tree
  /// (returning false if violated) and appends IDB atoms to `body`.
  /// `binding` may be nullptr for atoms without variables.
  bool EmitGroundAtom(const Atom& a, const std::vector<tree::NodeId>* binding,
                      std::vector<int32_t>* body) {
    auto value_of = [&](const Term& t) -> int32_t {
      if (t.is_var()) {
        MD_CHECK(binding != nullptr);
        return (*binding)[t.value];
      }
      return t.value;
    };
    if (plan_.intensional[a.pred]) {
      if (a.args.empty()) {
        body->push_back(NullaryAtomId(a.pred));
      } else {
        int32_t v = value_of(a.args[0]);
        if (v < 0 || v >= n_) return false;
        body->push_back(UnaryAtomId(a.pred, v));
      }
      return true;
    }
    if (a.args.size() == 1) {
      int32_t v = value_of(a.args[0]);
      if (v < 0 || v >= n_) return false;
      return CheckUnaryTreePred(tree_, plan_.unary_specs[a.pred].kind,
                                arena_.unary_labels[a.pred], v);
    }
    MD_CHECK(a.args.size() == 2);
    int32_t x = value_of(a.args[0]);
    int32_t y = value_of(a.args[1]);
    if (x < 0 || x >= n_ || y < 0 || y >= n_) return false;
    return ApplyForward(tree_, plan_.binary_specs[a.pred], x) == y;
  }

  const GroundPlan::Impl& plan_;
  const tree::Tree& tree_;
  GroundArena& arena_;
  const util::EvalControl* control_;
  util::EvalTicker ticker_;
  bool aborted_ = false;
  util::Status abort_status_ = util::Status::OK();
  int32_t n_;
  int32_t nullary_base_ = 0;
  int32_t bridge_base_ = 0;
};

util::Result<EvalResult> EvaluateGrounded(const GroundPlan& plan,
                                          const tree::Tree& t,
                                          GroundArena* arena,
                                          GroundStats* stats,
                                          const util::EvalControl* control) {
  GroundArena local;
  GroundedEvaluator evaluator(*plan.impl_, t,
                              arena != nullptr ? *arena : local, control);
  return evaluator.Run(stats);
}

util::Result<EvalResult> EvaluateGrounded(const Program& program,
                                          const tree::Tree& t,
                                          GroundStats* stats) {
  MD_ASSIGN_OR_RETURN(GroundPlan plan, GroundPlan::Compile(program));
  return EvaluateGrounded(plan, t, nullptr, stats);
}

util::Result<EvalResult> EvaluateOnTree(const Program& program,
                                        const tree::Tree& t, Engine engine,
                                        const EvalOptions& options) {
  switch (engine) {
    case Engine::kGrounded:
      return EvaluateGrounded(program, t);
    case Engine::kAuto:
      if (GroundableOverTree(program)) return EvaluateGrounded(program, t);
      [[fallthrough]];
    case Engine::kSemiNaive: {
      TreeDatabase db(t);
      return EvaluateSemiNaive(program, db, options);
    }
    case Engine::kNaive: {
      TreeDatabase db(t);
      return EvaluateNaive(program, db, options);
    }
  }
  return util::Status::Internal("unknown engine");
}

}  // namespace mdatalog::core
