#include "src/core/grounder.h"

#include <algorithm>

#include "src/core/database.h"
#include "src/core/validate.h"

namespace mdatalog::core {

namespace {

/// Binary tree relations admissible for grounding: functional in both
/// directions (Proposition 4.1).
enum class TreeRel { kFirstChild, kNextSibling, kChildK };

struct RelKind {
  TreeRel rel;
  int32_t k = 0;  // for kChildK
};

bool ClassifyBinary(const std::string& name, RelKind* out) {
  if (name == "firstchild") {
    *out = {TreeRel::kFirstChild, 0};
    return true;
  }
  if (name == "nextsibling") {
    *out = {TreeRel::kNextSibling, 0};
    return true;
  }
  int32_t k = ChildKIndex(name);
  if (k >= 1) {
    *out = {TreeRel::kChildK, k};
    return true;
  }
  return false;
}

/// y = f_R(x), or kNoNode.
tree::NodeId ApplyForward(const tree::Tree& t, const RelKind& r,
                          tree::NodeId x) {
  switch (r.rel) {
    case TreeRel::kFirstChild: return t.first_child(x);
    case TreeRel::kNextSibling: return t.next_sibling(x);
    case TreeRel::kChildK: return t.ChildK(x, r.k);
  }
  return tree::kNoNode;
}

/// x = f_R^{-1}(y), or kNoNode.
tree::NodeId ApplyBackward(const tree::Tree& t, const RelKind& r,
                           tree::NodeId y) {
  switch (r.rel) {
    case TreeRel::kFirstChild:
      return (t.prev_sibling(y) == tree::kNoNode) ? t.parent(y) : tree::kNoNode;
    case TreeRel::kNextSibling:
      return t.prev_sibling(y);
    case TreeRel::kChildK: {
      // y must be exactly the k-th child of its parent.
      tree::NodeId c = y;
      for (int32_t steps = 1; steps < r.k; ++steps) {
        c = t.prev_sibling(c);
        if (c == tree::kNoNode) return tree::kNoNode;
      }
      if (t.prev_sibling(c) != tree::kNoNode) return tree::kNoNode;
      return t.parent(y);
    }
  }
  return tree::kNoNode;
}

bool CheckUnaryTreePred(const tree::Tree& t, const std::string& name,
                        tree::NodeId n) {
  if (name == "root") return t.IsRoot(n);
  if (name == "leaf") return t.IsLeaf(n);
  if (name == "lastsibling") return t.IsLastSibling(n);
  if (name == "firstsibling") return t.IsFirstSibling(n);
  std::string label = LabelFromPredName(name);
  MD_CHECK(!label.empty());
  return t.label_name(n) == label;
}

}  // namespace

bool GroundableOverTree(const Program& program) {
  if (!CheckSafety(program).ok()) return false;
  if (!CheckMonadic(program).ok()) return false;
  std::vector<bool> intensional = program.IntensionalMask();
  for (const Rule& r : program.rules()) {
    for (const Atom& a : r.body) {
      if (intensional[a.pred]) continue;
      const std::string& name = program.preds().Name(a.pred);
      int32_t arity = program.preds().Arity(a.pred);
      if (arity == 0) return false;  // no nullary EDB in the tree schema
      if (arity == 1) {
        if (name != "root" && name != "leaf" && name != "lastsibling" &&
            name != "firstsibling" && LabelFromPredName(name).empty()) {
          return false;
        }
      } else if (arity == 2) {
        RelKind kind;
        if (!ClassifyBinary(name, &kind)) return false;
      } else {
        return false;
      }
    }
  }
  return true;
}

/// Grounds a monadic program over a tree into a Horn instance and solves it.
class GroundedEvaluator {
 public:
  GroundedEvaluator(const Program& program, const tree::Tree& t)
      : program_(program),
        tree_(t),
        n_(t.size()),
        intensional_(program.IntensionalMask()) {}

  util::Result<EvalResult> Run(GroundStats* stats) {
    if (!GroundableOverTree(program_)) {
      return util::Status::FailedPrecondition(
          "program not groundable over the functional tree schema; normalize "
          "with the TMNF pipeline or use the semi-naive engine");
    }
    AssignAtomIds();
    for (const Rule& rule : program_.rules()) GroundRule(rule);

    horn_.num_atoms = next_atom_id_;
    std::vector<bool> model = SolveHorn(horn_);

    EvalResult result;
    result.query_pred_ = program_.query_pred();
    for (PredId p = 0; p < program_.preds().size(); ++p) {
      if (!intensional_[p]) continue;
      int32_t arity = program_.preds().Arity(p);
      Relation rel(arity, std::max(n_, 1));
      if (arity == 1) {
        for (tree::NodeId node = 0; node < n_; ++node) {
          if (model[UnaryAtomId(p, node)]) {
            rel.AddUnary(node);
            ++result.num_derived_;
          }
        }
      } else {
        if (model[NullaryAtomId(p)]) {
          rel.SetNullaryTrue();
          ++result.num_derived_;
        }
      }
      result.idb_.emplace(p, std::move(rel));
    }
    result.num_iterations_ = 1;
    if (stats != nullptr) {
      stats->num_clauses = static_cast<int64_t>(horn_.clauses.size());
      stats->num_atoms = next_atom_id_;
      stats->num_literals = horn_.NumLiterals();
    }
    return result;
  }

 private:
  void AssignAtomIds() {
    unary_index_.assign(program_.preds().size(), -1);
    nullary_index_.assign(program_.preds().size(), -1);
    int32_t num_unary = 0;
    for (PredId p = 0; p < program_.preds().size(); ++p) {
      if (!intensional_[p]) continue;
      if (program_.preds().Arity(p) == 1) unary_index_[p] = num_unary++;
    }
    next_atom_id_ = num_unary * n_;
    for (PredId p = 0; p < program_.preds().size(); ++p) {
      if (!intensional_[p]) continue;
      if (program_.preds().Arity(p) == 0) nullary_index_[p] = next_atom_id_++;
    }
  }

  int32_t UnaryAtomId(PredId p, tree::NodeId node) const {
    MD_DCHECK(unary_index_[p] >= 0);
    return unary_index_[p] * n_ + node;
  }
  int32_t NullaryAtomId(PredId p) const {
    MD_DCHECK(nullary_index_[p] >= 0);
    return nullary_index_[p];
  }
  int32_t FreshAtom() { return next_atom_id_++; }

  /// Splits the rule into variable components (proof step 1) and grounds each
  /// (proof step 2). Components not containing the head variable become
  /// propositional bridge atoms.
  void GroundRule(const Rule& rule) {
    std::vector<int32_t> comp = RuleVarComponents(program_, rule);
    int32_t num_comps =
        rule.num_vars() == 0
            ? 0
            : 1 + *std::max_element(comp.begin(), comp.end());

    int32_t head_comp = -1;
    if (!rule.head.args.empty() && rule.head.args[0].is_var()) {
      head_comp = comp[rule.head.args[0].value];
    }

    // Atoms per component; ground atoms (no variables) go to the main rule.
    std::vector<std::vector<const Atom*>> comp_atoms(num_comps);
    std::vector<const Atom*> ground_atoms;
    for (const Atom& a : rule.body) {
      int32_t c = -1;
      for (const Term& t : a.args) {
        if (t.is_var()) {
          c = comp[t.value];
          break;
        }
      }
      if (c < 0) {
        ground_atoms.push_back(&a);
      } else {
        comp_atoms[c].push_back(&a);
      }
    }

    // Grounding of the fully ground part: EDB atoms checked now; IDB atoms
    // become Horn literals shared by every instantiation.
    std::vector<int32_t> shared_body;
    for (const Atom* a : ground_atoms) {
      if (!EmitGroundAtom(*a, /*binding=*/nullptr, &shared_body)) return;
    }

    // Bridge components.
    for (int32_t c = 0; c < num_comps; ++c) {
      if (c == head_comp) continue;
      int32_t bridge = FreshAtom();
      GroundComponent(rule, comp, c, comp_atoms[c],
                      /*head_pred=*/-1, bridge, /*extra_body=*/{});
      shared_body.push_back(bridge);
    }

    // Main part.
    if (head_comp >= 0) {
      GroundComponent(rule, comp, head_comp, comp_atoms[head_comp],
                      rule.head.pred, /*fixed_head_atom=*/-1, shared_body);
    } else {
      // Ground or propositional head: a single clause.
      int32_t head_atom;
      if (rule.head.args.empty()) {
        head_atom = NullaryAtomId(rule.head.pred);
      } else {
        int32_t c = rule.head.args[0].value;  // constant (safety: no free var)
        if (c < 0 || c >= n_) return;
        head_atom = UnaryAtomId(rule.head.pred, c);
      }
      horn_.clauses.push_back({head_atom, shared_body});
    }
  }

  /// Grounds one variable component over all anchor nodes. If head_pred >= 0,
  /// emits clauses with head head_pred(binding of the rule's head variable);
  /// otherwise emits clauses with the fixed propositional head atom.
  void GroundComponent(const Rule& rule, const std::vector<int32_t>& comp,
                       int32_t c, const std::vector<const Atom*>& atoms,
                       PredId head_pred, int32_t fixed_head_atom,
                       const std::vector<int32_t>& extra_body) {
    // Collect the component's variables and its var-var edges.
    std::vector<VarId> vars;
    for (VarId v = 0; v < rule.num_vars(); ++v) {
      if (comp[v] == c) vars.push_back(v);
    }
    MD_CHECK(!vars.empty());
    struct Edge {
      VarId from, to;
      RelKind rel;
      bool forward;  // true: to = f(from); false: to = f^{-1}(from)
    };
    std::vector<std::vector<Edge>> adj(rule.num_vars());
    for (const Atom* a : atoms) {
      if (a->args.size() != 2 || !a->args[0].is_var() || !a->args[1].is_var()) {
        continue;
      }
      RelKind kind;
      MD_CHECK(ClassifyBinary(program_.preds().Name(a->pred), &kind));
      VarId x = a->args[0].value, y = a->args[1].value;
      adj[x].push_back({x, y, kind, true});
      adj[y].push_back({y, x, kind, false});
    }

    VarId anchor = vars[0];
    std::vector<tree::NodeId> binding(rule.num_vars(), tree::kNoNode);
    std::vector<VarId> queue;
    for (tree::NodeId node = 0; node < n_; ++node) {
      // Reset only this component's bindings.
      for (VarId v : vars) binding[v] = tree::kNoNode;
      binding[anchor] = node;
      queue.clear();
      queue.push_back(anchor);
      bool failed = false;
      size_t qi = 0;
      while (qi < queue.size() && !failed) {
        VarId x = queue[qi++];
        for (const Edge& e : adj[x]) {
          tree::NodeId target =
              e.forward ? ApplyForward(tree_, e.rel, binding[e.from])
                        : ApplyBackward(tree_, e.rel, binding[e.from]);
          if (target == tree::kNoNode) {
            failed = true;
            break;
          }
          if (binding[e.to] == tree::kNoNode) {
            binding[e.to] = target;
            queue.push_back(e.to);
          } else if (binding[e.to] != target) {
            failed = true;
            break;
          }
        }
      }
      if (failed) continue;
      MD_DCHECK(queue.size() == vars.size());  // component is connected

      // Check EDB atoms; collect IDB literals.
      std::vector<int32_t> body = extra_body;
      bool sat = true;
      for (const Atom* a : atoms) {
        if (!EmitGroundAtom(*a, &binding, &body)) {
          sat = false;
          break;
        }
      }
      if (!sat) continue;

      int32_t head_atom = fixed_head_atom;
      if (head_pred >= 0) {
        head_atom = UnaryAtomId(head_pred, binding[rule.head.args[0].value]);
      }
      horn_.clauses.push_back({head_atom, std::move(body)});
    }
  }

  /// For a (now fully bound) body atom: checks EDB atoms against the tree
  /// (returning false if violated) and appends IDB atoms to `body`.
  /// `binding` may be nullptr for atoms without variables.
  bool EmitGroundAtom(const Atom& a, const std::vector<tree::NodeId>* binding,
                      std::vector<int32_t>* body) {
    auto value_of = [&](const Term& t) -> int32_t {
      if (t.is_var()) {
        MD_CHECK(binding != nullptr);
        return (*binding)[t.value];
      }
      return t.value;
    };
    if (intensional_[a.pred]) {
      if (a.args.empty()) {
        body->push_back(NullaryAtomId(a.pred));
      } else {
        int32_t v = value_of(a.args[0]);
        if (v < 0 || v >= n_) return false;
        body->push_back(UnaryAtomId(a.pred, v));
      }
      return true;
    }
    const std::string& name = program_.preds().Name(a.pred);
    if (a.args.size() == 1) {
      int32_t v = value_of(a.args[0]);
      if (v < 0 || v >= n_) return false;
      return CheckUnaryTreePred(tree_, name, v);
    }
    MD_CHECK(a.args.size() == 2);
    RelKind kind;
    MD_CHECK(ClassifyBinary(name, &kind));
    int32_t x = value_of(a.args[0]);
    int32_t y = value_of(a.args[1]);
    if (x < 0 || x >= n_ || y < 0 || y >= n_) return false;
    return ApplyForward(tree_, kind, x) == y;
  }

  const Program& program_;
  const tree::Tree& tree_;
  int32_t n_;
  std::vector<bool> intensional_;
  std::vector<int32_t> unary_index_;
  std::vector<int32_t> nullary_index_;
  int32_t next_atom_id_ = 0;
  HornInstance horn_;
};

util::Result<EvalResult> EvaluateGrounded(const Program& program,
                                          const tree::Tree& t,
                                          GroundStats* stats) {
  GroundedEvaluator evaluator(program, t);
  return evaluator.Run(stats);
}

util::Result<EvalResult> EvaluateOnTree(const Program& program,
                                        const tree::Tree& t, Engine engine,
                                        const EvalOptions& options) {
  switch (engine) {
    case Engine::kGrounded:
      return EvaluateGrounded(program, t);
    case Engine::kAuto:
      if (GroundableOverTree(program)) return EvaluateGrounded(program, t);
      [[fallthrough]];
    case Engine::kSemiNaive: {
      TreeDatabase db(t);
      return EvaluateSemiNaive(program, db, options);
    }
    case Engine::kNaive: {
      TreeDatabase db(t);
      return EvaluateNaive(program, db, options);
    }
  }
  return util::Status::Internal("unknown engine");
}

}  // namespace mdatalog::core
