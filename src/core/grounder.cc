#include "src/core/grounder.h"

#include <algorithm>

#include "src/core/database.h"
#include "src/core/validate.h"

namespace mdatalog::core {

namespace {

/// Binary tree relations admissible for grounding: functional in both
/// directions (Proposition 4.1).
enum class TreeRel { kFirstChild, kNextSibling, kChildK };

struct RelKind {
  TreeRel rel;
  int32_t k = 0;  // for kChildK
};

bool ClassifyBinary(const std::string& name, RelKind* out) {
  if (name == "firstchild") {
    *out = {TreeRel::kFirstChild, 0};
    return true;
  }
  if (name == "nextsibling") {
    *out = {TreeRel::kNextSibling, 0};
    return true;
  }
  int32_t k = ChildKIndex(name);
  if (k >= 1) {
    *out = {TreeRel::kChildK, k};
    return true;
  }
  return false;
}

/// y = f_R(x), or kNoNode.
tree::NodeId ApplyForward(const tree::Tree& t, const RelKind& r,
                          tree::NodeId x) {
  switch (r.rel) {
    case TreeRel::kFirstChild: return t.first_child(x);
    case TreeRel::kNextSibling: return t.next_sibling(x);
    case TreeRel::kChildK: return t.ChildK(x, r.k);
  }
  return tree::kNoNode;
}

/// x = f_R^{-1}(y), or kNoNode.
tree::NodeId ApplyBackward(const tree::Tree& t, const RelKind& r,
                           tree::NodeId y) {
  switch (r.rel) {
    case TreeRel::kFirstChild:
      return (t.prev_sibling(y) == tree::kNoNode) ? t.parent(y) : tree::kNoNode;
    case TreeRel::kNextSibling:
      return t.prev_sibling(y);
    case TreeRel::kChildK: {
      // y must be exactly the k-th child of its parent.
      tree::NodeId c = y;
      for (int32_t steps = 1; steps < r.k; ++steps) {
        c = t.prev_sibling(c);
        if (c == tree::kNoNode) return tree::kNoNode;
      }
      if (t.prev_sibling(c) != tree::kNoNode) return tree::kNoNode;
      return t.parent(y);
    }
  }
  return tree::kNoNode;
}

/// Unary tree predicates, pre-classified so the per-node hot loop compares
/// interned label ids instead of strings.
enum class UnaryKind : uint8_t {
  kRoot,
  kLeaf,
  kLastSibling,
  kFirstSibling,
  kLabel,
};

struct UnarySpec {
  UnaryKind kind;
  tree::LabelId label = util::kInvalidSymbol;  // for kLabel
};

bool ClassifyUnary(const tree::Tree& t, const std::string& name,
                   UnarySpec* out) {
  if (name == "root") {
    out->kind = UnaryKind::kRoot;
    return true;
  }
  if (name == "leaf") {
    out->kind = UnaryKind::kLeaf;
    return true;
  }
  if (name == "lastsibling") {
    out->kind = UnaryKind::kLastSibling;
    return true;
  }
  if (name == "firstsibling") {
    out->kind = UnaryKind::kFirstSibling;
    return true;
  }
  std::string label = LabelFromPredName(name);
  if (label.empty()) return false;
  out->kind = UnaryKind::kLabel;
  // A label absent from the tree's alphabet interns to kInvalidSymbol, which
  // no node carries — the empty relation of Remark 2.2.
  out->label = t.FindLabel(label);
  return true;
}

bool CheckUnaryTreePred(const tree::Tree& t, const UnarySpec& spec,
                        tree::NodeId n) {
  switch (spec.kind) {
    case UnaryKind::kRoot: return t.IsRoot(n);
    case UnaryKind::kLeaf: return t.IsLeaf(n);
    case UnaryKind::kLastSibling: return t.IsLastSibling(n);
    case UnaryKind::kFirstSibling: return t.IsFirstSibling(n);
    case UnaryKind::kLabel: return t.label(n) == spec.label;
  }
  return false;
}

}  // namespace

bool GroundableOverTree(const Program& program) {
  if (!CheckSafety(program).ok()) return false;
  if (!CheckMonadic(program).ok()) return false;
  std::vector<bool> intensional = program.IntensionalMask();
  for (const Rule& r : program.rules()) {
    for (const Atom& a : r.body) {
      if (intensional[a.pred]) continue;
      const std::string& name = program.preds().Name(a.pred);
      int32_t arity = program.preds().Arity(a.pred);
      if (arity == 0) return false;  // no nullary EDB in the tree schema
      if (arity == 1) {
        if (name != "root" && name != "leaf" && name != "lastsibling" &&
            name != "firstsibling" && LabelFromPredName(name).empty()) {
          return false;
        }
      } else if (arity == 2) {
        RelKind kind;
        if (!ClassifyBinary(name, &kind)) return false;
      } else {
        return false;
      }
    }
  }
  return true;
}

/// Grounds a monadic program over a tree into a Horn instance and solves it.
class GroundedEvaluator {
 public:
  GroundedEvaluator(const Program& program, const tree::Tree& t)
      : program_(program),
        tree_(t),
        n_(t.size()),
        intensional_(program.IntensionalMask()) {}

  util::Result<EvalResult> Run(GroundStats* stats) {
    if (!GroundableOverTree(program_)) {
      return util::Status::FailedPrecondition(
          "program not groundable over the functional tree schema; normalize "
          "with the TMNF pipeline or use the semi-naive engine");
    }
    ClassifyPredicates();
    AssignAtomIds();
    for (const Rule& rule : program_.rules()) GroundRule(rule);

    flat_.num_atoms = next_atom_id_;
    std::vector<bool> model = SolveHorn(flat_);

    EvalResult result;
    result.query_pred_ = program_.query_pred();
    result.facts_.resize(program_.preds().size());
    for (PredId p = 0; p < program_.preds().size(); ++p) {
      if (!intensional_[p]) continue;
      EvalResult::PredFacts& f = result.facts_[p];
      if (program_.preds().Arity(p) == 1) {
        NodeSet members(std::max(n_, 1));
        for (tree::NodeId node = 0; node < n_; ++node) {
          if (model[UnaryAtomId(p, node)]) {
            members.Insert(node);
            ++result.num_derived_;
          }
        }
        if (!members.empty()) {
          f.arity = 1;
          f.unary = std::move(members);
        }
      } else {
        if (model[NullaryAtomId(p)]) {
          f.arity = 0;
          f.nullary_true = true;
          ++result.num_derived_;
        }
      }
    }
    result.num_iterations_ = 1;
    if (stats != nullptr) {
      stats->num_clauses = flat_.num_clauses();
      stats->num_atoms = next_atom_id_;
      stats->num_literals = flat_.NumLiterals();
    }
    return result;
  }

 private:
  /// Resolves every extensional predicate's name to a UnarySpec / RelKind
  /// once, so the per-node grounding loops never touch strings.
  /// Classification depends only on the predicate, not the occurrence.
  void ClassifyPredicates() {
    const PredicateTable& preds = program_.preds();
    unary_specs_.resize(preds.size());
    binary_specs_.resize(preds.size());
    for (PredId p = 0; p < preds.size(); ++p) {
      if (intensional_[p]) continue;
      const std::string& name = preds.Name(p);
      if (preds.Arity(p) == 1) {
        ClassifyUnary(tree_, name, &unary_specs_[p]);
      } else if (preds.Arity(p) == 2) {
        ClassifyBinary(name, &binary_specs_[p]);
      }
      // Unclassifiable predicates never occur in a body of a groundable
      // program (GroundableOverTree), so their specs are never read.
    }
  }

  void AssignAtomIds() {
    unary_index_.assign(program_.preds().size(), -1);
    nullary_index_.assign(program_.preds().size(), -1);
    int32_t num_unary = 0;
    for (PredId p = 0; p < program_.preds().size(); ++p) {
      if (!intensional_[p]) continue;
      if (program_.preds().Arity(p) == 1) unary_index_[p] = num_unary++;
    }
    next_atom_id_ = num_unary * n_;
    for (PredId p = 0; p < program_.preds().size(); ++p) {
      if (!intensional_[p]) continue;
      if (program_.preds().Arity(p) == 0) nullary_index_[p] = next_atom_id_++;
    }
  }

  int32_t UnaryAtomId(PredId p, tree::NodeId node) const {
    MD_DCHECK(unary_index_[p] >= 0);
    return unary_index_[p] * n_ + node;
  }
  int32_t NullaryAtomId(PredId p) const {
    MD_DCHECK(nullary_index_[p] >= 0);
    return nullary_index_[p];
  }
  int32_t FreshAtom() { return next_atom_id_++; }

  /// Splits the rule into variable components (proof step 1) and grounds each
  /// (proof step 2). Components not containing the head variable become
  /// propositional bridge atoms.
  void GroundRule(const Rule& rule) {
    std::vector<int32_t> comp = RuleVarComponents(program_, rule);
    int32_t num_comps =
        rule.num_vars() == 0
            ? 0
            : 1 + *std::max_element(comp.begin(), comp.end());

    int32_t head_comp = -1;
    if (!rule.head.args.empty() && rule.head.args[0].is_var()) {
      head_comp = comp[rule.head.args[0].value];
    }

    // Atoms per component; ground atoms (no variables) go to the main rule.
    std::vector<std::vector<const Atom*>> comp_atoms(num_comps);
    std::vector<const Atom*> ground_atoms;
    for (const Atom& a : rule.body) {
      int32_t c = -1;
      for (const Term& t : a.args) {
        if (t.is_var()) {
          c = comp[t.value];
          break;
        }
      }
      if (c < 0) {
        ground_atoms.push_back(&a);
      } else {
        comp_atoms[c].push_back(&a);
      }
    }

    // Grounding of the fully ground part: EDB atoms checked now; IDB atoms
    // become Horn literals shared by every instantiation.
    std::vector<int32_t> shared_body;
    for (const Atom* a : ground_atoms) {
      if (!EmitGroundAtom(*a, /*binding=*/nullptr, &shared_body)) return;
    }

    // Bridge components.
    for (int32_t c = 0; c < num_comps; ++c) {
      if (c == head_comp) continue;
      int32_t bridge = FreshAtom();
      GroundComponent(rule, comp, c, comp_atoms[c],
                      /*head_pred=*/-1, bridge, /*extra_body=*/{});
      shared_body.push_back(bridge);
    }

    // Main part.
    if (head_comp >= 0) {
      GroundComponent(rule, comp, head_comp, comp_atoms[head_comp],
                      rule.head.pred, /*fixed_head_atom=*/-1, shared_body);
    } else {
      // Ground or propositional head: a single clause.
      int32_t head_atom;
      if (rule.head.args.empty()) {
        head_atom = NullaryAtomId(rule.head.pred);
      } else {
        int32_t c = rule.head.args[0].value;  // constant (safety: no free var)
        if (c < 0 || c >= n_) return;
        head_atom = UnaryAtomId(rule.head.pred, c);
      }
      flat_.body_lits.insert(flat_.body_lits.end(), shared_body.begin(),
                             shared_body.end());
      flat_.Commit(head_atom);
    }
  }

  /// Grounds one variable component over all anchor nodes. If head_pred >= 0,
  /// emits clauses with head head_pred(binding of the rule's head variable);
  /// otherwise emits clauses with the fixed propositional head atom.
  ///
  /// The component's structure is identical for every anchor, so the
  /// propagation is compiled once into a step schedule (spanning-tree
  /// assignments + consistency checks, BFS order from the anchor) and the
  /// per-node loop just replays it. Each binary atom is validated exactly
  /// once: firstchild / nextsibling / child_k are injective partial
  /// functions, so f(x) = y and f⁻¹(y) = x are equivalent and the second
  /// direction needs no re-check.
  void GroundComponent(const Rule& rule, const std::vector<int32_t>& comp,
                       int32_t c, const std::vector<const Atom*>& atoms,
                       PredId head_pred, int32_t fixed_head_atom,
                       const std::vector<int32_t>& extra_body) {
    // Collect the component's variables.
    std::vector<VarId> vars;
    for (VarId v = 0; v < rule.num_vars(); ++v) {
      if (comp[v] == c) vars.push_back(v);
    }
    MD_CHECK(!vars.empty());

    // Partition the atoms: var-var binary atoms drive propagation; unary EDB
    // atoms become pre-classified spec checks; unary IDB atoms become Horn
    // literals; constant-carrying binary atoms stay on a residual check path.
    struct DirEdge {
      VarId from, to;
      RelKind rel;
      bool forward;  // true: to = f(from); false: to = f^{-1}(from)
      int32_t atom;
    };
    std::vector<std::vector<DirEdge>> adj(rule.num_vars());
    std::vector<std::pair<UnarySpec, VarId>> unary_checks;
    std::vector<std::pair<PredId, VarId>> idb_lits;
    std::vector<const Atom*> residual;
    for (size_t ai = 0; ai < atoms.size(); ++ai) {
      const Atom* a = atoms[ai];
      if (intensional_[a->pred]) {
        // Monadic + in this component ⇒ one argument, and it is a variable.
        MD_DCHECK(a->args.size() == 1 && a->args[0].is_var());
        idb_lits.emplace_back(a->pred, a->args[0].value);
      } else if (a->args.size() == 1) {
        MD_DCHECK(a->args[0].is_var());
        unary_checks.emplace_back(unary_specs_[a->pred], a->args[0].value);
      } else if (a->args[0].is_var() && a->args[1].is_var()) {
        const RelKind& kind = binary_specs_[a->pred];
        VarId x = a->args[0].value, y = a->args[1].value;
        adj[x].push_back({x, y, kind, true, static_cast<int32_t>(ai)});
        adj[y].push_back({y, x, kind, false, static_cast<int32_t>(ai)});
      } else {
        residual.push_back(a);
      }
    }

    // Compile the schedule: BFS from the anchor over the directed edges.
    struct Step {
      bool assign;  // true: binding[to] = f(from); false: f(from) == binding[to]
      VarId from, to;
      RelKind rel;
      bool forward;
    };
    std::vector<Step> steps;
    std::vector<bool> atom_done(atoms.size(), false);
    std::vector<bool> assigned(rule.num_vars(), false);
    const VarId anchor = vars[0];
    assigned[anchor] = true;
    std::vector<VarId> queue{anchor};
    for (size_t qi = 0; qi < queue.size(); ++qi) {
      for (const DirEdge& e : adj[queue[qi]]) {
        if (!assigned[e.to]) {
          steps.push_back({true, e.from, e.to, e.rel, e.forward});
          assigned[e.to] = true;
          atom_done[e.atom] = true;
          queue.push_back(e.to);
        } else if (!atom_done[e.atom]) {
          steps.push_back({false, e.from, e.to, e.rel, e.forward});
          atom_done[e.atom] = true;
        }
      }
    }
    MD_DCHECK(queue.size() == vars.size());  // component is connected

    const VarId head_var = head_pred >= 0 ? rule.head.args[0].value : -1;
    std::vector<tree::NodeId> binding(rule.num_vars(), tree::kNoNode);
    std::vector<int32_t> residual_scratch;

    for (tree::NodeId node = 0; node < n_; ++node) {
      binding[anchor] = node;
      bool failed = false;
      for (const Step& s : steps) {
        const tree::NodeId target =
            s.forward ? ApplyForward(tree_, s.rel, binding[s.from])
                      : ApplyBackward(tree_, s.rel, binding[s.from]);
        if (s.assign) {
          if (target == tree::kNoNode) {
            failed = true;
            break;
          }
          binding[s.to] = target;
        } else if (target != binding[s.to]) {
          failed = true;
          break;
        }
      }
      if (failed) continue;
      for (const auto& [spec, v] : unary_checks) {
        if (!CheckUnaryTreePred(tree_, spec, binding[v])) {
          failed = true;
          break;
        }
      }
      if (failed) continue;
      for (const Atom* a : residual) {
        residual_scratch.clear();
        if (!EmitGroundAtom(*a, &binding, &residual_scratch)) {
          failed = true;
          break;
        }
      }
      if (failed) continue;

      // Emit the clause straight into the flat arena.
      flat_.body_lits.insert(flat_.body_lits.end(), extra_body.begin(),
                             extra_body.end());
      for (const auto& [p, v] : idb_lits) {
        flat_.body_lits.push_back(UnaryAtomId(p, binding[v]));
      }
      flat_.Commit(head_pred >= 0 ? UnaryAtomId(head_pred, binding[head_var])
                                  : fixed_head_atom);
    }
  }

  /// For a (now fully bound) body atom: checks EDB atoms against the tree
  /// (returning false if violated) and appends IDB atoms to `body`.
  /// `binding` may be nullptr for atoms without variables.
  bool EmitGroundAtom(const Atom& a, const std::vector<tree::NodeId>* binding,
                      std::vector<int32_t>* body) {
    auto value_of = [&](const Term& t) -> int32_t {
      if (t.is_var()) {
        MD_CHECK(binding != nullptr);
        return (*binding)[t.value];
      }
      return t.value;
    };
    if (intensional_[a.pred]) {
      if (a.args.empty()) {
        body->push_back(NullaryAtomId(a.pred));
      } else {
        int32_t v = value_of(a.args[0]);
        if (v < 0 || v >= n_) return false;
        body->push_back(UnaryAtomId(a.pred, v));
      }
      return true;
    }
    if (a.args.size() == 1) {
      int32_t v = value_of(a.args[0]);
      if (v < 0 || v >= n_) return false;
      return CheckUnaryTreePred(tree_, unary_specs_[a.pred], v);
    }
    MD_CHECK(a.args.size() == 2);
    int32_t x = value_of(a.args[0]);
    int32_t y = value_of(a.args[1]);
    if (x < 0 || x >= n_ || y < 0 || y >= n_) return false;
    return ApplyForward(tree_, binary_specs_[a.pred], x) == y;
  }

  const Program& program_;
  const tree::Tree& tree_;
  int32_t n_;
  std::vector<bool> intensional_;
  std::vector<int32_t> unary_index_;
  std::vector<int32_t> nullary_index_;
  std::vector<UnarySpec> unary_specs_;   // per EDB PredId, arity 1
  std::vector<RelKind> binary_specs_;    // per EDB PredId, arity 2
  int32_t next_atom_id_ = 0;
  FlatHornInstance flat_;
};

util::Result<EvalResult> EvaluateGrounded(const Program& program,
                                          const tree::Tree& t,
                                          GroundStats* stats) {
  GroundedEvaluator evaluator(program, t);
  return evaluator.Run(stats);
}

util::Result<EvalResult> EvaluateOnTree(const Program& program,
                                        const tree::Tree& t, Engine engine,
                                        const EvalOptions& options) {
  switch (engine) {
    case Engine::kGrounded:
      return EvaluateGrounded(program, t);
    case Engine::kAuto:
      if (GroundableOverTree(program)) return EvaluateGrounded(program, t);
      [[fallthrough]];
    case Engine::kSemiNaive: {
      TreeDatabase db(t);
      return EvaluateSemiNaive(program, db, options);
    }
    case Engine::kNaive: {
      TreeDatabase db(t);
      return EvaluateNaive(program, db, options);
    }
  }
  return util::Status::Internal("unknown engine");
}

}  // namespace mdatalog::core
