#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/runtime/admission.h"
#include "src/runtime/document_cache.h"
#include "src/runtime/program_cache.h"
#include "src/runtime/thread_pool.h"
#include "src/stream/stream_types.h"
#include "src/telemetry/telemetry.h"
#include "src/util/deadline.h"
#include "src/util/result.h"
#include "src/wrapper/wrapper.h"

/// \file runtime.h
/// The wrapper-serving runtime: one process-wide object that owns the
/// compiled-program cache, the shared-document cache, an optional result
/// memo, and a fixed thread pool, and serves wrap requests through them.
///
/// This is the workload the paper's complexity story targets — monadic
/// datalog wrappers are O(|P|·|dom|) per page (Theorem 4.2), so the
/// per-page constant factors (HTML re-parse, program re-validation,
/// plan re-compilation, arena allocation) dominate a serving deployment.
/// The runtime amortizes every one of them.
///
/// Production hardening: the document cache and the result memo are sharded
/// (shared-nothing per-shard mutexes) with TinyLFU admission, and every
/// request may carry a deadline and a cancel token (RequestOptions) that the
/// engines poll cooperatively — a pathological page unwinds with a typed
/// kDeadlineExceeded / kCancelled status instead of occupying a pool worker
/// forever.

namespace mdatalog::stream {
class StreamSession;  // stream_session.h includes runtime.h, not vice versa
}  // namespace mdatalog::stream

namespace mdatalog::runtime {

struct RuntimeOptions {
  /// Workers in the batch executor. 1 = synchronous single-thread.
  int32_t num_threads = 1;
  /// Byte budget of the shared-document cache; 0 disables document caching.
  int64_t document_cache_bytes = 64 << 20;
  /// Document-cache shards (rounded up to a power of two; 1 = single mutex).
  int32_t document_cache_shards = 8;
  /// Max number of compiled programs kept.
  int32_t program_cache_capacity = 64;
  /// Key the program cache and the result memo on the canonical wrapper key
  /// (analysis::CanonicalWrapperKey) as well as the wrapper text:
  /// reformulated-but-equivalent wrapper revisions then share one compiled
  /// plan and one set of memoized results. false = syntactic keys only (the
  /// pre-canonicalization behavior, kept for A/B benchmarking).
  bool canonical_program_keys = true;
  /// Byte budget for memoized wrap results (wrapping is a pure function of
  /// (program, document), so the memo is exact); 0 disables memoization.
  int64_t result_memo_bytes = 16 << 20;
  /// Result-memo shards (rounded up to a power of two).
  int32_t result_memo_shards = 8;
  /// TinyLFU admission on the document cache and result memo. false = plain
  /// LRU (admit everything) — the pre-hardening behavior, kept for A/B
  /// benchmarking and for workloads known to have no scan traffic.
  bool cache_admission = true;
  /// Optional open corpus store (store::CorpusStore::Open), served as the
  /// document cache's second level: in-memory miss → mmap'd snapshot →
  /// only then an HTML parse. Documents must have been packed with the same
  /// projection attribute the wrapper registers with. May be null.
  std::shared_ptr<const store::CorpusStore> corpus_store = nullptr;

  enum class EngineMode {
    /// Grounded-datalog plan replay when the Corollary 6.4 pipeline
    /// compiled, native Elog evaluation otherwise.
    kAuto,
    /// Always the native Elog evaluator (supports Elog⁻Δ).
    kNativeElog,
    /// Require the grounded plan; Wrap fails for programs without one.
    kGroundedDatalog,
    /// Semi-naive datalog over the document's shared TreeDatabase: the
    /// cached EDB materializations (firstchild/nextsibling/label relations
    /// and functional arrays) are built once per document and shared by
    /// every query on it. Requires the datalog translation, like
    /// kGroundedDatalog. Mainly for cross-engine checking and for workloads
    /// where many programs hit one document (the EDB amortizes across
    /// programs; a GroundPlan amortizes across documents).
    kSemiNaiveDatalog,
  };
  EngineMode engine = EngineMode::kAuto;

  /// Observability: tracing + latency histograms. `telemetry.enabled = false`
  /// reduces the instrumentation to one branch per would-be span (no clock
  /// reads, no allocation); the serving counters behind stats() record
  /// regardless — they are striped relaxed atomics, cheaper than the mutexed
  /// counters they replaced.
  telemetry::TelemetryOptions telemetry;
};

/// Per-request bounds, threaded from Submit/RunBatch through the engines.
/// Default-constructed = unbounded (the pre-existing behavior, zero cost).
struct RequestOptions {
  /// Absolute deadline; evaluation unwinds with kDeadlineExceeded once it
  /// passes. The check is cooperative (strided polling inside the fixpoint
  /// loops), so overshoot is microseconds, not unbounded.
  util::Deadline deadline;
  /// Shared cancel flag; one token may cover a whole batch. The runtime
  /// holds the shared_ptr in the request closure, so the token outlives the
  /// evaluation. Cancelled requests return kCancelled.
  std::shared_ptr<util::CancelToken> cancel;
  /// Caller-owned trace for this request. When set, the runtime records the
  /// request's span tree into it (bypassing the sampling policy and the
  /// trace ring — the caller keeps the trace) instead of starting its own.
  /// Must outlive the request; for Submit/RunBatch that means until the
  /// future resolves. Null = the runtime's own sampling policy decides.
  telemetry::TraceContext* trace = nullptr;
};

struct RuntimeStats {
  DocumentCacheStats document_cache;
  ProgramCacheStats program_cache;
  int64_t memo_hits = 0;
  int64_t memo_misses = 0;
  int64_t memo_admission_rejects = 0;
  int64_t memo_bytes = 0;
  int64_t pages_wrapped = 0;       // full evaluations (memo hits excluded)
  int64_t grounded_evals = 0;
  int64_t seminaive_evals = 0;
  int64_t native_evals = 0;
  int64_t deadline_exceeded = 0;   // requests unwound by their deadline
  int64_t cancelled = 0;           // requests unwound by their cancel token
  int64_t stream_sessions = 0;     // stream sessions finished successfully
  int64_t stream_sessions_failed = 0;  // sessions ended by deadline/cancel/
                                       // parse failure (any non-OK terminal)
};

/// A registered wrapper: the shared compiled program plus the attribute
/// projection its pages are prepared with. Cheap to copy.
struct WrapperHandle {
  std::shared_ptr<const CompiledWrapperProgram> program;
  std::string project_attr;
};

class WrapperRuntime {
 public:
  explicit WrapperRuntime(const RuntimeOptions& options = {});
  ~WrapperRuntime();

  WrapperRuntime(const WrapperRuntime&) = delete;
  WrapperRuntime& operator=(const WrapperRuntime&) = delete;

  /// Compiles (or fetches) the wrapper program. `project_attr` non-empty
  /// projects that attribute into the labels of every page served to this
  /// wrapper (Remark 2.2), e.g. "class" for "tr@item"-style patterns.
  util::Result<WrapperHandle> Register(const wrapper::Wrapper& wrapper,
                                       const std::string& project_attr = "");

  /// Wraps one page synchronously on the calling thread, through the caches.
  /// Returns the output XML, or kDeadlineExceeded / kCancelled when the
  /// request's bounds fire mid-evaluation.
  util::Result<std::string> Wrap(const WrapperHandle& handle,
                                 std::string_view html,
                                 const RequestOptions& request = {});

  /// Enqueues one page on the thread pool.
  std::future<util::Result<std::string>> Submit(
      const WrapperHandle& handle, std::string html,
      const RequestOptions& request = {});

  /// Opens a streaming wrap session: the page arrives in chunks
  /// (StreamSession::Feed) and extraction results emit via
  /// `options.on_result` as soon as they are derived and final — before end
  /// of input for programs on the datalog pipeline. Finish() returns XML
  /// byte-identical to Wrap on the concatenated bytes. The session is not
  /// cached or memoized (its page has no complete bytes to key on) and must
  /// not outlive the runtime. Fails fast if `request` is already expired.
  util::Result<std::unique_ptr<stream::StreamSession>> SubmitStream(
      const WrapperHandle& handle, stream::StreamOptions options,
      const RequestOptions& request = {});

  /// Fans a corpus across the workers and merges deterministically: the
  /// result vector is index-aligned with `pages` regardless of completion
  /// order (page i's result is at position i, always). `request` applies to
  /// every page (one deadline / cancel token for the whole batch).
  std::vector<util::Result<std::string>> RunBatch(
      const WrapperHandle& handle, const std::vector<std::string>& pages,
      const RequestOptions& request = {});

  RuntimeStats stats() const;
  int32_t num_threads() const { return pool_.num_threads(); }

  /// The runtime's telemetry bundle: metrics registry, recent traces, slow
  /// log. Live for the runtime's lifetime.
  telemetry::Telemetry& telemetry() { return telemetry_; }
  const telemetry::Telemetry& telemetry() const { return telemetry_; }

  /// Prometheus text exposition of every metric the runtime knows — the
  /// registry (serving counters, per-stage latency histograms) merged with
  /// the cache/memo statistics (injected as counters/gauges).
  std::string ExportPrometheus() const;
  /// One JSON document: the same metrics plus the recent completed traces
  /// (full span trees) and the per-page nodes-vs-wall-time scatter.
  std::string ExportJson() const;

 private:
  struct MemoKey {
    uint64_t program_fp;   // canonical fingerprint: equivalent wrappers share
    Hash128 content_hash;  // 128-bit: the page bytes are untrusted input
    std::string attr;
    bool operator==(const MemoKey&) const = default;
  };
  struct MemoKeyHash {
    size_t operator()(const MemoKey& k) const {
      return static_cast<size_t>(k.program_fp * 1099511628211ULL ^
                                 k.content_hash.lo ^ k.content_hash.hi) ^
             std::hash<std::string>{}(k.attr);
    }
  };
  // The XML is held by shared_ptr so lookups copy a pointer, not the
  // document, while holding the shard mutex — the hit path's critical
  // section is O(1), not O(output).
  struct MemoEntry {
    MemoKey key;
    uint64_t key_hash = 0;  // sketch key
    std::shared_ptr<const std::string> xml;
  };
  /// One shard of the result memo: own mutex, own LRU, own byte budget, own
  /// frequency sketch — shared-nothing, like the document cache.
  struct MemoShard {
    mutable std::mutex mu;
    std::list<MemoEntry> lru;  // front = most recently used
    std::unordered_map<MemoKey, std::list<MemoEntry>::iterator, MemoKeyHash>
        index;
    std::optional<TinyLfuAdmission> lfu;
    int64_t bytes = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t admission_rejects = 0;
  };

  static uint64_t MemoKeyHash64(const MemoKey& key);
  MemoShard& MemoShardFor(uint64_t key_hash) {
    return *memo_shards_[(key_hash >> 32) & memo_shard_mask_];
  }

  std::shared_ptr<const std::string> MemoLookup(const MemoKey& key,
                                                uint64_t key_hash);
  void MemoInsert(const MemoKey& key, uint64_t key_hash,
                  const std::shared_ptr<const std::string>& xml);

  /// Submit without copying the page: `page` must stay alive until the
  /// returned future is ready (RunBatch owns the corpus and joins).
  std::future<util::Result<std::string>> SubmitRef(
      const WrapperHandle& handle, const std::string* page,
      const RequestOptions& request);

  /// Wrap minus trace lifecycle: hash → memo → document → evaluate → memo
  /// insert, recording spans against `trace` (may be null).
  util::Result<std::string> WrapImpl(const WrapperHandle& handle,
                                     std::string_view html,
                                     const util::EvalControl& control,
                                     telemetry::TraceContext* trace);

  /// The uncached evaluation core: engine selection + extent computation +
  /// output construction over a prepared document. `control` may be null.
  util::Result<std::string> Evaluate(const CompiledWrapperProgram& program,
                                     const CachedDocument& doc,
                                     const util::EvalControl* control);

  /// Books a terminal status into the deadline/cancel counters.
  void CountFailure(const util::Status& status);

  /// Registry snapshot with the cache/memo statistics folded in (the caches
  /// keep their own sharded counters; exports want one document).
  telemetry::MetricsSnapshot MetricsWithCacheStats() const;

  const RuntimeOptions options_;
  // Before the caches and the pool: counter handles below point into the
  // registry, and pool workers record through them until the pool drains.
  telemetry::Telemetry telemetry_;
  ProgramCache programs_;
  DocumentCache documents_;

  const int64_t memo_shard_bytes_;  // per-shard budget
  uint64_t memo_shard_mask_ = 0;
  std::vector<std::unique_ptr<MemoShard>> memo_shards_;

  // Serving counters, resolved once at construction. Striped lock-free
  // counters in the registry — stats() reads the same storage the exporters
  // scrape, so the two can never disagree.
  telemetry::Counter* const pages_wrapped_;
  telemetry::Counter* const grounded_evals_;
  telemetry::Counter* const seminaive_evals_;
  telemetry::Counter* const native_evals_;
  telemetry::Counter* const deadline_exceeded_;
  telemetry::Counter* const cancelled_;
  telemetry::Counter* const stream_sessions_;
  telemetry::Counter* const stream_sessions_failed_;

  // Last member on purpose: ~ThreadPool drains queued jobs, and those jobs
  // touch every cache/mutex above — the pool must die (and drain) first.
  ThreadPool pool_;
};

}  // namespace mdatalog::runtime
