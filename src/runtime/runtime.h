#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/runtime/document_cache.h"
#include "src/runtime/program_cache.h"
#include "src/runtime/sharded_lfu_cache.h"
#include "src/runtime/tenant.h"
#include "src/runtime/thread_pool.h"
#include "src/stream/stream_types.h"
#include "src/telemetry/telemetry.h"
#include "src/util/deadline.h"
#include "src/util/hash.h"
#include "src/util/result.h"
#include "src/wrapper/wrapper.h"

/// \file runtime.h
/// The wrapper-serving runtime: one process-wide object that owns the
/// compiled-program cache, the shared-document cache, an optional result
/// memo, a tenant registry, and a fixed thread pool, and serves wrap
/// requests through them.
///
/// This is the workload the paper's complexity story targets — monadic
/// datalog wrappers are O(|P|·|dom|) per page (Theorem 4.2), so the
/// per-page constant factors (HTML re-parse, program re-validation,
/// plan re-compilation, arena allocation) dominate a serving deployment.
/// The runtime amortizes every one of them.
///
/// Production hardening: the document cache and the result memo are two
/// instantiations of one sharded TinyLFU store (sharded_lfu_cache.h), and
/// every request may carry a deadline and a cancel token (RequestOptions)
/// that the engines poll cooperatively — a pathological page unwinds with a
/// typed kDeadlineExceeded / kCancelled status instead of occupying a pool
/// worker forever.
///
/// Multi-tenant QoS (tenant.h): requests carry a TenantId; each tenant gets
/// a guaranteed cache share (fair-share eviction), a CPU token bucket
/// charged with measured evaluation time, and a priority class that maps
/// over-quota traffic to tightened deadlines instead of rejections. The
/// default tenant (id 0) is unmetered, so single-tenant callers pay almost
/// nothing for the machinery.
///
/// The request surface is one value type: build a Request (page + wrapper +
/// options) and hand it to Submit / SubmitBatch / SubmitStream, or wrap
/// synchronously with Wrap(Request). The pre-Request entry points remain as
/// deprecated shims for one release.

namespace mdatalog::stream {
class StreamSession;  // stream_session.h includes runtime.h, not vice versa
}  // namespace mdatalog::stream

namespace mdatalog::runtime {

struct RuntimeOptions {
  /// Workers in the batch executor. 1 = synchronous single-thread.
  int32_t num_threads = 1;
  /// Shared-document cache tuning (sharded_lfu_cache.h). byte_budget 0
  /// disables document caching.
  CacheOptions document_cache{.byte_budget = 64 << 20};
  /// Result-memo tuning (wrapping is a pure function of
  /// (program, document), so the memo is exact). byte_budget 0 disables
  /// memoization. Memo entries are one XML string, so the sketch auto-sizing
  /// assumes ~4KB entries.
  CacheOptions result_memo{.byte_budget = 16 << 20,
                           .sketch_entry_bytes = 4 << 10};
  /// Max number of compiled programs kept.
  int32_t program_cache_capacity = 64;
  /// Key the program cache and the result memo on the canonical wrapper key
  /// (analysis::CanonicalWrapperKey) as well as the wrapper text:
  /// reformulated-but-equivalent wrapper revisions then share one compiled
  /// plan and one set of memoized results. false = syntactic keys only (the
  /// pre-canonicalization behavior, kept for A/B benchmarking).
  bool canonical_program_keys = true;
  /// Optional open corpus store (store::CorpusStore::Open), served as the
  /// document cache's second level: in-memory miss → mmap'd snapshot →
  /// only then an HTML parse. Documents must have been packed with the same
  /// projection attribute the wrapper registers with. May be null.
  std::shared_ptr<const store::CorpusStore> corpus_store = nullptr;
  /// Tenants registered at construction, in id order starting at 1 (id 0 is
  /// the always-present unmetered default tenant). More may be added later
  /// via RegisterTenant().
  std::vector<TenantQuota> tenants;
  /// Priority-class deadline caps for over-quota tenants.
  QosOptions qos;

  enum class EngineMode {
    /// Grounded-datalog plan replay when the Corollary 6.4 pipeline
    /// compiled, native Elog evaluation otherwise.
    kAuto,
    /// Always the native Elog evaluator (supports Elog⁻Δ).
    kNativeElog,
    /// Require the grounded plan; Wrap fails for programs without one.
    kGroundedDatalog,
    /// Semi-naive datalog over the document's shared TreeDatabase: the
    /// cached EDB materializations (firstchild/nextsibling/label relations
    /// and functional arrays) are built once per document and shared by
    /// every query on it. Requires the datalog translation, like
    /// kGroundedDatalog. Mainly for cross-engine checking and for workloads
    /// where many programs hit one document (the EDB amortizes across
    /// programs; a GroundPlan amortizes across documents).
    kSemiNaiveDatalog,
  };
  EngineMode engine = EngineMode::kAuto;

  /// Observability: tracing + latency histograms. `telemetry.enabled = false`
  /// reduces the instrumentation to one branch per would-be span (no clock
  /// reads, no allocation); the serving counters behind stats() record
  /// regardless — they are striped relaxed atomics, cheaper than the mutexed
  /// counters they replaced.
  telemetry::TelemetryOptions telemetry;
};

/// Per-request bounds and identity, threaded from Submit/SubmitBatch through
/// the engines. Default-constructed = unbounded, default tenant (the
/// pre-existing behavior, zero cost).
struct RequestOptions {
  /// Absolute deadline; evaluation unwinds with kDeadlineExceeded once it
  /// passes. The check is cooperative (strided polling inside the fixpoint
  /// loops), so overshoot is microseconds, not unbounded. An over-quota
  /// tenant may have this tightened further at admission (tenant.h).
  util::Deadline deadline;
  /// Shared cancel flag; one token may cover a whole batch. The runtime
  /// holds the shared_ptr in the request closure, so the token outlives the
  /// evaluation. Cancelled requests return kCancelled.
  std::shared_ptr<util::CancelToken> cancel;
  /// Caller-owned trace for this request. When set, the runtime records the
  /// request's span tree into it (bypassing the sampling policy and the
  /// trace ring — the caller keeps the trace) instead of starting its own.
  /// Must outlive the request; for Submit/SubmitBatch that means until the
  /// future resolves, for SubmitStream until the session is destroyed.
  /// Enforced in debug builds: the runtime counts async requests into
  /// TraceContext::inflight_requests() and the trace's destructor asserts
  /// the count is zero. Null = the runtime's own sampling policy decides.
  telemetry::TraceContext* trace = nullptr;
  /// Who this request runs as — pays for its cache bytes, is charged its
  /// CPU, and gets its QoS class. Unknown ids serve as the default tenant.
  TenantId tenant = kDefaultTenant;
};

/// The page bytes of one request, either borrowed or owned. Borrowed pages
/// (View) make batch submission zero-copy — the caller guarantees the bytes
/// outlive the request (for SubmitBatch: the call itself, which joins).
/// Owned pages (Copy) are for futures that outlive the caller's buffer.
class PageRef {
 public:
  PageRef() = default;

  /// Borrows `bytes`. Caller keeps them alive until the request completes.
  static PageRef View(std::string_view bytes) {
    PageRef p;
    p.view_ = bytes;
    return p;
  }
  /// Takes ownership of `bytes`; the request is self-contained.
  static PageRef Copy(std::string bytes) {
    PageRef p;
    p.owned_ = true;
    p.storage_ = std::move(bytes);
    return p;
  }

  /// Valid wherever the PageRef is (recomputed per call, so moves are safe).
  std::string_view bytes() const {
    return owned_ ? std::string_view(storage_) : view_;
  }

 private:
  bool owned_ = false;
  std::string storage_;     // when owned
  std::string_view view_;   // when borrowed
};

/// A registered wrapper: the shared compiled program plus the attribute
/// projection its pages are prepared with. Cheap to copy.
struct WrapperHandle {
  std::shared_ptr<const CompiledWrapperProgram> program;
  std::string project_attr;
};

/// One wrap request, complete: what to wrap, with which wrapper, under which
/// bounds and tenant. The single currency of the submission API — Wrap,
/// Submit, SubmitBatch and SubmitStream all take it (SubmitStream ignores
/// `page`; the page arrives via StreamSession::Feed).
struct Request {
  PageRef page;
  WrapperHandle wrapper;
  RequestOptions options;
};

struct RuntimeStats {
  DocumentCacheStats document_cache;
  ProgramCacheStats program_cache;
  int64_t memo_hits = 0;
  int64_t memo_misses = 0;
  int64_t memo_admission_rejects = 0;
  int64_t memo_fair_share_rejects = 0;
  int64_t memo_bytes = 0;
  int64_t pages_wrapped = 0;       // full evaluations (memo hits excluded)
  int64_t grounded_evals = 0;
  int64_t seminaive_evals = 0;
  int64_t native_evals = 0;
  int64_t deadline_exceeded = 0;   // requests unwound by their deadline
  int64_t cancelled = 0;           // requests unwound by their cancel token
  int64_t degraded = 0;            // requests admitted with a tightened
                                   // deadline (tenant over CPU quota)
  int64_t stream_sessions = 0;     // stream sessions finished successfully
  int64_t stream_sessions_failed = 0;  // sessions ended by deadline/cancel/
                                       // parse failure (any non-OK terminal)
};

/// One tenant's view of the runtime: its QoS counters plus its slice of both
/// caches.
struct TenantStatsSnapshot {
  std::string name;
  int64_t requests = 0;
  int64_t pages_wrapped = 0;
  int64_t memo_hits = 0;
  int64_t deadline_exceeded = 0;
  int64_t cancelled = 0;
  int64_t degraded = 0;
  int64_t cpu_ns = 0;
  TenantCacheStats document_cache;
  TenantCacheStats result_memo;
};

class WrapperRuntime {
 public:
  explicit WrapperRuntime(const RuntimeOptions& options = {});
  ~WrapperRuntime();

  WrapperRuntime(const WrapperRuntime&) = delete;
  WrapperRuntime& operator=(const WrapperRuntime&) = delete;

  /// Compiles (or fetches) the wrapper program. `project_attr` non-empty
  /// projects that attribute into the labels of every page served to this
  /// wrapper (Remark 2.2), e.g. "class" for "tr@item"-style patterns.
  util::Result<WrapperHandle> Register(const wrapper::Wrapper& wrapper,
                                       const std::string& project_attr = "");

  /// Registers a tenant while serving; returns its id. Tenants listed in
  /// RuntimeOptions::tenants are registered at construction (ids 1, 2, …).
  TenantId RegisterTenant(const TenantQuota& quota) {
    return tenants_.Register(quota);
  }

  /// Wraps one page synchronously on the calling thread, through the caches
  /// and the tenant's QoS gate. Returns the output XML, or
  /// kDeadlineExceeded / kCancelled when the request's (possibly degraded)
  /// bounds fire mid-evaluation.
  util::Result<std::string> Wrap(const Request& request) {
    return Wrap(request.wrapper, request.page.bytes(), request.options);
  }
  /// Same, with the parts spelled out (the sync core the shims reuse).
  util::Result<std::string> Wrap(const WrapperHandle& handle,
                                 std::string_view html,
                                 const RequestOptions& request = {});

  /// Enqueues one request on the thread pool. A borrowed page (PageRef::View)
  /// must stay alive until the future resolves; prefer PageRef::Copy for
  /// fire-and-forget submission.
  std::future<util::Result<std::string>> Submit(Request request);

  /// Fans requests across the workers and merges deterministically: the
  /// result vector is index-aligned with `requests` regardless of completion
  /// order (request i's result is at position i, always). Joins before
  /// returning, so borrowed pages only need to outlive the call.
  std::vector<util::Result<std::string>> SubmitBatch(
      std::vector<Request> requests);

  /// Opens a streaming wrap session for `request` (its `page` is ignored —
  /// the page arrives in chunks via StreamSession::Feed) and extraction
  /// results emit via `options.on_result` as soon as they are derived and
  /// final — before end of input for programs on the datalog pipeline.
  /// Finish() returns XML byte-identical to Wrap on the concatenated bytes.
  /// The session is not cached or memoized (its page has no complete bytes
  /// to key on) and must not outlive the runtime. Fails fast if the request
  /// is already expired.
  util::Result<std::unique_ptr<stream::StreamSession>> SubmitStream(
      const Request& request, stream::StreamOptions options);

  /// Pre-Request entry points, kept one release for migration. They forward
  /// to the Request surface verbatim.
  [[deprecated("build a Request and call Submit(Request)")]]
  std::future<util::Result<std::string>> Submit(const WrapperHandle& handle,
                                                std::string html,
                                                const RequestOptions& request);
  [[deprecated("build Requests and call SubmitBatch")]]
  std::vector<util::Result<std::string>> RunBatch(
      const WrapperHandle& handle, const std::vector<std::string>& pages,
      const RequestOptions& request = {});
  [[deprecated("build a Request and call SubmitStream(Request, options)")]]
  util::Result<std::unique_ptr<stream::StreamSession>> SubmitStream(
      const WrapperHandle& handle, stream::StreamOptions options,
      const RequestOptions& request);

  RuntimeStats stats() const;
  /// One tenant's QoS counters and cache slices. Unknown ids read as the
  /// default tenant.
  TenantStatsSnapshot tenant_stats(TenantId tenant) const;
  const TenantRegistry& tenant_registry() const { return tenants_; }

  int32_t num_threads() const { return pool_.num_threads(); }

  /// The runtime's telemetry bundle: metrics registry, recent traces, slow
  /// log. Live for the runtime's lifetime.
  telemetry::Telemetry& telemetry() { return telemetry_; }
  const telemetry::Telemetry& telemetry() const { return telemetry_; }

  /// Prometheus text exposition of every metric the runtime knows — the
  /// registry (serving counters, per-tenant QoS counters, per-stage latency
  /// histograms) merged with the cache/memo statistics (injected as
  /// counters/gauges, including each tenant's cache slice).
  std::string ExportPrometheus() const;
  /// One JSON document: the same metrics plus the recent completed traces
  /// (full span trees) and the per-page nodes-vs-wall-time scatter.
  std::string ExportJson() const;

 private:
  struct MemoKey {
    uint64_t program_fp;   // canonical fingerprint: equivalent wrappers share
    Hash128 content_hash;  // 128-bit: the page bytes are untrusted input
    std::string attr;
    bool operator==(const MemoKey&) const = default;
  };
  struct MemoKeyHasher {
    size_t operator()(const MemoKey& k) const {
      return static_cast<size_t>(MemoKeyHash64(k));
    }
  };

  /// Keyed SipHash over the full memo key (see document_cache.h for why the
  /// in-memory key hashes are keyed).
  static uint64_t MemoKeyHash64(const MemoKey& key);
  static int64_t MemoCost(const MemoKey& key, const std::string& xml);

  /// Wrap minus trace lifecycle and QoS accounting: hash → memo → document →
  /// evaluate → memo insert, recording spans against `trace` (may be null)
  /// and per-tenant cache charges against `tenant`.
  util::Result<std::string> WrapImpl(const WrapperHandle& handle,
                                     std::string_view html,
                                     const util::EvalControl& control,
                                     telemetry::TraceContext* trace,
                                     TenantId tenant);

  /// The uncached evaluation core: engine selection + extent computation +
  /// output construction over a prepared document. `control` may be null.
  util::Result<std::string> Evaluate(const CompiledWrapperProgram& program,
                                     const CachedDocument& doc,
                                     const util::EvalControl* control);

  /// Books a terminal status into the runtime and tenant counters.
  void CountFailure(const util::Status& status, TenantId tenant);

  /// Registry snapshot with the cache/memo statistics folded in (the caches
  /// keep their own sharded counters; exports want one document).
  telemetry::MetricsSnapshot MetricsWithCacheStats() const;

  const RuntimeOptions options_;
  // Before the caches and the pool: counter handles below point into the
  // registry, and pool workers record through them until the pool drains.
  telemetry::Telemetry telemetry_;
  // Before the caches: both hold a pointer to the registry for fair share.
  TenantRegistry tenants_;
  ProgramCache programs_;
  DocumentCache documents_;
  ShardedLfuCache<MemoKey, std::string, MemoKeyHasher> memo_;

  // Serving counters, resolved once at construction. Striped lock-free
  // counters in the registry — stats() reads the same storage the exporters
  // scrape, so the two can never disagree.
  telemetry::Counter* const pages_wrapped_;
  telemetry::Counter* const grounded_evals_;
  telemetry::Counter* const seminaive_evals_;
  telemetry::Counter* const native_evals_;
  telemetry::Counter* const deadline_exceeded_;
  telemetry::Counter* const cancelled_;
  telemetry::Counter* const degraded_;
  telemetry::Counter* const stream_sessions_;
  telemetry::Counter* const stream_sessions_failed_;

  // Last member on purpose: ~ThreadPool drains queued jobs, and those jobs
  // touch every cache/mutex above — the pool must die (and drain) first.
  ThreadPool pool_;
};

}  // namespace mdatalog::runtime
