#include "src/runtime/program_cache.h"

#include <algorithm>
#include <utility>

#include "src/analysis/canonical.h"
#include "src/elog/to_datalog.h"
#include "src/runtime/document_cache.h"
#include "src/tmnf/pipeline.h"
#include "src/util/check.h"

namespace mdatalog::runtime {

uint64_t ProgramCache::Fingerprint(const wrapper::Wrapper& wrapper) {
  std::string key = elog::ToString(wrapper.program);
  for (const std::string& p : wrapper.extraction_patterns) {
    key += '\x1f';  // unit separator: pattern lists must not concatenate
    key += p;
  }
  return HashBytes(key);
}

namespace {

/// Attempts the Corollary 6.4 pipeline. Failure is not an error — Elog⁻Δ
/// programs are expected to fall back to the native evaluator.
void TryCompileGroundPlan(CompiledWrapperProgram* out) {
  if (out->prepared.program.program().UsesDeltaBuiltins()) return;
  auto datalog = elog::ElogToDatalog(out->prepared.program.program());
  if (!datalog.ok()) return;
  auto tmnf = tmnf::ToTmnf(*datalog);
  if (!tmnf.ok()) return;
  auto plan = core::GroundPlan::Compile(*tmnf);
  if (!plan.ok()) return;
  out->tmnf = std::move(*tmnf);
  out->ground_plan = std::move(*plan);
  out->pattern_preds.reserve(out->prepared.extraction_patterns.size());
  for (const std::string& pattern : out->prepared.extraction_patterns) {
    out->pattern_preds.push_back(out->tmnf.preds().Find("pat_" + pattern));
  }
  out->has_ground_plan = true;
}

}  // namespace

ProgramCache::ProgramCache(int32_t capacity, bool canonical_keys)
    : capacity_(std::max(capacity, 1)), canonical_keys_(canonical_keys) {}

util::Result<std::shared_ptr<const CompiledWrapperProgram>>
ProgramCache::GetOrCompile(const wrapper::Wrapper& wrapper) {
  const uint64_t fp = Fingerprint(wrapper);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(fp);
  if (it != index_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->program;
  }

  // Syntactic miss: fall back to the canonical key, so a reformulated
  // revision of a cached wrapper reuses its compiled plan.
  uint64_t canonical_fp = fp;
  if (canonical_keys_) {
    auto key = analysis::CanonicalWrapperKey(wrapper.program,
                                             wrapper.extraction_patterns);
    if (key.ok()) canonical_fp = key->fingerprint;
    auto cit = canonical_index_.find(canonical_fp);
    if (cit != canonical_index_.end()) {
      ++stats_.hits;
      ++stats_.canonical_key_hits;
      if (cit->second->syntactic_fps.size() < kMaxAliases) {
        cit->second->syntactic_fps.push_back(fp);
        index_.emplace(fp, cit->second);
      }
      lru_.splice(lru_.begin(), lru_, cit->second);
      return cit->second->program;
    }
  }
  ++stats_.misses;

  auto compiled = std::make_shared<CompiledWrapperProgram>();
  MD_ASSIGN_OR_RETURN(compiled->prepared,
                      wrapper::PreparedWrapper::Prepare(wrapper));
  compiled->fingerprint = fp;
  compiled->canonical_fingerprint = canonical_fp;
  TryCompileGroundPlan(compiled.get());
  if (compiled->has_ground_plan) ++stats_.ground_plans;

  lru_.push_front(Entry{canonical_fp, {fp}, compiled});
  index_.emplace(fp, lru_.begin());
  canonical_index_.emplace(canonical_fp, lru_.begin());
  ++stats_.entries;
  while (static_cast<int32_t>(lru_.size()) > capacity_) {
    const Entry& victim = lru_.back();
    for (uint64_t sfp : victim.syntactic_fps) index_.erase(sfp);
    canonical_index_.erase(victim.canonical_fp);
    lru_.pop_back();
    ++stats_.evictions;
    --stats_.entries;
  }
  return std::shared_ptr<const CompiledWrapperProgram>(std::move(compiled));
}

ProgramCacheStats ProgramCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace mdatalog::runtime
