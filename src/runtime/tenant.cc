#include "src/runtime/tenant.h"

#include <algorithm>
#include <chrono>

namespace mdatalog::runtime {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TenantRegistry::TenantRegistry(telemetry::MetricsRegistry* registry,
                               const QosOptions& qos)
    : registry_(registry), qos_(qos) {
  if (registry_ == nullptr) {
    owned_registry_ = std::make_unique<telemetry::MetricsRegistry>();
    registry_ = owned_registry_.get();
  }
  Register(TenantQuota{.name = "default"});  // id 0, unmetered, weight 1
}

TenantId TenantRegistry::Register(const TenantQuota& quota) {
  auto t = std::make_unique<Tenant>();
  t->quota = quota;
  if (t->quota.name.empty()) t->quota.name = "anonymous";
  if (t->quota.cache_weight <= 0) t->quota.cache_weight = 1.0;
  if (t->quota.cpu_burst_ns <= 0) {
    t->quota.cpu_burst_ns = t->quota.cpu_ns_per_sec;  // one second's worth
  }
  t->balance_ns = t->quota.cpu_burst_ns;  // start full: bursts are allowed
  t->last_refill_ns = NowNs();
  const std::string prefix = "tenant." + t->quota.name + ".";
  t->counters.requests = registry_->GetCounter(prefix + "requests");
  t->counters.pages_wrapped = registry_->GetCounter(prefix + "pages_wrapped");
  t->counters.memo_hits = registry_->GetCounter(prefix + "memo_hits");
  t->counters.deadline_exceeded =
      registry_->GetCounter(prefix + "deadline_exceeded");
  t->counters.cancelled = registry_->GetCounter(prefix + "cancelled");
  t->counters.degraded = registry_->GetCounter(prefix + "degraded");
  t->counters.cpu_ns = registry_->GetCounter(prefix + "cpu_ns");

  std::unique_lock lock(mu_);
  const TenantId id = static_cast<TenantId>(tenants_.size());
  total_weight_ += t->quota.cache_weight;
  tenants_.push_back(std::move(t));
  return id;
}

TenantRegistry::Tenant* TenantRegistry::Get(TenantId tenant) const {
  std::shared_lock lock(mu_);
  if (tenant < 0 || tenant >= static_cast<TenantId>(tenants_.size())) {
    tenant = kDefaultTenant;  // unknown ids serve as the default tenant
  }
  return tenants_[static_cast<size_t>(tenant)].get();
}

int64_t TenantRegistry::RefillLocked(Tenant& t) const {
  const int64_t now = NowNs();
  const int64_t dt = std::max<int64_t>(now - t.last_refill_ns, 0);
  t.last_refill_ns = now;
  // Refill in 128-bit: dt * rate overflows int64 after ~9s at full rate.
  const __int128 earned =
      static_cast<__int128>(dt) * t.quota.cpu_ns_per_sec / 1000000000;
  const __int128 next = static_cast<__int128>(t.balance_ns) + earned;
  t.balance_ns = static_cast<int64_t>(
      std::min<__int128>(next, t.quota.cpu_burst_ns));
  return t.balance_ns;
}

RequestAdmission TenantRegistry::Admit(TenantId tenant,
                                       const util::Deadline& requested) {
  Tenant* t = Get(tenant);
  t->counters.requests->Add(1);
  RequestAdmission adm{requested, false};
  if (t->quota.cpu_ns_per_sec <= 0) return adm;  // unmetered
  int64_t balance;
  {
    std::lock_guard<std::mutex> lock(t->mu);
    balance = RefillLocked(*t);
  }
  if (balance >= 0) return adm;
  int64_t cap_ms = 0;
  switch (t->quota.priority) {
    case Priority::kHigh:
      cap_ms = qos_.high_degrade_ms;
      break;
    case Priority::kNormal:
      cap_ms = qos_.normal_degrade_ms;
      break;
    case Priority::kLow:
      cap_ms = qos_.low_degrade_ms;
      break;
  }
  if (cap_ms <= 0) return adm;  // this class never degrades
  adm.deadline = util::EarlierOf(
      requested, util::Deadline::After(std::chrono::milliseconds(cap_ms)));
  adm.degraded = true;
  t->counters.degraded->Add(1);
  return adm;
}

void TenantRegistry::ChargeCpu(TenantId tenant, int64_t ns) {
  if (ns <= 0) return;
  Tenant* t = Get(tenant);
  t->counters.cpu_ns->Add(ns);
  if (t->quota.cpu_ns_per_sec <= 0) return;
  std::lock_guard<std::mutex> lock(t->mu);
  t->balance_ns -= ns;
}

bool TenantRegistry::metered(TenantId tenant) const {
  return Get(tenant)->quota.cpu_ns_per_sec > 0;
}

double TenantRegistry::ShareOf(TenantId tenant) const {
  Tenant* t = Get(tenant);
  std::shared_lock lock(mu_);
  return total_weight_ > 0 ? t->quota.cache_weight / total_weight_ : 1.0;
}

TenantCounters* TenantRegistry::counters(TenantId tenant) const {
  return &Get(tenant)->counters;
}

std::string TenantRegistry::name(TenantId tenant) const {
  return Get(tenant)->quota.name;
}

int32_t TenantRegistry::num_tenants() const {
  std::shared_lock lock(mu_);
  return static_cast<int32_t>(tenants_.size());
}

int64_t TenantRegistry::cpu_balance_ns(TenantId tenant) const {
  Tenant* t = Get(tenant);
  std::lock_guard<std::mutex> lock(t->mu);
  return RefillLocked(*t);
}

}  // namespace mdatalog::runtime
