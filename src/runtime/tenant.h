#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/telemetry/metrics.h"
#include "src/util/deadline.h"

/// \file tenant.h
/// Multi-tenant QoS for the serving runtime. The paper's complexity bound is
/// what makes metering honest here: monadic-datalog wrapping is
/// O(|P|·|dom|) per page (Theorem 4.2), so a tenant's CPU consumption is a
/// predictable function of the traffic it sends — a token bucket over
/// measured evaluation nanoseconds is a fair meter, not a lottery.
///
/// Three QoS mechanisms hang off the registry:
///  * cache fair share — every ShardedLfuCache entry is tagged with the
///    tenant that inserted it, and a tenant whose resident bytes sit at or
///    under its guaranteed share (weight / Σ weights of the shard budget)
///    cannot be evicted by another tenant's traffic. One tenant's cold-scan
///    flood therefore churns its own share and leaves other tenants' hot
///    sets resident (sharded_lfu_cache.h);
///  * CPU metering — a per-tenant token bucket refilled at cpu_ns_per_sec,
///    charged with the measured wall time of each evaluation;
///  * priority → deadline degradation — an over-quota tenant's requests get
///    their deadline tightened (util::EarlierOf) to a per-priority-class
///    cap instead of being rejected: high priority never degrades, normal
///    and low degrade to successively shorter effective deadlines. The
///    request still runs and still returns its result if it fits — over
///    quota shrinks the service level, it does not turn the service off.
///
/// Per-tenant counters live in the runtime's MetricsRegistry under
/// "tenant.<name>.*", so they ride the existing Prometheus/JSON exporters
/// with no extra plumbing.

namespace mdatalog::runtime {

/// Dense tenant identifier. 0 is the always-present default tenant
/// (unmetered, weight 1) that every request without an explicit tenant runs
/// as; Register() hands out 1, 2, … in registration order.
using TenantId = int32_t;
inline constexpr TenantId kDefaultTenant = 0;

/// Request priority classes, mapped to deadline-degradation caps in
/// QosOptions when the tenant is over its CPU quota.
enum class Priority { kHigh = 0, kNormal = 1, kLow = 2 };

struct TenantQuota {
  /// Metric label ("tenant.<name>.requests" etc.). Must be non-empty and
  /// unique per registry; the default tenant is named "default".
  std::string name;
  /// Relative cache share. A tenant's guaranteed fraction of every
  /// fair-share cache is cache_weight / Σ registered cache_weights
  /// (default tenant included).
  double cache_weight = 1.0;
  /// CPU budget: evaluation nanoseconds this tenant may consume per second
  /// of wall time (token-bucket refill rate). 0 = unmetered — the tenant
  /// never runs over quota and never degrades.
  int64_t cpu_ns_per_sec = 0;
  /// Token-bucket depth: how far ahead a bursty tenant may run before the
  /// balance goes negative. 0 = one second's worth (cpu_ns_per_sec).
  int64_t cpu_burst_ns = 0;
  Priority priority = Priority::kNormal;
};

/// Priority-class deadline caps applied to over-quota requests; 0 = this
/// class never degrades. The caps deliberately leave high priority
/// untouched: a paying interactive tenant that bursts past its quota keeps
/// its latency contract, while batch (low) traffic over quota is squeezed
/// hardest.
struct QosOptions {
  int64_t high_degrade_ms = 0;
  int64_t normal_degrade_ms = 25;
  int64_t low_degrade_ms = 5;
};

/// Per-tenant counter handles, resolved once at Register() time from the
/// owning MetricsRegistry. Stable for the registry's lifetime — hot paths
/// record through them without a name lookup.
struct TenantCounters {
  telemetry::Counter* requests = nullptr;
  telemetry::Counter* pages_wrapped = nullptr;
  telemetry::Counter* memo_hits = nullptr;
  telemetry::Counter* deadline_exceeded = nullptr;
  telemetry::Counter* cancelled = nullptr;
  telemetry::Counter* degraded = nullptr;
  telemetry::Counter* cpu_ns = nullptr;
};

/// The QoS admission decision for one request: the effective deadline (the
/// request's own, possibly tightened) and whether it was degraded.
struct RequestAdmission {
  util::Deadline deadline;
  bool degraded = false;
};

/// Registry of tenants and their quotas. Thread-safe throughout: Register
/// may race with serving; the per-tenant token buckets take one short
/// per-tenant mutex per request.
class TenantRegistry {
 public:
  /// `registry` hosts the per-tenant counters (pass the runtime's metrics
  /// registry so they export with everything else); null = the registry
  /// owns a private one (standalone/tests).
  explicit TenantRegistry(telemetry::MetricsRegistry* registry = nullptr,
                          const QosOptions& qos = {});

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// Registers a tenant and returns its id. Safe to call while serving.
  TenantId Register(const TenantQuota& quota);

  /// Admission control for one request: counts it, refills the tenant's
  /// token bucket, and — when the balance is negative and the tenant's
  /// priority class has a degradation cap — returns `requested` tightened
  /// to that cap. Unknown ids fall back to the default tenant.
  RequestAdmission Admit(TenantId tenant, const util::Deadline& requested);

  /// Charges `ns` of evaluation time against the tenant's bucket (and its
  /// cpu_ns counter). Call with the measured wall time of the evaluation.
  void ChargeCpu(TenantId tenant, int64_t ns);

  /// True when the tenant's CPU is metered (lets the serving path skip the
  /// clock reads entirely for unmetered tenants).
  bool metered(TenantId tenant) const;

  /// The tenant's guaranteed fraction of a fair-share cache:
  /// cache_weight / Σ registered cache_weights. In (0, 1].
  double ShareOf(TenantId tenant) const;

  /// Stable counter handles; unknown ids fall back to the default tenant.
  TenantCounters* counters(TenantId tenant) const;

  std::string name(TenantId tenant) const;
  int32_t num_tenants() const;
  /// Current token-bucket balance, after a refill (test observability;
  /// negative = over quota).
  int64_t cpu_balance_ns(TenantId tenant) const;

  const QosOptions& qos() const { return qos_; }

 private:
  struct Tenant {
    TenantQuota quota;
    TenantCounters counters;
    mutable std::mutex mu;       // guards the token bucket
    int64_t balance_ns = 0;      // may run negative (over quota)
    int64_t last_refill_ns = 0;  // steady_clock, ns
  };

  Tenant* Get(TenantId tenant) const;
  int64_t RefillLocked(Tenant& t) const;  // requires t.mu; returns balance

  telemetry::MetricsRegistry* registry_;
  std::unique_ptr<telemetry::MetricsRegistry> owned_registry_;
  const QosOptions qos_;

  mutable std::shared_mutex mu_;  // guards the vector, not the tenants
  std::vector<std::unique_ptr<Tenant>> tenants_;
  double total_weight_ = 0;
};

}  // namespace mdatalog::runtime
