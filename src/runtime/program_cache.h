#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/ast.h"
#include "src/core/grounder.h"
#include "src/util/result.h"
#include "src/wrapper/wrapper.h"

/// \file program_cache.h
/// The compiled-program side of the serving runtime. A wrapper program is
/// fixed while documents stream past, so everything derived from the program
/// alone is compiled exactly once and shared:
///
///  * the Elog validation (PreparedElogProgram);
///  * for Elog⁻ programs (no Δ builtins) the full Corollary 6.4 pipeline —
///    ElogToDatalog → TMNF normalization (Theorem 5.2) → GroundPlan
///    (Theorem 4.2 schedules) — so per-document evaluation is a plan replay
///    in O(|P|·|dom|) with per-worker arena reuse.
///
/// Elog⁻Δ programs (before%/notafter/notbefore — beyond MSO, Theorem 6.6)
/// have no datalog counterpart and keep the native evaluator; the cache
/// still amortizes their validation.

namespace mdatalog::runtime {

/// A wrapper compiled for serving. Immutable after construction; shared
/// (shared_ptr const) between all threads and all documents.
struct CompiledWrapperProgram {
  wrapper::PreparedWrapper prepared;

  /// The Corollary 6.4 pipeline, when available.
  bool has_ground_plan = false;
  core::Program tmnf;  // owns the PredicateTable pattern_preds indexes
  std::optional<core::GroundPlan> ground_plan;
  /// PredId of "pat_<pattern>" in `tmnf` per extraction pattern (parallel to
  /// prepared.extraction_patterns); -1 if the pattern is never derivable.
  std::vector<core::PredId> pattern_preds;

  uint64_t fingerprint = 0;
};

struct ProgramCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int32_t entries = 0;
  /// Programs whose Corollary 6.4 pipeline compiled (vs native-only).
  int64_t ground_plans = 0;
};

/// LRU cache of compiled wrapper programs, keyed by a fingerprint of the
/// program text plus the extraction-pattern list. Capacity is entry-count
/// based: programs are tiny next to documents, the bound only guards against
/// unbounded churn from generated programs.
///
/// Thread safety: all public methods are safe to call concurrently. A
/// compile miss holds the lock — program compilation is rare (once per
/// wrapper deployment) and concurrent duplicate compilation would waste more
/// than it saves.
class ProgramCache {
 public:
  explicit ProgramCache(int32_t capacity);

  util::Result<std::shared_ptr<const CompiledWrapperProgram>> GetOrCompile(
      const wrapper::Wrapper& wrapper);

  ProgramCacheStats stats() const;

  /// The fingerprint GetOrCompile keys on. Exposed for result-memo keys.
  static uint64_t Fingerprint(const wrapper::Wrapper& wrapper);

 private:
  struct Entry {
    uint64_t fingerprint;
    std::shared_ptr<const CompiledWrapperProgram> program;
  };

  const int32_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  ProgramCacheStats stats_;
};

}  // namespace mdatalog::runtime
