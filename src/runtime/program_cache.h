#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/ast.h"
#include "src/core/grounder.h"
#include "src/util/result.h"
#include "src/wrapper/wrapper.h"

/// \file program_cache.h
/// The compiled-program side of the serving runtime. A wrapper program is
/// fixed while documents stream past, so everything derived from the program
/// alone is compiled exactly once and shared:
///
///  * the Elog validation (PreparedElogProgram);
///  * for Elog⁻ programs (no Δ builtins) the full Corollary 6.4 pipeline —
///    ElogToDatalog → TMNF normalization (Theorem 5.2) → GroundPlan
///    (Theorem 4.2 schedules) — so per-document evaluation is a plan replay
///    in O(|P|·|dom|) with per-worker arena reuse.
///
/// Elog⁻Δ programs (before%/notafter/notbefore — beyond MSO, Theorem 6.6)
/// have no datalog counterpart and keep the native evaluator; the cache
/// still amortizes their validation.

namespace mdatalog::runtime {

/// A wrapper compiled for serving. Immutable after construction; shared
/// (shared_ptr const) between all threads and all documents.
struct CompiledWrapperProgram {
  wrapper::PreparedWrapper prepared;

  /// The Corollary 6.4 pipeline, when available.
  bool has_ground_plan = false;
  core::Program tmnf;  // owns the PredicateTable pattern_preds indexes
  std::optional<core::GroundPlan> ground_plan;
  /// PredId of "pat_<pattern>" in `tmnf` per extraction pattern (parallel to
  /// prepared.extraction_patterns); -1 if the pattern is never derivable.
  std::vector<core::PredId> pattern_preds;

  /// Fingerprint of the wrapper text + pattern list, as registered.
  uint64_t fingerprint = 0;
  /// Canonical-key fingerprint (analysis::CanonicalWrapperKey): equal for
  /// every formulation of the same wrapper, so it is the right key for
  /// result memo entries. Equals `fingerprint` when canonical keying is
  /// disabled.
  uint64_t canonical_fingerprint = 0;
};

struct ProgramCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int32_t entries = 0;
  /// Programs whose Corollary 6.4 pipeline compiled (vs native-only).
  int64_t ground_plans = 0;
  /// Hits resolved through the canonical key: the wrapper text was new but
  /// canonically identical to a cached program (reformulated revision).
  /// Counted inside `hits` as well.
  int64_t canonical_key_hits = 0;
};

/// LRU cache of compiled wrapper programs, keyed two ways: by a fingerprint
/// of the program text plus the extraction-pattern list (cheap, exact), and
/// — on a syntactic miss — by the canonical key (analysis::CanonicalKey
/// pipeline: minimize, normalize variables, sort rules), so reformulated but
/// equivalent wrapper revisions share one compiled plan. Capacity is
/// entry-count based: programs are tiny next to documents, the bound only
/// guards against unbounded churn from generated programs.
///
/// Thread safety: all public methods are safe to call concurrently. A
/// compile miss holds the lock — program compilation is rare (once per
/// wrapper deployment) and concurrent duplicate compilation would waste more
/// than it saves.
class ProgramCache {
 public:
  /// `canonical_keys` = false keys strictly on the syntactic fingerprint
  /// (the pre-canonicalization behavior, kept for A/B benchmarking).
  explicit ProgramCache(int32_t capacity, bool canonical_keys = true);

  util::Result<std::shared_ptr<const CompiledWrapperProgram>> GetOrCompile(
      const wrapper::Wrapper& wrapper);

  ProgramCacheStats stats() const;

  /// The syntactic fingerprint GetOrCompile keys on first.
  static uint64_t Fingerprint(const wrapper::Wrapper& wrapper);

 private:
  /// Aliases kept per entry: each new formulation of a cached wrapper adds
  /// its syntactic fingerprint so repeat registrations skip
  /// canonicalization. Bounded — formulations beyond the cap still hit via
  /// the canonical index, they just recompute the canonical key each time.
  static constexpr size_t kMaxAliases = 8;

  struct Entry {
    uint64_t canonical_fp;
    std::vector<uint64_t> syntactic_fps;  // every formulation seen (capped)
    std::shared_ptr<const CompiledWrapperProgram> program;
  };

  const int32_t capacity_;
  const bool canonical_keys_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  std::unordered_map<uint64_t, std::list<Entry>::iterator> canonical_index_;
  ProgramCacheStats stats_;
};

}  // namespace mdatalog::runtime
