#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.h
/// A fixed-size worker pool for the batch executor. Deliberately minimal:
/// FIFO queue, no work stealing, no priorities — wrapper jobs are uniform
/// and embarrassingly parallel (one page each), so fairness and simplicity
/// win over scheduling cleverness.

namespace mdatalog::runtime {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(int32_t num_threads);
  /// Drains the queue (submitted futures must complete), then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job. Runs on some worker thread; never inline. Submitting
  /// after destruction has begun is a caller lifetime bug and aborts
  /// (MD_CHECK) — there is no thread that could ever run the job.
  void Submit(std::function<void()> job);

  int32_t num_threads() const {
    return static_cast<int32_t>(workers_.size());
  }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mdatalog::runtime
