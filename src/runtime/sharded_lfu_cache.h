#pragma once

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/runtime/admission.h"
#include "src/runtime/tenant.h"
#include "src/util/bits.h"

/// \file sharded_lfu_cache.h
/// The one sharded TinyLFU byte-budget cache both serving stores instantiate
/// — ShardedLfuCache<Key, CachedDocument> is the document cache's core and
/// ShardedLfuCache<MemoKey, std::string> is the result memo. Before this
/// template the two were hand-rolled copies of the same ~150 lines
/// (document_cache.cc and the MemoShard block in runtime.cc) that had to be
/// kept in sync by review; now an eviction-policy change is one edit.
///
/// Structure (unchanged from the hand-rolled stores):
///  * N-way sharding by key hash (high 32 bits & mask) — per-shard mutex,
///    LRU list, byte budget and frequency sketch, shared-nothing: a hot key
///    serializes only its own shard;
///  * TinyLFU admission (admission.h): a candidate that would overflow the
///    shard must out-rank its victim in the frequency sketch or it is served
///    uncached — one-hit scan traffic cannot churn the resident set;
///  * byte accounting via a caller-supplied cost function, re-read on every
///    hit and on Recharge (document EDB materializations grow after
///    admission);
///  * values held as shared_ptr<const V>: lookups copy a pointer under the
///    shard mutex, and evicted values stay alive for in-flight readers.
///
/// New with the template: tenant fair share. Every entry is tagged with the
/// tenant that inserted it and each shard keeps per-tenant byte totals. When
/// a TenantRegistry is attached (and CacheOptions::fair_share is on),
/// eviction walks from the LRU tail skipping entries whose tenant holds no
/// more than its guaranteed share of the shard (weight / Σ weights ×
/// shard budget) — so tenant B's cold flood evicts B's own older entries and
/// bounces off tenant A's within-share hot set (fair_share_rejects counts
/// the bounces; the candidate is served uncached, exactly like a TinyLFU
/// reject). The tail walk is capped at kMaxVictimScan entries to bound the
/// critical section; a shard whose whole scannable tail is protected rejects
/// the candidate rather than scanning the full list. Without a registry (or
/// with fair_share off) the victim is always the exact LRU tail — bit-for-
/// bit the pre-template behavior.
///
/// Keys are hashed with keyed SipHash at the call sites (util/hash.h): shard
/// routing, sketch rows and bucket placement must not be predictable once
/// tenants are mutually untrusted — an attacker who can precompute 64-bit
/// collisions offline can skew every key onto one shard, alias its victims'
/// sketch counters, or degrade a bucket chain to linear scans. The cache
/// itself only sees the resulting 64-bit key hash.
///
/// Thread safety: all public methods are safe to call concurrently.

namespace mdatalog::runtime {

/// Cache-tuning knobs shared by every ShardedLfuCache instantiation — one
/// struct so the document cache and the result memo cannot drift apart by
/// review oversight.
struct CacheOptions {
  /// Total byte budget, split evenly across shards; 0 disables caching
  /// (every Lookup misses, every Insert declines).
  int64_t byte_budget = 0;
  /// Shard count, rounded up to a power of two (1 = single mutex).
  int32_t num_shards = 8;
  /// TinyLFU admission (scan resistance). false = plain LRU: every miss is
  /// admitted, evicting from the tail.
  bool tinylfu_admission = true;
  /// Tenant fair-share eviction protection (needs a TenantRegistry attached
  /// to take effect). false = tenants share the budget unprotected.
  bool fair_share = true;
  /// Counters per shard sketch; 0 = auto — ~16× the resident entry count
  /// the shard budget implies at `sketch_entry_bytes` per entry, clamped to
  /// [1024, 1M].
  int32_t sketch_counters = 0;
  /// Expected bytes per entry, used only by the sketch auto-sizing above
  /// (documents run ~64KB, memo entries ~4KB).
  int64_t sketch_entry_bytes = 64 << 10;
};

/// Aggregated over all shards.
struct ShardedCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  /// Candidates denied a slot by TinyLFU (served uncached).
  int64_t admission_rejects = 0;
  /// Candidates denied because every scannable victim was fair-share
  /// protected (served uncached).
  int64_t fair_share_rejects = 0;
  int64_t bytes_in_use = 0;
  int64_t byte_budget = 0;
  int32_t entries = 0;
  int32_t shards = 0;
};

/// One tenant's slice of a cache (aggregated over shards).
struct TenantCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t bytes = 0;
  int64_t fair_share_rejects = 0;
};

template <typename Key, typename Value, typename KeyHasher>
class ShardedLfuCache {
 public:
  using ValuePtr = std::shared_ptr<const Value>;
  /// Byte charge of an entry. Re-read on every hit / Recharge, so it may
  /// grow over the entry's lifetime (document EDB materialization); must be
  /// cheap (O(1)).
  using CostFn = int64_t (*)(const Key& key, const Value& value);

  ShardedLfuCache(const CacheOptions& options, CostFn cost,
                  const TenantRegistry* tenants = nullptr)
      : byte_budget_(options.byte_budget),
        shard_byte_budget_(
            options.byte_budget <= 0
                ? 0
                : std::max<int64_t>(options.byte_budget /
                                        util::RoundUpPow2(options.num_shards),
                                    1)),
        cost_(cost),
        tenants_(tenants),
        fair_share_(options.fair_share && tenants != nullptr) {
    const int32_t n = util::RoundUpPow2(options.num_shards);
    shard_mask_ = static_cast<uint64_t>(n - 1);
    shards_.reserve(n);
    for (int32_t i = 0; i < n; ++i) {
      auto shard = std::make_unique<Shard>();
      if (options.tinylfu_admission && byte_budget_ > 0) {
        int32_t counters = options.sketch_counters;
        if (counters <= 0) {
          const int64_t entry = std::max<int64_t>(options.sketch_entry_bytes, 1);
          counters = static_cast<int32_t>(std::clamp<int64_t>(
              shard_byte_budget_ / entry * 16, 1024, 1 << 20));
        }
        shard->lfu.emplace(counters);
      }
      shards_.push_back(std::move(shard));
    }
  }

  ShardedLfuCache(const ShardedLfuCache&) = delete;
  ShardedLfuCache& operator=(const ShardedLfuCache&) = delete;

  bool enabled() const { return byte_budget_ > 0; }
  int32_t num_shards() const { return static_cast<int32_t>(shards_.size()); }
  int64_t shard_byte_budget() const { return shard_byte_budget_; }

  /// Returns the cached value or null. A hit records the access in the
  /// shard's sketch, bumps the entry to MRU and refreshes its byte charge
  /// (evicting others if the entry grew past budget). A disabled cache
  /// (byte_budget 0) counts the miss and returns null.
  ValuePtr Lookup(const Key& key, uint64_t key_hash,
                  TenantId tenant = kDefaultTenant) {
    Shard& shard = ShardFor(key_hash);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (byte_budget_ <= 0) {
      ++shard.misses;
      ++TenantSlot(shard, tenant).misses;
      return nullptr;
    }
    if (shard.lfu.has_value()) shard.lfu->RecordAccess(key_hash);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      ++shard.hits;
      ++TenantSlot(shard, tenant).hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      RefreshChargeAndEvict(shard, shard.lru.begin());
      return it->second->value;
    }
    ++shard.misses;
    ++TenantSlot(shard, tenant).misses;
    return nullptr;
  }

  struct InsertOutcome {
    ValuePtr value;          ///< what to serve (the raced-in copy on a race)
    bool admitted = false;   ///< a slot was taken (false = served uncached)
    bool raced = false;      ///< another thread inserted this key first
    bool fair_share_rejected = false;
  };

  /// Inserts `value` (prepared outside any shard lock), charging it to
  /// `tenant`. On a concurrent-insert race the already-resident copy wins
  /// and is returned (bumped to MRU); the caller's copy dies with it.
  InsertOutcome Insert(const Key& key, uint64_t key_hash, ValuePtr value,
                       TenantId tenant = kDefaultTenant) {
    if (byte_budget_ <= 0) return InsertOutcome{std::move(value)};
    Shard& shard = ShardFor(key_hash);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (auto it = shard.index.find(key); it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return InsertOutcome{it->second->value, false, true, false};
    }
    const int64_t cost = cost_(key, *value);
    while (shard.bytes_in_use + cost > shard_byte_budget_ &&
           !shard.lru.empty()) {
      auto victim = FindVictim(shard, tenant, shard.lru.end());
      if (victim == shard.lru.end()) {
        // Every scannable victim belongs to a tenant within its share: the
        // candidate is served uncached rather than breaking the guarantee.
        ++shard.fair_share_rejects;
        ++TenantSlot(shard, tenant).fair_share_rejects;
        return InsertOutcome{std::move(value), false, false, true};
      }
      if (shard.lfu.has_value() &&
          !shard.lfu->Admit(key_hash, victim->key_hash)) {
        ++shard.admission_rejects;
        return InsertOutcome{std::move(value)};
      }
      Evict(shard, victim);
    }
    shard.lru.push_front(Entry{key, key_hash, value, cost, tenant});
    shard.index.emplace(key, shard.lru.begin());
    shard.bytes_in_use += cost;
    TenantSlot(shard, tenant).bytes += cost;
    return InsertOutcome{std::move(value), true, false, false};
  }

  /// Re-reads the entry's cost and re-balances its shard. No-op when the key
  /// is absent (evicted or rejected). Does not touch LRU order or hit/miss
  /// stats.
  void Recharge(const Key& key, uint64_t key_hash) {
    if (byte_budget_ <= 0) return;
    Shard& shard = ShardFor(key_hash);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return;
    RefreshChargeAndEvict(shard, it->second);
  }

  ShardedCacheStats stats() const {
    ShardedCacheStats out;
    out.byte_budget = byte_budget_;
    out.shards = num_shards();
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      out.hits += shard->hits;
      out.misses += shard->misses;
      out.evictions += shard->evictions;
      out.admission_rejects += shard->admission_rejects;
      out.fair_share_rejects += shard->fair_share_rejects;
      out.bytes_in_use += shard->bytes_in_use;
      out.entries += static_cast<int32_t>(shard->lru.size());
    }
    return out;
  }

  TenantCacheStats tenant_stats(TenantId tenant) const {
    TenantCacheStats out;
    if (tenant < 0) return out;
    const size_t slot = static_cast<size_t>(tenant);
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      if (slot >= shard->tenant.size()) continue;
      const TenantCacheStats& s = shard->tenant[slot];
      out.hits += s.hits;
      out.misses += s.misses;
      out.bytes += s.bytes;
      out.fair_share_rejects += s.fair_share_rejects;
    }
    return out;
  }

 private:
  struct Entry {
    Key key;
    uint64_t key_hash = 0;  // sketch key (also the shard router input)
    ValuePtr value;
    int64_t charged_bytes = 0;
    TenantId tenant = kDefaultTenant;  // the inserter pays for the bytes
  };
  using EntryIt = typename std::list<Entry>::iterator;
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Key, EntryIt, KeyHasher> index;
    std::optional<TinyLfuAdmission> lfu;
    int64_t bytes_in_use = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t admission_rejects = 0;
    int64_t fair_share_rejects = 0;
    std::vector<TenantCacheStats> tenant;  // indexed by TenantId, on demand
  };

  /// Bound on the LRU-tail walk when fair-share protection skips victims —
  /// keeps the per-eviction critical section O(1), not O(shard).
  static constexpr int kMaxVictimScan = 8;

  Shard& ShardFor(uint64_t key_hash) {
    return *shards_[(key_hash >> 32) & shard_mask_];
  }

  TenantCacheStats& TenantSlot(Shard& shard, TenantId tenant) {
    const size_t slot = tenant < 0 ? 0 : static_cast<size_t>(tenant);
    if (slot >= shard.tenant.size()) shard.tenant.resize(slot + 1);
    return shard.tenant[slot];
  }

  /// Requires shard.mu. True when evicting `e` on behalf of `for_tenant`
  /// would violate e's tenant's guaranteed share. A tenant's own entries are
  /// never protected from it (self-eviction is how a flooding tenant churns
  /// within its share).
  bool Protected(Shard& shard, const Entry& e, TenantId for_tenant) {
    if (!fair_share_ || e.tenant == for_tenant) return false;
    const int64_t guaranteed = static_cast<int64_t>(
        tenants_->ShareOf(e.tenant) * static_cast<double>(shard_byte_budget_));
    return TenantSlot(shard, e.tenant).bytes <= guaranteed;
  }

  /// Requires shard.mu and a non-empty LRU. The evictable entry closest to
  /// the tail, skipping `keep` and fair-share-protected entries; lru.end()
  /// when no victim exists within the scan cap.
  EntryIt FindVictim(Shard& shard, TenantId for_tenant, EntryIt keep) {
    int scanned = 0;
    for (auto it = std::prev(shard.lru.end());; --it) {
      if (it != keep && !Protected(shard, *it, for_tenant)) return it;
      if (it == shard.lru.begin() || ++scanned >= kMaxVictimScan) {
        return shard.lru.end();
      }
    }
  }

  /// Requires shard.mu.
  void Evict(Shard& shard, EntryIt victim) {
    shard.bytes_in_use -= victim->charged_bytes;
    TenantSlot(shard, victim->tenant).bytes -= victim->charged_bytes;
    ++shard.evictions;
    shard.index.erase(victim->key);
    shard.lru.erase(victim);
  }

  /// Requires shard.mu. Re-reads `it`'s cost (it may have grown since
  /// admission) and evicts entries other than `it` until the budget holds —
  /// or until only protected entries remain (a grown resident cannot be
  /// bounced, so the shard runs over budget rather than breaking a share).
  void RefreshChargeAndEvict(Shard& shard, EntryIt it) {
    const int64_t fresh = cost_(it->key, *it->value);
    shard.bytes_in_use += fresh - it->charged_bytes;
    TenantSlot(shard, it->tenant).bytes += fresh - it->charged_bytes;
    it->charged_bytes = fresh;
    while (shard.bytes_in_use > shard_byte_budget_ && shard.lru.size() > 1) {
      auto victim = FindVictim(shard, it->tenant, it);
      if (victim == shard.lru.end()) break;
      Evict(shard, victim);
    }
  }

  const int64_t byte_budget_;        // total, across shards
  const int64_t shard_byte_budget_;  // per shard
  const CostFn cost_;
  const TenantRegistry* const tenants_;  // may be null
  const bool fair_share_;
  uint64_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mdatalog::runtime
