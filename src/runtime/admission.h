#pragma once

#include <cstdint>
#include <vector>

/// \file admission.h
/// TinyLFU cache admission (Einziger, Friedman & Manes, "TinyLFU: A Highly
/// Efficient Cache Admission Policy"). Plain LRU admits every page, so a
/// one-hit crawl of distinct cold pages evicts the hot wrapper working set —
/// exactly the mixed traffic a serving front sees. TinyLFU keeps an
/// approximate access-frequency history in O(1) space and admits a candidate
/// only when it is historically more popular than the LRU victim it would
/// displace.
///
/// Two structures:
///  * FrequencySketch — a count-min sketch of 4-bit counters (4 hash rows)
///    with periodic aging (all counters halved every sample_period accesses),
///    so the history is a sliding window, not an all-time count;
///  * a doorkeeper bloom filter in front of the sketch: the first access to a
///    key only sets doorkeeper bits, so the one-hit-wonder long tail never
///    pollutes the counters.
///
/// Thread safety: none — instances are owned per cache shard and mutated
/// under the shard's mutex (shared-nothing, like the rest of the shard).

namespace mdatalog::runtime {

/// Count-min sketch over 4-bit saturating counters, plus the doorkeeper.
class FrequencySketch {
 public:
  /// `num_counters` is rounded up to a power of two (min 1024). Size it at
  /// ~8-16x the expected number of resident entries; 4 bits saturate at 15,
  /// which is plenty to rank hot against cold.
  explicit FrequencySketch(int32_t num_counters);

  /// Records one access. First sight of a key (since the last aging) only
  /// marks the doorkeeper; repeat sightings bump the counters.
  void RecordAccess(uint64_t key_hash);

  /// Approximate access count of the key within the current window:
  /// min over the 4 rows, plus 1 if the doorkeeper has seen it.
  int32_t EstimateFrequency(uint64_t key_hash) const;

  /// Total accesses recorded since the last aging (test/observability).
  int64_t samples() const { return samples_; }
  int64_t sample_period() const { return sample_period_; }

 private:
  void Age();  // halve every counter, clear the doorkeeper

  bool DoorkeeperContains(uint64_t key_hash) const;
  void DoorkeeperInsert(uint64_t key_hash);

  uint32_t counter_mask_ = 0;     // num_counters - 1 (power of two)
  std::vector<uint64_t> table_;   // 16 4-bit counters per word
  std::vector<uint64_t> door_;    // doorkeeper bloom bits (2 probes)
  int64_t samples_ = 0;
  int64_t sample_period_ = 0;
};

/// The admission decision: candidate vs LRU victim by sketch frequency.
class TinyLfuAdmission {
 public:
  explicit TinyLfuAdmission(int32_t num_counters)
      : sketch_(num_counters) {}

  /// Feed every cache access (hit or miss) so the sketch tracks popularity.
  void RecordAccess(uint64_t key_hash) { sketch_.RecordAccess(key_hash); }

  /// True iff the candidate should displace the victim: strictly more
  /// popular in the sketch window. Ties reject — churn protection: a stream
  /// of equally-cold keys must not rotate the cache.
  bool Admit(uint64_t candidate_hash, uint64_t victim_hash) const {
    return sketch_.EstimateFrequency(candidate_hash) >
           sketch_.EstimateFrequency(victim_hash);
  }

  int32_t EstimateFrequency(uint64_t key_hash) const {
    return sketch_.EstimateFrequency(key_hash);
  }

 private:
  FrequencySketch sketch_;
};

}  // namespace mdatalog::runtime
