#include "src/runtime/runtime.h"

#include <utility>

#include "src/core/eval.h"
#include "src/elog/eval.h"
#include "src/stream/stream_session.h"
#include "src/telemetry/export.h"
#include "src/telemetry/trace.h"
#include "src/tree/serialize.h"
#include "src/util/check.h"

namespace mdatalog::runtime {

WrapperRuntime::WrapperRuntime(const RuntimeOptions& options)
    : options_(options),
      telemetry_(options.telemetry),
      tenants_(&telemetry_.registry(), options.qos),
      programs_(options.program_cache_capacity,
                options.canonical_program_keys),
      documents_([&] {
        DocumentCacheOptions doc_options;
        doc_options.cache = options.document_cache;
        doc_options.corpus_store = options.corpus_store;
        doc_options.tenants = &tenants_;
        return doc_options;
      }()),
      memo_(options.result_memo, &MemoCost, &tenants_),
      pages_wrapped_(
          telemetry_.registry().GetCounter("runtime.pages_wrapped")),
      grounded_evals_(
          telemetry_.registry().GetCounter("runtime.grounded_evals")),
      seminaive_evals_(
          telemetry_.registry().GetCounter("runtime.seminaive_evals")),
      native_evals_(telemetry_.registry().GetCounter("runtime.native_evals")),
      deadline_exceeded_(
          telemetry_.registry().GetCounter("runtime.deadline_exceeded")),
      cancelled_(telemetry_.registry().GetCounter("runtime.cancelled")),
      degraded_(telemetry_.registry().GetCounter("runtime.degraded")),
      stream_sessions_(
          telemetry_.registry().GetCounter("runtime.stream_sessions")),
      stream_sessions_failed_(
          telemetry_.registry().GetCounter("runtime.stream_sessions_failed")),
      pool_(options.num_threads) {
  // Option-listed tenants register before any request, in listed order —
  // deterministic ids 1, 2, … that callers can keep by index.
  for (const TenantQuota& quota : options.tenants) tenants_.Register(quota);
}

WrapperRuntime::~WrapperRuntime() = default;

util::Result<WrapperHandle> WrapperRuntime::Register(
    const wrapper::Wrapper& wrapper, const std::string& project_attr) {
  MD_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledWrapperProgram> program,
                      programs_.GetOrCompile(wrapper));
  return WrapperHandle{std::move(program), project_attr};
}

util::Result<std::string> WrapperRuntime::Wrap(const WrapperHandle& handle,
                                               std::string_view html,
                                               const RequestOptions& request) {
  MD_CHECK(handle.program != nullptr);
  // QoS admission: counts the request, refills the tenant's token bucket and
  // — when over quota — tightens the deadline to the tenant's priority cap.
  // Over quota never rejects; it shrinks the service level.
  const RequestAdmission admission =
      tenants_.Admit(request.tenant, request.deadline);
  if (admission.degraded) degraded_->Add(1);
  const util::EvalControl control(admission.deadline, request.cancel.get());
  // Fast-fail before any work: a request that arrives already past its
  // deadline (queue delay) must not hash or parse anything.
  if (!control.unbounded()) {
    util::Status s = control.Check();
    if (!s.ok()) {
      CountFailure(s, request.tenant);
      return s;
    }
  }
  // A caller-owned trace wins (the caller keeps it, bypassing sampling and
  // the ring); otherwise the telemetry policy decides and the runtime
  // retains the finished trace. The TraceScope makes the trace visible to
  // every layer below (EDB materialization, fixpoint engines, SAT core)
  // via CurrentTrace() without threading a pointer through signatures.
  std::unique_ptr<telemetry::TraceContext> owned =
      request.trace != nullptr ? nullptr : telemetry_.StartTrace("wrap");
  telemetry::TraceContext* trace =
      request.trace != nullptr ? request.trace : owned.get();
  const telemetry::TraceScope scope(trace);
  if (trace != nullptr) {
    trace->set_page_bytes(static_cast<int64_t>(html.size()));
  }

  // CPU metering: clock reads only for metered tenants — the default tenant
  // and unmetered tenants skip both reads entirely.
  const bool metered = tenants_.metered(request.tenant);
  const int64_t eval_start = metered ? telemetry::MonotonicNowNs() : 0;
  util::Result<std::string> xml =
      WrapImpl(handle, html, control, trace, request.tenant);
  if (metered) {
    tenants_.ChargeCpu(request.tenant,
                       telemetry::MonotonicNowNs() - eval_start);
  }
  const util::StatusCode code =
      xml.ok() ? util::StatusCode::kOk : xml.status().code();
  if (owned != nullptr) {
    telemetry_.FinishTrace(std::move(owned), code);
  } else if (trace != nullptr) {
    trace->set_status(code);
    trace->Close();
  }
  return xml;
}

util::Result<std::string> WrapperRuntime::WrapImpl(
    const WrapperHandle& handle, std::string_view html,
    const util::EvalControl& control, telemetry::TraceContext* trace,
    TenantId tenant) {
  // One content hash per request, shared by the memo key and the document
  // cache key — the page bytes are scanned exactly once.
  Hash128 content_hash;
  {
    telemetry::TraceSpan span(trace, "hash");
    content_hash = HashBytes128(html);
  }
  const MemoKey key{handle.program->canonical_fingerprint, content_hash,
                    handle.project_attr};
  const uint64_t memo_hash = MemoKeyHash64(key);
  {
    telemetry::TraceSpan span(trace, "memo.lookup");
    // enabled() guard: a disabled memo books nothing (tag "off"), exactly
    // like the pre-template memo.
    if (memo_.enabled()) {
      if (auto memoized = memo_.Lookup(key, memo_hash, tenant)) {
        span.Tag("hit");
        tenants_.counters(tenant)->memo_hits->Add(1);
        return *memoized;
      }
      span.Tag("miss");
    } else {
      span.Tag("off");
    }
  }

  std::shared_ptr<const CachedDocument> doc;
  {
    telemetry::TraceSpan span(trace, "doc.fetch");
    MD_ASSIGN_OR_RETURN(doc,
                        documents_.GetOrParse(html, handle.project_attr,
                                              content_hash, &span, tenant));
  }
  if (trace != nullptr) trace->set_nodes(doc->tree().size());

  util::Result<std::string> xml =
      Evaluate(*handle.program, *doc,
               control.unbounded() ? nullptr : &control);
  {
    // Honest byte accounting: the evaluation may have materialized EDB
    // relations on the shared TreeDatabase; recharge the shard now rather
    // than waiting for a hit that may never come.
    telemetry::TraceSpan span(trace, "cache.recharge");
    documents_.Recharge(content_hash, handle.project_attr);
  }
  if (!xml.ok()) {
    CountFailure(xml.status(), tenant);
    return xml.status();
  }
  tenants_.counters(tenant)->pages_wrapped->Add(1);
  auto shared = std::make_shared<const std::string>(*std::move(xml));
  if (memo_.enabled()) {
    telemetry::TraceSpan span(trace, "memo.insert");
    memo_.Insert(key, memo_hash, shared, tenant);
  }
  return *shared;
}

util::Result<std::string> WrapperRuntime::Evaluate(
    const CompiledWrapperProgram& program, const CachedDocument& doc,
    const util::EvalControl* control) {
  using EngineMode = RuntimeOptions::EngineMode;
  const bool grounded =
      options_.engine == EngineMode::kGroundedDatalog ||
      (options_.engine == EngineMode::kAuto && program.has_ground_plan);
  const bool seminaive = options_.engine == EngineMode::kSemiNaiveDatalog;
  telemetry::TraceContext* trace = telemetry::CurrentTrace();

  elog::ElogResult matches;
  if (grounded || seminaive) {
    if (!program.has_ground_plan) {
      return util::Status::FailedPrecondition(
          "engine mode requires the datalog pipeline but it did not compile "
          "for this program (Elog⁻Δ builtins?)");
    }
    core::EvalResult eval;
    if (grounded) {
      telemetry::TraceSpan span(trace, "eval.grounded");
      // One arena per worker thread: all clause-arena and solver allocations
      // amortize across the documents this thread serves.
      thread_local core::GroundArena arena;
      core::GroundStats gstats;
      MD_ASSIGN_OR_RETURN(
          eval, core::EvaluateGrounded(*program.ground_plan, doc.tree(),
                                       &arena, span ? &gstats : nullptr,
                                       control));
      if (span) {
        span.Value("clauses", gstats.num_clauses);
        span.Value("rounds", eval.num_iterations());
        span.Value("derived", eval.num_derived());
      }
    } else {
      telemetry::TraceSpan span(trace, "eval.seminaive");
      // The shared, mutex-guarded TreeDatabase: EDB relations materialize on
      // first touch and every later query on this document reuses them.
      core::EvalOptions eval_options;
      eval_options.control = control;
      MD_ASSIGN_OR_RETURN(eval, core::EvaluateSemiNaive(program.tmnf,
                                                        doc.edb(),
                                                        eval_options));
      if (span) {
        span.Value("rounds", eval.num_iterations());
        span.Value("derived", eval.num_derived());
      }
    }
    const auto& patterns = program.prepared.extraction_patterns;
    for (size_t i = 0; i < patterns.size(); ++i) {
      core::PredId pred = program.pattern_preds[i];
      if (pred < 0) continue;  // never derivable: empty extent
      matches.matches[patterns[i]] = eval.Unary(pred);
    }
  } else {
    telemetry::TraceSpan span(trace, "eval.native");
    MD_ASSIGN_OR_RETURN(
        matches, elog::EvaluateElog(program.prepared.program, doc.tree(),
                                    elog::kDefaultMaxDerivations, control));
  }

  std::string xml;
  {
    telemetry::TraceSpan span(trace, "output.build");
    tree::Tree out = wrapper::BuildOutputTree(
        program.prepared.extraction_patterns, matches, doc.tree());
    xml = tree::ToXml(out);
  }

  pages_wrapped_->Add(1);
  (grounded   ? grounded_evals_
   : seminaive ? seminaive_evals_
               : native_evals_)
      ->Add(1);
  return xml;
}

void WrapperRuntime::CountFailure(const util::Status& status,
                                  TenantId tenant) {
  if (status.code() == util::StatusCode::kDeadlineExceeded) {
    deadline_exceeded_->Add(1);
    tenants_.counters(tenant)->deadline_exceeded->Add(1);
  } else if (status.code() == util::StatusCode::kCancelled) {
    cancelled_->Add(1);
    tenants_.counters(tenant)->cancelled->Add(1);
  }
}

util::Result<std::unique_ptr<stream::StreamSession>>
WrapperRuntime::SubmitStream(const Request& request,
                             stream::StreamOptions options) {
  MD_CHECK(request.wrapper.program != nullptr);
  const TenantId tenant = request.options.tenant;
  const RequestAdmission admission =
      tenants_.Admit(tenant, request.options.deadline);
  if (admission.degraded) degraded_->Add(1);
  RequestOptions effective = request.options;
  effective.deadline = admission.deadline;
  const util::EvalControl control(effective.deadline,
                                  effective.cancel.get());
  if (!control.unbounded()) {
    util::Status s = control.Check();
    if (!s.ok()) {
      // A session that cannot even open is still a failed session.
      stream_sessions_failed_->Add(1);
      CountFailure(s, tenant);
      return s;
    }
  }
  // Chain the session's terminal status into the runtime and tenant
  // counters; the user's own on_finish (if any) still fires.
  auto user_on_finish = std::move(options.on_finish);
  options.on_finish = [this, tenant, user_on_finish =
                                         std::move(user_on_finish)](
                          const util::Status& status) {
    if (status.ok()) {
      pages_wrapped_->Add(1);
      tenants_.counters(tenant)->pages_wrapped->Add(1);
      stream_sessions_->Add(1);
    } else {
      stream_sessions_failed_->Add(1);
      CountFailure(status, tenant);
    }
    if (user_on_finish) user_on_finish(status);
  };
  return std::make_unique<stream::StreamSession>(
      request.wrapper.program, request.wrapper.project_attr,
      std::move(options), effective, &telemetry_);
}

std::future<util::Result<std::string>> WrapperRuntime::Submit(
    Request request) {
  // The trace-lifetime contract (RequestOptions::trace) is enforced from
  // here: the count rises before the caller regains control and falls inside
  // the task, strictly before the future becomes ready — so a caller who
  // joins the future may destroy the trace immediately after.
  if (request.options.trace != nullptr) {
    request.options.trace->AddInflightRequest();
  }
  auto task = std::make_shared<
      std::packaged_task<util::Result<std::string>()>>(
      [this, request = std::move(request)] {
        util::Result<std::string> result =
            Wrap(request.wrapper, request.page.bytes(), request.options);
        if (request.options.trace != nullptr) {
          request.options.trace->ReleaseInflightRequest();
        }
        return result;
      });
  std::future<util::Result<std::string>> future = task->get_future();
  pool_.Submit([task = std::move(task)] { (*task)(); });
  return future;
}

std::vector<util::Result<std::string>> WrapperRuntime::SubmitBatch(
    std::vector<Request> requests) {
  std::vector<std::future<util::Result<std::string>>> futures;
  futures.reserve(requests.size());
  for (Request& request : requests) {
    futures.push_back(Submit(std::move(request)));
  }
  std::vector<util::Result<std::string>> results;
  results.reserve(futures.size());
  // Collection in submission order = deterministic merge: result i belongs
  // to requests[i] no matter which worker finished first.
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

std::future<util::Result<std::string>> WrapperRuntime::Submit(
    const WrapperHandle& handle, std::string html,
    const RequestOptions& request) {
  return Submit(Request{PageRef::Copy(std::move(html)), handle, request});
}

std::vector<util::Result<std::string>> WrapperRuntime::RunBatch(
    const WrapperHandle& handle, const std::vector<std::string>& pages,
    const RequestOptions& request) {
  std::vector<Request> requests;
  requests.reserve(pages.size());
  // Borrowed pages, not copies: this function owns `pages` until SubmitBatch
  // joins, so a corpus-sized duplication would buy nothing.
  for (const std::string& page : pages) {
    requests.push_back(Request{PageRef::View(page), handle, request});
  }
  return SubmitBatch(std::move(requests));
}

util::Result<std::unique_ptr<stream::StreamSession>>
WrapperRuntime::SubmitStream(const WrapperHandle& handle,
                             stream::StreamOptions options,
                             const RequestOptions& request) {
  return SubmitStream(Request{PageRef{}, handle, request},
                      std::move(options));
}

uint64_t WrapperRuntime::MemoKeyHash64(const MemoKey& key) {
  // Keyed SipHash over the full key: the memo shares shard-routing /
  // sketch-aliasing concerns with the document cache (document_cache.cc).
  util::SipHasher h;
  h.Update64(key.program_fp);
  h.Update64(key.content_hash.lo);
  h.Update64(key.content_hash.hi);
  h.Update(key.attr);
  return h.Finish();
}

int64_t WrapperRuntime::MemoCost(const MemoKey& key, const std::string& xml) {
  // The XML plus the key's heap string plus a flat allowance for the entry
  // bookkeeping (list node, index slot, shared_ptr control block).
  return static_cast<int64_t>(xml.size() + key.attr.size()) + 128;
}

RuntimeStats WrapperRuntime::stats() const {
  RuntimeStats out;
  out.document_cache = documents_.stats();
  out.program_cache = programs_.stats();
  const ShardedCacheStats memo = memo_.stats();
  out.memo_hits = memo.hits;
  out.memo_misses = memo.misses;
  out.memo_admission_rejects = memo.admission_rejects;
  out.memo_fair_share_rejects = memo.fair_share_rejects;
  out.memo_bytes = memo.bytes_in_use;
  out.pages_wrapped = pages_wrapped_->Value();
  out.grounded_evals = grounded_evals_->Value();
  out.seminaive_evals = seminaive_evals_->Value();
  out.native_evals = native_evals_->Value();
  out.deadline_exceeded = deadline_exceeded_->Value();
  out.cancelled = cancelled_->Value();
  out.degraded = degraded_->Value();
  out.stream_sessions = stream_sessions_->Value();
  out.stream_sessions_failed = stream_sessions_failed_->Value();
  return out;
}

TenantStatsSnapshot WrapperRuntime::tenant_stats(TenantId tenant) const {
  TenantStatsSnapshot out;
  out.name = tenants_.name(tenant);
  const TenantCounters* c = tenants_.counters(tenant);
  out.requests = c->requests->Value();
  out.pages_wrapped = c->pages_wrapped->Value();
  out.memo_hits = c->memo_hits->Value();
  out.deadline_exceeded = c->deadline_exceeded->Value();
  out.cancelled = c->cancelled->Value();
  out.degraded = c->degraded->Value();
  out.cpu_ns = c->cpu_ns->Value();
  out.document_cache = documents_.tenant_stats(tenant);
  out.result_memo = memo_.tenant_stats(tenant);
  return out;
}

telemetry::MetricsSnapshot WrapperRuntime::MetricsWithCacheStats() const {
  telemetry::MetricsSnapshot snap = telemetry_.registry().Snapshot();
  const RuntimeStats s = stats();
  // The caches keep their own sharded counters (their hot paths predate the
  // registry and already scale); exports fold them in so one scrape sees
  // everything. Monotonic series go in as counters, sizes as gauges.
  snap.counters["document_cache.hits"] = s.document_cache.hits;
  snap.counters["document_cache.misses"] = s.document_cache.misses;
  snap.counters["document_cache.evictions"] = s.document_cache.evictions;
  snap.counters["document_cache.admission_rejects"] =
      s.document_cache.admission_rejects;
  snap.counters["document_cache.fair_share_rejects"] =
      s.document_cache.fair_share_rejects;
  snap.counters["document_cache.store_hits"] = s.document_cache.store_hits;
  snap.gauges["document_cache.bytes_in_use"] = s.document_cache.bytes_in_use;
  snap.gauges["document_cache.byte_budget"] = s.document_cache.byte_budget;
  snap.gauges["document_cache.entries"] = s.document_cache.entries;
  snap.counters["program_cache.hits"] = s.program_cache.hits;
  snap.counters["program_cache.misses"] = s.program_cache.misses;
  snap.counters["program_cache.evictions"] = s.program_cache.evictions;
  snap.counters["program_cache.canonical_key_hits"] =
      s.program_cache.canonical_key_hits;
  snap.gauges["program_cache.entries"] = s.program_cache.entries;
  snap.gauges["program_cache.ground_plans"] = s.program_cache.ground_plans;
  snap.counters["result_memo.hits"] = s.memo_hits;
  snap.counters["result_memo.misses"] = s.memo_misses;
  snap.counters["result_memo.admission_rejects"] = s.memo_admission_rejects;
  snap.counters["result_memo.fair_share_rejects"] =
      s.memo_fair_share_rejects;
  snap.gauges["result_memo.bytes"] = s.memo_bytes;
  // Per-tenant cache slices. The tenants' QoS counters (requests, cpu_ns,
  // degraded, …) live in the registry already and arrived with Snapshot().
  for (TenantId id = 0; id < tenants_.num_tenants(); ++id) {
    const std::string prefix = "tenant." + tenants_.name(id) + ".";
    const TenantCacheStats doc = documents_.tenant_stats(id);
    const TenantCacheStats memo = memo_.tenant_stats(id);
    snap.counters[prefix + "document_cache_hits"] = doc.hits;
    snap.counters[prefix + "document_cache_misses"] = doc.misses;
    snap.counters[prefix + "document_cache_fair_share_rejects"] =
        doc.fair_share_rejects;
    snap.gauges[prefix + "document_cache_bytes"] = doc.bytes;
    snap.counters[prefix + "result_memo_hits"] = memo.hits;
    snap.gauges[prefix + "result_memo_bytes"] = memo.bytes;
  }
  return snap;
}

std::string WrapperRuntime::ExportPrometheus() const {
  return telemetry::ToPrometheus(MetricsWithCacheStats());
}

std::string WrapperRuntime::ExportJson() const {
  return telemetry::ToJson(MetricsWithCacheStats(), telemetry_.RecentTraces());
}

}  // namespace mdatalog::runtime
