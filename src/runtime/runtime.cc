#include "src/runtime/runtime.h"

#include <utility>

#include "src/core/eval.h"
#include "src/elog/eval.h"
#include "src/tree/serialize.h"
#include "src/util/check.h"

namespace mdatalog::runtime {

WrapperRuntime::WrapperRuntime(const RuntimeOptions& options)
    : options_(options),
      programs_(options.program_cache_capacity),
      documents_(options.document_cache_bytes),
      pool_(options.num_threads) {}

WrapperRuntime::~WrapperRuntime() = default;

util::Result<WrapperHandle> WrapperRuntime::Register(
    const wrapper::Wrapper& wrapper, const std::string& project_attr) {
  MD_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledWrapperProgram> program,
                      programs_.GetOrCompile(wrapper));
  return WrapperHandle{std::move(program), project_attr};
}

util::Result<std::string> WrapperRuntime::Wrap(const WrapperHandle& handle,
                                               std::string_view html) {
  MD_CHECK(handle.program != nullptr);
  // One content hash per request, shared by the memo key and the document
  // cache key — the page bytes are scanned exactly once.
  const Hash128 content_hash = HashBytes128(html);
  const MemoKey key{handle.program->fingerprint, content_hash,
                    handle.project_attr};
  if (std::shared_ptr<const std::string> memoized = MemoLookup(key)) {
    return *memoized;
  }

  MD_ASSIGN_OR_RETURN(
      std::shared_ptr<const CachedDocument> doc,
      documents_.GetOrParse(html, handle.project_attr, content_hash));
  MD_ASSIGN_OR_RETURN(std::string xml, Evaluate(*handle.program, *doc));
  auto shared = std::make_shared<const std::string>(std::move(xml));
  MemoInsert(key, shared);
  return *shared;
}

util::Result<std::string> WrapperRuntime::Evaluate(
    const CompiledWrapperProgram& program, const CachedDocument& doc) {
  using EngineMode = RuntimeOptions::EngineMode;
  const bool grounded =
      options_.engine == EngineMode::kGroundedDatalog ||
      (options_.engine == EngineMode::kAuto && program.has_ground_plan);
  const bool seminaive = options_.engine == EngineMode::kSemiNaiveDatalog;

  elog::ElogResult matches;
  if (grounded || seminaive) {
    if (!program.has_ground_plan) {
      return util::Status::FailedPrecondition(
          "engine mode requires the datalog pipeline but it did not compile "
          "for this program (Elog⁻Δ builtins?)");
    }
    core::EvalResult eval;
    if (grounded) {
      // One arena per worker thread: all clause-arena and solver allocations
      // amortize across the documents this thread serves.
      thread_local core::GroundArena arena;
      MD_ASSIGN_OR_RETURN(
          eval,
          core::EvaluateGrounded(*program.ground_plan, doc.tree(), &arena));
    } else {
      // The shared, mutex-guarded TreeDatabase: EDB relations materialize on
      // first touch and every later query on this document reuses them.
      MD_ASSIGN_OR_RETURN(eval,
                          core::EvaluateSemiNaive(program.tmnf, doc.edb()));
    }
    const auto& patterns = program.prepared.extraction_patterns;
    for (size_t i = 0; i < patterns.size(); ++i) {
      core::PredId pred = program.pattern_preds[i];
      if (pred < 0) continue;  // never derivable: empty extent
      matches.matches[patterns[i]] = eval.Unary(pred);
    }
  } else {
    MD_ASSIGN_OR_RETURN(matches,
                        elog::EvaluateElog(program.prepared.program,
                                           doc.tree()));
  }

  tree::Tree out = wrapper::BuildOutputTree(
      program.prepared.extraction_patterns, matches, doc.tree());
  std::string xml = tree::ToXml(out);

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++pages_wrapped_;
    ++(grounded   ? grounded_evals_
       : seminaive ? seminaive_evals_
                   : native_evals_);
  }
  return xml;
}

std::future<util::Result<std::string>> WrapperRuntime::Submit(
    const WrapperHandle& handle, std::string html) {
  auto task = std::make_shared<
      std::packaged_task<util::Result<std::string>()>>(
      [this, handle, html = std::move(html)] { return Wrap(handle, html); });
  std::future<util::Result<std::string>> future = task->get_future();
  pool_.Submit([task = std::move(task)] { (*task)(); });
  return future;
}

std::future<util::Result<std::string>> WrapperRuntime::SubmitRef(
    const WrapperHandle& handle, const std::string* page) {
  auto task = std::make_shared<
      std::packaged_task<util::Result<std::string>()>>(
      [this, handle, page] { return Wrap(handle, *page); });
  std::future<util::Result<std::string>> future = task->get_future();
  pool_.Submit([task = std::move(task)] { (*task)(); });
  return future;
}

std::vector<util::Result<std::string>> WrapperRuntime::RunBatch(
    const WrapperHandle& handle, const std::vector<std::string>& pages) {
  std::vector<std::future<util::Result<std::string>>> futures;
  futures.reserve(pages.size());
  // By reference, not Submit's copy: this function owns `pages` until every
  // future is joined below, so a corpus-sized duplication would buy nothing.
  for (const std::string& page : pages) {
    futures.push_back(SubmitRef(handle, &page));
  }
  std::vector<util::Result<std::string>> results;
  results.reserve(pages.size());
  // Collection in submission order = deterministic merge: result i belongs
  // to pages[i] no matter which worker finished first.
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

std::shared_ptr<const std::string> WrapperRuntime::MemoLookup(
    const MemoKey& key) {
  if (options_.result_memo_bytes <= 0) return nullptr;
  std::shared_ptr<const std::string> hit;
  {
    std::lock_guard<std::mutex> lock(memo_mu_);
    auto it = memo_index_.find(key);
    if (it != memo_index_.end()) {
      memo_lru_.splice(memo_lru_.begin(), memo_lru_, it->second);
      hit = it->second->xml;
    }
  }
  std::lock_guard<std::mutex> slock(stats_mu_);
  ++(hit != nullptr ? memo_hits_ : memo_misses_);
  return hit;
}

void WrapperRuntime::MemoInsert(const MemoKey& key,
                                const std::shared_ptr<const std::string>& xml) {
  if (options_.result_memo_bytes <= 0) return;
  auto entry_cost = [](const MemoEntry& e) {
    return static_cast<int64_t>(e.xml->size() + e.key.attr.size()) +
           static_cast<int64_t>(sizeof(MemoEntry)) + 64;
  };
  std::lock_guard<std::mutex> lock(memo_mu_);
  if (memo_index_.contains(key)) return;  // concurrent eval of the same page
  memo_lru_.push_front(MemoEntry{key, xml});
  memo_index_.emplace(key, memo_lru_.begin());
  memo_bytes_ += entry_cost(memo_lru_.front());
  while (memo_bytes_ > options_.result_memo_bytes && memo_lru_.size() > 1) {
    memo_bytes_ -= entry_cost(memo_lru_.back());
    memo_index_.erase(memo_lru_.back().key);
    memo_lru_.pop_back();
  }
}

RuntimeStats WrapperRuntime::stats() const {
  RuntimeStats out;
  out.document_cache = documents_.stats();
  out.program_cache = programs_.stats();
  {
    std::lock_guard<std::mutex> lock(memo_mu_);
    out.memo_bytes = memo_bytes_;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  out.memo_hits = memo_hits_;
  out.memo_misses = memo_misses_;
  out.pages_wrapped = pages_wrapped_;
  out.grounded_evals = grounded_evals_;
  out.seminaive_evals = seminaive_evals_;
  out.native_evals = native_evals_;
  return out;
}

}  // namespace mdatalog::runtime
