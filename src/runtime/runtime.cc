#include "src/runtime/runtime.h"

#include <algorithm>
#include <utility>

#include "src/core/eval.h"
#include "src/elog/eval.h"
#include "src/stream/stream_session.h"
#include "src/tree/serialize.h"
#include "src/util/bits.h"
#include "src/util/check.h"

namespace mdatalog::runtime {

WrapperRuntime::WrapperRuntime(const RuntimeOptions& options)
    : options_(options),
      programs_(options.program_cache_capacity,
                options.canonical_program_keys),
      documents_(DocumentCacheOptions{
          .byte_budget = options.document_cache_bytes,
          .num_shards = options.document_cache_shards,
          .tinylfu_admission = options.cache_admission,
          .corpus_store = options.corpus_store,
      }),
      memo_shard_bytes_(
          options.result_memo_bytes <= 0
              ? 0
              : std::max<int64_t>(
                    options.result_memo_bytes /
                        util::RoundUpPow2(options.result_memo_shards),
                    1)),
      pool_(options.num_threads) {
  const int32_t n = util::RoundUpPow2(options.result_memo_shards);
  memo_shard_mask_ = static_cast<uint64_t>(n - 1);
  memo_shards_.reserve(n);
  for (int32_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<MemoShard>();
    if (options.cache_admission && options.result_memo_bytes > 0) {
      // Memo entries are small (one XML string); size the sketch at ~16x the
      // resident count assuming ~4KB entries.
      shard->lfu.emplace(static_cast<int32_t>(std::clamp<int64_t>(
          memo_shard_bytes_ / (4 << 10) * 16, 1024, 1 << 20)));
    }
    memo_shards_.push_back(std::move(shard));
  }
}

WrapperRuntime::~WrapperRuntime() = default;

util::Result<WrapperHandle> WrapperRuntime::Register(
    const wrapper::Wrapper& wrapper, const std::string& project_attr) {
  MD_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledWrapperProgram> program,
                      programs_.GetOrCompile(wrapper));
  return WrapperHandle{std::move(program), project_attr};
}

util::Result<std::string> WrapperRuntime::Wrap(const WrapperHandle& handle,
                                               std::string_view html,
                                               const RequestOptions& request) {
  MD_CHECK(handle.program != nullptr);
  const util::EvalControl control(request.deadline, request.cancel.get());
  // Fast-fail before any work: a request that arrives already past its
  // deadline (queue delay) must not hash or parse anything.
  if (!control.unbounded()) {
    util::Status s = control.Check();
    if (!s.ok()) {
      CountFailure(s);
      return s;
    }
  }
  // One content hash per request, shared by the memo key and the document
  // cache key — the page bytes are scanned exactly once.
  const Hash128 content_hash = HashBytes128(html);
  const MemoKey key{handle.program->canonical_fingerprint, content_hash,
                    handle.project_attr};
  const uint64_t memo_hash = MemoKeyHash64(key);
  if (std::shared_ptr<const std::string> memoized =
          MemoLookup(key, memo_hash)) {
    return *memoized;
  }

  MD_ASSIGN_OR_RETURN(
      std::shared_ptr<const CachedDocument> doc,
      documents_.GetOrParse(html, handle.project_attr, content_hash));
  util::Result<std::string> xml =
      Evaluate(*handle.program, *doc,
               control.unbounded() ? nullptr : &control);
  // Honest byte accounting: the evaluation may have materialized EDB
  // relations on the shared TreeDatabase; recharge the shard now rather
  // than waiting for a hit that may never come.
  documents_.Recharge(content_hash, handle.project_attr);
  if (!xml.ok()) {
    CountFailure(xml.status());
    return xml.status();
  }
  auto shared = std::make_shared<const std::string>(*std::move(xml));
  MemoInsert(key, memo_hash, shared);
  return *shared;
}

util::Result<std::string> WrapperRuntime::Evaluate(
    const CompiledWrapperProgram& program, const CachedDocument& doc,
    const util::EvalControl* control) {
  using EngineMode = RuntimeOptions::EngineMode;
  const bool grounded =
      options_.engine == EngineMode::kGroundedDatalog ||
      (options_.engine == EngineMode::kAuto && program.has_ground_plan);
  const bool seminaive = options_.engine == EngineMode::kSemiNaiveDatalog;

  elog::ElogResult matches;
  if (grounded || seminaive) {
    if (!program.has_ground_plan) {
      return util::Status::FailedPrecondition(
          "engine mode requires the datalog pipeline but it did not compile "
          "for this program (Elog⁻Δ builtins?)");
    }
    core::EvalResult eval;
    if (grounded) {
      // One arena per worker thread: all clause-arena and solver allocations
      // amortize across the documents this thread serves.
      thread_local core::GroundArena arena;
      MD_ASSIGN_OR_RETURN(
          eval, core::EvaluateGrounded(*program.ground_plan, doc.tree(),
                                       &arena, /*stats=*/nullptr, control));
    } else {
      // The shared, mutex-guarded TreeDatabase: EDB relations materialize on
      // first touch and every later query on this document reuses them.
      core::EvalOptions eval_options;
      eval_options.control = control;
      MD_ASSIGN_OR_RETURN(eval, core::EvaluateSemiNaive(program.tmnf,
                                                        doc.edb(),
                                                        eval_options));
    }
    const auto& patterns = program.prepared.extraction_patterns;
    for (size_t i = 0; i < patterns.size(); ++i) {
      core::PredId pred = program.pattern_preds[i];
      if (pred < 0) continue;  // never derivable: empty extent
      matches.matches[patterns[i]] = eval.Unary(pred);
    }
  } else {
    MD_ASSIGN_OR_RETURN(
        matches, elog::EvaluateElog(program.prepared.program, doc.tree(),
                                    elog::kDefaultMaxDerivations, control));
  }

  tree::Tree out = wrapper::BuildOutputTree(
      program.prepared.extraction_patterns, matches, doc.tree());
  std::string xml = tree::ToXml(out);

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++pages_wrapped_;
    ++(grounded   ? grounded_evals_
       : seminaive ? seminaive_evals_
                   : native_evals_);
  }
  return xml;
}

void WrapperRuntime::CountFailure(const util::Status& status) {
  if (status.code() != util::StatusCode::kDeadlineExceeded &&
      status.code() != util::StatusCode::kCancelled) {
    return;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (status.code() == util::StatusCode::kDeadlineExceeded) {
    ++deadline_exceeded_;
  } else {
    ++cancelled_;
  }
}

util::Result<std::unique_ptr<stream::StreamSession>>
WrapperRuntime::SubmitStream(const WrapperHandle& handle,
                             stream::StreamOptions options,
                             const RequestOptions& request) {
  MD_CHECK(handle.program != nullptr);
  const util::EvalControl control(request.deadline, request.cancel.get());
  if (!control.unbounded()) {
    util::Status s = control.Check();
    if (!s.ok()) {
      CountFailure(s);
      return s;
    }
  }
  // Chain the session's terminal status into the runtime counters; the
  // user's own on_finish (if any) still fires.
  auto user_on_finish = std::move(options.on_finish);
  options.on_finish = [this, user_on_finish =
                                 std::move(user_on_finish)](
                          const util::Status& status) {
    if (status.ok()) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++pages_wrapped_;
      ++stream_sessions_;
    } else {
      CountFailure(status);
    }
    if (user_on_finish) user_on_finish(status);
  };
  return std::make_unique<stream::StreamSession>(
      handle.program, handle.project_attr, std::move(options), request);
}

std::future<util::Result<std::string>> WrapperRuntime::Submit(
    const WrapperHandle& handle, std::string html,
    const RequestOptions& request) {
  auto task = std::make_shared<
      std::packaged_task<util::Result<std::string>()>>(
      [this, handle, html = std::move(html), request] {
        return Wrap(handle, html, request);
      });
  std::future<util::Result<std::string>> future = task->get_future();
  pool_.Submit([task = std::move(task)] { (*task)(); });
  return future;
}

std::future<util::Result<std::string>> WrapperRuntime::SubmitRef(
    const WrapperHandle& handle, const std::string* page,
    const RequestOptions& request) {
  auto task = std::make_shared<
      std::packaged_task<util::Result<std::string>()>>(
      [this, handle, page, request] { return Wrap(handle, *page, request); });
  std::future<util::Result<std::string>> future = task->get_future();
  pool_.Submit([task = std::move(task)] { (*task)(); });
  return future;
}

std::vector<util::Result<std::string>> WrapperRuntime::RunBatch(
    const WrapperHandle& handle, const std::vector<std::string>& pages,
    const RequestOptions& request) {
  std::vector<std::future<util::Result<std::string>>> futures;
  futures.reserve(pages.size());
  // By reference, not Submit's copy: this function owns `pages` until every
  // future is joined below, so a corpus-sized duplication would buy nothing.
  for (const std::string& page : pages) {
    futures.push_back(SubmitRef(handle, &page, request));
  }
  std::vector<util::Result<std::string>> results;
  results.reserve(pages.size());
  // Collection in submission order = deterministic merge: result i belongs
  // to pages[i] no matter which worker finished first.
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

uint64_t WrapperRuntime::MemoKeyHash64(const MemoKey& key) {
  uint64_t h = key.program_fp * 1099511628211ULL ^ key.content_hash.lo ^
               key.content_hash.hi;
  if (!key.attr.empty()) h ^= HashBytes(key.attr);
  return util::Mix64(h);
}

std::shared_ptr<const std::string> WrapperRuntime::MemoLookup(
    const MemoKey& key, uint64_t key_hash) {
  if (options_.result_memo_bytes <= 0) return nullptr;
  MemoShard& shard = MemoShardFor(key_hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.lfu.has_value()) shard.lfu->RecordAccess(key_hash);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    ++shard.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->xml;
  }
  ++shard.misses;
  return nullptr;
}

void WrapperRuntime::MemoInsert(const MemoKey& key, uint64_t key_hash,
                                const std::shared_ptr<const std::string>& xml) {
  if (options_.result_memo_bytes <= 0) return;
  auto entry_cost = [](const MemoEntry& e) {
    return static_cast<int64_t>(e.xml->size() + e.key.attr.size()) +
           static_cast<int64_t>(sizeof(MemoEntry)) + 64;
  };
  MemoShard& shard = MemoShardFor(key_hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.index.contains(key)) return;  // concurrent eval of the same page
  const int64_t cost = static_cast<int64_t>(xml->size() + key.attr.size()) +
                       static_cast<int64_t>(sizeof(MemoEntry)) + 64;
  if (shard.lfu.has_value()) {
    // TinyLFU admission, as in the document cache: one-hit results must not
    // churn the hot memo working set.
    while (shard.bytes + cost > memo_shard_bytes_ && !shard.lru.empty()) {
      if (!shard.lfu->Admit(key_hash, shard.lru.back().key_hash)) {
        ++shard.admission_rejects;
        return;
      }
      shard.bytes -= entry_cost(shard.lru.back());
      shard.index.erase(shard.lru.back().key);
      shard.lru.pop_back();
    }
  }
  shard.lru.push_front(MemoEntry{key, key_hash, xml});
  shard.index.emplace(key, shard.lru.begin());
  shard.bytes += cost;
  while (shard.bytes > memo_shard_bytes_ && shard.lru.size() > 1) {
    shard.bytes -= entry_cost(shard.lru.back());
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
  }
}

RuntimeStats WrapperRuntime::stats() const {
  RuntimeStats out;
  out.document_cache = documents_.stats();
  out.program_cache = programs_.stats();
  for (const auto& shard : memo_shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.memo_hits += shard->hits;
    out.memo_misses += shard->misses;
    out.memo_admission_rejects += shard->admission_rejects;
    out.memo_bytes += shard->bytes;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  out.pages_wrapped = pages_wrapped_;
  out.grounded_evals = grounded_evals_;
  out.seminaive_evals = seminaive_evals_;
  out.native_evals = native_evals_;
  out.deadline_exceeded = deadline_exceeded_;
  out.cancelled = cancelled_;
  out.stream_sessions = stream_sessions_;
  return out;
}

}  // namespace mdatalog::runtime
