#include "src/runtime/runtime.h"

#include <algorithm>
#include <utility>

#include "src/core/eval.h"
#include "src/elog/eval.h"
#include "src/stream/stream_session.h"
#include "src/telemetry/export.h"
#include "src/telemetry/trace.h"
#include "src/tree/serialize.h"
#include "src/util/bits.h"
#include "src/util/check.h"

namespace mdatalog::runtime {

WrapperRuntime::WrapperRuntime(const RuntimeOptions& options)
    : options_(options),
      telemetry_(options.telemetry),
      programs_(options.program_cache_capacity,
                options.canonical_program_keys),
      documents_(DocumentCacheOptions{
          .byte_budget = options.document_cache_bytes,
          .num_shards = options.document_cache_shards,
          .tinylfu_admission = options.cache_admission,
          .corpus_store = options.corpus_store,
      }),
      memo_shard_bytes_(
          options.result_memo_bytes <= 0
              ? 0
              : std::max<int64_t>(
                    options.result_memo_bytes /
                        util::RoundUpPow2(options.result_memo_shards),
                    1)),
      pages_wrapped_(
          telemetry_.registry().GetCounter("runtime.pages_wrapped")),
      grounded_evals_(
          telemetry_.registry().GetCounter("runtime.grounded_evals")),
      seminaive_evals_(
          telemetry_.registry().GetCounter("runtime.seminaive_evals")),
      native_evals_(telemetry_.registry().GetCounter("runtime.native_evals")),
      deadline_exceeded_(
          telemetry_.registry().GetCounter("runtime.deadline_exceeded")),
      cancelled_(telemetry_.registry().GetCounter("runtime.cancelled")),
      stream_sessions_(
          telemetry_.registry().GetCounter("runtime.stream_sessions")),
      stream_sessions_failed_(
          telemetry_.registry().GetCounter("runtime.stream_sessions_failed")),
      pool_(options.num_threads) {
  const int32_t n = util::RoundUpPow2(options.result_memo_shards);
  memo_shard_mask_ = static_cast<uint64_t>(n - 1);
  memo_shards_.reserve(n);
  for (int32_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<MemoShard>();
    if (options.cache_admission && options.result_memo_bytes > 0) {
      // Memo entries are small (one XML string); size the sketch at ~16x the
      // resident count assuming ~4KB entries.
      shard->lfu.emplace(static_cast<int32_t>(std::clamp<int64_t>(
          memo_shard_bytes_ / (4 << 10) * 16, 1024, 1 << 20)));
    }
    memo_shards_.push_back(std::move(shard));
  }
}

WrapperRuntime::~WrapperRuntime() = default;

util::Result<WrapperHandle> WrapperRuntime::Register(
    const wrapper::Wrapper& wrapper, const std::string& project_attr) {
  MD_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledWrapperProgram> program,
                      programs_.GetOrCompile(wrapper));
  return WrapperHandle{std::move(program), project_attr};
}

util::Result<std::string> WrapperRuntime::Wrap(const WrapperHandle& handle,
                                               std::string_view html,
                                               const RequestOptions& request) {
  MD_CHECK(handle.program != nullptr);
  const util::EvalControl control(request.deadline, request.cancel.get());
  // Fast-fail before any work: a request that arrives already past its
  // deadline (queue delay) must not hash or parse anything.
  if (!control.unbounded()) {
    util::Status s = control.Check();
    if (!s.ok()) {
      CountFailure(s);
      return s;
    }
  }
  // A caller-owned trace wins (the caller keeps it, bypassing sampling and
  // the ring); otherwise the telemetry policy decides and the runtime
  // retains the finished trace. The TraceScope makes the trace visible to
  // every layer below (EDB materialization, fixpoint engines, SAT core)
  // via CurrentTrace() without threading a pointer through signatures.
  std::unique_ptr<telemetry::TraceContext> owned =
      request.trace != nullptr ? nullptr : telemetry_.StartTrace("wrap");
  telemetry::TraceContext* trace =
      request.trace != nullptr ? request.trace : owned.get();
  const telemetry::TraceScope scope(trace);
  if (trace != nullptr) {
    trace->set_page_bytes(static_cast<int64_t>(html.size()));
  }

  util::Result<std::string> xml = WrapImpl(handle, html, control, trace);
  const util::StatusCode code =
      xml.ok() ? util::StatusCode::kOk : xml.status().code();
  if (owned != nullptr) {
    telemetry_.FinishTrace(std::move(owned), code);
  } else if (trace != nullptr) {
    trace->set_status(code);
    trace->Close();
  }
  return xml;
}

util::Result<std::string> WrapperRuntime::WrapImpl(
    const WrapperHandle& handle, std::string_view html,
    const util::EvalControl& control, telemetry::TraceContext* trace) {
  // One content hash per request, shared by the memo key and the document
  // cache key — the page bytes are scanned exactly once.
  Hash128 content_hash;
  {
    telemetry::TraceSpan span(trace, "hash");
    content_hash = HashBytes128(html);
  }
  const MemoKey key{handle.program->canonical_fingerprint, content_hash,
                    handle.project_attr};
  const uint64_t memo_hash = MemoKeyHash64(key);
  {
    telemetry::TraceSpan span(trace, "memo.lookup");
    if (std::shared_ptr<const std::string> memoized =
            MemoLookup(key, memo_hash)) {
      span.Tag("hit");
      return *memoized;
    }
    span.Tag(options_.result_memo_bytes > 0 ? "miss" : "off");
  }

  std::shared_ptr<const CachedDocument> doc;
  {
    telemetry::TraceSpan span(trace, "doc.fetch");
    MD_ASSIGN_OR_RETURN(doc,
                        documents_.GetOrParse(html, handle.project_attr,
                                              content_hash, &span));
  }
  if (trace != nullptr) trace->set_nodes(doc->tree().size());

  util::Result<std::string> xml =
      Evaluate(*handle.program, *doc,
               control.unbounded() ? nullptr : &control);
  {
    // Honest byte accounting: the evaluation may have materialized EDB
    // relations on the shared TreeDatabase; recharge the shard now rather
    // than waiting for a hit that may never come.
    telemetry::TraceSpan span(trace, "cache.recharge");
    documents_.Recharge(content_hash, handle.project_attr);
  }
  if (!xml.ok()) {
    CountFailure(xml.status());
    return xml.status();
  }
  auto shared = std::make_shared<const std::string>(*std::move(xml));
  {
    telemetry::TraceSpan span(trace, "memo.insert");
    MemoInsert(key, memo_hash, shared);
  }
  return *shared;
}

util::Result<std::string> WrapperRuntime::Evaluate(
    const CompiledWrapperProgram& program, const CachedDocument& doc,
    const util::EvalControl* control) {
  using EngineMode = RuntimeOptions::EngineMode;
  const bool grounded =
      options_.engine == EngineMode::kGroundedDatalog ||
      (options_.engine == EngineMode::kAuto && program.has_ground_plan);
  const bool seminaive = options_.engine == EngineMode::kSemiNaiveDatalog;
  telemetry::TraceContext* trace = telemetry::CurrentTrace();

  elog::ElogResult matches;
  if (grounded || seminaive) {
    if (!program.has_ground_plan) {
      return util::Status::FailedPrecondition(
          "engine mode requires the datalog pipeline but it did not compile "
          "for this program (Elog⁻Δ builtins?)");
    }
    core::EvalResult eval;
    if (grounded) {
      telemetry::TraceSpan span(trace, "eval.grounded");
      // One arena per worker thread: all clause-arena and solver allocations
      // amortize across the documents this thread serves.
      thread_local core::GroundArena arena;
      core::GroundStats gstats;
      MD_ASSIGN_OR_RETURN(
          eval, core::EvaluateGrounded(*program.ground_plan, doc.tree(),
                                       &arena, span ? &gstats : nullptr,
                                       control));
      if (span) {
        span.Value("clauses", gstats.num_clauses);
        span.Value("rounds", eval.num_iterations());
        span.Value("derived", eval.num_derived());
      }
    } else {
      telemetry::TraceSpan span(trace, "eval.seminaive");
      // The shared, mutex-guarded TreeDatabase: EDB relations materialize on
      // first touch and every later query on this document reuses them.
      core::EvalOptions eval_options;
      eval_options.control = control;
      MD_ASSIGN_OR_RETURN(eval, core::EvaluateSemiNaive(program.tmnf,
                                                        doc.edb(),
                                                        eval_options));
      if (span) {
        span.Value("rounds", eval.num_iterations());
        span.Value("derived", eval.num_derived());
      }
    }
    const auto& patterns = program.prepared.extraction_patterns;
    for (size_t i = 0; i < patterns.size(); ++i) {
      core::PredId pred = program.pattern_preds[i];
      if (pred < 0) continue;  // never derivable: empty extent
      matches.matches[patterns[i]] = eval.Unary(pred);
    }
  } else {
    telemetry::TraceSpan span(trace, "eval.native");
    MD_ASSIGN_OR_RETURN(
        matches, elog::EvaluateElog(program.prepared.program, doc.tree(),
                                    elog::kDefaultMaxDerivations, control));
  }

  std::string xml;
  {
    telemetry::TraceSpan span(trace, "output.build");
    tree::Tree out = wrapper::BuildOutputTree(
        program.prepared.extraction_patterns, matches, doc.tree());
    xml = tree::ToXml(out);
  }

  pages_wrapped_->Add(1);
  (grounded   ? grounded_evals_
   : seminaive ? seminaive_evals_
               : native_evals_)
      ->Add(1);
  return xml;
}

void WrapperRuntime::CountFailure(const util::Status& status) {
  if (status.code() == util::StatusCode::kDeadlineExceeded) {
    deadline_exceeded_->Add(1);
  } else if (status.code() == util::StatusCode::kCancelled) {
    cancelled_->Add(1);
  }
}

util::Result<std::unique_ptr<stream::StreamSession>>
WrapperRuntime::SubmitStream(const WrapperHandle& handle,
                             stream::StreamOptions options,
                             const RequestOptions& request) {
  MD_CHECK(handle.program != nullptr);
  const util::EvalControl control(request.deadline, request.cancel.get());
  if (!control.unbounded()) {
    util::Status s = control.Check();
    if (!s.ok()) {
      // A session that cannot even open is still a failed session.
      stream_sessions_failed_->Add(1);
      CountFailure(s);
      return s;
    }
  }
  // Chain the session's terminal status into the runtime counters; the
  // user's own on_finish (if any) still fires.
  auto user_on_finish = std::move(options.on_finish);
  options.on_finish = [this, user_on_finish =
                                 std::move(user_on_finish)](
                          const util::Status& status) {
    if (status.ok()) {
      pages_wrapped_->Add(1);
      stream_sessions_->Add(1);
    } else {
      stream_sessions_failed_->Add(1);
      CountFailure(status);
    }
    if (user_on_finish) user_on_finish(status);
  };
  return std::make_unique<stream::StreamSession>(
      handle.program, handle.project_attr, std::move(options), request,
      &telemetry_);
}

std::future<util::Result<std::string>> WrapperRuntime::Submit(
    const WrapperHandle& handle, std::string html,
    const RequestOptions& request) {
  auto task = std::make_shared<
      std::packaged_task<util::Result<std::string>()>>(
      [this, handle, html = std::move(html), request] {
        return Wrap(handle, html, request);
      });
  std::future<util::Result<std::string>> future = task->get_future();
  pool_.Submit([task = std::move(task)] { (*task)(); });
  return future;
}

std::future<util::Result<std::string>> WrapperRuntime::SubmitRef(
    const WrapperHandle& handle, const std::string* page,
    const RequestOptions& request) {
  auto task = std::make_shared<
      std::packaged_task<util::Result<std::string>()>>(
      [this, handle, page, request] { return Wrap(handle, *page, request); });
  std::future<util::Result<std::string>> future = task->get_future();
  pool_.Submit([task = std::move(task)] { (*task)(); });
  return future;
}

std::vector<util::Result<std::string>> WrapperRuntime::RunBatch(
    const WrapperHandle& handle, const std::vector<std::string>& pages,
    const RequestOptions& request) {
  std::vector<std::future<util::Result<std::string>>> futures;
  futures.reserve(pages.size());
  // By reference, not Submit's copy: this function owns `pages` until every
  // future is joined below, so a corpus-sized duplication would buy nothing.
  for (const std::string& page : pages) {
    futures.push_back(SubmitRef(handle, &page, request));
  }
  std::vector<util::Result<std::string>> results;
  results.reserve(pages.size());
  // Collection in submission order = deterministic merge: result i belongs
  // to pages[i] no matter which worker finished first.
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

uint64_t WrapperRuntime::MemoKeyHash64(const MemoKey& key) {
  uint64_t h = key.program_fp * 1099511628211ULL ^ key.content_hash.lo ^
               key.content_hash.hi;
  if (!key.attr.empty()) h ^= HashBytes(key.attr);
  return util::Mix64(h);
}

std::shared_ptr<const std::string> WrapperRuntime::MemoLookup(
    const MemoKey& key, uint64_t key_hash) {
  if (options_.result_memo_bytes <= 0) return nullptr;
  MemoShard& shard = MemoShardFor(key_hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.lfu.has_value()) shard.lfu->RecordAccess(key_hash);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    ++shard.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->xml;
  }
  ++shard.misses;
  return nullptr;
}

void WrapperRuntime::MemoInsert(const MemoKey& key, uint64_t key_hash,
                                const std::shared_ptr<const std::string>& xml) {
  if (options_.result_memo_bytes <= 0) return;
  auto entry_cost = [](const MemoEntry& e) {
    return static_cast<int64_t>(e.xml->size() + e.key.attr.size()) +
           static_cast<int64_t>(sizeof(MemoEntry)) + 64;
  };
  MemoShard& shard = MemoShardFor(key_hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.index.contains(key)) return;  // concurrent eval of the same page
  const int64_t cost = static_cast<int64_t>(xml->size() + key.attr.size()) +
                       static_cast<int64_t>(sizeof(MemoEntry)) + 64;
  if (shard.lfu.has_value()) {
    // TinyLFU admission, as in the document cache: one-hit results must not
    // churn the hot memo working set.
    while (shard.bytes + cost > memo_shard_bytes_ && !shard.lru.empty()) {
      if (!shard.lfu->Admit(key_hash, shard.lru.back().key_hash)) {
        ++shard.admission_rejects;
        return;
      }
      shard.bytes -= entry_cost(shard.lru.back());
      shard.index.erase(shard.lru.back().key);
      shard.lru.pop_back();
    }
  }
  shard.lru.push_front(MemoEntry{key, key_hash, xml});
  shard.index.emplace(key, shard.lru.begin());
  shard.bytes += cost;
  while (shard.bytes > memo_shard_bytes_ && shard.lru.size() > 1) {
    shard.bytes -= entry_cost(shard.lru.back());
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
  }
}

RuntimeStats WrapperRuntime::stats() const {
  RuntimeStats out;
  out.document_cache = documents_.stats();
  out.program_cache = programs_.stats();
  for (const auto& shard : memo_shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.memo_hits += shard->hits;
    out.memo_misses += shard->misses;
    out.memo_admission_rejects += shard->admission_rejects;
    out.memo_bytes += shard->bytes;
  }
  out.pages_wrapped = pages_wrapped_->Value();
  out.grounded_evals = grounded_evals_->Value();
  out.seminaive_evals = seminaive_evals_->Value();
  out.native_evals = native_evals_->Value();
  out.deadline_exceeded = deadline_exceeded_->Value();
  out.cancelled = cancelled_->Value();
  out.stream_sessions = stream_sessions_->Value();
  out.stream_sessions_failed = stream_sessions_failed_->Value();
  return out;
}

telemetry::MetricsSnapshot WrapperRuntime::MetricsWithCacheStats() const {
  telemetry::MetricsSnapshot snap = telemetry_.registry().Snapshot();
  const RuntimeStats s = stats();
  // The caches keep their own sharded counters (their hot paths predate the
  // registry and already scale); exports fold them in so one scrape sees
  // everything. Monotonic series go in as counters, sizes as gauges.
  snap.counters["document_cache.hits"] = s.document_cache.hits;
  snap.counters["document_cache.misses"] = s.document_cache.misses;
  snap.counters["document_cache.evictions"] = s.document_cache.evictions;
  snap.counters["document_cache.admission_rejects"] =
      s.document_cache.admission_rejects;
  snap.counters["document_cache.store_hits"] = s.document_cache.store_hits;
  snap.gauges["document_cache.bytes_in_use"] = s.document_cache.bytes_in_use;
  snap.gauges["document_cache.byte_budget"] = s.document_cache.byte_budget;
  snap.gauges["document_cache.entries"] = s.document_cache.entries;
  snap.counters["program_cache.hits"] = s.program_cache.hits;
  snap.counters["program_cache.misses"] = s.program_cache.misses;
  snap.counters["program_cache.evictions"] = s.program_cache.evictions;
  snap.counters["program_cache.canonical_key_hits"] =
      s.program_cache.canonical_key_hits;
  snap.gauges["program_cache.entries"] = s.program_cache.entries;
  snap.gauges["program_cache.ground_plans"] = s.program_cache.ground_plans;
  snap.counters["result_memo.hits"] = s.memo_hits;
  snap.counters["result_memo.misses"] = s.memo_misses;
  snap.counters["result_memo.admission_rejects"] = s.memo_admission_rejects;
  snap.gauges["result_memo.bytes"] = s.memo_bytes;
  return snap;
}

std::string WrapperRuntime::ExportPrometheus() const {
  return telemetry::ToPrometheus(MetricsWithCacheStats());
}

std::string WrapperRuntime::ExportJson() const {
  return telemetry::ToJson(MetricsWithCacheStats(), telemetry_.RecentTraces());
}

}  // namespace mdatalog::runtime
