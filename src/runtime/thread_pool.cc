#include "src/runtime/thread_pool.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"

namespace mdatalog::runtime {

ThreadPool::ThreadPool(int32_t num_threads) {
  num_threads = std::max(num_threads, 1);
  workers_.reserve(num_threads);
  for (int32_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MD_CHECK(!stopping_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain remaining jobs even when stopping: submitted futures must
      // complete or their waiters would hang.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace mdatalog::runtime
