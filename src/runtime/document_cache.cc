#include "src/runtime/document_cache.h"

#include <algorithm>
#include <utility>

#include "src/util/bits.h"
#include "src/util/check.h"

namespace mdatalog::runtime {

util::Result<std::shared_ptr<const CachedDocument>> CachedDocument::Parse(
    std::string_view html, const std::string& project_attr) {
  MD_ASSIGN_OR_RETURN(html::Document doc, html::ParseHtml(html));
  // Not make_shared: the constructor is private, and the TreeDatabase must
  // be emplaced only once the trees sit at their final heap address.
  std::shared_ptr<CachedDocument> cached(
      new CachedDocument(std::move(doc)));
  if (!project_attr.empty()) {
    cached->tree_ =
        html::ProjectAttributeIntoLabels(*cached->doc_, project_attr);
  }
  cached->edb_.emplace(cached->tree());
  cached->static_bytes_ = static_cast<int64_t>(sizeof(CachedDocument)) +
                          cached->doc_->tree().ApproxBytes();
  if (cached->tree_.has_value()) {
    cached->static_bytes_ += cached->tree_->ApproxBytes();
  }
  return std::shared_ptr<const CachedDocument>(std::move(cached));
}

std::shared_ptr<const CachedDocument> CachedDocument::FromFrozen(
    const store::FrozenDocument& frozen,
    std::shared_ptr<const store::CorpusStore> store) {
  std::shared_ptr<CachedDocument> cached(new CachedDocument());
  cached->store_ = std::move(store);
  cached->frozen_edb_ = frozen.edb;
  cached->tree_ = frozen.MakeTree();  // zero-copy columns into the mapping
  // frozen_edb_ sits at its final address now; the database borrows it.
  cached->edb_.emplace(*cached->tree_, &cached->frozen_edb_);
  // Only owned heap is charged — the mapped pages are shared with every
  // other consumer of the store and reclaimable by the kernel.
  cached->static_bytes_ = static_cast<int64_t>(sizeof(CachedDocument)) +
                          cached->tree_->ApproxBytes();
  return std::shared_ptr<const CachedDocument>(std::move(cached));
}

uint64_t DocumentCache::KeyHash64(const Hash128& content_hash,
                                  const std::string& attr) {
  // Both 128-bit halves plus the projection attribute: entries that differ
  // only in projection must shard/sketch independently.
  uint64_t h = content_hash.lo * 1099511628211ULL ^ content_hash.hi;
  if (!attr.empty()) h ^= HashBytes(attr);
  return util::Mix64(h);
}

DocumentCache::DocumentCache(const DocumentCacheOptions& options)
    : byte_budget_(options.byte_budget),
      shard_byte_budget_(
          options.byte_budget <= 0
              ? 0
              : std::max<int64_t>(options.byte_budget /
                                      util::RoundUpPow2(options.num_shards),
                                  1)),
      corpus_store_(options.corpus_store) {
  const int32_t n = util::RoundUpPow2(options.num_shards);
  shard_mask_ = static_cast<uint64_t>(n - 1);
  shards_.reserve(n);
  for (int32_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    if (options.tinylfu_admission) {
      int32_t counters = options.sketch_counters;
      if (counters <= 0) {
        // ~8-16x the expected resident entries; documents run ~64KB.
        counters = static_cast<int32_t>(std::clamp<int64_t>(
            shard_byte_budget_ / (64 << 10) * 16, 1024, 1 << 20));
      }
      shard->lfu.emplace(counters);
    }
    shards_.push_back(std::move(shard));
  }
}

util::Result<std::shared_ptr<const CachedDocument>> DocumentCache::GetOrParse(
    std::string_view html, const std::string& project_attr) {
  return GetOrParse(html, project_attr, HashBytes128(html));
}

util::Result<std::shared_ptr<const CachedDocument>> DocumentCache::GetOrParse(
    std::string_view html, const std::string& project_attr,
    const Hash128& content_hash, telemetry::TraceSpan* span) {
  Key key{content_hash, project_attr};
  const uint64_t key_hash = KeyHash64(content_hash, project_attr);
  Shard& shard = ShardFor(key_hash);

  if (byte_budget_ <= 0) {
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.misses;
    // fall through to an uncached parse below (outside the lock)
  } else {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.lfu.has_value()) shard.lfu->RecordAccess(key_hash);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      ++shard.hits;
      if (span != nullptr) span->Tag("hit");
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      RefreshChargeAndEvict(shard, shard.lru.begin());
      return it->second->doc;
    }
    ++shard.misses;
  }

  // Prepare outside the lock: parsing (or store rehydration) is the
  // expensive part, and concurrent misses on *different* documents must not
  // serialize. Concurrent misses on the same document may prepare twice; the
  // second admission wins the map slot and the first copy dies with its
  // callers — wasteful but correct. store_hits is booked only once the
  // locally-prepared document is actually served (below): a rehydration that
  // loses the insert race is discarded work, and counting it would
  // double-count the page against a concurrent preparer of the same hash.
  bool from_store = false;
  MD_ASSIGN_OR_RETURN(
      std::shared_ptr<const CachedDocument> doc,
      PrepareDocument(html, project_attr, content_hash, &from_store));
  if (span != nullptr) span->Tag(from_store ? "store" : "parse");
  if (byte_budget_ <= 0) {
    if (from_store) store_hits_.fetch_add(1, std::memory_order_relaxed);
    return doc;
  }

  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Lost the parse race; serve the admitted copy (our own preparation is
    // discarded, so it must not appear in the store_hits accounting).
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->doc;
  }
  if (from_store) store_hits_.fetch_add(1, std::memory_order_relaxed);
  const int64_t candidate_bytes = doc->ApproxBytes();
  if (shard.lfu.has_value()) {
    // TinyLFU admission: the candidate may only displace resident entries it
    // out-ranks in the frequency sketch. Ties reject (churn protection — a
    // stream of equally-cold keys must not rotate the shard).
    while (shard.bytes_in_use + candidate_bytes > shard_byte_budget_ &&
           !shard.lru.empty()) {
      if (!shard.lfu->Admit(key_hash, shard.lru.back().key_hash)) {
        ++shard.admission_rejects;
        if (span != nullptr) span->Value("admitted", 0);
        return doc;  // served uncached; the resident set stays intact
      }
      EvictBack(shard);
    }
  }
  shard.lru.push_front(Entry{key, key_hash, doc, candidate_bytes});
  shard.index.emplace(key, shard.lru.begin());
  shard.bytes_in_use += candidate_bytes;
  // Plain-LRU path (and the oversized-candidate case): trim the tail, never
  // the entry just inserted.
  while (shard.bytes_in_use > shard_byte_budget_ && shard.lru.size() > 1) {
    EvictBack(shard);
  }
  return doc;
}

util::Result<std::shared_ptr<const CachedDocument>>
DocumentCache::PrepareDocument(std::string_view html,
                               const std::string& project_attr,
                               const Hash128& content_hash,
                               bool* from_store) {
  *from_store = false;
  if (corpus_store_ != nullptr) {
    telemetry::TraceSpan span(telemetry::CurrentTrace(), "store.rehydrate");
    util::Result<store::FrozenDocument> frozen =
        corpus_store_->Find(content_hash, project_attr);
    if (frozen.ok()) {
      *from_store = true;
      return CachedDocument::FromFrozen(*frozen, corpus_store_);
    }
    span.Tag("miss");
    // NotFound: the corpus simply doesn't have this page. DataLoss: it does
    // but the blob failed validation — the parse below is the safe fallback
    // either way (we still hold the original bytes).
  }
  telemetry::TraceSpan span(telemetry::CurrentTrace(), "html.parse");
  return CachedDocument::Parse(html, project_attr);
}

void DocumentCache::Recharge(const Hash128& content_hash,
                             const std::string& project_attr) {
  if (byte_budget_ <= 0) return;
  Key key{content_hash, project_attr};
  const uint64_t key_hash = KeyHash64(content_hash, project_attr);
  Shard& shard = ShardFor(key_hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return;
  RefreshChargeAndEvict(shard, it->second);
}

void DocumentCache::RefreshChargeAndEvict(Shard& shard,
                                          std::list<Entry>::iterator it) {
  const int64_t fresh = it->doc->ApproxBytes();
  shard.bytes_in_use += fresh - it->charged_bytes;
  it->charged_bytes = fresh;
  while (shard.bytes_in_use > shard_byte_budget_ && shard.lru.size() > 1 &&
         std::prev(shard.lru.end()) != it) {
    EvictBack(shard);
  }
}

void DocumentCache::EvictBack(Shard& shard) {
  Entry& victim = shard.lru.back();
  shard.bytes_in_use -= victim.charged_bytes;
  ++shard.evictions;
  shard.index.erase(victim.key);
  shard.lru.pop_back();
}

DocumentCacheStats DocumentCache::stats() const {
  DocumentCacheStats out;
  out.byte_budget = byte_budget_;
  out.shards = static_cast<int32_t>(shards_.size());
  out.store_hits = store_hits_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.evictions += shard->evictions;
    out.admission_rejects += shard->admission_rejects;
    out.bytes_in_use += shard->bytes_in_use;
    out.entries += static_cast<int32_t>(shard->lru.size());
  }
  return out;
}

}  // namespace mdatalog::runtime
