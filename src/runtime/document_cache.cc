#include "src/runtime/document_cache.h"

#include <utility>

#include "src/util/check.h"

namespace mdatalog::runtime {

util::Result<std::shared_ptr<const CachedDocument>> CachedDocument::Parse(
    std::string_view html, const std::string& project_attr) {
  MD_ASSIGN_OR_RETURN(html::Document doc, html::ParseHtml(html));
  // Not make_shared: the constructor is private, and the TreeDatabase must
  // be emplaced only once the trees sit at their final heap address.
  std::shared_ptr<CachedDocument> cached(
      new CachedDocument(std::move(doc)));
  if (!project_attr.empty()) {
    cached->tree_ =
        html::ProjectAttributeIntoLabels(*cached->doc_, project_attr);
  }
  cached->edb_.emplace(cached->tree());
  cached->static_bytes_ = static_cast<int64_t>(sizeof(CachedDocument)) +
                          cached->doc_->tree().ApproxBytes();
  if (cached->tree_.has_value()) {
    cached->static_bytes_ += cached->tree_->ApproxBytes();
  }
  return std::shared_ptr<const CachedDocument>(std::move(cached));
}

std::shared_ptr<const CachedDocument> CachedDocument::FromFrozen(
    const store::FrozenDocument& frozen,
    std::shared_ptr<const store::CorpusStore> store) {
  std::shared_ptr<CachedDocument> cached(new CachedDocument());
  cached->store_ = std::move(store);
  cached->frozen_edb_ = frozen.edb;
  cached->tree_ = frozen.MakeTree();  // zero-copy columns into the mapping
  // frozen_edb_ sits at its final address now; the database borrows it.
  cached->edb_.emplace(*cached->tree_, &cached->frozen_edb_);
  // Only owned heap is charged — the mapped pages are shared with every
  // other consumer of the store and reclaimable by the kernel.
  cached->static_bytes_ = static_cast<int64_t>(sizeof(CachedDocument)) +
                          cached->tree_->ApproxBytes();
  return std::shared_ptr<const CachedDocument>(std::move(cached));
}

uint64_t DocumentCache::KeyHash64(const Hash128& content_hash,
                                  const std::string& attr) {
  // Both 128-bit halves plus the projection attribute: entries that differ
  // only in projection must shard/sketch independently. Keyed SipHash, not a
  // public mix of the stable content hash — shard routing and sketch rows
  // must not be precomputable by a tenant that controls the page bytes.
  util::SipHasher h;
  h.Update64(content_hash.lo);
  h.Update64(content_hash.hi);
  h.Update(attr);
  return h.Finish();
}

int64_t DocumentCache::DocumentCost(const Key& /*key*/,
                                    const CachedDocument& doc) {
  return doc.ApproxBytes();
}

DocumentCache::DocumentCache(const DocumentCacheOptions& options)
    : cache_(options.cache, &DocumentCost, options.tenants),
      corpus_store_(options.corpus_store) {}

util::Result<std::shared_ptr<const CachedDocument>> DocumentCache::GetOrParse(
    std::string_view html, const std::string& project_attr) {
  return GetOrParse(html, project_attr, HashBytes128(html));
}

util::Result<std::shared_ptr<const CachedDocument>> DocumentCache::GetOrParse(
    std::string_view html, const std::string& project_attr,
    const Hash128& content_hash, telemetry::TraceSpan* span,
    TenantId tenant) {
  Key key{content_hash, project_attr};
  const uint64_t key_hash = KeyHash64(content_hash, project_attr);

  if (auto doc = cache_.Lookup(key, key_hash, tenant); doc != nullptr) {
    if (span != nullptr) span->Tag("hit");
    return doc;
  }

  // Prepare outside the shard lock: parsing (or store rehydration) is the
  // expensive part, and concurrent misses on *different* documents must not
  // serialize. Concurrent misses on the same document may prepare twice; the
  // second insert loses the map slot and its copy dies with its callers —
  // wasteful but correct. store_hits is booked only once the locally-
  // prepared document is actually served (below): a rehydration that loses
  // the insert race is discarded work, and counting it would double-count
  // the page against a concurrent preparer of the same hash.
  bool from_store = false;
  MD_ASSIGN_OR_RETURN(
      std::shared_ptr<const CachedDocument> doc,
      PrepareDocument(html, project_attr, content_hash, &from_store));
  if (span != nullptr) span->Tag(from_store ? "store" : "parse");
  if (!cache_.enabled()) {
    if (from_store) store_hits_.fetch_add(1, std::memory_order_relaxed);
    return doc;
  }

  auto outcome = cache_.Insert(key, key_hash, std::move(doc), tenant);
  if (outcome.raced) {
    // Lost the parse race; serve the resident copy (our own preparation is
    // discarded, so it must not appear in the store_hits accounting).
    return outcome.value;
  }
  if (from_store) store_hits_.fetch_add(1, std::memory_order_relaxed);
  if (!outcome.admitted && span != nullptr) span->Value("admitted", 0);
  return outcome.value;
}

util::Result<std::shared_ptr<const CachedDocument>>
DocumentCache::PrepareDocument(std::string_view html,
                               const std::string& project_attr,
                               const Hash128& content_hash,
                               bool* from_store) {
  *from_store = false;
  if (corpus_store_ != nullptr) {
    telemetry::TraceSpan span(telemetry::CurrentTrace(), "store.rehydrate");
    util::Result<store::FrozenDocument> frozen =
        corpus_store_->Find(content_hash, project_attr);
    if (frozen.ok()) {
      *from_store = true;
      return CachedDocument::FromFrozen(*frozen, corpus_store_);
    }
    span.Tag("miss");
    // NotFound: the corpus simply doesn't have this page. DataLoss: it does
    // but the blob failed validation — the parse below is the safe fallback
    // either way (we still hold the original bytes).
  }
  telemetry::TraceSpan span(telemetry::CurrentTrace(), "html.parse");
  return CachedDocument::Parse(html, project_attr);
}

void DocumentCache::Recharge(const Hash128& content_hash,
                             const std::string& project_attr) {
  Key key{content_hash, project_attr};
  cache_.Recharge(key, KeyHash64(content_hash, project_attr));
}

DocumentCacheStats DocumentCache::stats() const {
  const ShardedCacheStats s = cache_.stats();
  DocumentCacheStats out;
  out.hits = s.hits;
  out.misses = s.misses;
  out.evictions = s.evictions;
  out.admission_rejects = s.admission_rejects;
  out.fair_share_rejects = s.fair_share_rejects;
  out.store_hits = store_hits_.load(std::memory_order_relaxed);
  out.bytes_in_use = s.bytes_in_use;
  out.byte_budget = s.byte_budget;
  out.entries = s.entries;
  out.shards = s.shards;
  return out;
}

}  // namespace mdatalog::runtime
