#include "src/runtime/document_cache.h"

#include <utility>

#include "src/util/check.h"

namespace mdatalog::runtime {

uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

Hash128 HashBytes128(std::string_view bytes) {
  // Two structurally different accumulators over one scan: `lo` is standard
  // FNV-1a; `hi` is a multiply-xorshift (splitmix-style) stream, so a
  // differential that collides the FNV polynomial does not transfer to the
  // second state. Not cryptographic — a determined attacker with offline
  // search could still target the pair — but the serving caches fail
  // *wrong-answer-silently* on collision, so the bar sits deliberately far
  // above a single 64-bit FNV. Swap in a keyed hash (SipHash) here if the
  // deployment threat model includes adversarial collision search.
  Hash128 h;
  h.lo = 1469598103934665603ULL;
  h.hi = 0x9e3779b97f4a7c15ULL;
  for (unsigned char c : bytes) {
    h.lo = (h.lo ^ c) * 1099511628211ULL;
    uint64_t x = h.hi + 0x9e3779b97f4a7c15ULL + c;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h.hi = x ^ (x >> 27);
  }
  h.hi ^= static_cast<uint64_t>(bytes.size());  // length guard
  return h;
}

util::Result<std::shared_ptr<const CachedDocument>> CachedDocument::Parse(
    std::string_view html, const std::string& project_attr) {
  MD_ASSIGN_OR_RETURN(html::Document doc, html::ParseHtml(html));
  // Not make_shared: the constructor is private, and the TreeDatabase must
  // be emplaced only once the trees sit at their final heap address.
  std::shared_ptr<CachedDocument> cached(
      new CachedDocument(std::move(doc)));
  if (!project_attr.empty()) {
    cached->projected_ =
        html::ProjectAttributeIntoLabels(cached->doc_, project_attr);
  }
  cached->edb_.emplace(cached->tree());
  cached->static_bytes_ = static_cast<int64_t>(sizeof(CachedDocument)) +
                          cached->doc_.tree().ApproxBytes();
  if (cached->projected_.has_value()) {
    cached->static_bytes_ += cached->projected_->ApproxBytes();
  }
  return std::shared_ptr<const CachedDocument>(std::move(cached));
}

DocumentCache::DocumentCache(int64_t byte_budget)
    : byte_budget_(byte_budget) {
  stats_.byte_budget = byte_budget;
}

util::Result<std::shared_ptr<const CachedDocument>> DocumentCache::GetOrParse(
    std::string_view html, const std::string& project_attr) {
  return GetOrParse(html, project_attr, HashBytes128(html));
}

util::Result<std::shared_ptr<const CachedDocument>> DocumentCache::GetOrParse(
    std::string_view html, const std::string& project_attr,
    const Hash128& content_hash) {
  Key key{content_hash, project_attr};
  if (byte_budget_ <= 0) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    // fall through to an uncached parse below (outside the lock)
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second);  // move to front
      RefreshChargeAndEvict(lru_.begin());
      return it->second->doc;
    }
    ++stats_.misses;
  }

  // Parse outside the lock: parsing is the expensive part, and concurrent
  // misses on *different* documents must not serialize. Concurrent misses on
  // the same document may parse twice; the second admission wins the map
  // slot and the first copy dies with its callers — wasteful but correct.
  MD_ASSIGN_OR_RETURN(std::shared_ptr<const CachedDocument> doc,
                      CachedDocument::Parse(html, project_attr));
  if (byte_budget_ <= 0) return doc;

  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Lost the parse race; serve the admitted copy.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->doc;
  }
  lru_.push_front(Entry{key, doc, 0});
  index_.emplace(key, lru_.begin());
  ++stats_.entries;
  RefreshChargeAndEvict(lru_.begin());
  return doc;
}

void DocumentCache::RefreshChargeAndEvict(std::list<Entry>::iterator it) {
  const int64_t fresh = it->doc->ApproxBytes();
  stats_.bytes_in_use += fresh - it->charged_bytes;
  it->charged_bytes = fresh;
  while (stats_.bytes_in_use > byte_budget_ && lru_.size() > 1) {
    Entry& victim = lru_.back();
    stats_.bytes_in_use -= victim.charged_bytes;
    ++stats_.evictions;
    --stats_.entries;
    index_.erase(victim.key);
    lru_.pop_back();
  }
}

DocumentCacheStats DocumentCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace mdatalog::runtime
