#include "src/runtime/admission.h"

#include <algorithm>

#include "src/util/bits.h"

namespace mdatalog::runtime {

namespace {

/// Four derived probe indices per key: splitmix remixes of the key hash with
/// distinct odd constants. The caches hand us an already-mixed 64-bit hash,
/// but deriving four *independent* row indices from it still needs per-row
/// diffusion — xor-by-constant alone would make the rows collide in
/// lockstep.
uint64_t Remix(uint64_t h, uint64_t seed) { return util::Mix64(h + seed); }

constexpr uint64_t kRowSeeds[4] = {
    0x9e3779b97f4a7c15ULL,
    0xc2b2ae3d27d4eb4fULL,
    0x165667b19e3779f9ULL,
    0x27d4eb2f165667c5ULL,
};

}  // namespace

FrequencySketch::FrequencySketch(int32_t num_counters) {
  const int32_t n = util::RoundUpPow2(std::max(num_counters, 1024));
  counter_mask_ = static_cast<uint32_t>(n - 1);
  table_.assign(static_cast<size_t>(n) / 16 + 1, 0);  // 16 counters per word
  door_.assign(static_cast<size_t>(n) / 64 + 1, 0);
  // Age once the window has seen ~10x the counter capacity: frequent keys
  // reach saturation well before that, and halving keeps the sketch a
  // sliding window rather than an all-time popularity contest.
  sample_period_ = static_cast<int64_t>(n) * 10;
}

bool FrequencySketch::DoorkeeperContains(uint64_t key_hash) const {
  const uint32_t b0 = static_cast<uint32_t>(Remix(key_hash, kRowSeeds[0])) &
                      counter_mask_;
  const uint32_t b1 = static_cast<uint32_t>(Remix(key_hash, kRowSeeds[1])) &
                      counter_mask_;
  return (door_[b0 >> 6] & (1ULL << (b0 & 63))) != 0 &&
         (door_[b1 >> 6] & (1ULL << (b1 & 63))) != 0;
}

void FrequencySketch::DoorkeeperInsert(uint64_t key_hash) {
  const uint32_t b0 = static_cast<uint32_t>(Remix(key_hash, kRowSeeds[0])) &
                      counter_mask_;
  const uint32_t b1 = static_cast<uint32_t>(Remix(key_hash, kRowSeeds[1])) &
                      counter_mask_;
  door_[b0 >> 6] |= 1ULL << (b0 & 63);
  door_[b1 >> 6] |= 1ULL << (b1 & 63);
}

void FrequencySketch::RecordAccess(uint64_t key_hash) {
  if (++samples_ >= sample_period_) Age();
  if (!DoorkeeperContains(key_hash)) {
    // First sighting in this window: the one-hit-wonder long tail stops
    // here and never touches the counters.
    DoorkeeperInsert(key_hash);
    return;
  }
  for (int row = 0; row < 4; ++row) {
    const uint32_t idx = static_cast<uint32_t>(Remix(key_hash, kRowSeeds[row])) &
                         counter_mask_;
    const uint32_t shift = (idx & 15) * 4;
    const uint64_t cur = (table_[idx >> 4] >> shift) & 0xF;
    if (cur < 15) {
      table_[idx >> 4] += 1ULL << shift;  // saturating 4-bit increment
    }
  }
}

int32_t FrequencySketch::EstimateFrequency(uint64_t key_hash) const {
  uint64_t freq = 15;
  for (int row = 0; row < 4; ++row) {
    const uint32_t idx = static_cast<uint32_t>(Remix(key_hash, kRowSeeds[row])) &
                         counter_mask_;
    freq = std::min(freq, (table_[idx >> 4] >> ((idx & 15) * 4)) & 0xF);
  }
  return static_cast<int32_t>(freq) + (DoorkeeperContains(key_hash) ? 1 : 0);
}

void FrequencySketch::Age() {
  // Halve every 4-bit counter in place, word-parallel: clear each counter's
  // low bit, then shift the whole word right (0x7777… masks the bit that
  // would otherwise leak into the neighboring counter).
  for (uint64_t& word : table_) {
    word = (word >> 1) & 0x7777777777777777ULL;
  }
  std::fill(door_.begin(), door_.end(), 0);
  samples_ = 0;
}

}  // namespace mdatalog::runtime
