#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "src/core/database.h"
#include "src/html/parser.h"
#include "src/runtime/sharded_lfu_cache.h"
#include "src/runtime/tenant.h"
#include "src/store/corpus_store.h"
#include "src/telemetry/trace.h"
#include "src/tree/tree.h"
#include "src/util/hash.h"
#include "src/util/result.h"

/// \file document_cache.h
/// The shared-tree side of the serving runtime. A wrapper workload evaluates
/// one fixed program over streams of documents, and the same document is
/// typically requested many times (re-crawls, several wrappers on one page,
/// retries). The cache parses each distinct page once and shares the
/// immutable artifacts — HTML parse, attribute-projected tree, TreeDatabase
/// EDB materializations — between all concurrent queries, keyed by content
/// hash.
///
/// The sharding / TinyLFU / byte-budget / fair-share machinery lives in
/// ShardedLfuCache (sharded_lfu_cache.h — one template shared with the
/// result memo); this file adds what is document-specific: parsing,
/// attribute projection, the corpus-store second level, and the SipHash key
/// derivation over (content hash, projection attribute).

namespace mdatalog::runtime {

/// The content-hash primitives moved to util/hash.h so the corpus store can
/// key packed documents identically without depending on the runtime; these
/// aliases keep existing runtime:: spellings working.
using util::Hash128;
using util::HashBytes;
using util::HashBytes128;

/// One fully prepared, immutable document. Shared (shared_ptr const) between
/// every query that hits the same content: the tree and parse are read-only,
/// and the TreeDatabase's lazy EDB materialization is internally
/// mutex-guarded, so concurrent evaluations are safe.
class CachedDocument {
 public:
  /// Parses `html`; if `project_attr` is non-empty, additionally projects
  /// that attribute into the labels (Remark 2.2 — "div@sidebar"-style
  /// alphabets wrappers match on).
  static util::Result<std::shared_ptr<const CachedDocument>> Parse(
      std::string_view html, const std::string& project_attr);

  /// Rehydrates a document out of an open corpus store — no parsing: the
  /// tree columns and texts are read in place from the store's mapping (the
  /// store stays alive via the held shared_ptr) and the unary EDB relations
  /// load from the packed bit-arrays. Any projection was applied at pack
  /// time. Store-backed documents carry no html::Document (has_html() is
  /// false); wrappers only touch tree() and edb().
  static std::shared_ptr<const CachedDocument> FromFrozen(
      const store::FrozenDocument& frozen,
      std::shared_ptr<const store::CorpusStore> store);

  /// False for store-backed documents, which skip the HTML parse entirely.
  bool has_html() const { return doc_.has_value(); }
  const html::Document& doc() const { return *doc_; }
  /// The tree wrappers evaluate over: the projected or frozen tree when one
  /// exists, the raw parse tree otherwise.
  const tree::Tree& tree() const {
    return tree_.has_value() ? *tree_ : doc_->tree();
  }
  /// The shared relational view of tree(). Thread-safe lazy materialization.
  const core::TreeDatabase& edb() const { return *edb_; }

  /// Approximate heap footprint. Grows as evaluations materialize further
  /// EDB relations; the cache refreshes its charge on every hit and on
  /// Recharge. O(1): the immutable tree part is measured once at parse time
  /// and the EDB keeps an incremental counter — no heap walk on the serving
  /// hot path. Store-backed documents charge only their owned heap — the
  /// mapped pages are shared and kernel-evictable, so the cache deliberately
  /// leaves them off its budget.
  int64_t ApproxBytes() const { return static_bytes_ + edb_->ApproxBytes(); }

 private:
  CachedDocument() = default;
  explicit CachedDocument(html::Document doc) : doc_(std::move(doc)) {}

  std::optional<html::Document> doc_;  // absent for store-backed documents
  // The evaluation tree when it is not doc_'s raw parse tree: the
  // attribute-projected tree, or the zero-copy frozen tree.
  std::optional<tree::Tree> tree_;
  // Emplaced after doc_/tree_ reach their final heap location (it holds
  // a reference to tree()).
  std::optional<core::TreeDatabase> edb_;
  core::FrozenUnaryEdb frozen_edb_;  // referenced by edb_ when store-backed
  std::shared_ptr<const store::CorpusStore> store_;  // keepalive, may be null
  int64_t static_bytes_ = 0;  // trees + parse, fixed after construction
};

struct DocumentCacheOptions {
  /// The shared cache-tuning block (sharded_lfu_cache.h). Defaults match the
  /// pre-CacheOptions document cache: 64MB over 8 shards, TinyLFU on,
  /// sketch auto-sized for ~64KB documents.
  CacheOptions cache{.byte_budget = 64 << 20};
  /// Second-level cache: an open corpus store consulted on every in-memory
  /// miss before falling back to parsing. A store hit costs an mmap-backed
  /// blob validation instead of an HTML parse; a corrupt blob (DataLoss)
  /// silently falls through to the parse path. May be null.
  std::shared_ptr<const store::CorpusStore> corpus_store = nullptr;
  /// Tenant registry for fair-share eviction protection and per-tenant
  /// accounting; null = single-tenant behavior. Must outlive the cache.
  const TenantRegistry* tenants = nullptr;
};

struct DocumentCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  /// Misses parsed but denied a cache slot by TinyLFU (served uncached).
  int64_t admission_rejects = 0;
  /// Misses denied a slot because every scannable victim was fair-share
  /// protected (served uncached).
  int64_t fair_share_rejects = 0;
  /// In-memory misses served from the corpus store instead of a parse.
  int64_t store_hits = 0;
  int64_t bytes_in_use = 0;
  int64_t byte_budget = 0;
  int32_t entries = 0;
  int32_t shards = 0;
};

/// Content-addressed document cache: a ShardedLfuCache over (128-bit content
/// hash, projection attribute) keys — two wrappers with different
/// projections see different trees and must not share an entry — plus the
/// corpus-store second level.
///
/// The cache key hash is keyed SipHash (per-process random key), so an
/// untrusted tenant cannot precompute pages that collide into one shard or
/// alias another tenant's sketch counters. The unkeyed Hash128 content hash
/// (stable, persisted by the corpus store) identifies the page; SipHash only
/// decides in-memory placement.
///
/// Thread safety: all public methods are safe to call concurrently.
class DocumentCache {
 public:
  explicit DocumentCache(const DocumentCacheOptions& options);
  /// Convenience: default sharding/admission at the given budget.
  explicit DocumentCache(int64_t byte_budget)
      : DocumentCache(
            DocumentCacheOptions{.cache = {.byte_budget = byte_budget}}) {}

  /// Returns the shared document for `html`, parsing it on miss (and
  /// admitting it if the shard's admission policy agrees). A byte_budget of
  /// 0 disables caching (every call parses).
  util::Result<std::shared_ptr<const CachedDocument>> GetOrParse(
      std::string_view html, const std::string& project_attr);

  /// Same, with the content hash precomputed by the caller (the runtime
  /// already hashed the page for its memo key — don't re-scan the bytes).
  /// `content_hash` must equal HashBytes128(html). `span`, when non-null, is
  /// the caller's open trace span for this lookup: it is tagged with the
  /// outcome ("hit", "store", "parse", or "uncached") and carries
  /// admitted=0 when admission denies the prepared document a slot.
  /// `tenant` pays for the entry's bytes and is the fair-share principal.
  util::Result<std::shared_ptr<const CachedDocument>> GetOrParse(
      std::string_view html, const std::string& project_attr,
      const Hash128& content_hash, telemetry::TraceSpan* span = nullptr,
      TenantId tenant = kDefaultTenant);

  /// Re-reads the entry's ApproxBytes and re-balances its shard. Call after
  /// an evaluation that may have materialized EDB relations: the byte charge
  /// recorded at admission does not include lazily materialized relations,
  /// and an entry that is never hit again would otherwise occupy budget the
  /// shard does not know about. No-op if the key is absent (evicted or
  /// rejected). Does not touch LRU order or hit/miss stats.
  void Recharge(const Hash128& content_hash, const std::string& project_attr);

  /// Aggregated over all shards.
  DocumentCacheStats stats() const;
  /// One tenant's slice (hits/misses/resident bytes/fair-share rejects).
  TenantCacheStats tenant_stats(TenantId tenant) const {
    return cache_.tenant_stats(tenant);
  }

  int32_t num_shards() const { return cache_.num_shards(); }

 private:
  struct Key {
    Hash128 content_hash;
    std::string attr;
    bool operator==(const Key&) const = default;
  };
  struct KeyHasher {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(KeyHash64(k.content_hash, k.attr));
    }
  };

  /// Keyed SipHash over both content-hash halves plus the projection
  /// attribute: shard router, sketch key and bucket hash in one value.
  static uint64_t KeyHash64(const Hash128& content_hash,
                            const std::string& attr);
  static int64_t DocumentCost(const Key& key, const CachedDocument& doc);

  /// Prepares a document for `html` without parsing if the corpus store has
  /// it; falls back to CachedDocument::Parse. Called outside shard locks.
  /// Sets `*from_store` when the document was rehydrated from the corpus
  /// store; the caller books the store_hits stat only if that copy is the one
  /// it actually serves (a preparation that loses the concurrent insert race
  /// on the same content hash is discarded and must not be counted).
  util::Result<std::shared_ptr<const CachedDocument>> PrepareDocument(
      std::string_view html, const std::string& project_attr,
      const Hash128& content_hash, bool* from_store);

  ShardedLfuCache<Key, CachedDocument, KeyHasher> cache_;
  std::shared_ptr<const store::CorpusStore> corpus_store_;  // may be null
  mutable std::atomic<int64_t> store_hits_{0};
};

}  // namespace mdatalog::runtime
