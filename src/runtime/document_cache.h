#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/core/database.h"
#include "src/html/parser.h"
#include "src/tree/tree.h"
#include "src/util/result.h"

/// \file document_cache.h
/// The shared-tree side of the serving runtime. A wrapper workload evaluates
/// one fixed program over streams of documents, and the same document is
/// typically requested many times (re-crawls, several wrappers on one page,
/// retries). The cache parses each distinct page once and shares the
/// immutable artifacts — HTML parse, attribute-projected tree, TreeDatabase
/// EDB materializations — between all concurrent queries, keyed by content
/// hash with LRU eviction under a byte budget.

namespace mdatalog::runtime {

/// FNV-1a 64-bit. Stable across runs; used for keys over *trusted* inputs
/// (program text fingerprints).
uint64_t HashBytes(std::string_view bytes);

/// 128-bit content hash: an FNV-1a stream plus a structurally different
/// multiply-xorshift stream, one scan. Document/memo keys use this because
/// the HTML is untrusted — a key collision would silently serve one page's
/// extraction results for another, and 64 bits of a non-cryptographic hash
/// is constructible. Not cryptographic either (see the note at the
/// definition); swap in a keyed hash if adversarial collision search is in
/// the threat model.
struct Hash128 {
  uint64_t lo = 0;
  uint64_t hi = 0;
  bool operator==(const Hash128&) const = default;
};
Hash128 HashBytes128(std::string_view bytes);

/// One fully prepared, immutable document. Shared (shared_ptr const) between
/// every query that hits the same content: the tree and parse are read-only,
/// and the TreeDatabase's lazy EDB materialization is internally
/// mutex-guarded, so concurrent evaluations are safe.
class CachedDocument {
 public:
  /// Parses `html`; if `project_attr` is non-empty, additionally projects
  /// that attribute into the labels (Remark 2.2 — "div@sidebar"-style
  /// alphabets wrappers match on).
  static util::Result<std::shared_ptr<const CachedDocument>> Parse(
      std::string_view html, const std::string& project_attr);

  const html::Document& doc() const { return doc_; }
  /// The tree wrappers evaluate over: the projected tree when an attribute
  /// projection was requested, the raw parse tree otherwise.
  const tree::Tree& tree() const {
    return projected_.has_value() ? *projected_ : doc_.tree();
  }
  /// The shared relational view of tree(). Thread-safe lazy materialization.
  const core::TreeDatabase& edb() const { return *edb_; }

  /// Approximate heap footprint. Grows as evaluations materialize further
  /// EDB relations; the cache refreshes its charge on every hit. O(1): the
  /// immutable tree part is measured once at parse time and the EDB keeps an
  /// incremental counter — no heap walk on the serving hot path.
  int64_t ApproxBytes() const { return static_bytes_ + edb_->ApproxBytes(); }

 private:
  explicit CachedDocument(html::Document doc) : doc_(std::move(doc)) {}

  html::Document doc_;
  std::optional<tree::Tree> projected_;
  // Emplaced after doc_/projected_ reach their final heap location (it holds
  // a reference to tree()).
  std::optional<core::TreeDatabase> edb_;
  int64_t static_bytes_ = 0;  // trees + parse, fixed after construction
};

struct DocumentCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t bytes_in_use = 0;
  int64_t byte_budget = 0;
  int32_t entries = 0;
};

/// Content-addressed LRU document cache with byte-budget accounting.
///
/// Key: (FNV-1a of the HTML bytes, projection attribute) — two wrappers with
/// different projections see different trees and must not share an entry.
/// Eviction: least-recently-used entries are dropped until the budget holds
/// again; the entry just touched is never evicted (a single oversized
/// document is served but not retained beside other entries). Evicted
/// documents stay alive as long as in-flight queries hold their shared_ptr.
///
/// Thread safety: all public methods are safe to call concurrently.
class DocumentCache {
 public:
  explicit DocumentCache(int64_t byte_budget);

  /// Returns the shared document for `html`, parsing and admitting it on
  /// miss. A byte_budget of 0 disables caching (every call parses).
  util::Result<std::shared_ptr<const CachedDocument>> GetOrParse(
      std::string_view html, const std::string& project_attr);

  /// Same, with the content hash precomputed by the caller (the runtime
  /// already hashed the page for its memo key — don't re-scan the bytes).
  /// `content_hash` must equal HashBytes128(html).
  util::Result<std::shared_ptr<const CachedDocument>> GetOrParse(
      std::string_view html, const std::string& project_attr,
      const Hash128& content_hash);

  DocumentCacheStats stats() const;

 private:
  struct Key {
    Hash128 content_hash;
    std::string attr;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(k.content_hash.lo * 1099511628211ULL ^
                                 k.content_hash.hi) ^
             std::hash<std::string>{}(k.attr);
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const CachedDocument> doc;
    int64_t charged_bytes = 0;
  };

  /// Requires mu_ held. Re-reads `it`'s ApproxBytes (EDB materializations
  /// grow after admission) and evicts LRU entries other than `it` until the
  /// budget holds.
  void RefreshChargeAndEvict(std::list<Entry>::iterator it);

  const int64_t byte_budget_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  DocumentCacheStats stats_;
};

}  // namespace mdatalog::runtime
