#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include <atomic>

#include "src/core/database.h"
#include "src/html/parser.h"
#include "src/runtime/admission.h"
#include "src/store/corpus_store.h"
#include "src/telemetry/trace.h"
#include "src/tree/tree.h"
#include "src/util/hash.h"
#include "src/util/result.h"

/// \file document_cache.h
/// The shared-tree side of the serving runtime. A wrapper workload evaluates
/// one fixed program over streams of documents, and the same document is
/// typically requested many times (re-crawls, several wrappers on one page,
/// retries). The cache parses each distinct page once and shares the
/// immutable artifacts — HTML parse, attribute-projected tree, TreeDatabase
/// EDB materializations — between all concurrent queries, keyed by content
/// hash.
///
/// Production hardening (vs the original single-mutex LRU):
///  * the store is sharded N ways by key hash — shared-nothing per-shard
///    mutexes and per-shard byte budgets, so a hot document serializes only
///    its own shard, never unrelated workers;
///  * admission is TinyLFU (admission.h): a candidate only displaces the LRU
///    victim when the frequency sketch ranks it more popular, so one-hit
///    scan traffic cannot evict the hot working set.

namespace mdatalog::runtime {

/// The content-hash primitives moved to util/hash.h so the corpus store can
/// key packed documents identically without depending on the runtime; these
/// aliases keep existing runtime:: spellings working.
using util::Hash128;
using util::HashBytes;
using util::HashBytes128;

/// One fully prepared, immutable document. Shared (shared_ptr const) between
/// every query that hits the same content: the tree and parse are read-only,
/// and the TreeDatabase's lazy EDB materialization is internally
/// mutex-guarded, so concurrent evaluations are safe.
class CachedDocument {
 public:
  /// Parses `html`; if `project_attr` is non-empty, additionally projects
  /// that attribute into the labels (Remark 2.2 — "div@sidebar"-style
  /// alphabets wrappers match on).
  static util::Result<std::shared_ptr<const CachedDocument>> Parse(
      std::string_view html, const std::string& project_attr);

  /// Rehydrates a document out of an open corpus store — no parsing: the
  /// tree columns and texts are read in place from the store's mapping (the
  /// store stays alive via the held shared_ptr) and the unary EDB relations
  /// load from the packed bit-arrays. Any projection was applied at pack
  /// time. Store-backed documents carry no html::Document (has_html() is
  /// false); wrappers only touch tree() and edb().
  static std::shared_ptr<const CachedDocument> FromFrozen(
      const store::FrozenDocument& frozen,
      std::shared_ptr<const store::CorpusStore> store);

  /// False for store-backed documents, which skip the HTML parse entirely.
  bool has_html() const { return doc_.has_value(); }
  const html::Document& doc() const { return *doc_; }
  /// The tree wrappers evaluate over: the projected or frozen tree when one
  /// exists, the raw parse tree otherwise.
  const tree::Tree& tree() const {
    return tree_.has_value() ? *tree_ : doc_->tree();
  }
  /// The shared relational view of tree(). Thread-safe lazy materialization.
  const core::TreeDatabase& edb() const { return *edb_; }

  /// Approximate heap footprint. Grows as evaluations materialize further
  /// EDB relations; the cache refreshes its charge on every hit and on
  /// Recharge. O(1): the immutable tree part is measured once at parse time
  /// and the EDB keeps an incremental counter — no heap walk on the serving
  /// hot path. Store-backed documents charge only their owned heap — the
  /// mapped pages are shared and kernel-evictable, so the cache deliberately
  /// leaves them off its budget.
  int64_t ApproxBytes() const { return static_bytes_ + edb_->ApproxBytes(); }

 private:
  CachedDocument() = default;
  explicit CachedDocument(html::Document doc) : doc_(std::move(doc)) {}

  std::optional<html::Document> doc_;  // absent for store-backed documents
  // The evaluation tree when it is not doc_'s raw parse tree: the
  // attribute-projected tree, or the zero-copy frozen tree.
  std::optional<tree::Tree> tree_;
  // Emplaced after doc_/tree_ reach their final heap location (it holds
  // a reference to tree()).
  std::optional<core::TreeDatabase> edb_;
  core::FrozenUnaryEdb frozen_edb_;  // referenced by edb_ when store-backed
  std::shared_ptr<const store::CorpusStore> store_;  // keepalive, may be null
  int64_t static_bytes_ = 0;  // trees + parse, fixed after construction
};

struct DocumentCacheOptions {
  /// Total byte budget, split evenly across shards; 0 disables caching.
  int64_t byte_budget = 64 << 20;
  /// Shard count, rounded up to a power of two (1 = the original
  /// single-mutex behavior). Default 8: enough that 8 workers hammering one
  /// hot page rarely collide with unrelated traffic.
  int32_t num_shards = 8;
  /// TinyLFU admission (scan resistance). false = plain LRU: every miss is
  /// admitted, evicting from the tail — the pre-hardening behavior.
  bool tinylfu_admission = true;
  /// Counters per shard sketch; 0 = auto (derived from the shard budget,
  /// assuming ~64KB documents, clamped to [1024, 1M]).
  int32_t sketch_counters = 0;
  /// Second-level cache: an open corpus store consulted on every in-memory
  /// miss before falling back to parsing. A store hit costs an mmap-backed
  /// blob validation instead of an HTML parse; a corrupt blob (DataLoss)
  /// silently falls through to the parse path. May be null.
  std::shared_ptr<const store::CorpusStore> corpus_store = nullptr;
};

struct DocumentCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  /// Misses parsed but denied a cache slot by TinyLFU (served uncached).
  int64_t admission_rejects = 0;
  /// In-memory misses served from the corpus store instead of a parse.
  int64_t store_hits = 0;
  int64_t bytes_in_use = 0;
  int64_t byte_budget = 0;
  int32_t entries = 0;
  int32_t shards = 0;
};

/// Content-addressed, sharded document cache with byte-budget accounting and
/// TinyLFU admission.
///
/// Key: (128-bit content hash of the HTML bytes, projection attribute) — two
/// wrappers with different projections see different trees and must not
/// share an entry. The key hash picks the shard; each shard is an
/// independent LRU under byte_budget/num_shards with its own mutex and
/// frequency sketch (shared-nothing: no cross-shard locks anywhere).
///
/// Eviction: least-recently-used entries of the shard are dropped until its
/// budget holds again; the entry just touched is never evicted (a single
/// oversized document is served but not retained beside other entries).
/// Admission: on a miss that would overflow the shard, the candidate must
/// out-rank the LRU victim in the frequency sketch or it is served uncached
/// (admission_rejects). Evicted documents stay alive as long as in-flight
/// queries hold their shared_ptr.
///
/// Thread safety: all public methods are safe to call concurrently.
class DocumentCache {
 public:
  explicit DocumentCache(const DocumentCacheOptions& options);
  /// Convenience: default sharding/admission at the given budget.
  explicit DocumentCache(int64_t byte_budget)
      : DocumentCache(DocumentCacheOptions{.byte_budget = byte_budget}) {}

  /// Returns the shared document for `html`, parsing it on miss (and
  /// admitting it if the shard's admission policy agrees). A byte_budget of
  /// 0 disables caching (every call parses).
  util::Result<std::shared_ptr<const CachedDocument>> GetOrParse(
      std::string_view html, const std::string& project_attr);

  /// Same, with the content hash precomputed by the caller (the runtime
  /// already hashed the page for its memo key — don't re-scan the bytes).
  /// `content_hash` must equal HashBytes128(html). `span`, when non-null, is
  /// the caller's open trace span for this lookup: it is tagged with the
  /// outcome ("hit", "store", "parse", or "uncached") and carries
  /// admitted=0 when TinyLFU denies the prepared document a slot.
  util::Result<std::shared_ptr<const CachedDocument>> GetOrParse(
      std::string_view html, const std::string& project_attr,
      const Hash128& content_hash, telemetry::TraceSpan* span = nullptr);

  /// Re-reads the entry's ApproxBytes and re-balances its shard. Call after
  /// an evaluation that may have materialized EDB relations: the byte charge
  /// recorded at admission does not include lazily materialized relations,
  /// and an entry that is never hit again would otherwise occupy budget the
  /// shard does not know about. No-op if the key is absent (evicted or
  /// rejected). Does not touch LRU order or hit/miss stats.
  void Recharge(const Hash128& content_hash, const std::string& project_attr);

  /// Aggregated over all shards.
  DocumentCacheStats stats() const;

  int32_t num_shards() const { return static_cast<int32_t>(shards_.size()); }

 private:
  struct Key {
    Hash128 content_hash;
    std::string attr;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(k.content_hash.lo * 1099511628211ULL ^
                                 k.content_hash.hi) ^
             std::hash<std::string>{}(k.attr);
    }
  };
  struct Entry {
    Key key;
    uint64_t key_hash = 0;  // sketch key (also the shard router input)
    std::shared_ptr<const CachedDocument> doc;
    int64_t charged_bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
    std::optional<TinyLfuAdmission> lfu;  // engaged iff tinylfu_admission
    int64_t bytes_in_use = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t admission_rejects = 0;
  };

  static uint64_t KeyHash64(const Hash128& content_hash,
                            const std::string& attr);
  Shard& ShardFor(uint64_t key_hash) {
    return *shards_[(key_hash >> 32) & shard_mask_];
  }

  /// Requires shard.mu held. Re-reads `it`'s ApproxBytes (EDB
  /// materializations grow after admission) and evicts LRU entries other
  /// than `it` until the shard budget holds.
  void RefreshChargeAndEvict(Shard& shard, std::list<Entry>::iterator it);
  /// Requires shard.mu held. Drops the LRU tail entry.
  void EvictBack(Shard& shard);

  /// Prepares a document for `html` without parsing if the corpus store has
  /// it; falls back to CachedDocument::Parse. Called outside shard locks.
  /// Sets `*from_store` when the document was rehydrated from the corpus
  /// store; the caller books the store_hits stat only if that copy is the one
  /// it actually serves (a preparation that loses the concurrent insert race
  /// on the same content hash is discarded and must not be counted).
  util::Result<std::shared_ptr<const CachedDocument>> PrepareDocument(
      std::string_view html, const std::string& project_attr,
      const Hash128& content_hash, bool* from_store);

  const int64_t byte_budget_;        // total, across shards
  const int64_t shard_byte_budget_;  // per shard
  uint64_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::shared_ptr<const store::CorpusStore> corpus_store_;  // may be null
  mutable std::atomic<int64_t> store_hits_{0};
};

}  // namespace mdatalog::runtime
