#include "src/tree/ranked.h"

namespace mdatalog::tree {

void RankedAlphabet::Declare(const std::string& name, int32_t rank) {
  MD_CHECK(rank >= 0);
  ranks_[name] = rank;
  max_rank_ = std::max(max_rank_, rank);
}

int32_t RankedAlphabet::RankOf(const std::string& name) const {
  auto it = ranks_.find(name);
  return it == ranks_.end() ? -1 : it->second;
}

util::Status RankedAlphabet::Validate(const Tree& t) const {
  for (NodeId n = 0; n < t.size(); ++n) {
    int32_t rank = RankOf(t.label_name(n));
    if (rank < 0) {
      return util::Status::InvalidArgument("undeclared symbol '" +
                                           t.label_name(n) + "'");
    }
    if (t.NumChildren(n) != rank) {
      return util::Status::InvalidArgument(
          "node " + std::to_string(n) + " labeled '" + t.label_name(n) +
          "' has " + std::to_string(t.NumChildren(n)) +
          " children, expected " + std::to_string(rank));
    }
  }
  return util::Status::OK();
}

util::Status ValidateMaxArity(const Tree& t, int32_t max_rank) {
  for (NodeId n = 0; n < t.size(); ++n) {
    if (t.NumChildren(n) > max_rank) {
      return util::Status::InvalidArgument(
          "node " + std::to_string(n) + " has " +
          std::to_string(t.NumChildren(n)) + " children, max rank is " +
          std::to_string(max_rank));
    }
  }
  return util::Status::OK();
}

}  // namespace mdatalog::tree
