#pragma once

#include <string>
#include <vector>

#include "src/tree/tree.h"
#include "src/util/result.h"

/// \file binary.h
/// The firstchild/nextsibling binary encoding of unranked trees (Figure 1).
///
/// The paper reduces the unranked case to the ranked one by renaming
/// "firstchild" to child_1 and "nextsibling" to child_2 (proof of Theorem 4.4).
/// A Tree already carries those two pointers, so most modules use the encoding
/// implicitly; this header materializes it explicitly so the bijection can be
/// tested, printed and fed to ranked-tree machinery.

namespace mdatalog::tree {

/// An explicit binary tree: every node has an optional left child
/// (= firstchild in the source tree) and optional right child (= nextsibling).
struct BinaryTree {
  struct BNode {
    std::string label;
    NodeId left = kNoNode;
    NodeId right = kNoNode;
  };
  std::vector<BNode> nodes;  // indexed by the *source* NodeId
  NodeId root = kNoNode;
};

/// Encodes an unranked tree (Figure 1 (a) → (b)). Node ids are preserved.
BinaryTree EncodeFirstChildNextSibling(const Tree& t);

/// Decodes a binary tree back to the unranked original. Fails if the root has
/// a right child (the root of a valid encoding has no next sibling).
util::Result<Tree> DecodeFirstChildNextSibling(const BinaryTree& b);

/// Renders the encoding as lines "n1 -fc-> n2", "n2 -ns-> n3", ... in id order
/// (used by the quickstart example to reproduce Figure 1).
std::string ToDebugString(const BinaryTree& b);

}  // namespace mdatalog::tree
