#include "src/tree/serialize.h"

#include <functional>

namespace mdatalog::tree {

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string ToXml(const Tree& t, int32_t indent) {
  std::string out;
  std::function<void(NodeId, int32_t)> emit = [&](NodeId n, int32_t depth) {
    std::string pad =
        indent < 0 ? "" : std::string(static_cast<size_t>(depth * indent), ' ');
    const std::string& tag = t.label_name(n);
    out += pad + "<" + tag + ">";
    bool multiline = false;
    if (t.HasText(n)) out += XmlEscape(t.text(n));
    if (!t.IsLeaf(n)) {
      multiline = indent >= 0;
      if (multiline) out += "\n";
      for (NodeId c = t.first_child(n); c != kNoNode; c = t.next_sibling(c)) {
        emit(c, depth + 1);
      }
      if (multiline) out += pad;
    }
    out += "</" + tag + ">";
    if (indent >= 0) out += "\n";
  };
  emit(t.root(), 0);
  return out;
}

}  // namespace mdatalog::tree
