#pragma once

#include <string>
#include <vector>

#include "src/tree/tree.h"
#include "src/util/rng.h"

/// \file generator.h
/// Deterministic tree generators used by tests, property suites and the
/// benchmark harness. All generators build in document order.

namespace mdatalog::tree {

/// Uniform-ish random tree with `num_nodes` nodes; each new node attaches to a
/// random existing node, with a bias towards recent nodes (deeper trees) when
/// `depth_bias` is true. Labels drawn uniformly from `labels`.
Tree RandomTree(util::Rng& rng, int32_t num_nodes,
                const std::vector<std::string>& labels,
                bool depth_bias = false);

/// Random tree whose arity never exceeds `max_arity` (for ranked-tree tests).
Tree RandomBoundedArityTree(util::Rng& rng, int32_t num_nodes,
                            const std::vector<std::string>& labels,
                            int32_t max_arity);

/// Complete binary tree of the given depth (depth 0 = single node); every
/// node labeled `label`. Size = 2^(depth+1) − 1. Workload of Example 4.21.
Tree CompleteBinaryTree(int32_t depth, const std::string& label);

/// Random *full* binary tree (every node has 0 or 2 children) with
/// `num_internal` internal nodes, i.e. 2·num_internal + 1 nodes. The shape
/// required by the binary query automata of Examples 4.9/4.21.
Tree RandomFullBinaryTree(util::Rng& rng, int32_t num_internal,
                          const std::vector<std::string>& labels);

/// Unary chain of n nodes.
Tree ChainTree(int32_t num_nodes, const std::string& label);

/// Root labeled `root_label` with children labeled per `child_labels`
/// (workload of Theorem 6.6: children words a^n b^m).
Tree ChildrenWord(const std::string& root_label,
                  const std::vector<std::string>& child_labels);

/// The 4-node tree of Example 3.2: a root with three children, all labeled a.
Tree PaperExample32Tree();

/// The 6-node tree of Figure 1 / Example 2.5:
///   n1(a) with children n2, n3, n6; n3 with children n4, n5 (all labeled a).
Tree PaperFigure1Tree();

/// The 3-node binary tree of Example 4.9 (root with two leaf children, all a).
Tree PaperExample49Tree();

}  // namespace mdatalog::tree
