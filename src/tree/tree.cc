#include "src/tree/tree.h"

#include <functional>

namespace mdatalog::tree {

const std::string Tree::kEmptyText;

std::vector<NodeId> Tree::Children(NodeId n) const {
  std::vector<NodeId> out;
  for (NodeId c = at(n).first_child; c != kNoNode; c = at(c).next_sibling) {
    out.push_back(c);
  }
  return out;
}

int32_t Tree::NumChildren(NodeId n) const {
  int32_t count = 0;
  for (NodeId c = at(n).first_child; c != kNoNode; c = at(c).next_sibling) {
    ++count;
  }
  return count;
}

NodeId Tree::ChildK(NodeId n, int32_t k) const {
  MD_DCHECK(k >= 1);
  NodeId c = at(n).first_child;
  for (int32_t i = 1; i < k && c != kNoNode; ++i) c = at(c).next_sibling;
  return c;
}

int32_t Tree::Depth(NodeId n) const {
  int32_t d = 0;
  for (NodeId p = at(n).parent; p != kNoNode; p = at(p).parent) ++d;
  return d;
}

bool Tree::IsAncestor(NodeId anc, NodeId n) const {
  for (NodeId p = at(n).parent; p != kNoNode; p = at(p).parent) {
    if (p == anc) return true;
  }
  return false;
}

std::vector<NodeId> Tree::Preorder() const {
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  std::vector<NodeId> stack = {root()};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    order.push_back(n);
    // Push children right-to-left so the leftmost is visited first.
    std::vector<NodeId> kids = Children(n);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return order;
}

std::vector<int32_t> Tree::PreorderRanks() const {
  std::vector<int32_t> rank(nodes_.size(), 0);
  std::vector<NodeId> order = Preorder();
  for (size_t i = 0; i < order.size(); ++i) {
    rank[order[i]] = static_cast<int32_t>(i);
  }
  return rank;
}

int32_t Tree::MaxArity() const {
  int32_t best = 0;
  for (NodeId n = 0; n < size(); ++n) {
    best = std::max(best, NumChildren(n));
  }
  return best;
}

int32_t Tree::Height() const {
  int32_t best = 0;
  for (NodeId n = 0; n < size(); ++n) {
    if (IsLeaf(n)) best = std::max(best, Depth(n));
  }
  return best;
}

const std::string& Tree::text(NodeId n) const {
  if (static_cast<size_t>(n) < texts_.size()) return texts_[n];
  return kEmptyText;
}

std::string Tree::SubtreeText(NodeId n) const {
  std::string out;
  std::function<void(NodeId)> walk = [&](NodeId m) {
    out += text(m);
    for (NodeId c = first_child(m); c != kNoNode; c = next_sibling(c)) walk(c);
  };
  walk(n);
  return out;
}

int64_t Tree::ApproxBytes() const {
  int64_t bytes = static_cast<int64_t>(nodes_.capacity()) * sizeof(Node);
  bytes += static_cast<int64_t>(texts_.capacity()) * sizeof(std::string);
  for (const std::string& t : texts_) {
    bytes += static_cast<int64_t>(t.capacity());
  }
  bytes += labels_.ApproxBytes();
  return bytes;
}

NodeId TreeBuilder::Root(std::string_view label) {
  MD_CHECK(tree_.nodes_.empty());
  Node node;
  node.label = tree_.labels_.Intern(label);
  tree_.nodes_.push_back(node);
  return 0;
}

NodeId TreeBuilder::Child(NodeId parent, std::string_view label) {
  MD_CHECK(!tree_.nodes_.empty());
  MD_CHECK(parent >= 0 &&
           static_cast<size_t>(parent) < tree_.nodes_.size());
  Node node;
  node.label = tree_.labels_.Intern(label);
  node.parent = parent;
  NodeId id = static_cast<NodeId>(tree_.nodes_.size());
  Node& par = tree_.nodes_[parent];
  if (par.last_child == kNoNode) {
    par.first_child = id;
  } else {
    tree_.nodes_[par.last_child].next_sibling = id;
    node.prev_sibling = par.last_child;
  }
  par.last_child = id;
  tree_.nodes_.push_back(node);
  return id;
}

void TreeBuilder::SetText(NodeId n, std::string_view text) {
  MD_CHECK(n >= 0 && static_cast<size_t>(n) < tree_.nodes_.size());
  if (tree_.texts_.size() <= static_cast<size_t>(n)) {
    tree_.texts_.resize(n + 1);
  }
  tree_.texts_[n] = std::string(text);
}

Tree TreeBuilder::Build() {
  MD_CHECK(!tree_.nodes_.empty());
  return std::move(tree_);
}

namespace {

bool SubtreesEqual(const Tree& a, NodeId na, const Tree& b, NodeId nb) {
  if (a.label_name(na) != b.label_name(nb)) return false;
  if (a.text(na) != b.text(nb)) return false;
  NodeId ca = a.first_child(na);
  NodeId cb = b.first_child(nb);
  while (ca != kNoNode && cb != kNoNode) {
    if (!SubtreesEqual(a, ca, b, cb)) return false;
    ca = a.next_sibling(ca);
    cb = b.next_sibling(cb);
  }
  return ca == kNoNode && cb == kNoNode;
}

void DebugRender(const Tree& t, NodeId n, std::string* out) {
  *out += t.label_name(n);
  if (!t.IsLeaf(n)) {
    *out += '(';
    bool first = true;
    for (NodeId c = t.first_child(n); c != kNoNode; c = t.next_sibling(c)) {
      if (!first) *out += ',';
      first = false;
      DebugRender(t, c, out);
    }
    *out += ')';
  }
}

}  // namespace

bool TreesEqual(const Tree& a, const Tree& b) {
  if (a.size() != b.size()) return false;
  return SubtreesEqual(a, a.root(), b, b.root());
}

std::string ToDebugString(const Tree& t) {
  std::string out;
  DebugRender(t, t.root(), &out);
  return out;
}

}  // namespace mdatalog::tree
