#include "src/tree/tree.h"

#include <functional>
#include <utility>

namespace mdatalog::tree {

Tree& Tree::operator=(const Tree& other) {
  if (this == &other) return *this;
  size_ = other.size_;
  frozen_ = other.frozen_;
  parent_ = other.parent_;
  first_child_ = other.first_child_;
  last_child_ = other.last_child_;
  prev_sibling_ = other.prev_sibling_;
  next_sibling_ = other.next_sibling_;
  label_ = other.label_;
  text_offsets_ = other.text_offsets_;
  text_base_ = other.text_base_;
  own_parent_ = other.own_parent_;
  own_first_child_ = other.own_first_child_;
  own_last_child_ = other.own_last_child_;
  own_prev_sibling_ = other.own_prev_sibling_;
  own_next_sibling_ = other.own_next_sibling_;
  own_label_ = other.own_label_;
  texts_ = other.texts_;
  labels_ = other.labels_;
  Rebind();
  return *this;
}

Tree& Tree::operator=(Tree&& other) noexcept {
  if (this == &other) return *this;
  size_ = other.size_;
  frozen_ = other.frozen_;
  parent_ = other.parent_;
  first_child_ = other.first_child_;
  last_child_ = other.last_child_;
  prev_sibling_ = other.prev_sibling_;
  next_sibling_ = other.next_sibling_;
  label_ = other.label_;
  text_offsets_ = other.text_offsets_;
  text_base_ = other.text_base_;
  own_parent_ = std::move(other.own_parent_);
  own_first_child_ = std::move(other.own_first_child_);
  own_last_child_ = std::move(other.own_last_child_);
  own_prev_sibling_ = std::move(other.own_prev_sibling_);
  own_next_sibling_ = std::move(other.own_next_sibling_);
  own_label_ = std::move(other.own_label_);
  texts_ = std::move(other.texts_);
  labels_ = std::move(other.labels_);
  other.size_ = 0;
  other.Rebind();
  Rebind();
  return *this;
}

void Tree::Rebind() {
  if (frozen_) return;  // views reference external memory; nothing to fix
  parent_ = own_parent_.data();
  first_child_ = own_first_child_.data();
  last_child_ = own_last_child_.data();
  prev_sibling_ = own_prev_sibling_.data();
  next_sibling_ = own_next_sibling_.data();
  label_ = own_label_.data();
  size_ = static_cast<int32_t>(own_label_.size());
}

Tree Tree::FromFrozenView(const FrozenView& view, util::Interner labels) {
  MD_CHECK(view.num_nodes > 0);
  Tree t;
  t.frozen_ = true;
  t.size_ = view.num_nodes;
  t.parent_ = view.parent;
  t.first_child_ = view.first_child;
  t.last_child_ = view.last_child;
  t.prev_sibling_ = view.prev_sibling;
  t.next_sibling_ = view.next_sibling;
  t.label_ = view.label;
  t.text_offsets_ = view.text_offsets;
  t.text_base_ = view.text_base;
  t.labels_ = std::move(labels);
  return t;
}

std::vector<NodeId> Tree::Children(NodeId n) const {
  std::vector<NodeId> out;
  for (NodeId c = first_child(n); c != kNoNode; c = next_sibling(c)) {
    out.push_back(c);
  }
  return out;
}

int32_t Tree::NumChildren(NodeId n) const {
  int32_t count = 0;
  for (NodeId c = first_child(n); c != kNoNode; c = next_sibling(c)) {
    ++count;
  }
  return count;
}

NodeId Tree::ChildK(NodeId n, int32_t k) const {
  MD_DCHECK(k >= 1);
  NodeId c = first_child(n);
  for (int32_t i = 1; i < k && c != kNoNode; ++i) c = next_sibling(c);
  return c;
}

int32_t Tree::Depth(NodeId n) const {
  int32_t d = 0;
  for (NodeId p = parent(n); p != kNoNode; p = parent(p)) ++d;
  return d;
}

bool Tree::IsAncestor(NodeId anc, NodeId n) const {
  for (NodeId p = parent(n); p != kNoNode; p = parent(p)) {
    if (p == anc) return true;
  }
  return false;
}

std::vector<NodeId> Tree::Preorder() const {
  std::vector<NodeId> order;
  order.reserve(size_);
  std::vector<NodeId> stack = {root()};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    order.push_back(n);
    // Push children right-to-left so the leftmost is visited first.
    std::vector<NodeId> kids = Children(n);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return order;
}

std::vector<int32_t> Tree::PreorderRanks() const {
  std::vector<int32_t> rank(size_, 0);
  std::vector<NodeId> order = Preorder();
  for (size_t i = 0; i < order.size(); ++i) {
    rank[order[i]] = static_cast<int32_t>(i);
  }
  return rank;
}

int32_t Tree::MaxArity() const {
  int32_t best = 0;
  for (NodeId n = 0; n < size(); ++n) {
    best = std::max(best, NumChildren(n));
  }
  return best;
}

int32_t Tree::Height() const {
  int32_t best = 0;
  for (NodeId n = 0; n < size(); ++n) {
    if (IsLeaf(n)) best = std::max(best, Depth(n));
  }
  return best;
}

std::string Tree::SubtreeText(NodeId n) const {
  std::string out;
  std::function<void(NodeId)> walk = [&](NodeId m) {
    out += text(m);
    for (NodeId c = first_child(m); c != kNoNode; c = next_sibling(c)) walk(c);
  };
  walk(n);
  return out;
}

int64_t Tree::ApproxBytes() const {
  int64_t bytes = labels_.ApproxBytes();
  if (frozen_) return bytes + static_cast<int64_t>(sizeof(Tree));
  for (const auto* col :
       {&own_parent_, &own_first_child_, &own_last_child_, &own_prev_sibling_,
        &own_next_sibling_, &own_label_}) {
    bytes += static_cast<int64_t>(col->capacity()) * sizeof(int32_t);
  }
  bytes += static_cast<int64_t>(texts_.capacity()) * sizeof(std::string);
  for (const std::string& t : texts_) {
    bytes += static_cast<int64_t>(t.capacity());
  }
  return bytes;
}

NodeId TreeBuilder::Root(std::string_view label) {
  MD_CHECK(tree_.own_label_.empty());
  tree_.own_parent_.push_back(kNoNode);
  tree_.own_first_child_.push_back(kNoNode);
  tree_.own_last_child_.push_back(kNoNode);
  tree_.own_prev_sibling_.push_back(kNoNode);
  tree_.own_next_sibling_.push_back(kNoNode);
  tree_.own_label_.push_back(tree_.labels_.Intern(label));
  return 0;
}

NodeId TreeBuilder::Child(NodeId parent, std::string_view label) {
  MD_CHECK(!tree_.own_label_.empty());
  MD_CHECK(parent >= 0 &&
           static_cast<size_t>(parent) < tree_.own_label_.size());
  const NodeId id = static_cast<NodeId>(tree_.own_label_.size());
  const NodeId prev = tree_.own_last_child_[parent];
  tree_.own_parent_.push_back(parent);
  tree_.own_first_child_.push_back(kNoNode);
  tree_.own_last_child_.push_back(kNoNode);
  tree_.own_prev_sibling_.push_back(prev);
  tree_.own_next_sibling_.push_back(kNoNode);
  tree_.own_label_.push_back(tree_.labels_.Intern(label));
  if (prev == kNoNode) {
    tree_.own_first_child_[parent] = id;
  } else {
    tree_.own_next_sibling_[prev] = id;
  }
  tree_.own_last_child_[parent] = id;
  return id;
}

void TreeBuilder::SetText(NodeId n, std::string_view text) {
  MD_CHECK(n >= 0 && static_cast<size_t>(n) < tree_.own_label_.size());
  if (tree_.texts_.size() <= static_cast<size_t>(n)) {
    tree_.texts_.resize(n + 1);
  }
  tree_.texts_[n] = std::string(text);
}

Tree TreeBuilder::Build() {
  MD_CHECK(!tree_.own_label_.empty());
  tree_.Rebind();
  return std::move(tree_);
}

Tree CopySubtree(const Tree& t, NodeId n, std::vector<NodeId>* src_of_dst) {
  MD_CHECK(n >= 0 && n < t.size());
  if (src_of_dst != nullptr) src_of_dst->clear();
  TreeBuilder builder;
  std::function<void(NodeId, NodeId)> copy = [&](NodeId src,
                                                 NodeId dst_parent) {
    NodeId dst = dst_parent == kNoNode
                     ? builder.Root(t.label_name(src))
                     : builder.Child(dst_parent, t.label_name(src));
    if (src_of_dst != nullptr) src_of_dst->push_back(src);
    if (t.HasText(src)) builder.SetText(dst, t.text(src));
    for (NodeId c = t.first_child(src); c != kNoNode; c = t.next_sibling(c)) {
      copy(c, dst);
    }
  };
  copy(n, kNoNode);
  return builder.Build();
}

namespace {

bool SubtreesEqual(const Tree& a, NodeId na, const Tree& b, NodeId nb) {
  if (a.label_name(na) != b.label_name(nb)) return false;
  if (a.text(na) != b.text(nb)) return false;
  NodeId ca = a.first_child(na);
  NodeId cb = b.first_child(nb);
  while (ca != kNoNode && cb != kNoNode) {
    if (!SubtreesEqual(a, ca, b, cb)) return false;
    ca = a.next_sibling(ca);
    cb = b.next_sibling(cb);
  }
  return ca == kNoNode && cb == kNoNode;
}

void DebugRender(const Tree& t, NodeId n, std::string* out) {
  *out += t.label_name(n);
  if (!t.IsLeaf(n)) {
    *out += '(';
    bool first = true;
    for (NodeId c = t.first_child(n); c != kNoNode; c = t.next_sibling(c)) {
      if (!first) *out += ',';
      first = false;
      DebugRender(t, c, out);
    }
    *out += ')';
  }
}

}  // namespace

bool TreesEqual(const Tree& a, const Tree& b) {
  if (a.size() != b.size()) return false;
  return SubtreesEqual(a, a.root(), b, b.root());
}

std::string ToDebugString(const Tree& t) {
  std::string out;
  DebugRender(t, t.root(), &out);
  return out;
}

}  // namespace mdatalog::tree
