#pragma once

#include <string>
#include <string_view>

#include "src/tree/tree.h"

/// \file serialize.h
/// XML-style serialization of trees — the natural output format of a wrapper
/// (the paper's Section 6 computes XML trees from extraction results).

namespace mdatalog::tree {

/// Serializes `t` as XML. Node labels become element names; text payloads are
/// escaped and emitted before the children. `indent` < 0 means single-line.
std::string ToXml(const Tree& t, int32_t indent = 2);

/// Escapes &, <, >, " for XML output.
std::string XmlEscape(std::string_view s);

}  // namespace mdatalog::tree
