#include "src/tree/generator.h"

#include <functional>

namespace mdatalog::tree {

namespace {

const std::string& PickLabel(util::Rng& rng,
                             const std::vector<std::string>& labels) {
  MD_CHECK(!labels.empty());
  return labels[rng.Below(labels.size())];
}

}  // namespace

Tree RandomTree(util::Rng& rng, int32_t num_nodes,
                const std::vector<std::string>& labels, bool depth_bias) {
  MD_CHECK(num_nodes >= 1);
  TreeBuilder b;
  b.Root(PickLabel(rng, labels));
  // To keep construction in document order, parents must only ever be the
  // most recent node on the current rightmost path... that would restrict
  // shapes. Instead we generate a parent array first, then build recursively.
  std::vector<int32_t> parent(num_nodes, -1);
  for (int32_t i = 1; i < num_nodes; ++i) {
    if (depth_bias && i > 1 && rng.Chance(2, 3)) {
      // Attach near the end for deeper shapes.
      parent[i] = static_cast<int32_t>(rng.Range(i / 2, i - 1));
    } else {
      parent[i] = static_cast<int32_t>(rng.Below(i));
    }
  }
  std::vector<std::vector<int32_t>> kids(num_nodes);
  for (int32_t i = 1; i < num_nodes; ++i) kids[parent[i]].push_back(i);
  // Build depth-first so ids are in document order.
  std::function<void(int32_t, NodeId)> attach = [&](int32_t src, NodeId dst) {
    for (int32_t k : kids[src]) {
      NodeId built = b.Child(dst, PickLabel(rng, labels));
      attach(k, built);
    }
  };
  attach(0, 0);
  return b.Build();
}

Tree RandomBoundedArityTree(util::Rng& rng, int32_t num_nodes,
                            const std::vector<std::string>& labels,
                            int32_t max_arity) {
  MD_CHECK(num_nodes >= 1 && max_arity >= 1);
  std::vector<int32_t> parent(num_nodes, -1);
  std::vector<int32_t> arity(num_nodes, 0);
  std::vector<int32_t> open = {0};  // nodes with spare capacity
  for (int32_t i = 1; i < num_nodes; ++i) {
    size_t slot = rng.Below(open.size());
    int32_t p = open[slot];
    parent[i] = p;
    if (++arity[p] >= max_arity) {
      open[slot] = open.back();
      open.pop_back();
    }
    open.push_back(i);
  }
  std::vector<std::vector<int32_t>> kids(num_nodes);
  for (int32_t i = 1; i < num_nodes; ++i) kids[parent[i]].push_back(i);
  TreeBuilder b;
  b.Root(PickLabel(rng, labels));
  std::function<void(int32_t, NodeId)> attach = [&](int32_t src, NodeId dst) {
    for (int32_t k : kids[src]) {
      NodeId built = b.Child(dst, PickLabel(rng, labels));
      attach(k, built);
    }
  };
  attach(0, 0);
  return b.Build();
}

Tree CompleteBinaryTree(int32_t depth, const std::string& label) {
  MD_CHECK(depth >= 0);
  TreeBuilder b;
  NodeId root = b.Root(label);
  std::function<void(NodeId, int32_t)> grow = [&](NodeId n, int32_t d) {
    if (d == 0) return;
    NodeId left = b.Child(n, label);
    grow(left, d - 1);
    NodeId right = b.Child(n, label);
    grow(right, d - 1);
  };
  grow(root, depth);
  return b.Build();
}

Tree RandomFullBinaryTree(util::Rng& rng, int32_t num_internal,
                          const std::vector<std::string>& labels) {
  MD_CHECK(num_internal >= 0);
  // Grow a parent table by repeatedly splitting a random leaf.
  int32_t num_nodes = 2 * num_internal + 1;
  std::vector<int32_t> parent(num_nodes, -1);
  std::vector<std::vector<int32_t>> kids(num_nodes);
  std::vector<int32_t> leaves = {0};
  int32_t next = 1;
  for (int32_t s = 0; s < num_internal; ++s) {
    size_t slot = rng.Below(leaves.size());
    int32_t node = leaves[slot];
    leaves[slot] = leaves.back();
    leaves.pop_back();
    for (int32_t c = 0; c < 2; ++c) {
      parent[next] = node;
      kids[node].push_back(next);
      leaves.push_back(next);
      ++next;
    }
  }
  TreeBuilder b;
  b.Root(PickLabel(rng, labels));
  std::function<void(int32_t, NodeId)> attach = [&](int32_t src, NodeId dst) {
    for (int32_t k : kids[src]) {
      NodeId built = b.Child(dst, PickLabel(rng, labels));
      attach(k, built);
    }
  };
  attach(0, 0);
  return b.Build();
}

Tree ChainTree(int32_t num_nodes, const std::string& label) {
  MD_CHECK(num_nodes >= 1);
  TreeBuilder b;
  NodeId cur = b.Root(label);
  for (int32_t i = 1; i < num_nodes; ++i) cur = b.Child(cur, label);
  return b.Build();
}

Tree ChildrenWord(const std::string& root_label,
                  const std::vector<std::string>& child_labels) {
  TreeBuilder b;
  NodeId root = b.Root(root_label);
  for (const std::string& l : child_labels) b.Child(root, l);
  return b.Build();
}

Tree PaperExample32Tree() {
  return ChildrenWord("a", {"a", "a", "a"});
}

Tree PaperFigure1Tree() {
  TreeBuilder b;
  NodeId n1 = b.Root("a");
  b.Child(n1, "a");            // n2
  NodeId n3 = b.Child(n1, "a");
  b.Child(n3, "a");            // n4
  b.Child(n3, "a");            // n5
  b.Child(n1, "a");            // n6
  return b.Build();
}

Tree PaperExample49Tree() {
  return ChildrenWord("a", {"a", "a"});
}

}  // namespace mdatalog::tree
