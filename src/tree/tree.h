#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/check.h"
#include "src/util/interner.h"

/// \file tree.h
/// Finite ordered labeled trees — the data model of the paper (Section 2).
///
/// A Tree is an arena of nodes. Every node has a label from a finite alphabet
/// Σ (interned per tree), an ordered list of children, and an optional text
/// payload (used by the HTML front end for character data, cf. Remark 2.2).
///
/// The accessors expose exactly the relations of the unranked tree schema
///   τ_ur = ⟨dom, root, leaf, (label_a), firstchild, nextsibling, lastsibling⟩
/// plus the derived relations child, lastchild and firstsibling used in
/// Section 5/6. The pair (firstchild, nextsibling) *is* the binary encoding of
/// Figure 1; see binary.h for the explicit encode/decode round trip.

namespace mdatalog::tree {

/// Node handle: index into the tree's node arena. Stable for the lifetime of
/// the tree.
using NodeId = int32_t;
/// Interned label (alphabet symbol).
using LabelId = util::SymbolId;

inline constexpr NodeId kNoNode = -1;

/// One node record. Plain data; all navigation is by NodeId.
struct Node {
  LabelId label = util::kInvalidSymbol;
  NodeId parent = kNoNode;
  NodeId first_child = kNoNode;
  NodeId last_child = kNoNode;
  NodeId prev_sibling = kNoNode;
  NodeId next_sibling = kNoNode;
};

/// An immutable ordered labeled tree with at least one node (the paper's
/// trees are nonempty). Build with TreeBuilder.
class Tree {
 public:
  /// Number of nodes, |dom|.
  int32_t size() const { return static_cast<int32_t>(nodes_.size()); }

  /// The unique root node.
  NodeId root() const { return 0; }

  // --- τ_ur relations ------------------------------------------------------

  bool IsRoot(NodeId n) const { return n == 0; }
  bool IsLeaf(NodeId n) const { return at(n).first_child == kNoNode; }
  /// lastsibling: n is the rightmost child of its parent. The root is *not*
  /// a last sibling (it has no parent) — paper, Section 2.
  bool IsLastSibling(NodeId n) const {
    return n != 0 && at(n).next_sibling == kNoNode;
  }
  /// firstsibling: symmetric to lastsibling (used by Elog⁻, Definition 6.2).
  bool IsFirstSibling(NodeId n) const {
    return n != 0 && at(n).prev_sibling == kNoNode;
  }

  LabelId label(NodeId n) const { return at(n).label; }
  const std::string& label_name(NodeId n) const {
    return labels_.Name(at(n).label);
  }
  bool HasLabel(NodeId n, std::string_view name) const {
    return labels_.Find(name) == at(n).label;
  }

  NodeId parent(NodeId n) const { return at(n).parent; }
  NodeId first_child(NodeId n) const { return at(n).first_child; }
  NodeId last_child(NodeId n) const { return at(n).last_child; }
  NodeId next_sibling(NodeId n) const { return at(n).next_sibling; }
  NodeId prev_sibling(NodeId n) const { return at(n).prev_sibling; }

  // --- derived navigation --------------------------------------------------

  /// Children of n in sibling order. O(#children).
  std::vector<NodeId> Children(NodeId n) const;
  int32_t NumChildren(NodeId n) const;
  /// k-th child (1-based, as in the paper's child_k), or kNoNode.
  NodeId ChildK(NodeId n, int32_t k) const;
  /// Depth of n (root has depth 0).
  int32_t Depth(NodeId n) const;
  /// True iff `anc` is a proper ancestor of `n`.
  bool IsAncestor(NodeId anc, NodeId n) const;

  /// All nodes in document order (preorder, Example 2.5). O(size).
  std::vector<NodeId> Preorder() const;
  /// rank[n] = position of node n in document order.
  std::vector<int32_t> PreorderRanks() const;
  /// Maximum number of children over all nodes.
  int32_t MaxArity() const;
  /// Height (leaves-only tree has height 0).
  int32_t Height() const;

  // --- payload / alphabet --------------------------------------------------

  /// Text payload of n ("" unless set; used for HTML character data).
  const std::string& text(NodeId n) const;
  bool HasText(NodeId n) const {
    return static_cast<size_t>(n) < texts_.size() && !texts_[n].empty();
  }

  const util::Interner& labels() const { return labels_; }
  /// Label id for `name` in this tree's alphabet, or util::kInvalidSymbol.
  LabelId FindLabel(std::string_view name) const { return labels_.Find(name); }
  /// Concatenated text of n's subtree in document order.
  std::string SubtreeText(NodeId n) const;
  /// Approximate heap footprint in bytes (nodes, texts, label alphabet) —
  /// used by the serving runtime's document-cache byte accounting.
  int64_t ApproxBytes() const;

 private:
  friend class TreeBuilder;

  const Node& at(NodeId n) const {
    MD_DCHECK(n >= 0 && static_cast<size_t>(n) < nodes_.size());
    return nodes_[n];
  }

  std::vector<Node> nodes_;
  std::vector<std::string> texts_;  // may be shorter than nodes_ (lazy)
  util::Interner labels_;
  static const std::string kEmptyText;
};

/// Incremental construction of a Tree. Nodes are created root-first; children
/// are appended in left-to-right order. NodeIds are assigned in creation
/// order, so building in document order (as all parsers and generators here
/// do) makes NodeId order coincide with document order — but no code relies
/// on that; use Tree::PreorderRanks for order-sensitive logic.
class TreeBuilder {
 public:
  /// Creates the root. Must be called exactly once, first.
  NodeId Root(std::string_view label);
  /// Appends a new rightmost child under `parent`.
  NodeId Child(NodeId parent, std::string_view label);
  /// Sets the text payload of a node.
  void SetText(NodeId n, std::string_view text);

  int32_t size() const { return static_cast<int32_t>(tree_.nodes_.size()); }
  bool has_root() const { return !tree_.nodes_.empty(); }

  /// Finalizes the tree. The builder must not be reused afterwards.
  Tree Build();

 private:
  Tree tree_;
};

/// Structural + label + text equality (labels compared by name, so trees with
/// different interners compare correctly).
bool TreesEqual(const Tree& a, const Tree& b);

/// One-line debug rendering, e.g. "a(b,c(d))".
std::string ToDebugString(const Tree& t);

}  // namespace mdatalog::tree
