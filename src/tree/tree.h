#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/check.h"
#include "src/util/interner.h"

/// \file tree.h
/// Finite ordered labeled trees — the data model of the paper (Section 2).
///
/// A Tree is a structure-of-arrays node arena: six parallel int32 columns
/// (parent, first_child, last_child, prev_sibling, next_sibling, label — the
/// untangle `baseTree_t` idiom of preallocated uint32 arrays), an optional
/// text payload per node, and an interned label alphabet Σ. Every column is
/// offsets-not-pointers, so a finished tree freezes into one relocatable
/// blob: the accessors read through column pointers that reference either
/// the tree's own vectors (built trees) or an external read-only region
/// (frozen trees mmap'd back by src/store/ — zero copies, zero parsing).
///
/// The accessors expose exactly the relations of the unranked tree schema
///   τ_ur = ⟨dom, root, leaf, (label_a), firstchild, nextsibling, lastsibling⟩
/// plus the derived relations child, lastchild and firstsibling used in
/// Section 5/6. The pair (firstchild, nextsibling) *is* the binary encoding of
/// Figure 1; see binary.h for the explicit encode/decode round trip.

namespace mdatalog::tree {

/// Node handle: index into the tree's node arena. Stable for the lifetime of
/// the tree.
using NodeId = int32_t;
/// Interned label (alphabet symbol).
using LabelId = util::SymbolId;

inline constexpr NodeId kNoNode = -1;

/// An immutable ordered labeled tree with at least one node (the paper's
/// trees are nonempty). Build with TreeBuilder, or rehydrate a frozen one
/// with FromFrozenView.
class Tree {
 public:
  Tree() = default;
  Tree(const Tree& other) { *this = other; }
  Tree(Tree&& other) noexcept { *this = std::move(other); }
  Tree& operator=(const Tree& other);
  Tree& operator=(Tree&& other) noexcept;

  /// Borrowed column views over a frozen tree blob. All arrays have
  /// `num_nodes` entries except text_offsets (num_nodes + 1, prefix offsets
  /// into text_base; both may be null when no node carries text). The
  /// referenced memory must outlive every Tree built from the view — the
  /// corpus store keeps its mapping alive for exactly this reason.
  struct FrozenView {
    int32_t num_nodes = 0;
    const int32_t* parent = nullptr;
    const int32_t* first_child = nullptr;
    const int32_t* last_child = nullptr;
    const int32_t* prev_sibling = nullptr;
    const int32_t* next_sibling = nullptr;
    const int32_t* label = nullptr;
    const uint32_t* text_offsets = nullptr;
    const char* text_base = nullptr;
  };
  /// A zero-copy tree over `view`: node columns and texts are read in place;
  /// only the (small) label alphabet is owned. See src/store/.
  static Tree FromFrozenView(const FrozenView& view, util::Interner labels);

  /// The tree's own columns, for freezing. Valid while the tree is alive.
  /// Texts are not part of the view (built trees hold them per node) — a
  /// packer serializes them through text().
  struct Columns {
    const int32_t* parent;
    const int32_t* first_child;
    const int32_t* last_child;
    const int32_t* prev_sibling;
    const int32_t* next_sibling;
    const int32_t* label;
  };
  Columns columns() const {
    return {parent_, first_child_, last_child_, prev_sibling_, next_sibling_,
            label_};
  }
  /// True iff the node columns live in an external (mmap'd) region.
  bool frozen() const { return frozen_; }

  /// Number of nodes, |dom|.
  int32_t size() const { return size_; }

  /// The unique root node.
  NodeId root() const { return 0; }

  // --- τ_ur relations ------------------------------------------------------

  bool IsRoot(NodeId n) const { return n == 0; }
  bool IsLeaf(NodeId n) const { return first_child(n) == kNoNode; }
  /// lastsibling: n is the rightmost child of its parent. The root is *not*
  /// a last sibling (it has no parent) — paper, Section 2.
  bool IsLastSibling(NodeId n) const {
    return n != 0 && next_sibling(n) == kNoNode;
  }
  /// firstsibling: symmetric to lastsibling (used by Elog⁻, Definition 6.2).
  bool IsFirstSibling(NodeId n) const {
    return n != 0 && prev_sibling(n) == kNoNode;
  }

  LabelId label(NodeId n) const {
    MD_DCHECK(InRange(n));
    return label_[n];
  }
  const std::string& label_name(NodeId n) const {
    return labels_.Name(label(n));
  }
  bool HasLabel(NodeId n, std::string_view name) const {
    return labels_.Find(name) == label(n);
  }

  NodeId parent(NodeId n) const {
    MD_DCHECK(InRange(n));
    return parent_[n];
  }
  NodeId first_child(NodeId n) const {
    MD_DCHECK(InRange(n));
    return first_child_[n];
  }
  NodeId last_child(NodeId n) const {
    MD_DCHECK(InRange(n));
    return last_child_[n];
  }
  NodeId next_sibling(NodeId n) const {
    MD_DCHECK(InRange(n));
    return next_sibling_[n];
  }
  NodeId prev_sibling(NodeId n) const {
    MD_DCHECK(InRange(n));
    return prev_sibling_[n];
  }

  // --- derived navigation --------------------------------------------------

  /// Children of n in sibling order. O(#children).
  std::vector<NodeId> Children(NodeId n) const;
  int32_t NumChildren(NodeId n) const;
  /// k-th child (1-based, as in the paper's child_k), or kNoNode.
  NodeId ChildK(NodeId n, int32_t k) const;
  /// Depth of n (root has depth 0).
  int32_t Depth(NodeId n) const;
  /// True iff `anc` is a proper ancestor of `n`.
  bool IsAncestor(NodeId anc, NodeId n) const;

  /// All nodes in document order (preorder, Example 2.5). O(size).
  std::vector<NodeId> Preorder() const;
  /// rank[n] = position of node n in document order.
  std::vector<int32_t> PreorderRanks() const;
  /// Maximum number of children over all nodes.
  int32_t MaxArity() const;
  /// Height (leaves-only tree has height 0).
  int32_t Height() const;

  // --- payload / alphabet --------------------------------------------------

  /// Text payload of n ("" unless set; used for HTML character data). For
  /// frozen trees this is a view into the mapped blob — no copy.
  std::string_view text(NodeId n) const {
    MD_DCHECK(InRange(n));
    if (frozen_) {
      if (text_offsets_ == nullptr) return {};
      return std::string_view(text_base_ + text_offsets_[n],
                              text_offsets_[n + 1] - text_offsets_[n]);
    }
    if (static_cast<size_t>(n) < texts_.size()) return texts_[n];
    return {};
  }
  bool HasText(NodeId n) const { return !text(n).empty(); }

  const util::Interner& labels() const { return labels_; }
  /// Label id for `name` in this tree's alphabet, or util::kInvalidSymbol.
  LabelId FindLabel(std::string_view name) const { return labels_.Find(name); }
  /// Concatenated text of n's subtree in document order.
  std::string SubtreeText(NodeId n) const;
  /// Approximate heap footprint in bytes (nodes, texts, label alphabet) —
  /// used by the serving runtime's document-cache byte accounting. Frozen
  /// trees report only their owned heap (the label alphabet): the node
  /// columns and texts live in the store's shared, kernel-reclaimable
  /// mapping, which the cache deliberately does not charge against its heap
  /// budget.
  int64_t ApproxBytes() const;

 private:
  friend class TreeBuilder;

  bool InRange(NodeId n) const {
    return n >= 0 && n < size_;
  }
  /// Points the column views at the owned vectors (no-op for frozen trees,
  /// whose views reference external memory). Must be called after any
  /// member-wise copy/move — vector buffers move with their vector, but a
  /// copy reallocates.
  void Rebind();

  int32_t size_ = 0;
  bool frozen_ = false;

  // Column views the accessors read; never null for a nonempty tree.
  const int32_t* parent_ = nullptr;
  const int32_t* first_child_ = nullptr;
  const int32_t* last_child_ = nullptr;
  const int32_t* prev_sibling_ = nullptr;
  const int32_t* next_sibling_ = nullptr;
  const int32_t* label_ = nullptr;
  const uint32_t* text_offsets_ = nullptr;  // frozen only; size_ + 1 entries
  const char* text_base_ = nullptr;         // frozen only

  // Owned storage (built trees; empty when frozen).
  std::vector<int32_t> own_parent_, own_first_child_, own_last_child_;
  std::vector<int32_t> own_prev_sibling_, own_next_sibling_, own_label_;
  std::vector<std::string> texts_;  // may be shorter than size_ (lazy)

  util::Interner labels_;
};

/// Incremental construction of a Tree. Nodes are created root-first; children
/// are appended in left-to-right order. NodeIds are assigned in creation
/// order, so building in document order (as all parsers and generators here
/// do) makes NodeId order coincide with document order — but no code relies
/// on that; use Tree::PreorderRanks for order-sensitive logic.
class TreeBuilder {
 public:
  /// Creates the root. Must be called exactly once, first.
  NodeId Root(std::string_view label);
  /// Appends a new rightmost child under `parent`.
  NodeId Child(NodeId parent, std::string_view label);
  /// Sets the text payload of a node.
  void SetText(NodeId n, std::string_view text);

  int32_t size() const { return static_cast<int32_t>(tree_.own_label_.size()); }
  bool has_root() const { return !tree_.own_label_.empty(); }

  // Read access to the partially-built tree. The streaming front (src/stream/)
  // emits results for nodes whose subtrees have closed while later siblings
  // are still being parsed — these let it read labels/texts/structure without
  // finalizing the builder.
  NodeId parent(NodeId n) const { return At(tree_.own_parent_, n); }
  NodeId first_child(NodeId n) const { return At(tree_.own_first_child_, n); }
  NodeId last_child(NodeId n) const { return At(tree_.own_last_child_, n); }
  NodeId prev_sibling(NodeId n) const { return At(tree_.own_prev_sibling_, n); }
  NodeId next_sibling(NodeId n) const { return At(tree_.own_next_sibling_, n); }
  const std::string& label_name(NodeId n) const {
    return tree_.labels_.Name(At(tree_.own_label_, n));
  }
  std::string_view text(NodeId n) const {
    if (static_cast<size_t>(n) < tree_.texts_.size()) return tree_.texts_[n];
    return {};
  }

  /// Finalizes the tree. The builder must not be reused afterwards.
  Tree Build();

 private:
  int32_t At(const std::vector<int32_t>& col, NodeId n) const {
    MD_DCHECK(n >= 0 && static_cast<size_t>(n) < col.size());
    return col[n];
  }

  Tree tree_;
};

/// A deep copy of the subtree of `t` rooted at `n`, as its own tree (labels
/// and texts included; the new root is node 0). Nodes are copied in preorder,
/// so when `t` itself was built in document order, the copy's NodeIds are the
/// source ids renumbered by preorder rank. `src_of_dst`, when non-null, is
/// filled with the source NodeId of every destination node (indexed by
/// destination id) so callers can remap per-node side tables.
Tree CopySubtree(const Tree& t, NodeId n,
                 std::vector<NodeId>* src_of_dst = nullptr);

/// Structural + label + text equality (labels compared by name, so trees with
/// different interners compare correctly).
bool TreesEqual(const Tree& a, const Tree& b);

/// One-line debug rendering, e.g. "a(b,c(d))".
std::string ToDebugString(const Tree& t);

}  // namespace mdatalog::tree
