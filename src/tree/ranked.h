#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/tree/tree.h"
#include "src/util/status.h"

/// \file ranked.h
/// Ranked alphabets and ranked-tree validation (Section 2).
///
/// A ranked alphabet partitions Σ into Σ_0 … Σ_K; a node labeled a ∈ Σ_k must
/// have exactly k children. The query-automata module and the ranked TMNF
/// chase work on plain Trees through the child_k accessors; RankedAlphabet
/// provides optional strict validation and the schema constant K.

namespace mdatalog::tree {

/// Σ with an arity per symbol.
class RankedAlphabet {
 public:
  /// Declares symbol `name` with rank `rank` (>= 0).
  void Declare(const std::string& name, int32_t rank);

  /// Rank of `name`, or -1 if undeclared.
  int32_t RankOf(const std::string& name) const;

  /// The maximum rank K.
  int32_t MaxRank() const { return max_rank_; }

  /// Checks that every node of `t` has exactly RankOf(label) children.
  util::Status Validate(const Tree& t) const;

 private:
  std::map<std::string, int32_t> ranks_;
  int32_t max_rank_ = 0;
};

/// Checks the weaker schema constraint used by the query-automata module:
/// every node has at most `max_rank` children (the paper's Examples 4.9/4.21
/// reuse one label at several arities, so strict ranking is optional there).
util::Status ValidateMaxArity(const Tree& t, int32_t max_rank);

}  // namespace mdatalog::tree
