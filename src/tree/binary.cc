#include "src/tree/binary.h"

#include <functional>

namespace mdatalog::tree {

BinaryTree EncodeFirstChildNextSibling(const Tree& t) {
  BinaryTree b;
  b.nodes.resize(t.size());
  b.root = t.root();
  for (NodeId n = 0; n < t.size(); ++n) {
    b.nodes[n].label = t.label_name(n);
    b.nodes[n].left = t.first_child(n);
    b.nodes[n].right = t.next_sibling(n);
  }
  return b;
}

util::Result<Tree> DecodeFirstChildNextSibling(const BinaryTree& b) {
  if (b.root == kNoNode || b.nodes.empty()) {
    return util::Status::InvalidArgument("empty binary tree");
  }
  if (b.nodes[b.root].right != kNoNode) {
    return util::Status::InvalidArgument(
        "root of a firstchild/nextsibling encoding must have no right child");
  }
  TreeBuilder builder;
  // Rebuild in document order: left child = first child, then follow the
  // right-spine of that child for its siblings.
  std::function<void(NodeId, NodeId)> attach_children =
      [&](NodeId src, NodeId built_parent) {
        for (NodeId c = b.nodes[src].left; c != kNoNode;
             c = b.nodes[c].right) {
          NodeId built = builder.Child(built_parent, b.nodes[c].label);
          attach_children(c, built);
        }
      };
  NodeId built_root = builder.Root(b.nodes[b.root].label);
  attach_children(b.root, built_root);
  return builder.Build();
}

std::string ToDebugString(const BinaryTree& b) {
  std::string out;
  for (size_t n = 0; n < b.nodes.size(); ++n) {
    if (b.nodes[n].left != kNoNode) {
      out += "n" + std::to_string(n) + " -fc-> n" +
             std::to_string(b.nodes[n].left) + "\n";
    }
    if (b.nodes[n].right != kNoNode) {
      out += "n" + std::to_string(n) + " -ns-> n" +
             std::to_string(b.nodes[n].right) + "\n";
    }
  }
  return out;
}

}  // namespace mdatalog::tree
