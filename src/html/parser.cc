#include "src/html/parser.h"

#include <algorithm>
#include <functional>
#include <set>

#include "src/html/tokenizer.h"

namespace mdatalog::html {

bool IsVoidElement(const std::string& name) {
  static const std::set<std::string> kVoid = {
      "area", "base", "br",    "col",  "embed", "hr",   "img",
      "input", "link", "meta", "param", "source", "track", "wbr"};
  return kVoid.count(name) > 0;
}

const std::vector<std::string>& AutoCloses(const std::string& name) {
  static const std::vector<std::string> kNone = {};
  static const std::vector<std::string> kLi = {"li"};
  static const std::vector<std::string> kCell = {"td", "th"};
  static const std::vector<std::string> kRow = {"tr", "td", "th"};
  static const std::vector<std::string> kP = {"p"};
  static const std::vector<std::string> kOption = {"option"};
  static const std::vector<std::string> kDef = {"dd", "dt"};
  if (name == "li") return kLi;
  if (name == "td" || name == "th") return kCell;
  if (name == "tr") return kRow;
  if (name == "p") return kP;
  if (name == "option") return kOption;
  if (name == "dd" || name == "dt") return kDef;
  return kNone;
}

std::string Document::GetAttr(tree::NodeId n, const std::string& name) const {
  if (static_cast<size_t>(n) >= attrs_.size()) return "";
  for (const auto& [k, v] : attrs_[n]) {
    if (k == name) return v;
  }
  return "";
}

bool Document::HasAttr(tree::NodeId n, const std::string& name) const {
  if (static_cast<size_t>(n) >= attrs_.size()) return false;
  for (const auto& [k, v] : attrs_[n]) {
    if (k == name) return true;
  }
  return false;
}

std::vector<tree::NodeId> Document::NodesWithAttr(
    const std::string& name, const std::string& value) const {
  std::vector<tree::NodeId> out;
  for (tree::NodeId n = 0; n < tree_.size(); ++n) {
    if (GetAttr(n, name) == value) out.push_back(n);
  }
  return out;
}

util::Result<Document> ParseHtml(std::string_view html) {
  std::vector<Token> tokens = Tokenize(html);

  // First pass: count top-level elements to decide on a synthetic root.
  // We simply always build under a "#document" root, then strip it if it has
  // exactly one element child and no text children.
  tree::TreeBuilder builder;
  std::vector<std::vector<std::pair<std::string, std::string>>> attrs;
  tree::NodeId root = builder.Root("#document");
  attrs.push_back({});

  // Stack of open nodes: (node id, tag name).
  std::vector<std::pair<tree::NodeId, std::string>> stack = {
      {root, "#document"}};

  auto open_node = [&](const std::string& tag,
                       const std::vector<Attribute>& tag_attrs) {
    tree::NodeId n = builder.Child(stack.back().first, tag);
    attrs.resize(n + 1);
    for (const Attribute& a : tag_attrs) attrs[n].emplace_back(a.name, a.value);
    return n;
  };

  for (const Token& token : tokens) {
    switch (token.type) {
      case Token::Type::kDoctype:
      case Token::Type::kComment:
        break;  // not represented in the document tree
      case Token::Type::kText: {
        tree::NodeId n = open_node("#text", {});
        builder.SetText(n, token.data);
        break;
      }
      case Token::Type::kStartTag: {
        // Pop every implicitly-closed element (e.g. <tr> closes an open td
        // and then the open tr).
        const std::vector<std::string>& closes = AutoCloses(token.data);
        while (stack.size() > 1 &&
               std::find(closes.begin(), closes.end(),
                         stack.back().second) != closes.end()) {
          stack.pop_back();
        }
        tree::NodeId n = open_node(token.data, token.attrs);
        bool is_void = IsVoidElement(token.data);
        if (!is_void && !token.self_closing) stack.emplace_back(n, token.data);
        break;
      }
      case Token::Type::kEndTag: {
        // Find the matching open tag; ignore the end tag if there is none.
        int32_t match = -1;
        for (int32_t i = static_cast<int32_t>(stack.size()) - 1; i >= 1; --i) {
          if (stack[i].second == token.data) {
            match = i;
            break;
          }
        }
        if (match >= 1) stack.resize(match);
        break;
      }
    }
  }

  tree::Tree full = builder.Build();
  if (full.size() == 1) {
    return util::Status::InvalidArgument("no content in HTML input");
  }
  // Strip the synthetic root when the document has a unique top-level node
  // (node ids shift down by one: the builder appends in document order, so
  // the preorder copy renumbers node k to k-1).
  if (full.NumChildren(full.root()) == 1) {
    std::vector<tree::NodeId> src_of_dst;
    tree::Tree stripped =
        tree::CopySubtree(full, full.first_child(full.root()), &src_of_dst);
    std::vector<std::vector<std::pair<std::string, std::string>>> new_attrs;
    new_attrs.reserve(src_of_dst.size());
    for (tree::NodeId src : src_of_dst) new_attrs.push_back(attrs[src]);
    return Document(std::move(stripped), std::move(new_attrs));
  }
  return Document(std::move(full), std::move(attrs));
}

tree::Tree ProjectAttributeIntoLabels(const Document& doc,
                                      const std::string& attr) {
  const tree::Tree& t = doc.tree();
  tree::TreeBuilder builder;
  std::function<void(tree::NodeId, tree::NodeId)> copy =
      [&](tree::NodeId src, tree::NodeId dst_parent) {
        std::string label = t.label_name(src);
        std::string value = doc.GetAttr(src, attr);
        if (!value.empty()) label += "@" + value;
        tree::NodeId dst = dst_parent == tree::kNoNode
                               ? builder.Root(label)
                               : builder.Child(dst_parent, label);
        if (t.HasText(src)) builder.SetText(dst, t.text(src));
        for (tree::NodeId c = t.first_child(src); c != tree::kNoNode;
             c = t.next_sibling(c)) {
          copy(c, dst);
        }
      };
  copy(t.root(), tree::kNoNode);
  return builder.Build();
}

}  // namespace mdatalog::html
