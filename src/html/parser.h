#pragma once

#include <string>
#include <vector>

#include "src/tree/tree.h"
#include "src/util/result.h"

/// \file parser.h
/// HTML tree construction: the pre-parsed document trees that tree-based
/// wrapping (Section 1) presupposes.
///
/// The builder is forgiving in the usual browser ways: void elements never
/// nest; li/p/td/th/tr/option/dd/dt auto-close their predecessors; unmatched
/// end tags are ignored; everything still open at end of input is closed.
/// Text runs become leaf nodes labeled "#text" whose payload is the decoded
/// character data — the "lists of character symbols modeled as subtrees"
/// reading of Remark 2.2.

namespace mdatalog::html {

/// A parsed document: the label tree plus per-node attribute lists (kept out
/// of the Tree so the τ_ur schema stays exactly the paper's).
class Document {
 public:
  Document(tree::Tree t, std::vector<std::vector<std::pair<std::string,
           std::string>>> attrs)
      : tree_(std::move(t)), attrs_(std::move(attrs)) {}

  const tree::Tree& tree() const { return tree_; }

  /// Value of attribute `name` on `n`, or "" if absent.
  std::string GetAttr(tree::NodeId n, const std::string& name) const;
  bool HasAttr(tree::NodeId n, const std::string& name) const;

  /// All nodes whose attribute `name` equals `value`.
  std::vector<tree::NodeId> NodesWithAttr(const std::string& name,
                                          const std::string& value) const;

 private:
  tree::Tree tree_;
  std::vector<std::vector<std::pair<std::string, std::string>>> attrs_;
};

/// Parses HTML into a Document. If the markup has several top-level nodes, a
/// synthetic root labeled "#document" is added (the paper's trees have a
/// unique root). Fails only on empty input.
util::Result<Document> ParseHtml(std::string_view html);

/// Remark 2.2: merge selected attributes into the node labels, producing a
/// plain tree whose alphabet is e.g. "div@sidebar" for <div class=sidebar> (the separator is '@' because '.' delimits Elog path steps).
/// Wrappers can then use ordinary label_<l> predicates on attribute values.
tree::Tree ProjectAttributeIntoLabels(const Document& doc,
                                      const std::string& attr);

/// The HTML void elements (never have children, never go on the open stack).
/// Shared between the batch parser and the streaming front so both build the
/// same tree shape for the same byte stream.
bool IsVoidElement(const std::string& name);

/// Returns the set of open tags that a start tag `name` implicitly closes
/// (e.g. a new <tr> closes an open td and then the open tr).
const std::vector<std::string>& AutoCloses(const std::string& name);

}  // namespace mdatalog::html
