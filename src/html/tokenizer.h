#pragma once

#include <string>
#include <vector>

#include "src/util/deadline.h"
#include "src/util/result.h"

/// \file tokenizer.h
/// A small, forgiving HTML tokenizer — the front end that turns Web page
/// bytes into the token stream consumed by the tree builder (parser.h). The
/// paper's whole premise is that wrappers operate on *pre-parsed* document
/// trees (Section 1); this module is that prerequisite substrate.
///
/// Supported: start/end tags, attributes (double-, single- and unquoted,
/// and bare), self-closing tags, comments, doctype, character data with
/// basic entity decoding (&amp; &lt; &gt; &quot; &apos; &nbsp; &#NN;), and
/// raw-text elements (script, style) whose content is not tokenized.
///
/// Two entry points share one implementation: the incremental
/// StreamTokenizer accepts the document in arbitrary chunks (a construct
/// split across a chunk boundary is buffered until enough bytes arrive),
/// and the batch Tokenize() is Feed(everything) + Finish(). The token
/// stream is therefore byte-identical regardless of chunking.

namespace mdatalog::html {

struct Attribute {
  std::string name;   ///< lowercased
  std::string value;  ///< entity-decoded
};

struct Token {
  enum class Type {
    kStartTag,
    kEndTag,
    kText,
    kComment,
    kDoctype,
  };
  Type type;
  std::string data;               ///< tag name (lowercased) or text payload
  std::vector<Attribute> attrs;   ///< kStartTag only
  bool self_closing = false;      ///< kStartTag only
};

/// Incremental tokenizer: call Feed() once per arriving chunk, then Finish()
/// exactly once at end of input. Completed tokens are appended to `out` as
/// soon as the bytes that finish them arrive; a construct that straddles the
/// current chunk boundary (an open tag, comment, doctype, raw-text element,
/// or a text run that the next construct would flush) is held until Feed()
/// receives the rest or Finish() applies end-of-input semantics.
///
/// Never fails on malformed markup (stray '<' becomes text; an unterminated
/// tag or comment is closed at end of input). The only failure mode is the
/// optional EvalControl firing, in which case the typed kDeadlineExceeded /
/// kCancelled status unwinds out of the parse itself and the tokenizer must
/// not be used further.
class StreamTokenizer {
 public:
  util::Status Feed(std::string_view chunk, std::vector<Token>* out,
                    const util::EvalControl* control = nullptr);
  util::Status Finish(std::vector<Token>* out,
                      const util::EvalControl* control = nullptr);

  bool finished() const { return finished_; }

  /// Bytes currently held back waiting for more input: the unconsumed prefix
  /// of a split construct plus any unflushed text run.
  size_t buffered_bytes() const { return buf_.size() + text_.size(); }

 private:
  enum class Scan { kToken, kStray, kNeedMore, kAborted };

  util::Status Drain(bool eof, std::vector<Token>* out,
                     const util::EvalControl* control);
  Scan ScanMarkup(size_t i, bool eof, util::EvalTicker* ticker, Token* token,
                  size_t* end);
  /// Raw-text (script/style) content handling; consumes from the front of
  /// buf_. Returns true when the raw element was closed (or eof discarded
  /// it) and normal scanning may resume.
  bool DrainRawText(bool eof, std::vector<Token>* out);
  void FlushText(std::vector<Token>* out);

  std::string buf_;        ///< unconsumed bytes of a split construct
  std::string text_;       ///< raw text run accumulated since the last flush
  std::string raw_closer_; ///< "</name" while inside a raw-text element
  std::string raw_name_;   ///< the raw-text element name, for its end tag
  util::Status scan_status_;  ///< failure captured inside ScanMarkup
  bool finished_ = false;
};

/// Tokenizes HTML in one call. Never fails on malformed markup.
std::vector<Token> Tokenize(std::string_view html);

/// Decodes the supported character entities in `text`.
std::string DecodeEntities(std::string_view text);

}  // namespace mdatalog::html
