#pragma once

#include <string>
#include <vector>

#include "src/util/result.h"

/// \file tokenizer.h
/// A small, forgiving HTML tokenizer — the front end that turns Web page
/// bytes into the token stream consumed by the tree builder (parser.h). The
/// paper's whole premise is that wrappers operate on *pre-parsed* document
/// trees (Section 1); this module is that prerequisite substrate.
///
/// Supported: start/end tags, attributes (double-, single- and unquoted,
/// and bare), self-closing tags, comments, doctype, character data with
/// basic entity decoding (&amp; &lt; &gt; &quot; &apos; &nbsp; &#NN;), and
/// raw-text elements (script, style) whose content is not tokenized.

namespace mdatalog::html {

struct Attribute {
  std::string name;   ///< lowercased
  std::string value;  ///< entity-decoded
};

struct Token {
  enum class Type {
    kStartTag,
    kEndTag,
    kText,
    kComment,
    kDoctype,
  };
  Type type;
  std::string data;               ///< tag name (lowercased) or text payload
  std::vector<Attribute> attrs;   ///< kStartTag only
  bool self_closing = false;      ///< kStartTag only
};

/// Tokenizes HTML. Never fails on malformed markup (stray '<' becomes text;
/// an unterminated tag or comment is closed at end of input).
std::vector<Token> Tokenize(std::string_view html);

/// Decodes the supported character entities in `text`.
std::string DecodeEntities(std::string_view text);

}  // namespace mdatalog::html
