#pragma once

#include <string>

#include "src/util/rng.h"

/// \file synthetic.h
/// Synthetic Web document generators.
///
/// The paper's motivating workloads are live Web pages (the Lixto demos wrap
/// eBay-style listings). This environment has no network access, so these
/// generators produce parameterized HTML with realistic nesting and layout
/// noise; the wrapper code paths (parse → document tree → monadic datalog /
/// Elog⁻ evaluation) are identical to wrapping real pages — only the byte
/// source differs (see DESIGN.md, substitutions).

namespace mdatalog::html {

struct CatalogOptions {
  int32_t num_items = 10;
  /// Insert advertisement rows between items (layout noise wrappers must
  /// skip).
  bool with_ads = false;
  /// Use an alternative page skeleton (extra wrapper divs, moved navigation)
  /// to exercise wrapper robustness under layout change.
  bool alt_layout = false;
};

/// An eBay-style product listing: a table of items, each row with name,
/// price and seller cells (class attributes name the roles).
std::string ProductCatalogPage(util::Rng& rng, const CatalogOptions& options);

/// A news index: repeated <div class=article> blocks with headline link,
/// summary paragraph and date span.
std::string NewsIndexPage(util::Rng& rng, int32_t num_articles);

/// A discussion board with nested <ul>/<li> threads up to `depth`.
std::string NestedBoardPage(util::Rng& rng, int32_t depth, int32_t fanout);

}  // namespace mdatalog::html
