#include "src/html/synthetic.h"

#include <functional>

#include "src/util/check.h"

namespace mdatalog::html {

namespace {

const char* kProductNames[] = {"Vintage Camera", "Mechanical Keyboard",
                               "Graphing Calculator", "Road Bike",
                               "Espresso Machine", "Noise-cancelling Phones",
                               "Antique Clock", "USB Microscope"};
const char* kSellers[] = {"alice_shop", "bob-trading", "carol&sons",
                          "deals4u", "ebay_pro"};
const char* kHeadlines[] = {"Local Team Wins Championship",
                            "New Library Opens Downtown",
                            "Council Approves Budget",
                            "Startup Raises Series A",
                            "Museum Announces Exhibit"};

std::string Price(util::Rng& rng) {
  return "$" + std::to_string(5 + rng.Below(995)) + "." +
         std::to_string(10 + rng.Below(90));
}

}  // namespace

std::string ProductCatalogPage(util::Rng& rng, const CatalogOptions& options) {
  std::string out =
      "<!DOCTYPE html>\n<html>\n<head><title>Catalog</title>"
      "<style>.price { color: green; }</style></head>\n<body>\n";
  if (options.alt_layout) {
    out += "<div class=chrome><div class=banner>MegaMart</div>"
           "<ul class=nav><li>Home<li>Deals<li>Contact</ul></div>\n";
  } else {
    out += "<div class=header><h1>MegaMart Catalog</h1></div>\n"
           "<ul class=nav><li>Home<li>Deals<li>Contact</ul>\n";
  }
  if (options.alt_layout) out += "<div class=content-wrapper>\n";
  out += "<table class=items>\n";
  out += "<tr class=head><th>Item</th><th>Price</th><th>Seller</th></tr>\n";
  for (int32_t i = 0; i < options.num_items; ++i) {
    if (options.with_ads && i > 0 && i % 3 == 0) {
      out += "<tr class=ad><td colspan=3><b>Sponsored:</b> Buy more "
             "things!</td></tr>\n";
    }
    const char* name = kProductNames[rng.Below(std::size(kProductNames))];
    const char* seller = kSellers[rng.Below(std::size(kSellers))];
    out += "<tr class=item>";
    out += "<td class=name>" + std::string(name) + " #" +
           std::to_string(i + 1) + "</td>";
    out += "<td class=price>" + Price(rng) + "</td>";
    out += "<td class=seller>" + std::string(seller) + "</td>";
    out += "</tr>\n";
  }
  out += "</table>\n";
  if (options.alt_layout) out += "</div>\n";
  out += "<div class=footer>&copy; MegaMart &amp; partners</div>\n";
  out += "</body>\n</html>\n";
  return out;
}

std::string NewsIndexPage(util::Rng& rng, int32_t num_articles) {
  std::string out =
      "<html><head><title>The Daily Synthetic</title></head><body>"
      "<div class=masthead><h1>The Daily Synthetic</h1></div>"
      "<div class=stories>";
  for (int32_t i = 0; i < num_articles; ++i) {
    const char* headline = kHeadlines[rng.Below(std::size(kHeadlines))];
    out += "<div class=article>";
    out += "<h2><a href=\"/story/" + std::to_string(i) + "\">" +
           std::string(headline) + "</a></h2>";
    out += "<p class=summary>Story " + std::to_string(i + 1) +
           ": something happened, sources say.</p>";
    out += "<span class=date>2026-06-" +
           std::to_string(1 + rng.Below(28)) + "</span>";
    out += "</div>";
  }
  out += "</div><div class=footer>All the news that fits.</div>"
         "</body></html>";
  return out;
}

std::string NestedBoardPage(util::Rng& rng, int32_t depth, int32_t fanout) {
  MD_CHECK(depth >= 0 && fanout >= 1);
  std::string out =
      "<html><body><h1>Forum</h1><ul class=thread>";
  int32_t counter = 0;
  std::function<void(int32_t)> emit = [&](int32_t d) {
    int32_t replies = 1 + static_cast<int32_t>(rng.Below(fanout));
    for (int32_t i = 0; i < replies; ++i) {
      out += "<li><span class=post>post " + std::to_string(++counter) +
             "</span>";
      if (d > 0) {
        out += "<ul class=replies>";
        emit(d - 1);
        out += "</ul>";
      }
      out += "</li>";
    }
  };
  emit(depth);
  out += "</ul></body></html>";
  return out;
}

}  // namespace mdatalog::html
