#include "src/html/tokenizer.h"

#include <cctype>

namespace mdatalog::html {

namespace {

char ToLowerAscii(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

std::string LowerCase(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out += ToLowerAscii(c);
  return out;
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_' ||
         c == ':';
}

}  // namespace

void StreamTokenizer::FlushText(std::vector<Token>* out) {
  // Whitespace-only runs between tags carry no content.
  bool all_space = true;
  for (char c : text_) {
    if (!std::isspace(static_cast<unsigned char>(c))) {
      all_space = false;
      break;
    }
  }
  if (!text_.empty() && !all_space) {
    out->push_back({Token::Type::kText, DecodeEntities(text_), {}, false});
  }
  text_.clear();
}

/// Scans one markup construct starting at the '<' at buf_[i]. kToken means
/// `*token` is complete and `*end` is the first unconsumed index; kStray
/// means the '<' is literal text; kNeedMore (never with eof) means the
/// construct straddles the end of the buffer and must wait for more bytes —
/// the next Feed rescans it from scratch, which keeps every decision
/// identical to the batch scan over the full document. With eof the scan
/// applies exactly the historical end-of-input semantics (unterminated
/// constructs are closed at the end of the buffer).
StreamTokenizer::Scan StreamTokenizer::ScanMarkup(size_t i, bool eof,
                                                  util::EvalTicker* ticker,
                                                  Token* token, size_t* end) {
  const std::string& b = buf_;
  const size_t len = b.size();
  size_t p = i + 1;  // past '<'
  if (p >= len) return eof ? Scan::kStray : Scan::kNeedMore;
  if (b[p] == '!') {
    // "<!" or "<!-" at the buffer edge could still grow into "<!--".
    if (!eof && len - p < 3 && b.compare(p, len - p, "!--", len - p) == 0) {
      return Scan::kNeedMore;
    }
    if (b.compare(p, 3, "!--") == 0) {
      size_t close = b.find("-->", p + 3);
      if (close == std::string::npos && !eof) return Scan::kNeedMore;
      std::string body = b.substr(
          p + 3, close == std::string::npos ? std::string::npos
                                            : close - (p + 3));
      *end = close == std::string::npos ? len : close + 3;
      *token = {Token::Type::kComment, std::move(body), {}, false};
      return Scan::kToken;
    }
    // Doctype or other declaration.
    size_t close = b.find('>', p);
    if (close == std::string::npos && !eof) return Scan::kNeedMore;
    std::string body =
        b.substr(p + 1, close == std::string::npos ? std::string::npos
                                                   : close - p - 1);
    *end = close == std::string::npos ? len : close + 1;
    *token = {Token::Type::kDoctype, std::move(body), {}, false};
    return Scan::kToken;
  }
  bool closing = b[p] == '/';
  if (closing) ++p;
  if (p >= len) return eof ? Scan::kStray : Scan::kNeedMore;
  if (!std::isalpha(static_cast<unsigned char>(b[p]))) return Scan::kStray;
  size_t name_start = p;
  while (p < len && IsNameChar(b[p])) {
    ++p;
    if (scan_status_ = ticker->Tick(); !scan_status_.ok()) {
      return Scan::kAborted;
    }
  }
  std::string name = LowerCase(std::string_view(b).substr(name_start, p - name_start));

  Token t;
  t.type = closing ? Token::Type::kEndTag : Token::Type::kStartTag;
  t.data = name;

  // Attributes. Any scan that runs off the end of the buffer before the
  // closing '>' falls out of this loop with p == len, which is exactly the
  // batch end-of-input state — held back below unless eof.
  while (p < len && b[p] != '>') {
    if (scan_status_ = ticker->Tick(); !scan_status_.ok()) {
      return Scan::kAborted;
    }
    if (std::isspace(static_cast<unsigned char>(b[p]))) {
      ++p;
      continue;
    }
    if (b[p] == '/' && p + 1 < len && b[p + 1] == '>') {
      t.self_closing = true;
      ++p;
      continue;
    }
    if (!std::isalpha(static_cast<unsigned char>(b[p]))) {
      ++p;  // skip junk
      continue;
    }
    size_t attr_start = p;
    while (p < len && IsNameChar(b[p])) ++p;
    Attribute attr;
    attr.name =
        LowerCase(std::string_view(b).substr(attr_start, p - attr_start));
    while (p < len && std::isspace(static_cast<unsigned char>(b[p]))) {
      ++p;
    }
    if (p < len && b[p] == '=') {
      ++p;
      while (p < len && std::isspace(static_cast<unsigned char>(b[p]))) {
        ++p;
      }
      if (p < len && (b[p] == '"' || b[p] == '\'')) {
        char quote = b[p++];
        size_t vstart = p;
        while (p < len && b[p] != quote) {
          ++p;
          if (scan_status_ = ticker->Tick(); !scan_status_.ok()) {
            return Scan::kAborted;
          }
        }
        attr.value =
            DecodeEntities(std::string_view(b).substr(vstart, p - vstart));
        if (p < len) ++p;  // closing quote
      } else {
        size_t vstart = p;
        while (p < len && b[p] != '>' &&
               !std::isspace(static_cast<unsigned char>(b[p]))) {
          ++p;
          if (scan_status_ = ticker->Tick(); !scan_status_.ok()) {
            return Scan::kAborted;
          }
        }
        attr.value =
            DecodeEntities(std::string_view(b).substr(vstart, p - vstart));
      }
    }
    if (!closing) t.attrs.push_back(std::move(attr));
  }
  if (p >= len && !eof) return Scan::kNeedMore;  // tag split by the chunk edge
  if (p < len) ++p;  // consume '>'
  *end = p;
  *token = std::move(t);
  return Scan::kToken;
}

bool StreamTokenizer::DrainRawText(bool eof, std::vector<Token>* out) {
  size_t e = buf_.find(raw_closer_);
  if (e == std::string::npos) {
    if (!eof) {
      // Discard swallowed content; keep only the longest possible prefix of
      // the closer at the buffer edge (an occurrence overlapping the chunk
      // boundary has at most closer.size()-1 bytes in this buffer).
      size_t keep = raw_closer_.size() - 1;
      if (buf_.size() > keep) buf_.erase(0, buf_.size() - keep);
      return false;
    }
    // Closer never appears: content runs to end of input, no end tag.
    buf_.clear();
    raw_closer_.clear();
    raw_name_.clear();
    return true;
  }
  size_t gt = buf_.find('>', e);
  if (gt == std::string::npos && !eof) {
    buf_.erase(0, e);  // closer located; still waiting for its '>'
    return false;
  }
  buf_.erase(0, gt == std::string::npos ? buf_.size() : gt + 1);
  out->push_back({Token::Type::kEndTag, raw_name_, {}, false});
  raw_closer_.clear();
  raw_name_.clear();
  return true;
}

util::Status StreamTokenizer::Drain(bool eof, std::vector<Token>* out,
                                    const util::EvalControl* control) {
  util::EvalTicker ticker(control);
  for (;;) {
    if (!raw_closer_.empty()) {
      MD_RETURN_NOT_OK(ticker.Tick());
      if (!DrainRawText(eof, out)) return util::Status::OK();
    }
    size_t i = 0;
    bool entered_raw = false;
    while (i < buf_.size()) {
      MD_RETURN_NOT_OK(ticker.Tick());
      if (buf_[i] != '<') {
        text_ += buf_[i++];
        continue;
      }
      Token token;
      size_t end = 0;
      Scan r = ScanMarkup(i, eof, &ticker, &token, &end);
      if (r == Scan::kAborted) {
        buf_.erase(0, i);
        return scan_status_;
      }
      if (r == Scan::kNeedMore) {
        buf_.erase(0, i);
        return util::Status::OK();
      }
      if (r == Scan::kStray) {
        // A stray '<' is literal text.
        text_ += '<';
        ++i;
        continue;
      }
      FlushText(out);
      bool raw = token.type == Token::Type::kStartTag &&
                 (token.data == "script" || token.data == "style");
      if (raw) {
        // Raw-text elements swallow everything up to the matching end tag
        // (even when written self-closing, matching the batch scanner).
        raw_name_ = token.data;
        raw_closer_ = "</" + token.data;
      }
      out->push_back(std::move(token));
      i = end;
      if (raw) {
        entered_raw = true;
        break;
      }
    }
    buf_.erase(0, i);
    if (!entered_raw) return util::Status::OK();
  }
}

util::Status StreamTokenizer::Feed(std::string_view chunk,
                                   std::vector<Token>* out,
                                   const util::EvalControl* control) {
  if (finished_) {
    return util::Status::FailedPrecondition(
        "StreamTokenizer::Feed after Finish");
  }
  buf_.append(chunk);
  return Drain(/*eof=*/false, out, control);
}

util::Status StreamTokenizer::Finish(std::vector<Token>* out,
                                     const util::EvalControl* control) {
  if (finished_) {
    return util::Status::FailedPrecondition(
        "StreamTokenizer::Finish called twice");
  }
  finished_ = true;
  MD_RETURN_NOT_OK(Drain(/*eof=*/true, out, control));
  FlushText(out);
  return util::Status::OK();
}

std::string DecodeEntities(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size();) {
    if (text[i] != '&') {
      out += text[i++];
      continue;
    }
    size_t semi = text.find(';', i);
    if (semi == std::string_view::npos || semi - i > 8) {
      out += text[i++];
      continue;
    }
    std::string_view entity = text.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out += '&';
    } else if (entity == "lt") {
      out += '<';
    } else if (entity == "gt") {
      out += '>';
    } else if (entity == "quot") {
      out += '"';
    } else if (entity == "apos") {
      out += '\'';
    } else if (entity == "nbsp") {
      out += ' ';
    } else if (!entity.empty() && entity[0] == '#') {
      int32_t code = 0;
      bool ok = entity.size() > 1;
      for (size_t k = 1; k < entity.size(); ++k) {
        if (!std::isdigit(static_cast<unsigned char>(entity[k]))) {
          ok = false;
          break;
        }
        code = code * 10 + (entity[k] - '0');
      }
      if (!ok || code <= 0 || code > 127) {
        out += text[i++];
        continue;
      }
      out += static_cast<char>(code);
    } else {
      out += text[i++];
      continue;
    }
    i = semi + 1;
  }
  return out;
}

std::vector<Token> Tokenize(std::string_view html) {
  StreamTokenizer tokenizer;
  std::vector<Token> out;
  // Without an EvalControl the incremental scanner cannot fail.
  util::Status st = tokenizer.Feed(html, &out);
  if (st.ok()) st = tokenizer.Finish(&out);
  (void)st;
  return out;
}

}  // namespace mdatalog::html
