#include "src/html/tokenizer.h"

#include <cctype>

namespace mdatalog::html {

namespace {

char ToLowerAscii(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

std::string LowerCase(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out += ToLowerAscii(c);
  return out;
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_' ||
         c == ':';
}

class Tokenizer {
 public:
  explicit Tokenizer(std::string_view html) : html_(html) {}

  std::vector<Token> Run() {
    while (pos_ < html_.size()) {
      if (html_[pos_] == '<') {
        if (!TryTag()) {
          // A stray '<' is literal text.
          text_ += '<';
          ++pos_;
        }
      } else {
        text_ += html_[pos_++];
      }
    }
    FlushText();
    return std::move(tokens_);
  }

 private:
  void FlushText() {
    // Whitespace-only runs between tags carry no content.
    bool all_space = true;
    for (char c : text_) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        all_space = false;
        break;
      }
    }
    if (!text_.empty() && !all_space) {
      tokens_.push_back(
          {Token::Type::kText, DecodeEntities(text_), {}, false});
    }
    text_.clear();
  }

  bool TryTag() {
    size_t save = pos_;
    ++pos_;  // consume '<'
    if (pos_ >= html_.size()) {
      pos_ = save;
      return false;
    }
    if (html_.compare(pos_, 3, "!--") == 0) {
      FlushText();
      pos_ += 3;
      size_t end = html_.find("-->", pos_);
      std::string body(html_.substr(pos_, end == std::string_view::npos
                                              ? std::string_view::npos
                                              : end - pos_));
      pos_ = end == std::string_view::npos ? html_.size() : end + 3;
      tokens_.push_back({Token::Type::kComment, std::move(body), {}, false});
      return true;
    }
    if (html_[pos_] == '!') {  // doctype or other declaration
      FlushText();
      size_t end = html_.find('>', pos_);
      std::string body(html_.substr(
          pos_ + 1,
          end == std::string_view::npos ? std::string_view::npos
                                        : end - pos_ - 1));
      pos_ = end == std::string_view::npos ? html_.size() : end + 1;
      tokens_.push_back({Token::Type::kDoctype, std::move(body), {}, false});
      return true;
    }
    bool closing = html_[pos_] == '/';
    size_t p = pos_ + (closing ? 1 : 0);
    if (p >= html_.size() ||
        !std::isalpha(static_cast<unsigned char>(html_[p]))) {
      pos_ = save;
      return false;
    }
    size_t name_start = p;
    while (p < html_.size() && IsNameChar(html_[p])) ++p;
    std::string name = LowerCase(html_.substr(name_start, p - name_start));

    Token token;
    token.type = closing ? Token::Type::kEndTag : Token::Type::kStartTag;
    token.data = name;

    // Attributes.
    while (p < html_.size() && html_[p] != '>') {
      if (std::isspace(static_cast<unsigned char>(html_[p]))) {
        ++p;
        continue;
      }
      if (html_[p] == '/' && p + 1 < html_.size() && html_[p + 1] == '>') {
        token.self_closing = true;
        ++p;
        continue;
      }
      if (!std::isalpha(static_cast<unsigned char>(html_[p]))) {
        ++p;  // skip junk
        continue;
      }
      size_t attr_start = p;
      while (p < html_.size() && IsNameChar(html_[p])) ++p;
      Attribute attr;
      attr.name = LowerCase(html_.substr(attr_start, p - attr_start));
      while (p < html_.size() &&
             std::isspace(static_cast<unsigned char>(html_[p]))) {
        ++p;
      }
      if (p < html_.size() && html_[p] == '=') {
        ++p;
        while (p < html_.size() &&
               std::isspace(static_cast<unsigned char>(html_[p]))) {
          ++p;
        }
        if (p < html_.size() && (html_[p] == '"' || html_[p] == '\'')) {
          char quote = html_[p++];
          size_t vstart = p;
          while (p < html_.size() && html_[p] != quote) ++p;
          attr.value = DecodeEntities(html_.substr(vstart, p - vstart));
          if (p < html_.size()) ++p;  // closing quote
        } else {
          size_t vstart = p;
          while (p < html_.size() && html_[p] != '>' &&
                 !std::isspace(static_cast<unsigned char>(html_[p]))) {
            ++p;
          }
          attr.value = DecodeEntities(html_.substr(vstart, p - vstart));
        }
      }
      if (!closing) token.attrs.push_back(std::move(attr));
    }
    if (p < html_.size()) ++p;  // consume '>'
    pos_ = p;
    FlushText();
    tokens_.push_back(token);

    // Raw-text elements: swallow everything up to the matching end tag.
    if (!closing && (name == "script" || name == "style")) {
      std::string closer = "</" + name;
      size_t end = html_.find(closer, pos_);
      if (end == std::string_view::npos) {
        pos_ = html_.size();
      } else {
        size_t gt = html_.find('>', end);
        pos_ = gt == std::string_view::npos ? html_.size() : gt + 1;
        tokens_.push_back({Token::Type::kEndTag, name, {}, false});
      }
    }
    return true;
  }

  std::string_view html_;
  size_t pos_ = 0;
  std::string text_;
  std::vector<Token> tokens_;
};

}  // namespace

std::string DecodeEntities(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size();) {
    if (text[i] != '&') {
      out += text[i++];
      continue;
    }
    size_t semi = text.find(';', i);
    if (semi == std::string_view::npos || semi - i > 8) {
      out += text[i++];
      continue;
    }
    std::string_view entity = text.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out += '&';
    } else if (entity == "lt") {
      out += '<';
    } else if (entity == "gt") {
      out += '>';
    } else if (entity == "quot") {
      out += '"';
    } else if (entity == "apos") {
      out += '\'';
    } else if (entity == "nbsp") {
      out += ' ';
    } else if (!entity.empty() && entity[0] == '#') {
      int32_t code = 0;
      bool ok = entity.size() > 1;
      for (size_t k = 1; k < entity.size(); ++k) {
        if (!std::isdigit(static_cast<unsigned char>(entity[k]))) {
          ok = false;
          break;
        }
        code = code * 10 + (entity[k] - '0');
      }
      if (!ok || code <= 0 || code > 127) {
        out += text[i++];
        continue;
      }
      out += static_cast<char>(code);
    } else {
      out += text[i++];
      continue;
    }
    i = semi + 1;
  }
  return out;
}

std::vector<Token> Tokenize(std::string_view html) {
  return Tokenizer(html).Run();
}

}  // namespace mdatalog::html
