#include "src/qa/ranked_to_datalog.h"

#include <set>

#include "src/core/database.h"
#include "src/core/validate.h"

namespace mdatalog::qa {

namespace {

using core::Atom;
using core::MakeAtom;
using core::MakeRule;
using core::PredId;
using core::Program;
using core::Term;

constexpr State kNabla = -1;

std::string PairPredName(State q0, State q) {
  return "p" + (q0 == kNabla ? std::string("n") : std::to_string(q0)) + "_" +
         std::to_string(q);
}

/// Static evolution sets: evolve[d] ⊇ all states a node can carry while its
/// pair predicate's first component stays fixed, starting from
/// down-assignment d. evolve[num_states] is the root's set (start state,
/// δ_root, and up results).
std::vector<std::set<State>> ComputeEvolutionSets(const RankedQA& qa) {
  int32_t n = qa.num_states;
  std::vector<std::set<State>> evolve(n + 1);
  for (State d = 0; d < n; ++d) evolve[d].insert(d);
  evolve[n].insert(qa.start_state);

  auto up_compatible = [&](State q,
                           const std::vector<std::pair<State, std::string>>&
                               seq) {
    // ∃ δ↓(q, a, m) = ⟨d1..dm⟩ with seq[k].state ∈ evolve[dk] for all k.
    for (const auto& [key, assigned] : qa.delta_down) {
      const auto& [dq, label, arity] = key;
      if (dq != q || static_cast<size_t>(arity) != seq.size()) continue;
      bool all = true;
      for (size_t k = 0; k < seq.size(); ++k) {
        if (evolve[assigned[k]].count(seq[k].first) == 0) {
          all = false;
          break;
        }
      }
      if (all) return true;
    }
    return false;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (int32_t d = 0; d <= n; ++d) {
      std::vector<State> add;
      for (State q : evolve[d]) {
        for (const auto& [key, q2] : qa.delta_leaf) {
          if (key.first == q && evolve[d].count(q2) == 0) add.push_back(q2);
        }
        if (d == n) {
          for (const auto& [key, q2] : qa.delta_root) {
            if (key.first == q && evolve[d].count(q2) == 0) add.push_back(q2);
          }
        }
        for (const auto& [seq, q2] : qa.delta_up) {
          if (evolve[d].count(q2) == 0 && up_compatible(q, seq)) {
            add.push_back(q2);
          }
        }
      }
      for (State q : add) {
        if (evolve[d].insert(q).second) changed = true;
      }
    }
  }
  return evolve;
}

}  // namespace

util::Result<Program> RankedQAToDatalog(const RankedQA& qa) {
  MD_RETURN_NOT_OK(qa.Validate());
  Program program;
  auto& preds = program.preds();

  auto pair_pred = [&](State q0, State q) {
    return preds.MustIntern(PairPredName(q0, q), 1);
  };
  PredId root = preds.MustIntern("root", 1);
  PredId leaf = preds.MustIntern("leaf", 1);
  PredId accept = preds.MustIntern("accept", 1);
  PredId query = preds.MustIntern("query", 1);
  auto label_pred = [&](const std::string& l) {
    return preds.MustIntern(core::LabelPredName(l), 1);
  };
  auto child_pred = [&](int32_t k) {
    return preds.MustIntern("child" + std::to_string(k), 2);
  };

  std::vector<State> q0_range;
  q0_range.push_back(kNabla);
  for (State q = 0; q < qa.num_states; ++q) q0_range.push_back(q);

  Term x = Term::Var(0);

  // (1) Start state: ⟨∇, s⟩(x) ← root(x).
  program.AddRule(MakeRule(MakeAtom(pair_pred(kNabla, qa.start_state), {x}),
                           {MakeAtom(root, {x})}, {"x"}));

  // (2) Up transitions, restricted to compatible parent states q.
  std::vector<std::set<State>> evolve = ComputeEvolutionSets(qa);
  for (const auto& [seq, q_res] : qa.delta_up) {
    int32_t m = static_cast<int32_t>(seq.size());
    // Compatible parent states.
    std::set<State> compatible;
    for (const auto& [key, assigned] : qa.delta_down) {
      const auto& [dq, label, arity] = key;
      if (arity != m || compatible.count(dq) > 0) continue;
      bool all = true;
      for (int32_t k = 0; k < m; ++k) {
        if (evolve[assigned[k]].count(seq[k].first) == 0) {
          all = false;
          break;
        }
      }
      if (all) compatible.insert(dq);
    }
    for (State q0 : q0_range) {
      for (State q : compatible) {
        std::vector<Atom> body;
        std::vector<std::string> names = {"x"};
        body.push_back(MakeAtom(pair_pred(q0, q), {x}));
        for (int32_t k = 0; k < m; ++k) {
          Term xk = Term::Var(k + 1);
          names.push_back("x" + std::to_string(k + 1));
          body.push_back(MakeAtom(child_pred(k + 1), {x, xk}));
          body.push_back(MakeAtom(pair_pred(q, seq[k].first), {xk}));
          body.push_back(MakeAtom(label_pred(seq[k].second), {xk}));
        }
        program.AddRule(MakeRule(MakeAtom(pair_pred(q0, q_res), {x}),
                                 std::move(body), std::move(names)));
      }
    }
  }

  // (3) Down transitions: ⟨q, d_i⟩(xi) ← ⟨q0, q⟩(x), child_i(x, xi),
  //     label_a(x).
  for (const auto& [key, assigned] : qa.delta_down) {
    const auto& [q, label, arity] = key;
    for (int32_t i = 0; i < arity; ++i) {
      for (State q0 : q0_range) {
        Term xi = Term::Var(1);
        program.AddRule(
            MakeRule(MakeAtom(pair_pred(q, assigned[i]), {xi}),
                     {MakeAtom(pair_pred(q0, q), {x}),
                      MakeAtom(child_pred(i + 1), {x, xi}),
                      MakeAtom(label_pred(label), {x})},
                     {"x", "xi"}));
      }
    }
  }

  // (4) Root transitions: ⟨∇, q'⟩(x) ← ⟨∇, q⟩(x), label_a(x), root(x).
  for (const auto& [key, q2] : qa.delta_root) {
    program.AddRule(MakeRule(MakeAtom(pair_pred(kNabla, q2), {x}),
                             {MakeAtom(pair_pred(kNabla, key.first), {x}),
                              MakeAtom(label_pred(key.second), {x}),
                              MakeAtom(root, {x})},
                             {"x"}));
  }

  // (5) Leaf transitions: ⟨q0, q'⟩(x) ← ⟨q0, q⟩(x), label_a(x), leaf(x).
  for (const auto& [key, q2] : qa.delta_leaf) {
    for (State q0 : q0_range) {
      program.AddRule(MakeRule(MakeAtom(pair_pred(q0, q2), {x}),
                               {MakeAtom(pair_pred(q0, key.first), {x}),
                                MakeAtom(label_pred(key.second), {x}),
                                MakeAtom(leaf, {x})},
                               {"x"}));
    }
  }

  // (6) Acceptance: accept(x) ← root(x), ⟨q0, q⟩(x). for q ∈ F.
  for (State q : qa.final_states) {
    for (State q0 : q0_range) {
      program.AddRule(MakeRule(
          MakeAtom(accept, {x}),
          {MakeAtom(root, {x}), MakeAtom(pair_pred(q0, q), {x})}, {"x"}));
    }
  }

  // (7) Selection: query(x) ← ⟨q0, q⟩(x), label_a(x), accept(y).
  for (const auto& [q, label] : qa.selection) {
    for (State q0 : q0_range) {
      Term y = Term::Var(1);
      program.AddRule(MakeRule(MakeAtom(query, {x}),
                               {MakeAtom(pair_pred(q0, q), {x}),
                                MakeAtom(label_pred(label), {x}),
                                MakeAtom(accept, {y})},
                               {"x", "y"}));
    }
  }

  program.set_query_pred(query);
  // Pair predicates for unreachable (q0, q) combinations have no rules;
  // rules referencing them can never fire and would push the program outside
  // the tree signature (an extensional "p3_7" is meaningless).
  core::PruneUnderivableRules(&program);
  return program;
}

}  // namespace mdatalog::qa
