#pragma once

#include "src/core/ast.h"
#include "src/qa/ranked.h"
#include "src/util/result.h"

/// \file ranked_to_datalog.h
/// Theorem 4.11: every ranked query automaton translates (in LOGSPACE) into
/// an equivalent monadic datalog program over τ_rk.
///
/// The encoding uses predicates ⟨q0, q⟩ ("node currently carries state q;
/// its parent carried q0 the last time it was in a configuration", with
/// q0 = ∇ at the root), mirroring the four transition kinds plus acceptance
/// and the selection function — rules (1)–(7) of the proof.
///
/// One refinement keeps the output quadratic in |A| as the paper's
/// complexity claim requires (O(β⁴) for A_β, Example 4.21): for the up-rule
/// family, the parent state q is restricted to states *compatible* with the
/// children states of the δ↑ entry, i.e. some δ↓(q, a, m) assigns states
/// d_1..d_m whose static evolution sets can reach the entry's states. The
/// evolution sets overapproximate datalog-derivable pairs, so only rules
/// that could never fire are dropped.

namespace mdatalog::qa {

/// Translates `qa` to monadic datalog over τ_rk (child1..childK, root, leaf,
/// label_<l>). The query predicate is "query"; the predicate "accept" holds
/// of the root iff the automaton accepts.
util::Result<core::Program> RankedQAToDatalog(const RankedQA& qa);

}  // namespace mdatalog::qa
