#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/qa/ranked.h"
#include "src/tree/tree.h"
#include "src/util/result.h"

/// \file unranked.h
/// Strong unranked query automata, SQAu (Definition 4.12).
///
/// Compared to QAr, the transition functions become language-based:
///  * δ↓(q, a, ·) is a regular language L↓(q,a) ⊆ Q* of constant density 1,
///    provided — per Proposition 4.13 — as a finite union of expressions
///    u v* w (the UVW struct);
///  * δ↑ is given per result state q as an NFA for the regular language
///    L↑(q) ⊆ U*; the L↑(q) must partition U_up for determinism;
///  * stay transitions re-assign the children of a node in place, computed
///    by a 2DFA B over (state, label) pairs with a selection function λB
///    that must assign exactly one new state to every child during B's run;
///    at most one stay transition may happen per node.
///
/// The runner implements these semantics literally (validating density-1 and
/// determinism as it goes); the Theorem 4.14 translation is in
/// unranked_to_datalog.h.

namespace mdatalog::qa {

/// One subexpression u v* w of a down language L↓(q, a) (Proposition 4.13).
struct UVW {
  std::vector<State> u, v, w;
};

/// A letter of the up/stay alphabets: a (state, label) pair.
struct PairSymbol {
  State q;
  std::string label;
  auto operator<=>(const PairSymbol&) const = default;
};

/// NFA over PairSymbols (for the languages L↑(q)).
struct PairNfa {
  int32_t num_states = 0;
  int32_t start = 0;
  std::vector<int32_t> finals;
  std::map<std::pair<int32_t, PairSymbol>, std::vector<int32_t>> trans;

  bool Accepts(const std::vector<PairSymbol>& word) const;
};

/// The stay-transition 2DFA B with selection function λB.
struct TwoDfa {
  int32_t num_states = 0;
  int32_t start = 0;
  std::vector<int32_t> finals;  ///< halting states (checked on entry)
  struct Step {
    int32_t next;
    int32_t dir;  ///< -1 (left) or +1 (right)
  };
  std::map<std::pair<int32_t, PairSymbol>, Step> trans;
  /// λB: assignments made while reading; absent = ⊥.
  std::map<std::pair<int32_t, PairSymbol>, State> select;
};

class UnrankedQA {
 public:
  int32_t num_states = 0;
  State start_state = 0;
  std::vector<State> final_states;

  std::map<std::pair<State, std::string>, bool> up_partition;
  std::map<std::pair<State, std::string>, State> delta_leaf;
  std::map<std::pair<State, std::string>, State> delta_root;
  /// L↓(q, a) as a union of uv*w expressions.
  std::map<std::pair<State, std::string>, std::vector<UVW>> delta_down;
  /// L↑(q) per result state q.
  std::map<State, PairNfa> delta_up;
  std::optional<TwoDfa> stay;
  std::set<std::pair<State, std::string>> selection;

  bool InU(State q, const std::string& label) const {
    auto it = up_partition.find({q, label});
    return it != up_partition.end() && it->second;
  }
  bool IsFinal(State q) const {
    return std::find(final_states.begin(), final_states.end(), q) !=
           final_states.end();
  }

  util::Status Validate() const;
  int64_t Size() const;

  /// The unique word of length m in L↓(q,a), if any. InvalidArgument if two
  /// subexpressions yield *different* words of length m (density > 1).
  util::Result<std::vector<State>> DownWord(State q, const std::string& label,
                                            int32_t m) const;
};

/// Runs the SQAu on an unranked tree (cut/configuration semantics).
util::Result<QaRunResult> RunUnrankedQA(const UnrankedQA& qa,
                                        const tree::Tree& t,
                                        const QaRunOptions& options = {});

/// Unranked analogue of Example 4.9 / Example 3.2: selects roots of subtrees
/// with an even number of a-labeled nodes, on arbitrary unranked trees.
/// Down language (s↓)*, up languages = parity NFAs.
UnrankedQA EvenASQAu(const std::vector<std::string>& labels);

/// Example 4.15's down language L↓ = (q1 q0)* ∪ (q1 q0)* q1 packaged as a
/// complete automaton: the root assigns alternating states to its children
/// and the odd positions (1st, 3rd, …, state q1) are selected.
UnrankedQA OddPositionSQAu(const std::vector<std::string>& labels);

/// A stay-transition demo: the root's children are re-marked by a 2DFA that
/// walks them left to right, alternating two states; odd positions are
/// selected. Equivalent query to OddPositionSQAu, different machinery.
UnrankedQA StayOddPositionSQAu(const std::vector<std::string>& labels);

}  // namespace mdatalog::qa
