#include "src/qa/unranked.h"

#include "src/util/check.h"

namespace mdatalog::qa {

bool PairNfa::Accepts(const std::vector<PairSymbol>& word) const {
  std::set<int32_t> current = {start};
  for (const PairSymbol& sym : word) {
    std::set<int32_t> next;
    for (int32_t s : current) {
      auto it = trans.find({s, sym});
      if (it != trans.end()) next.insert(it->second.begin(), it->second.end());
    }
    current = std::move(next);
    if (current.empty()) return false;
  }
  for (int32_t f : finals) {
    if (current.count(f) > 0) return true;
  }
  return false;
}

util::Status UnrankedQA::Validate() const {
  auto check_state = [&](State q) { return q >= 0 && q < num_states; };
  if (!check_state(start_state)) {
    return util::Status::InvalidArgument("start state out of range");
  }
  for (const auto& [key, uvws] : delta_down) {
    if (InU(key.first, key.second)) {
      return util::Status::InvalidArgument("L↓ defined on a U-pair");
    }
    for (const UVW& e : uvws) {
      for (const auto* part : {&e.u, &e.v, &e.w}) {
        for (State s : *part) {
          if (!check_state(s)) {
            return util::Status::InvalidArgument("L↓ state out of range");
          }
        }
      }
    }
  }
  for (const auto& [key, q2] : delta_leaf) {
    if (InU(key.first, key.second)) {
      return util::Status::InvalidArgument("δ_leaf defined on a U-pair");
    }
    if (!check_state(q2)) {
      return util::Status::InvalidArgument("δ_leaf image out of range");
    }
  }
  for (const auto& [key, q2] : delta_root) {
    if (!InU(key.first, key.second)) {
      return util::Status::InvalidArgument("δ_root defined on a D-pair");
    }
    if (!check_state(q2)) {
      return util::Status::InvalidArgument("δ_root image out of range");
    }
  }
  for (const auto& [q, nfa] : delta_up) {
    if (!check_state(q)) {
      return util::Status::InvalidArgument("L↑ target out of range");
    }
    for (const auto& [key, targets] : nfa.trans) {
      if (!InU(key.second.q, key.second.label)) {
        return util::Status::InvalidArgument("L↑ reads a D-pair");
      }
      (void)targets;
    }
  }
  return util::Status::OK();
}

int64_t UnrankedQA::Size() const {
  int64_t size = num_states;
  for (const auto& [key, uvws] : delta_down) {
    for (const UVW& e : uvws) {
      size += 2 + static_cast<int64_t>(e.u.size() + e.v.size() + e.w.size());
    }
  }
  for (const auto& [q, nfa] : delta_up) {
    size += nfa.num_states + static_cast<int64_t>(nfa.trans.size());
  }
  if (stay.has_value()) {
    size += stay->num_states + static_cast<int64_t>(stay->trans.size());
  }
  size += 2 * static_cast<int64_t>(delta_leaf.size() + delta_root.size() +
                                   selection.size());
  return size;
}

util::Result<std::vector<State>> UnrankedQA::DownWord(
    State q, const std::string& label, int32_t m) const {
  auto it = delta_down.find({q, label});
  if (it == delta_down.end()) {
    return util::Status::NotFound("no down language");
  }
  std::vector<State> found;
  bool have = false;
  for (const UVW& e : it->second) {
    int64_t fixed = static_cast<int64_t>(e.u.size() + e.w.size());
    int64_t rest = m - fixed;
    if (rest < 0) continue;
    if (e.v.empty() && rest != 0) continue;
    if (!e.v.empty() && rest % static_cast<int64_t>(e.v.size()) != 0) continue;
    std::vector<State> word = e.u;
    if (!e.v.empty()) {
      for (int64_t k = 0; k < rest / static_cast<int64_t>(e.v.size()); ++k) {
        word.insert(word.end(), e.v.begin(), e.v.end());
      }
    }
    word.insert(word.end(), e.w.begin(), e.w.end());
    if (have && word != found) {
      return util::Status::InvalidArgument(
          "L↓ has density > 1: two distinct words of length " +
          std::to_string(m));
    }
    found = std::move(word);
    have = true;
  }
  if (!have) return util::Status::NotFound("no word of the required length");
  return found;
}

util::Result<QaRunResult> RunUnrankedQA(const UnrankedQA& qa,
                                        const tree::Tree& t,
                                        const QaRunOptions& options) {
  MD_RETURN_NOT_OK(qa.Validate());

  constexpr State kNoState = -1;
  std::vector<State> cut(t.size(), kNoState);
  std::vector<bool> stay_done(t.size(), false);
  cut[t.root()] = qa.start_state;

  QaRunResult result;
  std::set<tree::NodeId> selected;
  auto check_select = [&](tree::NodeId n) {
    if (qa.selection.count({cut[n], t.label_name(n)}) > 0) selected.insert(n);
  };
  check_select(t.root());

  std::vector<tree::NodeId> work = {t.root()};

  /// Runs the stay 2DFA on the children of `parent`. Returns true if it
  /// halted successfully and assigned exactly one state per child.
  auto run_stay = [&](tree::NodeId parent,
                      const std::vector<tree::NodeId>& kids)
      -> util::Result<bool> {
    if (!qa.stay.has_value()) return false;
    const TwoDfa& dfa = *qa.stay;
    int32_t m = static_cast<int32_t>(kids.size());
    std::vector<State> assigned(m, kNoState);
    int32_t pos = 0;  // 0-based child index
    int32_t s = dfa.start;
    int64_t budget = static_cast<int64_t>(dfa.num_states) * m * 4 + 16;
    bool halted = false;
    while (budget-- > 0) {
      if (std::find(dfa.finals.begin(), dfa.finals.end(), s) !=
          dfa.finals.end()) {
        halted = true;
        break;
      }
      // Walking past either end is reading an endmarker that accepts: the
      // 2DFA halts. Rejection is expressed by getting stuck (no transition).
      if (pos < 0 || pos >= m) {
        halted = true;
        break;
      }
      PairSymbol sym{cut[kids[pos]], t.label_name(kids[pos])};
      auto sel = dfa.select.find({s, sym});
      if (sel != dfa.select.end()) {
        if (assigned[pos] != kNoState && assigned[pos] != sel->second) {
          return util::Status::InvalidArgument(
              "stay 2DFA assigned two different states to one node");
        }
        assigned[pos] = sel->second;
      }
      auto step = dfa.trans.find({s, sym});
      if (step == dfa.trans.end()) return false;  // stuck: not in Ustay
      s = step->second.next;
      pos += step->second.dir;
    }
    if (!halted) return false;
    for (State a : assigned) {
      if (a == kNoState) {
        return util::Status::InvalidArgument(
            "stay 2DFA halted without assigning every child a state");
      }
    }
    for (int32_t i = 0; i < m; ++i) {
      cut[kids[i]] = assigned[i];
      check_select(kids[i]);
      work.push_back(kids[i]);
    }
    stay_done[parent] = true;
    if (options.trace) result.trace.push_back({"stay", parent});
    return true;
  };

  auto try_transition = [&](tree::NodeId n) -> util::Result<bool> {
    if (cut[n] == kNoState) return false;
    State q = cut[n];
    const std::string& a = t.label_name(n);
    if (!qa.InU(q, a)) {
      if (t.IsLeaf(n)) {
        auto it = qa.delta_leaf.find({q, a});
        if (it == qa.delta_leaf.end()) return false;
        cut[n] = it->second;
        if (options.trace) result.trace.push_back({"leaf", n});
        check_select(n);
        work.push_back(n);
        return true;
      }
      auto word = qa.DownWord(q, a, t.NumChildren(n));
      if (!word.ok()) {
        if (word.status().code() == util::StatusCode::kNotFound) return false;
        return word.status();
      }
      cut[n] = kNoState;
      int32_t i = 0;
      for (tree::NodeId c = t.first_child(n); c != tree::kNoNode;
           c = t.next_sibling(c), ++i) {
        cut[c] = (*word)[i];
        check_select(c);
        work.push_back(c);
      }
      if (options.trace) result.trace.push_back({"down", n});
      return true;
    }
    if (t.IsRoot(n)) {
      auto it = qa.delta_root.find({q, a});
      if (it == qa.delta_root.end()) return false;
      cut[n] = it->second;
      if (options.trace) result.trace.push_back({"root", n});
      check_select(n);
      work.push_back(n);
      return true;
    }
    // Up or stay at the parent.
    tree::NodeId parent = t.parent(n);
    std::vector<tree::NodeId> kids = t.Children(parent);
    std::vector<PairSymbol> word;
    for (tree::NodeId c : kids) {
      if (cut[c] == kNoState || !qa.InU(cut[c], t.label_name(c))) {
        return false;
      }
      word.push_back({cut[c], t.label_name(c)});
    }
    State up_target = kNoState;
    for (const auto& [q_res, nfa] : qa.delta_up) {
      if (nfa.Accepts(word)) {
        if (up_target != kNoState) {
          return util::Status::InvalidArgument(
              "nondeterministic SQAu: two L↑ languages accept one word");
        }
        up_target = q_res;
      }
    }
    if (up_target != kNoState) {
      for (tree::NodeId c : kids) cut[c] = kNoState;
      cut[parent] = up_target;
      if (options.trace) result.trace.push_back({"up", parent});
      check_select(parent);
      work.push_back(parent);
      return true;
    }
    if (!stay_done[parent]) return run_stay(parent, kids);
    return false;
  };

  bool progress = true;
  while (progress) {
    progress = false;
    std::vector<tree::NodeId> round = std::move(work);
    work.clear();
    if (round.empty()) {
      for (tree::NodeId n = 0; n < t.size(); ++n) {
        if (cut[n] != kNoState) round.push_back(n);
      }
    }
    for (tree::NodeId n : round) {
      MD_ASSIGN_OR_RETURN(bool fired, try_transition(n));
      if (fired) {
        progress = true;
        ++result.steps;
        if (result.steps > options.max_steps) {
          return util::Status::ResourceExhausted(
              "query automaton exceeded max_steps");
        }
      }
    }
    if (!progress && !work.empty()) progress = true;
  }

  result.accepted = cut[t.root()] != kNoState && qa.IsFinal(cut[t.root()]);
  if (result.accepted) {
    result.selected.assign(selected.begin(), selected.end());
  }
  return result;
}

UnrankedQA EvenASQAu(const std::vector<std::string>& labels) {
  // States: 0 = s↓, 1 = p0, 2 = p1 (parity of a's strictly below).
  UnrankedQA qa;
  qa.num_states = 3;
  qa.start_state = 0;
  qa.final_states = {1, 2};
  for (const std::string& l : labels) {
    qa.up_partition[{0, l}] = false;
    qa.up_partition[{1, l}] = true;
    qa.up_partition[{2, l}] = true;
    // L↓(s↓, l) = (s↓)*.
    qa.delta_down[{0, l}] = {UVW{{}, {0}, {}}};
    qa.delta_leaf[{0, l}] = 1;
    if (l == "a") {
      qa.selection.insert({2, l});
    } else {
      qa.selection.insert({1, l});
    }
  }
  // L↑(p_x) = words whose total parity (child parities + a-labels) is x.
  // Parity NFA (deterministic): states 0 (even so far), 1 (odd so far).
  for (int x = 0; x < 2; ++x) {
    PairNfa nfa;
    nfa.num_states = 2;
    nfa.start = 0;
    nfa.finals = {x};
    for (int i = 0; i < 2; ++i) {
      for (const std::string& l : labels) {
        int delta = (i + (l == "a" ? 1 : 0)) % 2;
        for (int s = 0; s < 2; ++s) {
          nfa.trans[{s, PairSymbol{i + 1, l}}] = {(s + delta) % 2};
        }
      }
    }
    qa.delta_up[x + 1] = std::move(nfa);
  }
  MD_CHECK(qa.Validate().ok());
  return qa;
}

UnrankedQA OddPositionSQAu(const std::vector<std::string>& labels) {
  // States: 0 = start/descend (only used at the root), 1 = q0 (even
  // positions), 2 = q1 (odd positions), 3 = done.
  UnrankedQA qa;
  qa.num_states = 4;
  qa.start_state = 0;
  qa.final_states = {3};
  for (const std::string& l : labels) {
    qa.up_partition[{0, l}] = false;
    qa.up_partition[{1, l}] = true;
    qa.up_partition[{2, l}] = true;
    qa.up_partition[{3, l}] = true;
    // Example 4.15: L↓ = (q1 q0)* ∪ (q1 q0)* q1 — alternating marks from the
    // left, q1 first.
    qa.delta_down[{0, l}] = {UVW{{}, {2, 1}, {}}, UVW{{}, {2, 1}, {2}}};
    // Odd (1-based) positions carry q1 = state 2.
    qa.selection.insert({2, l});
  }
  // L↑(done) = (q0 | q1)*.
  PairNfa nfa;
  nfa.num_states = 1;
  nfa.start = 0;
  nfa.finals = {0};
  for (State q : {1, 2}) {
    for (const std::string& l : labels) {
      nfa.trans[{0, PairSymbol{q, l}}] = {0};
    }
  }
  qa.delta_up[3] = std::move(nfa);
  MD_CHECK(qa.Validate().ok());
  return qa;
}

UnrankedQA StayOddPositionSQAu(const std::vector<std::string>& labels) {
  // States: 0 = start, 1 = c (freshly descended children), 2 = m_odd,
  // 3 = m_even, 4 = done.
  UnrankedQA qa;
  qa.num_states = 5;
  qa.start_state = 0;
  qa.final_states = {4};
  for (const std::string& l : labels) {
    qa.up_partition[{0, l}] = false;
    for (State q : {1, 2, 3, 4}) qa.up_partition[{q, l}] = true;
    // All children first get state c: L↓ = c*.
    qa.delta_down[{0, l}] = {UVW{{}, {1}, {}}};
    // Odd positions (re-marked m_odd by the stay pass) are selected.
    qa.selection.insert({2, l});
  }
  // L↑(done) = (m_odd | m_even)+ — fires only after the stay transition
  // (words over c are in Ustay instead).
  PairNfa nfa;
  nfa.num_states = 2;
  nfa.start = 0;
  nfa.finals = {1};
  for (State q : {2, 3}) {
    for (const std::string& l : labels) {
      nfa.trans[{0, PairSymbol{q, l}}] = {1};
      nfa.trans[{1, PairSymbol{q, l}}] = {1};
    }
  }
  qa.delta_up[4] = std::move(nfa);
  // Stay 2DFA: walk left→right over c-children, alternating assignments.
  TwoDfa dfa;
  dfa.num_states = 3;  // 0 = at odd position, 1 = at even position, 2 = halt
  dfa.start = 0;
  dfa.finals = {2};
  for (const std::string& l : labels) {
    PairSymbol c{1, l};
    dfa.trans[{0, c}] = {1, +1};
    dfa.trans[{1, c}] = {0, +1};
    dfa.select[{0, c}] = 2;  // m_odd
    dfa.select[{1, c}] = 3;  // m_even
  }
  // The walk falls off the right end after marking the last child, which
  // the runner and the datalog encoding treat as reading the accepting
  // endmarker ⊣ (state 2 stays unreachable but documents intent).
  qa.stay = std::move(dfa);
  MD_CHECK(qa.Validate().ok());
  return qa;
}

}  // namespace mdatalog::qa
