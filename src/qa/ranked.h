#pragma once

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/tree/tree.h"
#include "src/util/interner.h"
#include "src/util/result.h"

/// \file ranked.h
/// Ranked query automata (Definition 4.8): two-way deterministic ranked tree
/// automata with a selection function. A QAr walks a cut of the tree up and
/// down; it *selects* a node whenever the selection function λ fires on the
/// node's current (state, label), and the selected set of an accepting run
/// is the union over all configurations (so selection is an "anytime"
/// notion — Section 4.3).
///
/// The direct runner implements the cut/configuration semantics literally
/// and counts transitions; Example 4.21 exhibits runs with
/// Θ(((n+1)/2)^(α+1)) steps, which bench_qa_ranked measures against the
/// linear-time datalog simulation of Theorem 4.11.

namespace mdatalog::qa {

using State = int32_t;

/// A ranked query automaton. States are 0..num_states-1; labels are interned
/// strings. Build the transition tables directly, then call Validate().
class RankedQA {
 public:
  int32_t num_states = 0;
  State start_state = 0;
  std::vector<State> final_states;
  int32_t max_rank = 2;  ///< K

  /// The U/D partition of Q × Σ: up_partition[(q, label)] == true ⇒ ∈ U.
  /// Pairs not present default to D.
  std::map<std::pair<State, std::string>, bool> up_partition;

  /// δ↑: sequence of children (state, label) pairs → state.
  std::map<std::vector<std::pair<State, std::string>>, State> delta_up;
  /// δ↓: (state, label, arity) → states for the children (length = arity).
  std::map<std::tuple<State, std::string, int32_t>, std::vector<State>>
      delta_down;
  /// δ_root: (state, label) → state, applicable when the cut is {root}.
  std::map<std::pair<State, std::string>, State> delta_root;
  /// δ_leaf: (state, label) → state.
  std::map<std::pair<State, std::string>, State> delta_leaf;
  /// λ: (state, label) pairs mapped to 1 (all others are ⊥).
  std::set<std::pair<State, std::string>> selection;

  bool InU(State q, const std::string& label) const {
    auto it = up_partition.find({q, label});
    return it != up_partition.end() && it->second;
  }
  bool IsFinal(State q) const {
    return std::find(final_states.begin(), final_states.end(), q) !=
           final_states.end();
  }

  /// Structural sanity: state ids in range, δ↓ lengths match arities, U/D
  /// consistency of the transition tables (δ↑/δ_root read U-pairs, δ↓/δ_leaf
  /// read D-pairs).
  util::Status Validate() const;

  /// |A|: total size of the transition tables.
  int64_t Size() const;
};

/// One transition applied by the runner (for traces/goldens, Example 4.9).
struct QaTraceStep {
  std::string kind;  ///< "down", "up", "leaf", "root"
  tree::NodeId node; ///< the defining node n of the transition
};

struct QaRunResult {
  bool accepted = false;
  std::vector<tree::NodeId> selected;  ///< sorted
  int64_t steps = 0;
  std::vector<QaTraceStep> trace;      ///< filled when RunOptions::trace
};

struct QaRunOptions {
  int64_t max_steps = 100'000'000;
  bool trace = false;
};

/// Runs the automaton on `t` (every node must have ≤ max_rank children).
/// Fails with ResourceExhausted if max_steps is exceeded (QAr need not
/// terminate in general — Section 4.3).
util::Result<QaRunResult> RunRankedQA(const RankedQA& qa, const tree::Tree& t,
                                      const QaRunOptions& options = {});

/// Example 4.9: selects roots of subtrees containing an even number of
/// a-labeled nodes, on binary trees over `labels` (which must contain "a").
RankedQA EvenAQAr(const std::vector<std::string>& labels);

/// Example 4.21: the blow-up automaton A_β with β = 2^α over Σ = {a}.
/// Terminating runs on complete binary trees take Θ(((n+1)/2)^(α+1)) steps.
RankedQA BlowupQAr(int32_t alpha);

}  // namespace mdatalog::qa
