#include "src/qa/ranked.h"

#include "src/tree/ranked.h"
#include "src/util/check.h"

namespace mdatalog::qa {

util::Status RankedQA::Validate() const {
  auto check_state = [&](State q) {
    return q >= 0 && q < num_states;
  };
  if (!check_state(start_state)) {
    return util::Status::InvalidArgument("start state out of range");
  }
  for (State q : final_states) {
    if (!check_state(q)) {
      return util::Status::InvalidArgument("final state out of range");
    }
  }
  for (const auto& [key, states] : delta_down) {
    const auto& [q, label, arity] = key;
    if (InU(q, label)) {
      return util::Status::InvalidArgument("δ↓ defined on a U-pair");
    }
    if (static_cast<int32_t>(states.size()) != arity) {
      return util::Status::InvalidArgument("δ↓ image length != arity");
    }
    if (arity > max_rank) {
      return util::Status::InvalidArgument("δ↓ arity exceeds K");
    }
    for (State s : states) {
      if (!check_state(s)) {
        return util::Status::InvalidArgument("δ↓ image state out of range");
      }
    }
  }
  for (const auto& [key, q2] : delta_leaf) {
    if (InU(key.first, key.second)) {
      return util::Status::InvalidArgument("δ_leaf defined on a U-pair");
    }
    if (!check_state(q2)) {
      return util::Status::InvalidArgument("δ_leaf image out of range");
    }
  }
  for (const auto& [key, q2] : delta_root) {
    if (!InU(key.first, key.second)) {
      return util::Status::InvalidArgument("δ_root defined on a D-pair");
    }
    if (!check_state(q2)) {
      return util::Status::InvalidArgument("δ_root image out of range");
    }
  }
  for (const auto& [seq, q2] : delta_up) {
    if (seq.empty() || static_cast<int32_t>(seq.size()) > max_rank) {
      return util::Status::InvalidArgument("δ↑ arity out of range");
    }
    for (const auto& [q, label] : seq) {
      if (!InU(q, label)) {
        return util::Status::InvalidArgument("δ↑ reads a D-pair");
      }
    }
    if (!check_state(q2)) {
      return util::Status::InvalidArgument("δ↑ image out of range");
    }
  }
  return util::Status::OK();
}

int64_t RankedQA::Size() const {
  int64_t size = num_states;
  for (const auto& [seq, _] : delta_up) {
    size += static_cast<int64_t>(seq.size()) + 1;
  }
  size += 4 * static_cast<int64_t>(delta_down.size());
  size += 2 * static_cast<int64_t>(delta_root.size() + delta_leaf.size() +
                                   selection.size());
  return size;
}

util::Result<QaRunResult> RunRankedQA(const RankedQA& qa, const tree::Tree& t,
                                      const QaRunOptions& options) {
  MD_RETURN_NOT_OK(qa.Validate());
  MD_RETURN_NOT_OK(tree::ValidateMaxArity(t, qa.max_rank));

  // The cut with its states; kNoState = node not in the cut.
  constexpr State kNoState = -1;
  std::vector<State> cut(t.size(), kNoState);
  cut[t.root()] = qa.start_state;

  QaRunResult result;
  std::set<tree::NodeId> selected;
  auto check_select = [&](tree::NodeId n) {
    if (qa.selection.count({cut[n], t.label_name(n)}) > 0) selected.insert(n);
  };
  check_select(t.root());

  // Worklist of nodes that may admit a transition. A node admits a down /
  // leaf / root transition based on its own (state, label); an up transition
  // is detected at the *parent* of ready children.
  std::vector<tree::NodeId> work = {t.root()};
  auto push = [&work](tree::NodeId n) { work.push_back(n); };

  auto try_transition = [&](tree::NodeId n) -> util::Result<bool> {
    if (cut[n] != kNoState) {
      State q = cut[n];
      const std::string& a = t.label_name(n);
      if (!qa.InU(q, a)) {  // D-pair: leaf or down transition
        if (t.IsLeaf(n)) {
          auto it = qa.delta_leaf.find({q, a});
          if (it == qa.delta_leaf.end()) return false;
          cut[n] = it->second;
          if (options.trace) result.trace.push_back({"leaf", n});
          check_select(n);
          push(n);
          return true;
        }
        auto it = qa.delta_down.find({q, a, t.NumChildren(n)});
        if (it == qa.delta_down.end()) return false;
        cut[n] = kNoState;
        int32_t i = 0;
        for (tree::NodeId c = t.first_child(n); c != tree::kNoNode;
             c = t.next_sibling(c), ++i) {
          cut[c] = it->second[i];
          check_select(c);
          push(c);
        }
        if (options.trace) result.trace.push_back({"down", n});
        return true;
      }
      // U-pair: root transition if n is the root.
      if (t.IsRoot(n)) {
        auto it = qa.delta_root.find({q, a});
        if (it == qa.delta_root.end()) return false;
        cut[n] = it->second;
        if (options.trace) result.trace.push_back({"root", n});
        check_select(n);
        push(n);
        return true;
      }
      // U-pair at a non-root node: its parent may admit an up transition.
      tree::NodeId parent = t.parent(n);
      std::vector<std::pair<State, std::string>> seq;
      for (tree::NodeId c = t.first_child(parent); c != tree::kNoNode;
           c = t.next_sibling(c)) {
        if (cut[c] == kNoState || !qa.InU(cut[c], t.label_name(c))) {
          return false;
        }
        seq.emplace_back(cut[c], t.label_name(c));
      }
      auto it = qa.delta_up.find(seq);
      if (it == qa.delta_up.end()) return false;
      for (tree::NodeId c = t.first_child(parent); c != tree::kNoNode;
           c = t.next_sibling(c)) {
        cut[c] = kNoState;
      }
      cut[parent] = it->second;
      if (options.trace) result.trace.push_back({"up", parent});
      check_select(parent);
      push(parent);
      return true;
    }
    return false;
  };

  // Fixpoint: apply transitions until none is possible. The automaton is
  // deterministic per node (U/D partition), so the visit order does not
  // change per-node state sequences (Definition 4.8 discussion).
  bool progress = true;
  while (progress) {
    progress = false;
    // Drain the worklist; retry every cut node once per round as fallback
    // (an up transition becomes enabled when the *last* sibling gets ready).
    std::vector<tree::NodeId> round = std::move(work);
    work.clear();
    if (round.empty()) {
      for (tree::NodeId n = 0; n < t.size(); ++n) {
        if (cut[n] != kNoState) round.push_back(n);
      }
    }
    for (tree::NodeId n : round) {
      MD_ASSIGN_OR_RETURN(bool fired, try_transition(n));
      if (fired) {
        progress = true;
        ++result.steps;
        if (result.steps > options.max_steps) {
          return util::Status::ResourceExhausted(
              "query automaton exceeded max_steps");
        }
      }
    }
    if (!progress && !work.empty()) progress = true;
  }

  result.accepted = cut[t.root()] != kNoState && qa.IsFinal(cut[t.root()]);
  if (result.accepted) {
    result.selected.assign(selected.begin(), selected.end());
  }
  return result;
}

RankedQA EvenAQAr(const std::vector<std::string>& labels) {
  RankedQA qa;
  // States: 0 = s↓ (descending), 1 = s0, 2 = s1 (parity of a's strictly
  // below the node).
  qa.num_states = 3;
  qa.start_state = 0;
  qa.final_states = {1, 2};
  qa.max_rank = 2;
  for (const std::string& l : labels) {
    qa.up_partition[{0, l}] = false;
    qa.up_partition[{1, l}] = true;
    qa.up_partition[{2, l}] = true;
    // (1) descend everywhere: δ↓(s↓, l, 2) = ⟨s↓, s↓⟩.
    qa.delta_down[{0, l, 2}] = {0, 0};
    // (2) leaves have zero a's below: δ_leaf(s↓, l) = s0.
    qa.delta_leaf[{0, l}] = 1;
    // Selection: subtree-even ⟺ (s1 ∧ a) ∨ (s0 ∧ ¬a).
    if (l == "a") {
      qa.selection.insert({2, l});
    } else {
      qa.selection.insert({1, l});
    }
  }
  // (3) ascend summing parities: δ↑(⟨s_i,l1⟩,⟨s_j,l2⟩) = s_x,
  //     x = i + j + χ(l1=a) + χ(l2=a) mod 2.
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      for (const std::string& l1 : labels) {
        for (const std::string& l2 : labels) {
          int x = (i + j + (l1 == "a" ? 1 : 0) + (l2 == "a" ? 1 : 0)) % 2;
          qa.delta_up[{{i + 1, l1}, {j + 1, l2}}] = x + 1;
        }
      }
    }
  }
  MD_CHECK(qa.Validate().ok());
  return qa;
}

RankedQA BlowupQAr(int32_t alpha) {
  MD_CHECK(alpha >= 1);
  int32_t beta = 1 << alpha;
  RankedQA qa;
  // States q_{i,j} for 1 ≤ i,j ≤ β+1, flattened as (i-1)*(β+1) + (j-1).
  int32_t side = beta + 1;
  auto id = [side](int32_t i, int32_t j) { return (i - 1) * side + (j - 1); };
  qa.num_states = side * side;
  qa.start_state = id(1, 1);
  qa.final_states = {id(1, beta + 1)};
  qa.max_rank = 2;
  const std::string a = "a";
  for (int32_t i = 1; i <= side; ++i) {
    for (int32_t j = 1; j <= side; ++j) {
      // D = {(q_{i,j}, a) | j ≤ β}, U = {(q_{i,β+1}, a)}.
      qa.up_partition[{id(i, j), a}] = (j == beta + 1);
    }
  }
  for (int32_t i = 1; i <= side; ++i) {
    for (int32_t j = 1; j <= beta; ++j) {
      // δ↓(q_{i,j}, a, 2) = ⟨q_{i,1}, q_{j,1}⟩.
      qa.delta_down[{id(i, j), a, 2}] = {id(i, 1), id(j, 1)};
    }
    // δ_leaf(q_{i,1}, a) = q_{i,β+1}.
    qa.delta_leaf[{id(i, 1), a}] = id(i, beta + 1);
  }
  // δ↑(⟨q_{i,β+1}, a⟩, ⟨q_{j,β+1}, a⟩) = q_{i,j+1}.
  for (int32_t i = 1; i <= side; ++i) {
    for (int32_t j = 1; j <= beta; ++j) {
      qa.delta_up[{{id(i, beta + 1), a}, {id(j, beta + 1), a}}] =
          id(i, j + 1);
    }
  }
  // Any selection will do (Example 4.21 cares about run length only); select
  // on the final state so the query is "the root, if the run accepts".
  qa.selection.insert({id(1, beta + 1), a});
  MD_CHECK(qa.Validate().ok());
  return qa;
}

}  // namespace mdatalog::qa
