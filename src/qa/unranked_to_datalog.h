#pragma once

#include "src/core/ast.h"
#include "src/qa/unranked.h"
#include "src/util/result.h"

/// \file unranked_to_datalog.h
/// Theorem 4.14: every SQAu translates (in LOGSPACE) into an equivalent
/// monadic datalog program over τ_ur ∪ {child, lastchild}.
///
/// Structure of the encoding (following the proof):
///  * down transitions — the uv*w marking machinery of steps (a)–(f),
///    illustrated by Figure 2 / Example 4.15: mark the |u| leftmost and |w|
///    rightmost children, mark the region before w, chase v-cycles through
///    it, derive succ when the lengths line up, and emit the new
///    ⟨q, σ⟩ state assignments from the position marks;
///  * up transitions — simulate the L↑(q) NFAs along the siblings
///    (left-to-right over tmp states), walk back on acceptance (bck), and
///    assign the parent's new pair state;
///  * stay transitions — simulate the 2DFA B with one predicate per
///    (parent-state, B-state) pair, moves along nextsibling in both
///    directions, and λB assignments;
///  * root/leaf transitions, acceptance and selection as in Theorem 4.11.
///
/// The output signature additionally uses firstsibling (for the empty-u
/// corner of the uv*w match) — eliminable via the TMNF pipeline, which the
/// tests exercise.

namespace mdatalog::qa {

/// Translates `qa` to monadic datalog. Query predicate: "query"; "accept"
/// holds of the root iff the automaton accepts.
util::Result<core::Program> UnrankedQAToDatalog(const UnrankedQA& qa);

}  // namespace mdatalog::qa
