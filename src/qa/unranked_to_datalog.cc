#include "src/qa/unranked_to_datalog.h"

#include <set>

#include "src/core/database.h"
#include "src/core/validate.h"

namespace mdatalog::qa {

namespace {

using core::Atom;
using core::MakeAtom;
using core::MakeRule;
using core::PredId;
using core::Program;
using core::Term;

constexpr State kNabla = -1;

std::string StateName(State q) {
  return q == kNabla ? std::string("n") : std::to_string(q);
}

/// Generates all rules of the Theorem 4.14 encoding.
class SqauEncoder {
 public:
  explicit SqauEncoder(const UnrankedQA& qa) : qa_(qa) {}

  util::Result<Program> Encode() {
    MD_RETURN_NOT_OK(qa_.Validate());
    CollectLabels();

    root_ = preds().MustIntern("root", 1);
    leaf_ = preds().MustIntern("leaf", 1);
    firstchild_ = preds().MustIntern("firstchild", 2);
    nextsibling_ = preds().MustIntern("nextsibling", 2);
    lastsibling_ = preds().MustIntern("lastsibling", 1);
    firstsibling_ = preds().MustIntern("firstsibling", 1);
    child_ = preds().MustIntern("child", 2);
    lastchild_ = preds().MustIntern("lastchild", 2);
    accept_ = preds().MustIntern("accept", 1);
    query_ = preds().MustIntern("query", 1);

    q0_range_.push_back(kNabla);
    for (State q = 0; q < qa_.num_states; ++q) q0_range_.push_back(q);

    Term x = Term::Var(0);

    // (1) Start: ⟨∇, s⟩(x) ← root(x).
    AddRule(MakeRule(MakeAtom(Pair(kNabla, qa_.start_state), {x}),
                     {MakeAtom(root_, {x})}, {"x"}));

    for (const auto& [key, uvws] : qa_.delta_down) {
      EncodeDown(key.first, key.second, uvws);
    }
    for (const auto& [q_res, nfa] : qa_.delta_up) {
      EncodeUp(q_res, nfa);
    }
    if (qa_.stay.has_value()) EncodeStay(*qa_.stay);

    // (4) Root transitions.
    for (const auto& [key, q2] : qa_.delta_root) {
      AddRule(MakeRule(MakeAtom(Pair(kNabla, q2), {x}),
                       {MakeAtom(Pair(kNabla, key.first), {x}),
                        MakeAtom(Label(key.second), {x}),
                        MakeAtom(root_, {x})},
                       {"x"}));
    }
    // (5) Leaf transitions.
    for (const auto& [key, q2] : qa_.delta_leaf) {
      for (State q0 : q0_range_) {
        AddRule(MakeRule(MakeAtom(Pair(q0, q2), {x}),
                         {MakeAtom(Pair(q0, key.first), {x}),
                          MakeAtom(Label(key.second), {x}),
                          MakeAtom(leaf_, {x})},
                         {"x"}));
      }
    }
    // (6) Acceptance.
    for (State q : qa_.final_states) {
      for (State q0 : q0_range_) {
        AddRule(MakeRule(
            MakeAtom(accept_, {x}),
            {MakeAtom(root_, {x}), MakeAtom(Pair(q0, q), {x})}, {"x"}));
      }
    }
    // (7) Selection.
    for (const auto& [q, label] : qa_.selection) {
      for (State q0 : q0_range_) {
        Term y = Term::Var(1);
        AddRule(MakeRule(MakeAtom(query_, {x}),
                         {MakeAtom(Pair(q0, q), {x}),
                          MakeAtom(Label(label), {x}), MakeAtom(accept_, {y})},
                         {"x", "y"}));
      }
    }
    program_.set_query_pred(query_);
    // Drop rules referencing pair predicates that no rule can ever derive.
    core::PruneUnderivableRules(&program_);
    return std::move(program_);
  }

 private:
  core::PredicateTable& preds() { return program_.preds(); }
  void AddRule(core::Rule rule) { program_.AddRule(std::move(rule)); }

  PredId Pair(State q0, State q) {
    return preds().MustIntern("p" + StateName(q0) + "_" + StateName(q), 1);
  }
  PredId Label(const std::string& l) {
    return preds().MustIntern(core::LabelPredName(l), 1);
  }
  PredId Tmp(const std::string& name) { return preds().MustIntern(name, 1); }

  void CollectLabels() {
    for (const auto& [key, _] : qa_.delta_down) labels_.insert(key.second);
    for (const auto& [key, _] : qa_.delta_leaf) labels_.insert(key.second);
    for (const auto& [key, _] : qa_.delta_root) labels_.insert(key.second);
    for (const auto& [key, _] : qa_.up_partition) labels_.insert(key.second);
    for (const auto& [q, nfa] : qa_.delta_up) {
      for (const auto& [key, _] : nfa.trans) labels_.insert(key.second.label);
    }
    if (qa_.stay.has_value()) {
      for (const auto& [key, _] : qa_.stay->trans) {
        labels_.insert(key.second.label);
      }
    }
  }

  /// Down transitions: the uv*w marking rules (a)–(f) of the proof
  /// (Figure 2). One rule family per subexpression i of L↓(q, a).
  void EncodeDown(State q, const std::string& a,
                  const std::vector<UVW>& uvws) {
    Term x = Term::Var(0), y = Term::Var(1);
    // Helper "kid" predicate: x is a child of a (q, a)-node.
    PredId kid = Tmp("kid_" + StateName(q) + "_" + a);
    for (State q0 : q0_range_) {
      AddRule(MakeRule(MakeAtom(kid, {y}),
                       {MakeAtom(Pair(q0, q), {x}), MakeAtom(child_, {x, y}),
                        MakeAtom(Label(a), {x})},
                       {"x", "y"}));
    }

    for (size_t i = 0; i < uvws.size(); ++i) {
      const UVW& e = uvws[i];
      std::string base = "d" + StateName(q) + "_" + a + "_" +
                         std::to_string(i);
      auto upred = [&](size_t k) {  // 1-based
        return Tmp(base + "_u" + std::to_string(k));
      };
      auto wpred = [&](size_t l) {  // 1-based
        return Tmp(base + "_w" + std::to_string(l));
      };
      auto vpred = [&](size_t j) {  // 1-based
        return Tmp(base + "_v" + std::to_string(j));
      };
      PredId bw = Tmp(base + "_bw");
      PredId succ = Tmp(base + "_s");

      // (a) mark the |u| leftmost children.
      if (!e.u.empty()) {
        for (State q0 : q0_range_) {
          AddRule(MakeRule(MakeAtom(upred(1), {y}),
                           {MakeAtom(Pair(q0, q), {x}),
                            MakeAtom(firstchild_, {x, y}),
                            MakeAtom(Label(a), {x})},
                           {"x", "y"}));
        }
        for (size_t k = 1; k < e.u.size(); ++k) {
          AddRule(MakeRule(MakeAtom(upred(k + 1), {y}),
                           {MakeAtom(upred(k), {x}),
                            MakeAtom(nextsibling_, {x, y})},
                           {"x", "y"}));
        }
      }
      // (b) mark the |w| rightmost children.
      if (!e.w.empty()) {
        for (State q0 : q0_range_) {
          AddRule(MakeRule(MakeAtom(wpred(e.w.size()), {y}),
                           {MakeAtom(Pair(q0, q), {x}),
                            MakeAtom(lastchild_, {x, y}),
                            MakeAtom(Label(a), {x})},
                           {"x", "y"}));
        }
        for (size_t l = e.w.size(); l > 1; --l) {
          AddRule(MakeRule(MakeAtom(wpred(l - 1), {y}),
                           {MakeAtom(wpred(l), {x}),
                            MakeAtom(nextsibling_, {y, x})},
                           {"x", "y"}));
        }
      }
      // (c) mark the region strictly before w (all children if w = ε).
      if (!e.w.empty()) {
        AddRule(MakeRule(MakeAtom(bw, {y}),
                         {MakeAtom(wpred(1), {x}),
                          MakeAtom(nextsibling_, {y, x})},
                         {"x", "y"}));
        AddRule(MakeRule(MakeAtom(bw, {y}),
                         {MakeAtom(bw, {x}), MakeAtom(nextsibling_, {y, x})},
                         {"x", "y"}));
      } else {
        AddRule(MakeRule(MakeAtom(bw, {x}), {MakeAtom(kid, {x})}, {"x"}));
      }
      // (d) chase v-cycles through the middle region.
      if (!e.v.empty()) {
        if (!e.u.empty()) {
          AddRule(MakeRule(MakeAtom(vpred(1), {y}),
                           {MakeAtom(upred(e.u.size()), {x}),
                            MakeAtom(nextsibling_, {x, y}),
                            MakeAtom(bw, {y})},
                           {"x", "y"}));
        } else {
          for (State q0 : q0_range_) {
            AddRule(MakeRule(MakeAtom(vpred(1), {y}),
                             {MakeAtom(Pair(q0, q), {x}),
                              MakeAtom(firstchild_, {x, y}),
                              MakeAtom(Label(a), {x}), MakeAtom(bw, {y})},
                             {"x", "y"}));
          }
        }
        for (size_t j = 1; j < e.v.size(); ++j) {
          AddRule(MakeRule(MakeAtom(vpred(j + 1), {y}),
                           {MakeAtom(vpred(j), {x}),
                            MakeAtom(nextsibling_, {x, y}),
                            MakeAtom(bw, {y})},
                           {"x", "y"}));
        }
        AddRule(MakeRule(MakeAtom(vpred(1), {y}),
                         {MakeAtom(vpred(e.v.size()), {x}),
                          MakeAtom(nextsibling_, {x, y}), MakeAtom(bw, {y})},
                         {"x", "y"}));
      }
      // (e) succ: the subexpression matches the child count.
      //     Zero v-repetitions: m = |u| + |w|.
      if (!e.u.empty() && !e.w.empty()) {
        AddRule(MakeRule(MakeAtom(succ, {x}),
                         {MakeAtom(upred(e.u.size()), {x}),
                          MakeAtom(nextsibling_, {x, y}),
                          MakeAtom(wpred(1), {y})},
                         {"x", "y"}));
      } else if (!e.u.empty()) {
        AddRule(MakeRule(MakeAtom(succ, {x}),
                         {MakeAtom(upred(e.u.size()), {x}),
                          MakeAtom(lastsibling_, {x})},
                         {"x"}));
      } else if (!e.w.empty()) {
        AddRule(MakeRule(MakeAtom(succ, {x}),
                         {MakeAtom(wpred(1), {x}),
                          MakeAtom(firstsibling_, {x})},
                         {"x"}));
      }
      //     One or more v-repetitions.
      if (!e.v.empty()) {
        if (!e.w.empty()) {
          AddRule(MakeRule(MakeAtom(succ, {x}),
                           {MakeAtom(vpred(e.v.size()), {x}),
                            MakeAtom(nextsibling_, {x, y}),
                            MakeAtom(wpred(1), {y})},
                           {"x", "y"}));
        } else {
          AddRule(MakeRule(MakeAtom(succ, {x}),
                           {MakeAtom(vpred(e.v.size()), {x}),
                            MakeAtom(lastsibling_, {x})},
                           {"x"}));
        }
      }
      //     Spread succ across all siblings.
      AddRule(MakeRule(MakeAtom(succ, {y}),
                       {MakeAtom(succ, {x}), MakeAtom(nextsibling_, {x, y})},
                       {"x", "y"}));
      AddRule(MakeRule(MakeAtom(succ, {y}),
                       {MakeAtom(succ, {x}), MakeAtom(nextsibling_, {y, x})},
                       {"x", "y"}));
      // (f) state assignments from the position marks.
      for (size_t k = 0; k < e.u.size(); ++k) {
        AddRule(MakeRule(MakeAtom(Pair(q, e.u[k]), {x}),
                         {MakeAtom(succ, {x}), MakeAtom(upred(k + 1), {x})},
                         {"x"}));
      }
      for (size_t j = 0; j < e.v.size(); ++j) {
        AddRule(MakeRule(MakeAtom(Pair(q, e.v[j]), {x}),
                         {MakeAtom(succ, {x}), MakeAtom(vpred(j + 1), {x})},
                         {"x"}));
      }
      for (size_t l = 0; l < e.w.size(); ++l) {
        AddRule(MakeRule(MakeAtom(Pair(q, e.w[l]), {x}),
                         {MakeAtom(succ, {x}), MakeAtom(wpred(l + 1), {x})},
                         {"x"}));
      }
    }
  }

  /// Up transitions: simulate the L↑(q_res) NFA left-to-right along the
  /// siblings, then walk back and assign the parent state.
  void EncodeUp(State q_res, const PairNfa& nfa) {
    Term x = Term::Var(0), y = Term::Var(1);
    std::string base = "up" + StateName(q_res);
    auto tmp = [&](State q2, int32_t s) {
      return Tmp(base + "_" + StateName(q2) + "_s" + std::to_string(s));
    };
    auto bck = [&](State q2) { return Tmp(base + "_" + StateName(q2) + "_b"); };

    for (State q2 = 0; q2 < qa_.num_states; ++q2) {
      // (a) NFA start on the first sibling.
      for (const auto& [key, targets] : nfa.trans) {
        const auto& [s, sym] = key;
        if (s != nfa.start) continue;
        for (int32_t s2 : targets) {
          AddRule(MakeRule(MakeAtom(tmp(q2, s2), {x}),
                           {MakeAtom(firstchild_, {y, x}),
                            MakeAtom(Pair(q2, sym.q), {x}),
                            MakeAtom(Label(sym.label), {x})},
                           {"x", "x0"}));
        }
      }
      // (b) NFA steps along nextsibling.
      for (const auto& [key, targets] : nfa.trans) {
        const auto& [s, sym] = key;
        for (int32_t s2 : targets) {
          AddRule(MakeRule(MakeAtom(tmp(q2, s2), {y}),
                           {MakeAtom(tmp(q2, s), {x}),
                            MakeAtom(nextsibling_, {x, y}),
                            MakeAtom(Pair(q2, sym.q), {y}),
                            MakeAtom(Label(sym.label), {y})},
                           {"x", "y"}));
        }
      }
      // (c) acceptance at the last sibling; walk back; assign the parent.
      for (int32_t f : nfa.finals) {
        AddRule(MakeRule(MakeAtom(bck(q2), {x}),
                         {MakeAtom(tmp(q2, f), {x}),
                          MakeAtom(lastsibling_, {x})},
                         {"x"}));
      }
      AddRule(MakeRule(MakeAtom(bck(q2), {x}),
                       {MakeAtom(nextsibling_, {x, y}), MakeAtom(bck(q2), {y})},
                       {"x", "y"}));
      for (State q1 : q0_range_) {
        AddRule(MakeRule(MakeAtom(Pair(q1, q_res), {x}),
                         {MakeAtom(Pair(q1, q2), {x}),
                          MakeAtom(firstchild_, {x, y}),
                          MakeAtom(bck(q2), {y})},
                         {"x", "y"}));
      }
    }
  }

  /// Stay transitions: simulate the 2DFA B; each move depends on a single
  /// state assignment, so the monotone encoding is sound for valid automata
  /// (each node participates in at most one stay transition).
  void EncodeStay(const TwoDfa& dfa) {
    Term x = Term::Var(0), y = Term::Var(1);
    auto bpred = [&](State q2, int32_t s) {
      return Tmp("st_" + StateName(q2) + "_s" + std::to_string(s));
    };
    for (State q2 = 0; q2 < qa_.num_states; ++q2) {
      // B starts on the leftmost child, whatever its pair state.
      for (State q = 0; q < qa_.num_states; ++q) {
        AddRule(MakeRule(MakeAtom(bpred(q2, dfa.start), {x}),
                         {MakeAtom(firstchild_, {y, x}),
                          MakeAtom(Pair(q2, q), {x})},
                         {"x", "x0"}));
      }
      for (const auto& [key, step] : dfa.trans) {
        const auto& [s, sym] = key;
        Atom move = step.dir > 0 ? MakeAtom(nextsibling_, {x, y})
                                 : MakeAtom(nextsibling_, {y, x});
        AddRule(MakeRule(MakeAtom(bpred(q2, step.next), {y}),
                         {MakeAtom(bpred(q2, s), {x}),
                          MakeAtom(Pair(q2, sym.q), {x}),
                          MakeAtom(Label(sym.label), {x}), std::move(move)},
                         {"x", "y"}));
      }
      for (const auto& [key, q_new] : dfa.select) {
        const auto& [s, sym] = key;
        AddRule(MakeRule(MakeAtom(Pair(q2, q_new), {x}),
                         {MakeAtom(bpred(q2, s), {x}),
                          MakeAtom(Pair(q2, sym.q), {x}),
                          MakeAtom(Label(sym.label), {x})},
                         {"x"}));
      }
    }
  }

  const UnrankedQA& qa_;
  Program program_;
  std::set<std::string> labels_;
  std::vector<State> q0_range_;
  PredId root_, leaf_, firstchild_, nextsibling_, lastsibling_, firstsibling_,
      child_, lastchild_, accept_, query_;
};

}  // namespace

util::Result<Program> UnrankedQAToDatalog(const UnrankedQA& qa) {
  return SqauEncoder(qa).Encode();
}

}  // namespace mdatalog::qa
