#include "src/tmnf/pipeline.h"

#include <map>
#include <set>

#include "src/caterpillar/to_datalog.h"
#include "src/core/database.h"
#include "src/core/validate.h"
#include "src/tmnf/acyclic.h"
#include "src/tmnf/normal_form.h"
#include "src/util/check.h"

namespace mdatalog::tmnf {

namespace {

using core::Atom;
using core::MakeAtom;
using core::MakeRule;
using core::PredId;
using core::Program;
using core::Rule;
using core::Term;
using core::VarId;

/// Shared machinery for the ranked and unranked pipelines.
class TmnfPipeline {
 public:
  TmnfPipeline(const Program& input, bool ranked, TmnfStats* stats)
      : ranked_(ranked), stats_(stats), out_(input) {}

  util::Result<Program> Run() {
    MD_RETURN_NOT_OK(Validate());
    if (stats_ != nullptr) {
      stats_->input_rules = static_cast<int32_t>(out_.rules().size());
    }
    if (ranked_) {
      for (PredId p = 0; p < out_.preds().size(); ++p) {
        max_child_k_ =
            std::max(max_child_k_, core::ChildKIndex(out_.preds().Name(p)));
      }
    }

    // Steps 1+2: preprocess and chase each rule.
    std::vector<Rule> acyclic_rules;
    for (Rule& rule : out_.mutable_rules()) {
      MD_RETURN_NOT_OK(Preprocess(&rule));
      auto chased = ranked_ ? MakeRuleAcyclicRanked(&out_, rule)
                            : MakeRuleAcyclicUnranked(&out_, rule);
      if (!chased.ok()) return chased.status();
      if (!chased->satisfiable) {
        if (stats_ != nullptr) ++stats_->rules_dropped_unsat;
        continue;
      }
      if (stats_ != nullptr) stats_->vars_merged += chased->merged_vars;
      acyclic_rules.push_back(std::move(chased->rule));
    }

    // Step 3: connect disconnected rules with the total caterpillar.
    for (Rule& rule : acyclic_rules) MD_RETURN_NOT_OK(Connect(&rule));

    // Step 4: decompose into TMNF.
    out_.mutable_rules().clear();
    for (const Rule& rule : acyclic_rules) MD_RETURN_NOT_OK(Decompose(rule));
    if (used_fsib_) EmitFsibDefinition();

    PruneEmptyPredicates();
    MD_RETURN_NOT_OK(CheckTmnf(out_, {.ranked = ranked_}));
    if (stats_ != nullptr) {
      stats_->output_rules = static_cast<int32_t>(out_.rules().size());
    }
    return std::move(out_);
  }

 private:
  struct Edge {
    VarId other;
    const Atom* atom;
    bool var_is_source;  ///< this var is the atom's first argument
  };

  util::Status Validate() {
    MD_RETURN_NOT_OK(core::CheckSafety(out_));
    MD_RETURN_NOT_OK(core::CheckMonadic(out_));
    std::vector<bool> intensional = out_.IntensionalMask();
    for (const Rule& r : out_.rules()) {
      if (r.head.args.empty()) {
        return util::Status::Unimplemented(
            "propositional heads are not supported by the TMNF pipeline");
      }
      for (const Term& t : r.head.args) {
        if (!t.is_var()) {
          return util::Status::Unimplemented(
              "constants are not supported by the TMNF pipeline");
        }
      }
      if (out_.preds().Name(r.head.pred).rfind("__", 0) == 0) {
        return util::Status::InvalidArgument(
            "predicate names starting with __ are reserved by the pipeline");
      }
      for (const Atom& a : r.body) {
        for (const Term& t : a.args) {
          if (!t.is_var()) {
            return util::Status::Unimplemented(
                "constants are not supported by the TMNF pipeline");
          }
        }
        if (intensional[a.pred]) {
          if (a.args.size() != 1) {
            return util::Status::Unimplemented(
                "propositional intensional atoms unsupported");
          }
          continue;
        }
        const std::string& name = out_.preds().Name(a.pred);
        int32_t arity = static_cast<int32_t>(a.args.size());
        bool ok;
        if (ranked_) {
          ok = (arity == 2 && core::ChildKIndex(name) >= 1) ||
               (arity == 1 &&
                (name == "root" || name == "leaf" || name == "lastsibling" ||
                 !core::LabelFromPredName(name).empty()));
        } else {
          ok = core::TreeDatabase::IsTreePredicate(name, arity) &&
               name != "nextsibling_tc" && core::ChildKIndex(name) < 1;
        }
        if (!ok) {
          return util::Status::InvalidArgument(
              "predicate '" + name + "'/" + std::to_string(arity) +
              " is outside the TMNF input signature");
        }
      }
    }
    return util::Status::OK();
  }

  /// Lemma 5.6 expansion + firstsibling replacement (unranked only).
  util::Status Preprocess(Rule* rule) {
    if (ranked_) return util::Status::OK();
    MD_ASSIGN_OR_RETURN(PredId child, out_.preds().Intern("child", 2));
    MD_ASSIGN_OR_RETURN(PredId lastsibling,
                        out_.preds().Intern("lastsibling", 1));
    PredId lastchild = out_.preds().Find("lastchild");
    PredId firstsibling = out_.preds().Find("firstsibling");
    std::vector<Atom> body;
    for (Atom& a : rule->body) {
      if (lastchild >= 0 && a.pred == lastchild) {
        body.push_back(MakeAtom(child, {a.args[0], a.args[1]}));
        body.push_back(MakeAtom(lastsibling, {a.args[1]}));
      } else if (firstsibling >= 0 && a.pred == firstsibling) {
        used_fsib_ = true;
        body.push_back(MakeAtom(FsibPred(), {a.args[0]}));
      } else {
        body.push_back(std::move(a));
      }
    }
    rule->body = std::move(body);
    return util::Status::OK();
  }

  PredId FsibPred() { return out_.preds().MustIntern("__fsib", 1); }

  void EmitFsibDefinition() {
    // __fsib(x) ← __dom(x0), firstchild(x0, x): TMNF form (2).
    PredId fc = out_.preds().MustIntern("firstchild", 2);
    PredId dom = EnsureDom();
    out_.AddRule(MakeRule(MakeAtom(FsibPred(), {Term::Var(0)}),
                          {MakeAtom(dom, {Term::Var(1)}),
                           MakeAtom(fc, {Term::Var(1), Term::Var(0)})},
                          {"x", "x0"}));
  }

  /// Step 3: if the rule's variables fall into several components (counting
  /// unary-only variables as singletons), add a total-caterpillar edge from
  /// the head variable to one representative per other component.
  util::Status Connect(Rule* rule) {
    if (rule->num_vars() <= 1) return util::Status::OK();
    std::vector<int32_t> comp = core::RuleVarComponents(out_, *rule);
    int32_t head_comp = comp[rule->head.args[0].value];
    std::set<int32_t> done = {head_comp};
    MD_ASSIGN_OR_RETURN(PredId any, out_.preds().Intern("__any", 2));
    for (VarId v = 0; v < rule->num_vars(); ++v) {
      if (done.insert(comp[v]).second) {
        rule->body.push_back(MakeAtom(any, {rule->head.args[0], Term::Var(v)}));
      }
    }
    return util::Status::OK();
  }

  PredId Fresh() {
    return out_.preds().MustIntern("__t" + std::to_string(fresh_counter_++),
                                   1);
  }

  /// The always-true node predicate, for variables with no constraints of
  /// their own: __dom(x) holds of every node (cf. the "dom" pattern in the
  /// proof of Theorem 6.5).
  PredId EnsureDom() {
    if (dom_pred_ >= 0) return dom_pred_;
    dom_pred_ = out_.preds().MustIntern("__dom", 1);
    PredId root = out_.preds().MustIntern("root", 1);
    Term x = Term::Var(0), y = Term::Var(1);
    out_.AddRule(
        MakeRule(MakeAtom(dom_pred_, {x}), {MakeAtom(root, {x})}, {"x"}));
    if (ranked_) {
      for (int32_t k = 1; k <= std::max(max_child_k_, 2); ++k) {
        PredId ck = out_.preds().MustIntern("child" + std::to_string(k), 2);
        out_.AddRule(MakeRule(MakeAtom(dom_pred_, {y}),
                              {MakeAtom(dom_pred_, {x}), MakeAtom(ck, {x, y})},
                              {"x", "y"}));
      }
    } else {
      PredId fc = out_.preds().MustIntern("firstchild", 2);
      PredId ns = out_.preds().MustIntern("nextsibling", 2);
      out_.AddRule(MakeRule(MakeAtom(dom_pred_, {y}),
                            {MakeAtom(dom_pred_, {x}), MakeAtom(fc, {x, y})},
                            {"x", "y"}));
      out_.AddRule(MakeRule(MakeAtom(dom_pred_, {y}),
                            {MakeAtom(dom_pred_, {x}), MakeAtom(ns, {x, y})},
                            {"x", "y"}));
    }
    return dom_pred_;
  }

  /// The total caterpillar connecting any two nodes.
  caterpillar::ExprPtr AnyExpr() const {
    if (!ranked_) return caterpillar::AnyNodeExpr();
    // Up to a common ancestor, then down: (⋃ child_k^-1)* . (⋃ child_k)*.
    std::vector<caterpillar::ExprPtr> down, up;
    for (int32_t k = 1; k <= std::max(max_child_k_, 2); ++k) {
      down.push_back(caterpillar::Rel("child" + std::to_string(k)));
      up.push_back(
          caterpillar::Rel("child" + std::to_string(k), /*inverted=*/true));
    }
    return caterpillar::Concat({caterpillar::Star(caterpillar::Union(up)),
                                caterpillar::Star(caterpillar::Union(down))});
  }

  /// Dropping unsatisfiable rules (chase) can leave an intensional predicate
  /// with no defining rules; its extension is empty under the fixpoint
  /// semantics, so rules whose bodies mention it can never fire. Removing
  /// those rules may empty further predicates — iterate to a fixpoint.
  void PruneEmptyPredicates() {
    // Non-schema unary predicates: input-intensional names and generated
    // "__" predicates. Schema (EDB) predicates are never empty by fiat.
    auto is_idb_like = [&](PredId p) {
      const std::string& name = out_.preds().Name(p);
      if (name.rfind("__", 0) == 0) return true;
      if (ranked_) {
        return core::ChildKIndex(name) < 1 && name != "root" &&
               name != "leaf" && name != "lastsibling" &&
               core::LabelFromPredName(name).empty();
      }
      return !core::TreeDatabase::IsTreePredicate(
          name, out_.preds().Arity(p));
    };
    bool changed = true;
    while (changed) {
      changed = false;
      std::vector<bool> has_rule(out_.preds().size(), false);
      for (const Rule& r : out_.rules()) has_rule[r.head.pred] = true;
      std::vector<Rule> kept;
      for (Rule& r : out_.mutable_rules()) {
        bool fireable = true;
        for (const Atom& a : r.body) {
          if (is_idb_like(a.pred) && !has_rule[a.pred]) {
            fireable = false;
            break;
          }
        }
        if (fireable) {
          kept.push_back(std::move(r));
        } else {
          changed = true;
        }
      }
      out_.mutable_rules() = std::move(kept);
    }
  }

  bool IsCaterpillarAtom(const Atom& a) const {
    const std::string& name = out_.preds().Name(a.pred);
    return name == "nextsibling_tc" || name == "__any";
  }

  /// Step 4 (Lemmas 5.7/5.8/5.9): decomposes one acyclic connected rule into
  /// TMNF rules appended to out_.
  util::Status Decompose(const Rule& rule) {
    std::vector<std::vector<Edge>> adj(std::max(rule.num_vars(), 1));
    std::vector<std::vector<PredId>> unary_on(std::max(rule.num_vars(), 1));
    for (const Atom& a : rule.body) {
      if (a.args.size() == 1) {
        unary_on[a.args[0].value].push_back(a.pred);
      } else {
        VarId x = a.args[0].value, y = a.args[1].value;
        adj[x].push_back({y, &a, true});
        adj[y].push_back({x, &a, false});
      }
    }
    VarId head_var = rule.head.args[0].value;
    MD_ASSIGN_OR_RETURN(
        PredId p_head,
        DefineSubtree(rule, adj, unary_on, head_var, /*parent=*/-1));
    // p(x) ← P_head(x): TMNF form (1).
    out_.AddRule(MakeRule(MakeAtom(rule.head.pred, {Term::Var(0)}),
                          {MakeAtom(p_head, {Term::Var(0)})}, {"x"}));
    return util::Status::OK();
  }

  /// Defines and returns P_v: the conjunction of all constraints in v's
  /// subtree of the query tree rooted at the head variable.
  util::Result<PredId> DefineSubtree(
      const Rule& rule, const std::vector<std::vector<Edge>>& adj,
      const std::vector<std::vector<PredId>>& unary_on, VarId v,
      VarId parent) {
    std::vector<PredId> conjuncts = unary_on[v];
    for (const Edge& e : adj[v]) {
      if (e.other == parent) continue;
      MD_ASSIGN_OR_RETURN(PredId p_child,
                          DefineSubtree(rule, adj, unary_on, e.other, v));
      MD_ASSIGN_OR_RETURN(PredId hop, DefineHop(*e.atom, e.var_is_source,
                                                p_child));
      conjuncts.push_back(hop);
    }
    if (conjuncts.empty()) return EnsureDom();
    if (conjuncts.size() == 1) return conjuncts[0];
    // Chain of TMNF form (3) rules.
    Term x = Term::Var(0);
    PredId acc = conjuncts[0];
    for (size_t i = 1; i < conjuncts.size(); ++i) {
      PredId next = Fresh();
      out_.AddRule(MakeRule(MakeAtom(next, {x}),
                            {MakeAtom(acc, {x}), MakeAtom(conjuncts[i], {x})},
                            {"x"}));
      acc = next;
    }
    return acc;
  }

  /// Defines H(v) ⟺ ∃c. edge(v,c) ∧ P_c(c), where the edge atom is either a
  /// schema relation (TMNF form (2)) or a caterpillar predicate (compiled
  /// via Lemma 5.9). `v_is_source` says whether v is the atom's first
  /// argument.
  util::Result<PredId> DefineHop(const Atom& atom, bool v_is_source,
                                 PredId p_child) {
    Term x = Term::Var(0), x0 = Term::Var(1);
    if (IsCaterpillarAtom(atom)) {
      const std::string& name = out_.preds().Name(atom.pred);
      caterpillar::ExprPtr expr =
          name == "__any" ? AnyExpr()
                          : caterpillar::Star(caterpillar::Rel("nextsibling"));
      // H(v) ⟺ v ∈ image of P_c under E^-1 (if atom is E(v, c)) or under E
      // (if atom is E(c, v)).
      if (v_is_source) expr = caterpillar::Inverse(expr);
      return caterpillar::AppendCaterpillarRules(
          &out_, p_child, expr, "__t" + std::to_string(fresh_counter_++),
          {.ranked = ranked_});
    }
    // Schema relation: one TMNF form (2) rule.
    PredId hop = Fresh();
    // v is the head variable x of the hop rule; the child c is x0.
    Atom rel_atom = v_is_source ? MakeAtom(atom.pred, {x, x0})
                                : MakeAtom(atom.pred, {x0, x});
    out_.AddRule(MakeRule(MakeAtom(hop, {x}),
                          {MakeAtom(p_child, {x0}), std::move(rel_atom)},
                          {"x", "x0"}));
    return hop;
  }

  bool ranked_;
  TmnfStats* stats_;
  Program out_;
  bool used_fsib_ = false;
  int32_t fresh_counter_ = 0;
  PredId dom_pred_ = -1;
  int32_t max_child_k_ = 0;
};

}  // namespace

util::Result<Program> ToTmnf(const Program& input, TmnfStats* stats) {
  return TmnfPipeline(input, /*ranked=*/false, stats).Run();
}

util::Result<Program> ToTmnfRanked(const Program& input, TmnfStats* stats) {
  return TmnfPipeline(input, /*ranked=*/true, stats).Run();
}

}  // namespace mdatalog::tmnf
