#include "src/tmnf/acyclic.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/core/database.h"
#include "src/util/check.h"

namespace mdatalog::tmnf {

namespace {

using core::Atom;
using core::PredId;
using core::Rule;
using core::Term;
using core::VarId;

class UnionFind {
 public:
  explicit UnionFind(int32_t n) : parent_(n) {
    for (int32_t i = 0; i < n; ++i) parent_[i] = i;
  }
  int32_t Find(int32_t x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  /// Returns true if a merge actually happened.
  bool Union(int32_t a, int32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[std::max(a, b)] = std::min(a, b);
    return true;
  }

 private:
  std::vector<int32_t> parent_;
};

/// A binary body atom, variables resolved to union-find representatives.
struct BinAtom {
  PredId pred;
  VarId x, y;
  bool operator<(const BinAtom& o) const {
    return std::tie(pred, x, y) < std::tie(o.pred, o.x, o.y);
  }
  bool operator==(const BinAtom& o) const = default;
};

/// Potential-based consistency check: assigns d(v) so that every edge
/// (u, v, w) satisfies d(v) = d(u) + w; returns false on conflict. `out` may
/// be null. This is the depth-index map of Proposition 5.3.
bool AssignPotentials(int32_t num_vars,
                      const std::vector<std::tuple<VarId, VarId, int32_t>>& edges,
                      std::vector<int32_t>* out) {
  std::vector<std::vector<std::pair<int32_t, int32_t>>> adj(num_vars);
  for (const auto& [u, v, w] : edges) {
    adj[u].emplace_back(v, w);
    adj[v].emplace_back(u, -w);
  }
  std::vector<int32_t> d(num_vars, INT32_MIN);
  for (VarId s = 0; s < num_vars; ++s) {
    if (d[s] != INT32_MIN || adj[s].empty()) continue;
    d[s] = 0;
    std::vector<VarId> stack = {s};
    while (!stack.empty()) {
      VarId u = stack.back();
      stack.pop_back();
      for (const auto& [v, w] : adj[u]) {
        if (d[v] == INT32_MIN) {
          d[v] = d[u] + w;
          stack.push_back(v);
        } else if (d[v] != d[u] + w) {
          return false;
        }
      }
    }
  }
  if (out != nullptr) *out = std::move(d);
  return true;
}

/// Rebuilds a Rule from resolved atoms, renumbering variables densely.
Rule RebuildRule(const core::Program& program, const Rule& original,
                 UnionFind* uf, int32_t total_vars,
                 const std::vector<std::pair<PredId, VarId>>& unary_atoms,
                 const std::vector<BinAtom>& binary_atoms) {
  (void)program;
  std::vector<VarId> dense(total_vars, -1);
  std::vector<std::string> names;
  auto var_of = [&](VarId raw) {
    VarId rep = uf->Find(raw);
    if (dense[rep] < 0) {
      dense[rep] = static_cast<VarId>(names.size());
      names.push_back(rep < original.num_vars() ? original.var_names[rep]
                                                : "w" + std::to_string(rep));
    }
    return dense[rep];
  };

  Rule out;
  out.head.pred = original.head.pred;
  MD_CHECK(original.head.args.size() == 1 && original.head.args[0].is_var());
  // Resolve the head first so its variable keeps a low index.
  out.head.args = {Term::Var(var_of(original.head.args[0].value))};

  std::set<std::pair<PredId, VarId>> seen_unary;
  for (const auto& [pred, v] : unary_atoms) {
    VarId dv = var_of(v);
    if (seen_unary.emplace(pred, dv).second) {
      out.body.push_back(core::MakeAtom(pred, {Term::Var(dv)}));
    }
  }
  std::set<std::tuple<PredId, VarId, VarId>> seen_binary;
  for (const BinAtom& a : binary_atoms) {
    VarId dx = var_of(a.x), dy = var_of(a.y);
    if (seen_binary.emplace(a.pred, dx, dy).second) {
      out.body.push_back(
          core::MakeAtom(a.pred, {Term::Var(dx), Term::Var(dy)}));
    }
  }
  out.var_names = std::move(names);
  return out;
}

util::Status CheckChaseInput(const core::Program& program, const Rule& rule) {
  if (rule.head.args.size() != 1 || !rule.head.args[0].is_var()) {
    return util::Status::Unimplemented(
        "TMNF chase requires unary heads over a variable: " +
        core::ToString(program, rule));
  }
  for (const Atom& a : rule.body) {
    for (const Term& t : a.args) {
      if (!t.is_var()) {
        return util::Status::Unimplemented(
            "TMNF chase does not support constants: " +
            core::ToString(program, rule));
      }
    }
  }
  return util::Status::OK();
}

}  // namespace

bool IsAcyclicRule(const core::Rule& rule) {
  UnionFind uf(std::max(rule.num_vars(), 1));
  for (const Atom& a : rule.body) {
    if (a.args.size() != 2) continue;
    if (!a.args[0].is_var() || !a.args[1].is_var()) continue;
    VarId x = a.args[0].value, y = a.args[1].value;
    if (x == y) return false;          // self-loop
    if (!uf.Union(x, y)) return false;  // closes a cycle (incl. parallel edge)
  }
  return true;
}

util::Result<ChaseResult> MakeRuleAcyclicUnranked(core::Program* program,
                                                  const core::Rule& rule) {
  MD_RETURN_NOT_OK(CheckChaseInput(*program, rule));

  PredId fc = -1, ns = -1, ch = -1;
  {
    MD_ASSIGN_OR_RETURN(fc, program->preds().Intern("firstchild", 2));
    MD_ASSIGN_OR_RETURN(ns, program->preds().Intern("nextsibling", 2));
    MD_ASSIGN_OR_RETURN(ch, program->preds().Intern("child", 2));
  }

  // Partition atoms.
  std::vector<std::pair<PredId, VarId>> unary;
  std::vector<BinAtom> f_atoms, n_atoms, c_atoms, other_bin;
  for (const Atom& a : rule.body) {
    if (a.args.size() == 1) {
      unary.emplace_back(a.pred, a.args[0].value);
    } else if (a.args.size() == 2) {
      BinAtom b{a.pred, a.args[0].value, a.args[1].value};
      if (a.pred == fc) {
        f_atoms.push_back(b);
      } else if (a.pred == ns) {
        n_atoms.push_back(b);
      } else if (a.pred == ch) {
        c_atoms.push_back(b);
      } else {
        return util::Status::InvalidArgument(
            "unranked chase admits firstchild/nextsibling/child only; got "
            "'" + program->preds().Name(a.pred) + "'");
      }
    } else if (!a.args.empty()) {
      return util::Status::Unimplemented("atoms of arity > 2 unsupported");
    } else {
      return util::Status::Unimplemented(
          "propositional atoms unsupported in the TMNF chase");
    }
  }

  int32_t nv = rule.num_vars();
  UnionFind uf(std::max(nv, 1));
  int32_t merged = 0;
  ChaseResult unsat;
  unsat.satisfiable = false;

  // --- chase to fixpoint (steps 1–4 of the Lemma 5.5 procedure) -----------
  bool changed = true;
  while (changed) {
    changed = false;
    auto rep = [&](const BinAtom& a) {
      return BinAtom{a.pred, uf.Find(a.x), uf.Find(a.y)};
    };
    // Self-loops are unsatisfiable for all three relations.
    for (const auto* group : {&f_atoms, &n_atoms, &c_atoms}) {
      for (const BinAtom& a : *group) {
        BinAtom r = rep(a);
        if (r.x == r.y) return unsat;
      }
    }
    // A first child has no previous sibling.
    for (const BinAtom& f : f_atoms) {
      for (const BinAtom& n : n_atoms) {
        if (uf.Find(f.y) == uf.Find(n.y)) return unsat;
      }
    }
    // Functional dependencies (Proposition 4.1).
    auto fd_merge = [&](const std::vector<BinAtom>& atoms, bool by_first) {
      std::map<VarId, VarId> seen;
      for (const BinAtom& a : atoms) {
        VarId key = uf.Find(by_first ? a.x : a.y);
        VarId val = uf.Find(by_first ? a.y : a.x);
        auto [it, inserted] = seen.emplace(key, val);
        if (!inserted && it->second != val) {
          if (uf.Union(it->second, val)) {
            ++merged;
            changed = true;
          }
          it->second = uf.Find(val);
        }
      }
    };
    fd_merge(f_atoms, true);   // one first child per node
    fd_merge(f_atoms, false);  // one parent per first child
    fd_merge(n_atoms, true);   // one next sibling
    fd_merge(n_atoms, false);  // one previous sibling
    fd_merge(c_atoms, false);  // one parent per child
    // child/firstchild on the same target share the parent.
    {
      std::map<VarId, VarId> parent_of;
      for (const BinAtom& f : f_atoms) parent_of[uf.Find(f.y)] = uf.Find(f.x);
      for (const BinAtom& c : c_atoms) {
        auto it = parent_of.find(uf.Find(c.y));
        if (it != parent_of.end() && uf.Find(c.x) != it->second) {
          if (uf.Union(c.x, it->second)) {
            ++merged;
            changed = true;
          }
        }
      }
    }
    // Step 2 of Lemma 5.5: all parents of one nextsibling-component merge.
    {
      UnionFind comp(std::max(nv, 1));
      for (const BinAtom& n : n_atoms) comp.Union(uf.Find(n.x), uf.Find(n.y));
      std::map<int32_t, VarId> comp_parent;
      auto merge_parent = [&](VarId child, VarId parent) {
        int32_t c = comp.Find(uf.Find(child));
        VarId p = uf.Find(parent);
        auto [it, inserted] = comp_parent.emplace(c, p);
        if (!inserted && it->second != p) {
          if (uf.Union(it->second, p)) {
            ++merged;
            changed = true;
          }
          it->second = uf.Find(p);
        }
      };
      for (const BinAtom& f : f_atoms) merge_parent(f.y, f.x);
      for (const BinAtom& c : c_atoms) merge_parent(c.y, c.x);
    }
  }

  // --- consistency: depth indexes and sibling positions -------------------
  {
    std::vector<std::tuple<VarId, VarId, int32_t>> depth_edges;
    for (const BinAtom& a : f_atoms) {
      depth_edges.emplace_back(uf.Find(a.x), uf.Find(a.y), 1);
    }
    for (const BinAtom& a : c_atoms) {
      depth_edges.emplace_back(uf.Find(a.x), uf.Find(a.y), 1);
    }
    for (const BinAtom& a : n_atoms) {
      depth_edges.emplace_back(uf.Find(a.x), uf.Find(a.y), 0);
    }
    if (!AssignPotentials(std::max(nv, 1), depth_edges, nullptr)) return unsat;
  }
  {
    std::vector<std::tuple<VarId, VarId, int32_t>> pos_edges;
    for (const BinAtom& a : n_atoms) {
      pos_edges.emplace_back(uf.Find(a.x), uf.Find(a.y), 1);
    }
    std::vector<int32_t> pos;
    if (!AssignPotentials(std::max(nv, 1), pos_edges, &pos)) return unsat;
    // First children sit at sibling position 0: no component member may be
    // at a smaller relative position, and two first children in one
    // component must coincide (they do: FD-merged already, but their
    // positions must agree).
    UnionFind comp(std::max(nv, 1));
    for (const BinAtom& n : n_atoms) comp.Union(uf.Find(n.x), uf.Find(n.y));
    std::map<int32_t, int32_t> anchor_pos;  // component -> position of a
                                            // firstchild target
    for (const BinAtom& f : f_atoms) {
      VarId y = uf.Find(f.y);
      if (pos[y] == INT32_MIN) continue;  // isolated: position trivially 0
      int32_t c = comp.Find(y);
      auto [it, inserted] = anchor_pos.emplace(c, pos[y]);
      if (!inserted && it->second != pos[y]) return unsat;
    }
    for (VarId v = 0; v < nv; ++v) {
      VarId r = uf.Find(v);
      if (r != v || pos[r] == INT32_MIN) continue;
      auto it = anchor_pos.find(comp.Find(r));
      if (it != anchor_pos.end() && pos[r] < it->second) return unsat;
    }
  }

  // --- step 5: replace child atoms by firstchild + nextsibling* anchors ---
  std::vector<BinAtom> out_bin;
  for (const BinAtom& a : f_atoms) {
    out_bin.push_back({fc, uf.Find(a.x), uf.Find(a.y)});
  }
  for (const BinAtom& a : n_atoms) {
    out_bin.push_back({ns, uf.Find(a.x), uf.Find(a.y)});
  }

  int32_t total_vars = nv;
  if (!c_atoms.empty()) {
    MD_ASSIGN_OR_RETURN(PredId nstc,
                        program->preds().Intern("nextsibling_tc", 2));
    UnionFind comp(std::max(nv, 1));
    for (const BinAtom& n : n_atoms) comp.Union(uf.Find(n.x), uf.Find(n.y));

    // Group child atoms by target component; verify the single-parent
    // invariant established by the chase.
    std::map<int32_t, std::vector<BinAtom>> by_comp;
    for (const BinAtom& c : c_atoms) {
      by_comp[comp.Find(uf.Find(c.y))].push_back(
          {ch, uf.Find(c.x), uf.Find(c.y)});
    }
    // firstchild targets, per component, with their parent.
    std::map<int32_t, VarId> f_target_in_comp;  // comp -> y'
    std::multimap<VarId, VarId> f_by_parent;    // parent -> y'
    for (const BinAtom& f : f_atoms) {
      f_target_in_comp.emplace(comp.Find(uf.Find(f.y)), uf.Find(f.y));
      f_by_parent.emplace(uf.Find(f.x), uf.Find(f.y));
    }
    // Fresh variables may be created below; grow the var space lazily.
    std::vector<std::pair<VarId, VarId>> fresh_f;  // extra firstchild atoms
    for (auto& [comp_id, atoms] : by_comp) {
      VarId parent = atoms[0].x;
      for (const BinAtom& a : atoms) MD_CHECK(a.x == parent);
      if (f_target_in_comp.count(comp_id) > 0) {
        continue;  // anchored by a firstchild atom inside the component
      }
      VarId chosen = atoms[0].y;
      auto it = f_by_parent.find(parent);
      VarId anchor;
      if (it != f_by_parent.end()) {
        anchor = it->second;  // firstchild(x, y') with y' outside the comp
      } else {
        anchor = total_vars++;  // fresh y0: firstchild(x, y0)
        fresh_f.emplace_back(parent, anchor);
        f_by_parent.emplace(parent, anchor);
      }
      out_bin.push_back({nstc, anchor, chosen});
    }
    for (const auto& [parent, anchor] : fresh_f) {
      out_bin.push_back({fc, parent, anchor});
    }
  }

  // Fresh variables are above nv; extend the union-find domain implicitly by
  // treating them as their own representatives in RebuildRule.
  UnionFind uf_ext(total_vars);
  for (VarId v = 0; v < nv; ++v) uf_ext.Union(v, uf.Find(v));

  ChaseResult result;
  result.satisfiable = true;
  result.merged_vars = merged;
  result.rule = RebuildRule(*program, rule, &uf_ext, total_vars, unary,
                            out_bin);
  if (!IsAcyclicRule(result.rule)) {
    return util::Status::Internal("chase produced a cyclic rule: " +
                                  core::ToString(*program, result.rule));
  }
  return result;
}

util::Result<ChaseResult> MakeRuleAcyclicRanked(core::Program* program,
                                                const core::Rule& rule) {
  MD_RETURN_NOT_OK(CheckChaseInput(*program, rule));

  std::vector<std::pair<PredId, VarId>> unary;
  std::vector<std::pair<BinAtom, int32_t>> child_atoms;  // atom, k
  for (const Atom& a : rule.body) {
    if (a.args.size() == 1) {
      unary.emplace_back(a.pred, a.args[0].value);
      continue;
    }
    if (a.args.size() != 2) {
      return util::Status::Unimplemented(
          "ranked chase supports unary and binary atoms only");
    }
    int32_t k = core::ChildKIndex(program->preds().Name(a.pred));
    if (k < 1) {
      return util::Status::InvalidArgument(
          "ranked chase admits child<k> relations only; got '" +
          program->preds().Name(a.pred) + "'");
    }
    child_atoms.push_back({{a.pred, a.args[0].value, a.args[1].value}, k});
  }

  int32_t nv = rule.num_vars();
  UnionFind uf(std::max(nv, 1));
  int32_t merged = 0;
  ChaseResult unsat;
  unsat.satisfiable = false;

  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [a, k] : child_atoms) {
      if (uf.Find(a.x) == uf.Find(a.y)) return unsat;
    }
    // A node is the k-th child of at most one parent and for exactly one k.
    {
      std::map<VarId, std::pair<VarId, int32_t>> by_target;  // y -> (x, k)
      for (const auto& [a, k] : child_atoms) {
        VarId y = uf.Find(a.y), x = uf.Find(a.x);
        auto [it, inserted] = by_target.emplace(y, std::make_pair(x, k));
        if (!inserted) {
          if (it->second.second != k) return unsat;  // k-th and j-th child
          if (it->second.first != x && uf.Union(it->second.first, x)) {
            ++merged;
            changed = true;
          }
          it->second.first = uf.Find(x);
        }
      }
    }
    // Each node has one k-th child.
    {
      std::map<std::pair<VarId, int32_t>, VarId> by_source;
      for (const auto& [a, k] : child_atoms) {
        VarId x = uf.Find(a.x), y = uf.Find(a.y);
        auto [it, inserted] = by_source.emplace(std::make_pair(x, k), y);
        if (!inserted && it->second != y) {
          if (uf.Union(it->second, y)) {
            ++merged;
            changed = true;
          }
          it->second = uf.Find(y);
        }
      }
    }
  }

  // Depth consistency: every child edge descends one level.
  {
    std::vector<std::tuple<VarId, VarId, int32_t>> edges;
    for (const auto& [a, k] : child_atoms) {
      edges.emplace_back(uf.Find(a.x), uf.Find(a.y), 1);
    }
    if (!AssignPotentials(std::max(nv, 1), edges, nullptr)) return unsat;
  }

  std::vector<BinAtom> out_bin;
  for (const auto& [a, k] : child_atoms) {
    out_bin.push_back({a.pred, uf.Find(a.x), uf.Find(a.y)});
  }
  ChaseResult result;
  result.satisfiable = true;
  result.merged_vars = merged;
  result.rule = RebuildRule(*program, rule, &uf, nv, unary, out_bin);
  if (!IsAcyclicRule(result.rule)) {
    return util::Status::Internal("ranked chase produced a cyclic rule: " +
                                  core::ToString(*program, result.rule));
  }
  return result;
}

}  // namespace mdatalog::tmnf
