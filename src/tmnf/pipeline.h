#pragma once

#include "src/core/ast.h"
#include "src/util/result.h"

/// \file pipeline.h
/// Theorem 5.2: every monadic datalog program over τ_ur ∪ {child, lastchild}
/// (resp. τ_rk) translates in linear time into an equivalent TMNF program
/// over τ_ur (resp. τ_rk).
///
/// The pipeline follows the paper's proof:
///  1. lastchild(x,y) is expanded to child(x,y) ∧ lastsibling(y)
///     (Lemma 5.6); firstsibling(x) — an Elog⁻ condition predicate outside
///     τ_ur — is replaced by an intensional predicate defined by the TMNF
///     rule __fsib(x) ← firstchild(x0, x).
///  2. every rule is made acyclic by the chase of Lemma 5.5 (Lemma 5.4 in
///     the ranked case); unsatisfiable rules are dropped.
///  3. disconnected rules are connected through the total caterpillar
///     (≺ | ǫ | ≺^-1) over the document order ≺ of Example 2.5.
///  4. each acyclic connected rule is decomposed into TMNF rules by walking
///     its query tree from the head variable (Lemmas 5.7/5.8); binary
///     caterpillar atoms (nextsibling* from the chase, the connector from
///     step 3) are compiled away with the NFA construction of Lemma 5.9.
///
/// Generated predicate names start with "__"; user programs must not use
/// that prefix.

namespace mdatalog::tmnf {

struct TmnfStats {
  int32_t rules_dropped_unsat = 0;
  int32_t vars_merged = 0;
  int32_t input_rules = 0;
  int32_t output_rules = 0;
};

/// Unranked: input over τ_ur ∪ {child, lastchild, firstsibling}; output TMNF
/// over τ_ur. The query predicate carries over; every original intensional
/// predicate keeps its name and meaning.
util::Result<core::Program> ToTmnf(const core::Program& input,
                                   TmnfStats* stats = nullptr);

/// Ranked: input over τ_rk (child1..childK, root, leaf, lastsibling,
/// label_<l>); output TMNF over τ_rk.
util::Result<core::Program> ToTmnfRanked(const core::Program& input,
                                         TmnfStats* stats = nullptr);

}  // namespace mdatalog::tmnf
