#include "src/tmnf/normal_form.h"

#include "src/core/database.h"

namespace mdatalog::tmnf {

namespace {

bool IsSchemaBinary(const std::string& name, bool ranked) {
  if (ranked) return core::ChildKIndex(name) >= 1;
  return name == "firstchild" || name == "nextsibling";
}

/// Unary predicates admissible in TMNF bodies: intensional or τ_ur/τ_rk
/// unary (root, leaf, lastsibling, label_<l>).
bool IsSchemaUnary(const std::string& name) {
  return name == "root" || name == "leaf" || name == "lastsibling" ||
         !core::LabelFromPredName(name).empty();
}

util::Status Offend(const core::Program& p, const core::Rule& r,
                    const std::string& why) {
  return util::Status::InvalidArgument("not TMNF (" + why +
                                       "): " + core::ToString(p, r));
}

}  // namespace

util::Status CheckTmnf(const core::Program& program,
                       const TmnfCheckOptions& options) {
  std::vector<bool> intensional = program.IntensionalMask();
  auto unary_ok = [&](const core::Atom& a) {
    if (a.args.size() != 1 || !a.args[0].is_var()) return false;
    if (intensional[a.pred]) return true;
    return IsSchemaUnary(program.preds().Name(a.pred));
  };

  for (const core::Rule& r : program.rules()) {
    // Head: p(x) with p intensional unary.
    if (r.head.args.size() != 1 || !r.head.args[0].is_var()) {
      return Offend(program, r, "head must be p(x)");
    }
    core::VarId x = r.head.args[0].value;

    if (r.body.size() == 1) {
      // Form (1): p(x) ← p0(x).
      const core::Atom& a = r.body[0];
      if (!unary_ok(a) || a.args[0].value != x) {
        return Offend(program, r, "single-atom body must be p0(x)");
      }
      continue;
    }
    if (r.body.size() != 2) {
      return Offend(program, r, "body must have 1 or 2 atoms");
    }
    const core::Atom& a = r.body[0];
    const core::Atom& b = r.body[1];

    // Form (3): both unary on the head variable.
    if (a.args.size() == 1 && b.args.size() == 1) {
      if (unary_ok(a) && unary_ok(b) && a.args[0].value == x &&
          b.args[0].value == x) {
        continue;
      }
      return Offend(program, r, "form (3) needs p0(x), p1(x)");
    }

    // Form (2): one unary p0(x0), one binary B linking x0 and x.
    const core::Atom* unary = a.args.size() == 1 ? &a : &b;
    const core::Atom* binary = a.args.size() == 2 ? &a : &b;
    if (unary->args.size() != 1 || binary->args.size() != 2) {
      return Offend(program, r, "form (2) needs one unary and one binary atom");
    }
    if (!unary_ok(*unary)) {
      return Offend(program, r, "form (2) unary predicate not admissible");
    }
    if (intensional[binary->pred] ||
        !IsSchemaBinary(program.preds().Name(binary->pred), options.ranked)) {
      return Offend(program, r, "form (2) binary predicate not in the schema");
    }
    if (!binary->args[0].is_var() || !binary->args[1].is_var()) {
      return Offend(program, r, "form (2) binary atom must be over variables");
    }
    core::VarId x0 = unary->args[0].value;
    core::VarId b1 = binary->args[0].value, b2 = binary->args[1].value;
    if (x0 == x) return Offend(program, r, "form (2) variables must differ");
    bool forward = (b1 == x0 && b2 == x);   // B = R
    bool backward = (b1 == x && b2 == x0);  // B = R^-1
    if (!forward && !backward) {
      return Offend(program, r, "form (2) binary atom must link x0 and x");
    }
  }
  return util::Status::OK();
}

bool IsTmnf(const core::Program& program, const TmnfCheckOptions& options) {
  return CheckTmnf(program, options).ok();
}

}  // namespace mdatalog::tmnf
