#pragma once

#include "src/core/ast.h"
#include "src/util/status.h"

/// \file normal_form.h
/// TMNF — Tree-Marking Normal Form (Definition 5.1). A monadic datalog
/// program over τ_rk (τ_ur) is in TMNF if every rule has one of the forms
///
///   (1)  p(x) ← p0(x).
///   (2)  p(x) ← p0(x0), B(x0, x).     B = R or R^-1, R binary in the schema
///   (3)  p(x) ← p0(x), p1(x).
///
/// where p0, p1 are intensional or unary predicates of the schema. Form (2)
/// with B = R^-1 is written as the atom R(x, x0).

namespace mdatalog::tmnf {

struct TmnfCheckOptions {
  /// Accept child1..child<K> as the binary schema (τ_rk) instead of
  /// firstchild/nextsibling (τ_ur).
  bool ranked = false;
};

/// OK iff `program` is in TMNF; otherwise InvalidArgument naming the first
/// offending rule.
util::Status CheckTmnf(const core::Program& program,
                       const TmnfCheckOptions& options = {});

bool IsTmnf(const core::Program& program, const TmnfCheckOptions& options = {});

}  // namespace mdatalog::tmnf
